# Empty compiler generated dependencies file for invalidation_storm.
# This may be replaced when dependencies are built.
