file(REMOVE_RECURSE
  "CMakeFiles/invalidation_storm.dir/invalidation_storm.cpp.o"
  "CMakeFiles/invalidation_storm.dir/invalidation_storm.cpp.o.d"
  "invalidation_storm"
  "invalidation_storm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/invalidation_storm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
