
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/scheme_explorer.cpp" "examples/CMakeFiles/scheme_explorer.dir/scheme_explorer.cpp.o" "gcc" "examples/CMakeFiles/scheme_explorer.dir/scheme_explorer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/mdw_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/mdw_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/dsm/CMakeFiles/mdw_dsm.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mdw_core.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/mdw_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mdw_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
