# Empty dependencies file for app_barnes.
# This may be replaced when dependencies are built.
