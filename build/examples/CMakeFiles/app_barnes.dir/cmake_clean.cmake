file(REMOVE_RECURSE
  "CMakeFiles/app_barnes.dir/app_barnes.cpp.o"
  "CMakeFiles/app_barnes.dir/app_barnes.cpp.o.d"
  "app_barnes"
  "app_barnes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/app_barnes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
