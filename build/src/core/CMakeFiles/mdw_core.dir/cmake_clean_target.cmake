file(REMOVE_RECURSE
  "libmdw_core.a"
)
