file(REMOVE_RECURSE
  "CMakeFiles/mdw_core.dir/analytic.cpp.o"
  "CMakeFiles/mdw_core.dir/analytic.cpp.o.d"
  "CMakeFiles/mdw_core.dir/inval_planner.cpp.o"
  "CMakeFiles/mdw_core.dir/inval_planner.cpp.o.d"
  "libmdw_core.a"
  "libmdw_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdw_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
