# Empty dependencies file for mdw_analysis.
# This may be replaced when dependencies are built.
