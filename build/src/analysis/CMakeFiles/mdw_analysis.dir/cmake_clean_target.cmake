file(REMOVE_RECURSE
  "libmdw_analysis.a"
)
