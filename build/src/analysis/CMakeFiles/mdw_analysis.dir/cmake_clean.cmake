file(REMOVE_RECURSE
  "CMakeFiles/mdw_analysis.dir/experiment.cpp.o"
  "CMakeFiles/mdw_analysis.dir/experiment.cpp.o.d"
  "CMakeFiles/mdw_analysis.dir/table.cpp.o"
  "CMakeFiles/mdw_analysis.dir/table.cpp.o.d"
  "libmdw_analysis.a"
  "libmdw_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdw_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
