file(REMOVE_RECURSE
  "libmdw_workload.a"
)
