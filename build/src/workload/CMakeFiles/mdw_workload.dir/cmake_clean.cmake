file(REMOVE_RECURSE
  "CMakeFiles/mdw_workload.dir/barnes_hut.cpp.o"
  "CMakeFiles/mdw_workload.dir/barnes_hut.cpp.o.d"
  "CMakeFiles/mdw_workload.dir/lu.cpp.o"
  "CMakeFiles/mdw_workload.dir/lu.cpp.o.d"
  "CMakeFiles/mdw_workload.dir/synthetic.cpp.o"
  "CMakeFiles/mdw_workload.dir/synthetic.cpp.o.d"
  "CMakeFiles/mdw_workload.dir/trace_runner.cpp.o"
  "CMakeFiles/mdw_workload.dir/trace_runner.cpp.o.d"
  "libmdw_workload.a"
  "libmdw_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdw_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
