# Empty compiler generated dependencies file for mdw_dsm.
# This may be replaced when dependencies are built.
