file(REMOVE_RECURSE
  "libmdw_dsm.a"
)
