
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dsm/machine.cpp" "src/dsm/CMakeFiles/mdw_dsm.dir/machine.cpp.o" "gcc" "src/dsm/CMakeFiles/mdw_dsm.dir/machine.cpp.o.d"
  "/root/repo/src/dsm/node.cpp" "src/dsm/CMakeFiles/mdw_dsm.dir/node.cpp.o" "gcc" "src/dsm/CMakeFiles/mdw_dsm.dir/node.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mdw_core.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/mdw_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mdw_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
