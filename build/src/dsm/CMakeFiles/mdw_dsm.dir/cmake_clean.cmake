file(REMOVE_RECURSE
  "CMakeFiles/mdw_dsm.dir/machine.cpp.o"
  "CMakeFiles/mdw_dsm.dir/machine.cpp.o.d"
  "CMakeFiles/mdw_dsm.dir/node.cpp.o"
  "CMakeFiles/mdw_dsm.dir/node.cpp.o.d"
  "libmdw_dsm.a"
  "libmdw_dsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdw_dsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
