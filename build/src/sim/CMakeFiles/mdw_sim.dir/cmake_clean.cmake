file(REMOVE_RECURSE
  "CMakeFiles/mdw_sim.dir/engine.cpp.o"
  "CMakeFiles/mdw_sim.dir/engine.cpp.o.d"
  "CMakeFiles/mdw_sim.dir/rng.cpp.o"
  "CMakeFiles/mdw_sim.dir/rng.cpp.o.d"
  "CMakeFiles/mdw_sim.dir/stats.cpp.o"
  "CMakeFiles/mdw_sim.dir/stats.cpp.o.d"
  "libmdw_sim.a"
  "libmdw_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdw_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
