
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/noc/iack_buffer.cpp" "src/noc/CMakeFiles/mdw_noc.dir/iack_buffer.cpp.o" "gcc" "src/noc/CMakeFiles/mdw_noc.dir/iack_buffer.cpp.o.d"
  "/root/repo/src/noc/network.cpp" "src/noc/CMakeFiles/mdw_noc.dir/network.cpp.o" "gcc" "src/noc/CMakeFiles/mdw_noc.dir/network.cpp.o.d"
  "/root/repo/src/noc/router.cpp" "src/noc/CMakeFiles/mdw_noc.dir/router.cpp.o" "gcc" "src/noc/CMakeFiles/mdw_noc.dir/router.cpp.o.d"
  "/root/repo/src/noc/routing.cpp" "src/noc/CMakeFiles/mdw_noc.dir/routing.cpp.o" "gcc" "src/noc/CMakeFiles/mdw_noc.dir/routing.cpp.o.d"
  "/root/repo/src/noc/worm_builder.cpp" "src/noc/CMakeFiles/mdw_noc.dir/worm_builder.cpp.o" "gcc" "src/noc/CMakeFiles/mdw_noc.dir/worm_builder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/mdw_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
