# Empty dependencies file for mdw_noc.
# This may be replaced when dependencies are built.
