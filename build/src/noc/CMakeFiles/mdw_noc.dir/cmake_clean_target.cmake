file(REMOVE_RECURSE
  "libmdw_noc.a"
)
