file(REMOVE_RECURSE
  "CMakeFiles/mdw_noc.dir/iack_buffer.cpp.o"
  "CMakeFiles/mdw_noc.dir/iack_buffer.cpp.o.d"
  "CMakeFiles/mdw_noc.dir/network.cpp.o"
  "CMakeFiles/mdw_noc.dir/network.cpp.o.d"
  "CMakeFiles/mdw_noc.dir/router.cpp.o"
  "CMakeFiles/mdw_noc.dir/router.cpp.o.d"
  "CMakeFiles/mdw_noc.dir/routing.cpp.o"
  "CMakeFiles/mdw_noc.dir/routing.cpp.o.d"
  "CMakeFiles/mdw_noc.dir/worm_builder.cpp.o"
  "CMakeFiles/mdw_noc.dir/worm_builder.cpp.o.d"
  "libmdw_noc.a"
  "libmdw_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdw_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
