file(REMOVE_RECURSE
  "CMakeFiles/test_network_multicast.dir/test_network_multicast.cpp.o"
  "CMakeFiles/test_network_multicast.dir/test_network_multicast.cpp.o.d"
  "test_network_multicast"
  "test_network_multicast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_network_multicast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
