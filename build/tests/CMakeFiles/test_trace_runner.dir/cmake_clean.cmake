file(REMOVE_RECURSE
  "CMakeFiles/test_trace_runner.dir/test_trace_runner.cpp.o"
  "CMakeFiles/test_trace_runner.dir/test_trace_runner.cpp.o.d"
  "test_trace_runner"
  "test_trace_runner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace_runner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
