# Empty compiler generated dependencies file for test_trace_runner.
# This may be replaced when dependencies are built.
