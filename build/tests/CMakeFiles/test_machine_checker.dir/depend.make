# Empty dependencies file for test_machine_checker.
# This may be replaced when dependencies are built.
