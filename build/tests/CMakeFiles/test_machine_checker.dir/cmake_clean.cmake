file(REMOVE_RECURSE
  "CMakeFiles/test_machine_checker.dir/test_machine_checker.cpp.o"
  "CMakeFiles/test_machine_checker.dir/test_machine_checker.cpp.o.d"
  "test_machine_checker"
  "test_machine_checker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_machine_checker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
