file(REMOVE_RECURSE
  "CMakeFiles/test_network_unicast.dir/test_network_unicast.cpp.o"
  "CMakeFiles/test_network_unicast.dir/test_network_unicast.cpp.o.d"
  "test_network_unicast"
  "test_network_unicast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_network_unicast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
