# Empty compiler generated dependencies file for test_network_unicast.
# This may be replaced when dependencies are built.
