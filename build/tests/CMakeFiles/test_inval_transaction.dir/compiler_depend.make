# Empty compiler generated dependencies file for test_inval_transaction.
# This may be replaced when dependencies are built.
