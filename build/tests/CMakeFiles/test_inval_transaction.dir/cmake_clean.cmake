file(REMOVE_RECURSE
  "CMakeFiles/test_inval_transaction.dir/test_inval_transaction.cpp.o"
  "CMakeFiles/test_inval_transaction.dir/test_inval_transaction.cpp.o.d"
  "test_inval_transaction"
  "test_inval_transaction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_inval_transaction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
