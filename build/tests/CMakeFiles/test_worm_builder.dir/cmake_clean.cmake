file(REMOVE_RECURSE
  "CMakeFiles/test_worm_builder.dir/test_worm_builder.cpp.o"
  "CMakeFiles/test_worm_builder.dir/test_worm_builder.cpp.o.d"
  "test_worm_builder"
  "test_worm_builder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_worm_builder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
