# Empty compiler generated dependencies file for test_worm_builder.
# This may be replaced when dependencies are built.
