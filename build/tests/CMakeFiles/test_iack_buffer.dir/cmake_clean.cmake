file(REMOVE_RECURSE
  "CMakeFiles/test_iack_buffer.dir/test_iack_buffer.cpp.o"
  "CMakeFiles/test_iack_buffer.dir/test_iack_buffer.cpp.o.d"
  "test_iack_buffer"
  "test_iack_buffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_iack_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
