# Empty dependencies file for test_iack_buffer.
# This may be replaced when dependencies are built.
