# Empty dependencies file for test_inval_planner.
# This may be replaced when dependencies are built.
