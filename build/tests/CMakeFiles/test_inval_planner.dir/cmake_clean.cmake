file(REMOVE_RECURSE
  "CMakeFiles/test_inval_planner.dir/test_inval_planner.cpp.o"
  "CMakeFiles/test_inval_planner.dir/test_inval_planner.cpp.o.d"
  "test_inval_planner"
  "test_inval_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_inval_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
