file(REMOVE_RECURSE
  "CMakeFiles/bench_latency_vs_meshsize.dir/bench_latency_vs_meshsize.cpp.o"
  "CMakeFiles/bench_latency_vs_meshsize.dir/bench_latency_vs_meshsize.cpp.o.d"
  "bench_latency_vs_meshsize"
  "bench_latency_vs_meshsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_latency_vs_meshsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
