file(REMOVE_RECURSE
  "CMakeFiles/bench_latency_vs_sharers.dir/bench_latency_vs_sharers.cpp.o"
  "CMakeFiles/bench_latency_vs_sharers.dir/bench_latency_vs_sharers.cpp.o.d"
  "bench_latency_vs_sharers"
  "bench_latency_vs_sharers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_latency_vs_sharers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
