# Empty compiler generated dependencies file for bench_latency_vs_sharers.
# This may be replaced when dependencies are built.
