file(REMOVE_RECURSE
  "CMakeFiles/bench_traffic_messages.dir/bench_traffic_messages.cpp.o"
  "CMakeFiles/bench_traffic_messages.dir/bench_traffic_messages.cpp.o.d"
  "bench_traffic_messages"
  "bench_traffic_messages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_traffic_messages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
