# Empty compiler generated dependencies file for bench_traffic_messages.
# This may be replaced when dependencies are built.
