file(REMOVE_RECURSE
  "CMakeFiles/bench_hotspot.dir/bench_hotspot.cpp.o"
  "CMakeFiles/bench_hotspot.dir/bench_hotspot.cpp.o.d"
  "bench_hotspot"
  "bench_hotspot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hotspot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
