file(REMOVE_RECURSE
  "CMakeFiles/bench_iack_ablation.dir/bench_iack_ablation.cpp.o"
  "CMakeFiles/bench_iack_ablation.dir/bench_iack_ablation.cpp.o.d"
  "bench_iack_ablation"
  "bench_iack_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_iack_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
