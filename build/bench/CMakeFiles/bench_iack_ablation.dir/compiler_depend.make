# Empty compiler generated dependencies file for bench_iack_ablation.
# This may be replaced when dependencies are built.
