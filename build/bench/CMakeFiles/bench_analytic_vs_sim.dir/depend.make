# Empty dependencies file for bench_analytic_vs_sim.
# This may be replaced when dependencies are built.
