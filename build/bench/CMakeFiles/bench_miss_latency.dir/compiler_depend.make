# Empty compiler generated dependencies file for bench_miss_latency.
# This may be replaced when dependencies are built.
