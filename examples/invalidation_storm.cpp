// Invalidation storm: every node repeatedly read-shares and then writes a
// small pool of hot blocks, creating continuous overlapping invalidation
// transactions — the hot-spot situation of the paper's motivation.  Prints
// end-to-end throughput and invalidation cost per scheme.
//
//   $ ./invalidation_storm [mesh] [rounds]
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <iostream>

#include <utility>
#include <vector>

#include "analysis/table.h"
#include "dsm/machine.h"
#include "obs/heatmap.h"
#include "sim/rng.h"

using namespace mdw;

int main(int argc, char** argv) {
  const int k = argc > 1 ? std::atoi(argv[1]) : 8;
  const int rounds = argc > 2 ? std::atoi(argv[2]) : 6;

  std::printf("invalidation storm on a %dx%d mesh: every node alternates "
              "read-share / write on %d hot blocks, %d ops each\n\n",
              k, k, 4, rounds);

  analysis::Table t({"scheme", "makespan (cyc)", "inval txns",
                     "avg d", "avg inval latency", "flit-hops/txn",
                     "deferred gathers"});
  std::vector<std::pair<std::string, obs::LinkHeatmap>> heatmaps;

  for (core::Scheme s : core::kAllSchemes) {
    dsm::SystemParams p;
    p.mesh_w = p.mesh_h = k;
    p.scheme = s;
    dsm::Machine m(p);
    sim::Rng rng(7);

    const int n = m.num_nodes();
    std::vector<int> remaining(n, rounds);
    std::function<void(NodeId)> pump = [&](NodeId id) {
      if (remaining[id]-- <= 0) return;
      const BlockAddr a = rng.next_below(4);  // 4 hot blocks
      m.node(id).read(a, [&, id, a](std::uint64_t) {
        m.node(id).write(a, id, [&, id] { pump(id); });
      });
    };
    for (NodeId id = 0; id < n; ++id) pump(id);

    const bool done = m.engine().run_until([&] { return m.all_idle(); },
                                           500'000'000);
    m.engine().run_to_quiescence(1'000'000);
    if (!done) {
      std::fprintf(stderr, "%s did not complete!\n",
                   std::string(core::scheme_name(s)).c_str());
      return 1;
    }
    const auto& st = m.stats();
    t.add_row({std::string(core::scheme_name(s)),
               analysis::Table::integer(m.engine().now()),
               analysis::Table::integer(st.inval_txns),
               analysis::Table::num(st.inval_sharers.mean()),
               analysis::Table::num(st.inval_latency.mean()),
               analysis::Table::num(
                   st.inval_txns
                       ? static_cast<double>(
                             m.network().stats().link_flit_hops) /
                             static_cast<double>(st.inval_txns)
                       : 0.0),
               analysis::Table::integer(
                   m.network().stats().gather_deferred)});
    heatmaps.emplace_back(std::string(core::scheme_name(s)),
                          m.network().heatmap());
  }
  t.print(std::cout);

  std::printf("\nWhere the flits went (the multidestination schemes spread "
              "the same storm over far fewer link crossings):\n\n");
  for (const auto& [name, hm] : heatmaps) {
    std::printf("%s\n", name.c_str());
    hm.render_ascii(std::cout);
    std::printf("\n");
  }
  return 0;
}
