// Quickstart: build a DSM machine, share a block among a set of nodes, then
// write it — once under the UI-UA baseline and once with multidestination
// worms — and compare what the invalidation transaction cost.
//
//   $ ./quickstart
#include <cstdio>
#include <iostream>

#include "analysis/table.h"
#include "dsm/machine.h"

using namespace mdw;

namespace {

struct Outcome {
  double inval_latency;
  double messages;
  double traffic;
};

Outcome run_once(core::Scheme scheme) {
  dsm::SystemParams params;
  params.mesh_w = params.mesh_h = 8;
  params.scheme = scheme;
  dsm::Machine m(params);

  const BlockAddr block = 27;  // homed at node 27 = (3,3)
  // Ten nodes read the block => ten shared copies.
  const std::vector<NodeId> readers{0, 2, 5, 11, 19, 24, 33, 40, 51, 62};
  for (NodeId r : readers) {
    bool done = false;
    m.node(r).read(block, [&](std::uint64_t) { done = true; });
    m.engine().run_until([&] { return done; }, 1'000'000);
  }
  m.engine().run_to_quiescence(100'000);

  // Node 45 writes: the home must invalidate all ten copies first.
  const auto traffic0 = m.network().stats().link_flit_hops;
  bool done = false;
  m.node(45).write(block, 0xBEEF, [&] { done = true; });
  m.engine().run_until([&] { return done; }, 1'000'000);
  m.engine().run_to_quiescence(100'000);

  Outcome o{};
  o.inval_latency = m.stats().inval_latency.mean();
  o.messages = static_cast<double>(m.stats().inval_request_worms +
                                   m.stats().inval_ack_messages);
  o.traffic = static_cast<double>(m.network().stats().link_flit_hops - traffic0);
  return o;
}

} // namespace

int main() {
  std::printf("mdw-dsm quickstart: one write to a block with 10 sharers on an "
              "8x8 wormhole mesh\n\n");
  analysis::Table t({"scheme", "framework", "inval latency (cyc)",
                     "txn messages", "txn flit-hops"});
  for (core::Scheme s : {core::Scheme::UiUa, core::Scheme::EcCmUa,
                         core::Scheme::EcCmHg, core::Scheme::WfScSg}) {
    const Outcome o = run_once(s);
    t.add_row({std::string(core::scheme_name(s)),
               std::string(core::framework_name(core::framework_of(s))),
               analysis::Table::num(o.inval_latency),
               analysis::Table::num(o.messages, 0),
               analysis::Table::num(o.traffic, 0)});
  }
  t.print(std::cout);
  std::printf("\nMultidestination i-reserve worms collapse the request fan-out;"
              "\ni-gather worms collapse the acknowledgment fan-in.\n");
  return 0;
}
