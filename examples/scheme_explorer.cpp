// Scheme explorer: visualize what the invalidation planner does.
//
// Renders the request-phase worm paths (and gather worm paths) that each
// grouping scheme generates for a sharer pattern, as ASCII mesh diagrams.
//
//   $ ./scheme_explorer [mesh] [d] [seed] [scheme]
//   $ ./scheme_explorer 8 10 3 EC-CM-HG
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <span>
#include <string>

#include "core/inval_planner.h"
#include "dsm/machine.h"
#include "workload/synthetic.h"

using namespace mdw;

namespace {

/// Run the rendered transaction for real (prime the sharers, fire the write
/// at the home) and show the per-link flit load it produced.
void render_measured_heatmap(core::Scheme s, int k, NodeId home,
                             const std::vector<NodeId>& sharers) {
  dsm::SystemParams p;
  p.mesh_w = p.mesh_h = k;
  p.scheme = s;
  dsm::Machine m(p);
  const BlockAddr a = static_cast<BlockAddr>(m.num_nodes()) + home;
  for (NodeId sh : sharers) {
    bool done = false;
    m.node(sh).read(a, [&](std::uint64_t) { done = true; });
    m.engine().run_until([&] { return done; }, 10'000'000);
  }
  m.engine().run_to_quiescence(1'000'000);
  const std::uint64_t before = m.network().stats().link_flit_hops;
  bool done = false;
  m.node(home).write(a, 1, [&] { done = true; });
  m.engine().run_until([&] { return done; }, 10'000'000);
  m.engine().run_to_quiescence(1'000'000);
  std::printf("  measured link load for this transaction (%llu flit-hops, "
              "priming included in the map):\n",
              static_cast<unsigned long long>(
                  m.network().stats().link_flit_hops - before));
  m.network().heatmap().render_ascii(std::cout);
}

void render(const noc::MeshShape& mesh, NodeId home,
            const std::vector<NodeId>& sharers,
            std::span<const NodeId> path, char mark,
            const char* title) {
  std::printf("  %s (%zu hops)\n", title, path.size() - 1);
  std::vector<char> grid(static_cast<std::size_t>(mesh.num_nodes()), '.');
  for (std::size_t i = 0; i < path.size(); ++i) grid[path[i]] = mark;
  for (NodeId s : sharers) {
    grid[s] = grid[s] == mark ? 'X' : 's';  // X: sharer on the path
  }
  grid[home] = 'H';
  grid[path.front()] = grid[path.front()] == 'H' ? 'H' : 'o';  // origin
  for (int y = mesh.height() - 1; y >= 0; --y) {
    std::printf("    ");
    for (int x = 0; x < mesh.width(); ++x) {
      std::printf("%c ", grid[mesh.id_of({x, y})]);
    }
    std::printf("\n");
  }
  std::printf("\n");
}

core::Scheme parse_scheme(const char* name) {
  for (core::Scheme s : core::kAllSchemes) {
    if (core::scheme_name(s) == std::string(name)) return s;
  }
  std::fprintf(stderr, "unknown scheme '%s'; valid:", name);
  for (core::Scheme s : core::kAllSchemes) {
    std::fprintf(stderr, " %s", std::string(core::scheme_name(s)).c_str());
  }
  std::fprintf(stderr, "\n");
  std::exit(1);
}

} // namespace

int main(int argc, char** argv) {
  const int k = argc > 1 ? std::atoi(argv[1]) : 8;
  const int d = argc > 2 ? std::atoi(argv[2]) : 10;
  const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 1;
  const bool one_scheme = argc > 4;

  const noc::MeshShape mesh(k, k);
  sim::Rng rng(seed);
  const auto home = static_cast<NodeId>(rng.next_below(mesh.num_nodes()));
  const auto sharers = workload::make_sharers(
      rng, mesh, home, home, d, workload::SharerPattern::Uniform);

  std::printf("mesh %dx%d, home H at %s, %d sharers (s); legend: * request "
              "worm path, ~ gather worm path, X sharer on path, o worm "
              "origin\n\n",
              k, k, mesh.to_string(home).c_str(), d);

  for (core::Scheme s : core::kAllSchemes) {
    if (one_scheme && s != parse_scheme(argv[4])) continue;
    const auto plan = core::plan_invalidation(s, mesh, home, sharers, 1,
                                              noc::WormSizing{});
    std::printf("%s  —  %zu request worm(s), %zu gather worm(s), %d ack "
                "message(s) at the home\n",
                std::string(core::scheme_name(s)).c_str(),
                plan.request_worms.size(), plan.directive->gathers().size(),
                plan.expected_ack_messages);
    int i = 0;
    for (const auto& w : plan.request_worms) {
      const std::string title =
          "request worm " + std::to_string(++i) + " (" +
          std::to_string(w->dests.size()) + " destinations, " +
          std::to_string(w->length_flits) + " flits)";
      render(mesh, home, sharers, w->path, '*', title.c_str());
    }
    i = 0;
    for (const auto& g : plan.directive->gathers()) {
      const std::string title =
          "gather worm " + std::to_string(++i) +
          (g.path.back() == home ? " (to home)" : " (deposits at leader)");
      render(mesh, home, sharers, g.path, '~', title.c_str());
    }
    render_measured_heatmap(s, k, home, sharers);
    std::printf("------------------------------------------------------------\n");
  }
  return 0;
}
