// Run the Barnes-Hut application trace (the paper's first workload: 128
// bodies, 4 time steps) on the DSM machine and report execution time and
// invalidation behaviour for a chosen scheme.
//
//   $ ./app_barnes               # UI-UA vs EC-CM-HG on 16 nodes
//   $ ./app_barnes 64 2 WF-SC-SG # bodies steps scheme
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "analysis/table.h"
#include "workload/apps.h"
#include "workload/trace_runner.h"

using namespace mdw;

int main(int argc, char** argv) {
  const int bodies = argc > 1 ? std::atoi(argv[1]) : 128;
  const int steps = argc > 2 ? std::atoi(argv[2]) : 4;

  std::vector<core::Scheme> schemes;
  if (argc > 3) {
    for (core::Scheme s : core::kAllSchemes) {
      if (core::scheme_name(s) == std::string(argv[3])) schemes.push_back(s);
    }
    if (schemes.empty()) {
      std::fprintf(stderr, "unknown scheme %s\n", argv[3]);
      return 1;
    }
  } else {
    schemes = {core::Scheme::UiUa, core::Scheme::EcCmHg};
  }

  workload::BarnesHutResult result;
  const workload::Trace trace =
      workload::barnes_hut_trace(16, bodies, steps, /*seed=*/42, &result);
  std::printf("Barnes-Hut: %d bodies, %d steps, 16 processors; %zu shared "
              "accesses, %zu tree nodes built\n\n",
              bodies, steps, trace.total_accesses(),
              result.tree_nodes_built);

  analysis::Table t({"scheme", "exec cycles", "exec ms (5ns cyc)",
                     "inval txns", "avg sharers", "avg inval latency",
                     "link flit-hops"});
  for (core::Scheme s : schemes) {
    dsm::SystemParams p;
    p.mesh_w = p.mesh_h = 4;
    p.scheme = s;
    dsm::Machine m(p);
    workload::TraceRunner runner(m, trace);
    const auto r = runner.run();
    if (!r.completed) {
      std::fprintf(stderr, "replay did not complete\n");
      return 1;
    }
    t.add_row({std::string(core::scheme_name(s)),
               analysis::Table::integer(r.cycles),
               analysis::Table::num(static_cast<double>(r.cycles) * 5e-6, 3),
               analysis::Table::integer(m.stats().inval_txns),
               analysis::Table::num(m.stats().inval_sharers.mean()),
               analysis::Table::num(m.stats().inval_latency.mean()),
               analysis::Table::integer(m.network().stats().link_flit_hops)});
  }
  t.print(std::cout);
  return 0;
}
