// E6: home-node occupancy per invalidation transaction vs d — the
// controller-cycles metric of Holt et al. [18] that the paper's schemes
// directly attack (fewer sends, fewer ack receives at the home).
#include "bench_common.h"

using namespace mdw;

int main() {
  bench::banner("E6", "home-node occupancy per transaction, controller "
                      "cycles (16x16 mesh, uniform pattern)");

  std::vector<std::string> headers{"d"};
  for (core::Scheme s : core::kAllSchemes) headers.push_back(bench::S(s));
  analysis::Table t(headers);

  for (int d : {2, 4, 8, 16, 32, 64}) {
    std::vector<std::string> row{std::to_string(d)};
    for (core::Scheme s : core::kAllSchemes) {
      analysis::InvalExperimentConfig cfg;
      cfg.mesh = 16;
      cfg.scheme = s;
      cfg.d = d;
      cfg.repetitions = 8;
      cfg.seed = 300 + d;
      const auto m = analysis::measure_invalidations(cfg);
      row.push_back(analysis::Table::num(m.occupancy));
    }
    t.add_row(std::move(row));
  }
  t.print(std::cout);

  std::printf("\n--- request worms / ack messages per transaction at d=32 ---\n");
  analysis::Table t2({"scheme", "request worms", "ack messages"});
  for (core::Scheme s : core::kAllSchemes) {
    analysis::InvalExperimentConfig cfg;
    cfg.mesh = 16;
    cfg.scheme = s;
    cfg.d = 32;
    cfg.repetitions = 8;
    cfg.seed = 42;
    const auto m = analysis::measure_invalidations(cfg);
    t2.add_row({bench::S(s), analysis::Table::num(m.request_worms),
                analysis::Table::num(m.ack_messages)});
  }
  t2.print(std::cout);
  std::printf("\nExpected shape: UI-UA occupancy ~ d*(send+recv); MI-UA cuts "
              "the send side; MI-MA cuts both, approaching O(1) for the "
              "hierarchical and serpentine gathers.\n");
  return 0;
}
