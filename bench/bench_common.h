// Shared helpers for the bench binaries (experiments E1..E11; see DESIGN.md
// section 5 for the experiment index and EXPERIMENTS.md for results).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "analysis/experiment.h"
#include "analysis/table.h"
#include "core/scheme.h"
#include "obs/heatmap.h"
#include "obs/metrics.h"
#include "obs/trace_writer.h"

namespace mdw::bench {

inline std::string S(core::Scheme s) {
  return std::string(core::scheme_name(s));
}

inline void banner(const char* exp_id, const char* what) {
  std::printf("==============================================================="
              "=\n%s — %s\n(all latencies in 5 ns network cycles)\n"
              "==============================================================="
              "=\n\n",
              exp_id, what);
}

/// Observability command-line options, honored by the instrumented benches
/// (bench_hotspot, bench_miss_latency, bench_apps):
///   --metrics-json=<path>   write the metrics registry + per-link heatmap
///   --trace=<path>          write a Chrome trace (chrome://tracing, Perfetto)
struct BenchOptions {
  std::string metrics_json;
  std::string trace;
  [[nodiscard]] bool enabled() const {
    return !metrics_json.empty() || !trace.empty();
  }
  [[nodiscard]] bool tracing() const { return !trace.empty(); }
};

inline BenchOptions parse_options(int argc, char** argv) {
  BenchOptions opt;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--metrics-json=", 0) == 0) {
      opt.metrics_json = a.substr(15);
    } else if (a.rfind("--trace=", 0) == 0) {
      opt.trace = a.substr(8);
    } else {
      std::fprintf(stderr,
                   "unknown option '%s'\nusage: %s [--metrics-json=<path>] "
                   "[--trace=<path>]\n",
                   a.c_str(), argv[0]);
      std::exit(2);
    }
  }
  return opt;
}

/// Write whatever the options selected; prints one line per file written.
inline void write_observability(const BenchOptions& opt,
                                const obs::MetricsRegistry& registry,
                                const obs::LinkHeatmap* heatmap,
                                const obs::TraceWriter* trace) {
  if (!opt.metrics_json.empty()) {
    if (obs::write_metrics_json_file(opt.metrics_json, registry, heatmap)) {
      std::printf("wrote metrics JSON to %s\n", opt.metrics_json.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s\n", opt.metrics_json.c_str());
      std::exit(1);
    }
  }
  if (!opt.trace.empty() && trace != nullptr) {
    if (trace->write_file(opt.trace)) {
      std::printf("wrote Chrome trace (%zu events) to %s — open in "
                  "chrome://tracing or https://ui.perfetto.dev\n",
                  trace->num_events(), opt.trace.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s\n", opt.trace.c_str());
      std::exit(1);
    }
  }
}

} // namespace mdw::bench
