// Shared helpers for the bench binaries (experiments E1..E11; see DESIGN.md
// section 5 for the experiment index and EXPERIMENTS.md for results).
#pragma once

#include <cstdio>
#include <iostream>
#include <string>

#include "analysis/experiment.h"
#include "analysis/table.h"
#include "core/scheme.h"

namespace mdw::bench {

inline std::string S(core::Scheme s) {
  return std::string(core::scheme_name(s));
}

inline void banner(const char* exp_id, const char* what) {
  std::printf("==============================================================="
              "=\n%s — %s\n(all latencies in 5 ns network cycles)\n"
              "==============================================================="
              "=\n\n",
              exp_id, what);
}

} // namespace mdw::bench
