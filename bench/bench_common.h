// Shared helpers for the bench binaries (experiments E1..E11; see DESIGN.md
// section 5 for the experiment index and EXPERIMENTS.md for results).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "analysis/experiment.h"
#include "analysis/table.h"
#include "core/scheme.h"
#include "obs/heatmap.h"
#include "obs/metrics.h"
#include "obs/trace_writer.h"

namespace mdw::bench {

inline std::string S(core::Scheme s) {
  return std::string(core::scheme_name(s));
}

inline void banner(const char* exp_id, const char* what) {
  std::printf("==============================================================="
              "=\n%s — %s\n(all latencies in 5 ns network cycles)\n"
              "==============================================================="
              "=\n\n",
              exp_id, what);
}

/// Bench command-line options.  Every bench binary parses its argv through
/// parse_options, and any unrecognized or misspelled `--` flag (e.g.
/// `--metric-json=` for `--metrics-json=`) is a hard usage error — flags
/// are never silently dropped.
///
/// All benches:
///   --metrics-json=<path>   write the metrics registry + per-link heatmap
///   --trace=<path>          write a Chrome trace (chrome://tracing, Perfetto)
/// Sweep-migrated benches (E3, E4, E5, E8) additionally accept:
///   --jobs=N                sweep worker threads (default: hw concurrency)
///   --points-json=<path>    write per-point sweep results as JSON
///   --no-progress           suppress the stderr progress line
struct BenchOptions {
  std::string metrics_json;
  std::string trace;
  std::string points_json;
  int jobs = 0;          // 0 = hardware_concurrency
  bool progress = true;  // sweeps show progress only when stderr is a tty
  [[nodiscard]] bool enabled() const {
    return !metrics_json.empty() || !trace.empty();
  }
  [[nodiscard]] bool tracing() const { return !trace.empty(); }
};

/// `sweep`: accept the sweep-runner flags too (the migrated grid benches).
inline BenchOptions parse_options(int argc, char** argv, bool sweep = false) {
  BenchOptions opt;
  auto fail = [&](const std::string& a) {
    std::fprintf(stderr,
                 "unknown option '%s'\nusage: %s [--metrics-json=<path>] "
                 "[--trace=<path>]%s\n",
                 a.c_str(), argv[0],
                 sweep ? " [--jobs=N] [--points-json=<path>] [--no-progress]"
                       : "");
    std::exit(2);
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--metrics-json=", 0) == 0) {
      opt.metrics_json = a.substr(15);
    } else if (a.rfind("--trace=", 0) == 0) {
      opt.trace = a.substr(8);
    } else if (sweep && a.rfind("--jobs=", 0) == 0) {
      opt.jobs = std::atoi(a.c_str() + 7);
    } else if (sweep && a.rfind("--points-json=", 0) == 0) {
      opt.points_json = a.substr(14);
    } else if (sweep && a == "--no-progress") {
      opt.progress = false;
    } else {
      fail(a);
    }
  }
  return opt;
}

/// Write whatever the options selected; prints one line per file written.
inline void write_observability(const BenchOptions& opt,
                                const obs::MetricsRegistry& registry,
                                const obs::LinkHeatmap* heatmap,
                                const obs::TraceWriter* trace) {
  if (!opt.metrics_json.empty()) {
    if (obs::write_metrics_json_file(opt.metrics_json, registry, heatmap)) {
      std::printf("wrote metrics JSON to %s\n", opt.metrics_json.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s\n", opt.metrics_json.c_str());
      std::exit(1);
    }
  }
  if (!opt.trace.empty() && trace != nullptr) {
    if (trace->write_file(opt.trace)) {
      std::printf("wrote Chrome trace (%zu events) to %s — open in "
                  "chrome://tracing or https://ui.perfetto.dev\n",
                  trace->num_events(), opt.trace.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s\n", opt.trace.c_str());
      std::exit(1);
    }
  }
}

} // namespace mdw::bench
