// Microbenchmarks (google-benchmark): throughput of the simulator's hot
// components — planner, router pipeline, end-to-end protocol ops.  These are
// engineering benchmarks for the simulator itself, not paper experiments.
#include <benchmark/benchmark.h>

#include "core/inval_planner.h"
#include "dsm/machine.h"
#include "noc/worm_builder.h"
#include "sim/rng.h"
#include "workload/synthetic.h"

using namespace mdw;

namespace {

void BM_PlanInvalidation(benchmark::State& state) {
  const auto scheme = static_cast<core::Scheme>(state.range(0));
  const int d = static_cast<int>(state.range(1));
  const noc::MeshShape mesh(16, 16);
  sim::Rng rng(1);
  const NodeId home = mesh.id_of({7, 7});
  const auto sharers = workload::make_sharers(
      rng, mesh, home, home, d, workload::SharerPattern::Uniform);
  TxnId txn = 0;
  for (auto _ : state) {
    auto plan = core::plan_invalidation(scheme, mesh, home, sharers, ++txn,
                                        noc::WormSizing{});
    benchmark::DoNotOptimize(plan.request_worms.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PlanInvalidation)
    ->Args({static_cast<int>(core::Scheme::UiUa), 32})
    ->Args({static_cast<int>(core::Scheme::EcCmHg), 32})
    ->Args({static_cast<int>(core::Scheme::WfScSg), 32});

void BM_NetworkSaturatedTicks(benchmark::State& state) {
  // Cycles/second of the flit-level network under all-to-one load.
  sim::Engine eng;
  const noc::MeshShape mesh(8, 8);
  noc::Network net(eng, mesh, noc::NocParams{});
  net.set_delivery_handler([](NodeId, const noc::WormPtr&) {});
  sim::Rng rng(3);
  int live = 0;
  for (int i = 0; i < 200; ++i) {
    const auto s = static_cast<NodeId>(rng.next_below(64));
    const auto dnode = static_cast<NodeId>(rng.next_below(64));
    if (s == dnode) continue;
    net.inject(noc::make_unicast(mesh, noc::RoutingAlgo::EcubeXY,
                                 noc::VNet::Request, s, dnode, 16,
                                 static_cast<TxnId>(i), nullptr));
    ++live;
  }
  for (auto _ : state) {
    eng.run_for(1);
    benchmark::DoNotOptimize(net.stats().link_flit_hops);
  }
  state.SetItemsProcessed(state.iterations());
  (void)live;
}
BENCHMARK(BM_NetworkSaturatedTicks);

void BM_ProtocolReadMiss(benchmark::State& state) {
  dsm::SystemParams p;
  p.mesh_w = p.mesh_h = 8;
  dsm::Machine m(p);
  BlockAddr a = 1000;
  NodeId requester = 0;
  for (auto _ : state) {
    bool done = false;
    m.node(requester).read(a, [&](std::uint64_t) { done = true; });
    m.engine().run_until([&] { return done; }, 1'000'000);
    a += 64;  // fresh block each time: always a clean remote miss
    requester = (requester + 1) % 64;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProtocolReadMiss);

void BM_InvalidationTxn(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  dsm::SystemParams p;
  p.mesh_w = p.mesh_h = 8;
  p.scheme = core::Scheme::EcCmHg;
  dsm::Machine m(p);
  sim::Rng rng(5);
  BlockAddr a = 64;
  for (auto _ : state) {
    state.PauseTiming();
    const NodeId home = m.home_of(a);
    const auto sharers = workload::make_sharers(
        rng, m.network().mesh(), home, 0, d,
        workload::SharerPattern::Uniform);
    for (NodeId s : sharers) {
      bool done = false;
      m.node(s).read(a, [&](std::uint64_t) { done = true; });
      m.engine().run_until([&] { return done; }, 1'000'000);
    }
    state.ResumeTiming();
    bool done = false;
    m.node(0).write(a, 1, [&] { done = true; });
    m.engine().run_until([&] { return done; }, 1'000'000);
    a += 64;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InvalidationTxn)->Arg(8)->Arg(32);

} // namespace

BENCHMARK_MAIN();
