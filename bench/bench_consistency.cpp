// E12 (extension; paper §2: "variations of this sequence of steps are used
// to support other consistency models like release consistency [1]"):
// sequential consistency vs release-consistency-style eager exclusive
// grants, across schemes — writer-visible latency and application impact.
#include "bench_common.h"

#include "workload/apps.h"
#include "workload/trace_runner.h"

using namespace mdw;

int main() {
  bench::banner("E12 (extension)", "sequential vs release consistency: "
                                   "writer-visible write latency and "
                                   "application execution time");

  std::printf("--- write latency with d sharers (16x16 mesh, mean of 8) ---\n");
  {
    analysis::Table t({"scheme", "d", "SC write lat", "RC write lat",
                       "hidden (cyc)"});
    for (core::Scheme s : {core::Scheme::UiUa, core::Scheme::EcCmHg,
                           core::Scheme::WfP2Sg}) {
      for (int d : {8, 32}) {
        analysis::InvalExperimentConfig cfg;
        cfg.mesh = 16;
        cfg.scheme = s;
        cfg.d = d;
        cfg.repetitions = 8;
        cfg.seed = 31 + d;
        const auto sc = analysis::measure_invalidations(cfg);
        cfg.base.eager_exclusive_reply = true;
        const auto rc = analysis::measure_invalidations(cfg);
        t.add_row({bench::S(s), std::to_string(d),
                   analysis::Table::num(sc.write_latency),
                   analysis::Table::num(rc.write_latency),
                   analysis::Table::num(sc.write_latency - rc.write_latency)});
      }
    }
    t.print(std::cout);
  }

  std::printf("\n--- APSP, 64 vertices, 16 processors ---\n");
  {
    const workload::Trace trace = workload::apsp_trace(16, 64, 42);
    analysis::Table t({"scheme", "SC cycles", "RC cycles", "speedup"});
    for (core::Scheme s : {core::Scheme::UiUa, core::Scheme::EcCmHg}) {
      Cycle sc_cycles = 0, rc_cycles = 0;
      for (bool eager : {false, true}) {
        dsm::SystemParams p;
        p.mesh_w = p.mesh_h = 4;
        p.scheme = s;
        p.eager_exclusive_reply = eager;
        dsm::Machine m(p);
        workload::TraceRunner runner(m, trace);
        const auto r = runner.run();
        if (!r.completed) {
          std::fprintf(stderr, "replay failed\n");
          return 1;
        }
        (eager ? rc_cycles : sc_cycles) = r.cycles;
      }
      t.add_row({bench::S(s), analysis::Table::integer(sc_cycles),
                 analysis::Table::integer(rc_cycles),
                 analysis::Table::num(
                     static_cast<double>(sc_cycles) /
                         static_cast<double>(rc_cycles),
                     3)});
    }
    t.print(std::cout);
  }
  std::printf("\nExpected shape: RC hides most of the invalidation round "
              "trip from the writer, shrinking the UI-UA/MI-MA *latency* gap "
              "— but the message, traffic, and occupancy gaps remain, which "
              "is the paper's point that the mechanism helps under any "
              "consistency model.\n");
  return 0;
}
