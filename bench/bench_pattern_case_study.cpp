// E7 (paper Fig. 4 case study): one fixed, clustered invalidation pattern
// on an 8x8 mesh — including a fully-populated column 6, the sub-pattern
// the paper's UI-UA vs MI-UA figure walks through — measured transaction by
// transaction per scheme, plus per-pattern-class sweeps.
#include "bench_common.h"

using namespace mdw;

int main() {
  bench::banner("E7 (Fig. 4)", "fixed invalidation-pattern case study, 8x8 "
                               "mesh");

  const noc::MeshShape mesh(8, 8);
  const NodeId home = mesh.id_of({2, 3});
  const NodeId writer = mesh.id_of({5, 5});

  // The case-study pattern: all of column 6, part of the home row, a
  // cluster near the south-west corner.
  std::vector<NodeId> sharers;
  for (int y = 0; y < 8; ++y) sharers.push_back(mesh.id_of({6, y}));
  sharers.push_back(mesh.id_of({4, 3}));
  sharers.push_back(mesh.id_of({0, 3}));
  sharers.push_back(mesh.id_of({0, 0}));
  sharers.push_back(mesh.id_of({1, 0}));
  sharers.push_back(mesh.id_of({0, 1}));
  sharers.push_back(mesh.id_of({1, 1}));

  std::printf("home (2,3), writer (5,5), %zu sharers: column 6 fully shared "
              "+ home-row nodes + SW cluster\n\n",
              sharers.size());

  analysis::Table t({"scheme", "inval latency", "messages", "flit-hops",
                     "home occupancy"});
  for (core::Scheme s : core::kAllSchemes) {
    dsm::SystemParams p;
    p.mesh_w = p.mesh_h = 8;
    p.scheme = s;
    const auto r = analysis::measure_single_txn(p, home, writer, sharers);
    t.add_row({bench::S(s), analysis::Table::num(r.inval_latency),
               analysis::Table::num(r.messages, 0),
               analysis::Table::num(r.traffic_flits, 0),
               analysis::Table::num(r.occupancy, 0)});
  }
  t.print(std::cout);

  std::printf("\n--- pattern-class sweep (d=6, mean of 8 transactions) ---\n");
  analysis::Table t2({"pattern", "UI-UA", "EC-CM-CG", "EC-CM-HG", "WF-SC-SG"});
  for (auto pat : {workload::SharerPattern::Uniform,
                   workload::SharerPattern::Cluster,
                   workload::SharerPattern::SameColumn,
                   workload::SharerPattern::SameRow}) {
    std::vector<std::string> row{workload::pattern_name(pat)};
    for (core::Scheme s : {core::Scheme::UiUa, core::Scheme::EcCmCg,
                           core::Scheme::EcCmHg, core::Scheme::WfScSg}) {
      analysis::InvalExperimentConfig cfg;
      cfg.mesh = 8;
      cfg.scheme = s;
      cfg.pattern = pat;
      cfg.d = 6;
      cfg.repetitions = 8;
      cfg.seed = 5;
      const auto m = analysis::measure_invalidations(cfg);
      row.push_back(analysis::Table::num(m.inval_latency));
    }
    t2.add_row(std::move(row));
  }
  t2.print(std::cout);
  std::printf("\nExpected shape: same-column patterns are the EC schemes' "
              "best case (one worm, one gather); clustered patterns favour "
              "the WF serpentines.\n");
  return 0;
}
