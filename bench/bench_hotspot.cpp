// E8: hot-spot / contention study [47] — many concurrent invalidation
// transactions.  Shows the congestion relief around the home nodes that
// multidestination worms provide under load.  The (concurrent, scheme) grid
// lives in sweep::named_grid("e8") and runs across --jobs worker threads;
// the adaptive-routing comparison is a second small grid over a
// SystemParams variant axis.  The link-load profile and the instrumented
// observability pass are single-machine harnesses and stay serial.
#include "bench_sweep_common.h"

using namespace mdw;

int main(int argc, char** argv) {
  const bench::BenchOptions opt = bench::parse_options(argc, argv, true);
  const sweep::NamedGrid& g = *sweep::named_grid("e8");
  bench::banner("E8", g.description);

  const std::vector<sweep::SweepPoint> points = g.grid.expand();
  const sweep::SweepReport rep = bench::run_grid(points, opt);
  for (const sweep::MetricColumn& mc : g.metrics) {
    std::printf("--- %s ---\n", mc.title);
    sweep::pivot_by_scheme(g.grid, points, rep.results, g.axis, mc.value,
                           mc.precision)
        .print(std::cout);
    std::printf("\n");
  }

  std::printf("--- dynamic adaptive unicast routing (turn-model schemes, "
              "16 concurrent, d=16) ---\n");
  {
    sweep::SweepGrid ag;
    ag.schemes = {core::Scheme::WfScUa, core::Scheme::WfP2Sg};
    ag.meshes = {16};
    ag.sharers = {16};
    ag.concurrency = {16};
    ag.rounds = 3;
    dsm::SystemParams adaptive;
    adaptive.adaptive_unicast = true;
    ag.variants = {{"deterministic", dsm::SystemParams{}},
                   {"adaptive", adaptive}};
    ag.seed_fn = [](const sweep::SweepGrid&, const sweep::SweepPoint&) {
      return std::uint64_t{29};
    };
    const std::vector<sweep::SweepPoint> apoints = ag.expand();
    const sweep::SweepReport arep = bench::run_grid(apoints, opt);
    analysis::Table t({"scheme", "deterministic lat", "adaptive lat"});
    for (std::size_t ix = 0; ix < ag.schemes.size(); ++ix) {
      const sweep::PointResult& det =
          arep.results[ag.flat_index(0, 0, 0, 0, 0, ix)];
      const sweep::PointResult& ada =
          arep.results[ag.flat_index(1, 0, 0, 0, 0, ix)];
      t.add_row({bench::S(ag.schemes[ix]),
                 analysis::Table::num(det.m.inval_latency),
                 analysis::Table::num(ada.m.inval_latency)});
    }
    t.print(std::cout);
    std::printf("\n");
  }

  std::printf("--- link load around one hot home (16x16, d=32, 6 txns; "
              "mean flits per link, write phase only) ---\n");
  {
    analysis::Table t({"scheme", "home-adjacent", "home row (X links)",
                       "home col (Y links)", "elsewhere", "hottest link"});
    const noc::MeshShape mesh(16, 16);
    const NodeId home = mesh.id_of({8, 8});
    for (core::Scheme s : g.grid.schemes) {
      const auto lp = analysis::measure_link_load(s, 16, home, 32, 6, 3);
      t.add_row({bench::S(s), analysis::Table::num(lp.home_adjacent_mean),
                 analysis::Table::num(lp.home_row_mean),
                 analysis::Table::num(lp.home_col_mean),
                 analysis::Table::num(lp.elsewhere_mean),
                 analysis::Table::num(lp.max_link, 0)});
    }
    t.print(std::cout);
  }
  std::printf("\nExpected shape: under load, UI-UA latency degrades fastest "
              "(2d unicasts per txn congest the links around each home); "
              "the MI-MA schemes hold latency much flatter.  The link "
              "profile shows the paper's hot-spot anatomy: UI-UA loads the "
              "home row (request fan-out) and home column (ack fan-in) far "
              "above the mesh average; MI-MA flattens both.\n");

  if (!opt.points_json.empty()) {
    if (sweep::write_sweep_json_file(opt.points_json, points, rep)) {
      std::printf("\nwrote per-point JSON to %s\n", opt.points_json.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s\n", opt.points_json.c_str());
      return 1;
    }
  }
  if (opt.enabled()) {
    // Instrumented pass: one UI-UA hot-spot run with the registry (and,
    // when requested, the tracer) attached; dumps metrics + heatmap + trace.
    // Kept single-machine so --trace still produces one coherent timeline.
    std::printf("\n--- observability pass (UI-UA, 16 concurrent, d=16) ---\n");
    obs::MetricsRegistry registry;
    obs::TraceWriter trace;
    analysis::HotspotConfig cfg;
    cfg.mesh = 16;
    cfg.scheme = core::Scheme::UiUa;
    cfg.d = 16;
    cfg.concurrent = 16;
    cfg.rounds = 3;
    cfg.seed = 27;
    cfg.metrics = &registry;
    cfg.trace = opt.tracing() ? &trace : nullptr;
    const auto m = analysis::measure_hotspot(cfg);
    analysis::Table t({"inval latency mean", "p50", "p90", "p99"});
    t.add_row({analysis::Table::num(m.inval_latency),
               analysis::Table::num(m.inval_latency_p50),
               analysis::Table::num(m.inval_latency_p90),
               analysis::Table::num(m.inval_latency_p99)});
    t.print(std::cout);
    m.heatmap.render_ascii(std::cout);
    bench::write_observability(opt, registry, &m.heatmap, &trace);
  }
  return 0;
}
