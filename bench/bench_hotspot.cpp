// E8: hot-spot / contention study [47] — many concurrent invalidation
// transactions.  Shows the congestion relief around the home nodes that
// multidestination worms provide under load.
#include "bench_common.h"

using namespace mdw;

int main(int argc, char** argv) {
  const bench::BenchOptions opt = bench::parse_options(argc, argv);
  bench::banner("E8", "concurrent invalidation transactions (16x16 mesh, "
                      "d=16 per transaction, 3 rounds)");

  const core::Scheme schemes[] = {core::Scheme::UiUa, core::Scheme::EcCmUa,
                                  core::Scheme::EcCmCg, core::Scheme::EcCmHg,
                                  core::Scheme::WfScSg};

  for (const char* metric : {"mean inval latency", "round makespan"}) {
    std::printf("--- %s (cycles) ---\n", metric);
    std::vector<std::string> headers{"concurrent"};
    for (core::Scheme s : schemes) headers.push_back(bench::S(s));
    analysis::Table t(headers);
    for (int c : {1, 2, 4, 8, 16}) {
      std::vector<std::string> row{std::to_string(c)};
      for (core::Scheme s : schemes) {
        analysis::HotspotConfig cfg;
        cfg.mesh = 16;
        cfg.scheme = s;
        cfg.d = 16;
        cfg.concurrent = c;
        cfg.rounds = 3;
        cfg.seed = 11 + c;
        const auto m = analysis::measure_hotspot(cfg);
        row.push_back(analysis::Table::num(
            metric == std::string("round makespan") ? m.makespan
                                                    : m.inval_latency));
      }
      t.add_row(std::move(row));
    }
    t.print(std::cout);
    std::printf("\n");
  }
  std::printf("--- dynamic adaptive unicast routing (turn-model schemes, "
              "16 concurrent, d=16) ---\n");
  {
    analysis::Table t({"scheme", "deterministic lat", "adaptive lat"});
    for (core::Scheme s : {core::Scheme::WfScUa, core::Scheme::WfP2Sg}) {
      analysis::HotspotConfig cfg;
      cfg.mesh = 16;
      cfg.scheme = s;
      cfg.d = 16;
      cfg.concurrent = 16;
      cfg.rounds = 3;
      cfg.seed = 29;
      const auto det = analysis::measure_hotspot(cfg);
      cfg.base.adaptive_unicast = true;
      const auto ada = analysis::measure_hotspot(cfg);
      t.add_row({bench::S(s), analysis::Table::num(det.inval_latency),
                 analysis::Table::num(ada.inval_latency)});
    }
    t.print(std::cout);
    std::printf("\n");
  }
  std::printf("--- link load around one hot home (16x16, d=32, 6 txns; "
              "mean flits per link, write phase only) ---\n");
  {
    analysis::Table t({"scheme", "home-adjacent", "home row (X links)",
                       "home col (Y links)", "elsewhere", "hottest link"});
    const noc::MeshShape mesh(16, 16);
    const NodeId home = mesh.id_of({8, 8});
    for (core::Scheme s : schemes) {
      const auto lp = analysis::measure_link_load(s, 16, home, 32, 6, 3);
      t.add_row({bench::S(s), analysis::Table::num(lp.home_adjacent_mean),
                 analysis::Table::num(lp.home_row_mean),
                 analysis::Table::num(lp.home_col_mean),
                 analysis::Table::num(lp.elsewhere_mean),
                 analysis::Table::num(lp.max_link, 0)});
    }
    t.print(std::cout);
  }
  std::printf("\nExpected shape: under load, UI-UA latency degrades fastest "
              "(2d unicasts per txn congest the links around each home); "
              "the MI-MA schemes hold latency much flatter.  The link "
              "profile shows the paper's hot-spot anatomy: UI-UA loads the "
              "home row (request fan-out) and home column (ack fan-in) far "
              "above the mesh average; MI-MA flattens both.\n");

  if (opt.enabled()) {
    // Instrumented pass: one UI-UA hot-spot run with the registry (and,
    // when requested, the tracer) attached; dumps metrics + heatmap + trace.
    std::printf("\n--- observability pass (UI-UA, 16 concurrent, d=16) ---\n");
    obs::MetricsRegistry registry;
    obs::TraceWriter trace;
    analysis::HotspotConfig cfg;
    cfg.mesh = 16;
    cfg.scheme = core::Scheme::UiUa;
    cfg.d = 16;
    cfg.concurrent = 16;
    cfg.rounds = 3;
    cfg.seed = 27;
    cfg.metrics = &registry;
    cfg.trace = opt.tracing() ? &trace : nullptr;
    const auto m = analysis::measure_hotspot(cfg);
    analysis::Table t({"inval latency mean", "p50", "p90", "p99"});
    t.add_row({analysis::Table::num(m.inval_latency),
               analysis::Table::num(m.inval_latency_p50),
               analysis::Table::num(m.inval_latency_p90),
               analysis::Table::num(m.inval_latency_p99)});
    t.print(std::cout);
    m.heatmap.render_ascii(std::cout);
    bench::write_observability(opt, registry, &m.heatmap, &trace);
  }
  return 0;
}
