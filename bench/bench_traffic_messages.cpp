// E5: communication cost — network messages and link flit-hops per
// invalidation transaction vs d.  One sweep of the e5 grid feeds both
// tables (the serial bench re-ran every point per table; the measurements
// are identical either way).
#include "bench_sweep_common.h"

using namespace mdw;

int main(int argc, char** argv) {
  const bench::BenchOptions opt = bench::parse_options(argc, argv, true);
  bench::reject_trace(opt, argv[0]);
  const sweep::NamedGrid& g = *sweep::named_grid("e5");
  bench::banner("E5", g.description);

  const std::vector<sweep::SweepPoint> points = g.grid.expand();
  const sweep::SweepReport rep = bench::run_grid(points, opt);
  for (const sweep::MetricColumn& mc : g.metrics) {
    std::printf("--- %s ---\n", mc.title);
    sweep::pivot_by_scheme(g.grid, points, rep.results, g.axis, mc.value,
                           mc.precision)
        .print(std::cout);
    std::printf("\n");
  }
  std::printf("Expected shape: UI-UA needs 2d messages; MI-UA needs "
              "(#groups + d); MI-MA needs (#groups + #gathers), with WF "
              "serpentines at 2-4 total. Flit-hop savings are smaller than "
              "message savings (multidestination paths are longer), exactly "
              "as the paper discusses.\n");
  bench::write_sweep_artifacts(opt, points, rep);
  return 0;
}
