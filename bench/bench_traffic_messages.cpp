// E5: communication cost — network messages and link flit-hops per
// invalidation transaction vs d.
#include "bench_common.h"

using namespace mdw;

int main() {
  bench::banner("E5", "messages and flit-hop traffic per transaction "
                      "(16x16 mesh, uniform pattern)");

  for (const char* metric : {"messages", "flit-hops"}) {
    std::printf("--- %s per transaction ---\n", metric);
    std::vector<std::string> headers{"d"};
    for (core::Scheme s : core::kAllSchemes) headers.push_back(bench::S(s));
    analysis::Table t(headers);
    for (int d : {2, 4, 8, 16, 32, 64}) {
      std::vector<std::string> row{std::to_string(d)};
      for (core::Scheme s : core::kAllSchemes) {
        analysis::InvalExperimentConfig cfg;
        cfg.mesh = 16;
        cfg.scheme = s;
        cfg.d = d;
        cfg.repetitions = 8;
        cfg.seed = 500 + d;
        const auto m = analysis::measure_invalidations(cfg);
        row.push_back(analysis::Table::num(
            metric == std::string("messages") ? m.messages : m.traffic_flits,
            1));
      }
      t.add_row(std::move(row));
    }
    t.print(std::cout);
    std::printf("\n");
  }
  std::printf("Expected shape: UI-UA needs 2d messages; MI-UA needs "
              "(#groups + d); MI-MA needs (#groups + #gathers), with WF "
              "serpentines at 2-4 total. Flit-hop savings are smaller than "
              "message savings (multidestination paths are longer), exactly "
              "as the paper discusses.\n");
  return 0;
}
