// E1 + E2 (paper Tables 4 and 5): derived memory-access latencies in 5 ns
// cycles, and the component breakdown of a clean read miss to a
// neighbouring node — the calibration the paper validates against DASH [26],
// Alewife [8], and FLASH [17] measurements.
#include "bench_common.h"

#include "dsm/machine.h"

using namespace mdw;

namespace {

/// Measure one processor operation's latency on a fresh machine.
Cycle probe(dsm::SystemParams p, NodeId requester, BlockAddr addr, bool write,
            int pre_sharers = 0, NodeId pre_owner = kInvalidNode) {
  dsm::Machine m(p);
  // Optional pre-state: sharers or a remote owner.
  for (int i = 0; i < pre_sharers; ++i) {
    const NodeId s = static_cast<NodeId>((requester + 2 + i) % m.num_nodes());
    bool done = false;
    m.node(s).read(addr, [&](std::uint64_t) { done = true; });
    m.engine().run_until([&] { return done; }, 1'000'000);
  }
  if (pre_owner != kInvalidNode) {
    bool done = false;
    m.node(pre_owner).write(addr, 1, [&] { done = true; });
    m.engine().run_until([&] { return done; }, 1'000'000);
  }
  m.engine().run_to_quiescence(100'000);

  bool done = false;
  Cycle lat = 0;
  const Cycle t0 = m.engine().now();
  if (write) {
    m.node(requester).write(addr, 2, [&] {
      lat = m.engine().now() - t0;
      done = true;
    });
  } else {
    m.node(requester).read(addr, [&](std::uint64_t) {
      lat = m.engine().now() - t0;
      done = true;
    });
  }
  m.engine().run_until([&] { return done; }, 1'000'000);
  return lat;
}

} // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions opt = bench::parse_options(argc, argv);
  bench::banner("E1 (Table 4)", "derived typical memory access latencies");

  dsm::SystemParams p;
  p.mesh_w = p.mesh_h = 8;
  p.scheme = core::Scheme::UiUa;

  const noc::MeshShape mesh(8, 8);
  const NodeId center = mesh.id_of({3, 3});
  const NodeId neighbor = mesh.id_of({4, 3});
  const NodeId corner = mesh.id_of({7, 7});

  analysis::Table t({"operation", "cycles", "ns"});
  auto row = [&](const char* name, Cycle c) {
    t.add_row({name, analysis::Table::integer(c),
               analysis::Table::integer(c * 5)});
  };

  // Cache hit: issue twice, the second is a hit.
  {
    dsm::Machine m(p);
    bool done = false;
    m.node(center).read(100, [&](std::uint64_t) { done = true; });
    m.engine().run_until([&] { return done; }, 1'000'000);
    done = false;
    Cycle lat = 0;
    const Cycle t0 = m.engine().now();
    m.node(center).read(100, [&](std::uint64_t) {
      lat = m.engine().now() - t0;
      done = true;
    });
    m.engine().run_until([&] { return done; }, 1'000'000);
    row("read hit (local cache)", lat);
  }
  // Block homed at `neighbor`: addr % 64 == neighbor.
  row("clean read miss, home = neighbour", probe(p, center, neighbor, false));
  row("clean read miss, home = far corner", probe(p, center, corner, false));
  row("read miss, dirty at third node",
      probe(p, center, neighbor, false, 0, corner));
  row("write miss, uncached", probe(p, center, neighbor, true));
  row("write miss, 4 sharers", probe(p, center, neighbor, true, 4));
  row("write miss, 16 sharers", probe(p, center, neighbor, true, 16));
  row("write after write (recall)",
      probe(p, center, neighbor, true, 0, corner));
  t.print(std::cout);

  std::printf("\n");
  bench::banner("E2 (Table 5)",
                "clean read miss to neighbouring node: component breakdown");
  analysis::Table b({"component", "cycles"});
  const Cycle total = probe(p, center, neighbor, false);
  b.add_row({"L1 access (detect miss)", analysis::Table::integer(p.cache_access)});
  b.add_row({"compose + launch ReadReq (OC)",
             analysis::Table::integer(p.send_occupancy)});
  b.add_row({"request worm, 1 hop",
             analysis::Table::integer(
                 static_cast<std::uint64_t>(p.noc.router_delay + 1) * 2 +
                 static_cast<std::uint64_t>(p.sizing.control_size(1)))});
  b.add_row({"DC receive + directory lookup",
             analysis::Table::integer(p.recv_occupancy + p.dir_lookup)});
  b.add_row({"memory block access", analysis::Table::integer(p.mem_access)});
  b.add_row({"compose + launch ReadReply (OC)",
             analysis::Table::integer(p.send_occupancy)});
  b.add_row({"data worm, 1 hop",
             analysis::Table::integer(
                 static_cast<std::uint64_t>(p.noc.router_delay + 1) * 2 +
                 static_cast<std::uint64_t>(p.sizing.data_flits))});
  b.add_row({"CC receive + install",
             analysis::Table::integer(p.recv_occupancy + p.cache_access)});
  b.add_row({"measured end-to-end", analysis::Table::integer(total)});
  b.print(std::cout);
  std::printf("\nThe paper reports its version of this breakdown as 'very "
              "comparable' with DASH/Alewife hardware measurements (~100-150 "
              "proc cycles for a clean remote miss); at 2 network cycles per "
              "100 MHz processor cycle this lands in the same band.\n");

  if (opt.enabled()) {
    // Instrumented pass: replay the heaviest probe (write miss, 16 sharers)
    // with the registry/tracer attached and dump what the run looked like.
    std::printf("\n--- observability pass (write miss, 16 sharers) ---\n");
    obs::MetricsRegistry registry;
    obs::TraceWriter trace;
    dsm::Machine m(p, &registry);
    if (opt.tracing()) m.set_trace_writer(&trace);
    for (int i = 0; i < 16; ++i) {
      const NodeId s = static_cast<NodeId>((center + 2 + i) % m.num_nodes());
      bool done = false;
      m.node(s).read(neighbor, [&](std::uint64_t) { done = true; });
      m.engine().run_until([&] { return done; }, 1'000'000);
    }
    m.engine().run_to_quiescence(100'000);
    bool done = false;
    m.node(center).write(neighbor, 2, [&] { done = true; });
    m.engine().run_until([&] { return done; }, 1'000'000);
    m.engine().run_to_quiescence(100'000);
    m.snapshot_metrics();
    analysis::Table o({"inval latency", "p50", "p90", "p99", "flit-hops"});
    o.add_row({analysis::Table::num(m.stats().inval_latency.mean()),
               analysis::Table::num(m.stats().inval_latency.quantile(0.50)),
               analysis::Table::num(m.stats().inval_latency.quantile(0.90)),
               analysis::Table::num(m.stats().inval_latency.quantile(0.99)),
               analysis::Table::integer(m.network().stats().link_flit_hops)});
    o.print(std::cout);
    m.network().heatmap().render_ascii(std::cout);
    bench::write_observability(opt, registry, &m.network().heatmap(), &trace);
  }
  return 0;
}
