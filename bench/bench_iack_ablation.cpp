// E9: design-parameter ablation — i-ack buffer entries (the paper proposes
// 2-4) and consumption channels (4 guarantee deadlock freedom on a 2-D
// mesh [39]) under the MI-MA schemes.  Sensitivity only appears under
// concurrent transactions (isolated transactions never collide in a bank),
// so this bench drives 16 simultaneous invalidations per round.
#include "bench_common.h"

using namespace mdw;

namespace {

analysis::HotspotMeasurement run(core::Scheme s, int entries, int channels) {
  analysis::HotspotConfig cfg;
  cfg.mesh = 16;
  cfg.scheme = s;
  cfg.d = 24;
  cfg.concurrent = 16;
  cfg.rounds = 3;
  cfg.seed = 23;
  cfg.base.noc.iack_entries = entries;
  cfg.base.noc.consumption_channels = channels;
  return analysis::measure_hotspot(cfg);
}

} // namespace

int main() {
  bench::banner("E9", "i-ack buffer / consumption-channel ablation "
                      "(16x16 mesh, 16 concurrent transactions, d=24, "
                      "MI-MA schemes)");

  const core::Scheme schemes[] = {core::Scheme::EcCmCg, core::Scheme::EcCmHg,
                                  core::Scheme::WfP2Sg};

  std::printf("--- vs i-ack buffer entries (4 consumption channels) ---\n");
  {
    std::vector<std::string> headers{"entries"};
    for (core::Scheme s : schemes) headers.push_back(bench::S(s) + " lat");
    headers.push_back("bank-blocked cyc (EC-CM-CG)");
    headers.push_back("deferred gathers (EC-CM-CG)");
    analysis::Table t(headers);
    for (int entries : {1, 2, 3, 4, 8}) {
      std::vector<std::string> row{std::to_string(entries)};
      double blocked = 0, deferred = 0;
      for (core::Scheme s : schemes) {
        const auto m = run(s, entries, 4);
        row.push_back(m.completed ? analysis::Table::num(m.inval_latency)
                                  : std::string("deadlock"));
        if (s == core::Scheme::EcCmCg) {
          blocked = m.bank_blocked_cycles;
          deferred = m.deferred_gathers;
        }
      }
      row.push_back(analysis::Table::num(blocked, 0));
      row.push_back(analysis::Table::num(deferred, 0));
      t.add_row(std::move(row));
    }
    t.print(std::cout);
  }

  std::printf("\n--- vs consumption channels (4 i-ack entries) ---\n");
  {
    std::vector<std::string> headers{"channels"};
    for (core::Scheme s : schemes) headers.push_back(bench::S(s) + " lat");
    analysis::Table t(headers);
    for (int ch : {1, 2, 4, 8}) {
      std::vector<std::string> row{std::to_string(ch)};
      for (core::Scheme s : schemes) {
        const auto m = run(s, 4, ch);
        row.push_back(m.completed ? analysis::Table::num(m.inval_latency)
                                  : std::string("deadlock"));
      }
      t.add_row(std::move(row));
    }
    t.print(std::cout);
  }
  std::printf("\nExpected shape: latency is flat from 2-4 entries on (the "
              "paper's sizing claim); a single entry shows bank-blocking "
              "under concurrent transactions.  Fewer consumption channels "
              "serialize forward-and-absorb at shared intermediate "
              "destinations.\n");
  return 0;
}
