// E3: invalidation latency vs number of sharers d — the paper's headline
// figure.  16x16 mesh, uniform random sharer patterns, every scheme.  The
// grid itself lives in sweep::named_grid("e3"); each (d, scheme) point is
// an independent simulation executed across --jobs worker threads with
// results bit-identical to a serial run.
#include "bench_sweep_common.h"

using namespace mdw;

int main(int argc, char** argv) {
  const bench::BenchOptions opt = bench::parse_options(argc, argv, true);
  bench::reject_trace(opt, argv[0]);
  const sweep::NamedGrid& g = *sweep::named_grid("e3");
  bench::banner("E3", g.description);

  const std::vector<sweep::SweepPoint> points = g.grid.expand();
  const sweep::SweepReport rep = bench::run_grid(points, opt);
  sweep::pivot_by_scheme(g.grid, points, rep.results, g.axis,
                         g.metrics[0].value, g.metrics[0].precision)
      .print(std::cout);
  std::printf(
      "\nExpected shape: UI-UA grows ~linearly in d (send/receive "
      "serialization at the home); MI-UA flattens the request phase; MI-MA "
      "(CG/HG/SG) also collapses the ack phase, widening the gap with d.\n");
  bench::write_sweep_artifacts(opt, points, rep);
  return 0;
}
