// E3: invalidation latency vs number of sharers d — the paper's headline
// figure.  16x16 mesh, uniform random sharer patterns, every scheme.
#include "bench_common.h"

using namespace mdw;

int main() {
  bench::banner("E3", "invalidation latency vs sharers (16x16 mesh, uniform "
                      "pattern, mean of 8 transactions)");

  std::vector<std::string> headers{"d"};
  for (core::Scheme s : core::kAllSchemes) headers.push_back(bench::S(s));
  analysis::Table t(headers);

  for (int d : {2, 4, 8, 16, 32, 64}) {
    std::vector<std::string> row{std::to_string(d)};
    for (core::Scheme s : core::kAllSchemes) {
      analysis::InvalExperimentConfig cfg;
      cfg.mesh = 16;
      cfg.scheme = s;
      cfg.d = d;
      cfg.repetitions = 8;
      cfg.seed = 1000 + d;
      const auto m = analysis::measure_invalidations(cfg);
      row.push_back(analysis::Table::num(m.inval_latency));
    }
    t.add_row(std::move(row));
  }
  t.print(std::cout);
  std::printf(
      "\nExpected shape: UI-UA grows ~linearly in d (send/receive "
      "serialization at the home); MI-UA flattens the request phase; MI-MA "
      "(CG/HG/SG) also collapses the ack phase, widening the gap with d.\n");
  return 0;
}
