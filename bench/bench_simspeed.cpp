// Simulator-throughput benchmark (engineering metric, not a paper figure):
// how fast the cycle kernel itself runs, in simulated-cycles/sec and
// flit-hops/sec, across mesh sizes and invalidation schemes.
//
// Two workloads:
//   SingleTxn/<k>x<k>/<scheme>  one invalidation transaction at a time
//                               (priming untimed) — the sparse-activity
//                               regime of the latency experiments, where
//                               <2% of routers hold flits on a 16x16 mesh.
//   Burst/<k>x<k>               a burst of random unicasts driven to
//                               quiescence — the dense-activity regime.
//   Gather/<k>x<k>              high-degree EC-CM-HG invalidations — the
//                               gather-heavy regime (multidestination worms,
//                               i-ack posting, deferred pickups).
//   TxnSetup/<k>x<k>            a small pool of (block, home, sharer-set)
//                               patterns invalidated over and over — the
//                               cache-hit regime where the plan cache and
//                               route cache serve almost every transaction.
//   Stream/<k>x<k>              a zipfian synthetic workload stream replayed
//                               through StreamRunner on every node at once —
//                               the full-machine steady-state regime the
//                               streaming workload engine sustains.
//   Svc/<k>x<k>                 a write-heavy stream with 4 outstanding ops
//                               per node through svc::Session over the
//                               pipelined (depth 8), coalescing home — the
//                               service-layer regime.
//
// Usage:
//   bench_simspeed [--label=<s>] [--metrics-json=<path>] [--repeat=<n>]
//                  [--shards=<n>] [gbench flags]
//
// --repeat=N (default 1) runs every scenario N times and reports the median
// of each rate counter, which is what lands in --metrics-json; use it on
// noisy boxes where one run can catch a scheduling hiccup.
//
// --shards=N runs every scenario on the sharded parallel cycle kernel
// (DESIGN.md sections 14 and 16; bit-identical results, so the simulated
// cycle and hop counts match the sequential kernel exactly — only wall time
// changes).  An explicit flag beats the MDW_SHARDS environment variable;
// with neither, the sequential kernel runs (resolve_shards precedence).
//
// --metrics-json= writes one trajectory point: {"label", "mode", "shards",
// "cpus", "results": [{name, sim_cycles_per_sec, flit_hops_per_sec}]}.
// Points are accumulated by hand in BENCH_simspeed.json (see README
// "Simulator throughput"); check_simspeed.py compares same-shards points for
// regressions and same-label shards=1 vs shards=N pairs for parallel
// efficiency (the latter only when "cpus" shows real hardware parallelism).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "dsm/machine.h"
#include "noc/shard_plan.h"
#include "noc/worm_builder.h"
#include "sim/rng.h"
#include "workload/generators.h"
#include "workload/stream_runner.h"
#include "workload/synthetic.h"

using namespace mdw;

namespace {

/// Cycle-kernel shard count applied to every scenario (--shards=N); 0 means
/// unset, deferring to MDW_SHARDS and then the sequential kernel.
int g_shards = 0;

/// Prime `sharers` on block `a` so the next write triggers one invalidation
/// transaction of degree d.  Mirrors analysis::measure_invalidations.
void prime(dsm::Machine& m, BlockAddr a, const std::vector<NodeId>& sharers) {
  for (NodeId s : sharers) {
    bool done = false;
    m.node(s).read(a, [&](std::uint64_t) { done = true; });
    m.engine().run_until([&] { return done; }, 50'000'000);
  }
  (void)m.engine().run_to_quiescence(1'000'000);
}

void BM_SingleTxn(benchmark::State& state, int mesh_k, core::Scheme scheme) {
  dsm::SystemParams p;
  p.mesh_w = p.mesh_h = mesh_k;
  p.noc.shards = g_shards;
  p.scheme = scheme;
  dsm::Machine m(p);
  sim::Rng rng(7);
  const int n = m.num_nodes();
  const int d = 8;
  std::uint64_t cycles = 0, hops = 0;
  BlockAddr a = 0;
  for (auto _ : state) {
    state.PauseTiming();
    a += static_cast<BlockAddr>(n) + 1;  // fresh block, rotating home
    const NodeId home = m.home_of(a);
    NodeId writer = home;
    while (writer == home) writer = static_cast<NodeId>(rng.next_below(n));
    prime(m, a,
          workload::make_sharers(rng, m.network().mesh(), home, writer, d,
                                 workload::SharerPattern::Uniform));
    const Cycle c0 = m.engine().now();
    const std::uint64_t h0 = m.network().stats().link_flit_hops;
    state.ResumeTiming();
    bool done = false;
    m.node(writer).write(a, 1, [&] { done = true; });
    m.engine().run_until([&] { return done; }, 50'000'000);
    (void)m.engine().run_to_quiescence(1'000'000);
    cycles += m.engine().now() - c0;
    hops += m.network().stats().link_flit_hops - h0;
  }
  state.counters["sim_cycles_per_sec"] =
      benchmark::Counter(static_cast<double>(cycles), benchmark::Counter::kIsRate);
  state.counters["flit_hops_per_sec"] =
      benchmark::Counter(static_cast<double>(hops), benchmark::Counter::kIsRate);
  state.SetItemsProcessed(state.iterations());
}

void BM_Burst(benchmark::State& state, int mesh_k) {
  sim::Engine eng;
  const noc::MeshShape mesh(mesh_k, mesh_k);
  noc::NocParams np;
  np.shards = g_shards;
  noc::Network net(eng, mesh, np);
  net.set_delivery_handler([](NodeId, const noc::WormPtr&) {});
  net.set_parallel_replay(true);  // empty handler: trivially thread-safe
  sim::Rng rng(11);
  const int n = mesh.num_nodes();
  TxnId txn = 0;
  std::uint64_t cycles = 0, hops = 0;
  for (auto _ : state) {
    state.PauseTiming();
    const Cycle c0 = eng.now();
    const std::uint64_t h0 = net.stats().link_flit_hops;
    state.ResumeTiming();
    for (int i = 0; i < 2 * mesh_k; ++i) {
      const auto s = static_cast<NodeId>(rng.next_below(n));
      auto dst = static_cast<NodeId>(rng.next_below(n));
      if (dst == s) dst = (dst + 1) % n;
      net.inject(noc::make_unicast(mesh, noc::RoutingAlgo::EcubeXY,
                                   noc::VNet::Request, s, dst, 16, ++txn,
                                   nullptr));
    }
    (void)eng.run_to_quiescence(1'000'000);
    cycles += eng.now() - c0;
    hops += net.stats().link_flit_hops - h0;
  }
  state.counters["sim_cycles_per_sec"] =
      benchmark::Counter(static_cast<double>(cycles), benchmark::Counter::kIsRate);
  state.counters["flit_hops_per_sec"] =
      benchmark::Counter(static_cast<double>(hops), benchmark::Counter::kIsRate);
  state.SetItemsProcessed(state.iterations());
}

/// Gather-heavy regime: high-degree invalidations under the MI-MA
/// hierarchical-gather scheme (EC-CM-HG), so most simulated work is
/// multidestination gather worms threading column leaders, i-ack posting,
/// and deferred pickups — the paths that exercise the worm pool and the
/// i-ack retry queues hardest.
void BM_Gather(benchmark::State& state, int mesh_k) {
  dsm::SystemParams p;
  p.mesh_w = p.mesh_h = mesh_k;
  p.noc.shards = g_shards;
  p.scheme = core::Scheme::EcCmHg;
  dsm::Machine m(p);
  sim::Rng rng(13);
  const int n = m.num_nodes();
  const int d = 3 * mesh_k;  // sharers span most columns: many leader hops
  std::uint64_t cycles = 0, hops = 0;
  BlockAddr a = 0;
  for (auto _ : state) {
    state.PauseTiming();
    a += static_cast<BlockAddr>(n) + 1;
    const NodeId home = m.home_of(a);
    NodeId writer = home;
    while (writer == home) writer = static_cast<NodeId>(rng.next_below(n));
    prime(m, a,
          workload::make_sharers(rng, m.network().mesh(), home, writer, d,
                                 workload::SharerPattern::Uniform));
    const Cycle c0 = m.engine().now();
    const std::uint64_t h0 = m.network().stats().link_flit_hops;
    state.ResumeTiming();
    bool done = false;
    m.node(writer).write(a, 1, [&] { done = true; });
    m.engine().run_until([&] { return done; }, 50'000'000);
    (void)m.engine().run_to_quiescence(1'000'000);
    cycles += m.engine().now() - c0;
    hops += m.network().stats().link_flit_hops - h0;
  }
  state.counters["sim_cycles_per_sec"] =
      benchmark::Counter(static_cast<double>(cycles), benchmark::Counter::kIsRate);
  state.counters["flit_hops_per_sec"] =
      benchmark::Counter(static_cast<double>(hops), benchmark::Counter::kIsRate);
  state.SetItemsProcessed(state.iterations());
}

/// Steady-state transaction setup: a fixed pool of (block, home, sharer-set)
/// patterns is invalidated round after round, so from the second round on
/// every plan comes out of the plan cache and every unicast route out of the
/// route cache.  This is the regime long phased workloads settle into —
/// the same working set of blocks invalidated repeatedly — and is the
/// scenario the memoization layer is sized for.
void BM_TxnSetup(benchmark::State& state, int mesh_k) {
  dsm::SystemParams p;
  p.mesh_w = p.mesh_h = mesh_k;
  p.noc.shards = g_shards;
  p.scheme = core::Scheme::EcCmHg;
  dsm::Machine m(p);
  sim::Rng rng(17);
  const int n = m.num_nodes();
  const int d = 8;
  constexpr int kPoolSize = 32;
  struct Pattern {
    BlockAddr addr;
    NodeId writer;
    std::vector<NodeId> sharers;
  };
  std::vector<Pattern> pool;
  pool.reserve(kPoolSize);
  for (int i = 0; i < kPoolSize; ++i) {
    const auto addr =
        static_cast<BlockAddr>(i + 1) * static_cast<BlockAddr>(n) + i;
    const NodeId home = m.home_of(addr);
    NodeId writer = home;
    while (writer == home) writer = static_cast<NodeId>(rng.next_below(n));
    pool.push_back({addr, writer,
                    workload::make_sharers(rng, m.network().mesh(), home,
                                           writer, d,
                                           workload::SharerPattern::Uniform)});
  }
  // Warm round: populate both caches so the timed loop measures hits.
  for (const Pattern& pat : pool) {
    prime(m, pat.addr, pat.sharers);
    bool done = false;
    m.node(pat.writer).write(pat.addr, 1, [&] { done = true; });
    m.engine().run_until([&] { return done; }, 50'000'000);
    (void)m.engine().run_to_quiescence(1'000'000);
  }
  std::uint64_t cycles = 0, hops = 0;
  std::size_t next = 0;
  for (auto _ : state) {
    state.PauseTiming();
    const Pattern& pat = pool[next];
    next = next + 1 == pool.size() ? 0 : next + 1;
    prime(m, pat.addr, pat.sharers);
    const Cycle c0 = m.engine().now();
    const std::uint64_t h0 = m.network().stats().link_flit_hops;
    state.ResumeTiming();
    bool done = false;
    m.node(pat.writer).write(pat.addr, 1, [&] { done = true; });
    m.engine().run_until([&] { return done; }, 50'000'000);
    (void)m.engine().run_to_quiescence(1'000'000);
    cycles += m.engine().now() - c0;
    hops += m.network().stats().link_flit_hops - h0;
  }
  state.counters["sim_cycles_per_sec"] =
      benchmark::Counter(static_cast<double>(cycles), benchmark::Counter::kIsRate);
  state.counters["flit_hops_per_sec"] =
      benchmark::Counter(static_cast<double>(hops), benchmark::Counter::kIsRate);
  state.SetItemsProcessed(state.iterations());
}

/// Full-machine streaming regime: every node issues from a zipfian
/// generator stream at once, so the simulator sustains hundreds of in-flight
/// coherence transactions — the workload engine's steady state.  The machine
/// and source persist across iterations (warm caches, warm directories);
/// each iteration replays a fresh reset of the same deterministic stream.
void BM_Stream(benchmark::State& state, int mesh_k) {
  dsm::SystemParams p;
  p.mesh_w = p.mesh_h = mesh_k;
  p.noc.shards = g_shards;
  p.scheme = core::Scheme::EcCmHg;
  dsm::Machine m(p);
  workload::GenConfig cfg;
  cfg.kind = workload::GenKind::Zipfian;
  cfg.nprocs = m.num_nodes();
  cfg.nblocks = 512;
  cfg.ops_per_proc = 20;
  cfg.seed = 23;
  cfg.group = 8;
  const auto src = workload::make_generator(cfg, m.network().mesh());
  workload::StreamRunnerOptions opt;
  opt.windowed = false;  // measure the replay engine, not the stats layer
  std::uint64_t cycles = 0, hops = 0;
  bool first = true;
  for (auto _ : state) {
    state.PauseTiming();
    if (!first) src->reset();
    first = false;
    const Cycle c0 = m.engine().now();
    const std::uint64_t h0 = m.network().stats().link_flit_hops;
    state.ResumeTiming();
    workload::StreamRunner runner(m, *src, opt);
    benchmark::DoNotOptimize(runner.run());
    cycles += m.engine().now() - c0;
    hops += m.network().stats().link_flit_hops - h0;
  }
  state.counters["sim_cycles_per_sec"] =
      benchmark::Counter(static_cast<double>(cycles), benchmark::Counter::kIsRate);
  state.counters["flit_hops_per_sec"] =
      benchmark::Counter(static_cast<double>(hops), benchmark::Counter::kIsRate);
  state.SetItemsProcessed(state.iterations());
}

/// Service-layer regime: every node keeps 4 ops in flight through its
/// svc::Session over a pipelined (depth 8), coalescing (32-cycle window)
/// home on a write-heavy stream — the E11s machinery under full load, where
/// the per-home queues, merged worm waves, and the MSHR map all stay hot.
void BM_Svc(benchmark::State& state, int mesh_k) {
  dsm::SystemParams p;
  p.mesh_w = p.mesh_h = mesh_k;
  p.noc.shards = g_shards;
  p.scheme = core::Scheme::EcCmHg;
  p.svc.pipeline_depth = 8;
  p.svc.coalesce_window = 32;
  dsm::Machine m(p);
  workload::GenConfig cfg;
  cfg.kind = workload::GenKind::WriteHeavy;
  cfg.nprocs = m.num_nodes();
  cfg.nblocks = 512;
  cfg.ops_per_proc = 20;
  cfg.seed = 29;
  cfg.group = 8;
  const auto src = workload::make_generator(cfg, m.network().mesh());
  workload::StreamRunnerOptions opt;
  opt.windowed = false;  // measure the engine, not the stats layer
  opt.outstanding = 4;   // implies service mode
  std::uint64_t cycles = 0, hops = 0;
  bool first = true;
  for (auto _ : state) {
    state.PauseTiming();
    if (!first) src->reset();
    first = false;
    const Cycle c0 = m.engine().now();
    const std::uint64_t h0 = m.network().stats().link_flit_hops;
    state.ResumeTiming();
    workload::StreamRunner runner(m, *src, opt);
    benchmark::DoNotOptimize(runner.run());
    cycles += m.engine().now() - c0;
    hops += m.network().stats().link_flit_hops - h0;
  }
  state.counters["sim_cycles_per_sec"] =
      benchmark::Counter(static_cast<double>(cycles), benchmark::Counter::kIsRate);
  state.counters["flit_hops_per_sec"] =
      benchmark::Counter(static_cast<double>(hops), benchmark::Counter::kIsRate);
  state.SetItemsProcessed(state.iterations());
}

/// Console output plus capture of the per-benchmark rate counters so main()
/// can emit the --metrics-json trajectory point.
class CapturingReporter : public benchmark::ConsoleReporter {
public:
  explicit CapturingReporter(int repeat) : repeat_(repeat) {}

  struct Row {
    std::string name;
    double cycles_per_sec = 0;
    double hops_per_sec = 0;
  };
  std::vector<Row> rows;

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const auto& r : runs) {
      if (r.error_occurred) continue;
      // Under --repeat=N each scenario reports aggregates (mean, median,
      // stddev, cv); keep only the median — robust to the occasional
      // scheduling hiccup on a shared box.
      if (repeat_ > 1 && r.aggregate_name != "median") continue;
      Row row;
      row.name = r.run_name.function_name;
      if (auto it = r.counters.find("sim_cycles_per_sec"); it != r.counters.end())
        row.cycles_per_sec = it->second;
      if (auto it = r.counters.find("flit_hops_per_sec"); it != r.counters.end())
        row.hops_per_sec = it->second;
      rows.push_back(std::move(row));
    }
    ConsoleReporter::ReportRuns(runs);
  }

private:
  int repeat_;
};

bool write_point_json(const std::string& path, const std::string& label,
                      const std::vector<CapturingReporter::Row>& rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const char* mode = std::getenv("MDW_FULL_SWEEP") != nullptr &&
                             *std::getenv("MDW_FULL_SWEEP") != '0'
                         ? "full_sweep"
                         : "active_region";
  std::fprintf(f, "{\n  \"schema\": \"mdw.bench_simspeed.v1\",\n");
  std::fprintf(f, "  \"label\": \"%s\",\n  \"mode\": \"%s\",\n", label.c_str(),
               mode);
  // shards/cpus let check_simspeed.py pair shards=1 vs shards=N points and
  // skip the parallel-efficiency gate on hosts with no real parallelism.
  // The shard count recorded is the RESOLVED one (flag, else MDW_SHARDS,
  // else 1), never the unset sentinel.
  std::fprintf(f, "  \"shards\": %d,\n  \"cpus\": %u,\n",
               noc::resolve_shards(g_shards),
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"results\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"sim_cycles_per_sec\": %.6g, "
                 "\"flit_hops_per_sec\": %.6g}%s\n",
                 rows[i].name.c_str(), rows[i].cycles_per_sec,
                 rows[i].hops_per_sec, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  return true;
}

} // namespace

int main(int argc, char** argv) {
  std::string json_path, label = "dev";
  int repeat = 1;
  std::vector<char*> args;
  args.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--metrics-json=", 0) == 0) {
      json_path = a.substr(15);
    } else if (a.rfind("--label=", 0) == 0) {
      label = a.substr(8);
    } else if (a.rfind("--repeat=", 0) == 0) {
      repeat = std::atoi(a.c_str() + 9);
      if (repeat < 1) repeat = 1;
    } else if (a.rfind("--shards=", 0) == 0) {
      g_shards = std::atoi(a.c_str() + 9);
      if (g_shards < 1) {
        std::fprintf(stderr, "--shards must be >= 1\n");
        return 1;
      }
    } else {
      args.push_back(argv[i]);
    }
  }
  // --repeat maps onto gbench repetitions with only the aggregate rows
  // reported; CapturingReporter then keeps the median per scenario.
  const std::string rep_flag =
      "--benchmark_repetitions=" + std::to_string(repeat);
  const std::string agg_flag = "--benchmark_report_aggregates_only=true";
  if (repeat > 1) {
    args.push_back(const_cast<char*>(rep_flag.c_str()));
    args.push_back(const_cast<char*>(agg_flag.c_str()));
  }

  const struct {
    int mesh;
    core::Scheme scheme;
  } single_pts[] = {
      {8, core::Scheme::UiUa},    {16, core::Scheme::UiUa},
      {32, core::Scheme::UiUa},   {8, core::Scheme::EcCmHg},
      {16, core::Scheme::EcCmHg}, {32, core::Scheme::EcCmHg},
      {16, core::Scheme::WfScSg},
  };
  for (const auto& pt : single_pts) {
    const std::string name = "SingleTxn/" + std::to_string(pt.mesh) + "x" +
                             std::to_string(pt.mesh) + "/" +
                             std::string(core::scheme_name(pt.scheme));
    benchmark::RegisterBenchmark(name.c_str(), BM_SingleTxn, pt.mesh,
                                 pt.scheme)
        ->UseRealTime();
  }
  for (int mesh : {8, 16, 32, 64}) {
    const std::string name =
        "Burst/" + std::to_string(mesh) + "x" + std::to_string(mesh);
    benchmark::RegisterBenchmark(name.c_str(), BM_Burst, mesh)
        ->UseRealTime();
  }
  for (int mesh : {16, 32}) {
    const std::string name =
        "Gather/" + std::to_string(mesh) + "x" + std::to_string(mesh);
    benchmark::RegisterBenchmark(name.c_str(), BM_Gather, mesh)
        ->UseRealTime();
  }
  for (int mesh : {16, 32}) {
    const std::string name =
        "TxnSetup/" + std::to_string(mesh) + "x" + std::to_string(mesh);
    benchmark::RegisterBenchmark(name.c_str(), BM_TxnSetup, mesh)
        ->UseRealTime();
  }
  for (int mesh : {16, 32, 64}) {
    const std::string name =
        "Stream/" + std::to_string(mesh) + "x" + std::to_string(mesh);
    benchmark::RegisterBenchmark(name.c_str(), BM_Stream, mesh)
        ->UseRealTime();
  }
  for (int mesh : {16, 32}) {
    const std::string name =
        "Svc/" + std::to_string(mesh) + "x" + std::to_string(mesh);
    benchmark::RegisterBenchmark(name.c_str(), BM_Svc, mesh)
        ->UseRealTime();
  }

  int bargc = static_cast<int>(args.size());
  benchmark::Initialize(&bargc, args.data());
  if (benchmark::ReportUnrecognizedArguments(bargc, args.data())) return 1;
  CapturingReporter reporter(repeat);
  benchmark::RunSpecifiedBenchmarks(&reporter);

  if (!json_path.empty()) {
    if (!write_point_json(json_path, label, reporter.rows)) {
      std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("wrote throughput point to %s\n", json_path.c_str());
  }
  return 0;
}
