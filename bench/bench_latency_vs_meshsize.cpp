// E4: scalability — invalidation latency vs mesh size at proportional
// sharing (d = k on a k x k mesh).  The grid lives in
// sweep::named_grid("e4") and runs across --jobs worker threads; per-point
// results are bit-identical to a serial run.
#include "bench_sweep_common.h"

using namespace mdw;

int main(int argc, char** argv) {
  const bench::BenchOptions opt = bench::parse_options(argc, argv, true);
  bench::reject_trace(opt, argv[0]);
  const sweep::NamedGrid& g = *sweep::named_grid("e4");
  bench::banner("E4", g.description);

  const std::vector<sweep::SweepPoint> points = g.grid.expand();
  const sweep::SweepReport rep = bench::run_grid(points, opt);
  sweep::pivot_by_scheme(g.grid, points, rep.results, g.axis,
                         g.metrics[0].value, g.metrics[0].precision)
      .print(std::cout);
  std::printf("\nExpected shape: the UI-UA/MI-MA gap widens with system size "
              "(longer unicast fan-out, worse hot-spotting at the home).\n");
  bench::write_sweep_artifacts(opt, points, rep);
  return 0;
}
