// E4: scalability — invalidation latency vs mesh size at proportional
// sharing (d = k on a k x k mesh).
#include "bench_common.h"

using namespace mdw;

int main() {
  bench::banner("E4", "invalidation latency vs mesh size (d = k sharers, "
                      "uniform pattern, mean of 8 transactions)");

  std::vector<std::string> headers{"mesh", "d"};
  for (core::Scheme s : core::kAllSchemes) headers.push_back(bench::S(s));
  analysis::Table t(headers);

  for (int k : {4, 8, 12, 16}) {
    std::vector<std::string> row{std::to_string(k) + "x" + std::to_string(k),
                                 std::to_string(k)};
    for (core::Scheme s : core::kAllSchemes) {
      analysis::InvalExperimentConfig cfg;
      cfg.mesh = k;
      cfg.scheme = s;
      cfg.d = k;
      cfg.repetitions = 8;
      cfg.seed = 77 + k;
      const auto m = analysis::measure_invalidations(cfg);
      row.push_back(analysis::Table::num(m.inval_latency));
    }
    t.add_row(std::move(row));
  }
  t.print(std::cout);
  std::printf("\nExpected shape: the UI-UA/MI-MA gap widens with system size "
              "(longer unicast fan-out, worse hot-spotting at the home).\n");
  return 0;
}
