// Glue between BenchOptions and the sweep runner for the grid benches
// (E3, E4, E5, E8): run a grid with --jobs workers and write the
// --points-json / --metrics-json artifacts.
#pragma once

#include <unistd.h>

#include "bench_common.h"
#include "sweep/named_grids.h"

namespace mdw::bench {

/// Chrome traces are per-machine and sweeps run one machine per point, so
/// the grid benches reject --trace outright rather than dropping it.
inline void reject_trace(const BenchOptions& opt, const char* argv0) {
  if (!opt.trace.empty()) {
    std::fprintf(stderr,
                 "%s: --trace is not supported by sweep-migrated benches "
                 "(one machine per point); use --points-json or "
                 "--metrics-json instead\n",
                 argv0);
    std::exit(2);
  }
}

/// Run the points across the pool; exits with the failure message when a
/// point throws.
inline sweep::SweepReport run_grid(const std::vector<sweep::SweepPoint>& points,
                                   const BenchOptions& opt) {
  sweep::RunnerOptions ro;
  ro.jobs = opt.jobs;
  ro.progress = opt.progress && isatty(fileno(stderr)) != 0;
  sweep::SweepReport rep = sweep::ThreadPoolRunner(ro).run(points);
  if (!rep.ok) {
    std::fprintf(stderr, "sweep failed: %s\n", rep.error.c_str());
    std::exit(1);
  }
  return rep;
}

/// --points-json: per-point results; --metrics-json: the merged registry
/// (plus the merged heatmap when the grid had a single mesh size).
inline void write_sweep_artifacts(const BenchOptions& opt,
                                  const std::vector<sweep::SweepPoint>& points,
                                  const sweep::SweepReport& rep) {
  if (!opt.points_json.empty()) {
    if (sweep::write_sweep_json_file(opt.points_json, points, rep)) {
      std::printf("wrote per-point JSON to %s\n", opt.points_json.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s\n", opt.points_json.c_str());
      std::exit(1);
    }
  }
  if (!opt.metrics_json.empty()) {
    if (obs::write_metrics_json_file(opt.metrics_json, rep.metrics,
                                     rep.sole_heatmap())) {
      std::printf("wrote metrics JSON to %s\n", opt.metrics_json.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s\n", opt.metrics_json.c_str());
      std::exit(1);
    }
  }
}

} // namespace mdw::bench
