// E11 (paper §2.3.3): analytic cost model vs cycle-level simulation.
// Exact plan-derived message counts must match the simulator exactly; the
// closed-form latency/occupancy estimates must track the measured trends.
#include "bench_common.h"

#include "core/analytic.h"

using namespace mdw;

int main() {
  bench::banner("E11", "analytic model vs simulation (16x16 mesh, uniform "
                       "pattern)");

  std::printf("--- messages per transaction: plan-derived vs simulated ---\n");
  {
    analysis::Table t({"scheme", "d", "plan msgs", "sim msgs"});
    sim::Rng rng(4242);
    const noc::MeshShape mesh(16, 16);
    for (core::Scheme s : core::kAllSchemes) {
      for (int d : {8, 32}) {
        // One fixed transaction, both ways.
        const NodeId home = mesh.id_of({7, 7});
        const NodeId writer = mesh.id_of({2, 11});
        auto sharers = workload::make_sharers(
            rng, mesh, home, writer, d, workload::SharerPattern::Uniform);
        core::AnalyticParams ap;
        ap.k = 16;
        ap.d = d;
        const auto plan_est =
            core::estimate_from_plan(s, mesh, home, sharers, ap);
        dsm::SystemParams p;
        p.mesh_w = p.mesh_h = 16;
        p.scheme = s;
        const auto simr = analysis::measure_single_txn(p, home, writer, sharers);
        t.add_row({bench::S(s), std::to_string(d),
                   analysis::Table::num(plan_est.messages, 0),
                   analysis::Table::num(simr.messages, 0)});
      }
    }
    t.print(std::cout);
  }

  std::printf("\n--- closed-form latency model vs simulation (mean of 8) ---\n");
  {
    analysis::Table t({"scheme", "d", "model lat", "sim lat", "ratio"});
    for (core::Scheme s :
         {core::Scheme::UiUa, core::Scheme::EcCmUa, core::Scheme::EcCmHg}) {
      for (int d : {4, 16, 64}) {
        core::AnalyticParams ap;
        ap.k = 16;
        ap.d = d;
        const auto est = core::estimate(s, ap);
        analysis::InvalExperimentConfig cfg;
        cfg.mesh = 16;
        cfg.scheme = s;
        cfg.d = d;
        cfg.repetitions = 8;
        cfg.seed = 9 + d;
        const auto m = analysis::measure_invalidations(cfg);
        t.add_row({bench::S(s), std::to_string(d),
                   analysis::Table::num(est.latency),
                   analysis::Table::num(m.inval_latency),
                   analysis::Table::num(est.latency / m.inval_latency, 2)});
      }
    }
    t.print(std::cout);
  }
  std::printf("\nExpected shape: message counts match exactly; the "
              "closed-form latency stays within a small constant factor and "
              "preserves the scheme ordering.\n");
  return 0;
}
