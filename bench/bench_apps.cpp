// E10 (paper Table 6 + application results): Barnes-Hut (128 bodies, 4
// steps), blocked LU (128x128, 8x8 blocks), and All Pairs Shortest Path,
// replayed on a 16-node machine under every scheme.
#include "bench_common.h"

#include "workload/apps.h"
#include "workload/trace_runner.h"

using namespace mdw;

namespace {

struct App {
  const char* name;
  workload::Trace trace;
};

void run_app(const App& app) {
  std::printf("--- %s (%zu shared accesses, %d barriers) ---\n", app.name,
              app.trace.total_accesses(), app.trace.num_barriers);
  analysis::Table t({"scheme", "exec cycles", "norm.", "inval txns",
                     "avg d", "avg inval lat", "flit-hops"});
  double base_cycles = 0;
  for (core::Scheme s : core::kAllSchemes) {
    dsm::SystemParams p;
    p.mesh_w = p.mesh_h = 4;
    p.scheme = s;
    dsm::Machine m(p);
    workload::TraceRunner runner(m, app.trace);
    const auto r = runner.run();
    if (!r.completed) {
      std::fprintf(stderr, "replay failed for %s\n", bench::S(s).c_str());
      std::exit(1);
    }
    if (s == core::Scheme::UiUa) base_cycles = static_cast<double>(r.cycles);
    t.add_row({bench::S(s), analysis::Table::integer(r.cycles),
               analysis::Table::num(
                   static_cast<double>(r.cycles) / base_cycles, 3),
               analysis::Table::integer(m.stats().inval_txns),
               analysis::Table::num(m.stats().inval_sharers.mean()),
               analysis::Table::num(m.stats().inval_latency.mean()),
               analysis::Table::integer(m.network().stats().link_flit_hops)});
  }
  t.print(std::cout);
  std::printf("\n");
}

} // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions opt = bench::parse_options(argc, argv);
  bench::banner("E10 (Table 6)", "application workloads on 16 processors "
                                 "(4x4 mesh); norm. = execution time relative "
                                 "to UI-UA");

  run_app({"Barnes-Hut, 128 bodies, 4 steps",
           workload::barnes_hut_trace(16, 128, 4, 42)});
  run_app({"Blocked LU, 128x128, 8x8 blocks",
           workload::lu_trace(16, 128, 8, 42)});
  run_app({"APSP (Floyd-Warshall), 64 vertices",
           workload::apsp_trace(16, 64, 42)});

  std::printf("Expected shape: gains track each application's invalidation "
              "intensity — largest for APSP (every pivot-row write "
              "invalidates all readers), modest for LU (small sharer "
              "counts).\n");

  if (opt.enabled()) {
    // Instrumented pass: Barnes-Hut under UI-UA with registry/tracer on.
    std::printf("\n--- observability pass (Barnes-Hut, UI-UA) ---\n");
    obs::MetricsRegistry registry;
    obs::TraceWriter trace;
    dsm::SystemParams p;
    p.mesh_w = p.mesh_h = 4;
    p.scheme = core::Scheme::UiUa;
    dsm::Machine m(p, &registry);
    if (opt.tracing()) m.set_trace_writer(&trace);
    workload::TraceRunner runner(m, workload::barnes_hut_trace(16, 128, 4, 42));
    const auto r = runner.run();
    if (!r.completed) {
      std::fprintf(stderr, "instrumented replay failed\n");
      return 1;
    }
    m.snapshot_metrics();
    analysis::Table o({"exec cycles", "inval lat p50", "p90", "p99"});
    o.add_row({analysis::Table::integer(r.cycles),
               analysis::Table::num(m.stats().inval_latency.quantile(0.50)),
               analysis::Table::num(m.stats().inval_latency.quantile(0.90)),
               analysis::Table::num(m.stats().inval_latency.quantile(0.99))});
    o.print(std::cout);
    m.network().heatmap().render_ascii(std::cout);
    bench::write_observability(opt, registry, &m.network().heatmap(), &trace);
  }
  return 0;
}
