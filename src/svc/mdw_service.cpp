// mdw_service — drive a synthetic workload through the asynchronous
// coherence service layer (svc::Session) and report the home-side pipeline
// and coalescing behaviour next to the usual steady-state stream stats.
//
//   mdw_service --mesh=16x16 --outstanding=4 --depth=4 --coalesce=32
//   mdw_service --gen=write-heavy --mesh=32x32 --outstanding=8 --depth=8
//   mdw_service --outstanding=1 --depth=1          # serialized baseline
//
// --outstanding is the per-client window (ops each node keeps in flight);
// --depth caps concurrent invalidation transactions per home (0 = unbounded);
// --coalesce holds an admitted invalidation up to N cycles so back-to-back
// writes hitting the same home merge into one multidestination worm wave.
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "dsm/machine.h"
#include "obs/metrics.h"
#include "svc/service.h"
#include "workload/generators.h"
#include "workload/stream_runner.h"

using namespace mdw;

namespace {

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "\n"
      "service-layer knobs:\n"
      "  --outstanding=N     ops each client keeps in flight (default 4)\n"
      "  --depth=K           per-home invalidation pipeline depth\n"
      "                      (0 = unbounded, 1 = serialized baseline;\n"
      "                      default 0)\n"
      "  --coalesce=W        coalescing window, cycles (0 = off; default 0;\n"
      "                      ineffective at --depth=1)\n"
      "  --require-coalesce  exit nonzero unless at least one merged\n"
      "                      transaction was launched (CI smoke)\n"
      "\n"
      "workload (synthetic generators only):\n"
      "  --gen=G             zipfian | read-mostly | write-heavy | migratory\n"
      "                      | producer-consumer | false-sharing\n"
      "                      (default write-heavy)\n"
      "  --ops=N             total accesses across all procs (default 200000)\n"
      "  --blocks=N          shared-block pool size (default 4096)\n"
      "  --alpha=F           zipf popularity skew (default 0.9)\n"
      "  --write-frac=F      zipfian write fraction (default 0.25)\n"
      "  --group=N           accessor-group size per block (default 8)\n"
      "  --pattern=P         uniform | cluster | same-column | same-row\n"
      "\n"
      "machine / replay:\n"
      "  --mesh=KxK | K      mesh size (default 16x16)\n"
      "  --scheme=S          invalidation scheme (default UI-UA)\n"
      "  --think=N           cycles between accesses (default 4)\n"
      "  --warmup=N          warmup accesses (default 4096; 0 = none)\n"
      "  --window=N          steady-state window width (default 10000)\n"
      "  --max-cycles=N      cycle budget (default 2000000000)\n"
      "  --seed=S            base seed (default 1)\n"
      "  --shards=N          cycle-kernel threads (flag beats MDW_SHARDS;\n"
      "                      default 1 = sequential kernel)\n"
      "\n"
      "output:\n"
      "  --metrics-json=PATH write the machine + stream metrics registry\n",
      argv0);
}

[[noreturn]] void die(const char* argv0, const std::string& why) {
  std::fprintf(stderr, "%s: %s\n\n", argv0, why.c_str());
  usage(argv0);
  std::exit(2);
}

struct Options {
  workload::GenConfig gen;
  std::uint64_t total_ops = 200'000;
  int mesh_w = 16, mesh_h = 16;
  int shards = 0;  // 0 = unset: MDW_SHARDS, then the sequential kernel
  core::Scheme scheme = core::Scheme::UiUa;
  dsm::SvcParams svc;
  workload::StreamRunnerOptions run;
  std::string metrics_json;
  bool require_coalesce = false;
};

bool parse_mesh(const std::string& v, int& w, int& h) {
  const std::size_t x = v.find('x');
  char* end = nullptr;
  if (x == std::string::npos) {
    const long k = std::strtol(v.c_str(), &end, 10);
    if (end != v.c_str() + v.size() || k <= 0) return false;
    w = h = static_cast<int>(k);
    return true;
  }
  const std::string ws = v.substr(0, x), hs = v.substr(x + 1);
  const long lw = std::strtol(ws.c_str(), &end, 10);
  if (ws.empty() || end != ws.c_str() + ws.size() || lw <= 0) return false;
  const long lh = std::strtol(hs.c_str(), &end, 10);
  if (hs.empty() || end != hs.c_str() + hs.size() || lh <= 0) return false;
  w = static_cast<int>(lw);
  h = static_cast<int>(lh);
  return true;
}

Options parse_cli(int argc, char** argv) {
  Options opt;
  opt.gen.kind = workload::GenKind::WriteHeavy;
  opt.run.warmup_accesses = 4096;
  opt.run.use_service = true;
  opt.run.outstanding = 4;

  auto flag_value = [](const std::string& a, const char* key,
                       std::string& out) {
    const std::string k = std::string(key) + "=";
    if (a.rfind(k, 0) != 0) return false;
    out = a.substr(k.size());
    return true;
  };

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    std::string v;
    if (flag_value(a, "--outstanding", v)) {
      opt.run.outstanding = std::atoi(v.c_str());
      if (opt.run.outstanding <= 0) {
        die(argv[0], "--outstanding must be positive");
      }
    } else if (flag_value(a, "--depth", v)) {
      opt.svc.pipeline_depth = std::atoi(v.c_str());
      if (opt.svc.pipeline_depth < 0) die(argv[0], "--depth must be >= 0");
    } else if (flag_value(a, "--coalesce", v)) {
      opt.svc.coalesce_window = std::strtoull(v.c_str(), nullptr, 10);
    } else if (a == "--require-coalesce") {
      opt.require_coalesce = true;
    } else if (flag_value(a, "--gen", v)) {
      if (!workload::gen_from_name(v, opt.gen.kind)) {
        die(argv[0], "unknown generator '" + v + "'");
      }
    } else if (flag_value(a, "--ops", v)) {
      opt.total_ops = std::strtoull(v.c_str(), nullptr, 10);
      if (opt.total_ops == 0) die(argv[0], "--ops must be positive");
    } else if (flag_value(a, "--blocks", v)) {
      opt.gen.nblocks =
          static_cast<std::uint32_t>(std::strtoul(v.c_str(), nullptr, 10));
      if (opt.gen.nblocks == 0) die(argv[0], "--blocks must be positive");
    } else if (flag_value(a, "--alpha", v)) {
      opt.gen.zipf_alpha = std::atof(v.c_str());
    } else if (flag_value(a, "--write-frac", v)) {
      opt.gen.write_fraction = std::atof(v.c_str());
    } else if (flag_value(a, "--group", v)) {
      opt.gen.group = std::atoi(v.c_str());
      if (opt.gen.group <= 0) die(argv[0], "--group must be positive");
    } else if (flag_value(a, "--pattern", v)) {
      bool ok = false;
      for (auto p : {workload::SharerPattern::Uniform,
                     workload::SharerPattern::Cluster,
                     workload::SharerPattern::SameColumn,
                     workload::SharerPattern::SameRow}) {
        if (v == workload::pattern_name(p)) {
          opt.gen.pattern = p;
          ok = true;
        }
      }
      if (!ok) die(argv[0], "unknown pattern '" + v + "'");
    } else if (flag_value(a, "--mesh", v)) {
      if (!parse_mesh(v, opt.mesh_w, opt.mesh_h)) {
        die(argv[0], "bad --mesh '" + v + "' (use K or WxH)");
      }
    } else if (flag_value(a, "--scheme", v)) {
      bool ok = false;
      for (core::Scheme s : core::kAllSchemes) {
        if (v == core::scheme_name(s)) {
          opt.scheme = s;
          ok = true;
        }
      }
      if (!ok) die(argv[0], "unknown scheme '" + v + "'");
    } else if (flag_value(a, "--think", v)) {
      opt.run.think = std::strtoull(v.c_str(), nullptr, 10);
    } else if (flag_value(a, "--warmup", v)) {
      opt.run.warmup_accesses = std::strtoull(v.c_str(), nullptr, 10);
    } else if (flag_value(a, "--window", v)) {
      opt.run.window_cycles = std::strtoull(v.c_str(), nullptr, 10);
      if (opt.run.window_cycles == 0) die(argv[0], "--window must be positive");
    } else if (flag_value(a, "--max-cycles", v)) {
      opt.run.max_cycles = std::strtoull(v.c_str(), nullptr, 10);
    } else if (flag_value(a, "--shards", v)) {
      opt.shards = std::atoi(v.c_str());
      if (opt.shards <= 0) die(argv[0], "--shards must be positive");
    } else if (flag_value(a, "--seed", v)) {
      opt.gen.seed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (flag_value(a, "--metrics-json", v)) {
      opt.metrics_json = v;
    } else if (a == "--help" || a == "-h") {
      usage(argv[0]);
      std::exit(0);
    } else {
      die(argv[0], "unknown option '" + a + "'");
    }
  }
  return opt;
}

} // namespace

int main(int argc, char** argv) {
  Options opt = parse_cli(argc, argv);
  const int nprocs = opt.mesh_w * opt.mesh_h;
  const noc::MeshShape mesh(opt.mesh_w, opt.mesh_h);

  opt.gen.nprocs = nprocs;
  opt.gen.ops_per_proc =
      (opt.total_ops + static_cast<std::uint64_t>(nprocs) - 1) /
      static_cast<std::uint64_t>(nprocs);
  std::unique_ptr<workload::StreamSource> src =
      workload::make_generator(opt.gen, mesh);

  dsm::SystemParams params;
  params.mesh_w = opt.mesh_w;
  params.mesh_h = opt.mesh_h;
  params.scheme = opt.scheme;
  params.noc.shards = opt.shards;
  params.svc = opt.svc;
  obs::MetricsRegistry registry;
  dsm::Machine machine(params, &registry);

  std::printf(
      "mdw_service: %s on %dx%d mesh, scheme %s, outstanding %d, "
      "depth %d, coalesce %" PRIu64 "\n",
      src->name(), opt.mesh_w, opt.mesh_h,
      std::string(core::scheme_name(opt.scheme)).c_str(), opt.run.outstanding,
      params.svc.pipeline_depth,
      static_cast<std::uint64_t>(params.svc.coalesce_window));

  workload::StreamRunner runner(machine, *src, opt.run);
  const workload::StreamResult r = runner.run();

  if (!r.completed) {
    std::fprintf(stderr, "run exhausted the %" PRIu64 "-cycle budget: %s\n",
                 static_cast<std::uint64_t>(opt.run.max_cycles),
                 r.describe_stalls().c_str());
    return 1;
  }

  std::printf("\ncompleted: %zu accesses (%" PRIu64
              " invalidation txns) in %" PRIu64 " cycles\n",
              r.accesses, machine.stats().inval_txns,
              static_cast<std::uint64_t>(r.cycles));
  std::printf("  steady accesses: %" PRIu64 " (%.1f per kcycle)\n",
              r.steady_accesses, r.accesses_per_kcycle);
  std::printf("  steady inval txns: %" PRIu64 " (%.1f per kcycle)\n",
              r.steady_txns, r.txns_per_kcycle);
  std::printf("  steady inval latency: mean %.1f  p50 %.1f  p90 %.1f  "
              "p99 %.1f cycles\n",
              r.lat_mean, r.lat_p50, r.lat_p90, r.lat_p99);

  // Home-side service-layer picture, aggregated over every node.
  std::uint64_t enq = 0, wait = 0, qpeak = 0, ppeak = 0, groups = 0,
                coalesced = 0, occ_peak = 0;
  for (NodeId id = 0; id < machine.num_nodes(); ++id) {
    const dsm::NodeStats& ns = machine.node(id).stats();
    enq += ns.svc_enqueued;
    wait += ns.svc_queue_wait_cycles;
    qpeak = std::max(qpeak, ns.svc_queue_peak);
    ppeak = std::max(ppeak, ns.svc_pipeline_peak);
    groups += ns.svc_groups;
    coalesced += ns.svc_coalesced_txns;
    occ_peak = std::max(occ_peak, ns.occupancy_cycles);
  }
  std::printf("\nservice layer (per-home pipeline + coalescing):\n");
  std::printf("  queued invals: %" PRIu64 "  (total wait %" PRIu64
              " cycles, queue peak %" PRIu64 ")\n",
              enq, wait, qpeak);
  std::printf("  pipeline occupancy peak: %" PRIu64 "\n", ppeak);
  std::printf("  merged launches: %" PRIu64 "  covering %" PRIu64
              " member txns\n",
              groups, coalesced);
  std::printf("  peak home occupancy: %" PRIu64 " cycles\n", occ_peak);

  if (!opt.metrics_json.empty()) {
    machine.snapshot_metrics();
    runner.snapshot_metrics(registry);
    if (!obs::write_metrics_json_file(opt.metrics_json, registry, nullptr)) {
      std::fprintf(stderr, "failed to write %s\n", opt.metrics_json.c_str());
      return 1;
    }
    std::printf("\nwrote metrics to %s\n", opt.metrics_json.c_str());
  }

  if (opt.require_coalesce && groups == 0) {
    std::fprintf(stderr,
                 "--require-coalesce: no merged transactions were launched\n");
    return 1;
  }
  return 0;
}
