#include "svc/service.h"

#include <cassert>

namespace mdw::svc {

Session::Session(dsm::Machine& m, NodeId client, SessionOptions opt)
    : m_(m), client_(client), opt_(opt) {
  assert(client >= 0 && client < m.num_nodes());
  assert(opt_.max_outstanding > 0);
}

Session::~Session() = default;

Ticket Session::read(BlockAddr a) {
  const Ticket t = next_ticket_++;
  pending_.push_back(PendingOp{t, /*is_write=*/false, a, 0});
  pump();
  return t;
}

Ticket Session::write(BlockAddr a, std::uint64_t value) {
  const Ticket t = next_ticket_++;
  pending_.push_back(PendingOp{t, /*is_write=*/true, a, value});
  pump();
  return t;
}

std::vector<Ticket> Session::read_batch(const std::vector<BlockAddr>& addrs) {
  std::vector<Ticket> out;
  out.reserve(addrs.size());
  for (const BlockAddr a : addrs) {
    const Ticket t = next_ticket_++;
    pending_.push_back(PendingOp{t, /*is_write=*/false, a, 0});
    out.push_back(t);
  }
  pump();
  return out;
}

std::vector<Ticket> Session::write_batch(
    const std::vector<std::pair<BlockAddr, std::uint64_t>>& writes) {
  std::vector<Ticket> out;
  out.reserve(writes.size());
  for (const auto& [a, v] : writes) {
    const Ticket t = next_ticket_++;
    pending_.push_back(PendingOp{t, /*is_write=*/true, a, v});
    out.push_back(t);
  }
  pump();
  return out;
}

bool Session::poll(Ticket t) { return completed_.count(t) > 0; }

bool Session::poll(Ticket t, OpResult& out) {
  auto it = completed_.find(t);
  if (it == completed_.end()) return false;
  out = it->second;
  completed_.erase(it);
  return true;
}

void Session::pump() {
  for (auto it = pending_.begin();
       it != pending_.end() && in_flight_ < opt_.max_outstanding;) {
    if (busy_addrs_.count(it->addr) > 0) {
      // Per-block serialization: a later op to the same block waits for the
      // in-flight one; ops to other blocks may overtake it.
      ++stats_.held_for_block;
      ++it;
      continue;
    }
    PendingOp op = std::move(*it);
    it = pending_.erase(it);
    issue(std::move(op));
  }
}

void Session::issue(PendingOp op) {
  busy_addrs_.insert(op.addr);
  ++in_flight_;
  stats_.max_in_flight = std::max(stats_.max_in_flight, in_flight_);
  LiveOp live;
  live.is_write = op.is_write;
  live.addr = op.addr;
  live.value = op.value;
  live.issued = m_.engine().now();
  live_.emplace(op.ticket, live);
  if (op.is_write) {
    ++stats_.issued_writes;
    m_.node(client_).write(op.addr, op.value,
                           [this, t = op.ticket, v = op.value] {
                             on_done(t, v);
                           });
  } else {
    ++stats_.issued_reads;
    m_.node(client_).read(op.addr, [this, t = op.ticket](std::uint64_t v) {
      on_done(t, v);
    });
  }
}

void Session::on_done(Ticket t, std::uint64_t value) {
  auto it = live_.find(t);
  assert(it != live_.end());
  OpResult r;
  r.ticket = t;
  r.is_write = it->second.is_write;
  r.addr = it->second.addr;
  r.value = value;
  r.issued = it->second.issued;
  r.completed = m_.engine().now();
  busy_addrs_.erase(it->second.addr);
  live_.erase(it);
  --in_flight_;
  ++stats_.completed;
  if (on_complete_) {
    on_complete_(r);
  } else {
    completed_.emplace(t, r);
  }
  pump();  // the freed slot (and freed block) may admit queued ops
}

} // namespace mdw::svc
