// Asynchronous coherence service API (DESIGN.md section 15).
//
// A svc::Session is one client's window onto a dsm::Machine node: it accepts
// reads and writes in batches, keeps up to `max_outstanding` of them in
// flight at once (the node's MSHRs allow one outstanding access per block),
// and reports completions either through a callback or through ticket
// polling.  Ops to a block that is already in flight from this session are
// held back — later ops to OTHER blocks may overtake them (the window stays
// full), but per-block program order is preserved, which is exactly the
// serialization the directory's `Waiting` state enforces machine-wide.
//
// Sessions are passive: they never run the engine.  A harness (StreamRunner
// in service mode, mdw_service, tests) issues ops from engine context (or
// before the first run) and advances time itself; completions fire inside
// engine events.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "dsm/machine.h"

namespace mdw::svc {

using Ticket = std::uint64_t;

struct SessionOptions {
  /// Client window: ops the session keeps in flight at once.  1 reproduces
  /// the classic blocking processor (the fingerprint-identity baseline).
  int max_outstanding = 4;
};

/// One finished operation, as handed to poll() or the completion callback.
struct OpResult {
  Ticket ticket = 0;
  bool is_write = false;
  BlockAddr addr = 0;
  std::uint64_t value = 0;  // read: the value observed; write: the value written
  Cycle issued = 0;         // when the op entered the machine (not the queue)
  Cycle completed = 0;
};

struct SessionStats {
  std::uint64_t issued_reads = 0;
  std::uint64_t issued_writes = 0;
  std::uint64_t completed = 0;
  std::uint64_t held_for_block = 0;  // admissions skipped (block in flight)
  int max_in_flight = 0;
};

class Session {
public:
  Session(dsm::Machine& m, NodeId client, SessionOptions opt = {});
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Enqueue one op; returns the ticket to poll.  Admitted immediately when
  /// the window has room and the block is not already in flight.
  Ticket read(BlockAddr a);
  Ticket write(BlockAddr a, std::uint64_t value);

  /// Batch enqueue; one ticket per op, in argument order.
  std::vector<Ticket> read_batch(const std::vector<BlockAddr>& addrs);
  std::vector<Ticket> write_batch(
      const std::vector<std::pair<BlockAddr, std::uint64_t>>& writes);

  /// True once `t` has completed.  With `out`, the result is copied and
  /// consumed (a second poll for the same ticket returns false).  Tickets
  /// delivered through the completion callback are not retained for polling.
  bool poll(Ticket t);
  bool poll(Ticket t, OpResult& out);

  /// Completion callback mode: every finished op is delivered here instead
  /// of being retained for poll().  Pass nullptr to return to polling mode.
  void set_on_complete(std::function<void(const OpResult&)> fn) {
    on_complete_ = std::move(fn);
  }

  [[nodiscard]] NodeId client() const { return client_; }
  [[nodiscard]] int in_flight() const { return in_flight_; }
  [[nodiscard]] std::size_t queued() const { return pending_.size(); }
  /// True when nothing is queued or in flight.
  [[nodiscard]] bool drained() const { return in_flight_ == 0 && pending_.empty(); }
  [[nodiscard]] const SessionStats& stats() const { return stats_; }

private:
  struct PendingOp {
    Ticket ticket = 0;
    bool is_write = false;
    BlockAddr addr = 0;
    std::uint64_t value = 0;
  };
  struct LiveOp {
    bool is_write = false;
    BlockAddr addr = 0;
    std::uint64_t value = 0;
    Cycle issued = 0;
  };

  /// Admit queued ops (in order, skipping block-busy ones) until the window
  /// is full or nothing is admissible.
  void pump();
  void issue(PendingOp op);
  void on_done(Ticket t, std::uint64_t value);

  dsm::Machine& m_;
  NodeId client_;
  SessionOptions opt_;
  Ticket next_ticket_ = 1;
  std::list<PendingOp> pending_;
  std::unordered_map<Ticket, LiveOp> live_;
  std::unordered_set<BlockAddr> busy_addrs_;
  std::unordered_map<Ticket, OpResult> completed_;
  std::function<void(const OpResult&)> on_complete_;
  int in_flight_ = 0;
  SessionStats stats_;
};

} // namespace mdw::svc
