#include "core/analytic.h"

#include <algorithm>
#include <cmath>

namespace mdw::core {

namespace {

/// Expected Manhattan distance between two uniform random nodes on k x k
/// (~ 2k/3).
double avg_dist(int k) { return 2.0 * k / 3.0; }

/// Expected number of occupied columns for d uniform sharers on k columns.
double expected_columns(int k, int d) {
  return k * (1.0 - std::pow(1.0 - 1.0 / k, d));
}

/// Pipelined wormhole latency for a worm of `flits` over `hops` hops.
double worm_latency(double hops, int flits, int router_delay) {
  return hops * (router_delay + 1) + flits;
}

} // namespace

AnalyticEstimate estimate(Scheme scheme, const AnalyticParams& p) {
  AnalyticEstimate e;
  const double d = p.d;
  const double h = avg_dist(p.k);
  const int fc = p.sizing.control_flits;
  (void)h;

  // Request-phase worm count W and a representative worm path length.
  double request_worms = d;
  double request_path = h;
  double request_flits = fc;
  switch (framework_of(scheme)) {
    case Framework::UiUa:
      break;
    case Framework::MiUa:
    case Framework::MiMa: {
      if (request_algo_of(scheme) == noc::RoutingAlgo::EcubeXY) {
        // Column grouping: ~1.5 worms per occupied column (both Y sides on
        // some), each worm ~ (k/3 X hops + k/3 Y hops).
        request_worms = 1.5 * expected_columns(p.k, p.d);
        request_worms = std::min(request_worms, d);
        request_path = 2.0 * p.k / 3.0;
      } else {
        // Serpentine grouping: one or two worms sweeping the occupied
        // columns; path ~ sum of column sweeps + horizontal span.
        request_worms = scheme == Scheme::WfP2Sg ? 2.0 : 1.2;
        request_worms = std::min(request_worms, d);
        request_path =
            p.k + expected_columns(p.k, p.d) * (p.k / 3.0);
      }
      request_flits =
          fc + p.sizing.per_extra_dest * std::max(0.0, d / request_worms - 1);
      break;
    }
  }

  // Ack-phase message count A.
  double ack_msgs = d;
  double ack_path = h;
  if (framework_of(scheme) == Framework::MiMa) {
    switch (scheme) {
      case Scheme::EcCmCg:
        ack_msgs = request_worms;  // one combined ack per column worm
        ack_path = 2.0 * p.k / 3.0;
        break;
      case Scheme::EcCmHg:
        ack_msgs = 2.5;  // <=2 trunks + home-column gathers
        ack_path = 2.0 * p.k / 3.0;
        break;
      default:  // WF gathers: <=2 home-terminating serpentines
        ack_msgs = 2.0;
        ack_path = p.k + expected_columns(p.k, p.d) * (p.k / 3.0);
        break;
    }
    ack_msgs = std::min(ack_msgs, d);
  }

  e.messages = request_worms + ack_msgs;
  e.home_occupancy =
      request_worms * p.send_occupancy + ack_msgs * p.recv_occupancy;

  // Latency: serialized sends at the home, then the (pipelined) request
  // worm(s), the sharer invalidation, and the ack return.  For UI-UA the
  // receive side also serializes at the home.
  const double send_serial = request_worms * p.send_occupancy;
  const double req_lat =
      worm_latency(request_path, static_cast<int>(request_flits),
                   p.router_delay);
  const double ack_lat = worm_latency(ack_path, fc, p.router_delay);
  const double recv_serial =
      (framework_of(scheme) == Framework::MiMa ? ack_msgs : d) *
      p.recv_occupancy;
  e.latency = send_serial + req_lat + p.cache_inval + ack_lat + recv_serial;

  // Traffic: flit-hops of every worm.
  e.traffic_flit_hops = request_worms * request_path * request_flits +
                        ack_msgs * ack_path * fc;
  if (framework_of(scheme) == Framework::UiUa ||
      framework_of(scheme) == Framework::MiUa) {
    e.traffic_flit_hops =
        request_worms * request_path * request_flits + d * h * fc;
    if (framework_of(scheme) == Framework::UiUa) e.messages = 2 * d;
    if (framework_of(scheme) == Framework::MiUa)
      e.messages = request_worms + d;
  }
  return e;
}

AnalyticEstimate estimate_from_plan(Scheme scheme, const noc::MeshShape& mesh,
                                    NodeId home,
                                    const std::vector<NodeId>& sharers,
                                    const AnalyticParams& p) {
  const InvalPlan plan =
      plan_invalidation(scheme, mesh, home, sharers, /*txn=*/1, p.sizing);
  AnalyticEstimate e;
  double req_traffic = 0;
  double max_req_hops = 0;
  for (const auto& w : plan.request_worms) {
    const double hops = static_cast<double>(w->path.size() - 1);
    req_traffic += hops * w->length_flits;
    max_req_hops = std::max(max_req_hops, hops);
  }
  double ack_traffic = 0;
  double ack_msgs = 0;
  if (framework_of(scheme) == Framework::MiMa) {
    for (const auto& g : plan.directive->gathers()) {
      const double hops = static_cast<double>(g.path.size() - 1);
      ack_traffic += hops * g.length_flits;
      if (g.path.back() == home) ack_msgs += 1;
    }
  } else {
    for (NodeId s : sharers) {
      ack_traffic += mesh.manhattan(s, home) * p.sizing.control_flits;
      ack_msgs += 1;
    }
  }
  const double nworms = static_cast<double>(plan.request_worms.size());
  const double total_gathers =
      framework_of(scheme) == Framework::MiMa
          ? static_cast<double>(plan.directive->gathers().size())
          : ack_msgs;
  e.messages = nworms + total_gathers;
  e.traffic_flit_hops = req_traffic + ack_traffic;
  e.home_occupancy = nworms * p.send_occupancy + ack_msgs * p.recv_occupancy;
  e.latency = nworms * p.send_occupancy +
              worm_latency(max_req_hops, p.sizing.control_flits,
                           p.router_delay) +
              p.cache_inval +
              worm_latency(avg_dist(p.k), p.sizing.control_flits,
                           p.router_delay) +
              ack_msgs * p.recv_occupancy;
  return e;
}

} // namespace mdw::core
