#include "core/inval_planner.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <map>
#include <set>

#include "core/sharer_set.h"
#include "noc/worm_pool.h"

namespace mdw::core {

namespace {

using noc::DestAction;
using noc::DestSpec;
using noc::MeshShape;
using noc::RoutingAlgo;
using noc::VNet;
using noc::WormKind;

/// Append straight-line hops from path.back() to (x, y); the move must be
/// purely horizontal or purely vertical.
void append_straight(std::vector<NodeId>& path, const MeshShape& mesh, int x,
                     int y) {
  noc::Coord cur = mesh.coord_of(path.back());
  assert(cur.x == x || cur.y == y);
  const int dx = (x > cur.x) - (x < cur.x);
  const int dy = (y > cur.y) - (y < cur.y);
  while (cur.x != x || cur.y != y) {
    cur.x += dx;
    cur.y += dy;
    path.push_back(mesh.id_of(cur));
  }
}

/// Flat insert-or-assign map from node to DestSpec used while assembling one
/// worm.  Worms carry at most a few dozen destinations, so a membership
/// bitmap plus a linear entry array beats per-node rb-tree allocation, and
/// lookups on the (common) non-destination path nodes are one bitmap test.
class ActionMap {
 public:
  DestSpec& operator[](NodeId n) {
    if (present_.contains(n)) {
      for (auto& d : entries_)
        if (d.node == n) return d;
    }
    present_.insert(n);
    entries_.push_back(DestSpec{n, DestAction::Deliver, 1});
    return entries_.back();
  }
  [[nodiscard]] const DestSpec* find(NodeId n) const {
    if (!present_.contains(n)) return nullptr;
    for (const auto& d : entries_)
      if (d.node == n) return &d;
    return nullptr;  // unreachable: the bitmap mirrors the entries
  }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

 private:
  SharerBitmap present_;
  std::vector<DestSpec> entries_;
};

/// Emit DestSpecs for every node of `actions` in path order (each exactly
/// once, at its first traversal).  Asserts that all of them lie on the path.
std::vector<DestSpec> dests_by_path_scan(const std::vector<NodeId>& path,
                                         const ActionMap& actions) {
  const std::size_t want = actions.size();
  std::vector<DestSpec> out;
  out.reserve(want);
  SharerBitmap emitted;  // stack-local dedup; no node allocations
  for (NodeId n : path) {
    if (emitted.contains(n)) continue;
    if (const DestSpec* d = actions.find(n)) {
      out.push_back(*d);
      emitted.insert(n);
      if (out.size() == want) break;  // turnaround tails carry no new dests
    }
  }
  assert(out.size() == want);
  return out;
}

struct PlannerCtx {
  const MeshShape& mesh;
  NodeId home;
  TxnId txn;
  const noc::WormSizing& sizing;
  std::shared_ptr<InvalPattern> pattern;
  std::shared_ptr<InvalDirective> directive;
  InvalPlan plan;

  noc::Coord h() const { return mesh.coord_of(home); }

  void add_request_worm(RoutingAlgo algo, std::vector<NodeId> path,
                        const ActionMap& actions) {
    auto dests = dests_by_path_scan(path, actions);
    // The worm terminates at its last destination: trim the path there.
    while (path.back() != dests.back().node) path.pop_back();
    const int len = sizing.control_size(static_cast<int>(dests.size()));
    plan.request_worms.push_back(noc::make_multidest(
        mesh, algo, WormKind::Multicast, VNet::Request, std::move(path),
        std::move(dests), len, txn, directive));
  }

  /// Register a gather blueprint and mark its initiator.
  void add_gather(NodeId initiator, RoutingAlgo algo, std::vector<NodeId> path,
                  const ActionMap& actions, int vc_class,
                  int covers) {
    GatherPlan g;
    g.initiator = initiator;
    g.path = std::move(path);
    g.dests = dests_by_path_scan(g.path, actions);
    g.length_flits = sizing.control_size(static_cast<int>(g.dests.size()));
    g.vc_class = vc_class;
    g.covers = covers;
    const bool ends_at_home = g.path.back() == home;
    // Validate the blueprint now (the worm itself is built at launch time).
#ifndef NDEBUG
    noc::Worm probe;
    probe.kind = WormKind::Gather;
    probe.path.assign(g.path.begin(), g.path.end());
    probe.dests.assign(g.dests.begin(), g.dests.end());
    assert(noc::worm_is_well_formed(mesh, algo, probe));
#endif
    (void)algo;
    pattern->roles[initiator] = SharerRole::LaunchGather;
    pattern->gather_of[initiator] = static_cast<int>(pattern->gathers.size());
    pattern->gathers.push_back(std::move(g));
    if (ends_at_home) plan.expected_ack_messages += 1;
  }
};

// ---------------------------------------------------------------------------
// UI-UA: one unicast invalidation per sharer; unicast acks.
// ---------------------------------------------------------------------------
void plan_ui_ua(PlannerCtx& ctx, const std::vector<NodeId>& sharers,
                RoutingAlgo request_algo) {
  for (NodeId s : sharers) {
    ctx.plan.request_worms.push_back(
        noc::make_unicast(ctx.mesh, request_algo, VNet::Request, ctx.home, s,
                          ctx.sizing.control_size(1), ctx.txn, ctx.directive));
    ctx.pattern->roles[s] = SharerRole::UnicastAck;
  }
  ctx.plan.expected_ack_messages = static_cast<int>(sharers.size());
}

// ---------------------------------------------------------------------------
// E-cube column grouping (EC-CM-*): see DESIGN.md section 3 schemes 1-3.
// ---------------------------------------------------------------------------
struct EcSideGroups {
  // Column x -> sharer rows above home row (ascending) / below (descending);
  // the last element of each vector is the extreme (worm turnaround point).
  std::map<int, std::vector<int>> up, down;
  // Home-row sharers' x coordinates, sorted near -> far from the home.
  std::vector<int> row;
};

struct EcGroups {
  EcSideGroups west, east;              // columns strictly west/east of home
  std::vector<int> home_up, home_down;  // home-column sharer rows
};

EcGroups ec_group(const MeshShape& mesh, NodeId home,
                  const std::vector<NodeId>& sharers) {
  const noc::Coord h = mesh.coord_of(home);
  EcGroups g;
  for (NodeId s : sharers) {
    const noc::Coord c = mesh.coord_of(s);
    if (c.x == h.x) {
      (c.y > h.y ? g.home_up : g.home_down).push_back(c.y);
    } else if (c.y == h.y) {
      (c.x < h.x ? g.west : g.east).row.push_back(c.x);
    } else {
      EcSideGroups& side = c.x < h.x ? g.west : g.east;
      (c.y > h.y ? side.up : side.down)[c.x].push_back(c.y);
    }
  }
  auto prep = [&](EcSideGroups& side, bool west) {
    for (auto& [x, ys] : side.up) std::sort(ys.begin(), ys.end());
    for (auto& [x, ys] : side.down)
      std::sort(ys.begin(), ys.end(), std::greater<>());
    std::sort(side.row.begin(), side.row.end());
    if (west) std::reverse(side.row.begin(), side.row.end());  // near -> far
  };
  prep(g.west, true);
  prep(g.east, false);
  std::sort(g.home_up.begin(), g.home_up.end());
  std::sort(g.home_down.begin(), g.home_down.end(), std::greater<>());
  return g;
}

/// One column/row worm specification produced by the grouping pass.
struct EcWormSpec {
  int col = 0;                 // target column (x of Y-segment or row worm end)
  bool up = false;             // Y direction of the sweep (true: +Y)
  std::vector<int> col_rows;   // off-row sharers covered in the column
  std::vector<int> row_cols;   // home-row sharers covered on the X segment
  bool row_worm = false;       // pure row worm (no Y segment)
};

/// Compute the per-side worm specs, near -> far (shared by UA/CG/HG).
std::vector<EcWormSpec> ec_side_worms(const EcSideGroups& side, int hx) {
  std::vector<EcWormSpec> specs;
  for (const auto& [x, ys] : side.up)
    specs.push_back(EcWormSpec{x, true, ys, {}, false});
  for (const auto& [x, ys] : side.down)
    specs.push_back(EcWormSpec{x, false, ys, {}, false});
  std::sort(specs.begin(), specs.end(), [&](const auto& a, const auto& b) {
    const int da = std::abs(a.col - hx), db = std::abs(b.col - hx);
    return da != db ? da < db : a.up > b.up;
  });
  if (!side.row.empty()) {
    // Home-row sharers ride on the farthest column worm when it passes
    // them; the remainder (beyond every column worm) get a pure row worm.
    const int reach = specs.empty() ? 0 : std::abs(specs.back().col - hx);
    std::vector<int> attached, beyond;
    for (int x : side.row) {
      (std::abs(x - hx) <= reach ? attached : beyond).push_back(x);
    }
    if (!attached.empty()) specs.back().row_cols = attached;
    if (!beyond.empty()) {
      EcWormSpec row_spec;
      row_spec.col = beyond.back();  // farthest row sharer
      row_spec.row_cols = beyond;
      row_spec.row_worm = true;
      specs.push_back(row_spec);
    }
  }
  return specs;
}

enum class EcVariant { Ua, Cg, Hg };

void plan_ec(PlannerCtx& ctx, const std::vector<NodeId>& sharers,
             EcVariant variant) {
  const MeshShape& mesh = ctx.mesh;
  const noc::Coord h = ctx.h();
  const EcGroups g = ec_group(mesh, ctx.home, sharers);
  const RoutingAlgo req = RoutingAlgo::EcubeXY;
  const RoutingAlgo rep = RoutingAlgo::EcubeYX;
  const bool ma = variant != EcVariant::Ua;  // multidestination acks

  for (NodeId s : sharers) {
    ctx.pattern->roles[s] = ma ? SharerRole::PostLocal : SharerRole::UnicastAck;
  }
  if (!ma) ctx.plan.expected_ack_messages = static_cast<int>(sharers.size());

  // --- Home-column worms (their gathers terminate directly at the home). --
  auto home_col_worm = [&](const std::vector<int>& rows) {
    if (rows.empty()) return;
    std::vector<NodeId> path{ctx.home};
    append_straight(path, mesh, h.x, rows.back());
    const NodeId initiator = mesh.id_of({h.x, rows.back()});
    ActionMap acts;
    for (int y : rows) {
      const NodeId n = mesh.id_of({h.x, y});
      acts[n] = DestSpec{n,
                         ma && n != initiator ? DestAction::DeliverAndReserve
                                              : DestAction::Deliver,
                         1};
    }
    ctx.add_request_worm(req, path, acts);
    if (ma) {
      std::vector<NodeId> gpath{initiator};
      append_straight(gpath, mesh, h.x, h.y);
      ActionMap gacts;
      for (int y : rows) {
        const NodeId n = mesh.id_of({h.x, y});
        if (n != initiator) gacts[n] = DestSpec{n, DestAction::GatherPickup, 1};
      }
      gacts[ctx.home] = DestSpec{ctx.home, DestAction::Deliver, 1};
      ctx.add_gather(initiator, rep, std::move(gpath), gacts, -1,
                     static_cast<int>(rows.size()));
    }
  };
  home_col_worm(g.home_up);
  home_col_worm(g.home_down);

  // --- Per-side worms. ----------------------------------------------------
  auto do_side = [&](const EcSideGroups& side) {
    auto specs = ec_side_worms(side, h.x);
    if (specs.empty()) return;
    const int n_specs = static_cast<int>(specs.size());

    // Hierarchical bookkeeping: expected i-ack posts per leader router
    // (c, hy) = deposits of non-trunk gathers + home-row sharers' local
    // posts (minus the trunk initiator, who never posts).
    std::map<int, int> leader_expected;
    std::map<int, int> reserve_carrier;  // column -> spec index carrying it
    const int trunk_index = variant == EcVariant::Hg ? n_specs - 1 : -1;
    if (variant == EcVariant::Hg) {
      for (int i = 0; i < n_specs; ++i) {
        const auto& s = specs[i];
        if (!s.row_worm && i != trunk_index) leader_expected[s.col] += 1;
        for (int x : s.row_cols) leader_expected[x] += 1;
        if (!s.row_worm && !reserve_carrier.count(s.col))
          reserve_carrier[s.col] = i;
      }
      if (specs[trunk_index].row_worm) {
        leader_expected[specs[trunk_index].col] -= 1;  // row-trunk initiator
      }
    }

    for (int i = 0; i < n_specs; ++i) {
      const auto& s = specs[i];
      const bool is_trunk = variant == EcVariant::Hg && i == trunk_index;
      const NodeId initiator =
          s.row_worm ? mesh.id_of({s.col, h.y})
                     : mesh.id_of({s.col, s.col_rows.back()});

      // ---- Request worm ----------------------------------------------
      ActionMap acts;
      for (int y : s.col_rows) {
        const NodeId n = mesh.id_of({s.col, y});
        const bool init = ma && n == initiator;
        acts[n] = DestSpec{n,
                           !ma || init ? DestAction::Deliver
                                       : DestAction::DeliverAndReserve,
                           1};
      }
      for (int x : s.row_cols) {
        const NodeId n = mesh.id_of({x, h.y});
        DestAction a = !ma || n == initiator ? DestAction::Deliver
                                             : DestAction::DeliverAndReserve;
        int expected = 1;
        if (variant == EcVariant::Hg && a == DestAction::DeliverAndReserve) {
          expected = std::max(1, leader_expected[x]);
        }
        acts[n] = DestSpec{n, a, static_cast<std::uint16_t>(expected)};
      }
      if (variant == EcVariant::Hg && !s.row_worm &&
          reserve_carrier[s.col] == i) {
        // Reserve the leader entry at (c, hy) unless a home-row sharer's
        // DeliverAndReserve (on some worm) already covers that router.
        const NodeId leader = mesh.id_of({s.col, h.y});
        const auto it = leader_expected.find(s.col);
        const int expected = it == leader_expected.end() ? 0 : it->second;
        const bool row_sharer_there =
            std::find(side.row.begin(), side.row.end(), s.col) !=
            side.row.end();
        if (expected > 0 && !row_sharer_there) {
          acts[leader] = DestSpec{leader, DestAction::ReserveOnly,
                                  static_cast<std::uint16_t>(expected)};
        }
      }
      std::vector<NodeId> path{ctx.home};
      append_straight(path, mesh, s.col, h.y);
      if (!s.row_worm) append_straight(path, mesh, s.col, s.col_rows.back());
      ctx.add_request_worm(req, std::move(path), acts);

      if (!ma) continue;

      // ---- Gather worm -------------------------------------------------
      std::vector<NodeId> gpath{initiator};
      if (!s.row_worm) append_straight(gpath, mesh, s.col, h.y);
      ActionMap gacts;
      for (int y : s.col_rows) {
        const NodeId n = mesh.id_of({s.col, y});
        if (n != initiator) gacts[n] = DestSpec{n, DestAction::GatherPickup, 1};
      }
      const bool to_home = variant == EcVariant::Cg || is_trunk;
      if (to_home) {
        append_straight(gpath, mesh, h.x, h.y);
        if (variant == EcVariant::Cg) {
          // The farthest gather of the side also picks up the home-row
          // sharers' locally-posted acks (their routers lie on its X leg).
          if (i == n_specs - 1) {
            for (const auto& s2 : specs) {
              for (int x : s2.row_cols) {
                const NodeId n = mesh.id_of({x, h.y});
                if (n != initiator)
                  gacts[n] = DestSpec{n, DestAction::GatherPickup, 1};
              }
            }
          }
        } else {
          // Hierarchical trunk: pick up every leader entry on the way home.
          for (const auto& [c, expected] : leader_expected) {
            if (expected <= 0) continue;
            const NodeId n = mesh.id_of({c, h.y});
            if (n != initiator)
              gacts[n] = DestSpec{n, DestAction::GatherPickup,
                                  static_cast<std::uint16_t>(expected)};
          }
        }
        gacts[ctx.home] = DestSpec{ctx.home, DestAction::Deliver, 1};
      } else {
        // Non-trunk HG gather: sink into the leader's i-ack bank.
        const NodeId leader = mesh.id_of({s.col, h.y});
        gacts[leader] = DestSpec{leader, DestAction::GatherDeposit, 1};
      }
      ctx.add_gather(initiator, rep, std::move(gpath), gacts, -1,
                     static_cast<int>(s.col_rows.size()) +
                         (s.row_worm ? static_cast<int>(s.row_cols.size())
                                     : 0));
    }
  };
  do_side(g.west);
  do_side(g.east);
}

// ---------------------------------------------------------------------------
// West-first serpentine grouping (WF-*): see DESIGN.md section 3 schemes 4-6.
//
// A serpentine path visits sharer columns in one horizontal direction,
// sweeping each column vertically between its extremes; sweep directions
// alternate strictly (the only vertical moves legal after a sweep continue
// in the sweep's direction, so the next column is always entered from
// beyond one of its extremes).
// ---------------------------------------------------------------------------

struct ColRun {
  int x = 0;
  int lo = 0, hi = 0;               // row extremes of the sharers in x
  std::vector<int> rows;            // all sharer rows (sorted ascending)
};

std::vector<ColRun> make_runs(const std::map<int, std::vector<int>>& cols,
                              bool ascending) {
  std::vector<ColRun> runs;
  for (const auto& [x, ys] : cols) {
    ColRun r;
    r.x = x;
    r.rows = ys;
    std::sort(r.rows.begin(), r.rows.end());
    r.lo = r.rows.front();
    r.hi = r.rows.back();
    runs.push_back(std::move(r));
  }
  if (!ascending) std::reverse(runs.begin(), runs.end());
  return runs;
}

/// Forward-greedy serpentine from a fixed start (request worms; no exit
/// constraint).  The first run may share start's column, in which case its
/// rows must be one-sided w.r.t. start.y (the caller splits if needed).
/// `arrived_westward` marks a start reached by a W prefix along start.y: the
/// first move of the body must then not be an eastward hop at that same row
/// (a 180-degree reversal); a vertical detour is inserted when needed.
std::vector<NodeId> serpentine_from(const MeshShape& mesh, noc::Coord start,
                                    const std::vector<ColRun>& runs,
                                    bool arrived_westward) {
  std::vector<NodeId> path{mesh.id_of(start)};
  noc::Coord cur = start;
  int dir = 0;  // vertical freedom in cur's column: +1 up, -1 down, 0 free
  bool no_vertical_yet = true;
  for (const auto& r : runs) {
    if (r.x == cur.x) {
      assert(r.lo >= cur.y || r.hi <= cur.y);  // one-sided
      const int target = r.lo >= cur.y ? r.hi : r.lo;
      if (target != cur.y) {
        assert(dir == 0 || (target > cur.y) == (dir > 0));
        append_straight(path, mesh, r.x, target);
        dir = target > cur.y ? +1 : -1;
        cur.y = target;
        no_vertical_yet = false;
      }
      continue;
    }
    // Position vertically (respecting dir), hop horizontally, then sweep.
    int entry, target;
    if (dir > 0) {
      entry = std::max(cur.y, r.hi);
      target = r.lo;
    } else if (dir < 0) {
      entry = std::min(cur.y, r.lo);
      target = r.hi;
    } else if (cur.y <= r.lo) {
      entry = cur.y;
      target = r.hi;
    } else if (cur.y >= r.hi) {
      entry = cur.y;
      target = r.lo;
    } else {
      entry = (cur.y - r.lo <= r.hi - cur.y) ? r.lo : r.hi;
      target = entry == r.lo ? r.hi : r.lo;
    }
    if (arrived_westward && no_vertical_yet && entry == cur.y) {
      // A W prefix delivered us here along this row; hopping E at the same
      // row would reverse 180 degrees.  Detour to the nearest row that
      // still covers the run (<= lo or >= hi) — dir is free (no vertical
      // movement has happened yet).
      assert(dir == 0);
      if (cur.y > r.lo) {
        entry = r.lo;   // dip below the run, then sweep up through it
        target = r.hi;
      } else if (cur.y < r.hi) {
        entry = r.hi;   // rise above the run, then sweep down through it
        target = r.lo;
      } else if (cur.y + 1 < mesh.height()) {
        entry = cur.y + 1;  // single-row run at this very row
        target = r.lo;
      } else {
        entry = cur.y - 1;
        target = r.hi;
      }
    }
    if (entry != cur.y) no_vertical_yet = false;
    append_straight(path, mesh, cur.x, entry);
    append_straight(path, mesh, r.x, entry);
    cur = {r.x, entry};
    dir = 0;  // fresh column: vertical freedom until the sweep moves
    if (target != cur.y) {
      append_straight(path, mesh, r.x, target);
      dir = target > cur.y ? +1 : -1;
      cur.y = target;
      no_vertical_yet = false;
    }
  }
  return path;
}

/// Gather serpentine: starts at an extreme of the first run (the initiator,
/// chosen here) and must exit the last run at `exit_y`, which must be one of
/// its extremes.  Sweep directions are assigned backward from the exit and
/// alternate strictly.
std::vector<NodeId> serpentine_gather(const MeshShape& mesh,
                                      const std::vector<ColRun>& runs,
                                      int exit_y, noc::Coord* initiator_out) {
  assert(!runs.empty());
  const auto& last = runs.back();
  assert(exit_y == last.lo || exit_y == last.hi);
  const int m = static_cast<int>(runs.size());
  // sweep_up[i]: direction of run i's sweep.  Exit at hi -> final sweep up.
  std::vector<bool> sweep_up(m);
  sweep_up[m - 1] = (exit_y == last.hi);
  for (int i = m - 2; i >= 0; --i) sweep_up[i] = !sweep_up[i + 1];

  const noc::Coord start{runs[0].x,
                         sweep_up[0] ? runs[0].lo : runs[0].hi};
  *initiator_out = start;
  std::vector<NodeId> path{mesh.id_of(start)};
  noc::Coord cur = start;
  for (int i = 0; i < m; ++i) {
    const auto& r = runs[i];
    if (i == 0) {
      const int target = sweep_up[0] ? r.hi : r.lo;
      append_straight(path, mesh, r.x, target);
      cur.y = target;
      continue;
    }
    // After sweeping run i-1 in direction sweep_up[i-1], we may keep moving
    // in that direction to reach run i's entry row.
    const int entry = sweep_up[i] ? std::min(cur.y, r.lo)
                                  : std::max(cur.y, r.hi);
    assert(sweep_up[i - 1] ? entry >= cur.y : entry <= cur.y);
    append_straight(path, mesh, cur.x, entry);
    append_straight(path, mesh, r.x, entry);
    cur = {r.x, entry};
    const int target = sweep_up[i] ? r.hi : r.lo;
    append_straight(path, mesh, r.x, target);
    cur.y = target;
  }
  return path;
}

/// Request-phase serpentine worms from the home covering `pending`
/// (west-first conformant: at most one W prefix, along the home row).
/// Normally one worm; a second worm is needed when the forced entry row
/// (the home row) can sweep only one side of a two-sided start column.
struct SerpentineWorm {
  std::vector<NodeId> path;
  std::vector<NodeId> covered;
};

std::vector<SerpentineWorm> wf_request_serpentines(const MeshShape& mesh,
                                                   NodeId home,
                                                   std::vector<NodeId> pending) {
  const noc::Coord h = mesh.coord_of(home);
  std::vector<SerpentineWorm> out;
  while (!pending.empty()) {
    std::map<int, std::vector<int>> cols;
    for (NodeId s : pending) {
      const noc::Coord c = mesh.coord_of(s);
      cols[c.x].push_back(c.y);
    }
    const int xmin = cols.begin()->first;
    std::vector<NodeId> leftover;
    // The start column (reached along the home row, or the home's own
    // column) can only sweep one side of hy: keep the bigger side.
    if (xmin <= h.x) {
      auto& ys = cols.begin()->second;
      std::sort(ys.begin(), ys.end());
      if (ys.front() < h.y && ys.back() > h.y) {
        std::vector<int> above, below;
        for (int y : ys) (y > h.y ? above : below).push_back(y);
        auto& keep = above.size() >= below.size() ? above : below;
        auto& drop = above.size() >= below.size() ? below : above;
        for (int y : drop) leftover.push_back(mesh.id_of({xmin, y}));
        ys = keep;
      }
    }
    SerpentineWorm w;
    for (const auto& [x, ys] : cols) {
      for (int y : ys) w.covered.push_back(mesh.id_of({x, y}));
    }
    const auto runs = make_runs(cols, /*ascending=*/true);
    if (xmin < h.x) {
      std::vector<NodeId> prefix{home};
      append_straight(prefix, mesh, xmin, h.y);
      auto body = serpentine_from(mesh, {xmin, h.y}, runs, /*arrived_westward=*/true);
      prefix.insert(prefix.end(), body.begin() + 1, body.end());
      w.path = std::move(prefix);
    } else {
      w.path = serpentine_from(mesh, h, runs, /*arrived_westward=*/false);
    }
    out.push_back(std::move(w));
    pending = std::move(leftover);
  }
  return out;
}

enum class WfVariant { ScUa, ScSg, P2Sg };

/// Split the sharers into contiguous column bands of at most kBandCols
/// occupied columns each (for the parallel banded scheme).
constexpr int kBandCols = 4;

std::vector<std::vector<NodeId>> wf_bands(const MeshShape& mesh,
                                          const std::vector<NodeId>& sharers) {
  std::map<int, std::vector<NodeId>> by_col;
  for (NodeId s : sharers) by_col[mesh.coord_of(s).x].push_back(s);
  std::vector<std::vector<NodeId>> bands;
  int cols_in_band = 0;
  for (auto& [x, members] : by_col) {
    if (cols_in_band == 0) bands.emplace_back();
    for (NodeId s : members) bands.back().push_back(s);
    if (++cols_in_band == kBandCols) cols_in_band = 0;
  }
  return bands;
}

void plan_wf(PlannerCtx& ctx, const std::vector<NodeId>& sharers,
             WfVariant variant) {
  const MeshShape& mesh = ctx.mesh;
  const noc::Coord h = ctx.h();
  const bool ma = variant != WfVariant::ScUa;

  for (NodeId s : sharers) {
    ctx.pattern->roles[s] = ma ? SharerRole::PostLocal : SharerRole::UnicastAck;
  }
  if (!ma) ctx.plan.expected_ack_messages = static_cast<int>(sharers.size());

  // Acknowledgment-side partition; gather initiators must be known before
  // the request worms are built (initiators do not reserve i-ack entries).
  std::vector<NodeId> west_set, east_set;
  for (NodeId s : sharers) {
    const noc::Coord c = mesh.coord_of(s);
    if (c.x < h.x || (c.x == h.x && c.y < h.y)) west_set.push_back(s);
    else east_set.push_back(s);
  }

  struct GatherDraft {
    NodeId initiator;
    std::vector<NodeId> path;
    ActionMap acts;
    int vc_class;
    RoutingAlgo algo;
    int covers;
  };
  std::vector<GatherDraft> gathers;
  std::set<NodeId> initiators;

  auto build_gather = [&](const std::vector<NodeId>& members, bool west) {
    if (members.empty()) return;
    std::map<int, std::vector<int>> cols;
    for (NodeId s : members) {
      const noc::Coord c = mesh.coord_of(s);
      cols[c.x].push_back(c.y);
    }
    cols[h.x].push_back(h.y);  // the walk must end exactly at the home
    const auto runs = make_runs(cols, /*ascending=*/west);
    noc::Coord init_pos;
    auto path = serpentine_gather(mesh, runs, h.y, &init_pos);
    assert(path.back() == ctx.home);
    GatherDraft d;
    d.initiator = mesh.id_of(init_pos);
    assert(std::find(members.begin(), members.end(), d.initiator) !=
           members.end());
    d.path = std::move(path);
    for (NodeId s : members) {
      if (s != d.initiator)
        d.acts[s] = DestSpec{s, DestAction::GatherPickup, 1};
    }
    d.acts[ctx.home] = DestSpec{ctx.home, DestAction::Deliver, 1};
    d.vc_class = west ? 0 : 1;
    d.algo = west ? RoutingAlgo::WestFirst : RoutingAlgo::EastFirst;
    d.covers = static_cast<int>(members.size());
    initiators.insert(d.initiator);
    gathers.push_back(std::move(d));
  };
  if (ma) {
    if (variant == WfVariant::P2Sg) {
      // Per-band gathers (matching the banded request serpentines).
      for (const auto& band : wf_bands(mesh, sharers)) {
        std::vector<NodeId> w_part, e_part;
        for (NodeId s : band) {
          const noc::Coord c = mesh.coord_of(s);
          if (c.x < h.x || (c.x == h.x && c.y < h.y)) w_part.push_back(s);
          else e_part.push_back(s);
        }
        build_gather(w_part, /*west=*/true);
        build_gather(e_part, /*west=*/false);
      }
    } else {
      build_gather(west_set, /*west=*/true);
      build_gather(east_set, /*west=*/false);
    }
  }

  // Request-phase serpentines.
  std::vector<SerpentineWorm> reqs;
  if (variant == WfVariant::P2Sg) {
    // Parallel banded serpentines: occupied columns are split into
    // contiguous bands of at most kBandCols columns, one serpentine per
    // band, all launched concurrently.  This bounds each worm's path
    // length (the single serpentine of WF-SC serializes its whole sweep)
    // at the cost of a few extra messages — the latency/message tradeoff
    // the WF schemes expose.
    for (const auto& band : wf_bands(mesh, sharers)) {
      for (auto& w : wf_request_serpentines(mesh, ctx.home, band))
        reqs.push_back(std::move(w));
    }
  } else {
    reqs = wf_request_serpentines(mesh, ctx.home, sharers);
  }
  for (const auto& r : reqs) {
    ActionMap acts;
    for (NodeId s : r.covered) {
      const bool init = ma && initiators.count(s) > 0;
      acts[s] = DestSpec{
          s, !ma || init ? DestAction::Deliver : DestAction::DeliverAndReserve,
          1};
    }
    ctx.add_request_worm(RoutingAlgo::WestFirst, r.path, acts);
  }
  for (auto& d : gathers) {
    ctx.add_gather(d.initiator, d.algo, std::move(d.path), d.acts, d.vc_class,
                   d.covers);
  }
}

} // namespace

noc::WormPtr build_gather_worm(const GatherPlan& plan, TxnId txn) {
  noc::WormPtr w = noc::WormPool::local().acquire();
  static std::atomic<WormId> next_id{1u << 20};
  w->id = next_id++;
  w->kind = WormKind::Gather;
  w->vnet = VNet::Reply;
  w->txn = txn;
  w->src = plan.initiator;
  w->path.assign(plan.path.begin(), plan.path.end());
  w->dests.assign(plan.dests.begin(), plan.dests.end());
  w->length_flits = plan.length_flits;
  w->vc_class = plan.vc_class;
  w->gathered = 1;  // the initiator's own acknowledgment
  return w;
}

InvalPlan plan_invalidation(Scheme scheme, const MeshShape& mesh, NodeId home,
                            const std::vector<NodeId>& sharers, TxnId txn,
                            const noc::WormSizing& sizing) {
  assert(!sharers.empty());
  assert(std::is_sorted(sharers.begin(), sharers.end()));
  PlannerCtx ctx{mesh,    home,
                 txn,     sizing,
                 std::make_shared<InvalPattern>(),
                 std::make_shared<InvalDirective>(),
                 InvalPlan{}};
  ctx.pattern->home = home;
  ctx.pattern->total_sharers = static_cast<int>(sharers.size());
  ctx.directive->txn = txn;
  ctx.directive->pattern = ctx.pattern;
  ctx.plan.directive = ctx.directive;

  switch (scheme) {
    case Scheme::UiUa:
      plan_ui_ua(ctx, sharers, noc::RoutingAlgo::EcubeXY);
      break;
    case Scheme::EcCmUa: plan_ec(ctx, sharers, EcVariant::Ua); break;
    case Scheme::EcCmCg: plan_ec(ctx, sharers, EcVariant::Cg); break;
    case Scheme::EcCmHg: plan_ec(ctx, sharers, EcVariant::Hg); break;
    case Scheme::WfScUa: plan_wf(ctx, sharers, WfVariant::ScUa); break;
    case Scheme::WfScSg: plan_wf(ctx, sharers, WfVariant::ScSg); break;
    case Scheme::WfP2Sg: plan_wf(ctx, sharers, WfVariant::P2Sg); break;
  }
  ctx.plan.total_ack_worms =
      framework_of(scheme) == Framework::MiMa
          ? static_cast<int>(ctx.pattern->gathers.size())
          : ctx.plan.expected_ack_messages;
  return std::move(ctx.plan);
}

InvalPlan plan_invalidation(Scheme scheme, const MeshShape& mesh, NodeId home,
                            const SharerBitmap& sharers, TxnId txn,
                            const noc::WormSizing& sizing) {
  // The grouping passes iterate the sharer set repeatedly; one ascending
  // materialization here (on the PlanCache miss path only) keeps them
  // simple.  Bitmap iteration is ascending, so this is exactly the order
  // the sorted-vector overload requires.
  return plan_invalidation(scheme, mesh, home, sharers.to_vector(), txn,
                           sizing);
}

} // namespace mdw::core
