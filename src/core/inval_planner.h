// Invalidation-transaction planner: maps a directory entry's presence bits
// onto i-reserve worms, sharer roles, and i-gather worm blueprints, for each
// grouping scheme (DESIGN.md section 3).
//
// The planner runs at the home node when a write request finds a block in
// the Shared state.  It is purely combinational (no simulator state): given
// the sharer set it emits
//   * the request-phase worms the home must inject (in order),
//   * a directive telling each sharer what to do after invalidating its
//     copy (unicast an ack / post to the local i-ack bank / launch a
//     planned i-gather worm), and
//   * the number of acknowledgment *messages* the home will receive
//     (completion itself is detected by counting d individual acks).
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "core/scheme.h"
#include "noc/worm_builder.h"

namespace mdw::core {

enum class SharerRole : std::uint8_t {
  UnicastAck,    // send a unicast i-ack worm to the home (UA frameworks)
  PostLocal,     // post the i-ack into the local router's i-ack bank
  LaunchGather,  // post is implicit: launch the planned i-gather worm
};

/// Blueprint of an i-gather worm, built by the planner at the home and
/// carried (conceptually, as part of the invalidation message) to the
/// initiating sharer.
struct GatherPlan {
  NodeId initiator = kInvalidNode;
  std::vector<NodeId> path;
  std::vector<noc::DestSpec> dests;
  int length_flits = 0;
  int vc_class = -1;
  /// Acks this worm will deliver if it terminates at the home; informational.
  int covers = 1;
};

/// Shared payload attached to every request-phase worm of one transaction.
struct InvalDirective final : noc::Payload {
  TxnId txn = 0;
  NodeId home = kInvalidNode;
  NodeId requester = kInvalidNode;
  BlockAddr addr = 0;           // filled in by the protocol layer
  int total_sharers = 0;        // d
  std::unordered_map<NodeId, SharerRole> roles;
  std::unordered_map<NodeId, int> gather_of;  // sharer -> index into gathers
  std::vector<GatherPlan> gathers;
};

struct InvalPlan {
  /// Request-phase worms in home-injection order (the home's outgoing
  /// controller serializes these sends).
  std::vector<noc::WormPtr> request_worms;
  std::shared_ptr<InvalDirective> directive;
  /// Ack messages that will arrive at the home (d for UA schemes; the
  /// number of home-terminating gather worms for MA schemes).
  int expected_ack_messages = 0;
  /// Total acknowledgment worms in the network, including hierarchical
  /// deposit gathers that never reach the home (d for UA schemes).
  int total_ack_worms = 0;
};

/// Plan one invalidation transaction.  `sharers` must exclude the home and
/// the requester and be non-empty.
[[nodiscard]] InvalPlan plan_invalidation(Scheme scheme,
                                          const noc::MeshShape& mesh,
                                          NodeId home,
                                          const std::vector<NodeId>& sharers,
                                          TxnId txn,
                                          const noc::WormSizing& sizing);

/// Instantiate an i-gather worm from its blueprint (called by the initiating
/// sharer once its own copy is invalidated; the worm starts carrying that
/// sharer's acknowledgment).
[[nodiscard]] noc::WormPtr build_gather_worm(const GatherPlan& plan, TxnId txn);

} // namespace mdw::core
