// Invalidation-transaction planner: maps a directory entry's presence bits
// onto i-reserve worms, sharer roles, and i-gather worm blueprints, for each
// grouping scheme (DESIGN.md section 3).
//
// The planner runs at the home node when a write request finds a block in
// the Shared state.  It is purely combinational (no simulator state): given
// the sharer set it emits
//   * the request-phase worms the home must inject (in order),
//   * a directive telling each sharer what to do after invalidating its
//     copy (unicast an ack / post to the local i-ack bank / launch a
//     planned i-gather worm), and
//   * the number of acknowledgment *messages* the home will receive
//     (completion itself is detected by counting d individual acks).
//
// Because the plan is a pure function of (scheme, mesh, home, sharer set),
// its immutable parts are split into InvalPattern, shared by reference:
// per-transaction state (txn id, block address, requester) lives in the
// small InvalDirective wrapper, so the PlanCache (plan_cache.h) can replay a
// memoized pattern for a new transaction with one small allocation instead
// of recomputing the grouping and re-deriving every worm path.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "core/scheme.h"
#include "core/sharer_set.h"
#include "noc/worm_builder.h"

namespace mdw::core {

enum class SharerRole : std::uint8_t {
  UnicastAck,    // send a unicast i-ack worm to the home (UA frameworks)
  PostLocal,     // post the i-ack into the local router's i-ack bank
  LaunchGather,  // post is implicit: launch the planned i-gather worm
};

/// Blueprint of an i-gather worm, built by the planner at the home and
/// carried (conceptually, as part of the invalidation message) to the
/// initiating sharer.
struct GatherPlan {
  NodeId initiator = kInvalidNode;
  std::vector<NodeId> path;
  std::vector<noc::DestSpec> dests;
  int length_flits = 0;
  int vc_class = -1;
  /// Acks this worm will deliver if it terminates at the home; informational.
  int covers = 1;
};

/// The immutable product of planning one (scheme, mesh, home, sharer-set)
/// combination: sharer roles, gather blueprints, and the home identity.
/// Shared (by shared_ptr) between every directive stamped from it — a
/// PlanCache hit reuses the pattern across transactions.
struct InvalPattern {
  NodeId home = kInvalidNode;
  int total_sharers = 0;        // d
  std::unordered_map<NodeId, SharerRole> roles;
  std::unordered_map<NodeId, int> gather_of;  // sharer -> index into gathers
  std::vector<GatherPlan> gathers;
};

/// Shared payload attached to every request-phase worm of one transaction:
/// the per-transaction fields plus a reference to the immutable pattern.
struct InvalDirective final : noc::Payload {
  TxnId txn = 0;
  NodeId requester = kInvalidNode;
  BlockAddr addr = 0;           // filled in by the protocol layer
  /// Coalesced (merged) transaction: every block this worm invalidates.
  /// Empty for the ordinary single-block case (then `addr` is the block).
  /// The pattern's sharer set is the UNION of the member blocks' sharers;
  /// each recipient invalidates every listed block it holds and acks once,
  /// so the home completes all member transactions on one ack wave
  /// (DESIGN.md section 15).
  std::vector<BlockAddr> merged_addrs;
  std::shared_ptr<const InvalPattern> pattern;

  [[nodiscard]] NodeId home() const { return pattern->home; }
  [[nodiscard]] int total_sharers() const { return pattern->total_sharers; }
  [[nodiscard]] const std::unordered_map<NodeId, SharerRole>& roles() const {
    return pattern->roles;
  }
  [[nodiscard]] const std::unordered_map<NodeId, int>& gather_of() const {
    return pattern->gather_of;
  }
  [[nodiscard]] const std::vector<GatherPlan>& gathers() const {
    return pattern->gathers;
  }
  /// The gather blueprint `sharer` must launch (role == LaunchGather).
  [[nodiscard]] const GatherPlan& gather_for(NodeId sharer) const {
    return pattern->gathers[static_cast<std::size_t>(
        pattern->gather_of.at(sharer))];
  }
};

struct InvalPlan {
  /// Request-phase worms in home-injection order (the home's outgoing
  /// controller serializes these sends).
  std::vector<noc::WormPtr> request_worms;
  std::shared_ptr<InvalDirective> directive;
  /// Ack messages that will arrive at the home (d for UA schemes; the
  /// number of home-terminating gather worms for MA schemes).
  int expected_ack_messages = 0;
  /// Total acknowledgment worms in the network, including hierarchical
  /// deposit gathers that never reach the home (d for UA schemes).
  int total_ack_worms = 0;
};

/// Plan one invalidation transaction.  `sharers` must exclude the home and
/// the requester and be non-empty; the vector overload requires ascending
/// order (both forms then produce identical plans).
[[nodiscard]] InvalPlan plan_invalidation(Scheme scheme,
                                          const noc::MeshShape& mesh,
                                          NodeId home,
                                          const SharerBitmap& sharers,
                                          TxnId txn,
                                          const noc::WormSizing& sizing);
[[nodiscard]] InvalPlan plan_invalidation(Scheme scheme,
                                          const noc::MeshShape& mesh,
                                          NodeId home,
                                          const std::vector<NodeId>& sharers,
                                          TxnId txn,
                                          const noc::WormSizing& sizing);

/// Instantiate an i-gather worm from its blueprint (called by the initiating
/// sharer once its own copy is invalidated; the worm starts carrying that
/// sharer's acknowledgment).
[[nodiscard]] noc::WormPtr build_gather_worm(const GatherPlan& plan, TxnId txn);

} // namespace mdw::core
