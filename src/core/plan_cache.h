// Memoized invalidation plans keyed on (scheme, home, sharer set).
//
// plan_invalidation() is a pure function of (scheme, mesh, home, sharer
// set): the grouping passes, worm paths, sharer roles, and gather blueprints
// it derives do not depend on the transaction id or any simulator state.
// Real sharing patterns repeat heavily (the same blocks are written by the
// same producers while the same consumers cache them), so the full planning
// pass — grouping, path derivation, BRCP conformance validation — is paid
// over and over for identical inputs.
//
// The cache stores the immutable product of one planning pass:
//   * the shared InvalPattern (roles, gather blueprints, home, d), and
//   * one WormBlueprint per request-phase worm (kind, path, dests, length).
// A hit stamps a fresh InvalDirective (txn) onto the shared pattern and
// instantiates the request worms via noc::make_from_blueprint, which draws
// worm ids from the same counter in the same per-plan order as fresh
// planning — so traces, metrics, and simulated behaviour are bit-identical
// with the cache on or off (DESIGN.md section 12).
//
// Bounded open-addressed table, short linear probe window, second-chance
// (clock) eviction inside the window, full-key verification (bitmap
// equality, not just hash equality) on every hit.  `entries = 0` disables
// the cache: every call falls through to the planner untouched.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/inval_planner.h"
#include "core/sharer_set.h"

namespace mdw::core {

struct PlanCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
};

class PlanCache {
public:
  /// `entries` bounds the table (rounded up to a power of two); 0 disables
  /// memoization entirely (get_or_build always runs the planner and the
  /// stats stay untouched).
  explicit PlanCache(int entries);

  [[nodiscard]] bool enabled() const { return !slots_.empty(); }
  [[nodiscard]] const PlanCacheStats& stats() const { return stats_; }

  /// Return the plan for this transaction: replayed from the cache when the
  /// (scheme, home, sharers) key was planned before, freshly planned (and
  /// memoized) otherwise.  Either way the result is value-identical to a
  /// direct plan_invalidation() call with the same txn.
  [[nodiscard]] InvalPlan get_or_build(Scheme scheme,
                                       const noc::MeshShape& mesh, NodeId home,
                                       const SharerBitmap& sharers, TxnId txn,
                                       const noc::WormSizing& sizing);

private:
  static constexpr std::size_t kProbeWindow = 8;

  /// Immutable recipe for one request-phase worm of a memoized plan.
  struct WormBlueprint {
    noc::WormKind kind = noc::WormKind::Unicast;
    std::vector<NodeId> path;
    std::vector<noc::DestSpec> dests;
    int length_flits = 0;
  };

  struct Slot {
    bool used = false;
    bool ref = false;
    std::uint64_t hash = 0;
    Scheme scheme{};
    NodeId home = kInvalidNode;
    SharerBitmap sharers;
    std::shared_ptr<const InvalPattern> pattern;
    std::vector<WormBlueprint> request_worms;
    int expected_ack_messages = 0;
    int total_ack_worms = 0;
  };

  static std::uint64_t key_hash(Scheme scheme, NodeId home,
                                const SharerBitmap& sharers);
  [[nodiscard]] InvalPlan replay(const Slot& s, TxnId txn) const;

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  PlanCacheStats stats_;
};

} // namespace mdw::core
