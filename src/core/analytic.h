// Closed-form estimates of invalidation-transaction cost (paper §2.3.3),
// plus exact plan-grounded counts used to cross-check the simulator.
//
// The closed-form model captures the first-order behaviour the paper argues
// from:   UI-UA   — 2d messages, O(d) home occupancy, hot-spot at the home;
//         MI-UA   — W worms (W = occupied column groups) for requests;
//         MI-MA   — additionally O(W) or O(1) ack messages.
#pragma once

#include <vector>

#include "core/inval_planner.h"
#include "core/scheme.h"

namespace mdw::core {

struct AnalyticParams {
  int k = 16;               // mesh is k x k
  int d = 8;                // sharers
  int router_delay = 4;     // cycles per hop for the header
  int send_occupancy = 12;  // controller cycles per message sent
  int recv_occupancy = 12;  // controller cycles per message received
  int cache_inval = 8;      // cycles for a sharer to invalidate its copy
  noc::WormSizing sizing{};
};

struct AnalyticEstimate {
  double messages = 0;          // network messages in the transaction
  double latency = 0;           // write-to-grant latency, cycles
  double home_occupancy = 0;    // controller busy cycles at the home
  double traffic_flit_hops = 0; // link flit-hops
};

/// Closed-form estimate for d sharers uniformly distributed on a k x k mesh.
[[nodiscard]] AnalyticEstimate estimate(Scheme scheme, const AnalyticParams& p);

/// Exact message / traffic counts derived from an actual plan (latency and
/// occupancy remain model-based).  Used by bench_analytic_vs_sim.
[[nodiscard]] AnalyticEstimate estimate_from_plan(
    Scheme scheme, const noc::MeshShape& mesh, NodeId home,
    const std::vector<NodeId>& sharers, const AnalyticParams& p);

} // namespace mdw::core
