#include "core/plan_cache.h"

namespace mdw::core {

PlanCache::PlanCache(int entries) {
  if (entries <= 0) return;
  std::size_t n = 1;
  while (n < static_cast<std::size_t>(entries)) n <<= 1;
  slots_.resize(n);
  mask_ = n - 1;
}

std::uint64_t PlanCache::key_hash(Scheme scheme, NodeId home,
                                  const SharerBitmap& sharers) {
  std::uint64_t h = sharers.hash();
  h ^= (static_cast<std::uint64_t>(scheme) << 32) ^
       static_cast<std::uint64_t>(static_cast<std::uint32_t>(home));
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  return h;
}

InvalPlan PlanCache::replay(const Slot& s, TxnId txn) const {
  InvalPlan plan;
  auto directive = std::make_shared<InvalDirective>();
  directive->txn = txn;
  directive->pattern = s.pattern;
  plan.request_worms.reserve(s.request_worms.size());
  for (const WormBlueprint& b : s.request_worms) {
    plan.request_worms.push_back(noc::make_from_blueprint(
        b.kind, noc::VNet::Request, b.path.data(), b.path.size(),
        b.dests.data(), b.dests.size(), b.length_flits, txn, directive));
  }
  plan.directive = std::move(directive);
  plan.expected_ack_messages = s.expected_ack_messages;
  plan.total_ack_worms = s.total_ack_worms;
  return plan;
}

InvalPlan PlanCache::get_or_build(Scheme scheme, const noc::MeshShape& mesh,
                                  NodeId home, const SharerBitmap& sharers,
                                  TxnId txn, const noc::WormSizing& sizing) {
  if (!enabled()) {
    return plan_invalidation(scheme, mesh, home, sharers, txn, sizing);
  }
  const std::uint64_t hash = key_hash(scheme, home, sharers);
  const std::size_t base = static_cast<std::size_t>(hash >> 32) & mask_;
  for (std::size_t i = 0; i < kProbeWindow; ++i) {
    Slot& s = slots_[(base + i) & mask_];
    if (s.used && s.hash == hash && s.scheme == scheme && s.home == home &&
        s.sharers == sharers) {
      s.ref = true;
      ++stats_.hits;
      return replay(s, txn);
    }
  }
  ++stats_.misses;
  InvalPlan plan = plan_invalidation(scheme, mesh, home, sharers, txn, sizing);

  // Pick a victim: an empty slot if the window has one, otherwise the first
  // entry whose reference bit the passing clock hand finds unset.
  Slot* victim = nullptr;
  for (std::size_t i = 0; i < kProbeWindow; ++i) {
    Slot& s = slots_[(base + i) & mask_];
    if (!s.used) {
      victim = &s;
      break;
    }
    if (victim == nullptr && !s.ref) victim = &s;
    s.ref = false;
  }
  if (victim == nullptr) victim = &slots_[base];  // all referenced: evict head
  if (victim->used) ++stats_.evictions;

  victim->used = true;
  victim->ref = false;
  victim->hash = hash;
  victim->scheme = scheme;
  victim->home = home;
  victim->sharers = sharers;
  victim->pattern = plan.directive->pattern;
  victim->expected_ack_messages = plan.expected_ack_messages;
  victim->total_ack_worms = plan.total_ack_worms;
  victim->request_worms.clear();
  victim->request_worms.reserve(plan.request_worms.size());
  for (const noc::WormPtr& w : plan.request_worms) {
    WormBlueprint b;
    b.kind = w->kind;
    b.path.assign(w->path.begin(), w->path.end());
    b.dests.assign(w->dests.begin(), w->dests.end());
    b.length_flits = w->length_flits;
    victim->request_worms.push_back(std::move(b));
  }
  return plan;
}

} // namespace mdw::core
