// Word-array bitset over node ids: the directory's presence bits and the
// planner's sharer-set key, end to end.
//
// The first kInlineWords words (256 nodes) live inline — on the paper's mesh
// sizes a directory entry never allocates — and larger meshes spill to a
// heap block that is retained across clear().  Iteration is ascending-id
// (bit-scan per word), matching the std::set<NodeId> order the directory
// used before, so every plan derived from a bitmap is bit-identical to one
// derived from the old sorted-set materialization.
//
// Equality and hash() are canonical: trailing zero words are ignored, so two
// bitmaps holding the same ids compare equal regardless of erase history or
// capacity.  hash() is cheap enough for the per-transaction PlanCache probe
// (one multiply-xor fold per occupied word).
#pragma once

#include <bit>
#include <cassert>
#include <cstdint>
#include <vector>

#include "sim/types.h"

namespace mdw::core {

class SharerBitmap {
public:
  static constexpr std::size_t kInlineWords = 4;  // 256 nodes inline

  SharerBitmap() = default;

  void insert(NodeId id) {
    assert(id >= 0);
    const std::size_t w = word_index(id);
    reserve_words(w + 1);
    word(w) |= bit(id);
  }

  void erase(NodeId id) {
    assert(id >= 0);
    const std::size_t w = word_index(id);
    if (w < words_) word(w) &= ~bit(id);
  }

  [[nodiscard]] bool contains(NodeId id) const {
    assert(id >= 0);
    const std::size_t w = word_index(id);
    return w < words_ && (word(w) & bit(id)) != 0;
  }

  /// Number of ids present (popcount over the words).
  [[nodiscard]] int count() const {
    int n = 0;
    for (std::size_t w = 0; w < words_; ++w)
      n += std::popcount(word(w));
    return n;
  }

  [[nodiscard]] bool empty() const {
    for (std::size_t w = 0; w < words_; ++w)
      if (word(w) != 0) return false;
    return true;
  }

  /// Drop all ids; inline words and any spill block are retained.
  void clear() {
    for (std::size_t w = 0; w < words_; ++w) word(w) = 0;
    words_ = 0;
  }

  /// Visit every id in ascending order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t w = 0; w < words_; ++w) {
      std::uint64_t bits = word(w);
      while (bits != 0) {
        const int b = std::countr_zero(bits);
        bits &= bits - 1;
        fn(static_cast<NodeId>(w * 64 + static_cast<std::size_t>(b)));
      }
    }
  }

  [[nodiscard]] std::vector<NodeId> to_vector() const {
    std::vector<NodeId> out;
    out.reserve(static_cast<std::size_t>(count()));
    for_each([&](NodeId id) { out.push_back(id); });
    return out;
  }

  /// Canonical content hash (trailing zero words do not contribute).
  [[nodiscard]] std::uint64_t hash() const {
    std::uint64_t h = 0x9e3779b97f4a7c15ull;
    for (std::size_t w = 0; w < effective_words(); ++w) {
      h ^= word(w) + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
      h *= 0xff51afd7ed558ccdull;
    }
    return h;
  }

  friend bool operator==(const SharerBitmap& a, const SharerBitmap& b) {
    const std::size_t n = a.words_ > b.words_ ? a.words_ : b.words_;
    for (std::size_t w = 0; w < n; ++w) {
      const std::uint64_t aw = w < a.words_ ? a.word(w) : 0;
      const std::uint64_t bw = w < b.words_ ? b.word(w) : 0;
      if (aw != bw) return false;
    }
    return true;
  }

private:
  static std::size_t word_index(NodeId id) {
    return static_cast<std::size_t>(id) >> 6;
  }
  static std::uint64_t bit(NodeId id) {
    return 1ull << (static_cast<std::size_t>(id) & 63);
  }

  [[nodiscard]] std::uint64_t word(std::size_t w) const {
    return w < kInlineWords ? inline_[w] : spill_[w - kInlineWords];
  }
  [[nodiscard]] std::uint64_t& word(std::size_t w) {
    return w < kInlineWords ? inline_[w] : spill_[w - kInlineWords];
  }

  /// Words up to and including the last non-zero one (the canonical width).
  [[nodiscard]] std::size_t effective_words() const {
    std::size_t n = words_;
    while (n > 0 && word(n - 1) == 0) --n;
    return n;
  }

  void reserve_words(std::size_t n) {
    if (n > kInlineWords && n - kInlineWords > spill_.size())
      spill_.resize(n - kInlineWords, 0);
    if (n > words_) words_ = n;
  }

  std::uint64_t inline_[kInlineWords] = {};
  std::vector<std::uint64_t> spill_;  // words beyond the inline window
  std::size_t words_ = 0;             // high-water word count in use
};

} // namespace mdw::core
