// The invalidation frameworks and grouping schemes of the paper.
//
// Framework axes:
//   UI-UA : unicast invalidations, unicast acknowledgments (baseline)
//   MI-UA : multidestination i-reserve worms, unicast acknowledgments
//   MI-MA : multidestination i-reserve worms + i-gather acknowledgment worms
//
// Grouping schemes (how the presence bits are mapped onto worm paths; see
// DESIGN.md section 3 for precise definitions):
//   EcCmUa : e-cube, column multicast, unicast acks            (MI-UA)
//   EcCmCg : e-cube, column multicast, per-column gathers      (MI-MA)
//   EcCmHg : e-cube, column multicast, hierarchical gathers    (MI-MA)
//   WfScUa : west-first, serpentine multicast, unicast acks    (MI-UA)
//   WfScSg : west-first, serpentine multicast + gathers        (MI-MA)
//   WfP2Sg : west-first, parallel banded serpentines + per-band gathers
//            (MI-MA; bounds each worm's path length — the latency side of
//            the latency-vs-messages tradeoff that WfScSg's single
//            serpentine exposes)
#pragma once

#include <string_view>

#include "noc/routing.h"

namespace mdw::core {

enum class Scheme {
  UiUa,    // unicast baseline (routing given by SchemeConfig)
  EcCmUa,
  EcCmCg,
  EcCmHg,
  WfScUa,
  WfScSg,
  WfP2Sg,
};

inline constexpr Scheme kAllSchemes[] = {
    Scheme::UiUa,   Scheme::EcCmUa, Scheme::EcCmCg, Scheme::EcCmHg,
    Scheme::WfScUa, Scheme::WfScSg, Scheme::WfP2Sg,
};

enum class Framework { UiUa, MiUa, MiMa };

[[nodiscard]] constexpr Framework framework_of(Scheme s) {
  switch (s) {
    case Scheme::UiUa: return Framework::UiUa;
    case Scheme::EcCmUa:
    case Scheme::WfScUa: return Framework::MiUa;
    default: return Framework::MiMa;
  }
}

/// Request-network base routing a scheme's worms conform to.
[[nodiscard]] constexpr noc::RoutingAlgo request_algo_of(Scheme s) {
  switch (s) {
    case Scheme::UiUa:
    case Scheme::EcCmUa:
    case Scheme::EcCmCg:
    case Scheme::EcCmHg: return noc::RoutingAlgo::EcubeXY;
    default: return noc::RoutingAlgo::WestFirst;
  }
}

[[nodiscard]] constexpr std::string_view scheme_name(Scheme s) {
  switch (s) {
    case Scheme::UiUa: return "UI-UA";
    case Scheme::EcCmUa: return "EC-CM-UA";
    case Scheme::EcCmCg: return "EC-CM-CG";
    case Scheme::EcCmHg: return "EC-CM-HG";
    case Scheme::WfScUa: return "WF-SC-UA";
    case Scheme::WfScSg: return "WF-SC-SG";
    case Scheme::WfP2Sg: return "WF-PB-SG";
  }
  return "?";
}

[[nodiscard]] constexpr std::string_view framework_name(Framework f) {
  switch (f) {
    case Framework::UiUa: return "UI-UA";
    case Framework::MiUa: return "MI-UA";
    case Framework::MiMa: return "MI-MA";
  }
  return "?";
}

} // namespace mdw::core
