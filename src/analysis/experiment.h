// Reusable measurement harnesses behind the bench binaries: controlled
// invalidation-transaction experiments (one at a time, or many concurrent
// for the hot-spot study).
#pragma once

#include "core/scheme.h"
#include "dsm/machine.h"
#include "obs/heatmap.h"
#include "obs/metrics.h"
#include "obs/trace_writer.h"
#include "workload/synthetic.h"

namespace mdw::analysis {

struct InvalExperimentConfig {
  int mesh = 16;                     // k x k
  core::Scheme scheme = core::Scheme::UiUa;
  workload::SharerPattern pattern = workload::SharerPattern::Uniform;
  int d = 8;                         // sharers per transaction
  int repetitions = 20;
  std::uint64_t seed = 1;
  dsm::SystemParams base{};          // noc / latency knobs (mesh/scheme set here)
  obs::MetricsRegistry* metrics = nullptr;  // collect into this registry
  obs::TraceWriter* trace = nullptr;        // emit Chrome-trace events
  obs::LinkHeatmap* heatmap = nullptr;      // accumulate whole-run link load
};

struct InvalMeasurement {
  double inval_latency = 0;    // request-to-last-ack at the home (cycles)
  double inval_latency_p50 = 0;  // percentiles over the measured txns
  double inval_latency_p90 = 0;  // (bucket resolution, see obs::HistogramMetric)
  double inval_latency_p99 = 0;
  double write_latency = 0;    // writer-observed write latency (cycles)
  double messages = 0;         // request worms + ack messages per txn
  double traffic_flits = 0;    // link flit-hops per txn (whole transaction)
  double occupancy = 0;        // home-node controller cycles per txn
  double request_worms = 0;
  double ack_messages = 0;
  double deferred_gathers = 0;  // i-gather deferred deliveries per txn
};

/// One invalidation transaction at a time: prime d sharers, snapshot
/// counters, fire the write, measure the transaction in isolation.
[[nodiscard]] InvalMeasurement measure_invalidations(
    const InvalExperimentConfig& cfg);

struct HotspotConfig {
  int mesh = 16;
  core::Scheme scheme = core::Scheme::UiUa;
  int d = 16;              // sharers per block
  int concurrent = 8;      // simultaneous transactions (distinct homes)
  int rounds = 5;
  std::uint64_t seed = 1;
  dsm::SystemParams base{};
  obs::MetricsRegistry* metrics = nullptr;  // collect into this registry
  obs::TraceWriter* trace = nullptr;        // emit Chrome-trace events
};

struct HotspotMeasurement {
  bool completed = true;      // false: a round deadlocked within the budget
                              // (e.g. a 1-entry i-ack bank under load)
  double inval_latency = 0;   // mean across all transactions
  double inval_latency_p50 = 0;  // percentiles across all transactions
  double inval_latency_p90 = 0;
  double inval_latency_p99 = 0;
  double makespan = 0;        // cycles until every round's writes complete
  double traffic_flits = 0;   // total link flit-hops (write phase)
  double deferred_gathers = 0;     // i-gather worms parked in an i-ack bank
  double bank_blocked_cycles = 0;  // worm stalls on a full i-ack bank
  obs::LinkHeatmap heatmap;   // whole-run per-link load (incl. priming)
};

/// Many concurrent invalidation transactions (hot-spot / contention study).
[[nodiscard]] HotspotMeasurement measure_hotspot(const HotspotConfig& cfg);

/// Link-load profile around one home node (the paper's hot-spot analysis:
/// UI-UA congests the X links along the home row in the request phase and
/// the Y links along the home column in the ack phase).
struct LinkLoadProfile {
  double home_adjacent_mean = 0;  // flits on the home's 4 attached links
  double home_row_mean = 0;       // X-direction links along the home row
  double home_col_mean = 0;       // Y-direction links along the home column
  double elsewhere_mean = 0;      // all other links
  double max_link = 0;            // hottest single link anywhere
};

/// Run `rounds` back-to-back invalidation transactions against ONE home
/// (fresh block, fresh d-sharer pattern each round) and profile link load.
[[nodiscard]] LinkLoadProfile measure_link_load(
    core::Scheme scheme, int mesh, NodeId home, int d, int rounds,
    std::uint64_t seed);

/// Measure one specific transaction (fixed home/writer/sharers); used by
/// the pattern case study and the analytic cross-check.
struct SingleTxnResult {
  double inval_latency = 0;
  double messages = 0;
  double traffic_flits = 0;
  double occupancy = 0;
};
[[nodiscard]] SingleTxnResult measure_single_txn(
    dsm::SystemParams params, NodeId home, NodeId writer,
    const std::vector<NodeId>& sharers);

} // namespace mdw::analysis
