#include "analysis/table.h"

#include <cassert>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace mdw::analysis {

void Table::add_row(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::integer(std::uint64_t v) { return std::to_string(v); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
  }
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      width[c] = std::max(width[c], r[c].size());
    }
  }
  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c ? "  " : "") << std::setw(static_cast<int>(width[c]))
         << cells[c];
    }
    os << '\n';
  };
  line(headers_);
  std::size_t total = headers_.size() ? 2 * (headers_.size() - 1) : 0;
  for (auto w : width) total += w;
  os << std::string(total, '-') << '\n';
  for (const auto& r : rows_) line(r);
}

void Table::print_json(std::ostream& os) const {
  auto cell = [&os](const std::string& s) {
    // Bare numeric when the whole cell parses as a finite double.
    char* end = nullptr;
    const double v = std::strtod(s.c_str(), &end);
    if (!s.empty() && end == s.c_str() + s.size() && std::isfinite(v)) {
      os << s;
      return;
    }
    os << '"';
    for (char c : s) {
      if (c == '"' || c == '\\') os << '\\';
      os << c;
    }
    os << '"';
  };
  os << "[";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    os << (r ? ",\n " : "\n ") << "{";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      if (c) os << ", ";
      cell(headers_[c]);
      os << ": ";
      cell(rows_[r][c]);
    }
    os << "}";
  }
  os << "\n]\n";
}

void Table::print_csv(std::ostream& os) const {
  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c ? "," : "") << cells[c];
    }
    os << '\n';
  };
  line(headers_);
  for (const auto& r : rows_) line(r);
}

} // namespace mdw::analysis
