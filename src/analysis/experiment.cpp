#include "analysis/experiment.h"

#include <algorithm>
#include <array>
#include <cassert>

namespace mdw::analysis {

namespace {

constexpr Cycle kBudget = 50'000'000;

/// Prime the sharer set: every sharer reads the block (sequentially, so no
/// transient races inflate the baseline state).
void prime_sharers(dsm::Machine& m, BlockAddr a,
                   const std::vector<NodeId>& sharers) {
  for (NodeId s : sharers) {
    bool done = false;
    m.node(s).read(a, [&](std::uint64_t) { done = true; });
    const bool ok = m.engine().run_until([&] { return done; }, kBudget);
    assert(ok);
    (void)ok;
  }
  (void)m.engine().run_to_quiescence(1'000'000);
}

/// Run one write and wait for completion + network quiescence.
Cycle run_write(dsm::Machine& m, NodeId writer, BlockAddr a) {
  bool done = false;
  Cycle lat = 0;
  const Cycle t0 = m.engine().now();
  m.node(writer).write(a, 1, [&] {
    done = true;
    lat = m.engine().now() - t0;
  });
  const bool ok = m.engine().run_until([&] { return done; }, kBudget);
  assert(ok);
  (void)ok;
  (void)m.engine().run_to_quiescence(1'000'000);
  return lat;
}

} // namespace

InvalMeasurement measure_invalidations(const InvalExperimentConfig& cfg) {
  dsm::SystemParams p = cfg.base;
  p.mesh_w = p.mesh_h = cfg.mesh;
  p.scheme = cfg.scheme;

  dsm::Machine m(p, cfg.metrics);
  if (cfg.trace) m.set_trace_writer(cfg.trace);
  sim::Rng rng(cfg.seed);
  const noc::MeshShape& mesh = m.network().mesh();
  const int n = m.num_nodes();

  InvalMeasurement out;
  double lat_sum = 0, wlat_sum = 0, msg_sum = 0, traffic_sum = 0,
         occ_sum = 0, worms_sum = 0, acks_sum = 0, defer_sum = 0;

  for (int rep = 0; rep < cfg.repetitions; ++rep) {
    const auto home = static_cast<NodeId>(rng.next_below(n));
    NodeId writer = home;
    while (writer == home) writer = static_cast<NodeId>(rng.next_below(n));
    // A fresh block homed at `home` each repetition.
    const BlockAddr a =
        static_cast<BlockAddr>(rep + 1) * static_cast<BlockAddr>(n) + home;
    const auto sharers = workload::make_sharers(rng, mesh, home, writer,
                                                cfg.d, cfg.pattern);
    prime_sharers(m, a, sharers);

    const auto traffic0 = m.network().stats().link_flit_hops;
    const auto occ0 = m.node(home).stats().occupancy_cycles;
    const auto txns0 = m.stats().inval_txns;
    const auto worms0 = m.stats().inval_request_worms;
    const auto acks0 = m.stats().inval_ack_messages;
    const auto total_acks0 = m.stats().inval_total_ack_worms;
    const auto defer0 = m.network().stats().gather_deferred;
    const double lat0 = m.stats().inval_latency.sum();

    const Cycle wlat = run_write(m, writer, a);

    assert(m.stats().inval_txns == txns0 + 1);
    (void)txns0;
    lat_sum += m.stats().inval_latency.sum() - lat0;
    wlat_sum += static_cast<double>(wlat);
    const auto worms = m.stats().inval_request_worms - worms0;
    const auto acks = m.stats().inval_ack_messages - acks0;
    const auto total_acks = m.stats().inval_total_ack_worms - total_acks0;
    worms_sum += static_cast<double>(worms);
    acks_sum += static_cast<double>(acks);
    msg_sum += static_cast<double>(worms + total_acks);
    traffic_sum +=
        static_cast<double>(m.network().stats().link_flit_hops - traffic0);
    occ_sum +=
        static_cast<double>(m.node(home).stats().occupancy_cycles - occ0);
    defer_sum +=
        static_cast<double>(m.network().stats().gather_deferred - defer0);
  }

  const double r = cfg.repetitions;
  out.inval_latency = lat_sum / r;
  // The machine-lifetime histogram holds exactly the measured transactions
  // (priming is read-only), so its percentiles are the experiment's.
  out.inval_latency_p50 = m.stats().inval_latency.quantile(0.50);
  out.inval_latency_p90 = m.stats().inval_latency.quantile(0.90);
  out.inval_latency_p99 = m.stats().inval_latency.quantile(0.99);
  out.write_latency = wlat_sum / r;
  out.messages = msg_sum / r;
  out.traffic_flits = traffic_sum / r;
  out.occupancy = occ_sum / r;
  out.request_worms = worms_sum / r;
  out.ack_messages = acks_sum / r;
  out.deferred_gathers = defer_sum / r;
  if (cfg.heatmap) (void)cfg.heatmap->merge_from(m.network().heatmap());
  if (cfg.metrics) m.snapshot_metrics();
  return out;
}

HotspotMeasurement measure_hotspot(const HotspotConfig& cfg) {
  dsm::SystemParams p = cfg.base;
  p.mesh_w = p.mesh_h = cfg.mesh;
  p.scheme = cfg.scheme;

  dsm::Machine m(p, cfg.metrics);
  if (cfg.trace) m.set_trace_writer(cfg.trace);
  sim::Rng rng(cfg.seed);
  const noc::MeshShape& mesh = m.network().mesh();
  const int n = m.num_nodes();

  double makespan_sum = 0, traffic_sum = 0;
  double lat0 = 0;
  std::uint64_t lat_count0 = 0;

  for (int round = 0; round < cfg.rounds; ++round) {
    // Pick `concurrent` distinct homes, one block each, prime sharers.
    std::vector<NodeId> homes, writers;
    std::vector<BlockAddr> blocks;
    std::vector<std::vector<NodeId>> sharer_sets;
    while (static_cast<int>(homes.size()) < cfg.concurrent) {
      const auto h = static_cast<NodeId>(rng.next_below(n));
      bool dup = false;
      for (NodeId e : homes) dup |= (e == h);
      if (dup) continue;
      homes.push_back(h);
      // Writers must be pairwise distinct: each issues one outstanding op.
      NodeId w = h;
      for (bool ok = false; !ok;) {
        w = static_cast<NodeId>(rng.next_below(n));
        ok = (w != h);
        for (NodeId e : writers) ok &= (e != w);
      }
      writers.push_back(w);
      blocks.push_back(
          static_cast<BlockAddr>(round * cfg.concurrent + homes.size()) *
              static_cast<BlockAddr>(n) +
          h);
      sharer_sets.push_back(workload::make_sharers(
          rng, mesh, h, w, cfg.d, workload::SharerPattern::Uniform));
    }
    for (int i = 0; i < cfg.concurrent; ++i) {
      prime_sharers(m, blocks[i], sharer_sets[i]);
    }

    const auto traffic0 = m.network().stats().link_flit_hops;
    lat0 = m.stats().inval_latency.sum();
    lat_count0 = m.stats().inval_latency.count();

    int done = 0;
    const Cycle t0 = m.engine().now();
    for (int i = 0; i < cfg.concurrent; ++i) {
      m.node(writers[i]).write(blocks[i], 1, [&] { ++done; });
    }
    // An undersized i-ack bank can genuinely deadlock concurrent
    // transactions (the deadlock the paper's 2-4 entry sizing prevents);
    // detect it instead of asserting.
    const bool ok = m.engine().run_until(
        [&] { return done == cfg.concurrent; }, 1'000'000);
    if (!ok) {
      HotspotMeasurement out;
      out.completed = false;
      out.deferred_gathers =
          static_cast<double>(m.network().stats().gather_deferred);
      std::uint64_t blocked = 0;
      for (NodeId r = 0; r < static_cast<NodeId>(m.num_nodes()); ++r) {
        blocked += m.network().router(r).stats().bank_blocked_cycles;
      }
      out.bank_blocked_cycles = static_cast<double>(blocked);
      out.heatmap = m.network().heatmap();
      if (cfg.metrics) m.snapshot_metrics();
      return out;
    }
    (void)m.engine().run_to_quiescence(1'000'000);
    makespan_sum += static_cast<double>(m.engine().now() - t0);
    traffic_sum +=
        static_cast<double>(m.network().stats().link_flit_hops - traffic0);
  }

  HotspotMeasurement out;
  const auto new_count = m.stats().inval_latency.count() - lat_count0;
  out.inval_latency =
      new_count ? (m.stats().inval_latency.sum() - lat0) /
                      static_cast<double>(new_count)
                : 0.0;
  out.inval_latency_p50 = m.stats().inval_latency.quantile(0.50);
  out.inval_latency_p90 = m.stats().inval_latency.quantile(0.90);
  out.inval_latency_p99 = m.stats().inval_latency.quantile(0.99);
  out.makespan = makespan_sum / cfg.rounds;
  out.traffic_flits = traffic_sum / cfg.rounds;
  out.deferred_gathers =
      static_cast<double>(m.network().stats().gather_deferred);
  std::uint64_t blocked = 0;
  for (NodeId r = 0; r < static_cast<NodeId>(m.num_nodes()); ++r) {
    blocked += m.network().router(r).stats().bank_blocked_cycles;
  }
  out.bank_blocked_cycles = static_cast<double>(blocked);
  out.heatmap = m.network().heatmap();
  if (cfg.metrics) m.snapshot_metrics();
  return out;
}

LinkLoadProfile measure_link_load(core::Scheme scheme, int mesh_k,
                                  NodeId home, int d, int rounds,
                                  std::uint64_t seed) {
  dsm::SystemParams p;
  p.mesh_w = p.mesh_h = mesh_k;
  p.scheme = scheme;
  dsm::Machine m(p);
  sim::Rng rng(seed);
  const noc::MeshShape& mesh = m.network().mesh();
  const int n = m.num_nodes();

  // Prime + write, `rounds` times, all against the same home; count only
  // the write-phase traffic (snapshot around the write).
  std::vector<std::array<std::uint64_t, noc::kNumLinkDirs>> before(
      static_cast<std::size_t>(n));
  auto snapshot = [&] {
    for (NodeId node = 0; node < n; ++node) {
      for (int dir = 0; dir < noc::kNumLinkDirs; ++dir) {
        before[node][dir] = m.network().link_flits(node, static_cast<noc::Dir>(dir));
      }
    }
  };
  std::vector<double> write_phase(static_cast<std::size_t>(n) *
                                  noc::kNumLinkDirs);
  for (int round = 0; round < rounds; ++round) {
    const BlockAddr a =
        static_cast<BlockAddr>(round + 1) * static_cast<BlockAddr>(n) + home;
    NodeId writer = home;
    while (writer == home) writer = static_cast<NodeId>(rng.next_below(n));
    prime_sharers(m, a,
                  workload::make_sharers(rng, mesh, home, writer, d,
                                         workload::SharerPattern::Uniform));
    snapshot();
    (void)run_write(m, writer, a);
    for (NodeId node = 0; node < n; ++node) {
      for (int dir = 0; dir < noc::kNumLinkDirs; ++dir) {
        write_phase[static_cast<std::size_t>(node) * noc::kNumLinkDirs + dir] +=
            static_cast<double>(
                m.network().link_flits(node, static_cast<noc::Dir>(dir)) -
                before[node][dir]);
      }
    }
  }

  LinkLoadProfile out;
  const noc::Coord h = mesh.coord_of(home);
  double adj_sum = 0, row_sum = 0, col_sum = 0, other_sum = 0;
  int adj_n = 0, row_n = 0, col_n = 0, other_n = 0;
  for (NodeId node = 0; node < n; ++node) {
    const noc::Coord c = mesh.coord_of(node);
    for (int dir = 0; dir < noc::kNumLinkDirs; ++dir) {
      if (mesh.neighbor(node, static_cast<noc::Dir>(dir)) == kInvalidNode)
        continue;
      const double v =
          write_phase[static_cast<std::size_t>(node) * noc::kNumLinkDirs + dir];
      out.max_link = std::max(out.max_link, v);
      const bool x_dir = static_cast<noc::Dir>(dir) == noc::Dir::East ||
                         static_cast<noc::Dir>(dir) == noc::Dir::West;
      const bool touches_home =
          node == home ||
          mesh.neighbor(node, static_cast<noc::Dir>(dir)) == home;
      if (touches_home) {
        adj_sum += v;
        ++adj_n;
      } else if (c.y == h.y && x_dir) {
        row_sum += v;
        ++row_n;
      } else if (c.x == h.x && !x_dir) {
        col_sum += v;
        ++col_n;
      } else {
        other_sum += v;
        ++other_n;
      }
    }
  }
  out.home_adjacent_mean = adj_n ? adj_sum / adj_n : 0;
  out.home_row_mean = row_n ? row_sum / row_n : 0;
  out.home_col_mean = col_n ? col_sum / col_n : 0;
  out.elsewhere_mean = other_n ? other_sum / other_n : 0;
  return out;
}

SingleTxnResult measure_single_txn(dsm::SystemParams params, NodeId home,
                                   NodeId writer,
                                   const std::vector<NodeId>& sharers) {
  dsm::Machine m(params);
  const BlockAddr a = static_cast<BlockAddr>(m.num_nodes()) + home;
  assert(m.home_of(a) == home);
  prime_sharers(m, a, sharers);

  const auto traffic0 = m.network().stats().link_flit_hops;
  const auto occ0 = m.node(home).stats().occupancy_cycles;
  const auto worms0 = m.stats().inval_request_worms;
  const auto acks0 = m.stats().inval_total_ack_worms;

  (void)run_write(m, writer, a);

  SingleTxnResult out;
  out.inval_latency = m.stats().inval_latency.sum();
  out.messages = static_cast<double>(
      (m.stats().inval_request_worms - worms0) +
      (m.stats().inval_total_ack_worms - acks0));
  out.traffic_flits =
      static_cast<double>(m.network().stats().link_flit_hops - traffic0);
  out.occupancy =
      static_cast<double>(m.node(home).stats().occupancy_cycles - occ0);
  return out;
}

} // namespace mdw::analysis
