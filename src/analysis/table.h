// Minimal aligned-column table printer for the benchmark harnesses
// (paper-style rows on stdout, optional CSV).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace mdw::analysis {

class Table {
public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  /// Row cells; must match the header count.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 1);
  static std::string integer(std::uint64_t v);

  void print(std::ostream& os) const;
  void print_csv(std::ostream& os) const;
  /// JSON array of row objects keyed by header; cells that parse fully as
  /// finite numbers are emitted bare, everything else as a string.
  void print_json(std::ostream& os) const;

private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

} // namespace mdw::analysis
