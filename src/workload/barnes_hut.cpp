#include <cassert>
#include <algorithm>
#include <cmath>
#include <memory>

#include "sim/rng.h"
#include "workload/apps.h"

namespace mdw::workload {

namespace {

struct Body {
  double x, y, vx, vy, ax, ay, mass;
};

struct QuadNode {
  double cx, cy, half;        // square region: center + half-extent
  double mx = 0, my = 0, m = 0;  // center of mass (accumulated)
  int body = -1;              // leaf body index, -1 if internal/empty
  bool internal = false;
  int child[4] = {-1, -1, -1, -1};
  int block = 0;              // shared-memory block modelled for this node
};

class QuadTree {
public:
  explicit QuadTree(double half) {
    nodes_.push_back(QuadNode{0.0, 0.0, half});
  }

  void insert(int b, const std::vector<Body>& bodies) {
    insert_into(0, b, bodies);
  }

  void finalize() {
    // Assign shared blocks (bounded pool: blocks are reused across steps,
    // so rebuilding the tree invalidates all prior readers) and compute
    // centers of mass bottom-up.
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      nodes_[i].block = static_cast<int>(i % kTreeSlots);
    }
    if (!nodes_.empty()) summarize(0);
  }

  [[nodiscard]] const std::vector<QuadNode>& nodes() const { return nodes_; }

  /// Accumulate the force on body b; `visit` is called with each tree node
  /// block that the traversal reads.
  template <typename Visit>
  void force(int b, std::vector<Body>& bodies, double theta,
             Visit&& visit) const {
    force_from(0, b, bodies, theta, visit);
  }

  static constexpr int kTreeSlots = 256;

private:
  int quadrant_of(const QuadNode& n, const Body& b) const {
    return (b.x >= n.cx ? 1 : 0) + (b.y >= n.cy ? 2 : 0);
  }

  void insert_into(int ni, int b, const std::vector<Body>& bodies) {
    QuadNode& n = nodes_[ni];
    if (!n.internal && n.body < 0) {  // empty leaf
      n.body = b;
      return;
    }
    if (!n.internal) {  // occupied leaf: split
      const int old = n.body;
      n.body = -1;
      n.internal = true;
      insert_child(ni, old, bodies);
    }
    insert_child(ni, b, bodies);
  }

  void insert_child(int ni, int b, const std::vector<Body>& bodies) {
    const int q = quadrant_of(nodes_[ni], bodies[b]);
    if (nodes_[ni].child[q] < 0) {
      const QuadNode& n = nodes_[ni];
      const double h = n.half / 2;
      QuadNode child{n.cx + (q & 1 ? h : -h), n.cy + (q & 2 ? h : -h), h};
      nodes_.push_back(child);
      nodes_[ni].child[q] = static_cast<int>(nodes_.size() - 1);
    }
    insert_into(nodes_[ni].child[q], b, bodies);
  }

  void summarize(int ni) {
    QuadNode& n = nodes_[ni];
    if (!n.internal) {
      if (n.body >= 0) {
        n.m = body_mass_;  // bodies have unit mass (set below per call)
      }
      return;
    }
    n.mx = n.my = n.m = 0;
    for (int c : n.child) {
      if (c < 0) continue;
      summarize(c);
      n.m += nodes_[c].m;
      n.mx += nodes_[c].mx * nodes_[c].m;
      n.my += nodes_[c].my * nodes_[c].m;
    }
    if (n.m > 0) {
      n.mx /= n.m;
      n.my /= n.m;
    }
  }

public:
  /// Called before summarize to let leaves know body positions/masses.
  void set_leaf_coms(const std::vector<Body>& bodies) {
    for (auto& n : nodes_) {
      if (!n.internal && n.body >= 0) {
        n.mx = bodies[n.body].x;
        n.my = bodies[n.body].y;
        n.m = bodies[n.body].mass;
      }
    }
  }

private:
  template <typename Visit>
  void force_from(int ni, int b, std::vector<Body>& bodies, double theta,
                  Visit& visit) const {
    const QuadNode& n = nodes_[ni];
    if (n.m <= 0) return;
    if (!n.internal && n.body == b) return;  // self
    visit(n.block);
    Body& body = bodies[b];
    const double dx = n.mx - body.x, dy = n.my - body.y;
    const double dist2 = dx * dx + dy * dy + 1e-4;  // softening
    const double dist = std::sqrt(dist2);
    if (!n.internal || (2 * n.half) / dist < theta) {
      const double f = n.m / (dist2 * dist);
      body.ax += f * dx;
      body.ay += f * dy;
      return;
    }
    for (int c : n.child) {
      if (c >= 0) force_from(c, b, bodies, theta, visit);
    }
  }

  std::vector<QuadNode> nodes_;
  double body_mass_ = 1.0;
};

} // namespace

Trace barnes_hut_trace(int nprocs, int nbodies, int steps, std::uint64_t seed,
                       BarnesHutResult* result) {
  sim::Rng rng(seed);
  std::vector<Body> bodies(static_cast<std::size_t>(nbodies));
  for (auto& b : bodies) {
    b.x = rng.next_double() * 2 - 1;
    b.y = rng.next_double() * 2 - 1;
    b.vx = (rng.next_double() - 0.5) * 0.1;
    b.vy = (rng.next_double() - 0.5) * 0.1;
    b.mass = 1.0;
    b.ax = b.ay = 0;
  }

  TraceBuilder tb(nprocs);
  const double dt = 0.01, theta = 0.5;
  std::size_t tree_nodes_total = 0;

  auto owner = [&](int body) { return body % nprocs; };

  for (int step = 0; step < steps; ++step) {
    // --- Phase 1: tree build (processor 0). ------------------------------
    double extent = 1.0;
    for (const auto& b : bodies) {
      extent = std::max({extent, std::abs(b.x), std::abs(b.y)});
    }
    QuadTree tree(extent * 1.01);
    for (int b = 0; b < nbodies; ++b) {
      tb.read(0, kBodyPosBase + static_cast<BlockAddr>(b));
      tree.insert(b, bodies);
    }
    tree.set_leaf_coms(bodies);
    tree.finalize();
    tree_nodes_total += tree.nodes().size();
    for (const auto& n : tree.nodes()) {
      tb.write(0, kTreeBase + static_cast<BlockAddr>(n.block));
    }
    tb.barrier();

    // --- Phase 2: force computation (partitioned over bodies). -----------
    for (auto& b : bodies) b.ax = b.ay = 0;
    for (int b = 0; b < nbodies; ++b) {
      const int p = owner(b);
      tb.read(p, kBodyPosBase + static_cast<BlockAddr>(b));
      int last_block = -1;
      tree.force(b, bodies, theta, [&](int blk) {
        if (blk != last_block) {  // consecutive repeats hit in the cache
          tb.read(p, kTreeBase + static_cast<BlockAddr>(blk));
          last_block = blk;
        }
      });
      tb.write(p, kBodyAccBase + static_cast<BlockAddr>(b));
    }
    tb.barrier();

    // --- Phase 3: position update. ----------------------------------------
    for (int b = 0; b < nbodies; ++b) {
      const int p = owner(b);
      tb.read(p, kBodyAccBase + static_cast<BlockAddr>(b));
      tb.read(p, kBodyVelBase + static_cast<BlockAddr>(b));
      bodies[b].vx += bodies[b].ax * dt;
      bodies[b].vy += bodies[b].ay * dt;
      bodies[b].x += bodies[b].vx * dt;
      bodies[b].y += bodies[b].vy * dt;
      tb.write(p, kBodyVelBase + static_cast<BlockAddr>(b));
      tb.write(p, kBodyPosBase + static_cast<BlockAddr>(b));
    }
    tb.barrier();
  }

  if (result != nullptr) {
    result->x.clear();
    result->y.clear();
    for (const auto& b : bodies) {
      result->x.push_back(b.x);
      result->y.push_back(b.y);
    }
    result->tree_nodes_built = tree_nodes_total;
  }
  return tb.take();
}

} // namespace mdw::workload
