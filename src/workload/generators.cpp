#include "workload/generators.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace mdw::workload {

const char* gen_name(GenKind k) {
  switch (k) {
    case GenKind::None: return "none";
    case GenKind::Zipfian: return "zipfian";
    case GenKind::ReadMostly: return "read-mostly";
    case GenKind::WriteHeavy: return "write-heavy";
    case GenKind::Migratory: return "migratory";
    case GenKind::ProducerConsumer: return "producer-consumer";
    case GenKind::FalseSharing: return "false-sharing";
  }
  return "?";
}

bool gen_from_name(const std::string& name, GenKind& out) {
  for (GenKind k : kAllGenKinds) {
    if (name == gen_name(k)) {
      out = k;
      return true;
    }
  }
  return false;
}

// --- alias table -----------------------------------------------------------

AliasTable::AliasTable(const std::vector<double>& weights) {
  const std::size_t n = weights.size();
  assert(n > 0);
  prob_.assign(n, 1.0);
  alias_.assign(n, 0);
  double total = 0;
  for (double w : weights) total += w;
  assert(total > 0);

  // Vose's method: split columns into under- and over-full relative to the
  // uniform height, then repeatedly top an under-full column up from an
  // over-full one.
  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i) {
    scaled[i] = weights[i] * static_cast<double>(n) / total;
  }
  std::vector<std::uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    const std::uint32_t l = large.back();
    small.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] -= 1.0 - scaled[s];
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  // Leftovers are exactly-full columns (up to rounding).
  for (std::uint32_t i : large) prob_[i] = 1.0;
  for (std::uint32_t i : small) prob_[i] = 1.0;
}

std::uint32_t AliasTable::sample(sim::Rng& rng) const {
  const auto col =
      static_cast<std::uint32_t>(rng.next_below(prob_.size()));
  return rng.next_double() < prob_[col] ? col : alias_[col];
}

// --- the generator family --------------------------------------------------

namespace {

/// All six kinds share one chassis: a block pool with pattern-placed
/// accessor groups, per-proc membership lists, and per-proc SplitMix64
/// sub-stream RNGs.  The kind only changes how the next op for a proc is
/// derived from its list.
class SyntheticSource final : public StreamSource {
public:
  SyntheticSource(const GenConfig& cfg, const noc::MeshShape& mesh)
      : cfg_(cfg) {
    assert(cfg_.nprocs > 0);
    assert(cfg_.nblocks > 0);
    const int n = mesh.num_nodes();
    assert(cfg_.nprocs <= n);
    // Accessor groups never include the block's home (make_sharers
    // excludes it), so clamp to the eligible population — the whole mesh
    // minus home for the scattered patterns, one row/column minus home for
    // the line patterns.
    int max_group = n - 2;
    if (cfg_.pattern == SharerPattern::SameColumn) {
      max_group = mesh.height() - 1;
    } else if (cfg_.pattern == SharerPattern::SameRow) {
      max_group = mesh.width() - 1;
    }
    const int group = std::max(1, std::min(cfg_.group, max_group));

    // Pattern-placed accessor group per block.  The placement RNG draws
    // from its own sub-stream (index well outside the per-proc range) so
    // group geometry and per-proc op draws never alias.
    sim::Rng place(sim::split_seed(cfg_.seed, 0xB10C0000ull));
    members_.resize(cfg_.nblocks);
    blocks_of_.resize(static_cast<std::size_t>(cfg_.nprocs));
    for (std::uint32_t b = 0; b < cfg_.nblocks; ++b) {
      const NodeId home =
          static_cast<NodeId>((cfg_.base_addr + b) % static_cast<BlockAddr>(n));
      members_[b] = make_sharers(place, mesh, home, home, group, cfg_.pattern);
      for (std::size_t mi = 0; mi < members_[b].size(); ++mi) {
        const NodeId m = members_[b][mi];
        if (m < cfg_.nprocs) {
          blocks_of_[static_cast<std::size_t>(m)].push_back(
              Membership{b, static_cast<std::uint32_t>(mi)});
        }
      }
    }
    // Coverage: a proc outside every group would have an empty stream;
    // adopt it into one block deterministically instead.
    for (int p = 0; p < cfg_.nprocs; ++p) {
      if (blocks_of_[static_cast<std::size_t>(p)].empty()) {
        const auto b = static_cast<std::uint32_t>(
            static_cast<std::uint32_t>(p) % cfg_.nblocks);
        members_[b].push_back(static_cast<NodeId>(p));
        blocks_of_[static_cast<std::size_t>(p)].push_back(Membership{
            b, static_cast<std::uint32_t>(members_[b].size() - 1)});
      }
    }

    const bool zipf = cfg_.kind == GenKind::Zipfian ||
                      cfg_.kind == GenKind::ReadMostly ||
                      cfg_.kind == GenKind::WriteHeavy;
    if (zipf) {
      // Per-proc alias table over the proc's own blocks, weighted by the
      // block's *global* Zipf rank, so the global popularity skew survives
      // the group partitioning.
      alias_.reserve(static_cast<std::size_t>(cfg_.nprocs));
      for (int p = 0; p < cfg_.nprocs; ++p) {
        const auto& list = blocks_of_[static_cast<std::size_t>(p)];
        std::vector<double> w(list.size());
        for (std::size_t i = 0; i < list.size(); ++i) {
          w[i] = std::pow(static_cast<double>(list[i].block + 1),
                          -cfg_.zipf_alpha);
        }
        alias_.emplace_back(w);
      }
    }
    reset();
  }

  [[nodiscard]] int nprocs() const override { return cfg_.nprocs; }
  [[nodiscard]] const char* name() const override {
    return gen_name(cfg_.kind);
  }

  void reset() override {
    rng_.clear();
    rng_.reserve(static_cast<std::size_t>(cfg_.nprocs));
    for (int p = 0; p < cfg_.nprocs; ++p) {
      rng_.emplace_back(
          sim::split_seed(cfg_.seed, static_cast<std::uint64_t>(p)));
    }
    remaining_.assign(static_cast<std::size_t>(cfg_.nprocs),
                      cfg_.ops_per_proc);
    cursor_.assign(static_cast<std::size_t>(cfg_.nprocs), 0);
    phase_.assign(static_cast<std::size_t>(cfg_.nprocs), 0);
    // Stagger rotation starts so group members don't hit their shared
    // blocks in lockstep (drawn from the proc's own sub-stream, so still
    // deterministic).
    for (int p = 0; p < cfg_.nprocs; ++p) {
      const auto& list = blocks_of_[static_cast<std::size_t>(p)];
      cursor_[static_cast<std::size_t>(p)] = static_cast<std::uint32_t>(
          rng_[static_cast<std::size_t>(p)].next_below(list.size()));
    }
  }

  bool next(int proc, TraceOp& out) override {
    const auto pi = static_cast<std::size_t>(proc);
    if (remaining_[pi] == 0) return false;
    --remaining_[pi];
    sim::Rng& rng = rng_[pi];
    const auto& list = blocks_of_[pi];

    switch (cfg_.kind) {
      case GenKind::Zipfian:
      case GenKind::ReadMostly:
      case GenKind::WriteHeavy: {
        const Membership m = list[alias_[pi].sample(rng)];
        const bool write = rng.next_bool(write_fraction());
        out = {write ? OpKind::Write : OpKind::Read, addr_of(m.block), 0};
        return true;
      }
      case GenKind::Migratory: {
        // Read-modify-write each block in rotation: the line migrates
        // (Modified) member to member.
        const Membership m = list[cursor_[pi] % list.size()];
        if (phase_[pi] == 0) {
          out = {OpKind::Read, addr_of(m.block), 0};
          phase_[pi] = 1;
        } else {
          out = {OpKind::Write, addr_of(m.block), 0};
          phase_[pi] = 0;
          ++cursor_[pi];
        }
        return true;
      }
      case GenKind::ProducerConsumer: {
        // Group member 0 produces (writes); everyone else consumes
        // (re-reads after each invalidation).
        const Membership m = list[cursor_[pi] % list.size()];
        ++cursor_[pi];
        out = {m.rank == 0 ? OpKind::Write : OpKind::Read, addr_of(m.block),
               0};
        return true;
      }
      case GenKind::FalseSharing: {
        // Every member writes its own word of the shared block; the word
        // index rides in `arg` (the protocol invalidates whole blocks —
        // all of this traffic is false-sharing overhead).
        const Membership m = list[cursor_[pi] % list.size()];
        ++cursor_[pi];
        out = {OpKind::Write, addr_of(m.block), m.rank};
        return true;
      }
      case GenKind::None: break;
    }
    return false;
  }

private:
  struct Membership {
    std::uint32_t block = 0;  // index into the pool
    std::uint32_t rank = 0;   // position within the block's group
  };

  [[nodiscard]] BlockAddr addr_of(std::uint32_t block) const {
    return cfg_.base_addr + block;
  }
  [[nodiscard]] double write_fraction() const {
    switch (cfg_.kind) {
      case GenKind::ReadMostly: return 0.05;
      case GenKind::WriteHeavy: return 0.60;
      default: return cfg_.write_fraction;
    }
  }

  GenConfig cfg_;
  std::vector<std::vector<NodeId>> members_;       // per block
  std::vector<std::vector<Membership>> blocks_of_; // per proc
  std::vector<AliasTable> alias_;                  // per proc (zipf kinds)
  std::vector<sim::Rng> rng_;                      // per proc
  std::vector<std::uint64_t> remaining_;
  std::vector<std::uint32_t> cursor_;
  std::vector<std::uint8_t> phase_;
};

} // namespace

std::unique_ptr<StreamSource> make_generator(const GenConfig& cfg,
                                             const noc::MeshShape& mesh) {
  assert(cfg.kind != GenKind::None);
  return std::make_unique<SyntheticSource>(cfg, mesh);
}

} // namespace mdw::workload
