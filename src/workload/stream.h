// Pull-based workload streams.
//
// A StreamSource hands out TraceOps one processor at a time, on demand —
// nothing is materialized up front, so a source can drive millions of
// coherence transactions through the machine in constant memory.  Recorded
// application traces (workload/trace.h) plug in through TraceSource; the
// synthetic generator family lives in workload/generators.h; both replay on
// the cycle-level machine via StreamRunner (workload/stream_runner.h).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "workload/trace.h"

namespace mdw::workload {

/// One per-processor operation stream, consumed destructively by the
/// runner.  Implementations must be deterministic: the sequence of ops a
/// call pattern produces depends only on the source's configuration (seed
/// included), never on wall-clock time or cross-proc interleaving —
/// `next(p, ...)` draws from processor p's private sub-stream.
class StreamSource {
public:
  virtual ~StreamSource() = default;

  [[nodiscard]] virtual int nprocs() const = 0;

  /// Pull the next op for `proc`.  Returns false when the processor's
  /// stream is exhausted (and writes nothing).
  virtual bool next(int proc, TraceOp& out) = 0;

  /// Rewind every processor's stream to the beginning; the subsequent op
  /// sequence is identical to a fresh source with the same configuration.
  virtual void reset() = 0;

  /// Short label for reports ("zipfian", "trace:barnes", ...).
  [[nodiscard]] virtual const char* name() const = 0;
};

/// Adapter: replay a materialized Trace as a stream (the bridge between the
/// recorded-app world and the streaming engine — both sides of the binary
/// trace format end up here).
class TraceSource final : public StreamSource {
public:
  explicit TraceSource(const Trace& t, const char* label = "trace")
      : t_(&t), label_(label),
        pc_(static_cast<std::size_t>(t.nprocs), 0) {}

  [[nodiscard]] int nprocs() const override { return t_->nprocs; }

  bool next(int proc, TraceOp& out) override {
    auto& stream = t_->per_proc[static_cast<std::size_t>(proc)];
    if (pc_[static_cast<std::size_t>(proc)] >= stream.size()) return false;
    out = stream[pc_[static_cast<std::size_t>(proc)]++];
    return true;
  }

  void reset() override { std::fill(pc_.begin(), pc_.end(), 0); }

  [[nodiscard]] const char* name() const override { return label_; }

private:
  const Trace* t_;
  const char* label_;
  std::vector<std::size_t> pc_;
};

/// Drain up to `max_ops_per_proc` ops per processor into a Trace (for
/// saving a generated stream to the binary format, or for tests that want
/// to inspect a generator's sequence).  Consumes the source; call reset()
/// to rewind it afterwards.
[[nodiscard]] inline Trace materialize(StreamSource& src,
                                       std::size_t max_ops_per_proc) {
  Trace t;
  t.nprocs = src.nprocs();
  t.per_proc.resize(static_cast<std::size_t>(t.nprocs));
  for (int p = 0; p < t.nprocs; ++p) {
    TraceOp op;
    std::size_t n = 0;
    while (n < max_ops_per_proc && src.next(p, op)) {
      if (op.kind == OpKind::Barrier) {
        t.num_barriers =
            std::max(t.num_barriers, static_cast<int>(op.arg) + 1);
      }
      t.per_proc[static_cast<std::size_t>(p)].push_back(op);
      ++n;
    }
  }
  return t;
}

} // namespace mdw::workload
