// Shared-memory access traces.
//
// The paper drives its simulator execution-style from SPLASH-2 Barnes-Hut,
// blocked LU, and All-Pairs-Shortest-Path.  We reproduce the methodology by
// running real implementations of those kernels (src/workload/*.cpp) under
// an access recorder that emits one trace stream per logical processor,
// with barrier synchronisation events; the streams are then replayed on the
// cycle-level machine by TraceRunner.  Sharing and invalidation patterns —
// the only thing the paper's metrics depend on — are identical to an
// execution-driven run; instruction time between accesses is abstracted to
// a fixed think time (see DESIGN.md, substitutions).
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "sim/types.h"

namespace mdw::workload {

enum class OpKind : std::uint8_t { Read, Write, Barrier, Think };

struct TraceOp {
  OpKind kind = OpKind::Read;
  BlockAddr addr = 0;   // Read/Write: block address
  std::uint32_t arg = 0;  // Barrier: id; Think: cycles
};

struct Trace {
  int nprocs = 0;
  std::vector<std::vector<TraceOp>> per_proc;
  int num_barriers = 0;

  [[nodiscard]] std::size_t total_ops() const {
    std::size_t n = 0;
    for (const auto& v : per_proc) n += v.size();
    return n;
  }
  [[nodiscard]] std::size_t total_accesses() const {
    std::size_t n = 0;
    for (const auto& v : per_proc) {
      for (const auto& op : v) {
        n += (op.kind == OpKind::Read || op.kind == OpKind::Write);
      }
    }
    return n;
  }
};

/// Convenience builder used by the app instrumenters.
class TraceBuilder {
public:
  explicit TraceBuilder(int nprocs) {
    trace_.nprocs = nprocs;
    trace_.per_proc.resize(static_cast<std::size_t>(nprocs));
  }

  void read(int proc, BlockAddr a) {
    trace_.per_proc[proc].push_back({OpKind::Read, a, 0});
  }
  void write(int proc, BlockAddr a) {
    trace_.per_proc[proc].push_back({OpKind::Write, a, 0});
  }
  void think(int proc, std::uint32_t cycles) {
    if (cycles == 0) return;
    trace_.per_proc[proc].push_back({OpKind::Think, 0, cycles});
  }
  /// Global barrier across every processor.
  void barrier() {
    const auto id = static_cast<std::uint32_t>(trace_.num_barriers++);
    for (auto& stream : trace_.per_proc) {
      stream.push_back({OpKind::Barrier, 0, id});
    }
  }

  [[nodiscard]] Trace take() { return std::move(trace_); }

private:
  Trace trace_;
};

} // namespace mdw::workload
