// mdw_workload — drive a streaming workload (synthetic generator, recorded
// app kernel, or saved binary trace) through the cycle-level machine and
// report steady-state windowed statistics.
//
//   mdw_workload --gen=zipfian --mesh=32x32            # 1M-access stream
//   mdw_workload --gen=producer-consumer --scheme=EC-CM-HG --ops=200000
//   mdw_workload --app=barnes --save-trace=barnes.mdwt # record to binary
//   mdw_workload --load-trace=barnes.mdwt --mesh=8x8   # replay it
//
// --ops is the TOTAL access budget: each of the k*k logical processors
// streams ceil(ops / k^2) operations, so the default one million coherence
// transactions holds at any mesh size.  All randomness derives from --seed
// via SplitMix64 sub-streams (sim::split_seed); two runs with identical
// flags produce identical machines, streams, and statistics.
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "dsm/machine.h"
#include "obs/metrics.h"
#include "workload/apps.h"
#include "workload/binary_trace.h"
#include "workload/generators.h"
#include "workload/stream_runner.h"

using namespace mdw;

namespace {

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "\n"
      "workload selection (default: --gen=zipfian):\n"
      "  --gen=G             zipfian | read-mostly | write-heavy | migratory\n"
      "                      | producer-consumer | false-sharing\n"
      "  --app=A             barnes (128 bodies, 2 steps) | lu (128x128,\n"
      "                      8x8 blocks) | apsp (64 vertices)\n"
      "  --load-trace=PATH   replay a saved binary trace (.mdwt)\n"
      "\n"
      "generator knobs:\n"
      "  --ops=N             total accesses across all procs (default 1000000)\n"
      "  --blocks=N          shared-block pool size (default 4096)\n"
      "  --alpha=F           zipf popularity skew (default 0.9)\n"
      "  --write-frac=F      zipfian write fraction (default 0.25)\n"
      "  --group=N           accessor-group size per block (default 8)\n"
      "  --pattern=P         uniform | cluster | same-column | same-row\n"
      "\n"
      "machine / replay:\n"
      "  --mesh=KxK | K      mesh size (default 16x16)\n"
      "  --scheme=S          invalidation scheme (default UI-UA)\n"
      "  --think=N           cycles between accesses (default 4)\n"
      "  --warmup=N          warmup accesses before steady state\n"
      "                      (default 4096; 0 = none)\n"
      "  --window=N          steady-state window width, cycles (default 10000)\n"
      "  --max-cycles=N      cycle budget (default 2000000000)\n"
      "  --seed=S            base seed (default 1)\n"
      "  --shards=N          cycle-kernel threads (row strips; clamped to\n"
      "                      mesh height; an explicit flag beats the\n"
      "                      MDW_SHARDS env var, default 1 = sequential\n"
      "                      kernel; results are bit-identical at any value)\n"
      "  --rebalance         recompute load-balanced shard strips from the\n"
      "                      warmup phase's observed occupancy (no-op when\n"
      "                      shards <= 1; results are bit-identical)\n"
      "\n"
      "output:\n"
      "  --save-trace=PATH   materialize the workload to a binary trace and\n"
      "                      exit (no simulation)\n"
      "  --metrics-json=PATH write the machine + stream metrics registry\n"
      "  --no-windows        suppress the per-window table\n",
      argv0);
}

[[noreturn]] void die(const char* argv0, const std::string& why) {
  std::fprintf(stderr, "%s: %s\n\n", argv0, why.c_str());
  usage(argv0);
  std::exit(2);
}

struct Options {
  workload::GenConfig gen;          // kind/knobs for --gen mode
  std::string app;                  // barnes | lu | apsp ("" = generator)
  std::string load_trace, save_trace, metrics_json;
  std::uint64_t total_ops = 1'000'000;
  int mesh_w = 16, mesh_h = 16;
  int shards = 0;  // 0 = unset: MDW_SHARDS, then the sequential kernel
  core::Scheme scheme = core::Scheme::UiUa;
  workload::StreamRunnerOptions run;
  bool print_windows = true;
};

bool parse_mesh(const std::string& v, int& w, int& h) {
  const std::size_t x = v.find('x');
  char* end = nullptr;
  if (x == std::string::npos) {
    const long k = std::strtol(v.c_str(), &end, 10);
    if (end != v.c_str() + v.size() || k <= 0) return false;
    w = h = static_cast<int>(k);
    return true;
  }
  const std::string ws = v.substr(0, x), hs = v.substr(x + 1);
  const long lw = std::strtol(ws.c_str(), &end, 10);
  if (ws.empty() || end != ws.c_str() + ws.size() || lw <= 0) return false;
  const long lh = std::strtol(hs.c_str(), &end, 10);
  if (hs.empty() || end != hs.c_str() + hs.size() || lh <= 0) return false;
  w = static_cast<int>(lw);
  h = static_cast<int>(lh);
  return true;
}

Options parse_cli(int argc, char** argv) {
  Options opt;
  opt.run.warmup_accesses = 4096;
  bool gen_given = false;

  auto flag_value = [](const std::string& a, const char* key,
                       std::string& out) {
    const std::string k = std::string(key) + "=";
    if (a.rfind(k, 0) != 0) return false;
    out = a.substr(k.size());
    return true;
  };

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    std::string v;
    if (flag_value(a, "--gen", v)) {
      if (!workload::gen_from_name(v, opt.gen.kind)) {
        die(argv[0], "unknown generator '" + v + "'");
      }
      gen_given = true;
    } else if (flag_value(a, "--app", v)) {
      if (v != "barnes" && v != "lu" && v != "apsp") {
        die(argv[0], "unknown app '" + v + "' (barnes | lu | apsp)");
      }
      opt.app = v;
    } else if (flag_value(a, "--load-trace", v)) {
      opt.load_trace = v;
    } else if (flag_value(a, "--save-trace", v)) {
      opt.save_trace = v;
    } else if (flag_value(a, "--ops", v)) {
      opt.total_ops = std::strtoull(v.c_str(), nullptr, 10);
      if (opt.total_ops == 0) die(argv[0], "--ops must be positive");
    } else if (flag_value(a, "--blocks", v)) {
      opt.gen.nblocks =
          static_cast<std::uint32_t>(std::strtoul(v.c_str(), nullptr, 10));
      if (opt.gen.nblocks == 0) die(argv[0], "--blocks must be positive");
    } else if (flag_value(a, "--alpha", v)) {
      opt.gen.zipf_alpha = std::atof(v.c_str());
    } else if (flag_value(a, "--write-frac", v)) {
      opt.gen.write_fraction = std::atof(v.c_str());
    } else if (flag_value(a, "--group", v)) {
      opt.gen.group = std::atoi(v.c_str());
      if (opt.gen.group <= 0) die(argv[0], "--group must be positive");
    } else if (flag_value(a, "--pattern", v)) {
      bool ok = false;
      for (auto p : {workload::SharerPattern::Uniform,
                     workload::SharerPattern::Cluster,
                     workload::SharerPattern::SameColumn,
                     workload::SharerPattern::SameRow}) {
        if (v == workload::pattern_name(p)) {
          opt.gen.pattern = p;
          ok = true;
        }
      }
      if (!ok) die(argv[0], "unknown pattern '" + v + "'");
    } else if (flag_value(a, "--mesh", v)) {
      if (!parse_mesh(v, opt.mesh_w, opt.mesh_h)) {
        die(argv[0], "bad --mesh '" + v + "' (use K or WxH)");
      }
    } else if (flag_value(a, "--scheme", v)) {
      bool ok = false;
      for (core::Scheme s : core::kAllSchemes) {
        if (v == core::scheme_name(s)) {
          opt.scheme = s;
          ok = true;
        }
      }
      if (!ok) die(argv[0], "unknown scheme '" + v + "'");
    } else if (flag_value(a, "--think", v)) {
      opt.run.think = std::strtoull(v.c_str(), nullptr, 10);
    } else if (flag_value(a, "--warmup", v)) {
      opt.run.warmup_accesses = std::strtoull(v.c_str(), nullptr, 10);
    } else if (flag_value(a, "--window", v)) {
      opt.run.window_cycles = std::strtoull(v.c_str(), nullptr, 10);
      if (opt.run.window_cycles == 0) die(argv[0], "--window must be positive");
    } else if (flag_value(a, "--max-cycles", v)) {
      opt.run.max_cycles = std::strtoull(v.c_str(), nullptr, 10);
    } else if (flag_value(a, "--shards", v)) {
      opt.shards = std::atoi(v.c_str());
      if (opt.shards <= 0) die(argv[0], "--shards must be positive");
    } else if (a == "--rebalance") {
      opt.run.rebalance_after_warmup = true;
    } else if (flag_value(a, "--seed", v)) {
      opt.gen.seed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (flag_value(a, "--metrics-json", v)) {
      opt.metrics_json = v;
    } else if (a == "--no-windows") {
      opt.print_windows = false;
    } else if (a == "--help" || a == "-h") {
      usage(argv[0]);
      std::exit(0);
    } else {
      die(argv[0], "unknown option '" + a + "'");
    }
  }
  if ((gen_given && !opt.app.empty()) ||
      (gen_given && !opt.load_trace.empty()) ||
      (!opt.app.empty() && !opt.load_trace.empty())) {
    die(argv[0], "--gen, --app, and --load-trace are mutually exclusive");
  }
  return opt;
}

} // namespace

int main(int argc, char** argv) {
  Options opt = parse_cli(argc, argv);
  const int nprocs = opt.mesh_w * opt.mesh_h;
  const noc::MeshShape mesh(opt.mesh_w, opt.mesh_h);

  // Assemble the stream: a synthetic generator, a freshly recorded app
  // kernel trace, or a binary trace off disk.
  workload::Trace trace;  // backing storage for trace-based sources
  std::unique_ptr<workload::StreamSource> src;
  std::string label;
  if (!opt.load_trace.empty()) {
    std::string err;
    if (!workload::load_trace(opt.load_trace, trace, &err)) {
      std::fprintf(stderr, "failed to load %s: %s\n", opt.load_trace.c_str(),
                   err.c_str());
      return 1;
    }
    if (trace.nprocs > nprocs) {
      std::fprintf(stderr,
                   "trace has %d procs but the %dx%d mesh has only %d nodes\n",
                   trace.nprocs, opt.mesh_w, opt.mesh_h, nprocs);
      return 1;
    }
    label = "trace:" + opt.load_trace;
    src = std::make_unique<workload::TraceSource>(trace, label.c_str());
  } else if (!opt.app.empty()) {
    if (opt.app == "barnes") {
      trace = workload::barnes_hut_trace(nprocs, 128, 2, opt.gen.seed);
    } else if (opt.app == "lu") {
      trace = workload::lu_trace(nprocs, 128, 8, opt.gen.seed);
    } else {
      trace = workload::apsp_trace(nprocs, 64, opt.gen.seed);
    }
    label = "app:" + opt.app;
    src = std::make_unique<workload::TraceSource>(trace, label.c_str());
  } else {
    opt.gen.nprocs = nprocs;
    opt.gen.ops_per_proc =
        (opt.total_ops + static_cast<std::uint64_t>(nprocs) - 1) /
        static_cast<std::uint64_t>(nprocs);
    src = workload::make_generator(opt.gen, mesh);
    label = src->name();
  }

  if (!opt.save_trace.empty()) {
    // Record mode: materialize and write the versioned binary format.
    // Trace-based sources are drained fully; generators are bounded by
    // their per-proc op budget already.
    const workload::Trace out =
        workload::materialize(*src, static_cast<std::size_t>(-1));
    if (!workload::save_trace(out, opt.save_trace)) {
      std::fprintf(stderr, "failed to write %s\n", opt.save_trace.c_str());
      return 1;
    }
    std::printf("saved %s: %d procs, %zu ops, %d barriers -> %s\n",
                label.c_str(), out.nprocs, out.total_ops(), out.num_barriers,
                opt.save_trace.c_str());
    return 0;
  }

  dsm::SystemParams params;
  params.mesh_w = opt.mesh_w;
  params.mesh_h = opt.mesh_h;
  params.scheme = opt.scheme;
  params.noc.shards = opt.shards;
  obs::MetricsRegistry registry;
  dsm::Machine machine(params, &registry);

  std::printf("mdw_workload: %s on %dx%d mesh, scheme %s, %d procs, "
              "%d shard%s\n",
              label.c_str(), opt.mesh_w, opt.mesh_h,
              std::string(core::scheme_name(opt.scheme)).c_str(), nprocs,
              machine.network().shards(),
              machine.network().shards() == 1 ? "" : "s");

  workload::StreamRunner runner(machine, *src, opt.run);
  const workload::StreamResult r = runner.run();

  if (!r.completed) {
    std::fprintf(stderr,
                 "run exhausted the %" PRIu64 "-cycle budget: %s\n",
                 static_cast<std::uint64_t>(opt.run.max_cycles),
                 r.describe_stalls().c_str());
    return 1;
  }

  std::printf("\ncompleted: %zu coherence transactions (%" PRIu64
              " invalidation txns) in %" PRIu64 " cycles\n",
              r.accesses, machine.stats().inval_txns,
              static_cast<std::uint64_t>(r.cycles));
  std::printf("  warmup end: cycle %" PRIu64 "   steady cycles: %" PRIu64
              "\n",
              static_cast<std::uint64_t>(r.warmup_end),
              static_cast<std::uint64_t>(r.steady_cycles));
  std::printf("  steady accesses: %" PRIu64 " (%.1f per kcycle)\n",
              r.steady_accesses, r.accesses_per_kcycle);
  std::printf("  steady inval txns: %" PRIu64 " (%.1f per kcycle)\n",
              r.steady_txns, r.txns_per_kcycle);
  std::printf("  steady inval latency: mean %.1f  p50 %.1f  p90 %.1f  "
              "p99 %.1f cycles\n",
              r.lat_mean, r.lat_p50, r.lat_p90, r.lat_p99);

  if (opt.print_windows && !r.windows.empty()) {
    std::printf("\n%12s %10s %10s %10s %8s %8s %8s %8s\n", "window", "cycles",
                "accesses", "invals", "lat", "p50", "p90", "p99");
    for (const obs::WindowRow& w : r.windows) {
      std::printf("%12" PRIu64 " %10" PRIu64 " %10" PRIu64 " %10" PRIu64
                  " %8.1f %8.1f %8.1f %8.1f\n",
                  static_cast<std::uint64_t>(w.start),
                  static_cast<std::uint64_t>(w.length), w.accesses,
                  w.inval_txns, w.lat_mean, w.lat_p50, w.lat_p90, w.lat_p99);
    }
  }

  if (!opt.metrics_json.empty()) {
    machine.snapshot_metrics();
    runner.snapshot_metrics(registry);
    if (!obs::write_metrics_json_file(opt.metrics_json, registry, nullptr)) {
      std::fprintf(stderr, "failed to write %s\n", opt.metrics_json.c_str());
      return 1;
    }
    std::printf("\nwrote metrics to %s\n", opt.metrics_json.c_str());
  }
  return 0;
}
