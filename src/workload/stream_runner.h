// Replays a StreamSource on a dsm::Machine at scale: one logical processor
// per node, sequentially-consistent issue, centralized barriers — the same
// replay semantics as the original TraceRunner (which is now a thin wrapper
// over this class) — plus a warmup cutoff and windowed steady-state
// statistics for multi-million-transaction runs.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "dsm/machine.h"
#include "obs/windowed.h"
#include "svc/service.h"
#include "workload/stream.h"
#include "workload/trace_runner.h"

namespace mdw::workload {

struct StreamRunnerOptions {
  /// Fixed computation time modelled between accesses (network cycles);
  /// stands in for the instructions between memory ops.
  Cycle think = 4;
  /// Accesses to retire before steady-state collection starts (cold
  /// caches, empty directories, plan/route caches filling).  0: no warmup,
  /// every sample is steady-state.
  std::uint64_t warmup_accesses = 0;
  /// Steady-state window width (cycles).
  Cycle window_cycles = 10'000;
  /// Execution budget; a run that exhausts it reports completed == false
  /// with per-proc progress for diagnosis.
  Cycle max_cycles = 2'000'000'000;
  /// Collect windowed stats (the txn observer + per-access bookkeeping).
  /// TraceRunner turns this off to stay a pure replay.
  bool windowed = true;
  /// Drive each processor through a svc::Session (the async coherence
  /// service API) instead of the classic blocking read/write path.  With
  /// outstanding == 1 the two paths are fingerprint-identical (pinned in
  /// test_determinism); outstanding > 1 implies service mode.
  bool use_service = false;
  /// Ops each processor keeps in flight (closed loop: a completion plus
  /// one think time re-fills the window).  Values > 1 require service mode
  /// and are the load knob of EXPERIMENTS.md E11s.
  int outstanding = 1;
  /// Recompute the cycle kernel's shard strips from observed occupancy when
  /// warmup completes (Network::rebalance_shards): the warmup phase seeds
  /// the link heatmap and scheduled-router population the cost model reads.
  /// No-op with the sequential kernel or warmup_accesses == 0; results are
  /// bit-identical either way (any contiguous row partition is).
  bool rebalance_after_warmup = false;
};

/// RunResult plus the steady-state view.  Throughputs are normalized per
/// 1000 simulated cycles ("kcycle") so they are mesh- and length-comparable.
struct StreamResult : RunResult {
  Cycle warmup_end = 0;      // first steady-state cycle (0: warmup never completed)
  Cycle steady_cycles = 0;   // cycles spent in steady state
  std::uint64_t steady_accesses = 0;
  std::uint64_t steady_txns = 0;          // invalidation transactions
  double accesses_per_kcycle = 0;
  double txns_per_kcycle = 0;
  double lat_mean = 0;       // steady-state invalidation latency (cycles)
  double lat_p50 = 0;
  double lat_p90 = 0;
  double lat_p99 = 0;
  std::vector<obs::WindowRow> windows;    // per-window breakdown
};

class StreamRunner {
public:
  StreamRunner(dsm::Machine& m, StreamSource& src,
               StreamRunnerOptions opt = {});
  ~StreamRunner();  // detaches the machine's txn observer

  StreamRunner(const StreamRunner&) = delete;
  StreamRunner& operator=(const StreamRunner&) = delete;

  /// Replay the source to exhaustion (or until the cycle budget runs out).
  [[nodiscard]] StreamResult run();

  /// Mirror the steady-state aggregates into a registry (counters
  /// stream.steady_*, histograms stream.window_accesses /
  /// stream.steady_inval_latency).  Call after run().
  void snapshot_metrics(obs::MetricsRegistry& reg) const;

private:
  void step(int proc);
  void fill(int proc);  // service-mode issue loop: keep the window full
  void rebalance();     // warmup-end shard-strip recompute (opt-in)
  void on_access_done(int proc);
  void svc_on_done(int proc);
  void reach_barrier(int proc, std::uint32_t id);
  void resume(int proc);  // barrier release -> step or fill by mode

  /// Per-proc closed-loop state for service mode.
  struct SvcProcState {
    int inflight = 0;          // ops handed to the session, not yet complete
    bool exhausted = false;    // source returned false
    bool at_barrier_wait = false;  // barrier pulled; draining the window
    std::uint32_t barrier_id = 0;
  };

  dsm::Machine& m_;
  StreamSource& src_;
  StreamRunnerOptions opt_;
  obs::WindowedStats win_;
  std::vector<ProcProgress> prog_;
  std::vector<std::unique_ptr<svc::Session>> sessions_;  // service mode only
  std::vector<SvcProcState> sstate_;
  int done_procs_ = 0;
  int barrier_waiting_ = 0;
  std::uint32_t barrier_id_ = 0;
  std::size_t accesses_ = 0;         // issued reads + writes
  std::uint64_t completed_accesses_ = 0;
  bool warmup_done_ = false;
  bool observer_attached_ = false;
  Cycle end_cycle_ = 0;              // engine time when run() returned
};

} // namespace mdw::workload
