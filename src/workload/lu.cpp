#include <cassert>
#include <cmath>

#include "sim/rng.h"
#include "workload/apps.h"

namespace mdw::workload {

namespace {

/// Dense column-major-ish helpers on a row-major n x n matrix.
class Matrix {
public:
  Matrix(int n, std::vector<double>& data) : n_(n), a_(data) {}
  double& at(int i, int j) { return a_[static_cast<std::size_t>(i) * n_ + j]; }
  [[nodiscard]] double at(int i, int j) const {
    return a_[static_cast<std::size_t>(i) * n_ + j];
  }

private:
  int n_;
  std::vector<double>& a_;
};

} // namespace

Trace lu_trace(int nprocs, int n, int block, std::uint64_t seed,
               LuResult* result) {
  assert(n % block == 0);
  const int nb = n / block;  // blocks per dimension

  // 2-D cyclic owner map over a near-square processor grid.
  int pr = 1;
  while ((pr + 1) * (pr + 1) <= nprocs && nprocs % (pr + 1) == 0) ++pr;
  const int pc = nprocs / pr;
  auto owner = [&](int bi, int bj) { return (bi % pr) * pc + (bj % pc); };
  auto blk_addr = [&](int bi, int bj) {
    return kLuBase + static_cast<BlockAddr>(bi * nb + bj);
  };

  // Diagonally dominant random matrix (LU without pivoting stays stable).
  sim::Rng rng(seed);
  std::vector<double> data(static_cast<std::size_t>(n) * n);
  for (auto& v : data) v = rng.next_double() - 0.5;
  std::vector<double> original = data;
  Matrix a(n, data);
  for (int i = 0; i < n; ++i) {
    a.at(i, i) += n;
    original[static_cast<std::size_t>(i) * n + i] += n;
  }

  TraceBuilder tb(nprocs);

  for (int k = 0; k < nb; ++k) {
    const int k0 = k * block;
    // --- Diagonal factorization: owner of (k,k). --------------------------
    {
      const int p = owner(k, k);
      tb.read(p, blk_addr(k, k));
      for (int j = k0; j < k0 + block; ++j) {
        for (int i = j + 1; i < k0 + block; ++i) {
          a.at(i, j) /= a.at(j, j);
          for (int l = j + 1; l < k0 + block; ++l) {
            a.at(i, l) -= a.at(i, j) * a.at(j, l);
          }
        }
      }
      tb.write(p, blk_addr(k, k));
    }
    tb.barrier();

    // --- Perimeter: row k and column k blocks. -----------------------------
    for (int j = k + 1; j < nb; ++j) {  // row blocks (k, j): L^-1 apply
      const int p = owner(k, j);
      tb.read(p, blk_addr(k, k));
      tb.read(p, blk_addr(k, j));
      const int j0 = j * block;
      for (int jj = j0; jj < j0 + block; ++jj) {
        for (int c = k0; c < k0 + block; ++c) {
          for (int r = c + 1; r < k0 + block; ++r) {
            a.at(r, jj) -= a.at(r, c) * a.at(c, jj);
          }
        }
      }
      tb.write(p, blk_addr(k, j));
    }
    for (int i = k + 1; i < nb; ++i) {  // column blocks (i, k): U^-1 apply
      const int p = owner(i, k);
      tb.read(p, blk_addr(k, k));
      tb.read(p, blk_addr(i, k));
      const int i0 = i * block;
      for (int r = i0; r < i0 + block; ++r) {
        for (int c = k0; c < k0 + block; ++c) {
          double sum = a.at(r, c);
          for (int l = k0; l < c; ++l) sum -= a.at(r, l) * a.at(l, c);
          a.at(r, c) = sum / a.at(c, c);
        }
      }
      tb.write(p, blk_addr(i, k));
    }
    tb.barrier();

    // --- Interior update (i, j) -= (i, k) * (k, j). ------------------------
    for (int i = k + 1; i < nb; ++i) {
      for (int j = k + 1; j < nb; ++j) {
        const int p = owner(i, j);
        tb.read(p, blk_addr(i, k));
        tb.read(p, blk_addr(k, j));
        tb.read(p, blk_addr(i, j));
        const int i0 = i * block, j0 = j * block;
        for (int r = i0; r < i0 + block; ++r) {
          for (int c = j0; c < j0 + block; ++c) {
            double sum = a.at(r, c);
            for (int l = k0; l < k0 + block; ++l) {
              sum -= a.at(r, l) * a.at(l, c);
            }
            a.at(r, c) = sum;
          }
        }
        tb.write(p, blk_addr(i, j));
      }
    }
    tb.barrier();
  }

  if (result != nullptr) {
    result->n = n;
    result->lu = data;
    // Residual: max |A - L*U|.
    double maxerr = 0;
    Matrix lu(n, data);
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        double sum = 0;
        const int kmax = std::min(i, j);
        for (int l = 0; l < kmax; ++l) sum += lu.at(i, l) * lu.at(l, j);
        // L has unit diagonal.
        sum += i <= j ? lu.at(i, j) : lu.at(i, j) * lu.at(j, j);
        maxerr = std::max(maxerr,
                          std::abs(original[static_cast<std::size_t>(i) * n + j] -
                                   sum));
      }
    }
    result->residual = maxerr;
  }
  return tb.take();
}

Trace apsp_trace(int nprocs, int nverts, std::uint64_t seed,
                 ApspResult* result) {
  sim::Rng rng(seed);
  constexpr std::uint32_t kInf = 1u << 29;
  std::vector<std::uint32_t> dist(
      static_cast<std::size_t>(nverts) * nverts, kInf);
  auto d = [&](int i, int j) -> std::uint32_t& {
    return dist[static_cast<std::size_t>(i) * nverts + j];
  };
  for (int i = 0; i < nverts; ++i) {
    d(i, i) = 0;
    for (int j = 0; j < nverts; ++j) {
      if (i != j && rng.next_bool(0.25)) {
        d(i, j) = 1 + static_cast<std::uint32_t>(rng.next_below(100));
      }
    }
  }

  TraceBuilder tb(nprocs);
  auto row_addr = [&](int i) { return kApsBase + static_cast<BlockAddr>(i); };
  auto row_owner = [&](int i) { return i % nprocs; };

  for (int k = 0; k < nverts; ++k) {
    // Every processor reads the pivot row, then relaxes its own rows.
    for (int p = 0; p < nprocs; ++p) tb.read(p, row_addr(k));
    for (int i = 0; i < nverts; ++i) {
      const int p = row_owner(i);
      if (i == k) continue;
      tb.read(p, row_addr(i));
      bool changed = false;
      for (int j = 0; j < nverts; ++j) {
        const std::uint32_t via = d(i, k) + d(k, j);
        if (via < d(i, j)) {
          d(i, j) = via;
          changed = true;
        }
      }
      if (changed) tb.write(p, row_addr(i));
    }
    tb.barrier();
  }

  if (result != nullptr) {
    result->n = nverts;
    result->dist = std::move(dist);
  }
  return tb.take();
}

} // namespace mdw::workload
