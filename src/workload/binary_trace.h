// Compact binary on-disk representation of shared-memory access traces.
//
// One format serves both worlds: traces recorded from the real application
// kernels (workload/apps.h) and streams materialized from the synthetic
// generators save to the same files, so any trace on disk replays through
// TraceSource/StreamRunner identically to its in-memory original.
//
// Layout (all multi-byte integers are LEB128 varints unless noted):
//
//   magic   "MDWT"            4 bytes
//   version u32 little-endian 4 bytes (currently 1)
//   nprocs       varint
//   num_barriers varint
//   per processor, in order:
//     op_count varint
//     ops:
//       tag byte: bits 0-1 OpKind, bit 2 "has arg" (arg != 0)
//       Read/Write: zigzag varint of (addr - previous addr in this proc's
//                   stream, starting from 0) — app traces walk block
//                   regions, so deltas are small and most ops take 2 bytes
//       then, if bit 2: arg varint (barrier id / think cycles / word index)
//
// Encoding is canonical (minimal-length varints, deltas fully determined
// by the ops), so encode(decode(bytes)) == bytes and
// encode(t) == encode(decode(encode(t))) — the round-trip tests pin both.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "workload/trace.h"

namespace mdw::workload {

inline constexpr std::uint32_t kBinaryTraceVersion = 1;

/// Serialize to the canonical byte form.
[[nodiscard]] std::vector<std::uint8_t> encode_trace(const Trace& t);

/// Parse bytes produced by encode_trace.  Returns false (and reports why in
/// `error` when non-null) on bad magic, unsupported version, or truncated /
/// malformed input; `out` is untouched on failure.
bool decode_trace(const std::uint8_t* data, std::size_t size, Trace& out,
                  std::string* error = nullptr);

/// File convenience wrappers.  Both return false on I/O or format errors
/// (with the reason in `error` when non-null).
bool save_trace(const Trace& t, const std::string& path,
                std::string* error = nullptr);
bool load_trace(const std::string& path, Trace& out,
                std::string* error = nullptr);

} // namespace mdw::workload
