// Replays a Trace on a dsm::Machine: one logical processor per node (trace
// processor i runs on mesh node i), sequentially-consistent issue (one
// access at a time), centralized barriers.
#pragma once

#include <cstdint>
#include <vector>

#include "dsm/machine.h"
#include "workload/trace.h"

namespace mdw::workload {

struct RunResult {
  Cycle cycles = 0;              // total execution time
  std::size_t accesses = 0;      // reads + writes replayed
  bool completed = false;
};

class TraceRunner {
public:
  /// `think_per_access`: fixed computation time modelled between accesses
  /// (network cycles); stands in for the instructions between memory ops.
  TraceRunner(dsm::Machine& m, const Trace& t, Cycle think_per_access = 4);

  /// Replay to completion (or until `max_cycles` elapse).
  [[nodiscard]] RunResult run(Cycle max_cycles = 2'000'000'000);

private:
  void step(int proc);
  void reach_barrier(int proc, std::uint32_t id);

  dsm::Machine& m_;
  const Trace& t_;
  Cycle think_;
  std::vector<std::size_t> pc_;       // per-proc position in its stream
  std::vector<bool> at_barrier_;
  int done_procs_ = 0;
  int barrier_waiting_ = 0;
  std::uint32_t barrier_id_ = 0;
  std::size_t accesses_ = 0;
};

} // namespace mdw::workload
