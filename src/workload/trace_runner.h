// Replays a Trace on a dsm::Machine: one logical processor per node (trace
// processor i runs on mesh node i), sequentially-consistent issue (one
// access at a time), centralized barriers.  Implemented as a thin wrapper
// over StreamRunner (workload/stream_runner.h) with a TraceSource — the
// replay event sequence is identical to the original dedicated runner.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dsm/machine.h"
#include "workload/trace.h"

namespace mdw::workload {

/// Per-processor replay progress, filled in on every run (diagnoses
/// timeouts: which procs finished, which are parked at a barrier, which
/// are stuck mid-access).
struct ProcProgress {
  std::size_t ops_retired = 0;   // trace ops pulled and dispatched
  bool done = false;             // stream exhausted
  bool at_barrier = false;       // parked waiting on the barrier below
  std::uint32_t barrier_id = 0;  // valid when at_barrier
  /// Cycle-kernel shard owning this proc's home router (-1 with the
  /// sequential kernel): a stall clustered on one shard's strip points at
  /// the parallel kernel, one spread across shards at the protocol.
  int home_shard = -1;
};

struct RunResult {
  Cycle cycles = 0;              // total execution time
  std::size_t accesses = 0;      // reads + writes replayed
  bool completed = false;
  std::vector<ProcProgress> procs;  // per-proc progress (timeout diagnosis)
  /// Per-home service-layer invalidation queue depth (index = node id),
  /// sampled at the moment the cycle budget expired; empty for completed
  /// runs.  A stall with deep home queues points at invalidation
  /// backpressure (pipeline_depth too small for the offered load), one with
  /// empty queues at the protocol or the network.
  std::vector<std::size_t> home_queue_depths;
  /// Simulated cycles skipped by the network's quiescence fast-forward: a
  /// timed-out run that fast-forwarded most of its budget was starved of
  /// work (a protocol deadlock), not slow.
  std::uint64_t ff_cycles = 0;
  /// Per-shard barrier spin counters (empty with the sequential kernel): a
  /// stall where one shard's spins dwarf the rest points at a load-imbalanced
  /// strip partition.
  std::vector<std::uint64_t> shard_barrier_spins;

  /// One-line summary of stuck processors ("proc 3: 17 ops, at barrier 2;
  /// ..."), plus any non-empty per-home invalidation queues and the cycle
  /// kernel's health counters (fast-forwarded cycles, per-shard barrier
  /// spins); empty when every processor completed.
  [[nodiscard]] std::string describe_stalls() const;
};

class TraceRunner {
public:
  /// `think_per_access`: fixed computation time modelled between accesses
  /// (network cycles); stands in for the instructions between memory ops.
  TraceRunner(dsm::Machine& m, const Trace& t, Cycle think_per_access = 4);

  /// Replay to completion (or until `max_cycles` elapse).
  [[nodiscard]] RunResult run(Cycle max_cycles = 2'000'000'000);

private:
  dsm::Machine& m_;
  const Trace& t_;
  Cycle think_;
};

} // namespace mdw::workload
