// Application kernels (paper Table 6): Barnes-Hut (128 bodies, 4 steps),
// blocked LU (128x128, 8x8 blocks), All Pairs Shortest Path.
//
// Each function runs the real computation, partitioned over `nprocs`
// logical processors exactly as the parallel version would be, and records
// the shared-memory block accesses each processor performs (plus the
// barriers separating phases).  The returned trace is replayed by
// TraceRunner; the computation's numerical result is returned for
// validation by the test suite.
#pragma once

#include <cstdint>
#include <vector>

#include "workload/trace.h"

namespace mdw::workload {

/// Block-address layout used by the app traces: each app gets a disjoint
/// region so multi-app experiments never alias.
inline constexpr BlockAddr kBodyPosBase = 0x1000;
inline constexpr BlockAddr kBodyVelBase = 0x2000;
inline constexpr BlockAddr kBodyAccBase = 0x3000;
inline constexpr BlockAddr kTreeBase = 0x4000;
inline constexpr BlockAddr kLuBase = 0x8000;
inline constexpr BlockAddr kApsBase = 0xC000;

// --- Barnes-Hut ------------------------------------------------------------

struct BarnesHutResult {
  std::vector<double> x, y;       // final positions
  std::size_t tree_nodes_built = 0;
};

/// 2-D Barnes-Hut N-body with a quadtree and theta-criterion force
/// evaluation.  Tree build is performed by processor 0 (writes the shared
/// tree blocks), force evaluation and updates are partitioned over bodies.
[[nodiscard]] Trace barnes_hut_trace(int nprocs, int nbodies, int steps,
                                     std::uint64_t seed,
                                     BarnesHutResult* result = nullptr);

// --- Blocked LU ------------------------------------------------------------

struct LuResult {
  int n = 0;
  std::vector<double> lu;         // packed LU factors
  double residual = 0.0;          // max |A - L*U|
};

/// Right-looking blocked LU factorization (no pivoting; the matrix is made
/// diagonally dominant) with a 2-D cyclic block-owner map.
[[nodiscard]] Trace lu_trace(int nprocs, int n, int block,
                             std::uint64_t seed, LuResult* result = nullptr);

// --- All Pairs Shortest Path ------------------------------------------------

struct ApspResult {
  int n = 0;
  std::vector<std::uint32_t> dist;  // n x n distance matrix
};

/// Floyd-Warshall with row-partitioned ownership: every processor reads the
/// pivot row each iteration (the classic heavy read-sharing pattern).
[[nodiscard]] Trace apsp_trace(int nprocs, int nverts, std::uint64_t seed,
                               ApspResult* result = nullptr);

} // namespace mdw::workload
