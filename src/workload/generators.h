// Synthetic sharing-pattern stream generators.
//
// Each generator produces an endless-capacity (bounded only by
// ops_per_proc) pull-based stream of block accesses whose *sharing
// structure* — which processors touch which blocks, and how reads and
// writes interleave — reproduces one of the classic DSM access archetypes:
//
//   zipfian            skewed block popularity (alias-table Zipf sampler),
//                      mixed reads/writes — the web-serving / hot-object
//                      steady state
//   read-mostly        zipfian with a 5% write fraction
//   write-heavy        zipfian with a 60% write fraction
//   migratory          each block is read-modify-written by its accessor
//                      group members in turn (lock-protected counter style)
//   producer-consumer  one writer per block, the rest of its group re-reads
//                      after every update — the paper's repeated
//                      invalidation pattern at a controllable degree
//   false-sharing      group members write *distinct words* of the same
//                      block (word index in TraceOp::arg); the protocol
//                      invalidates at block granularity, so traffic is all
//                      coherence overhead
//
// Spatial composition: every block gets an accessor group placed by the
// existing SharerPattern geometry (workload/synthetic.h) around the block's
// home node, so the stream generators sweep the same spatial axes as the
// paper's controlled invalidation experiments.
//
// Seed discipline: processor p draws from an Rng seeded
// sim::split_seed(cfg.seed, p) — the same SplitMix64 sub-stream rule the
// sweep grid uses for per-point seeds — so a sweep point and a standalone
// run with the same seed produce identical per-proc streams.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "noc/geometry.h"
#include "sim/rng.h"
#include "workload/stream.h"
#include "workload/synthetic.h"

namespace mdw::workload {

enum class GenKind : std::uint8_t {
  None = 0,  // sentinel: "not a stream point" (sweep grids)
  Zipfian,
  ReadMostly,
  WriteHeavy,
  Migratory,
  ProducerConsumer,
  FalseSharing,
};

inline constexpr GenKind kAllGenKinds[] = {
    GenKind::Zipfian,      GenKind::ReadMostly,       GenKind::WriteHeavy,
    GenKind::Migratory,    GenKind::ProducerConsumer, GenKind::FalseSharing,
};

[[nodiscard]] const char* gen_name(GenKind k);
bool gen_from_name(const std::string& name, GenKind& out);

struct GenConfig {
  GenKind kind = GenKind::Zipfian;
  int nprocs = 0;                  // required: one logical proc per node
  std::uint32_t nblocks = 4096;    // shared-block pool size
  double zipf_alpha = 0.9;         // popularity skew (0 = uniform)
  double write_fraction = 0.25;    // zipfian only; presets override
  std::uint64_t ops_per_proc = 1000;
  std::uint64_t seed = 1;
  /// Spatial placement of each block's accessor group around its home.
  SharerPattern pattern = SharerPattern::Uniform;
  int group = 8;                   // accessor-group size per block
  BlockAddr base_addr = 0x100000;  // disjoint from the app-trace regions
};

/// Walker alias-table sampler over a discrete distribution: O(n) build,
/// O(1) draws (two uniform draws per sample), exact to double precision.
/// The block-popularity sampler behind the zipfian generators.
class AliasTable {
public:
  explicit AliasTable(const std::vector<double>& weights);

  /// Index in [0, size) with probability weight[i] / sum(weights).
  [[nodiscard]] std::uint32_t sample(sim::Rng& rng) const;

  [[nodiscard]] std::size_t size() const { return prob_.size(); }

private:
  std::vector<double> prob_;          // acceptance threshold per column
  std::vector<std::uint32_t> alias_;  // fallback index per column
};

/// Build a generator; cfg.nprocs must be set (one proc per mesh node —
/// `mesh` supplies the geometry the SharerPattern placement needs).
[[nodiscard]] std::unique_ptr<StreamSource> make_generator(
    const GenConfig& cfg, const noc::MeshShape& mesh);

} // namespace mdw::workload
