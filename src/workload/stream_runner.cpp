#include "workload/stream_runner.h"

#include <cassert>

namespace mdw::workload {

StreamRunner::StreamRunner(dsm::Machine& m, StreamSource& src,
                           StreamRunnerOptions opt)
    : m_(m), src_(src), opt_(opt),
      win_(0, opt.window_cycles),
      prog_(static_cast<std::size_t>(src.nprocs())) {
  assert(src.nprocs() > 0);
  assert(src.nprocs() <= m.num_nodes());
  if (opt_.outstanding > 1) opt_.use_service = true;
  assert(opt_.outstanding >= 1);
  warmup_done_ = opt_.warmup_accesses == 0;
  if (opt_.use_service) {
    sstate_.resize(prog_.size());
    sessions_.reserve(prog_.size());
    for (int p = 0; p < src.nprocs(); ++p) {
      svc::SessionOptions so;
      so.max_outstanding = opt_.outstanding;
      auto s = std::make_unique<svc::Session>(m_, static_cast<NodeId>(p), so);
      s->set_on_complete(
          [this, p](const svc::OpResult&) { svc_on_done(p); });
      sessions_.push_back(std::move(s));
    }
  }
  // Stamp each proc with the cycle-kernel shard owning its home router so
  // a timeout's describe_stalls() names the strip a stuck proc lives on.
  if (m_.network().shards() > 1) {
    for (std::size_t p = 0; p < prog_.size(); ++p) {
      prog_[p].home_shard = m_.network().shard_of(static_cast<NodeId>(p));
    }
  }
}

StreamRunner::~StreamRunner() {
  if (observer_attached_) m_.set_txn_observer(nullptr);
}

StreamResult StreamRunner::run() {
  if (opt_.windowed) {
    // Window invalidation latencies as transactions complete; pre-warmup
    // completions are dropped by the warmup_done_ gate, not by the
    // windowing cutoff, so no pre-warmup state accumulates.
    const bool sharded = m_.network().shards() > 1;
    m_.set_txn_observer([this, sharded](const dsm::InvalTxnRecord& rec) {
      if (warmup_done_) {
        win_.record_txn(rec.end, static_cast<double>(rec.end - rec.start),
                        sharded ? m_.network().shard_of(rec.home) : -1);
      }
    });
    observer_attached_ = true;
  }

  const int n = src_.nprocs();
  for (int p = 0; p < n; ++p) {
    // Stagger the very first issue slightly so node 0 doesn't always win
    // arbitration at cycle 0.
    m_.engine().schedule_after(static_cast<Cycle>(p % 4), [this, p] {
      if (opt_.use_service) fill(p);
      else step(p);
    });
  }
  StreamResult r;
  const Cycle t0 = m_.engine().now();
  r.completed = m_.engine().run_until([&] { return done_procs_ == n; },
                                      opt_.max_cycles);
  if (!r.completed) {
    // Snapshot the diagnosis state NOW: the quiescence drain below retires
    // in-flight accesses and empties the home queues, which would make a
    // timed-out run look like nothing was stuck.
    r.procs = prog_;
    r.home_queue_depths.resize(static_cast<std::size_t>(m_.num_nodes()));
    for (NodeId id = 0; id < m_.num_nodes(); ++id) {
      r.home_queue_depths[static_cast<std::size_t>(id)] =
          m_.node(id).svc_queue_depth();
    }
  }
  // Let in-flight acknowledgments settle for accurate traffic counters.
  (void)m_.engine().run_to_quiescence(1'000'000);
  end_cycle_ = m_.engine().now();

  if (observer_attached_) {
    m_.set_txn_observer(nullptr);
    observer_attached_ = false;
  }

  r.cycles = end_cycle_ - t0;
  r.accesses = accesses_;
  r.ff_cycles = m_.network().ff_cycles();
  if (const int shards = m_.network().shards(); shards > 1) {
    r.shard_barrier_spins.resize(static_cast<std::size_t>(shards));
    for (int s = 0; s < shards; ++s) {
      r.shard_barrier_spins[static_cast<std::size_t>(s)] =
          m_.network().shard_barrier_spins(s);
    }
  }
  if (r.completed) r.procs = prog_;  // timed-out runs keep the snapshot
  if (opt_.windowed && warmup_done_) {
    r.warmup_end = win_.warmup_end();
    r.steady_cycles = end_cycle_ > r.warmup_end ? end_cycle_ - r.warmup_end
                                                : 0;
    r.steady_accesses = win_.steady_accesses();
    r.steady_txns = win_.steady_txns();
    if (r.steady_cycles > 0) {
      const double kc = static_cast<double>(r.steady_cycles) / 1000.0;
      r.accesses_per_kcycle = static_cast<double>(r.steady_accesses) / kc;
      r.txns_per_kcycle = static_cast<double>(r.steady_txns) / kc;
    }
    const sim::Histogram& lat = win_.steady_latency();
    r.lat_mean = lat.sampler().mean();
    r.lat_p50 = lat.quantile(0.50);
    r.lat_p90 = lat.quantile(0.90);
    r.lat_p99 = lat.quantile(0.99);
    r.windows = win_.rows(end_cycle_);
  }
  return r;
}

void StreamRunner::snapshot_metrics(obs::MetricsRegistry& reg) const {
  win_.snapshot_into(reg, end_cycle_);
}

void StreamRunner::rebalance() {
  // Runs inside an engine event callback — between ticks, which is exactly
  // the window Network::rebalance_shards requires.  The warmup traffic has
  // seeded the link heatmap and the scheduled-router population the cost
  // model reads.
  m_.network().rebalance_shards();
  // Strip boundaries moved: re-stamp the per-proc home shards used by
  // describe_stalls().
  if (m_.network().shards() > 1) {
    for (std::size_t p = 0; p < prog_.size(); ++p) {
      prog_[p].home_shard = m_.network().shard_of(static_cast<NodeId>(p));
    }
  }
}

void StreamRunner::step(int proc) {
  TraceOp op;
  if (!src_.next(proc, op)) {
    prog_[static_cast<std::size_t>(proc)].done = true;
    ++done_procs_;
    return;
  }
  ++prog_[static_cast<std::size_t>(proc)].ops_retired;
  switch (op.kind) {
    case OpKind::Read:
      ++accesses_;
      m_.node(proc).read(op.addr,
                         [this, proc](std::uint64_t) { on_access_done(proc); });
      break;
    case OpKind::Write:
      ++accesses_;
      m_.node(proc).write(op.addr, m_.engine().now(),
                          [this, proc] { on_access_done(proc); });
      break;
    case OpKind::Think:
      m_.engine().schedule_after(op.arg, [this, proc] { step(proc); });
      break;
    case OpKind::Barrier:
      reach_barrier(proc, op.arg);
      break;
  }
}

void StreamRunner::on_access_done(int proc) {
  ++completed_accesses_;
  if (opt_.windowed) {
    if (!warmup_done_) {
      if (completed_accesses_ >= opt_.warmup_accesses) {
        warmup_done_ = true;
        win_.set_warmup_end(m_.engine().now());
        if (opt_.rebalance_after_warmup) rebalance();
      }
    } else {
      win_.record_access(m_.engine().now());
    }
  }
  m_.engine().schedule_after(opt_.think, [this, proc] { step(proc); });
}

// --------------------------------------------------------------------------
// Service mode: each proc keeps `outstanding` ops in flight through its
// svc::Session; one completion plus one think time re-fills the freed slot.
// With outstanding == 1 the issue/complete/think schedule is identical to
// the classic step/on_access_done loop (pinned in test_determinism).
// --------------------------------------------------------------------------

void StreamRunner::fill(int proc) {
  auto& pp = prog_[static_cast<std::size_t>(proc)];
  auto& ps = sstate_[static_cast<std::size_t>(proc)];
  if (pp.done || ps.at_barrier_wait) return;
  while (ps.inflight < opt_.outstanding) {
    TraceOp op;
    if (!src_.next(proc, op)) {
      ps.exhausted = true;
      if (ps.inflight == 0) {
        pp.done = true;
        ++done_procs_;
      }
      return;
    }
    ++pp.ops_retired;
    switch (op.kind) {
      case OpKind::Read:
        ++accesses_;
        ++ps.inflight;
        (void)sessions_[static_cast<std::size_t>(proc)]->read(op.addr);
        break;
      case OpKind::Write:
        ++accesses_;
        ++ps.inflight;
        (void)sessions_[static_cast<std::size_t>(proc)]->write(
            op.addr, m_.engine().now());
        break;
      case OpKind::Think:
        // The think gates further ISSUE only; in-flight ops keep going.
        m_.engine().schedule_after(op.arg, [this, proc] { fill(proc); });
        return;
      case OpKind::Barrier:
        ps.at_barrier_wait = true;
        ps.barrier_id = op.arg;
        // Barrier semantics: arrive only once the window drains.
        if (ps.inflight == 0) reach_barrier(proc, op.arg);
        return;
    }
  }
}

void StreamRunner::svc_on_done(int proc) {
  auto& pp = prog_[static_cast<std::size_t>(proc)];
  auto& ps = sstate_[static_cast<std::size_t>(proc)];
  --ps.inflight;
  assert(ps.inflight >= 0);
  ++completed_accesses_;
  if (opt_.windowed) {
    if (!warmup_done_) {
      if (completed_accesses_ >= opt_.warmup_accesses) {
        warmup_done_ = true;
        win_.set_warmup_end(m_.engine().now());
        if (opt_.rebalance_after_warmup) rebalance();
      }
    } else {
      win_.record_access(m_.engine().now());
    }
  }
  if (ps.at_barrier_wait) {
    if (ps.inflight == 0) reach_barrier(proc, ps.barrier_id);
    return;
  }
  if (ps.exhausted) {
    if (ps.inflight == 0 && !pp.done) {
      pp.done = true;
      ++done_procs_;
    }
    return;
  }
  m_.engine().schedule_after(opt_.think, [this, proc] { fill(proc); });
}

void StreamRunner::resume(int proc) {
  if (opt_.use_service) {
    sstate_[static_cast<std::size_t>(proc)].at_barrier_wait = false;
    fill(proc);
  } else {
    step(proc);
  }
}

void StreamRunner::reach_barrier(int proc, std::uint32_t id) {
  assert(id == barrier_id_);
  auto& pp = prog_[static_cast<std::size_t>(proc)];
  pp.at_barrier = true;
  pp.barrier_id = id;
  if (++barrier_waiting_ < src_.nprocs()) return;
  // Everyone arrived: release.  (The paper's focus is the invalidation
  // machinery; the barrier itself is idealized — see DESIGN.md.)
  barrier_waiting_ = 0;
  ++barrier_id_;
  for (int p = 0; p < src_.nprocs(); ++p) {
    prog_[static_cast<std::size_t>(p)].at_barrier = false;
    m_.engine().schedule_after(1, [this, p] { resume(p); });
  }
}

} // namespace mdw::workload
