#include "workload/synthetic.h"

#include <algorithm>
#include <cassert>
#include <set>

namespace mdw::workload {

const char* pattern_name(SharerPattern p) {
  switch (p) {
    case SharerPattern::Uniform: return "uniform";
    case SharerPattern::Cluster: return "cluster";
    case SharerPattern::SameColumn: return "same-column";
    case SharerPattern::SameRow: return "same-row";
  }
  return "?";
}

std::vector<NodeId> make_sharers(sim::Rng& rng, const noc::MeshShape& mesh,
                                 NodeId home, NodeId writer, int d,
                                 SharerPattern pattern) {
  const int n = mesh.num_nodes();
  std::set<NodeId> picked;
  auto eligible = [&](NodeId c) { return c != home && c != writer; };

  switch (pattern) {
    case SharerPattern::Uniform: {
      assert(d <= n - 2);
      while (static_cast<int>(picked.size()) < d) {
        const auto c = static_cast<NodeId>(rng.next_below(n));
        if (eligible(c)) picked.insert(c);
      }
      break;
    }
    case SharerPattern::Cluster: {
      // Smallest square region (anchored at a random position) holding d
      // eligible nodes.
      int side = 1;
      while (side * side < d + 2) ++side;
      side = std::min(side, std::min(mesh.width(), mesh.height()));
      const int ax = static_cast<int>(
          rng.next_below(static_cast<std::uint64_t>(mesh.width() - side + 1)));
      const int ay = static_cast<int>(
          rng.next_below(static_cast<std::uint64_t>(mesh.height() - side + 1)));
      for (int y = ay; y < ay + side && static_cast<int>(picked.size()) < d;
           ++y) {
        for (int x = ax; x < ax + side && static_cast<int>(picked.size()) < d;
             ++x) {
          const NodeId c = mesh.id_of({x, y});
          if (eligible(c)) picked.insert(c);
        }
      }
      // Fill any remainder uniformly (tiny meshes).
      while (static_cast<int>(picked.size()) < d) {
        const auto c = static_cast<NodeId>(rng.next_below(n));
        if (eligible(c)) picked.insert(c);
      }
      break;
    }
    case SharerPattern::SameColumn: {
      const int hx = mesh.coord_of(home).x;
      std::vector<NodeId> col;
      for (int y = 0; y < mesh.height(); ++y) {
        const NodeId c = mesh.id_of({hx, y});
        if (eligible(c)) col.push_back(c);
      }
      assert(d <= static_cast<int>(col.size()));
      // Closest-first along the column.
      std::sort(col.begin(), col.end(), [&](NodeId a, NodeId b) {
        return mesh.manhattan(a, home) < mesh.manhattan(b, home);
      });
      picked.insert(col.begin(), col.begin() + d);
      break;
    }
    case SharerPattern::SameRow: {
      const int hy = mesh.coord_of(home).y;
      std::vector<NodeId> row;
      for (int x = 0; x < mesh.width(); ++x) {
        const NodeId c = mesh.id_of({x, hy});
        if (eligible(c)) row.push_back(c);
      }
      assert(d <= static_cast<int>(row.size()));
      std::sort(row.begin(), row.end(), [&](NodeId a, NodeId b) {
        return mesh.manhattan(a, home) < mesh.manhattan(b, home);
      });
      picked.insert(row.begin(), row.begin() + d);
      break;
    }
  }
  return {picked.begin(), picked.end()};
}

Trace random_trace(int nprocs, int ops_per_proc, int nblocks,
                   double write_fraction, std::uint64_t seed) {
  TraceBuilder tb(nprocs);
  for (int p = 0; p < nprocs; ++p) {
    // One SplitMix64-derived sub-stream per processor (the same rule the
    // sweep grid uses for per-point seeds), so processor p's stream is a
    // function of (seed, p) alone — independent of nprocs and of any other
    // processor's draws.
    sim::Rng rng(sim::split_seed(seed, static_cast<std::uint64_t>(p)));
    for (int i = 0; i < ops_per_proc; ++i) {
      const BlockAddr a = rng.next_below(static_cast<std::uint64_t>(nblocks));
      if (rng.next_bool(write_fraction)) tb.write(p, a);
      else tb.read(p, a);
    }
  }
  return tb.take();
}

} // namespace mdw::workload
