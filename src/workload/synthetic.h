// Synthetic workload generators: controlled sharer patterns for the
// invalidation experiments, and random mixed traffic.
#pragma once

#include <vector>

#include "noc/geometry.h"
#include "sim/rng.h"
#include "workload/trace.h"

namespace mdw::workload {

/// Spatial distribution of the sharers of one block (paper §6: invalidation
/// patterns).
enum class SharerPattern {
  Uniform,     // uniform random over the mesh
  Cluster,     // contiguous square region around a random corner of the mesh
  SameColumn,  // all sharers in the home's column (best case for EC schemes)
  SameRow,     // all sharers in the home's row
};

[[nodiscard]] const char* pattern_name(SharerPattern p);

/// Pick `d` distinct sharers (never the home or the writer).
[[nodiscard]] std::vector<NodeId> make_sharers(sim::Rng& rng,
                                               const noc::MeshShape& mesh,
                                               NodeId home, NodeId writer,
                                               int d, SharerPattern pattern);

/// Random mixed read/write trace over a small shared block pool.
[[nodiscard]] Trace random_trace(int nprocs, int ops_per_proc, int nblocks,
                                 double write_fraction, std::uint64_t seed);

} // namespace mdw::workload
