#include "workload/trace_runner.h"

#include <cassert>

namespace mdw::workload {

TraceRunner::TraceRunner(dsm::Machine& m, const Trace& t, Cycle think)
    : m_(m), t_(t), think_(think),
      pc_(static_cast<std::size_t>(t.nprocs), 0),
      at_barrier_(static_cast<std::size_t>(t.nprocs), false) {
  assert(t.nprocs <= m.num_nodes());
}

RunResult TraceRunner::run(Cycle max_cycles) {
  for (int p = 0; p < t_.nprocs; ++p) {
    // Stagger the very first issue slightly so node 0 doesn't always win
    // arbitration at cycle 0.
    m_.engine().schedule_after(static_cast<Cycle>(p % 4), [this, p] { step(p); });
  }
  RunResult r;
  const Cycle t0 = m_.engine().now();
  r.completed = m_.engine().run_until(
      [&] { return done_procs_ == t_.nprocs; }, max_cycles);
  // Let in-flight acknowledgments settle for accurate traffic counters.
  (void)m_.engine().run_to_quiescence(1'000'000);
  r.cycles = m_.engine().now() - t0;
  r.accesses = accesses_;
  return r;
}

void TraceRunner::step(int proc) {
  auto& stream = t_.per_proc[proc];
  if (pc_[proc] >= stream.size()) {
    ++done_procs_;
    return;
  }
  const TraceOp op = stream[pc_[proc]++];
  switch (op.kind) {
    case OpKind::Read:
      ++accesses_;
      m_.node(proc).read(op.addr, [this, proc](std::uint64_t) {
        m_.engine().schedule_after(think_, [this, proc] { step(proc); });
      });
      break;
    case OpKind::Write:
      ++accesses_;
      m_.node(proc).write(op.addr, m_.engine().now(), [this, proc] {
        m_.engine().schedule_after(think_, [this, proc] { step(proc); });
      });
      break;
    case OpKind::Think:
      m_.engine().schedule_after(op.arg, [this, proc] { step(proc); });
      break;
    case OpKind::Barrier:
      reach_barrier(proc, op.arg);
      break;
  }
}

void TraceRunner::reach_barrier(int proc, std::uint32_t id) {
  assert(id == barrier_id_);
  at_barrier_[proc] = true;
  if (++barrier_waiting_ < t_.nprocs) return;
  // Everyone arrived: release.  (The paper's focus is the invalidation
  // machinery; the barrier itself is idealized — see DESIGN.md.)
  barrier_waiting_ = 0;
  ++barrier_id_;
  for (int p = 0; p < t_.nprocs; ++p) {
    at_barrier_[p] = false;
    m_.engine().schedule_after(1, [this, p] { step(p); });
  }
}

} // namespace mdw::workload
