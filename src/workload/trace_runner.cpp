#include "workload/trace_runner.h"

#include <cassert>
#include <sstream>

#include "workload/stream_runner.h"

namespace mdw::workload {

std::string RunResult::describe_stalls() const {
  if (completed) return {};
  std::ostringstream os;
  bool first = true;
  for (std::size_t p = 0; p < procs.size(); ++p) {
    const ProcProgress& pp = procs[p];
    if (pp.done) continue;
    if (!first) os << "; ";
    first = false;
    os << "proc " << p << ": " << pp.ops_retired << " ops";
    if (pp.at_barrier) os << ", at barrier " << pp.barrier_id;
    else os << ", in flight";
    if (pp.home_shard >= 0) os << " (home shard " << pp.home_shard << ")";
  }
  bool label_pending = true;
  for (std::size_t h = 0; h < home_queue_depths.size(); ++h) {
    if (home_queue_depths[h] == 0) continue;
    if (label_pending) {
      if (!first) os << "; ";
      os << "home queues:";
      label_pending = false;
    } else {
      os << ",";
    }
    os << " node " << h << "=" << home_queue_depths[h];
  }
  if (ff_cycles > 0) {
    if (!first) os << "; ";
    first = false;
    os << "net.ff_cycles=" << ff_cycles;
  }
  if (!shard_barrier_spins.empty()) {
    if (!first) os << "; ";
    os << "shard barrier_spins:";
    for (std::size_t s = 0; s < shard_barrier_spins.size(); ++s) {
      os << (s == 0 ? " " : ", ") << "shard." << s << "="
         << shard_barrier_spins[s];
    }
  }
  return os.str();
}

TraceRunner::TraceRunner(dsm::Machine& m, const Trace& t, Cycle think)
    : m_(m), t_(t), think_(think) {
  assert(t.nprocs <= m.num_nodes());
}

RunResult TraceRunner::run(Cycle max_cycles) {
  TraceSource src(t_);
  StreamRunnerOptions opt;
  opt.think = think_;
  opt.max_cycles = max_cycles;
  opt.windowed = false;  // pure replay: no steady-state bookkeeping
  StreamRunner runner(m_, src, opt);
  StreamResult s = runner.run();
  RunResult r;
  r.cycles = s.cycles;
  r.accesses = s.accesses;
  r.completed = s.completed;
  r.procs = std::move(s.procs);
  r.home_queue_depths = std::move(s.home_queue_depths);
  r.ff_cycles = s.ff_cycles;
  r.shard_barrier_spins = std::move(s.shard_barrier_spins);
  return r;
}

} // namespace mdw::workload
