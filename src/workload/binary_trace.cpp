#include "workload/binary_trace.h"

#include <cstdio>
#include <cstring>

namespace mdw::workload {

namespace {

constexpr char kMagic[4] = {'M', 'D', 'W', 'T'};

void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80u);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

[[nodiscard]] constexpr std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}
[[nodiscard]] constexpr std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

struct Reader {
  const std::uint8_t* p;
  const std::uint8_t* end;
  bool ok = true;

  std::uint64_t varint() {
    std::uint64_t v = 0;
    int shift = 0;
    while (p < end) {
      const std::uint8_t b = *p++;
      if (shift >= 63 && b > 1) break;  // > 64 bits: malformed
      v |= static_cast<std::uint64_t>(b & 0x7Fu) << shift;
      if ((b & 0x80u) == 0) return v;
      shift += 7;
    }
    ok = false;
    return 0;
  }
};

bool fail(std::string* error, const char* why) {
  if (error != nullptr) *error = why;
  return false;
}

} // namespace

std::vector<std::uint8_t> encode_trace(const Trace& t) {
  std::vector<std::uint8_t> out;
  // Rough pre-size: header + ~3 bytes per op.
  out.reserve(16 + 3 * t.total_ops());
  for (char c : kMagic) out.push_back(static_cast<std::uint8_t>(c));
  for (int i = 0; i < 4; ++i) {
    out.push_back(
        static_cast<std::uint8_t>((kBinaryTraceVersion >> (8 * i)) & 0xFFu));
  }
  put_varint(out, static_cast<std::uint64_t>(t.nprocs));
  put_varint(out, static_cast<std::uint64_t>(t.num_barriers));
  for (const auto& stream : t.per_proc) {
    put_varint(out, stream.size());
    BlockAddr prev = 0;
    for (const TraceOp& op : stream) {
      std::uint8_t tag = static_cast<std::uint8_t>(op.kind) & 0x3u;
      if (op.arg != 0) tag |= 0x4u;
      out.push_back(tag);
      if (op.kind == OpKind::Read || op.kind == OpKind::Write) {
        put_varint(out, zigzag(static_cast<std::int64_t>(op.addr) -
                               static_cast<std::int64_t>(prev)));
        prev = op.addr;
      }
      if (op.arg != 0) put_varint(out, op.arg);
    }
  }
  return out;
}

bool decode_trace(const std::uint8_t* data, std::size_t size, Trace& out,
                  std::string* error) {
  if (size < 8 || std::memcmp(data, kMagic, 4) != 0) {
    return fail(error, "not an MDWT trace (bad magic)");
  }
  std::uint32_t version = 0;
  for (int i = 0; i < 4; ++i) {
    version |= static_cast<std::uint32_t>(data[4 + i]) << (8 * i);
  }
  if (version != kBinaryTraceVersion) {
    return fail(error, "unsupported MDWT version");
  }
  Reader r{data + 8, data + size};
  Trace t;
  const std::uint64_t nprocs = r.varint();
  const std::uint64_t num_barriers = r.varint();
  if (!r.ok || nprocs > (1u << 20)) {
    return fail(error, "malformed header");
  }
  t.nprocs = static_cast<int>(nprocs);
  t.num_barriers = static_cast<int>(num_barriers);
  t.per_proc.resize(nprocs);
  for (std::uint64_t p = 0; p < nprocs; ++p) {
    const std::uint64_t count = r.varint();
    if (!r.ok) return fail(error, "truncated op count");
    // Every op is at least one tag byte, so a count exceeding the remaining
    // payload is corrupt.  Checking BEFORE reserve() keeps an adversarial
    // count (e.g. 2^60) from forcing a multi-exabyte allocation attempt.
    if (count > static_cast<std::uint64_t>(r.end - r.p)) {
      return fail(error, "op count exceeds remaining payload");
    }
    auto& stream = t.per_proc[p];
    stream.reserve(count);
    BlockAddr prev = 0;
    for (std::uint64_t i = 0; i < count; ++i) {
      if (r.p >= r.end) return fail(error, "truncated op stream");
      const std::uint8_t tag = *r.p++;
      if ((tag & ~0x7u) != 0) return fail(error, "bad op tag");
      TraceOp op;
      op.kind = static_cast<OpKind>(tag & 0x3u);
      if (op.kind == OpKind::Read || op.kind == OpKind::Write) {
        const std::int64_t delta = unzigzag(r.varint());
        const std::int64_t addr = static_cast<std::int64_t>(prev) + delta;
        if (addr < 0) return fail(error, "block address delta underflows");
        op.addr = static_cast<BlockAddr>(addr);
        prev = op.addr;
      }
      if ((tag & 0x4u) != 0) {
        const std::uint64_t arg = r.varint();
        if (arg > 0xFFFFFFFFull) {
          return fail(error, "op arg exceeds 32 bits");
        }
        op.arg = static_cast<std::uint32_t>(arg);
      }
      if (!r.ok) return fail(error, "truncated op");
      stream.push_back(op);
    }
  }
  if (r.p != r.end) return fail(error, "trailing bytes after trace");
  out = std::move(t);
  return true;
}

bool save_trace(const Trace& t, const std::string& path, std::string* error) {
  const std::vector<std::uint8_t> bytes = encode_trace(t);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return fail(error, "cannot open file for writing");
  const bool ok = std::fwrite(bytes.data(), 1, bytes.size(), f) ==
                  bytes.size();
  std::fclose(f);
  if (!ok) return fail(error, "short write");
  return true;
}

bool load_trace(const std::string& path, Trace& out, std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return fail(error, "cannot open file for reading");
  std::vector<std::uint8_t> bytes;
  std::uint8_t buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    bytes.insert(bytes.end(), buf, buf + n);
  }
  const bool read_err = std::ferror(f) != 0;
  std::fclose(f);
  if (read_err) return fail(error, "read error");
  return decode_trace(bytes.data(), bytes.size(), out, error);
}

} // namespace mdw::workload
