// Flit and the fixed-capacity ring-buffer view backing every input VC and
// consumption channel.
//
// VC buffers are 2-4 flits deep (NocParams::vc_buffer_flits /
// cons_buffer_flits) and live for the whole simulation.  The seed modeled
// them as std::deque<Flit>; a later pass inlined them into per-router
// FlitRing objects; they now live in the RouterArena flit slabs (arena.h),
// with the head/size indices packed into the owning VcHot/ConsHot record.
// RingView is the access object: two pointers into the arena plus the fixed
// capacity, constructed inline by the router phases — flit movement is pure
// index arithmetic into one contiguous allocation, nothing here ever
// allocates.
#pragma once

#include <cassert>
#include <cstdint>

#include "sim/types.h"

namespace mdw::noc {

/// One flit in a buffer, packed into a single word: bit 63 = head flit,
/// bit 62 = tail flit, low 62 bits = arrival cycle.  Worm ownership lives
/// in the arena's owner arrays, so moving a flit is one 8-byte copy — no
/// refcount traffic on the hop path, and a vc_buffer_flits=4 ring is half
/// a cache line in the arena flit slab instead of a full one.  62 bits of
/// cycle space at 5 ns per cycle is ~700 years of simulated time, so the
/// packing can never change an arrival comparison.
struct Flit {
  static constexpr std::uint64_t kHeadBit = std::uint64_t{1} << 63;
  static constexpr std::uint64_t kTailBit = std::uint64_t{1} << 62;

  std::uint64_t bits = 0;

  Flit() = default;
  Flit(bool head, bool tail, Cycle arrival)
      : bits(arrival | (head ? kHeadBit : 0) | (tail ? kTailBit : 0)) {
    assert((arrival & (kHeadBit | kTailBit)) == 0);
  }

  [[nodiscard]] bool head() const { return (bits & kHeadBit) != 0; }
  [[nodiscard]] bool tail() const { return (bits & kTailBit) != 0; }
  [[nodiscard]] Cycle arrival() const { return bits & ~(kHeadBit | kTailBit); }
};
static_assert(sizeof(Flit) == 8);

/// Ring occupancy indices, embedded in the hot per-VC/per-channel records.
/// 8-bit: buffer depths are hardware FIFO depths (<= 255 asserted at arena
/// construction).
struct RingIdx {
  std::uint8_t head = 0;
  std::uint8_t size = 0;
};

/// Fixed-capacity FIFO view over `cap` contiguous Flit slots at `base`, with
/// occupancy kept in an external RingIdx.  Capacity is fixed at router
/// construction (the buffers are hardware FIFOs: their depth never changes).
class RingView {
public:
  RingView(Flit* base, RingIdx* idx, int cap) : base_(base), idx_(idx), cap_(cap) {}

  [[nodiscard]] int capacity() const { return cap_; }
  [[nodiscard]] int size() const { return idx_->size; }
  [[nodiscard]] bool empty() const { return idx_->size == 0; }
  [[nodiscard]] bool full() const { return idx_->size == cap_; }

  [[nodiscard]] const Flit& front() const {
    assert(idx_->size > 0);
    return base_[idx_->head];
  }

  void push_back(const Flit& f) {
    assert(idx_->size < cap_);
    base_[wrap(idx_->head + idx_->size)] = f;
    ++idx_->size;
  }

  void pop_front() {
    assert(idx_->size > 0);
    idx_->head = static_cast<std::uint8_t>(wrap(idx_->head + 1));
    --idx_->size;
  }

private:
  [[nodiscard]] int wrap(int i) const { return i >= cap_ ? i - cap_ : i; }

  Flit* base_;
  RingIdx* idx_;
  int cap_;
};

} // namespace mdw::noc
