// Flit and the fixed-capacity flit ring buffer backing every input VC and
// consumption channel.
//
// VC buffers are 2-4 flits deep (NocParams::vc_buffer_flits /
// cons_buffer_flits) and live for the whole simulation, yet the seed modeled
// them as std::deque<Flit> — a chunked heap container allocating and freeing
// as flits stream through.  FlitRing stores the common depths inline in the
// router object (<= kInlineFlits); deeper configurations take one heap block
// at construction time and never allocate again.
#pragma once

#include <cassert>
#include <memory>

#include "sim/types.h"

namespace mdw::noc {

/// One flit in a buffer.  Deliberately tiny: worm ownership lives in
/// InputVc::owner / ConsumptionChannel::worm, so moving a flit is a copy of
/// two flags and a timestamp — no refcount traffic on the hop path.
struct Flit {
  bool head = false;
  bool tail = false;
  Cycle arrival = 0;
};

class FlitRing {
public:
  /// Inline depth; covers the default VC (4) and consumption (2) buffers.
  static constexpr int kInlineFlits = 8;

  FlitRing() = default;
  FlitRing(const FlitRing&) = delete;
  FlitRing& operator=(const FlitRing&) = delete;
  // Movable so InputVc vectors can be resized at router construction.
  FlitRing(FlitRing&& o) noexcept
      : heap_(std::move(o.heap_)), cap_(o.cap_), head_(o.head_),
        size_(o.size_) {
    for (int i = 0; i < kInlineFlits; ++i) inline_[i] = o.inline_[i];
    o.cap_ = o.head_ = o.size_ = 0;
  }
  FlitRing& operator=(FlitRing&& o) noexcept {
    if (this != &o) {
      heap_ = std::move(o.heap_);
      cap_ = o.cap_;
      head_ = o.head_;
      size_ = o.size_;
      for (int i = 0; i < kInlineFlits; ++i) inline_[i] = o.inline_[i];
      o.cap_ = o.head_ = o.size_ = 0;
    }
    return *this;
  }

  /// Fix the capacity.  Called once at router construction (the buffers are
  /// hardware FIFOs: their depth never changes afterwards).
  void init(int capacity) {
    assert(capacity > 0 && size_ == 0);
    cap_ = capacity;
    if (cap_ > kInlineFlits) heap_ = std::make_unique<Flit[]>(cap_);
    head_ = 0;
  }

  [[nodiscard]] int capacity() const { return cap_; }
  [[nodiscard]] int size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] bool full() const { return size_ == cap_; }

  [[nodiscard]] const Flit& front() const {
    assert(size_ > 0);
    return data()[head_];
  }

  void push_back(const Flit& f) {
    assert(size_ < cap_);
    data()[wrap(head_ + size_)] = f;
    ++size_;
  }

  void pop_front() {
    assert(size_ > 0);
    head_ = wrap(head_ + 1);
    --size_;
  }

private:
  [[nodiscard]] Flit* data() { return heap_ != nullptr ? heap_.get() : inline_; }
  [[nodiscard]] const Flit* data() const {
    return heap_ != nullptr ? heap_.get() : inline_;
  }
  [[nodiscard]] int wrap(int i) const { return i >= cap_ ? i - cap_ : i; }

  Flit inline_[kInlineFlits];
  std::unique_ptr<Flit[]> heap_;  // only for capacities > kInlineFlits
  int cap_ = 0;
  int head_ = 0;
  int size_ = 0;
};

} // namespace mdw::noc
