#include "noc/worm_pool.h"

#include <cassert>

namespace mdw::noc {

WormPool::WormPool() : owner_(std::this_thread::get_id()) {}

WormPool::~WormPool() {
  drain_foreign();
  // Every worm must have come home: a worm released after its pool died
  // would dereference a dangling pool pointer.
  assert(outstanding_ == 0 && "worms outliving their WormPool");
  for (Worm* w : free_) delete w;
}

WormPtr WormPool::acquire() {
  assert(std::this_thread::get_id() == owner_);
  ++acquired_;
  ++outstanding_;
  Worm* w;
  if (free_.empty() &&
      foreign_count_.load(std::memory_order_relaxed) != 0) {
    drain_foreign();
  }
  if (!free_.empty()) {
    w = free_.back();
    free_.pop_back();
    ++reused_;
  } else {
    w = new Worm;
    w->pool = this;
  }
  return WormPtr(w);
}

void WormPool::recycle(Worm* w) noexcept {
  assert(w->refs == 0 && w->pool == this);
  if (std::this_thread::get_id() != owner_) {
    // Shard worker dropping the last reference: park raw, the owner resets
    // and refiles it (reset + bookkeeping stay single-threaded).
    const std::lock_guard<std::mutex> lock(foreign_mu_);
    foreign_.push_back(w);
    foreign_count_.store(foreign_.size(), std::memory_order_relaxed);
    return;
  }
  w->reset_for_reuse();
  --outstanding_;
  free_.push_back(w);
}

void WormPool::drain_foreign() noexcept {
  // Swap against a persistent scratch buffer instead of a fresh vector:
  // both sides keep their high-water capacity, so a warm pool drains
  // without touching the heap (pinned by test_alloc_guard).
  {
    const std::lock_guard<std::mutex> lock(foreign_mu_);
    foreign_scratch_.swap(foreign_);
    foreign_count_.store(0, std::memory_order_relaxed);
  }
  for (Worm* w : foreign_scratch_) {
    w->reset_for_reuse();
    --outstanding_;
    free_.push_back(w);
  }
  foreign_scratch_.clear();
}

WormPool& WormPool::local() {
  static thread_local WormPool pool;
  return pool;
}

void release_worm(Worm* w) noexcept {
  if (w->pool != nullptr) {
    w->pool->recycle(w);
  } else {
    delete w;
  }
}

} // namespace mdw::noc
