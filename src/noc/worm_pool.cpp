#include "noc/worm_pool.h"

#include <cassert>

namespace mdw::noc {

WormPool::WormPool() : owner_(std::this_thread::get_id()) {}

WormPool::~WormPool() {
  // Every worm must have come home: a worm released after its pool died
  // would dereference a dangling pool pointer.
  assert(outstanding_ == 0 && "worms outliving their WormPool");
  for (Worm* w : free_) delete w;
}

WormPtr WormPool::acquire() {
  assert(std::this_thread::get_id() == owner_);
  ++acquired_;
  ++outstanding_;
  Worm* w;
  if (!free_.empty()) {
    w = free_.back();
    free_.pop_back();
    ++reused_;
  } else {
    w = new Worm;
    w->pool = this;
  }
  return WormPtr(w);
}

void WormPool::recycle(Worm* w) noexcept {
  assert(std::this_thread::get_id() == owner_);
  assert(w->refs == 0 && w->pool == this);
  w->reset_for_reuse();
  --outstanding_;
  free_.push_back(w);
}

WormPool& WormPool::local() {
  static thread_local WormPool pool;
  return pool;
}

void release_worm(Worm* w) noexcept {
  if (w->pool != nullptr) {
    w->pool->recycle(w);
  } else {
    delete w;
  }
}

} // namespace mdw::noc
