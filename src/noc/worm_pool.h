// Freelist arena recycling Worm objects (DESIGN.md section 11).
//
// Every message the simulator moves used to cost three heap round-trips:
// the shared_ptr control block + Worm, and the two std::vectors (path,
// dests) inside it.  The pool keeps released worms on a freelist with their
// spill blocks intact, so after warm-up the worm build path touches the
// allocator only when a workload's in-flight high-water mark grows.
//
// Lifetime rules:
//   * A worm is acquired on the pool's owning thread.  One Machine builds
//     worms on one thread, and the sweep runner executes each grid point
//     wholly on one worker, so this holds by construction; the pool asserts
//     it.
//   * A worm is normally also released on that thread.  The sharded cycle
//     kernel (DESIGN.md section 14) is the one exception: a shard worker can
//     drop the last reference (e.g. a gather deposit sinking into a remote
//     strip's i-ack bank), so a foreign-thread release parks the worm on a
//     mutex-guarded side list that the owner drains on the next allocation
//     (or at destruction).  The refcount itself stays non-atomic: the kernel
//     orders all refcount operations on one worm via its phase barriers and
//     traverse-order waits.
//   * All worms of a pool die before the pool does (machines are destroyed
//     before thread exit).  The destructor asserts none are outstanding.
//   * Pooling is invisible to the simulation: a recycled worm is
//     reset_for_reuse()d back to the default-constructed state, and nothing
//     in the simulator branches on worm addresses.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "noc/worm.h"

namespace mdw::noc {

class WormPool {
public:
  WormPool();
  ~WormPool();
  WormPool(const WormPool&) = delete;
  WormPool& operator=(const WormPool&) = delete;

  /// Hand out a pristine worm, recycling a released one when available.
  [[nodiscard]] WormPtr acquire();

  /// Worms handed out and not yet released.
  [[nodiscard]] std::int64_t outstanding() const { return outstanding_; }
  /// Worms currently parked on the freelist.
  [[nodiscard]] std::size_t free_count() const { return free_.size(); }
  /// Total acquire() calls served.
  [[nodiscard]] std::uint64_t acquired() const { return acquired_; }
  /// Acquires served from the freelist (no allocation).
  [[nodiscard]] std::uint64_t reused() const { return reused_; }

  /// The calling thread's pool; used by the worm builders so construction
  /// sites need no pool plumbing.  Each sweep worker gets its own.
  [[nodiscard]] static WormPool& local();

private:
  friend void release_worm(Worm* w) noexcept;

  /// Reset `w` and park it on the freelist.  Only called by release_worm
  /// once the last WormPtr dropped.  Safe from any thread: a release off the
  /// owning thread goes to the foreign side list instead.
  void recycle(Worm* w) noexcept;

  /// Owner-thread only: move foreign-released worms onto the freelist.
  void drain_foreign() noexcept;

  std::vector<Worm*> free_;
  std::mutex foreign_mu_;
  std::vector<Worm*> foreign_;        // released off-thread, not yet reset
  std::vector<Worm*> foreign_scratch_;  // drain_foreign swap buffer; keeps
                                        // high-water capacity so steady-state
                                        // drains never allocate
  std::atomic<std::size_t> foreign_count_{0};
  std::int64_t outstanding_ = 0;
  std::uint64_t acquired_ = 0;
  std::uint64_t reused_ = 0;
  /// Release-thread affinity check (assertions stay on in release builds).
  std::thread::id owner_;
};

} // namespace mdw::noc
