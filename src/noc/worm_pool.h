// Freelist arena recycling Worm objects (DESIGN.md section 11).
//
// Every message the simulator moves used to cost three heap round-trips:
// the shared_ptr control block + Worm, and the two std::vectors (path,
// dests) inside it.  The pool keeps released worms on a freelist with their
// spill blocks intact, so after warm-up the worm build path touches the
// allocator only when a workload's in-flight high-water mark grows.
//
// Lifetime rules:
//   * A worm is released (refcount zero) on the thread that acquired it.
//     One Machine runs on one thread, and the sweep runner executes each
//     grid point wholly on one worker, so this holds by construction; the
//     pool asserts it.
//   * All worms of a pool die before the pool does (machines are destroyed
//     before thread exit).  The destructor asserts none are outstanding.
//   * Pooling is invisible to the simulation: a recycled worm is
//     reset_for_reuse()d back to the default-constructed state, and nothing
//     in the simulator branches on worm addresses.
#pragma once

#include <cstdint>
#include <thread>
#include <vector>

#include "noc/worm.h"

namespace mdw::noc {

class WormPool {
public:
  WormPool();
  ~WormPool();
  WormPool(const WormPool&) = delete;
  WormPool& operator=(const WormPool&) = delete;

  /// Hand out a pristine worm, recycling a released one when available.
  [[nodiscard]] WormPtr acquire();

  /// Worms handed out and not yet released.
  [[nodiscard]] std::int64_t outstanding() const { return outstanding_; }
  /// Worms currently parked on the freelist.
  [[nodiscard]] std::size_t free_count() const { return free_.size(); }
  /// Total acquire() calls served.
  [[nodiscard]] std::uint64_t acquired() const { return acquired_; }
  /// Acquires served from the freelist (no allocation).
  [[nodiscard]] std::uint64_t reused() const { return reused_; }

  /// The calling thread's pool; used by the worm builders so construction
  /// sites need no pool plumbing.  Each sweep worker gets its own.
  [[nodiscard]] static WormPool& local();

private:
  friend void release_worm(Worm* w) noexcept;

  /// Reset `w` and park it on the freelist.  Only called by release_worm
  /// once the last WormPtr dropped.
  void recycle(Worm* w) noexcept;

  std::vector<Worm*> free_;
  std::int64_t outstanding_ = 0;
  std::uint64_t acquired_ = 0;
  std::uint64_t reused_ = 0;
  /// Release-thread affinity check (assertions stay on in release builds).
  std::thread::id owner_;
};

} // namespace mdw::noc
