// Flat structure-of-arrays arena backing every router's hot state (DESIGN.md
// section 17).
//
// The cycle kernel's per-tick working set — VC occupancy/route words, flit
// ring storage, consumption-channel state, scheduler/arbitration words — used
// to live scattered across per-Router objects (vectors of InputVc holding
// FlitRings holding unique_ptrs), so a 64x64 tick was dominated by pointer
// chasing.  RouterArena packs it into ONE contiguous 64-byte-aligned
// allocation, split into section-major arrays (all nodes' NodeWords, then all
// nodes' VcHot records, then the VC flit slab, ...), each section's per-node
// stride padded up to a multiple of 64 bytes.  Consequences:
//
//   * every per-(node, port, vc) field is reached by index arithmetic from
//     (node, port, vc): slot = port * vmax + vc, addr = base + node * stride;
//   * any whole-row strip of nodes [lo, hi) maps to the contiguous,
//     cache-line-aligned byte range [base + lo*stride, base + hi*stride) in
//     every section — shard boundaries never split a cache line, so there is
//     no false sharing at strip seams for ANY contiguous partition
//     (rebalanced plans included, see shard_plan.h);
//   * the tick loop's state machine words (NodeWords: pending/routed bitmaps,
//     work counters, link bandwidth stamps, round-robin pointers) occupy
//     exactly one cache line per node.
//
// Worm ownership (WormPtr, non-trivial destructor) stays OUTSIDE the byte
// blob in plain per-slot vectors; the hot structs carry a has-owner flag bit
// so the tick loop's free/busy tests never touch the refcounted arrays.
// Router (router.h) is a thin view: a handful of span pointers into this
// arena plus the cold i-ack bank and stats.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

#include "noc/flit_ring.h"
#include "noc/geometry.h"
#include "noc/worm.h"
#include "sim/types.h"

namespace mdw::noc {

struct NocParams;

/// VC state flag bits (VcHot::flags).  The claim bit deliberately lives in a
/// separate byte (VcHot::claimed): upstream routers probe free() on their
/// downstream VCs during the sharded allocate phase while the owning router
/// may set route bits on the same record, so the probed byte must never alias
/// the byte the owner writes.
enum : std::uint8_t {
  kVcRouted = 1u << 0,         // head processed at this router
  kVcDrainToBank = 1u << 1,    // deferred gather: flits sink into i-ack bank
  kVcDepositAtTail = 1u << 2,  // GatherDeposit: post count when tail sinks
  kVcDeliverHere = 1u << 3,    // copy flits into the consumption channel
  kVcFinalHere = 1u << 4,      // worm terminates at this router
};

/// Consumption-channel flag bits (ConsHot::flags).
enum : std::uint8_t {
  kConsBusy = 1u << 0,   // a worm is being consumed on this channel
  kConsFinal = 1u << 1,  // consuming at the worm's final destination
};

/// Hot record of one input VC: 16 bytes, four per cache line.  The worm
/// reference itself lives in RouterArena's owner array (same slot index);
/// `claimed` mirrors its null-ness so free() never loads it.  `claimed` is
/// written only by the claiming (upstream) router at allocation commit and
/// cleared at tail departure; `flags` is written only by the owning router.
/// Keeping them in distinct bytes makes the cross-strip free() probe in the
/// fused allocate phase race-free (it reads `claimed` and `ring.size`, which
/// nobody else writes during that phase).
struct VcHot {
  Cycle ready_at = 0;        // header pipeline gate
  RingIdx ring;              // flit ring occupancy (storage in the flit slab)
  std::int8_t out_port = -1; // allocated output direction (0..3), -1 if none
  std::int8_t out_vc = -1;
  std::int8_t cons_ch = -1;  // allocated consumption channel, -1 if none
  std::uint8_t flags = 0;    // kVc* bits (owning router only)
  std::uint8_t claimed = 0;  // a worm holds this VC (claim -> tail departure)
  std::uint8_t pad[1] = {};

  /// Probed cross-strip by upstream routers during the sharded allocate
  /// phase.  Neither byte is concurrently written there (claimed has a single
  /// writer per slot; rings only move under the traverse-front ordering), but
  /// the loads must stay exact single-byte accesses: plain loads let the
  /// compiler fuse them into one word-sized load that would overlap the
  /// `flags` byte the owning router writes in the same phase.  Relaxed
  /// atomic_ref byte loads compile to the same two movzx on x86 and cannot be
  /// widened.
  [[nodiscard]] bool free() const {
    const auto ld = [](const std::uint8_t& b) {
      return std::atomic_ref<std::uint8_t>(const_cast<std::uint8_t&>(b))
          .load(std::memory_order_relaxed);
    };
    return ld(claimed) == 0 && ld(ring.size) == 0;
  }
  [[nodiscard]] bool routed() const { return (flags & kVcRouted) != 0; }
  void reset_route() {
    flags = 0;
    out_port = out_vc = cons_ch = -1;
  }
};
static_assert(sizeof(VcHot) == 16);

/// Hot record of one consumption channel (worm reference in the arena's
/// cons-owner array).
struct ConsHot {
  RingIdx ring;
  std::uint8_t flags = 0;  // kCons* bits
  std::uint8_t pad[5] = {};
  [[nodiscard]] bool busy() const { return (flags & kConsBusy) != 0; }
};
static_assert(sizeof(ConsHot) == 8);

/// Per-node tick-loop state machine: exactly one cache line.  Bit s of
/// pending/routed refers to slot s = port * vmax + vc; scanning a word's set
/// bits ascending visits (port, vc) in exactly the port-major order the old
/// sorted pending-head vector and per-port mask array used.
struct alignas(64) NodeWords {
  std::uint64_t pending = 0;  // unrouted head flits awaiting allocation
  std::uint64_t routed = 0;   // VCs holding a worm committed through allocation
  /// Cycle stamp of the last flit sent over each output link (physical
  /// channel bandwidth gate; comparing against `now` replaces a per-cycle
  /// used-this-cycle flag reset).
  Cycle link_used[kNumLinkDirs] = {~Cycle{0}, ~Cycle{0}, ~Cycle{0}, ~Cycle{0}};
  /// Flits resident in this router (input VCs + consumption channels).
  std::int32_t active_work = 0;
  /// Flits buffered in the consumption channels only.
  std::int32_t cons_flits = 0;
  /// Bit p set iff the routed word has a bit in port p's field.
  std::uint8_t ports_mask = 0;
  std::uint8_t rr_port = 0;            // round-robin pointers
  std::uint8_t rr_vc[kNumPorts] = {};
  /// On the Network's active-router worklist (mirrors the sched_words_ bit).
  bool scheduled = false;
};
static_assert(sizeof(NodeWords) == 64 && alignof(NodeWords) == 64);

/// The arena itself.  Section-major: five parallel arrays indexed by node,
/// each with a 64-byte-multiple per-node stride, in one allocation.
class RouterArena {
public:
  /// Byte offsets/strides of each section; exposed so tests can verify the
  /// strip-alignment invariant without poking at live networks.
  struct Layout {
    int vmax = 0;            // per-port VC stride (max of link and inj counts)
    int slots = 0;           // slots per node = kNumPorts * vmax
    int vc_cap = 0;          // flits per VC ring
    int cons_n = 0;          // consumption channels per node
    int cons_cap = 0;        // flits per consumption ring
    std::size_t words_off = 0, words_stride = 0;
    std::size_t vc_hot_off = 0, vc_hot_stride = 0;
    std::size_t vc_flit_off = 0, vc_flit_stride = 0;
    std::size_t cons_hot_off = 0, cons_hot_stride = 0;
    std::size_t cons_flit_off = 0, cons_flit_stride = 0;
    std::size_t total_bytes = 0;
  };

  RouterArena() = default;
  RouterArena(const RouterArena&) = delete;
  RouterArena& operator=(const RouterArena&) = delete;
  ~RouterArena() {
    if (buf_ != nullptr) {
      ::operator delete(buf_, std::align_val_t{64});
    }
  }

  /// Pure layout computation (no allocation): lets tests reason about strip
  /// alignment for arbitrary mesh/param combinations.
  static Layout compute_layout(int num_nodes, int vcs_total, int inj_vcs_total,
                               int vc_buffer_flits, int consumption_channels,
                               int cons_buffer_flits) {
    const auto round64 = [](std::size_t b) { return (b + 63) & ~std::size_t{63}; };
    Layout l;
    l.vmax = vcs_total > inj_vcs_total ? vcs_total : inj_vcs_total;
    l.slots = kNumPorts * l.vmax;
    l.vc_cap = vc_buffer_flits;
    l.cons_n = consumption_channels;
    l.cons_cap = cons_buffer_flits;
    assert(l.slots <= 64 && "pending/routed are single 64-bit words per node");
    assert(l.vc_cap > 0 && l.vc_cap <= 255 && l.cons_cap > 0 &&
           l.cons_cap <= 255 && "RingIdx indices are 8-bit");
    const auto n = static_cast<std::size_t>(num_nodes);
    l.words_stride = sizeof(NodeWords);
    l.vc_hot_stride = round64(static_cast<std::size_t>(l.slots) * sizeof(VcHot));
    l.vc_flit_stride = round64(static_cast<std::size_t>(l.slots) *
                               static_cast<std::size_t>(l.vc_cap) * sizeof(Flit));
    l.cons_hot_stride =
        round64(static_cast<std::size_t>(l.cons_n) * sizeof(ConsHot));
    l.cons_flit_stride = round64(static_cast<std::size_t>(l.cons_n) *
                                 static_cast<std::size_t>(l.cons_cap) *
                                 sizeof(Flit));
    l.words_off = 0;
    l.vc_hot_off = l.words_off + n * l.words_stride;
    l.vc_flit_off = l.vc_hot_off + n * l.vc_hot_stride;
    l.cons_hot_off = l.vc_flit_off + n * l.vc_flit_stride;
    l.cons_flit_off = l.cons_hot_off + n * l.cons_hot_stride;
    l.total_bytes = l.cons_flit_off + n * l.cons_flit_stride;
    return l;
  }

  /// Allocate and default-construct the hot state for `num_nodes` routers.
  /// Called once at Network construction; never grows afterwards.
  void init(int num_nodes, int vcs_total, int inj_vcs_total,
            int vc_buffer_flits, int consumption_channels,
            int cons_buffer_flits) {
    assert(buf_ == nullptr && "arena is initialized once");
    lay_ = compute_layout(num_nodes, vcs_total, inj_vcs_total, vc_buffer_flits,
                          consumption_channels, cons_buffer_flits);
    num_nodes_ = num_nodes;
    buf_ = static_cast<std::byte*>(
        ::operator new(lay_.total_bytes, std::align_val_t{64}));
    for (NodeId id = 0; id < num_nodes; ++id) {
      new (&words(id)) NodeWords{};
      VcHot* vh = vc_hot(id);
      for (int s = 0; s < lay_.slots; ++s) new (&vh[s]) VcHot{};
      Flit* vf = vc_flits(id);
      for (int i = 0; i < lay_.slots * lay_.vc_cap; ++i) new (&vf[i]) Flit{};
      ConsHot* ch = cons_hot(id);
      for (int c = 0; c < lay_.cons_n; ++c) new (&ch[c]) ConsHot{};
      Flit* cf = cons_flits(id);
      for (int i = 0; i < lay_.cons_n * lay_.cons_cap; ++i) new (&cf[i]) Flit{};
    }
    vc_owner_.assign(
        static_cast<std::size_t>(num_nodes) * static_cast<std::size_t>(lay_.slots),
        WormPtr{});
    cons_owner_.assign(static_cast<std::size_t>(num_nodes) *
                           static_cast<std::size_t>(lay_.cons_n),
                       WormPtr{});
  }

  [[nodiscard]] const Layout& layout() const { return lay_; }
  [[nodiscard]] int num_nodes() const { return num_nodes_; }
  [[nodiscard]] int vmax() const { return lay_.vmax; }

  [[nodiscard]] NodeWords& words(NodeId id) {
    return *reinterpret_cast<NodeWords*>(buf_ + lay_.words_off +
                                         stride_mul(id, lay_.words_stride));
  }
  [[nodiscard]] const NodeWords& words(NodeId id) const {
    return *reinterpret_cast<const NodeWords*>(
        buf_ + lay_.words_off + stride_mul(id, lay_.words_stride));
  }
  [[nodiscard]] VcHot* vc_hot(NodeId id) {
    return reinterpret_cast<VcHot*>(buf_ + lay_.vc_hot_off +
                                    stride_mul(id, lay_.vc_hot_stride));
  }
  [[nodiscard]] Flit* vc_flits(NodeId id) {
    return reinterpret_cast<Flit*>(buf_ + lay_.vc_flit_off +
                                   stride_mul(id, lay_.vc_flit_stride));
  }
  [[nodiscard]] ConsHot* cons_hot(NodeId id) {
    return reinterpret_cast<ConsHot*>(buf_ + lay_.cons_hot_off +
                                      stride_mul(id, lay_.cons_hot_stride));
  }
  [[nodiscard]] Flit* cons_flits(NodeId id) {
    return reinterpret_cast<Flit*>(buf_ + lay_.cons_flit_off +
                                   stride_mul(id, lay_.cons_flit_stride));
  }
  [[nodiscard]] WormPtr* vc_owner(NodeId id) {
    return vc_owner_.data() +
           static_cast<std::size_t>(id) * static_cast<std::size_t>(lay_.slots);
  }
  [[nodiscard]] WormPtr* cons_owner(NodeId id) {
    return cons_owner_.data() +
           static_cast<std::size_t>(id) * static_cast<std::size_t>(lay_.cons_n);
  }

private:
  [[nodiscard]] static std::size_t stride_mul(NodeId id, std::size_t stride) {
    return static_cast<std::size_t>(id) * stride;
  }

  Layout lay_;
  int num_nodes_ = 0;
  std::byte* buf_ = nullptr;
  std::vector<WormPtr> vc_owner_;    // [node * slots + slot]
  std::vector<WormPtr> cons_owner_;  // [node * cons_n + ch]
};

} // namespace mdw::noc
