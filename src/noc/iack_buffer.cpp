#include "noc/iack_buffer.h"

#include <algorithm>
#include <cassert>

namespace mdw::noc {

IAckBufferBank::Entry* IAckBufferBank::find(TxnId txn) {
  for (auto& e : entries_)
    if (e.valid && e.txn == txn) return &e;
  return nullptr;
}

IAckBufferBank::Entry* IAckBufferBank::alloc() {
  for (auto& e : entries_) {
    if (!e.valid) {
      ++in_use_;
      return &e;
    }
  }
  return nullptr;
}

void IAckBufferBank::release(Entry& e) {
  assert(e.valid && in_use_ > 0);
  e = Entry{};
  --in_use_;
}

bool IAckBufferBank::reserve(TxnId txn, int expected) {
  if (Entry* e = find(txn)) {
    e->expected = std::max(e->expected, expected);
    return true;
  }
  Entry* e = alloc();
  if (e == nullptr) return false;
  *e = Entry{};
  e->valid = true;
  e->txn = txn;
  e->expected = expected;
  return true;
}

std::optional<WormPtr> IAckBufferBank::post(TxnId txn, int count, bool* accepted) {
  Entry* e = find(txn);
  if (e == nullptr) {
    e = alloc();
    if (e == nullptr) {
      *accepted = false;
      return std::nullopt;
    }
    *e = Entry{};
    e->valid = true;
    e->txn = txn;
    e->expected = 1;
  }
  *accepted = true;
  e->arrived += 1;
  e->count += count;
  if (e->parked != nullptr && e->arrived >= e->expected) {
    WormPtr w = std::move(e->parked);
    w->gathered += e->count;
    release(*e);
    return w;
  }
  return std::nullopt;
}

std::optional<int> IAckBufferBank::pickup(TxnId txn, int expected_if_new,
                                          const WormPtr& worm, bool* blocked) {
  *blocked = false;
  Entry* e = find(txn);
  if (e == nullptr) {
    e = alloc();
    if (e == nullptr) {
      *blocked = true;
      return std::nullopt;
    }
    *e = Entry{};
    e->valid = true;
    e->txn = txn;
    e->expected = expected_if_new;
  }
  if (e->arrived >= e->expected) {
    const int count = e->count;
    release(*e);
    return count;
  }
  if (e->parked != nullptr) {
    // A second gather worm of the same transaction cannot park in the same
    // entry; it must block upstream until the first departs.  The schemes in
    // src/core never create this situation, but the hardware rule is defined.
    *blocked = true;
    return std::nullopt;
  }
  e->parked = worm;
  ++deferred_;
  return std::nullopt;
}

} // namespace mdw::noc
