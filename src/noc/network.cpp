#include "noc/network.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstdlib>
#include <string>
#include <utility>

namespace mdw::noc {

namespace {

/// Span payload for a delivered worm (tracing only; never on the hot path).
std::string worm_trace_args(const Worm& w) {
  return "{\"id\": " + std::to_string(w.id) +
         ", \"txn\": " + std::to_string(w.txn) +
         ", \"flits\": " + std::to_string(w.length_flits) +
         ", \"dests\": " + std::to_string(w.dests.size()) + "}";
}

} // namespace

thread_local Network::ShardCtx* Network::tls_shard_ = nullptr;

Network::Network(sim::Engine& eng, const MeshShape& mesh, const NocParams& params,
                 obs::MetricsRegistry* metrics)
    : eng_(eng), mesh_(mesh), params_(params),
      route_cache_(params.route_cache_entries),
      heatmap_(mesh.width(), mesh.height()), tracer_(eng.trace_writer()) {
  if (metrics == nullptr) {
    own_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics = own_metrics_.get();
  }
  metrics_ = metrics;
  stats_.worm_latency.bind(&metrics_->histogram("worm_latency", 0.0, 16.0, 256));
  const int n = mesh_.num_nodes();
  arena_.init(n, params_.vcs_total(), params_.inj_vcs_total(),
              params_.vc_buffer_flits, params_.consumption_channels,
              params_.cons_buffer_flits);
  routers_.reserve(static_cast<std::size_t>(n));
  for (NodeId id = 0; id < n; ++id) {
    routers_.emplace_back(*this, arena_, id, params_);
  }
  ifaces_.resize(n);
  for (auto& iface : ifaces_) {
    iface.streaming.resize(static_cast<std::size_t>(params_.inj_vcs_total()));
  }
  bank_counter_names_.reserve(n);
  for (NodeId id = 0; id < n; ++id) {
    bank_counter_names_.push_back("iack_bank." + std::to_string(id));
  }
  const char* sweep_env = std::getenv("MDW_FULL_SWEEP");
  full_sweep_ =
      params_.full_sweep || (sweep_env != nullptr && *sweep_env != '0');
  sched_words_.resize((static_cast<std::size_t>(n) + 63) / 64, 0);
  // Wire the mesh: router r's output in direction d feeds the neighbour's
  // input port opposite(d).
  for (NodeId id = 0; id < n; ++id) {
    for (int d = 0; d < kNumLinkDirs; ++d) {
      const NodeId nbr = mesh_.neighbor(id, static_cast<Dir>(d));
      if (nbr == kInvalidNode) continue;
      auto& link = routers_[static_cast<std::size_t>(id)].out_[d];
      link.nbr = nbr;
      link.nbr_port = static_cast<int>(opposite(static_cast<Dir>(d)));
      link.nbr_vhot = arena_.vc_hot(nbr);
      link.nbr_vflit = arena_.vc_flits(nbr);
      link.nbr_words = &arena_.words(nbr);
    }
  }
  const char* ff_env = std::getenv("MDW_NO_FF");
  ff_on_ = params_.fast_forward && (ff_env == nullptr || *ff_env == '0');
  // Flag beats environment: an explicit params_.shards wins over MDW_SHARDS.
  plan_ = compute_shard_plan(mesh_, resolve_shards(params_.shards));
  if (plan_.shards > 1) {
    gates_on_ = true;
    shard_ctx_.resize(static_cast<std::size_t>(plan_.shards));
    for (int s = 0; s < plan_.shards; ++s) {
      ShardCtx& c = shard_ctx_[static_cast<std::size_t>(s)];
      c.index = s;
      c.heads_xfer.assign(static_cast<std::size_t>(plan_.shards), 0);
      c.deliveries.reserve(64);
      c.idle_checks.reserve(128);
    }
    progress_early_ =
        std::make_unique<PaddedAtomicInt[]>(static_cast<std::size_t>(plan_.shards));
    progress_late_ =
        std::make_unique<PaddedAtomicInt[]>(static_cast<std::size_t>(plan_.shards));
    barrier_ = std::make_unique<sim::ShardBarrier>(plan_.shards);
    barrier_wait_hist_ =
        &metrics_->histogram("shard_barrier_wait_spins", 0.0, 64.0, 128);
    pool_ = std::make_unique<sim::ShardPool>(plan_.shards,
                                             [this](int s) { shard_main(s); });
  }
  eng_.register_tickable(this);
}

Network::~Network() = default;

void Network::inject(const WormPtr& worm) {
  if (ff_until_ != 0) {
    // New work invalidates an armed fast-forward window: cancel the early
    // return and the engine wake, keep ff_armed_at_ so the next real tick
    // still replays the rotation bumps for the cycles already skipped.
    ff_until_ = 0;
    eng_.clear_wake();
  }
  assert(!worm->path.empty());
  assert(!worm->dests.empty());
  assert(worm->adaptive || worm->dests.back().node == worm->path.back());
  worm->inject_cycle = eng_.now();
  worm->length_flits = std::max(worm->length_flits, 2);
  ++stats_.worms_injected;
  if (worm->path.size() == 1 && worm->dests.back().node == worm->src) {
    // Self-delivery: bypass the network but keep it off the critical path of
    // this cycle's handlers.
    worm->deliver_cycle = eng_.now();
    stats_.worm_latency.add(0.0);
    ++stats_.worms_delivered;
    if (tracer_) {
      tracer_->complete(std::string("worm.") + worm_kind_name(worm->kind),
                        "noc", worm->inject_cycle, 0, worm->src,
                        worm_trace_args(*worm));
    }
    eng_.schedule_after(1, [this, worm] {
      if (deliver_) deliver_(worm->src, worm);
    });
    return;
  }
  ++counters().in_flight;
  ++counters().queued_worms;
  if (gates_on_) {
    ++shard_ctx_[plan_.shard_of[static_cast<std::size_t>(worm->src)]]
          .work_qworms;
  }
  ++ifaces_[worm->src].inj_work;
  ifaces_[worm->src].inject_q[static_cast<int>(worm->vnet)].push_back(worm);
  wake_router(worm->src);
}

void Network::reinject(NodeId at, WormPtr worm) {
  // Deferred gather worm resuming its path from `at`.
  assert(worm->path[worm->head_hop] == at);
  ++counters().queued_worms;
  if (gates_on_) {
    ++shard_ctx_[plan_.shard_of[static_cast<std::size_t>(at)]].work_qworms;
  }
  ++ifaces_[at].inj_work;
  ifaces_[at].inject_q[static_cast<int>(worm->vnet)].push_back(std::move(worm));
  wake_router(at);
}

void Network::post_iack(NodeId at, TxnId txn, int count) {
  if (ff_until_ != 0) {  // see inject(); always 0 when called mid-tick
    ff_until_ = 0;
    eng_.clear_wake();
  }
  ++counters().pending_posts;
  if (gates_on_) {
    ++shard_ctx_[plan_.shard_of[static_cast<std::size_t>(at)]].work_posts;
  }
  ifaces_[at].pending_posts.emplace_back(txn, count);
  wake_router(at);
}

void Network::try_pending_posts(NodeId n) {
  auto& iface = ifaces_[n];
  std::size_t remaining = iface.pending_posts.size();
  while (remaining-- > 0) {
    auto [txn, count] = iface.pending_posts.front();
    iface.pending_posts.pop_front();
    bool accepted = false;
    auto released = router(n).bank().post(txn, count, &accepted);
    if (!accepted) {
      // Bank full: re-park. Leaves the ring's element sequence (and all
      // other state) unchanged, so a tick whose posts all re-park is still
      // fast-forward-skippable — the bank can only free via time-gated
      // network actions or a post_iack, both of which end a window.
      iface.pending_posts.emplace_back(txn, count);
      continue;
    }
    ff_note_acted();
    --counters().pending_posts;
    if (gates_on_) {
      --shard_ctx_[plan_.shard_of[static_cast<std::size_t>(n)]].work_posts;
    }
    if (tracer_) {
      trace_bank_occupancy(n, router(n).bank().entries_in_use(), eng_.now());
    }
    if (released.has_value()) reinject(n, std::move(*released));
  }
  if (iface.pending_posts.empty()) note_maybe_idle(n);
}

void Network::service_injection(NodeId n, Cycle now) {
  auto& iface = ifaces_[n];
  if (iface.inj_work == 0) return;  // nothing queued, nothing streaming
  Router& r = routers_[static_cast<std::size_t>(n)];
  NodeWords& w = arena_.words(n);
  const int local = static_cast<int>(Dir::Local);
  for (int v = 0; v < params_.inj_vcs_total(); ++v) {
    auto& st = iface.streaming[v];
    VcHot& ivc = r.vc(local, v);
    if (st.worm == nullptr) {
      // Start a new worm on this VC if one of matching vnet is queued.
      const int vnet = v / params_.inj_vcs_per_vnet;
      auto& q = iface.inject_q[vnet];
      if (q.empty() || !ivc.free()) continue;
      st.worm = std::move(q.front());
      q.pop_front();
      st.flits_pushed = 0;
      r.vc_owner(local, v) = st.worm;
      ivc.claimed = 1;
    }
    // Stream at most one flit per cycle into the Local input VC.
    RingView ring = r.vc_ring(r.slot(local, v));
    if (ring.full()) continue;
    const bool head = st.flits_pushed == 0;
    const bool tail = st.flits_pushed == st.worm->length_flits - 1;
    ring.push_back(Flit{head, tail, now});
    ff_note_acted();
    ++counters().live_flits;
    ++w.active_work;
    if (head) {
      ivc.ready_at = now + params_.router_delay;
      r.note_head_arrival(local, v);
    }
    ++st.flits_pushed;
    if (tail) {
      if (sharded_active_) {
        // Park the queue's reference for barrier A's serial section: a
        // plain drop here races the head shard's concurrent reference copy
        // on this worm (non-atomic refcount; see ShardCtx::deferred_free).
        tls_shard_->deferred_free.push_back(std::move(st.worm));
      }
      st.worm = nullptr;
      st.flits_pushed = 0;
      --counters().queued_worms;
      if (gates_on_) {
        --shard_ctx_[plan_.shard_of[static_cast<std::size_t>(n)]].work_qworms;
      }
      --iface.inj_work;
    }
  }
}

void Network::on_delivery(NodeId where, WormPtr worm, bool final_dest,
                          Cycle now) {
  if (sharded_active_) {
    // Defer to the phase-1 barrier: the mailbox is replayed serially in
    // global (id - start) mod n order, so the delivery handler observes the
    // exact sequence the sequential kernel produces.  The worm reference is
    // parked in the mailbox — no refcount traffic on the shard threads.
    tls_shard_->deliveries.push_back({where, std::move(worm), final_dest});
    return;
  }
  commit_delivery(where, worm, final_dest, now);
}

void Network::commit_delivery(NodeId where, const WormPtr& worm,
                              bool final_dest, Cycle now) {
  if (final_dest) {
    worm->deliver_cycle = now;
    stats_.worm_latency.add(static_cast<double>(now - worm->inject_cycle));
    ++stats_.worms_delivered;
    assert(cnt_.in_flight > 0);
    --cnt_.in_flight;
    if (tracer_) {
      tracer_->complete(std::string("worm.") + worm_kind_name(worm->kind),
                        "noc", worm->inject_cycle, now - worm->inject_cycle,
                        worm->src, worm_trace_args(*worm));
    }
  }
  if (deliver_) deliver_(where, worm);
}

void Network::on_gather_deposit(NodeId at, const WormPtr& worm) {
  if (sharded_active_) {
    ++tls_shard_->delta.gather_deposits;
    --tls_shard_->delta.in_flight;
  } else {
    ++stats_.gather_deposits;
    assert(cnt_.in_flight > 0);
    --cnt_.in_flight;
    if (tracer_) {
      tracer_->complete(std::string("worm.") + worm_kind_name(worm->kind) +
                            ".deposit",
                        "noc", worm->inject_cycle,
                        eng_.now() - worm->inject_cycle, worm->src,
                        worm_trace_args(*worm));
    }
  }
  post_iack(at, worm->txn, worm->gathered);
}

template <class F>
void Network::for_each_scheduled(int start, F&& f) {
  // Each word is visited once; within the current word the bitmap is
  // re-read after every callback, so bits set by mid-phase wakes at
  // positions the cursor has not passed yet are picked up (see header).
  auto scan_word = [&](int wi, std::uint64_t mask) {
    while (true) {
      const std::uint64_t bits = sched_words_[static_cast<std::size_t>(wi)] & mask;
      if (bits == 0) return;
      const int b = std::countr_zero(bits);
      mask = b == 63 ? 0 : mask & (~0ull << (b + 1));
      f(static_cast<NodeId>((wi << 6) + b));
    }
  };
  const int nw = static_cast<int>(sched_words_.size());
  const int w0 = start >> 6;
  const int b0 = start & 63;
  scan_word(w0, ~0ull << b0);                             // ids in [start, ...)
  for (int wi = w0 + 1; wi < nw; ++wi) scan_word(wi, ~0ull);
  for (int wi = 0; wi < w0; ++wi) scan_word(wi, ~0ull);   // wrap: ids < start
  if (b0 != 0) scan_word(w0, ~0ull >> (64 - b0));
}

bool Network::node_has_work(NodeId id) const {
  if (arena_.words(id).active_work > 0) return true;
  const NetIface& iface = ifaces_[id];
  return iface.inj_work > 0 || !iface.pending_posts.empty();
}

bool Network::ff_epilogue(Cycle now) {
  // Eligibility: nothing acted, nothing resource-blocked, and at least one
  // time gate was recorded (no gates would mean no provable wake point —
  // e.g. a tick whose only activity is bank-full post retries keeps ticking
  // normally).  Every live flit is covered by a gate: it sits in a routed VC
  // (traverse gate), behind a pending head (allocation/ready_at gate), or in
  // a consumption channel (drain gate).
  if (ff_on_ && !ff_acted_ && !ff_blocked_ && ff_next_ != kNoGate &&
      ff_next_ > now + 1) {
    arm_fast_forward(now, ff_next_);
    return false;  // this tick was provably a no-op: let the run loop jump
  }
  return true;
}

void Network::arm_fast_forward(Cycle now, Cycle next) {
  assert(next > now);
  ff_until_ = next;
  ff_armed_at_ = now;
  ++ff_events_;
  eng_.request_wake(next);
}

void Network::ff_resume(Cycle now) {
  // The skipped ticks (ff_armed_at_+1 .. now-1) would each have bumped the
  // rotation cursor and, for every router holding flits, its round-robin
  // port pointer (traverse bumps it once per tick whenever active_work_ > 0,
  // even when no flit can move; rr_vc_ only moves on a successful move).
  // That state was frozen during the window, so the bumps compose into one
  // modular add — everything else about a skipped tick is a proven no-op.
  const Cycle skipped = now - ff_armed_at_ - 1;
  if (skipped > 0) {
    const int n = mesh_.num_nodes();
    rotate_ = static_cast<int>(
        (static_cast<Cycle>(rotate_) + skipped % static_cast<Cycle>(n)) %
        static_cast<Cycle>(n));
    const int rr = static_cast<int>(skipped % kNumPorts);
    for (NodeId id = 0; id < n; ++id) {
      NodeWords& w = arena_.words(id);
      if (w.active_work > 0) {
        w.rr_port = static_cast<std::uint8_t>((w.rr_port + rr) % kNumPorts);
      }
    }
    ff_cycles_ += skipped;
  }
  ff_armed_at_ = kNoGate;
  ff_until_ = 0;
  eng_.clear_wake();
}

bool Network::tick(Cycle now) {
  if (ff_until_ != 0 && now < ff_until_) return false;  // armed window
  if (cnt_.live_flits == 0 && cnt_.queued_worms == 0 && cnt_.pending_posts == 0)
    return false;
  if (ff_armed_at_ != kNoGate) ff_resume(now);
  if (pool_ != nullptr && tracer_ == nullptr) return tick_sharded(now);
  if (ff_on_) {
    ff_acted_ = false;
    ff_blocked_ = false;
    ff_next_ = kNoGate;
  }
  const int n = mesh_.num_nodes();
  const int start = rotate_;
  rotate_ = (rotate_ + 1) % n;

  if (full_sweep_) {
    for (int i = 0; i < n; ++i) {
      const NodeId id = (start + i) % n;
      if (!ifaces_[id].pending_posts.empty()) try_pending_posts(id);
      routers_[id].drain_consumption(now);
    }
    for (int i = 0; i < n; ++i) {
      const NodeId id = (start + i) % n;
      service_injection(id, now);
    }
    for (int i = 0; i < n; ++i) routers_[(start + i) % n].allocate(now);
    for (int i = 0; i < n; ++i) routers_[(start + i) % n].traverse(now);
    return ff_epilogue(now);
  }

  // Active-region sweep: identical phase order and, within each phase, the
  // same (id - start) mod n visit order as the exhaustive sweep — routers
  // with no work are simply absent.  Routers woken mid-tick are picked up
  // at their rotating position by the bitmap rescan (see for_each_scheduled).
  // Each phase's sweep is skipped outright when the global counter says no
  // router anywhere holds that class of work (the sweep would be a no-op);
  // the gates are read at phase start, so work generated by an earlier phase
  // this cycle (e.g. a reinjection from a completed i-ack post) still runs.
  if (cnt_.pending_posts != 0 || cnt_.cons_flits_total != 0) {
    for_each_scheduled(start, [&](NodeId id) {
      if (!ifaces_[id].pending_posts.empty()) try_pending_posts(id);
      routers_[id].drain_consumption(now);
    });
  }
  if (cnt_.queued_worms != 0) {
    for_each_scheduled(start, [&](NodeId id) { service_injection(id, now); });
  }
  if (cnt_.pending_heads_total != 0) {
    for_each_scheduled(start, [&](NodeId id) { routers_[id].allocate(now); });
  }
  for_each_scheduled(start, [&](NodeId id) { routers_[id].traverse(now); });

  // Deschedule fully drained routers; they re-enter via wake_router.  Only
  // routers that hit a work-emptying transition this cycle (note_maybe_idle)
  // can have turned idle, so only those are re-checked.
  for (const NodeId id : idle_checks_) {
    NodeWords& w = arena_.words(id);
    if (w.scheduled && !node_has_work(id)) {
      w.scheduled = false;
      sched_words_[static_cast<std::size_t>(id) >> 6] &= ~(1ull << (id & 63));
    }
  }
  idle_checks_.clear();
  return ff_epilogue(now);
}

} // namespace mdw::noc
