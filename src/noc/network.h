// Whole-network model: a W x H mesh of wormhole routers plus one network
// interface (NI) per node.
//
// The Network is a sim::Tickable: each cycle it runs the three router phases
// over all routers (with a rotating start index so allocation arbitration is
// fair across nodes) and services the per-node injection queues.
//
// With NocParams::shards > 1 the tick runs the sharded parallel kernel
// (DESIGN.md sections 14 and 16): the mesh is cut into row strips, each
// owned by one thread of a persistent sim::ShardPool, with two
// sim::ShardBarrier rounds per tick (after the fused drain/inject/allocate
// block, and after traverse).  Per-shard counter deltas and a per-shard
// delivery mailbox are folded/replayed deterministically in the barrier
// serial sections, and the traverse phase runs in diagonal-front order with
// cross-strip progress waits, so the result is bit-identical to the
// sequential kernel.
//
// Quiescence fast-forward (both kernels): a tick in which nothing acted,
// nothing was blocked on a resource, and every pending flit sits behind a
// known future time gate arms a fast-forward window — simulated time jumps
// to the earliest gate (via an Engine wake request) and the skipped ticks'
// only side effects (rotation and round-robin pointer bumps) are replayed
// arithmetically on resume.  Results are bit-identical with the feature on
// or off (NocParams::fast_forward, MDW_NO_FF).
#pragma once

#include <array>
#include <atomic>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "noc/arena.h"
#include "noc/route_cache.h"
#include "noc/router.h"
#include "noc/routing.h"
#include "noc/shard_plan.h"
#include "obs/heatmap.h"
#include "obs/metrics.h"
#include "obs/trace_writer.h"
#include "sim/engine.h"
#include "sim/ring_queue.h"
#include "sim/shard.h"
#include "sim/stats.h"

namespace mdw::noc {

/// Per-node network interface state.  Both queues are growable rings: the
/// storage follows the occupancy high-water mark and is then retained, so
/// steady-state injection/retry traffic performs no allocation (std::deque
/// churned chunk nodes here on every enqueue/dequeue wave).
struct NetIface {
  /// Worms waiting to enter the router's Local port, per virtual network.
  std::array<sim::RingQueue<WormPtr>, kNumVNets> inject_q;
  /// Worm currently streaming flits into a Local input VC, per Local VC.
  struct Streaming {
    WormPtr worm;
    int flits_pushed = 0;
  };
  std::vector<Streaming> streaming;
  /// i-ack posts that found the bank full and must retry.
  sim::RingQueue<std::pair<TxnId, int>> pending_posts;
  /// Worms queued in inject_q plus worms mid-stream: lets service_injection
  /// and node_has_work skip the per-VC scan when the NI is idle.
  int inj_work = 0;
};

struct NetworkStats {
  std::uint64_t worms_injected = 0;
  std::uint64_t worms_delivered = 0;       // final-destination deliveries
  std::uint64_t absorb_deliveries = 0;     // intermediate-destination copies
  std::uint64_t link_flit_hops = 0;        // flits crossing inter-router links
  std::uint64_t gather_deferred = 0;       // gather worms parked in a bank
  std::uint64_t gather_deposits = 0;       // gather worms ending in a bank
  obs::SamplerHandle worm_latency;         // inject -> final delivery
                                           // (registry histogram "worm_latency")
};

class Network : public sim::Tickable {
public:
  using DeliveryHandler = std::function<void(NodeId where, const WormPtr&)>;

  /// `metrics` is the registry the network publishes into (per-Machine when
  /// protocol-driven); when nullptr the network owns a private one.
  Network(sim::Engine& eng, const MeshShape& mesh, const NocParams& params,
          obs::MetricsRegistry* metrics = nullptr);
  ~Network() override;

  [[nodiscard]] const MeshShape& mesh() const { return mesh_; }
  [[nodiscard]] const NocParams& params() const { return params_; }
  [[nodiscard]] Router& router(NodeId id) {
    return routers_[static_cast<std::size_t>(id)];
  }
  /// The flat hot-state arena every router views into (see arena.h).
  [[nodiscard]] RouterArena& arena() { return arena_; }
  [[nodiscard]] NetworkStats& stats() { return stats_; }
  [[nodiscard]] const NetworkStats& stats() const { return stats_; }
  [[nodiscard]] sim::Engine& engine() { return eng_; }
  [[nodiscard]] obs::MetricsRegistry& metrics() { return *metrics_; }
  [[nodiscard]] const obs::LinkHeatmap& heatmap() const { return heatmap_; }
  /// Memoized unicast routes (sized by NocParams::route_cache_entries);
  /// shared by every protocol-level make_unicast call on this network.
  [[nodiscard]] RouteCache& route_cache() { return route_cache_; }

  /// Opt-in event tracing (worm spans, i-ack bank occupancy); nullptr off.
  /// Tracing hooks fire on the shard threads, so a non-null writer makes
  /// tick() fall back to the (bit-identical) sequential kernel.
  void set_trace_writer(obs::TraceWriter* t) { tracer_ = t; }
  [[nodiscard]] obs::TraceWriter* tracer() const { return tracer_; }

  /// Called once per final or intermediate `Deliver` completion.
  void set_delivery_handler(DeliveryHandler h) { deliver_ = std::move(h); }

  /// Opt-in parallel mailbox replay for the sharded kernel: each shard runs
  /// the delivery handler over its own mailbox (its strip's nodes) with
  /// engine scheduling staged per delivery; the order-sensitive effects —
  /// latency samples, in-flight accounting, staged-event queue insertion —
  /// are then committed serially in the canonical cross-shard merge order,
  /// so results stay bit-identical.  Callers must guarantee the handler only
  /// touches per-node state and the engine (true for dsm::Machine); the
  /// default (off) runs the whole handler serially in the merge.
  void set_parallel_replay(bool on) { parallel_replay_ = on; }
  [[nodiscard]] bool parallel_replay() const { return parallel_replay_; }

  /// Queue `worm` for injection at its source node.  Self-deliveries
  /// (path == {src}) complete immediately through the delivery handler.
  void inject(const WormPtr& worm);

  /// Post an invalidation acknowledgment into node `at`'s i-ack bank.  If a
  /// deferred gather worm completes, it is re-injected automatically.  Full
  /// banks are retried every cycle by the NI.
  void post_iack(NodeId at, TxnId txn, int count);

  /// Number of worms injected but not yet fully delivered/absorbed.
  [[nodiscard]] std::uint64_t worms_in_flight() const {
    return static_cast<std::uint64_t>(cnt_.in_flight);
  }

  /// Per-link flit counts (for hot-spot analysis): indexed (node, dir).
  [[nodiscard]] std::uint64_t link_flits(NodeId n, Dir d) const {
    return heatmap_.hops(n, static_cast<int>(d));
  }

  bool tick(Cycle now) override;

  // --- sharded-kernel introspection --------------------------------------
  /// Effective shard count after clamping to the mesh height (1 = the
  /// sequential kernel).
  [[nodiscard]] int shards() const { return plan_.shards; }
  /// The shard whose strip owns node `id`'s router.
  [[nodiscard]] int shard_of(NodeId id) const {
    return plan_.shard_of[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] const ShardPlan& shard_plan() const { return plan_; }
  /// Recompute the strip partition from observed occupancy (heatmap link
  /// traffic + scheduled-router population per row), minimising the hottest
  /// strip via the cost-model compute_shard_plan overload.  Callable only
  /// between ticks; the shard count is unchanged, and since any contiguous
  /// row partition is bit-identical, so is the simulation.  No-op for the
  /// sequential kernel.
  void rebalance_shards();
  /// Publish per-shard tick counters (barrier/order wait spins, routers
  /// traversed) and the network fast-forward counters into the registry.
  void publish_shard_metrics();
  /// Spin iterations shard `s` spent inside tick barriers (shards > 1 only).
  [[nodiscard]] std::uint64_t shard_barrier_spins(int s) const {
    return shard_ctx_[static_cast<std::size_t>(s)].barrier_spins;
  }
  /// Simulated cycles skipped by quiescence fast-forward, and the number of
  /// windows armed.
  [[nodiscard]] std::uint64_t ff_cycles() const { return ff_cycles_; }
  [[nodiscard]] std::uint64_t ff_events() const { return ff_events_; }

  // --- used by Router -----------------------------------------------------
  void count_link_flit(NodeId from, Dir d) {
    if (sharded_active_) {
      ++tls_shard_->delta.link_flit_hops;
    } else {
      ++stats_.link_flit_hops;
    }
    heatmap_.record_hop(from, static_cast<int>(d));
  }
  /// A head flit failed allocation waiting for the outgoing link (from, d).
  void count_link_stall(NodeId from, Dir d) {
    heatmap_.record_stall(from, static_cast<int>(d));
  }
  /// Emit an i-ack bank occupancy counter sample (call only when tracing).
  /// Counter names are precomputed per node: occupancy samples fire on the
  /// allocation path, where a string build per sample would be hot.
  void trace_bank_occupancy(NodeId at, int in_use, Cycle now) {
    tracer_->counter(bank_counter_names_[at], now, at,
                     static_cast<double>(in_use));
  }
  /// Takes the worm by value so a consumption channel can hand over its
  /// reference with zero refcount traffic — required by the sharded kernel,
  /// where copies of a multidestination worm drain on several shard threads
  /// in the same phase and the refcount is deliberately non-atomic.
  void on_delivery(NodeId where, WormPtr worm, bool final_dest, Cycle now);
  void on_gather_deferred() {
    if (sharded_active_) {
      ++tls_shard_->delta.gather_deferred;
    } else {
      ++stats_.gather_deferred;
    }
  }
  /// A tail flit of an intermediate-destination (absorb) copy reached the
  /// consumption channel.
  void on_absorb_delivery() {
    if (sharded_active_) {
      ++tls_shard_->delta.absorb_deliveries;
    } else {
      ++stats_.absorb_deliveries;
    }
  }
  /// A non-trunk gather worm finished by sinking into `at`'s i-ack bank.
  void on_gather_deposit(NodeId at, const WormPtr& worm);
  /// Live-flit accounting, used for cheap global activity detection.
  void on_flit_removed() { --counters().live_flits; }
  void on_flit_copied() { ++counters().live_flits; }
  /// Phase-work accounting: consumption-channel flits and unrouted heads.
  /// Alongside the global totals (tick()'s phase gates) the sharded kernel
  /// keeps per-owner-shard counts, so each shard gates its fused phase
  /// sweeps on its own strip's work alone.  A consumption flit only ever
  /// changes at its own router (executing shard == owner); a pending head
  /// can be created cross-shard during traverse, which routes through the
  /// executor's transfer array, folded at the end-of-tick barrier.
  void on_cons_flit(NodeId id, int delta) {
    counters().cons_flits_total += delta;
    if (gates_on_) {
      shard_ctx_[plan_.shard_of[static_cast<std::size_t>(id)]].work_cons +=
          delta;
    }
  }
  void on_pending_head(NodeId id, int delta) {
    counters().pending_heads_total += delta;
    if (!gates_on_) return;
    const auto owner = plan_.shard_of[static_cast<std::size_t>(id)];
    if (sharded_active_ && tls_shard_->index != owner) {
      tls_shard_->heads_xfer[owner] += delta;
    } else {
      shard_ctx_[owner].work_heads += delta;
    }
  }
  // --- quiescence fast-forward hooks (see header comment) ------------------
  /// Network state changed this tick (flit moved, post accepted, allocation
  /// succeeded, ...): the tick is not skippable.
  void ff_note_acted() {
    if (!ff_on_) return;
    if (sharded_active_) {
      tls_shard_->ff_acted = true;
    } else {
      ff_acted_ = true;
    }
  }
  /// An allocation stalled on a resource (not on time): its stall counters
  /// and heatmap records advance every cycle, so the tick cannot be skipped
  /// without diverging stats.
  void ff_note_blocked() {
    if (!ff_on_) return;
    if (sharded_active_) {
      tls_shard_->ff_blocked = true;
    } else {
      ff_blocked_ = true;
    }
  }
  /// Some pending work becomes actionable at cycle `when` (arrival or
  /// pipeline gate): a fast-forward window may jump at most there.
  void ff_gate(Cycle when) {
    if (!ff_on_) return;
    if (sharded_active_) {
      if (when < tls_shard_->ff_next) tls_shard_->ff_next = when;
    } else if (when < ff_next_) {
      ff_next_ = when;
    }
  }
  /// A work counter at node `id` just reached zero: queue it for the
  /// end-of-tick deschedule check.  Only these transition points can turn
  /// node_has_work false, so checking the queued candidates is equivalent to
  /// re-checking every scheduled router each cycle (duplicates are harmless —
  /// the check is idempotent).
  void note_maybe_idle(NodeId id) {
    if (full_sweep_) return;
    if (sharded_active_) {
      tls_shard_->idle_checks.push_back(id);
    } else {
      idle_checks_.push_back(id);
    }
  }
  /// Put router `id` on the active worklist (no-op if already there, or in
  /// full-sweep mode).  Called on injection, incoming flits, and i-ack
  /// posts.  During a tick the router is spliced into the current sweep at
  /// its rotating-arbitration position, so activity discovered mid-cycle is
  /// handled exactly when the exhaustive sweep would have reached it.
  /// Inline two-word fast path: dense traffic re-wakes already-scheduled
  /// routers almost every flit, so the `scheduled` test must not cost a
  /// call.  The overload taking `words` serves callers that already hold
  /// the node's cached NodeWords (Router::try_move_flit via OutLink).
  void wake_router(NodeId id) { wake_router(id, arena_.words(id)); }
  void wake_router(NodeId id, NodeWords& w) {
    if (full_sweep_ || w.scheduled) return;
    w.scheduled = true;
    if (sharded_active_) {
      // Words straddle strip boundaries, and traverse wakes cross-shard
      // neighbours; the bit-set must be atomic.  (The scheduled flag itself
      // needs no atomicity: all of a router's wakers sit within Manhattan
      // distance 1 of it, and the traverse front order separates any two
      // actors within distance 2 with a release/acquire progress edge.)
      const std::atomic_ref<std::uint64_t> word(
          sched_words_[static_cast<std::size_t>(id) >> 6]);
      word.fetch_or(1ull << (id & 63), std::memory_order_relaxed);
    } else {
      sched_words_[static_cast<std::size_t>(id) >> 6] |= 1ull << (id & 63);
    }
  }

  /// True while the node can make progress without an external wake: flits
  /// resident in the router, posts to retry, or worms queued/streaming at
  /// the NI.  A false return means the router may be descheduled.
  [[nodiscard]] bool node_has_work(NodeId id) const;

  /// Active-region vs exhaustive-sweep scheduling (differential testing).
  [[nodiscard]] bool full_sweep() const { return full_sweep_; }

private:
  static constexpr Cycle kNoGate = std::numeric_limits<Cycle>::max();

  /// Global tick-gate and phase-gate counters.  During a sharded tick every
  /// helper above routes its update into the calling shard's delta block
  /// (via counters()); the deltas are folded into this canonical copy at
  /// each phase barrier, so phase-gate reads see exactly the values the
  /// sequential kernel would.
  struct NetCounters {
    std::int64_t in_flight = 0;        // worms injected, not yet delivered
    std::int64_t live_flits = 0;       // flits resident in any buffer
    std::int64_t queued_worms = 0;     // queued or still streaming in
    std::int64_t pending_posts = 0;
    std::int64_t cons_flits_total = 0;     // flits in consumption channels
    std::int64_t pending_heads_total = 0;  // heads awaiting allocation
    // Stat deltas (folded into NetworkStats, shard mode only).
    std::int64_t link_flit_hops = 0;
    std::int64_t gather_deferred = 0;
    std::int64_t gather_deposits = 0;
    std::int64_t absorb_deliveries = 0;
  };

  /// A consumption-channel delivery deferred to the end-of-phase-block
  /// barrier.  The worm reference is moved in and moved out: no refcount
  /// traffic on the shard threads.
  struct DeliveryRec {
    NodeId where = 0;
    WormPtr worm;
    bool final_dest = false;
  };

  /// Per-shard working state, cache-line separated.  The work_* gate
  /// counters are single-writer: the owning shard's executor during a tick
  /// (cross-shard head arrivals detour through heads_xfer), the main thread
  /// in between.
  struct alignas(64) ShardCtx {
    NetCounters delta;
    int index = 0;
    // Own-strip phase work (gates for the fused phase-1..3 block).
    std::int64_t work_posts = 0;
    std::int64_t work_cons = 0;
    std::int64_t work_qworms = 0;
    std::int64_t work_heads = 0;
    /// Pending heads this executor created in other shards' strips during
    /// traverse, by owner; folded into work_heads at the end-of-tick barrier.
    std::vector<std::int64_t> heads_xfer;
    std::vector<DeliveryRec> deliveries;  // per-tick mailbox, key order
    std::size_t replay_cursor = 0;        // merge cursor into `deliveries`
    /// Worm references released during the fused phase 1-3 block, parked
    /// here by move and dropped in barrier A's serial section: the worm's
    /// refcount is deliberately non-atomic, and a mid-block drop (e.g. the
    /// source NI releasing its queue reference on the tail-injection cycle)
    /// can race the head-holding shard's concurrent reference copy in
    /// allocate on the very same worm.  Increments need no such deferral:
    /// within one tick every incrementing site (injection start, head
    /// allocation) is exclusive to a single shard per worm.
    std::vector<WormPtr> deferred_free;
    // Parallel-replay staging: events scheduled by the delivery handler for
    // deliveries[i] occupy staged[staged_bounds[i-1] .. staged_bounds[i]).
    sim::Engine::StageBuffer staged;
    std::vector<std::uint32_t> staged_bounds;
    std::vector<NodeId> idle_checks;
    // Fast-forward eligibility for this shard's slice of the tick.
    bool ff_acted = false;
    bool ff_blocked = false;
    Cycle ff_next = kNoGate;
    std::uint64_t barrier_spins = 0;  // spin iterations inside barriers
    std::uint64_t order_spins = 0;    // spin iterations in traverse waits
    std::uint64_t ticks = 0;
    std::uint64_t routers_traversed = 0;
  };

  struct alignas(64) PaddedAtomicInt {
    std::atomic<int> v{-1};
  };

  [[nodiscard]] NetCounters& counters() {
    return sharded_active_ ? tls_shard_->delta : cnt_;
  }

  void service_injection(NodeId n, Cycle now);
  void try_pending_posts(NodeId n);
  void reinject(NodeId at, WormPtr worm);
  /// The sequential body of on_delivery (stats, latency, in-flight, the
  /// delivery handler); in sharded mode this runs in the phase-block
  /// barrier's serial section, in key order across all shards' mailboxes.
  void commit_delivery(NodeId where, const WormPtr& worm, bool final_dest,
                       Cycle now);

  // --- quiescence fast-forward ---------------------------------------------
  /// End-of-tick check (sequential kernels): arm a window if eligible.
  /// Returns the tick()'s return value (false when armed: the tick was
  /// provably a no-op and the run loop should jump).
  bool ff_epilogue(Cycle now);
  void arm_fast_forward(Cycle now, Cycle next);
  /// First real tick after a window: replay the skipped ticks' rotation and
  /// round-robin bumps arithmetically, disarm.
  void ff_resume(Cycle now);
  /// Barrier-B serial section: fold the per-shard eligibility and arm.
  void decide_fast_forward(Cycle now);

  // --- sharded kernel (network_shard.cpp side of the class) ---------------
  bool tick_sharded(Cycle now);
  void shard_main(int s);
  void shard_traverse_stage(int s, bool early, int start, Cycle now,
                            PaddedAtomicInt* progress);
  /// Pre-late-stage wait replacing the mid-traverse barrier: a shard whose
  /// late-stage rows reach the rotation seam waits for the full early-stage
  /// completion of the (at most three) shards owning rows start/W .. +2 —
  /// the only rows whose early cells can interact with late cells.
  void seam_wait(int s, int start);
  void fold_shard_deltas();
  void fold_head_transfers();
  /// Parallel half of delivery replay (opt-in): run the handler over the own
  /// mailbox with engine scheduling staged per delivery.
  void replay_own_deliveries(Cycle now);
  /// Serial half (barrier serial section): canonical cross-shard merge
  /// committing stats/latency/in-flight and flushing staged events — or,
  /// without parallel replay, running the whole handler here.
  void finish_deliveries(Cycle now);
  /// Visit the scheduled routers of shard `s`'s strip in (id - start) mod n
  /// order (all routers in full-sweep mode).  Bitmap words are re-read with
  /// atomic loads: words can straddle strip boundaries and other shards
  /// wake their own routers concurrently.
  template <class F>
  void sweep_own(int s, int start, F&& f);
  template <class F>
  void shard_scan_range(int lo, int hi, F&& f);
  [[nodiscard]] bool sched_bit_atomic(NodeId id) {
    const std::atomic_ref<std::uint64_t> word(
        sched_words_[static_cast<std::size_t>(id) >> 6]);
    return (word.load(std::memory_order_relaxed) >> (id & 63)) & 1u;
  }

  sim::Engine& eng_;
  MeshShape mesh_;
  NocParams params_;
  RouteCache route_cache_;
  /// Hot router state, one flat SoA allocation (declared before routers_:
  /// the router views point into it and must be destroyed first).
  RouterArena arena_;
  std::vector<Router> routers_;
  std::vector<NetIface> ifaces_;
  DeliveryHandler deliver_;
  NetworkStats stats_;
  std::unique_ptr<obs::MetricsRegistry> own_metrics_;  // set iff not external
  obs::MetricsRegistry* metrics_;
  obs::LinkHeatmap heatmap_;
  obs::TraceWriter* tracer_ = nullptr;
  /// Hot per-event state on its own cache lines: every flit move loads
  /// sharded_active_ (and now the ff/gate flags) and bumps a gate counter,
  /// so keep the flags, the six gate counters (first 48 bytes of
  /// NetCounters), and the rotation cursor away from the cold members.
  alignas(64) bool sharded_active_ = false;
  bool gates_on_ = false;   // per-shard work gates maintained (shards > 1)
  bool ff_on_ = false;      // fast-forward enabled
  Cycle ff_until_ = 0;      // armed window: ticks before this cycle skip
  NetCounters cnt_;
  int rotate_ = 0;

  /// Visit every scheduled router in (id - start) mod n order — the order
  /// the exhaustive sweep uses.  The bitmap is re-read word by word, so a
  /// router woken mid-phase at a position the cursor has not yet passed is
  /// visited this phase (exactly when the full sweep would have reached it);
  /// one woken behind the cursor waits for the next phase's rescan, which is
  /// what the full sweep would have done too (it passes an empty router).
  template <class F>
  void for_each_scheduled(int start, F&& f);

  // --- active-region scheduling (see DESIGN.md "Scheduling model") --------
  bool full_sweep_ = false;              // escape hatch: tick all routers
  /// One bit per router: on the active region (mirrors NodeWords::scheduled).
  /// Replaces a sorted worklist vector — waking is a bit-set, and each tick
  /// phase streams the words in rotated order instead of sorting.
  std::vector<std::uint64_t> sched_words_;
  /// Routers whose work count hit zero this cycle (see note_maybe_idle);
  /// drained and cleared by the end-of-tick deschedule pass.
  std::vector<NodeId> idle_checks_;

  /// Precomputed "iack_bank.<n>" counter names (see trace_bank_occupancy).
  std::vector<std::string> bank_counter_names_;

  // --- fast-forward state (cold: touched at window boundaries only) -------
  Cycle ff_armed_at_ = kNoGate;  // tick that armed the open window
  Cycle ff_next_ = kNoGate;      // sequential per-tick gate accumulator
  bool ff_acted_ = false;        // sequential per-tick marks
  bool ff_blocked_ = false;
  bool ff_idle_tick_ = false;    // sharded: tick armed a window (return false)
  std::uint64_t ff_cycles_ = 0;
  std::uint64_t ff_events_ = 0;

  // --- sharded-kernel state ----------------------------------------------
  ShardPlan plan_;
  bool parallel_replay_ = false;
  // (sharded_active_ — true only between tick_sharded() entry and exit,
  // routing the counter helpers through the calling shard's delta block —
  // is declared next to cnt_ above for cache-line locality.  It is read by
  // the shard threads, stable for the whole tick, and by the main thread in
  // between, where it is always false: never concurrent with a write.)
  int tick_start_ = 0;   // rotate_ snapshot for the in-flight sharded tick
  Cycle tick_now_ = 0;
  static thread_local ShardCtx* tls_shard_;
  std::vector<ShardCtx> shard_ctx_;
  /// Traverse-phase front progress per shard, one array per sweep stage
  /// (ids >= start, then ids < start).  -1 = no front completed this tick.
  std::unique_ptr<PaddedAtomicInt[]> progress_early_;
  std::unique_ptr<PaddedAtomicInt[]> progress_late_;
  std::unique_ptr<sim::ShardBarrier> barrier_;
  std::unique_ptr<sim::ShardPool> pool_;  // joined first: declared last
  obs::HistogramMetric* barrier_wait_hist_ = nullptr;
};

} // namespace mdw::noc
