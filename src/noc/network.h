// Whole-network model: a W x H mesh of wormhole routers plus one network
// interface (NI) per node.
//
// The Network is a sim::Tickable: each cycle it runs the three router phases
// over all routers (with a rotating start index so allocation arbitration is
// fair across nodes) and services the per-node injection queues.
#pragma once

#include <array>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "noc/route_cache.h"
#include "noc/router.h"
#include "noc/routing.h"
#include "obs/heatmap.h"
#include "obs/metrics.h"
#include "obs/trace_writer.h"
#include "sim/engine.h"
#include "sim/ring_queue.h"
#include "sim/stats.h"

namespace mdw::noc {

/// Per-node network interface state.  Both queues are growable rings: the
/// storage follows the occupancy high-water mark and is then retained, so
/// steady-state injection/retry traffic performs no allocation (std::deque
/// churned chunk nodes here on every enqueue/dequeue wave).
struct NetIface {
  /// Worms waiting to enter the router's Local port, per virtual network.
  std::array<sim::RingQueue<WormPtr>, kNumVNets> inject_q;
  /// Worm currently streaming flits into a Local input VC, per Local VC.
  struct Streaming {
    WormPtr worm;
    int flits_pushed = 0;
  };
  std::vector<Streaming> streaming;
  /// i-ack posts that found the bank full and must retry.
  sim::RingQueue<std::pair<TxnId, int>> pending_posts;
  /// Worms queued in inject_q plus worms mid-stream: lets service_injection
  /// and node_has_work skip the per-VC scan when the NI is idle.
  int inj_work = 0;
};

struct NetworkStats {
  std::uint64_t worms_injected = 0;
  std::uint64_t worms_delivered = 0;       // final-destination deliveries
  std::uint64_t absorb_deliveries = 0;     // intermediate-destination copies
  std::uint64_t link_flit_hops = 0;        // flits crossing inter-router links
  std::uint64_t gather_deferred = 0;       // gather worms parked in a bank
  std::uint64_t gather_deposits = 0;       // gather worms ending in a bank
  obs::SamplerHandle worm_latency;         // inject -> final delivery
                                           // (registry histogram "worm_latency")
};

class Network : public sim::Tickable {
public:
  using DeliveryHandler = std::function<void(NodeId where, const WormPtr&)>;

  /// `metrics` is the registry the network publishes into (per-Machine when
  /// protocol-driven); when nullptr the network owns a private one.
  Network(sim::Engine& eng, const MeshShape& mesh, const NocParams& params,
          obs::MetricsRegistry* metrics = nullptr);

  [[nodiscard]] const MeshShape& mesh() const { return mesh_; }
  [[nodiscard]] const NocParams& params() const { return params_; }
  [[nodiscard]] Router& router(NodeId id) { return *routers_[id]; }
  [[nodiscard]] NetworkStats& stats() { return stats_; }
  [[nodiscard]] const NetworkStats& stats() const { return stats_; }
  [[nodiscard]] sim::Engine& engine() { return eng_; }
  [[nodiscard]] obs::MetricsRegistry& metrics() { return *metrics_; }
  [[nodiscard]] const obs::LinkHeatmap& heatmap() const { return heatmap_; }
  /// Memoized unicast routes (sized by NocParams::route_cache_entries);
  /// shared by every protocol-level make_unicast call on this network.
  [[nodiscard]] RouteCache& route_cache() { return route_cache_; }

  /// Opt-in event tracing (worm spans, i-ack bank occupancy); nullptr off.
  void set_trace_writer(obs::TraceWriter* t) { tracer_ = t; }
  [[nodiscard]] obs::TraceWriter* tracer() const { return tracer_; }

  /// Called once per final or intermediate `Deliver` completion.
  void set_delivery_handler(DeliveryHandler h) { deliver_ = std::move(h); }

  /// Queue `worm` for injection at its source node.  Self-deliveries
  /// (path == {src}) complete immediately through the delivery handler.
  void inject(const WormPtr& worm);

  /// Post an invalidation acknowledgment into node `at`'s i-ack bank.  If a
  /// deferred gather worm completes, it is re-injected automatically.  Full
  /// banks are retried every cycle by the NI.
  void post_iack(NodeId at, TxnId txn, int count);

  /// Number of worms injected but not yet fully delivered/absorbed.
  [[nodiscard]] std::uint64_t worms_in_flight() const { return in_flight_; }

  /// Per-link flit counts (for hot-spot analysis): indexed (node, dir).
  [[nodiscard]] std::uint64_t link_flits(NodeId n, Dir d) const {
    return heatmap_.hops(n, static_cast<int>(d));
  }

  bool tick(Cycle now) override;

  // --- used by Router -----------------------------------------------------
  void count_link_flit(NodeId from, Dir d) {
    ++stats_.link_flit_hops;
    heatmap_.record_hop(from, static_cast<int>(d));
  }
  /// A head flit failed allocation waiting for the outgoing link (from, d).
  void count_link_stall(NodeId from, Dir d) {
    heatmap_.record_stall(from, static_cast<int>(d));
  }
  /// Emit an i-ack bank occupancy counter sample (call only when tracing).
  /// Counter names are precomputed per node: occupancy samples fire on the
  /// allocation path, where a string build per sample would be hot.
  void trace_bank_occupancy(NodeId at, int in_use, Cycle now) {
    tracer_->counter(bank_counter_names_[at], now, at,
                     static_cast<double>(in_use));
  }
  void on_delivery(NodeId where, const WormPtr& worm, bool final_dest, Cycle now);
  void on_gather_deferred() { ++stats_.gather_deferred; }
  /// A non-trunk gather worm finished by sinking into `at`'s i-ack bank.
  void on_gather_deposit(NodeId at, const WormPtr& worm);
  /// Live-flit accounting, used for cheap global activity detection.
  void on_flit_removed() { --live_flits_; }
  void on_flit_copied() { ++live_flits_; }
  /// Global phase-work accounting: consumption-channel flits and unrouted
  /// heads across all routers.  A zero count lets tick() skip that phase's
  /// sweep outright — equivalent to running it over routers with none of
  /// that work class, which is a no-op.
  void on_cons_flit(int delta) { cons_flits_total_ += delta; }
  void on_pending_head(int delta) { pending_heads_total_ += delta; }
  /// A work counter at node `id` just reached zero: queue it for the
  /// end-of-tick deschedule check.  Only these transition points can turn
  /// node_has_work false, so checking the queued candidates is equivalent to
  /// re-checking every scheduled router each cycle (duplicates are harmless —
  /// the check is idempotent).
  void note_maybe_idle(NodeId id) {
    if (!full_sweep_) idle_checks_.push_back(id);
  }
  /// Put router `id` on the active worklist (no-op if already there, or in
  /// full-sweep mode).  Called on injection, incoming flits, and i-ack
  /// posts.  During a tick the router is spliced into the current sweep at
  /// its rotating-arbitration position, so activity discovered mid-cycle is
  /// handled exactly when the exhaustive sweep would have reached it.
  void wake_router(NodeId id);

  /// True while the node can make progress without an external wake: flits
  /// resident in the router, posts to retry, or worms queued/streaming at
  /// the NI.  A false return means the router may be descheduled.
  [[nodiscard]] bool node_has_work(NodeId id) const;

  /// Active-region vs exhaustive-sweep scheduling (differential testing).
  [[nodiscard]] bool full_sweep() const { return full_sweep_; }

private:
  void service_injection(NodeId n, Cycle now);
  void try_pending_posts(NodeId n);
  void reinject(NodeId at, const WormPtr& worm);

  sim::Engine& eng_;
  MeshShape mesh_;
  NocParams params_;
  RouteCache route_cache_;
  std::vector<std::unique_ptr<Router>> routers_;
  std::vector<NetIface> ifaces_;
  DeliveryHandler deliver_;
  NetworkStats stats_;
  std::unique_ptr<obs::MetricsRegistry> own_metrics_;  // set iff not external
  obs::MetricsRegistry* metrics_;
  obs::LinkHeatmap heatmap_;
  obs::TraceWriter* tracer_ = nullptr;
  std::uint64_t in_flight_ = 0;
  std::int64_t live_flits_ = 0;      // flits resident in any buffer
  std::int64_t queued_worms_ = 0;    // queued or still streaming in
  std::int64_t pending_posts_ = 0;
  std::int64_t cons_flits_total_ = 0;    // flits in consumption channels
  std::int64_t pending_heads_total_ = 0; // heads awaiting allocation
  int rotate_ = 0;

  /// Visit every scheduled router in (id - start) mod n order — the order
  /// the exhaustive sweep uses.  The bitmap is re-read word by word, so a
  /// router woken mid-phase at a position the cursor has not yet passed is
  /// visited this phase (exactly when the full sweep would have reached it);
  /// one woken behind the cursor waits for the next phase's rescan, which is
  /// what the full sweep would have done too (it passes an empty router).
  template <class F>
  void for_each_scheduled(int start, F&& f);

  // --- active-region scheduling (see DESIGN.md "Scheduling model") --------
  bool full_sweep_ = false;              // escape hatch: tick all routers
  /// One bit per router: on the active region (mirrors Router::scheduled_).
  /// Replaces a sorted worklist vector — waking is a bit-set, and each tick
  /// phase streams the words in rotated order instead of sorting.
  std::vector<std::uint64_t> sched_words_;
  /// Routers whose work count hit zero this cycle (see note_maybe_idle);
  /// drained and cleared by the end-of-tick deschedule pass.
  std::vector<NodeId> idle_checks_;

  /// Precomputed "iack_bank.<n>" counter names (see trace_bank_occupancy).
  std::vector<std::string> bank_counter_names_;
};

} // namespace mdw::noc
