// Worm (wormhole message) descriptor and per-destination actions.
//
// Every message in the system is a worm: a header (carrying the
// source-routed path and the destination list), a payload body, and a tail.
// Multidestination worms list several destinations in path order; the action
// performed at each destination's router interface distinguishes the worm
// types of the paper:
//
//   Deliver            ordinary consumption (final dest of any worm, and
//                      forward-and-absorb at intermediate dests of a
//                      multicast worm)
//   DeliverAndReserve  forward-and-absorb + reserve an i-ack buffer entry
//                      (i-reserve worms of the MI-MA frameworks)
//   ReserveOnly        reserve an i-ack buffer entry without delivering to
//                      the node (used at "column leader" routers by the
//                      hierarchical gather scheme; no consumption channel
//                      needed)
//   GatherPickup       pick up the accumulated i-ack count from the i-ack
//                      buffer; defer (virtual cut-through into the buffer)
//                      when it has not been posted yet (i-gather worms)
//
// Memory model (DESIGN.md section 11): worms are reference-counted
// intrusively and recycled through a WormPool.  The refcount is non-atomic —
// a worm lives and dies on the thread that built it (one Machine runs on one
// thread; the sweep runner gives each worker its own thread-local pool) —
// so claiming/releasing a worm on the router hot path is a plain increment,
// not an atomic RMW as with the std::shared_ptr the seed used.
#pragma once

#include <cstdint>
#include <memory>

#include "noc/geometry.h"
#include "noc/routing.h"
#include "sim/small_vec.h"
#include "sim/types.h"

namespace mdw::noc {

enum class VNet : std::uint8_t { Request = 0, Reply = 1 };
inline constexpr int kNumVNets = 2;

enum class DestAction : std::uint8_t {
  Deliver,
  DeliverAndReserve,
  ReserveOnly,
  GatherPickup,
  /// Final destination of a non-trunk i-gather worm in the hierarchical
  /// scheme: the worm sinks into this router's i-ack bank, posting its
  /// accumulated count there instead of delivering to the node.
  GatherDeposit,
};

struct DestSpec {
  NodeId node = kInvalidNode;
  DestAction action = DestAction::Deliver;
  /// For reservation actions: how many i-ack posts this router must see
  /// before its entry is complete (usually 1; >1 at hierarchical leaders).
  std::uint16_t expected_posts = 1;
};

/// Inline destination capacity: covers every scheme's per-worm destination
/// list on the paper's mesh sizes; longer lists spill to a recycled block.
inline constexpr std::size_t kInlineDests = 8;
using DestVec = sim::SmallVec<DestSpec, kInlineDests>;

/// Opaque payload base; the protocol layer derives its message types from it.
struct Payload {
  virtual ~Payload() = default;
};

enum class WormKind : std::uint8_t {
  Unicast,    // single destination
  Multicast,  // i-reserve / plain multicast: forward-and-absorb at dests
  Gather,     // i-gather: picks up i-acks at dests, delivers total at final
};

[[nodiscard]] inline const char* worm_kind_name(WormKind k) {
  static constexpr const char* names[] = {"unicast", "multicast", "gather"};
  return names[static_cast<int>(k)];
}

class WormPool;

struct Worm {
  WormId id = 0;
  WormKind kind = WormKind::Unicast;
  VNet vnet = VNet::Request;
  TxnId txn = 0;
  NodeId src = kInvalidNode;

  /// Full hop sequence, path[0] == src, path.back() == final destination.
  /// Always non-empty; a self-delivery has path == {src}.
  PathVec path;

  /// Destinations in path order; the final destination is dests.back() and
  /// must equal path.back().  For Unicast worms this has exactly one entry.
  DestVec dests;

  /// Total worm length in flits (header + payload + tail).
  int length_flits = 1;

  /// Virtual-channel class within the worm's vnet, or -1 for any VC.  Used
  /// to segregate west-first-conformant and east-first-conformant gather
  /// traffic on the reply network (mixing the two turn models on one VC
  /// class would reintroduce channel-dependency cycles).
  int vc_class = -1;

  /// Dynamic adaptive unicast: the path is extended hop by hop at each
  /// router, choosing among the directions `adaptive_algo` permits by
  /// downstream buffer occupancy.  Only meaningful for Unicast worms under
  /// a turn-model routing (the only base routings with per-hop choice that
  /// stay deadlock-free without escape channels).
  bool adaptive = false;
  RoutingAlgo adaptive_algo = RoutingAlgo::WestFirst;

  std::shared_ptr<const Payload> payload;

  // --- Runtime state (owned by the network while in flight) -------------
  /// Index into `path` of the router currently holding the header.
  std::size_t head_hop = 0;
  /// Index into `dests` of the next destination not yet reached.
  std::size_t next_dest = 0;
  /// Gather worms: acknowledgments accumulated so far.
  int gathered = 0;
  /// Injection / final-delivery timestamps (cycles), for latency stats.
  Cycle inject_cycle = 0;
  Cycle deliver_cycle = 0;

  // --- Pool linkage (managed by WormPtr / WormPool) ---------------------
  /// Intrusive reference count.  Non-atomic by design: see the memory-model
  /// note at the top of this header.
  std::uint32_t refs = 0;
  /// Owning pool; nullptr for worms allocated outside any pool (deleted on
  /// release instead of recycled).
  WormPool* pool = nullptr;

  [[nodiscard]] NodeId final_dest() const { return path.back(); }
  [[nodiscard]] bool is_multidest() const { return dests.size() > 1; }

  /// Return the worm to its pristine state while KEEPING the heap capacity
  /// of `path` / `dests` (and the refs/pool linkage).  Called by the pool on
  /// recycle, so a reused worm is indistinguishable from a new one.
  void reset_for_reuse() {
    id = 0;
    kind = WormKind::Unicast;
    vnet = VNet::Request;
    txn = 0;
    src = kInvalidNode;
    path.clear();
    dests.clear();
    length_flits = 1;
    vc_class = -1;
    adaptive = false;
    adaptive_algo = RoutingAlgo::WestFirst;
    payload.reset();
    head_hop = 0;
    next_dest = 0;
    gathered = 0;
    inject_cycle = 0;
    deliver_cycle = 0;
  }
};

/// Out-of-line slow path of WormPtr release: recycle into the owning pool,
/// or delete an unpooled worm.  Defined in worm_pool.cpp.
void release_worm(Worm* w) noexcept;

/// Intrusive smart pointer to a Worm.  Replaces std::shared_ptr<Worm>: no
/// separate control block (the count lives in the worm), no atomic refcount
/// traffic, and destruction recycles the worm through its pool instead of
/// freeing path/dests storage.
class WormPtr {
public:
  constexpr WormPtr() noexcept = default;
  constexpr WormPtr(std::nullptr_t) noexcept {}  // NOLINT(runtime/explicit)
  /// Adopt a raw worm (takes one reference).
  explicit WormPtr(Worm* w) noexcept : p_(w) {
    if (p_ != nullptr) ++p_->refs;
  }

  WormPtr(const WormPtr& o) noexcept : p_(o.p_) {
    if (p_ != nullptr) ++p_->refs;
  }
  WormPtr(WormPtr&& o) noexcept : p_(o.p_) { o.p_ = nullptr; }

  WormPtr& operator=(const WormPtr& o) noexcept {
    if (p_ != o.p_) {
      drop();
      p_ = o.p_;
      if (p_ != nullptr) ++p_->refs;
    }
    return *this;
  }
  WormPtr& operator=(WormPtr&& o) noexcept {
    if (this != &o) {
      drop();
      p_ = o.p_;
      o.p_ = nullptr;
    }
    return *this;
  }
  WormPtr& operator=(std::nullptr_t) noexcept {
    drop();
    return *this;
  }

  ~WormPtr() { drop(); }

  [[nodiscard]] Worm* get() const noexcept { return p_; }
  [[nodiscard]] Worm& operator*() const noexcept { return *p_; }
  [[nodiscard]] Worm* operator->() const noexcept { return p_; }
  [[nodiscard]] explicit operator bool() const noexcept { return p_ != nullptr; }
  [[nodiscard]] std::uint32_t use_count() const noexcept {
    return p_ != nullptr ? p_->refs : 0;
  }

  friend bool operator==(const WormPtr& a, const WormPtr& b) noexcept {
    return a.p_ == b.p_;
  }
  friend bool operator==(const WormPtr& a, std::nullptr_t) noexcept {
    return a.p_ == nullptr;
  }

private:
  void drop() noexcept {
    if (p_ != nullptr && --p_->refs == 0) release_worm(p_);
    p_ = nullptr;
  }

  Worm* p_ = nullptr;
};

} // namespace mdw::noc
