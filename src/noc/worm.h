// Worm (wormhole message) descriptor and per-destination actions.
//
// Every message in the system is a worm: a header (carrying the
// source-routed path and the destination list), a payload body, and a tail.
// Multidestination worms list several destinations in path order; the action
// performed at each destination's router interface distinguishes the worm
// types of the paper:
//
//   Deliver            ordinary consumption (final dest of any worm, and
//                      forward-and-absorb at intermediate dests of a
//                      multicast worm)
//   DeliverAndReserve  forward-and-absorb + reserve an i-ack buffer entry
//                      (i-reserve worms of the MI-MA frameworks)
//   ReserveOnly        reserve an i-ack buffer entry without delivering to
//                      the node (used at "column leader" routers by the
//                      hierarchical gather scheme; no consumption channel
//                      needed)
//   GatherPickup       pick up the accumulated i-ack count from the i-ack
//                      buffer; defer (virtual cut-through into the buffer)
//                      when it has not been posted yet (i-gather worms)
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "noc/geometry.h"
#include "sim/types.h"

namespace mdw::noc {

enum class VNet : std::uint8_t { Request = 0, Reply = 1 };
inline constexpr int kNumVNets = 2;

enum class DestAction : std::uint8_t {
  Deliver,
  DeliverAndReserve,
  ReserveOnly,
  GatherPickup,
  /// Final destination of a non-trunk i-gather worm in the hierarchical
  /// scheme: the worm sinks into this router's i-ack bank, posting its
  /// accumulated count there instead of delivering to the node.
  GatherDeposit,
};

struct DestSpec {
  NodeId node = kInvalidNode;
  DestAction action = DestAction::Deliver;
  /// For reservation actions: how many i-ack posts this router must see
  /// before its entry is complete (usually 1; >1 at hierarchical leaders).
  std::uint16_t expected_posts = 1;
};

/// Opaque payload base; the protocol layer derives its message types from it.
struct Payload {
  virtual ~Payload() = default;
};

enum class WormKind : std::uint8_t {
  Unicast,    // single destination
  Multicast,  // i-reserve / plain multicast: forward-and-absorb at dests
  Gather,     // i-gather: picks up i-acks at dests, delivers total at final
};

[[nodiscard]] inline const char* worm_kind_name(WormKind k) {
  static constexpr const char* names[] = {"unicast", "multicast", "gather"};
  return names[static_cast<int>(k)];
}

struct Worm {
  WormId id = 0;
  WormKind kind = WormKind::Unicast;
  VNet vnet = VNet::Request;
  TxnId txn = 0;
  NodeId src = kInvalidNode;

  /// Full hop sequence, path[0] == src, path.back() == final destination.
  /// Always non-empty; a self-delivery has path == {src}.
  std::vector<NodeId> path;

  /// Destinations in path order; the final destination is dests.back() and
  /// must equal path.back().  For Unicast worms this has exactly one entry.
  std::vector<DestSpec> dests;

  /// Total worm length in flits (header + payload + tail).
  int length_flits = 1;

  /// Virtual-channel class within the worm's vnet, or -1 for any VC.  Used
  /// to segregate west-first-conformant and east-first-conformant gather
  /// traffic on the reply network (mixing the two turn models on one VC
  /// class would reintroduce channel-dependency cycles).
  int vc_class = -1;

  /// Dynamic adaptive unicast: the path is extended hop by hop at each
  /// router, choosing among the directions `adaptive_algo` permits by
  /// downstream buffer occupancy.  Only meaningful for Unicast worms under
  /// a turn-model routing (the only base routings with per-hop choice that
  /// stay deadlock-free without escape channels).
  bool adaptive = false;
  std::uint8_t adaptive_algo = 0;  // RoutingAlgo, kept POD to avoid includes

  std::shared_ptr<const Payload> payload;

  // --- Runtime state (owned by the network while in flight) -------------
  /// Index into `path` of the router currently holding the header.
  std::size_t head_hop = 0;
  /// Index into `dests` of the next destination not yet reached.
  std::size_t next_dest = 0;
  /// Gather worms: acknowledgments accumulated so far.
  int gathered = 0;
  /// Injection / final-delivery timestamps (cycles), for latency stats.
  Cycle inject_cycle = 0;
  Cycle deliver_cycle = 0;

  [[nodiscard]] NodeId final_dest() const { return path.back(); }
  [[nodiscard]] bool is_multidest() const { return dests.size() > 1; }
};

using WormPtr = std::shared_ptr<Worm>;

} // namespace mdw::noc
