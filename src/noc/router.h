// Input-buffered wormhole router with virtual channels, multidestination
// (forward-and-absorb) support, consumption channels, and an i-ack buffer
// bank at the router interface.
//
// Microarchitecture (per cycle, orchestrated by Network):
//   1. consumption-channel drain: each of the C consumption channels hands
//      one flit per cycle to the node; a drained tail triggers delivery.
//   2. allocation: the head flit at the front of an input VC (after the
//      router pipeline delay) computes its action at this router (forward /
//      absorb / reserve / gather-pickup / consume) and acquires every
//      resource it needs — downstream VC, consumption channel, i-ack buffer
//      entry — atomically (hold-and-wait on the set it cannot get).
//   3. switch traversal: each input port forwards at most one flit; each
//      output link accepts at most one flit (physical channel bandwidth);
//      forward-and-absorb additionally copies the flit into the allocated
//      consumption channel.
//
// Flits become visible to the next pipeline stage one cycle after they move
// (arrival-cycle gating), so a flit advances at most one hop per cycle.
#pragma once

#include <array>
#include <functional>
#include <vector>

#include "noc/flit_ring.h"
#include "noc/geometry.h"
#include "noc/iack_buffer.h"
#include "noc/worm.h"
#include "sim/types.h"

namespace mdw::noc {

struct NocParams {
  // Two VCs per vnet by default: the turn-model schemes segregate
  // west-first-class and east-first-class gather traffic by VC class.
  int vcs_per_vnet = 2;
  int inj_vcs_per_vnet = 2;    // injection (Local-port) VCs per virtual network
  int vc_buffer_flits = 4;     // input VC buffer depth
  int router_delay = 4;        // header pipeline delay per hop, cycles (20 ns)
  int consumption_channels = 4;    // per router interface ([39]: 4 suffice)
  int cons_buffer_flits = 2;       // consumption channel buffer depth
  int iack_entries = 4;            // i-ack buffer entries per interface

  /// Bound on the memoized unicast-route table (noc::RouteCache, owned by
  /// the Network); 0 disables memoization.  Purely a simulator-speed knob:
  /// routing is deterministic, so results are bit-identical at any setting.
  int route_cache_entries = 4096;

  /// Differential-testing escape hatch: tick every router every cycle (the
  /// original O(W*H) sweep) instead of only the active-region worklist.
  /// Also enabled by the MDW_FULL_SWEEP environment variable.  Both modes
  /// produce bit-identical simulations; see DESIGN.md "Scheduling model".
  bool full_sweep = false;

  /// Cycle-kernel shard count: partition the mesh into this many row strips,
  /// each ticked by its own thread (DESIGN.md sections 14 and 16).  Clamped
  /// to the mesh height; 1 runs the sequential kernel unchanged.  <= 0 (the
  /// default) means "unset": the MDW_SHARDS environment variable is
  /// consulted, then 1.  An explicit positive value always beats the
  /// environment (resolve_shards in shard_plan.h).  Purely a
  /// simulator-speed knob: results are bit-identical at any setting.
  int shards = 0;

  /// Quiescence fast-forward (DESIGN.md section 16): when a tick neither
  /// acts nor blocks and every pending flit/worm is gated on a known future
  /// cycle, jump simulated time there instead of ticking empty sweeps.
  /// Bit-identical either way; MDW_NO_FF=1 is the runtime escape hatch.
  bool fast_forward = true;

  [[nodiscard]] int vcs_total() const { return kNumVNets * vcs_per_vnet; }
  [[nodiscard]] int inj_vcs_total() const { return kNumVNets * inj_vcs_per_vnet; }
};

class Router;

/// One directional inter-router or injection channel endpoint.  The flit
/// buffer is a fixed-depth ring sized from NocParams::vc_buffer_flits at
/// router construction; nothing here allocates in steady state.
struct InputVc {
  FlitRing buf;
  WormPtr owner;            // worm holding this VC (claim -> tail departure)
  bool routed = false;      // head processed at this router
  Cycle ready_at = 0;       // header pipeline gate
  int out_port = -1;        // allocated output direction (0..3), -1 if none
  int out_vc = -1;
  int cons_ch = -1;         // allocated consumption channel, -1 if none
  bool drain_to_bank = false;  // deferred gather: flits sink into i-ack bank
  bool deposit_at_tail = false;  // GatherDeposit: post count when tail sinks
  bool deliver_here = false;   // copy flits into the consumption channel
  bool final_here = false;     // worm terminates at this router

  [[nodiscard]] bool free() const { return owner == nullptr && buf.empty(); }
  void reset_route() {
    routed = false;
    out_port = out_vc = cons_ch = -1;
    drain_to_bank = deposit_at_tail = deliver_here = final_here = false;
  }
};

struct ConsumptionChannel {
  WormPtr worm;             // worm being consumed, nullptr when free
  bool final_dest = false;  // consuming at the worm's final destination?
  FlitRing buf;             // depth NocParams::cons_buffer_flits
  [[nodiscard]] bool busy() const { return worm != nullptr; }
};

/// Aggregate activity counters, kept by each router.
struct RouterStats {
  std::uint64_t flits_forwarded = 0;   // flits sent over an output link
  std::uint64_t flits_consumed = 0;    // flits handed to the local node
  std::uint64_t alloc_stall_cycles = 0;
  std::uint64_t cons_blocked_cycles = 0;  // absorb blocked on consumption ch.
  std::uint64_t bank_blocked_cycles = 0;  // reserve/pickup blocked on bank
};

class Network;

class Router {
public:
  Router(Network& net, NodeId id, const NocParams& p);

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] IAckBufferBank& bank() { return bank_; }
  [[nodiscard]] const RouterStats& stats() const { return stats_; }

  /// Phase 1: drain consumption channels (<=1 flit per channel per cycle).
  void drain_consumption(Cycle now);
  /// Phase 2: route + resource allocation for heads at VC fronts.  Only VCs
  /// on the pending-head list are visited; heads enqueue themselves on
  /// arrival and leave on successful allocation.
  void allocate(Cycle now);
  /// Phase 3: switch traversal; moves flits out of input VCs.
  void traverse(Cycle now);

  /// True if any flit or claimed VC is present (activity detection).
  [[nodiscard]] bool busy() const;

private:
  friend class Network;

  struct OutLink {
    Router* nbr = nullptr;
    int nbr_port = -1;  // input port index at the neighbour
    /// Cycle stamp of the last flit sent over this link (physical-channel
    /// bandwidth gate).  Comparing against `now` replaces a per-cycle
    /// used-this-cycle flag reset across all links of all routers.
    Cycle used_cycle = ~Cycle{0};
  };

  [[nodiscard]] InputVc& vc(int port, int v) { return vcs_[port][v]; }
  [[nodiscard]] int num_vcs(int port) const {
    return port == static_cast<int>(Dir::Local) ? params_.inj_vcs_total()
                                                : params_.vcs_total();
  }
  /// VC-index range [first, last) usable by worms of `vnet` on `port`.
  [[nodiscard]] std::pair<int, int> vc_range(int port, VNet vnet) const;

  bool try_allocate_head(InputVc& v, Cycle now);
  /// Move one flit out of routed VC `v` if its resources permit this cycle;
  /// returns whether a flit moved (checks and move fused in one pass).
  bool try_move_flit(int port, int vidx, InputVc& v, Cycle now);
  int find_free_cons_channel() const;

  /// A head flit was pushed into vcs_[port][v]: register it for allocation.
  /// The list is kept sorted by (port, vc) so allocation visits heads in
  /// exactly the order the exhaustive port/VC scan used to.
  void note_head_arrival(int port, int v);

  Network& net_;
  NodeId id_;
  NocParams params_;
  // vcs_[port][vc]; ports 0..3 = N,S,E,W links, port 4 = Local (injection).
  std::array<std::vector<InputVc>, kNumPorts> vcs_;
  std::array<OutLink, kNumLinkDirs> out_;
  std::vector<ConsumptionChannel> cons_;
  IAckBufferBank bank_;
  RouterStats stats_;
  /// Flits resident in this router (input VCs + consumption channels); used
  /// to skip idle routers cheaply.
  int active_work_ = 0;
  /// Flits buffered in the consumption channels only: lets drain_consumption
  /// skip the channel scan on the (common) cycles where the router has
  /// in-transit flits but nothing to hand to the node.
  int cons_flits_ = 0;
  /// On the Network's active-router worklist (woken by injection, incoming
  /// flits, or pending i-ack posts; descheduled once fully drained).
  bool scheduled_ = false;
  /// Unrouted head flits awaiting allocation, packed (port << 8) | vc,
  /// sorted ascending.
  std::vector<std::uint16_t> pending_heads_;
  /// Bit v set iff vcs_[port][v] is routed (holds a worm committed through
  /// allocation).  Traversal scans only these bits — in round-robin order —
  /// instead of touching every VC's buffer state each cycle.
  std::array<std::uint32_t, kNumPorts> routed_mask_{};
  /// Bit p set iff routed_mask_[p] != 0: traversal iterates only the ports
  /// that can possibly move a flit (typically one or two of the five).
  std::uint32_t ports_mask_ = 0;
  int rr_port_ = 0;  // round-robin pointers
  std::array<int, kNumPorts> rr_vc_{};
};

} // namespace mdw::noc
