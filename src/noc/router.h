// Input-buffered wormhole router with virtual channels, multidestination
// (forward-and-absorb) support, consumption channels, and an i-ack buffer
// bank at the router interface.
//
// Microarchitecture (per cycle, orchestrated by Network):
//   1. consumption-channel drain: each of the C consumption channels hands
//      one flit per cycle to the node; a drained tail triggers delivery.
//   2. allocation: the head flit at the front of an input VC (after the
//      router pipeline delay) computes its action at this router (forward /
//      absorb / reserve / gather-pickup / consume) and acquires every
//      resource it needs — downstream VC, consumption channel, i-ack buffer
//      entry — atomically (hold-and-wait on the set it cannot get).
//   3. switch traversal: each input port forwards at most one flit; each
//      output link accepts at most one flit (physical channel bandwidth);
//      forward-and-absorb additionally copies the flit into the allocated
//      consumption channel.
//
// Flits become visible to the next pipeline stage one cycle after they move
// (arrival-cycle gating), so a flit advances at most one hop per cycle.
//
// Router is a thin VIEW: all hot state (VC records, flit rings, consumption
// channels, the per-node scheduling/arbitration words) lives in the
// Network-owned RouterArena (arena.h), reached through span pointers set at
// construction.  The router object itself keeps only cold state: the i-ack
// bank, stats, and the output-link topology.  Downstream accesses in the
// phase code are index arithmetic into the arena — no pointer chase through
// neighbour Router objects.
#pragma once

#include <array>
#include <utility>

#include "noc/arena.h"
#include "noc/flit_ring.h"
#include "noc/geometry.h"
#include "noc/iack_buffer.h"
#include "noc/worm.h"
#include "sim/types.h"

namespace mdw::noc {

struct NocParams {
  // Two VCs per vnet by default: the turn-model schemes segregate
  // west-first-class and east-first-class gather traffic by VC class.
  int vcs_per_vnet = 2;
  int inj_vcs_per_vnet = 2;    // injection (Local-port) VCs per virtual network
  int vc_buffer_flits = 4;     // input VC buffer depth
  int router_delay = 4;        // header pipeline delay per hop, cycles (20 ns)
  int consumption_channels = 4;    // per router interface ([39]: 4 suffice)
  int cons_buffer_flits = 2;       // consumption channel buffer depth
  int iack_entries = 4;            // i-ack buffer entries per interface

  /// Bound on the memoized unicast-route table (noc::RouteCache, owned by
  /// the Network); 0 disables memoization.  Purely a simulator-speed knob:
  /// routing is deterministic, so results are bit-identical at any setting.
  int route_cache_entries = 4096;

  /// Differential-testing escape hatch: tick every router every cycle (the
  /// original O(W*H) sweep) instead of only the active-region worklist.
  /// Also enabled by the MDW_FULL_SWEEP environment variable.  Both modes
  /// produce bit-identical simulations; see DESIGN.md "Scheduling model".
  bool full_sweep = false;

  /// Cycle-kernel shard count: partition the mesh into this many row strips,
  /// each ticked by its own thread (DESIGN.md sections 14 and 16).  Clamped
  /// to the mesh height; 1 runs the sequential kernel unchanged.  <= 0 (the
  /// default) means "unset": the MDW_SHARDS environment variable is
  /// consulted, then 1.  An explicit positive value always beats the
  /// environment (resolve_shards in shard_plan.h).  Purely a
  /// simulator-speed knob: results are bit-identical at any setting.
  int shards = 0;

  /// Quiescence fast-forward (DESIGN.md section 16): when a tick neither
  /// acts nor blocks and every pending flit/worm is gated on a known future
  /// cycle, jump simulated time there instead of ticking empty sweeps.
  /// Bit-identical either way; MDW_NO_FF=1 is the runtime escape hatch.
  bool fast_forward = true;

  [[nodiscard]] int vcs_total() const { return kNumVNets * vcs_per_vnet; }
  [[nodiscard]] int inj_vcs_total() const { return kNumVNets * inj_vcs_per_vnet; }
};

/// Aggregate activity counters, kept by each router.
struct RouterStats {
  std::uint64_t flits_forwarded = 0;   // flits sent over an output link
  std::uint64_t flits_consumed = 0;    // flits handed to the local node
  std::uint64_t alloc_stall_cycles = 0;
  std::uint64_t cons_blocked_cycles = 0;  // absorb blocked on consumption ch.
  std::uint64_t bank_blocked_cycles = 0;  // reserve/pickup blocked on bank
};

class Network;

class Router {
public:
  /// `arena` must already be initialized for this network's parameters; the
  /// router captures its spans for node `id`.
  Router(Network& net, RouterArena& arena, NodeId id, const NocParams& p);
  Router(Router&&) noexcept = default;

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] IAckBufferBank& bank() { return bank_; }
  [[nodiscard]] const RouterStats& stats() const { return stats_; }

  /// Phase 1: drain consumption channels (<=1 flit per channel per cycle).
  void drain_consumption(Cycle now);
  /// Phase 2: route + resource allocation for heads at VC fronts.  Only VCs
  /// with a set bit in the per-node pending word are visited (heads set their
  /// bit on arrival, cleared on successful allocation); the ascending bit
  /// scan is port-major, the exact order of the exhaustive port/VC scan.
  void allocate(Cycle now);
  /// Phase 3: switch traversal; moves flits out of input VCs.
  void traverse(Cycle now);

  /// True if any flit or claimed VC is present (activity detection).
  [[nodiscard]] bool busy() const;

private:
  friend class Network;

  struct OutLink {
    NodeId nbr = kInvalidNode;
    int nbr_port = -1;  // input port index at the neighbour
    // Cached arena spans of the neighbour (set once at wiring): the storage
    // stays in the arena, these just skip the node-stride multiplies on the
    // traverse/allocate hot paths.
    VcHot* nbr_vhot = nullptr;
    Flit* nbr_vflit = nullptr;
    NodeWords* nbr_words = nullptr;
  };

  [[nodiscard]] int slot(int port, int v) const { return port * vmax_ + v; }
  [[nodiscard]] VcHot& vc(int port, int v) { return vhot_[slot(port, v)]; }
  [[nodiscard]] WormPtr& vc_owner(int port, int v) {
    return vowner_[slot(port, v)];
  }
  [[nodiscard]] RingView vc_ring(int s) {
    return RingView(vflit_ + s * vc_cap_, &vhot_[s].ring, vc_cap_);
  }
  [[nodiscard]] RingView cons_ring(int c) {
    return RingView(cflit_ + c * cons_cap_, &chot_[c].ring, cons_cap_);
  }
  [[nodiscard]] int num_vcs(int port) const {
    return port == static_cast<int>(Dir::Local) ? params_->inj_vcs_total()
                                                : params_->vcs_total();
  }
  /// VC-index range [first, last) usable by worms of `vnet` on `port`.
  /// Parameter-derived only, so it answers for any router in the network.
  [[nodiscard]] std::pair<int, int> vc_range(int port, VNet vnet) const;

  bool try_allocate_head(int port, int s, VcHot& v, Cycle now);
  /// Move one flit out of routed VC `v` if its resources permit this cycle;
  /// returns whether a flit moved (checks and move fused in one pass).
  bool try_move_flit(int port, int vidx, VcHot& v, Cycle now);
  int find_free_cons_channel() const;

  /// A head flit was pushed into (port, v) here: register it for allocation
  /// by setting its pending-word bit (bit order == the old sorted list).
  void note_head_arrival(int port, int v);

  Network& net_;
  RouterArena* arena_;
  const NocParams* params_;
  NodeId id_;
  // Arena spans for this node (see arena.h for the layout).
  VcHot* vhot_;
  Flit* vflit_;
  ConsHot* chot_;
  Flit* cflit_;
  NodeWords* words_;
  WormPtr* vowner_;
  WormPtr* cowner_;
  int vmax_;
  int vc_cap_;
  int cons_cap_;
  int cons_n_;
  std::uint64_t vc_field_mask_;  // low vmax_ bits: one port's slot field
  std::array<OutLink, kNumLinkDirs> out_;
  IAckBufferBank bank_;
  RouterStats stats_;
};

} // namespace mdw::noc
