// i-ack buffer bank at a router interface (paper Fig. 7).
//
// A small set (2-4) of entries, memory-mapped to the local processor, used by
// the MI-MA frameworks: i-reserve worms allocate an entry on their way out,
// sharer nodes post their invalidation acknowledgment into the local entry,
// and i-gather worms pick up the accumulated count.  A gather worm arriving
// before the entry is complete is absorbed into the entry's message field
// (virtual cut-through + deferred delivery) and re-injected when the missing
// post arrives.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "noc/worm.h"
#include "sim/types.h"

namespace mdw::noc {

class IAckBufferBank {
public:
  explicit IAckBufferBank(int num_entries) : entries_(num_entries) {}

  [[nodiscard]] int capacity() const { return static_cast<int>(entries_.size()); }
  [[nodiscard]] bool has_free() const {
    return in_use_ < static_cast<int>(entries_.size());
  }

  /// Reserve an entry for `txn` expecting `expected` posts.  Returns false
  /// when the bank is full (the reserving worm must block: hold-and-wait).
  /// The schemes reserve each (router, txn) at most once, so a reservation
  /// finding an existing entry (demand-allocated by an early post or gather
  /// pickup) only raises the expected-post count to `expected`.
  [[nodiscard]] bool reserve(TxnId txn, int expected);

  /// Post `count` acknowledgments for `txn`.  Creates the entry on demand if
  /// no reservation exists (posts never block in hardware: the posting node
  /// retries via its NI; we model the common case where reservation precedes
  /// the post, and fall back to demand-allocation).  Returns false if the
  /// bank is full and no entry exists — caller must retry later.
  /// If the post completes the entry and a gather worm is parked in it, the
  /// worm is released: it is returned to the caller for re-injection.
  [[nodiscard]] std::optional<WormPtr> post(TxnId txn, int count, bool* accepted);

  /// Gather-worm pickup.  If the entry for `txn` is complete, returns its
  /// accumulated count and frees it.  If incomplete, parks `worm` in the
  /// entry (deferred delivery) and returns nullopt.  If no entry exists at
  /// all, one is demand-allocated (expected = 1) to park the worm in; if the
  /// bank is full the worm must block upstream — indicated by *blocked.
  [[nodiscard]] std::optional<int> pickup(TxnId txn, int expected_if_new,
                                          const WormPtr& worm, bool* blocked);

  /// Cached occupancy (maintained at entry grant/release): the trace path
  /// samples this once per allocation event, so it must not rescan the bank.
  [[nodiscard]] int entries_in_use() const { return in_use_; }
  [[nodiscard]] std::uint64_t deferred_count() const { return deferred_; }
  [[nodiscard]] std::uint64_t reserve_blocked_count() const { return reserve_blocked_; }
  void note_reserve_blocked() { ++reserve_blocked_; }

private:
  struct Entry {
    bool valid = false;
    TxnId txn = 0;
    int expected = 0;
    int arrived = 0;
    int count = 0;
    WormPtr parked; // deferred gather worm, if any
  };

  Entry* find(TxnId txn);
  /// Grab a free entry (counted into in_use_); the caller fills it in.
  Entry* alloc();
  /// Reset `e` to invalid and release its occupancy count.
  void release(Entry& e);

  std::vector<Entry> entries_;
  int in_use_ = 0;
  std::uint64_t deferred_ = 0;
  std::uint64_t reserve_blocked_ = 0;
};

} // namespace mdw::noc
