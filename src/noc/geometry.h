// 2-D mesh geometry: coordinates, directions, and id <-> coordinate maps.
#pragma once

#include <array>
#include <cassert>
#include <cstdint>
#include <string>

#include "sim/types.h"

namespace mdw::noc {

/// Router port directions. Local is the processor/NI port.
enum class Dir : std::uint8_t { North = 0, South, East, West, Local };

inline constexpr int kNumPorts = 5;     // N,S,E,W,Local
inline constexpr int kNumLinkDirs = 4;  // N,S,E,W

[[nodiscard]] constexpr Dir opposite(Dir d) {
  switch (d) {
    case Dir::North: return Dir::South;
    case Dir::South: return Dir::North;
    case Dir::East: return Dir::West;
    case Dir::West: return Dir::East;
    default: return Dir::Local;
  }
}

[[nodiscard]] inline const char* dir_name(Dir d) {
  static constexpr const char* names[] = {"N", "S", "E", "W", "L"};
  return names[static_cast<int>(d)];
}

struct Coord {
  int x = 0;
  int y = 0;
  bool operator==(const Coord&) const = default;
};

/// Mesh dimensions and the row-major node-id mapping.
class MeshShape {
public:
  MeshShape(int width, int height) : w_(width), h_(height) {
    assert(width > 0 && height > 0);
  }

  [[nodiscard]] int width() const { return w_; }
  [[nodiscard]] int height() const { return h_; }
  [[nodiscard]] int num_nodes() const { return w_ * h_; }

  [[nodiscard]] NodeId id_of(Coord c) const {
    assert(contains(c));
    return c.y * w_ + c.x;
  }
  [[nodiscard]] Coord coord_of(NodeId id) const {
    assert(id >= 0 && id < num_nodes());
    return Coord{id % w_, id / w_};
  }
  [[nodiscard]] bool contains(Coord c) const {
    return c.x >= 0 && c.x < w_ && c.y >= 0 && c.y < h_;
  }

  /// Neighbour in direction d, or kInvalidNode at the mesh edge.
  [[nodiscard]] NodeId neighbor(NodeId id, Dir d) const {
    Coord c = coord_of(id);
    switch (d) {
      case Dir::North: c.y += 1; break;  // +Y is "north"
      case Dir::South: c.y -= 1; break;
      case Dir::East: c.x += 1; break;
      case Dir::West: c.x -= 1; break;
      default: return kInvalidNode;
    }
    return contains(c) ? id_of(c) : kInvalidNode;
  }

  /// Direction of the single-hop move a -> b; a and b must be adjacent.
  [[nodiscard]] Dir step_dir(NodeId a, NodeId b) const {
    const Coord ca = coord_of(a), cb = coord_of(b);
    if (cb.x == ca.x + 1 && cb.y == ca.y) return Dir::East;
    if (cb.x == ca.x - 1 && cb.y == ca.y) return Dir::West;
    if (cb.y == ca.y + 1 && cb.x == ca.x) return Dir::North;
    if (cb.y == ca.y - 1 && cb.x == ca.x) return Dir::South;
    assert(false && "nodes are not adjacent");
    return Dir::Local;
  }

  [[nodiscard]] bool adjacent(NodeId a, NodeId b) const {
    const Coord ca = coord_of(a), cb = coord_of(b);
    const int dx = ca.x - cb.x, dy = ca.y - cb.y;
    return (dx == 0 && (dy == 1 || dy == -1)) ||
           (dy == 0 && (dx == 1 || dx == -1));
  }

  [[nodiscard]] int manhattan(NodeId a, NodeId b) const {
    const Coord ca = coord_of(a), cb = coord_of(b);
    return std::abs(ca.x - cb.x) + std::abs(ca.y - cb.y);
  }

  [[nodiscard]] std::string to_string(NodeId id) const {
    const Coord c = coord_of(id);
    return "(" + std::to_string(c.x) + "," + std::to_string(c.y) + ")";
  }

private:
  int w_, h_;
};

} // namespace mdw::noc
