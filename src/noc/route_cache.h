// Memoized base-routing paths for unicast worms.
//
// Every protocol-level unicast (acks, data replies, recalls) re-derives its
// hop sequence with append_unicast_path and then re-validates BRCP
// conformance — but the path is a pure function of (algo, src, dst) on a
// fixed mesh, and real traffic repeats (src, dst) pairs heavily (every
// sharer acks to the same home).  The cache stores the hop vector keyed on
// the packed triple; hits skip both path construction and the conformance
// re-check (the path was validated when the entry was filled).
//
// Bounded open-addressed table with a short linear probe window and
// second-chance (clock) eviction inside the window: a lookup sets the
// entry's reference bit, an insert into a full window first spends the
// reference bits of the resident entries and then replaces the first entry
// without one.  Determinism: the cache only memoizes a pure function, so a
// hit returns exactly the hops a miss would have built — simulated behaviour
// is bit-identical with the cache on, off, or of any size.
#pragma once

#include <cstdint>
#include <vector>

#include "noc/routing.h"

namespace mdw::noc {

struct RouteCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
};

class RouteCache {
public:
  /// `entries` bounds the table (rounded up to a power of two); 0 disables
  /// the cache entirely (find() always misses, insert() is a no-op).
  explicit RouteCache(int entries) {
    if (entries <= 0) return;
    std::size_t n = 1;
    while (n < static_cast<std::size_t>(entries)) n <<= 1;
    slots_.resize(n);
    mask_ = n - 1;
  }

  [[nodiscard]] bool enabled() const { return !slots_.empty(); }
  [[nodiscard]] const RouteCacheStats& stats() const { return stats_; }

  /// The memoized hop sequence for (algo, src, dst), or nullptr on a miss.
  [[nodiscard]] const std::vector<NodeId>* find(RoutingAlgo algo, NodeId src,
                                                NodeId dst) {
    if (!enabled()) return nullptr;
    const std::uint64_t key = pack(algo, src, dst);
    const std::size_t base = index_of(key);
    for (std::size_t i = 0; i < kProbeWindow; ++i) {
      Slot& s = slots_[(base + i) & mask_];
      if (s.used && s.key == key) {
        s.ref = true;
        ++stats_.hits;
        return &s.path;
      }
    }
    ++stats_.misses;
    return nullptr;
  }

  void insert(RoutingAlgo algo, NodeId src, NodeId dst, const NodeId* hops,
              std::size_t n) {
    if (!enabled()) return;
    const std::uint64_t key = pack(algo, src, dst);
    const std::size_t base = index_of(key);
    // Prefer an empty slot in the probe window; otherwise second-chance.
    Slot* victim = nullptr;
    for (std::size_t i = 0; i < kProbeWindow; ++i) {
      Slot& s = slots_[(base + i) & mask_];
      if (!s.used) {
        victim = &s;
        break;
      }
      if (victim == nullptr && !s.ref) victim = &s;
      s.ref = false;  // spend the reference bit as the clock hand passes
    }
    if (victim == nullptr) victim = &slots_[base];  // all referenced: evict head
    if (victim->used) ++stats_.evictions;
    victim->used = true;
    victim->ref = false;
    victim->key = key;
    victim->path.assign(hops, hops + n);
  }

private:
  static constexpr std::size_t kProbeWindow = 4;

  struct Slot {
    bool used = false;
    bool ref = false;
    std::uint64_t key = 0;
    std::vector<NodeId> path;
  };

  static std::uint64_t pack(RoutingAlgo algo, NodeId src, NodeId dst) {
    return (static_cast<std::uint64_t>(algo) << 48) |
           (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 24) |
           static_cast<std::uint64_t>(static_cast<std::uint32_t>(dst));
  }
  [[nodiscard]] std::size_t index_of(std::uint64_t key) const {
    return static_cast<std::size_t>(key * 0xff51afd7ed558ccdull >> 32) & mask_;
  }

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  RouteCacheStats stats_;
};

} // namespace mdw::noc
