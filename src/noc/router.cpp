#include "noc/router.h"

#include <algorithm>
#include <bit>
#include <cassert>

#include "noc/network.h"

namespace mdw::noc {

Router::Router(Network& net, NodeId id, const NocParams& p)
    : net_(net), id_(id), params_(p), cons_(p.consumption_channels),
      bank_(p.iack_entries) {
  for (int port = 0; port < kNumPorts; ++port) {
    assert(num_vcs(port) < 32 && "routed_mask_ is a 32-bit map per port");
    vcs_[port].resize(static_cast<std::size_t>(num_vcs(port)));
    for (auto& v : vcs_[port]) v.buf.init(p.vc_buffer_flits);
  }
  for (auto& ch : cons_) ch.buf.init(p.cons_buffer_flits);
}

std::pair<int, int> Router::vc_range(int port, VNet vnet) const {
  const int per = port == static_cast<int>(Dir::Local) ? params_.inj_vcs_per_vnet
                                                       : params_.vcs_per_vnet;
  const int first = static_cast<int>(vnet) * per;
  return {first, first + per};
}

int Router::find_free_cons_channel() const {
  for (std::size_t i = 0; i < cons_.size(); ++i)
    if (!cons_[i].busy()) return static_cast<int>(i);
  return -1;
}

void Router::drain_consumption(Cycle now) {
  if (cons_flits_ == 0) return;
  for (auto& ch : cons_) {
    if (ch.buf.empty()) continue;
    if (ch.buf.front().arrival >= now) {
      net_.ff_gate(ch.buf.front().arrival + 1);
      continue;
    }
    const Flit f = ch.buf.front();
    ch.buf.pop_front();
    net_.ff_note_acted();
    --cons_flits_;
    --active_work_;
    net_.on_cons_flit(id_, -1);
    net_.on_flit_removed();
    ++stats_.flits_consumed;
    if (f.tail) {
      // Hand the channel's reference straight through to on_delivery: zero
      // refcount traffic per consumed worm (this ran once per consumed flit
      // when it was a shared_ptr copy), which also keeps the sharded
      // kernel's phase-1 drain free of refcount races on absorb copies.
      const bool fin = ch.final_dest;
      ch.final_dest = false;
      net_.on_delivery(id_, std::move(ch.worm), fin, now);
    }
  }
  if (active_work_ == 0) net_.note_maybe_idle(id_);
}

bool Router::try_allocate_head(InputVc& v, Cycle now) {
  assert(!v.buf.empty() && v.buf.front().head && !v.routed);
  if (now < v.ready_at) {  // router pipeline delay
    net_.ff_gate(v.ready_at);
    return false;
  }
  const WormPtr& w = v.owner;
  assert(w != nullptr);
  assert(w->path[w->head_hop] == id_);

  const NodeId adaptive_dst = w->dests.back().node;
  if (w->adaptive && w->head_hop + 2 >= w->path.size() &&
      id_ != adaptive_dst) {
    // Dynamic adaptive unicast: extend (or re-decide) the next hop, picking
    // the permitted direction whose downstream VCs have the most free space.
    if (w->head_hop + 2 == w->path.size()) w->path.pop_back();  // re-decide
    const auto dirs =
        permitted_dirs(w->adaptive_algo, net_.mesh(), id_, adaptive_dst);
    assert(!dirs.empty());
    int best_space = -1;
    NodeId best = kInvalidNode;
    for (Dir dir : dirs) {
      const OutLink& link = out_[static_cast<int>(dir)];
      auto [lo, hi] = link.nbr->vc_range(link.nbr_port, w->vnet);
      if (w->vc_class >= 0) {
        lo = lo + w->vc_class;
        hi = lo + 1;
      }
      int space = 0;
      for (int cand = lo; cand < hi; ++cand) {
        const InputVc& dvc = link.nbr->vc(link.nbr_port, cand);
        if (dvc.free()) space += params_.vc_buffer_flits;
      }
      if (space > best_space) {
        best_space = space;
        best = net_.mesh().neighbor(id_, dir);
      }
    }
    w->path.push_back(best);
  }

  const bool last_router = (w->head_hop + 1 == w->path.size());
  const bool is_dest =
      w->next_dest < w->dests.size() && w->dests[w->next_dest].node == id_;
  assert(is_dest || !last_router);

  const DestAction action =
      is_dest ? w->dests[w->next_dest].action : DestAction::Deliver;

  // Resource acquisition is all-or-nothing: probe first, then commit.
  int out_port = -1, out_vc = -1;
  if (!last_router) {
    const NodeId next = w->path[w->head_hop + 1];
    out_port = static_cast<int>(net_.mesh().step_dir(id_, next));
    const OutLink& link = out_[out_port];
    auto [lo, hi] = link.nbr->vc_range(link.nbr_port, w->vnet);
    if (w->vc_class >= 0) {
      assert(w->vc_class < params_.vcs_per_vnet);
      lo = lo + w->vc_class;
      hi = lo + 1;
    }
    for (int cand = lo; cand < hi; ++cand) {
      if (link.nbr->vc(link.nbr_port, cand).free()) {
        out_vc = cand;
        break;
      }
    }
  }

  if (is_dest && action == DestAction::GatherDeposit) {
    // Final destination of a non-trunk gather: the worm sinks into this
    // router's i-ack bank and its count is posted there (via the NI retry
    // queue, so a momentarily full bank cannot deadlock the channel).
    assert(w->kind == WormKind::Gather && last_router);
    w->next_dest += 1;
    v.routed = true;
    v.drain_to_bank = true;
    v.deposit_at_tail = true;
    return true;
  }

  if (is_dest && action == DestAction::GatherPickup) {
    assert(w->kind == WormKind::Gather && !last_router);
    // Completed entry -> pick up and move on (needs the output VC).
    // Incomplete -> park in the bank (virtual cut-through, no output needed).
    bool blocked = false;
    if (out_vc < 0) {
      // Cannot tell yet whether the pickup completes; to keep the decision
      // simple (and conservative) we require the output VC before touching
      // the bank, matching a hardware pipeline that allocates the VC first.
      // Exception: if the entry is certainly incomplete we may park now.
      auto parked = bank_.pickup(w->txn, w->dests[w->next_dest].expected_posts,
                                 w, &blocked);
      if (blocked) {
        net_.ff_note_blocked();
        ++stats_.bank_blocked_cycles;
        ++stats_.alloc_stall_cycles;
        return false;
      }
      if (parked.has_value()) {
        // Entry was already complete but we lack an output VC: we consumed
        // the count, carry it and wait for the VC next cycle.
        w->gathered += *parked;
        w->next_dest += 1;
        // Re-mark as a plain forward from here on (no dest at this router).
        net_.ff_note_acted();  // bank state changed despite returning false
        ++stats_.alloc_stall_cycles;
        net_.count_link_stall(id_, static_cast<Dir>(out_port));
        if (net_.tracer()) {
          net_.trace_bank_occupancy(id_, bank_.entries_in_use(), now);
        }
        return false;
      }
      // Parked: worm drains into the bank.
      w->next_dest += 1;
      v.routed = true;
      v.drain_to_bank = true;
      net_.on_gather_deferred();
      if (net_.tracer()) {
        net_.trace_bank_occupancy(id_, bank_.entries_in_use(), now);
      }
      return true;
    }
    auto parked = bank_.pickup(w->txn, w->dests[w->next_dest].expected_posts,
                               w, &blocked);
    if (blocked) {
      net_.ff_note_blocked();
      ++stats_.bank_blocked_cycles;
      ++stats_.alloc_stall_cycles;
      return false;
    }
    w->next_dest += 1;
    v.routed = true;
    if (net_.tracer()) {
      net_.trace_bank_occupancy(id_, bank_.entries_in_use(), now);
    }
    if (parked.has_value()) {
      w->gathered += *parked;
      v.out_port = out_port;
      v.out_vc = out_vc;
      OutLink& link = out_[out_port];
      link.nbr->vc(link.nbr_port, out_vc).owner = w;
    } else {
      v.drain_to_bank = true;
      net_.on_gather_deferred();
    }
    return true;
  }

  // Non-gather processing.
  const bool needs_cons =
      is_dest && (action == DestAction::Deliver ||
                  action == DestAction::DeliverAndReserve);
  const bool needs_reserve =
      is_dest && (action == DestAction::DeliverAndReserve ||
                  action == DestAction::ReserveOnly);
  assert(!(action == DestAction::ReserveOnly && last_router));

  int cons_ch = -1;
  if (needs_cons) {
    cons_ch = find_free_cons_channel();
    if (cons_ch < 0) {
      net_.ff_note_blocked();
      ++stats_.cons_blocked_cycles;
      ++stats_.alloc_stall_cycles;
      return false;
    }
  }
  if (!last_router && out_vc < 0) {
    net_.ff_note_blocked();
    ++stats_.alloc_stall_cycles;
    net_.count_link_stall(id_, static_cast<Dir>(out_port));
    return false;
  }
  if (needs_reserve &&
      !bank_.reserve(w->txn, w->dests[w->next_dest].expected_posts)) {
    net_.ff_note_blocked();
    ++stats_.bank_blocked_cycles;
    ++stats_.alloc_stall_cycles;
    return false;
  }
  if (needs_reserve && net_.tracer()) {
    net_.trace_bank_occupancy(id_, bank_.entries_in_use(), now);
  }

  // Commit.
  v.routed = true;
  v.final_here = last_router;
  v.deliver_here = needs_cons;
  if (needs_cons) {
    v.cons_ch = cons_ch;
    cons_[cons_ch].worm = w;
    cons_[cons_ch].final_dest = last_router;
  }
  if (!last_router) {
    v.out_port = out_port;
    v.out_vc = out_vc;
    OutLink& link = out_[out_port];
    link.nbr->vc(link.nbr_port, out_vc).owner = w;
  }
  if (is_dest) w->next_dest += 1;
  return true;
}

void Router::note_head_arrival(int port, int v) {
  const auto key = static_cast<std::uint16_t>((port << 8) | v);
  const auto it =
      std::lower_bound(pending_heads_.begin(), pending_heads_.end(), key);
  if (it == pending_heads_.end() || *it != key) {
    pending_heads_.insert(it, key);
    net_.on_pending_head(id_, 1);
  }
}

void Router::allocate(Cycle now) {
  // The sorted pending-head list visits exactly the VCs the exhaustive
  // (port-major, then VC-index) scan would have tried, in the same order.
  for (std::size_t i = 0; i < pending_heads_.size();) {
    const int port = pending_heads_[i] >> 8;
    const int vi = pending_heads_[i] & 0xff;
    InputVc& v = vcs_[port][vi];
    assert(!v.routed && !v.buf.empty() && v.buf.front().head);
    const Cycle arrival = v.buf.front().arrival;
    if (arrival >= now) {
      net_.ff_gate(arrival + 1);
      ++i;
      continue;
    }
    if (try_allocate_head(v, now)) {
      net_.ff_note_acted();
      routed_mask_[port] |= 1u << vi;
      ports_mask_ |= 1u << port;
      pending_heads_.erase(pending_heads_.begin() +
                           static_cast<std::ptrdiff_t>(i));
      net_.on_pending_head(id_, -1);
      continue;
    }
    ++i;  // blocked on a resource or the pipeline gate: retry next cycle
  }
}

bool Router::try_move_flit(int port, int vidx, InputVc& v, Cycle now) {
  // Feasibility checks and the move itself in one pass, so the flit, output
  // link, and downstream VC are each loaded once (a separate can_move
  // predicate re-read all of them on the move).
  assert(v.routed);
  if (v.buf.empty()) return false;
  if (v.buf.front().arrival >= now) {
    net_.ff_gate(v.buf.front().arrival + 1);
    return false;
  }
  const Flit f = v.buf.front();

  if (v.drain_to_bank) {
    v.buf.pop_front();
    net_.on_flit_removed();
    --active_work_;
    if (f.tail && v.deposit_at_tail) net_.on_gather_deposit(id_, v.owner);
  } else if (v.final_here) {
    auto& ch = cons_[v.cons_ch];
    if (ch.buf.full()) return false;
    v.buf.pop_front();
    ch.buf.push_back(Flit{f.head, f.tail, now});
    ++cons_flits_;
    net_.on_cons_flit(id_, 1);
    // flit stays resident (moved within this router): no live-flit change
  } else {
    OutLink& link = out_[v.out_port];
    if (link.used_cycle == now) return false;  // link bandwidth: 1 flit/cycle
    InputVc& dvc = link.nbr->vc(link.nbr_port, v.out_vc);
    if (dvc.buf.full()) return false;
    if (v.deliver_here && cons_[v.cons_ch].buf.full()) return false;
    link.used_cycle = now;
    v.buf.pop_front();
    dvc.buf.push_back(Flit{f.head, f.tail, now});
    --active_work_;
    ++link.nbr->active_work_;
    net_.wake_router(link.nbr->id_);
    if (f.head) {
      v.owner->head_hop += 1;
      dvc.ready_at = now + params_.router_delay;
      link.nbr->note_head_arrival(link.nbr_port, v.out_vc);
    }
    ++stats_.flits_forwarded;
    net_.count_link_flit(id_, static_cast<Dir>(v.out_port));
    if (v.deliver_here) {
      auto& ch = cons_[v.cons_ch];
      ch.buf.push_back(Flit{f.head, f.tail, now});
      ++cons_flits_;
      ++active_work_;
      net_.on_cons_flit(id_, 1);
      net_.on_flit_copied();
      if (f.tail) net_.on_absorb_delivery();
    }
  }

  if (f.tail) {
    // Worm tail has left this VC: release it.
    v.owner = nullptr;
    v.reset_route();
    routed_mask_[port] &= ~(1u << vidx);
    if (routed_mask_[port] == 0) ports_mask_ &= ~(1u << port);
  }
  if (active_work_ == 0) net_.note_maybe_idle(id_);
  net_.ff_note_acted();
  return true;
}

void Router::traverse(Cycle now) {
  if (active_work_ == 0) return;
  if (ports_mask_ == 0) {  // flits present but none routed: no-op sweep
    rr_port_ = rr_port_ + 1 == kNumPorts ? 0 : rr_port_ + 1;
    return;
  }
  // Iterate only the ports holding a routed worm, rotated by the round-robin
  // pointer — the same (rr_port_ + pi) mod kNumPorts visit order as a full
  // port scan, with the (typically three or four) idle ports skipped.
  const int pr = rr_port_;
  std::uint32_t prot =
      pr == 0 ? ports_mask_
              : ((ports_mask_ >> pr) | (ports_mask_ << (kNumPorts - pr))) &
                    ((1u << kNumPorts) - 1);
  while (prot != 0) {
    const int poff = std::countr_zero(prot);
    prot &= prot - 1;
    int port = pr + poff;
    if (port >= kNumPorts) port -= kNumPorts;
    const std::uint32_t mask = routed_mask_[port];
    if (mask == 0) continue;  // tail left during this sweep
    const int nv = num_vcs(port);
    const int base = rr_vc_[port];
    // Only routed VCs can move a flit; visiting their mask bits rotated by
    // the round-robin pointer preserves the exact arbitration order of the
    // exhaustive VC scan while skipping the (common) empty VCs entirely.
    std::uint32_t rot =
        base == 0 ? mask
                  : ((mask >> base) | (mask << (nv - base))) & ((1u << nv) - 1);
    while (rot != 0) {
      const int off = std::countr_zero(rot);
      int vidx = base + off;
      if (vidx >= nv) vidx -= nv;
      InputVc& v = vcs_[port][vidx];
      if (try_move_flit(port, vidx, v, now)) {
        rr_vc_[port] = vidx + 1 == nv ? 0 : vidx + 1;
        break;  // one flit per input port per cycle
      }
      rot &= rot - 1;
    }
  }
  rr_port_ = rr_port_ + 1 == kNumPorts ? 0 : rr_port_ + 1;
}

bool Router::busy() const { return active_work_ > 0; }

} // namespace mdw::noc
