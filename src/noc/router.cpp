#include "noc/router.h"

#include <bit>
#include <cassert>

#include "noc/network.h"

namespace mdw::noc {

Router::Router(Network& net, RouterArena& arena, NodeId id, const NocParams& p)
    : net_(net), arena_(&arena), params_(&p), id_(id),
      vhot_(arena.vc_hot(id)), vflit_(arena.vc_flits(id)),
      chot_(arena.cons_hot(id)), cflit_(arena.cons_flits(id)),
      words_(&arena.words(id)), vowner_(arena.vc_owner(id)),
      cowner_(arena.cons_owner(id)), vmax_(arena.vmax()),
      vc_cap_(p.vc_buffer_flits), cons_cap_(p.cons_buffer_flits),
      cons_n_(p.consumption_channels),
      vc_field_mask_((std::uint64_t{1} << vmax_) - 1),
      bank_(p.iack_entries) {
  for (int port = 0; port < kNumPorts; ++port) {
    assert(num_vcs(port) <= vmax_ && "arena slot stride covers every port");
  }
}

std::pair<int, int> Router::vc_range(int port, VNet vnet) const {
  const int per = port == static_cast<int>(Dir::Local)
                      ? params_->inj_vcs_per_vnet
                      : params_->vcs_per_vnet;
  const int first = static_cast<int>(vnet) * per;
  return {first, first + per};
}

int Router::find_free_cons_channel() const {
  for (int i = 0; i < cons_n_; ++i)
    if (!chot_[i].busy()) return i;
  return -1;
}

void Router::drain_consumption(Cycle now) {
  if (words_->cons_flits == 0) return;
  for (int c = 0; c < cons_n_; ++c) {
    ConsHot& ch = chot_[c];
    RingView ring = cons_ring(c);
    if (ring.empty()) continue;
    if (ring.front().arrival() >= now) {
      net_.ff_gate(ring.front().arrival() + 1);
      continue;
    }
    const Flit f = ring.front();
    ring.pop_front();
    net_.ff_note_acted();
    --words_->cons_flits;
    --words_->active_work;
    net_.on_cons_flit(id_, -1);
    net_.on_flit_removed();
    ++stats_.flits_consumed;
    if (f.tail()) {
      // Hand the channel's reference straight through to on_delivery: zero
      // refcount traffic per consumed worm (this ran once per consumed flit
      // when it was a shared_ptr copy), which also keeps the sharded
      // kernel's phase-1 drain free of refcount races on absorb copies.
      const bool fin = (ch.flags & kConsFinal) != 0;
      ch.flags = 0;
      net_.on_delivery(id_, std::move(cowner_[c]), fin, now);
    }
  }
  if (words_->active_work == 0) net_.note_maybe_idle(id_);
}

bool Router::try_allocate_head(int port, int s, VcHot& v, Cycle now) {
  (void)port;
  assert(v.ring.size > 0 && vc_ring(s).front().head() && !v.routed());
  if (now < v.ready_at) {  // router pipeline delay
    net_.ff_gate(v.ready_at);
    return false;
  }
  const WormPtr& w = vowner_[s];
  assert(w != nullptr);
  assert(w->path[w->head_hop] == id_);

  const NodeId adaptive_dst = w->dests.back().node;
  if (w->adaptive && w->head_hop + 2 >= w->path.size() &&
      id_ != adaptive_dst) {
    // Dynamic adaptive unicast: extend (or re-decide) the next hop, picking
    // the permitted direction whose downstream VCs have the most free space.
    if (w->head_hop + 2 == w->path.size()) w->path.pop_back();  // re-decide
    const auto dirs =
        permitted_dirs(w->adaptive_algo, net_.mesh(), id_, adaptive_dst);
    assert(!dirs.empty());
    int best_space = -1;
    NodeId best = kInvalidNode;
    for (Dir dir : dirs) {
      const OutLink& link = out_[static_cast<int>(dir)];
      auto [lo, hi] = vc_range(link.nbr_port, w->vnet);
      if (w->vc_class >= 0) {
        lo = lo + w->vc_class;
        hi = lo + 1;
      }
      const VcHot* nh = link.nbr_vhot;
      int space = 0;
      for (int cand = lo; cand < hi; ++cand) {
        if (nh[link.nbr_port * vmax_ + cand].free())
          space += params_->vc_buffer_flits;
      }
      if (space > best_space) {
        best_space = space;
        best = net_.mesh().neighbor(id_, dir);
      }
    }
    w->path.push_back(best);
  }

  const bool last_router = (w->head_hop + 1 == w->path.size());
  const bool is_dest =
      w->next_dest < w->dests.size() && w->dests[w->next_dest].node == id_;
  assert(is_dest || !last_router);

  const DestAction action =
      is_dest ? w->dests[w->next_dest].action : DestAction::Deliver;

  // Resource acquisition is all-or-nothing: probe first, then commit.
  int out_port = -1, out_vc = -1;
  if (!last_router) {
    const NodeId next = w->path[w->head_hop + 1];
    out_port = static_cast<int>(net_.mesh().step_dir(id_, next));
    const OutLink& link = out_[out_port];
    auto [lo, hi] = vc_range(link.nbr_port, w->vnet);
    if (w->vc_class >= 0) {
      assert(w->vc_class < params_->vcs_per_vnet);
      lo = lo + w->vc_class;
      hi = lo + 1;
    }
    const VcHot* nh = link.nbr_vhot;
    for (int cand = lo; cand < hi; ++cand) {
      if (nh[link.nbr_port * vmax_ + cand].free()) {
        out_vc = cand;
        break;
      }
    }
  }

  if (is_dest && action == DestAction::GatherDeposit) {
    // Final destination of a non-trunk gather: the worm sinks into this
    // router's i-ack bank and its count is posted there (via the NI retry
    // queue, so a momentarily full bank cannot deadlock the channel).
    assert(w->kind == WormKind::Gather && last_router);
    w->next_dest += 1;
    v.flags |= kVcRouted | kVcDrainToBank | kVcDepositAtTail;
    return true;
  }

  if (is_dest && action == DestAction::GatherPickup) {
    assert(w->kind == WormKind::Gather && !last_router);
    // Completed entry -> pick up and move on (needs the output VC).
    // Incomplete -> park in the bank (virtual cut-through, no output needed).
    bool blocked = false;
    if (out_vc < 0) {
      // Cannot tell yet whether the pickup completes; to keep the decision
      // simple (and conservative) we require the output VC before touching
      // the bank, matching a hardware pipeline that allocates the VC first.
      // Exception: if the entry is certainly incomplete we may park now.
      auto parked = bank_.pickup(w->txn, w->dests[w->next_dest].expected_posts,
                                 w, &blocked);
      if (blocked) {
        net_.ff_note_blocked();
        ++stats_.bank_blocked_cycles;
        ++stats_.alloc_stall_cycles;
        return false;
      }
      if (parked.has_value()) {
        // Entry was already complete but we lack an output VC: we consumed
        // the count, carry it and wait for the VC next cycle.
        w->gathered += *parked;
        w->next_dest += 1;
        // Re-mark as a plain forward from here on (no dest at this router).
        net_.ff_note_acted();  // bank state changed despite returning false
        ++stats_.alloc_stall_cycles;
        net_.count_link_stall(id_, static_cast<Dir>(out_port));
        if (net_.tracer()) {
          net_.trace_bank_occupancy(id_, bank_.entries_in_use(), now);
        }
        return false;
      }
      // Parked: worm drains into the bank.
      w->next_dest += 1;
      v.flags |= kVcRouted | kVcDrainToBank;
      net_.on_gather_deferred();
      if (net_.tracer()) {
        net_.trace_bank_occupancy(id_, bank_.entries_in_use(), now);
      }
      return true;
    }
    auto parked = bank_.pickup(w->txn, w->dests[w->next_dest].expected_posts,
                               w, &blocked);
    if (blocked) {
      net_.ff_note_blocked();
      ++stats_.bank_blocked_cycles;
      ++stats_.alloc_stall_cycles;
      return false;
    }
    w->next_dest += 1;
    v.flags |= kVcRouted;
    if (net_.tracer()) {
      net_.trace_bank_occupancy(id_, bank_.entries_in_use(), now);
    }
    if (parked.has_value()) {
      w->gathered += *parked;
      v.out_port = static_cast<std::int8_t>(out_port);
      v.out_vc = static_cast<std::int8_t>(out_vc);
      const OutLink& link = out_[out_port];
      const int ds = link.nbr_port * vmax_ + out_vc;
      arena_->vc_owner(link.nbr)[ds] = w;
      link.nbr_vhot[ds].claimed = 1;
    } else {
      v.flags |= kVcDrainToBank;
      net_.on_gather_deferred();
    }
    return true;
  }

  // Non-gather processing.
  const bool needs_cons =
      is_dest && (action == DestAction::Deliver ||
                  action == DestAction::DeliverAndReserve);
  const bool needs_reserve =
      is_dest && (action == DestAction::DeliverAndReserve ||
                  action == DestAction::ReserveOnly);
  assert(!(action == DestAction::ReserveOnly && last_router));

  int cons_ch = -1;
  if (needs_cons) {
    cons_ch = find_free_cons_channel();
    if (cons_ch < 0) {
      net_.ff_note_blocked();
      ++stats_.cons_blocked_cycles;
      ++stats_.alloc_stall_cycles;
      return false;
    }
  }
  if (!last_router && out_vc < 0) {
    net_.ff_note_blocked();
    ++stats_.alloc_stall_cycles;
    net_.count_link_stall(id_, static_cast<Dir>(out_port));
    return false;
  }
  if (needs_reserve &&
      !bank_.reserve(w->txn, w->dests[w->next_dest].expected_posts)) {
    net_.ff_note_blocked();
    ++stats_.bank_blocked_cycles;
    ++stats_.alloc_stall_cycles;
    return false;
  }
  if (needs_reserve && net_.tracer()) {
    net_.trace_bank_occupancy(id_, bank_.entries_in_use(), now);
  }

  // Commit.
  v.flags |= kVcRouted;
  if (last_router) v.flags |= kVcFinalHere;
  if (needs_cons) {
    v.flags |= kVcDeliverHere;
    v.cons_ch = static_cast<std::int8_t>(cons_ch);
    cowner_[cons_ch] = w;
    chot_[cons_ch].flags =
        static_cast<std::uint8_t>(kConsBusy | (last_router ? kConsFinal : 0));
  }
  if (!last_router) {
    v.out_port = static_cast<std::int8_t>(out_port);
    v.out_vc = static_cast<std::int8_t>(out_vc);
    const OutLink& link = out_[out_port];
    const int ds = link.nbr_port * vmax_ + out_vc;
    arena_->vc_owner(link.nbr)[ds] = w;
    link.nbr_vhot[ds].claimed = 1;
  }
  if (is_dest) w->next_dest += 1;
  return true;
}

void Router::note_head_arrival(int port, int v) {
  const std::uint64_t bit = std::uint64_t{1} << slot(port, v);
  if ((words_->pending & bit) == 0) {
    words_->pending |= bit;
    net_.on_pending_head(id_, 1);
  }
}

void Router::allocate(Cycle now) {
  // Ascending bit scan of the pending word, port-major: exactly the VCs the
  // exhaustive (port-major, then VC-index) scan would have tried, in the
  // same order (the bit layout mirrors the old sorted (port << 8) | vc list).
  // Bits are only cleared by this loop (on success), never set mid-phase, so
  // the snapshot stays exact.  The snapshot also walks out from under the
  // ports loop the moment its remaining bits run out — the common cases
  // (no pending heads, or one on an early port) cost a word test, matching
  // the old empty-vector early-out.
  std::uint64_t snap = words_->pending;
  for (int port = 0; snap != 0; ++port, snap >>= vmax_) {
    std::uint64_t sub = snap & vc_field_mask_;
    while (sub != 0) {
      const int vi = std::countr_zero(sub);
      sub &= sub - 1;
      const int s = slot(port, vi);
      VcHot& v = vhot_[s];
      assert(!v.routed() && v.ring.size > 0 && vc_ring(s).front().head());
      const Cycle arrival = vc_ring(s).front().arrival();
      if (arrival >= now) {
        net_.ff_gate(arrival + 1);
        continue;
      }
      if (try_allocate_head(port, s, v, now)) {
        net_.ff_note_acted();
        words_->routed |= std::uint64_t{1} << s;
        words_->ports_mask |= static_cast<std::uint8_t>(1u << port);
        words_->pending &= ~(std::uint64_t{1} << s);
        net_.on_pending_head(id_, -1);
      }
      // else: blocked on a resource or the pipeline gate, retry next cycle
      // (the pending bit stays set).
    }
  }
}

bool Router::try_move_flit(int port, int vidx, VcHot& v, Cycle now) {
  // Feasibility checks and the move itself in one pass, so the flit, output
  // link, and downstream VC are each loaded once (a separate can_move
  // predicate re-read all of them on the move).
  assert(v.routed());
  const int s = slot(port, vidx);
  RingView ring = vc_ring(s);
  if (ring.empty()) return false;
  if (ring.front().arrival() >= now) {
    net_.ff_gate(ring.front().arrival() + 1);
    return false;
  }
  const Flit f = ring.front();

  if ((v.flags & kVcDrainToBank) != 0) {
    ring.pop_front();
    net_.on_flit_removed();
    --words_->active_work;
    if (f.tail() && (v.flags & kVcDepositAtTail) != 0) {
      net_.on_gather_deposit(id_, vowner_[s]);
    }
  } else if ((v.flags & kVcFinalHere) != 0) {
    RingView cring = cons_ring(v.cons_ch);
    if (cring.full()) return false;
    ring.pop_front();
    cring.push_back(Flit{f.head(), f.tail(), now});
    ++words_->cons_flits;
    net_.on_cons_flit(id_, 1);
    // flit stays resident (moved within this router): no live-flit change
  } else {
    Cycle& used = words_->link_used[v.out_port];
    if (used == now) return false;  // link bandwidth: 1 flit/cycle
    const OutLink& link = out_[v.out_port];
    const int ds = link.nbr_port * vmax_ + v.out_vc;
    VcHot& dvc = link.nbr_vhot[ds];
    RingView dring(link.nbr_vflit + ds * vc_cap_, &dvc.ring, vc_cap_);
    if (dring.full()) return false;
    if ((v.flags & kVcDeliverHere) != 0 && cons_ring(v.cons_ch).full())
      return false;
    used = now;
    ring.pop_front();
    dring.push_back(Flit{f.head(), f.tail(), now});
    --words_->active_work;
    ++link.nbr_words->active_work;
    net_.wake_router(link.nbr, *link.nbr_words);
    if (f.head()) {
      vowner_[s]->head_hop += 1;
      dvc.ready_at = now + params_->router_delay;
      // note_head_arrival inlined against the cached neighbour words (ds is
      // already the neighbour's slot index).
      const std::uint64_t bit = std::uint64_t{1} << ds;
      if ((link.nbr_words->pending & bit) == 0) {
        link.nbr_words->pending |= bit;
        net_.on_pending_head(link.nbr, 1);
      }
    }
    ++stats_.flits_forwarded;
    net_.count_link_flit(id_, static_cast<Dir>(static_cast<int>(v.out_port)));
    if ((v.flags & kVcDeliverHere) != 0) {
      RingView cring = cons_ring(v.cons_ch);
      cring.push_back(Flit{f.head(), f.tail(), now});
      ++words_->cons_flits;
      ++words_->active_work;
      net_.on_cons_flit(id_, 1);
      net_.on_flit_copied();
      if (f.tail()) net_.on_absorb_delivery();
    }
  }

  if (f.tail()) {
    // Worm tail has left this VC: release it.
    vowner_[s] = nullptr;
    v.flags = 0;
    v.claimed = 0;
    v.out_port = v.out_vc = v.cons_ch = -1;
    words_->routed &= ~(std::uint64_t{1} << s);
    if (((words_->routed >> (port * vmax_)) & vc_field_mask_) == 0) {
      words_->ports_mask &= static_cast<std::uint8_t>(~(1u << port));
    }
  }
  if (words_->active_work == 0) net_.note_maybe_idle(id_);
  net_.ff_note_acted();
  return true;
}

void Router::traverse(Cycle now) {
  NodeWords& w = *words_;
  if (w.active_work == 0) return;
  if (w.ports_mask == 0) {  // flits present but none routed: no-op sweep
    w.rr_port = w.rr_port + 1 == kNumPorts ? 0 : w.rr_port + 1;
    return;
  }
  // Iterate only the ports holding a routed worm, rotated by the round-robin
  // pointer — the same (rr_port + pi) mod kNumPorts visit order as a full
  // port scan, with the (typically three or four) idle ports skipped.
  const int pr = w.rr_port;
  const std::uint32_t pmask = w.ports_mask;
  std::uint32_t prot =
      pr == 0 ? pmask
              : ((pmask >> pr) | (pmask << (kNumPorts - pr))) &
                    ((1u << kNumPorts) - 1);
  while (prot != 0) {
    const int poff = std::countr_zero(prot);
    prot &= prot - 1;
    int port = pr + poff;
    if (port >= kNumPorts) port -= kNumPorts;
    const auto mask =
        static_cast<std::uint32_t>((w.routed >> (port * vmax_)) & vc_field_mask_);
    if (mask == 0) continue;  // tail left during this sweep
    const int nv = num_vcs(port);
    const int base = w.rr_vc[port];
    // Only routed VCs can move a flit; visiting their mask bits rotated by
    // the round-robin pointer preserves the exact arbitration order of the
    // exhaustive VC scan while skipping the (common) empty VCs entirely.
    std::uint32_t rot =
        base == 0 ? mask
                  : ((mask >> base) | (mask << (nv - base))) & ((1u << nv) - 1);
    while (rot != 0) {
      const int off = std::countr_zero(rot);
      int vidx = base + off;
      if (vidx >= nv) vidx -= nv;
      VcHot& v = vhot_[slot(port, vidx)];
      if (try_move_flit(port, vidx, v, now)) {
        w.rr_vc[port] = static_cast<std::uint8_t>(vidx + 1 == nv ? 0 : vidx + 1);
        break;  // one flit per input port per cycle
      }
      rot &= rot - 1;
    }
  }
  w.rr_port = w.rr_port + 1 == kNumPorts ? 0 : w.rr_port + 1;
}

bool Router::busy() const { return words_->active_work > 0; }

} // namespace mdw::noc
