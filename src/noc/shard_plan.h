// Spatial partition of a mesh for the sharded cycle kernel (DESIGN.md
// section 14).
//
// The mesh is cut into horizontal strips of whole rows, so every shard owns
// a contiguous, row-major-id range of routers (and their NIs, i-ack banks,
// and scheduler-bitmap positions).  Strips rather than general rectangles
// keep each shard's sweep a pair of contiguous id runs in the rotating
// (id - start) mod n arbitration order, which is what makes the parallel
// sweep's visit order bit-identical to the sequential kernel's.
//
// Cross-shard ordering: two routers can observe each other's same-phase
// effects only within Manhattan distance 2 (a traverse step writes its own
// router and its link neighbours; two steps interact iff those write/read
// sets overlap).  Every router within distance 2 of another shard is a
// "band" router; the plan precomputes, per band router, the cross-shard
// routers it must order itself against.  With whole-row strips those
// remotes can only lie at row offsets +-1/+-2 (same-row neighbours share the
// shard by construction), so a band router has at most 8 of them.
#pragma once

#include <cstdint>
#include <vector>

#include "noc/geometry.h"

namespace mdw::noc {

struct ShardPlan {
  struct Range {
    int lo = 0, hi = 0;  // owned node ids [lo, hi)
    int y0 = 0, y1 = 0;  // owned rows [y0, y1)
  };
  /// A band router and the cross-shard routers within Manhattan distance 2
  /// of it.  The traverse phase treats these ids as ordering checkpoints.
  struct Checkpoint {
    NodeId id = 0;
    std::vector<NodeId> remotes;
  };

  int shards = 1;
  int width = 0;
  int height = 0;
  std::vector<Range> ranges;              // one per shard
  std::vector<std::uint16_t> shard_of;    // node id -> owning shard
  std::vector<std::vector<Checkpoint>> band;  // per shard, ascending id
};

/// Partition `mesh` into at most `requested` row strips.  The shard count is
/// clamped to [1, height] (a strip must own at least one whole row); rows
/// are spread as evenly as possible (each strip gets height/shards rounded
/// either way, never differing by more than one row).
inline ShardPlan compute_shard_plan(const MeshShape& mesh, int requested) {
  ShardPlan p;
  p.width = mesh.width();
  p.height = mesh.height();
  const int w = p.width, h = p.height;
  int s = requested < 1 ? 1 : requested;
  if (s > h) s = h;
  p.shards = s;
  p.ranges.resize(static_cast<std::size_t>(s));
  p.shard_of.assign(static_cast<std::size_t>(mesh.num_nodes()), 0);
  for (int i = 0; i < s; ++i) {
    const int y0 = static_cast<int>(static_cast<std::int64_t>(i) * h / s);
    const int y1 = static_cast<int>(static_cast<std::int64_t>(i + 1) * h / s);
    p.ranges[static_cast<std::size_t>(i)] = {y0 * w, y1 * w, y0, y1};
    for (NodeId id = y0 * w; id < y1 * w; ++id) {
      p.shard_of[static_cast<std::size_t>(id)] =
          static_cast<std::uint16_t>(i);
    }
  }
  p.band.resize(static_cast<std::size_t>(s));
  if (s == 1) return p;
  // All candidate offsets for a cross-shard router within distance 2 of a
  // whole-row-strip partition (same-row offsets can never change shard).
  static constexpr int kOffsets[8][2] = {{0, 1},  {0, -1}, {0, 2},  {0, -2},
                                         {1, 1},  {1, -1}, {-1, 1}, {-1, -1}};
  for (NodeId id = 0; id < mesh.num_nodes(); ++id) {
    const Coord c = mesh.coord_of(id);
    std::vector<NodeId> remotes;
    for (const auto& off : kOffsets) {
      const Coord nc{c.x + off[0], c.y + off[1]};
      if (!mesh.contains(nc)) continue;
      const NodeId nid = mesh.id_of(nc);
      if (p.shard_of[static_cast<std::size_t>(nid)] !=
          p.shard_of[static_cast<std::size_t>(id)]) {
        remotes.push_back(nid);
      }
    }
    if (!remotes.empty()) {
      p.band[p.shard_of[static_cast<std::size_t>(id)]].push_back(
          {id, std::move(remotes)});
    }
  }
  return p;
}

} // namespace mdw::noc
