// Spatial partition of a mesh for the sharded cycle kernel (DESIGN.md
// sections 14 and 16).
//
// The mesh is cut into horizontal strips of whole rows, so every shard owns
// a contiguous, row-major-id range of routers (and their NIs, i-ack banks,
// and scheduler-bitmap positions).  Strips rather than general rectangles
// keep each shard's sweep a pair of contiguous id runs in the rotating
// (id - start) mod n arbitration order, which is what makes the parallel
// sweep's visit order bit-identical to the sequential kernel's.  For the
// same reason ANY contiguous row partition yields bit-identical results:
// visit orders derive from global ids and diagonal fronts, never from strip
// boundaries — which is what lets the cost-model overload below move
// boundaries freely for load balance.
//
// Cross-shard ordering: two routers can observe each other's same-phase
// effects only within Manhattan distance 2 (a traverse step writes its own
// router and its link neighbours; two steps interact iff those write/read
// sets overlap).  Every router within distance 2 of another shard is a
// "band" router; the plan precomputes, per band router, the cross-shard
// routers it must order itself against.  With whole-row strips those
// remotes can only lie at row offsets +-1/+-2 (same-row neighbours share the
// shard by construction), so a band router has at most 8 of them.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <vector>

#include "noc/geometry.h"

namespace mdw::noc {

struct ShardPlan {
  struct Range {
    int lo = 0, hi = 0;  // owned node ids [lo, hi)
    int y0 = 0, y1 = 0;  // owned rows [y0, y1)
  };
  /// A band router and the cross-shard routers within Manhattan distance 2
  /// of it.  The traverse phase treats these ids as ordering checkpoints.
  struct Checkpoint {
    NodeId id = 0;
    std::vector<NodeId> remotes;
  };

  int shards = 1;
  int width = 0;
  int height = 0;
  std::vector<Range> ranges;              // one per shard
  std::vector<std::uint16_t> shard_of;    // node id -> owning shard
  std::vector<std::vector<Checkpoint>> band;  // per shard, ascending id
};

/// Shard-count resolution shared by the Network and every CLI: an explicit
/// positive request (a --shards=N flag or NocParams::shards set in code)
/// beats the MDW_SHARDS environment variable; <= 0 means "unset", falling
/// back to the environment and then to 1 (the sequential kernel).
inline int resolve_shards(int requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("MDW_SHARDS");
      env != nullptr && *env != '\0') {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  return 1;
}

/// Build a plan from explicit strip boundaries: `rows` holds shards+1
/// ascending row indices with rows.front() == 0 and rows.back() == height;
/// strip i owns rows [rows[i], rows[i+1]), each at least one row.
inline ShardPlan make_shard_plan_from_rows(const MeshShape& mesh,
                                           const std::vector<int>& rows) {
  ShardPlan p;
  p.width = mesh.width();
  p.height = mesh.height();
  const int w = p.width;
  const int s = static_cast<int>(rows.size()) - 1;
  p.shards = s;
  p.ranges.resize(static_cast<std::size_t>(s));
  p.shard_of.assign(static_cast<std::size_t>(mesh.num_nodes()), 0);
  for (int i = 0; i < s; ++i) {
    const int y0 = rows[static_cast<std::size_t>(i)];
    const int y1 = rows[static_cast<std::size_t>(i) + 1];
    p.ranges[static_cast<std::size_t>(i)] = {y0 * w, y1 * w, y0, y1};
    for (NodeId id = y0 * w; id < y1 * w; ++id) {
      p.shard_of[static_cast<std::size_t>(id)] =
          static_cast<std::uint16_t>(i);
    }
  }
  p.band.resize(static_cast<std::size_t>(s));
  if (s == 1) return p;
  // All candidate offsets for a cross-shard router within distance 2 of a
  // whole-row-strip partition (same-row offsets can never change shard).
  static constexpr int kOffsets[8][2] = {{0, 1},  {0, -1}, {0, 2},  {0, -2},
                                         {1, 1},  {1, -1}, {-1, 1}, {-1, -1}};
  for (NodeId id = 0; id < mesh.num_nodes(); ++id) {
    const Coord c = mesh.coord_of(id);
    std::vector<NodeId> remotes;
    for (const auto& off : kOffsets) {
      const Coord nc{c.x + off[0], c.y + off[1]};
      if (!mesh.contains(nc)) continue;
      const NodeId nid = mesh.id_of(nc);
      if (p.shard_of[static_cast<std::size_t>(nid)] !=
          p.shard_of[static_cast<std::size_t>(id)]) {
        remotes.push_back(nid);
      }
    }
    if (!remotes.empty()) {
      p.band[p.shard_of[static_cast<std::size_t>(id)]].push_back(
          {id, std::move(remotes)});
    }
  }
  return p;
}

/// Partition `mesh` into at most `requested` row strips.  The shard count is
/// clamped to [1, height] (a strip must own at least one whole row); rows
/// are spread as evenly as possible (each strip gets height/shards rounded
/// either way, never differing by more than one row).
inline ShardPlan compute_shard_plan(const MeshShape& mesh, int requested) {
  const int h = mesh.height();
  int s = requested < 1 ? 1 : requested;
  if (s > h) s = h;
  std::vector<int> rows(static_cast<std::size_t>(s) + 1);
  for (int i = 0; i <= s; ++i) {
    rows[static_cast<std::size_t>(i)] =
        static_cast<int>(static_cast<std::int64_t>(i) * h / s);
  }
  return make_shard_plan_from_rows(mesh, rows);
}

/// Load-balanced partition: split the mesh into `requested` contiguous row
/// strips minimising the maximum per-strip cost, where `row_cost[y]` is a
/// non-negative weight for row y (occupancy-derived: scheduled routers,
/// heatmap traffic).  Deterministic: exact integer dynamic programming over
/// split points, ties broken toward the earliest boundary.  Shard count is
/// clamped exactly like the equal-split overload, so a Network whose plan is
/// recomputed with this overload keeps its shard count.
inline ShardPlan compute_shard_plan(const MeshShape& mesh, int requested,
                                    const std::vector<std::uint64_t>& row_cost) {
  const int h = mesh.height();
  int s = requested < 1 ? 1 : requested;
  if (s > h) s = h;
  // prefix[i] = cost of rows [0, i); cost(a, b) = prefix[b] - prefix[a].
  std::vector<std::uint64_t> prefix(static_cast<std::size_t>(h) + 1, 0);
  for (int y = 0; y < h; ++y) {
    const std::uint64_t c =
        y < static_cast<int>(row_cost.size())
            ? row_cost[static_cast<std::size_t>(y)]
            : 0;
    prefix[static_cast<std::size_t>(y) + 1] =
        prefix[static_cast<std::size_t>(y)] + c;
  }
  const auto cost = [&](int a, int b) {
    return prefix[static_cast<std::size_t>(b)] -
           prefix[static_cast<std::size_t>(a)];
  };
  constexpr std::uint64_t kInf = ~std::uint64_t{0};
  // best[k][i]: minimal achievable max-strip-cost covering rows [0, i) with
  // k strips of >= 1 row each; split[k][i]: the chosen start row of strip k.
  std::vector<std::vector<std::uint64_t>> best(
      static_cast<std::size_t>(s) + 1,
      std::vector<std::uint64_t>(static_cast<std::size_t>(h) + 1, kInf));
  std::vector<std::vector<int>> split(
      static_cast<std::size_t>(s) + 1,
      std::vector<int>(static_cast<std::size_t>(h) + 1, 0));
  for (int i = 1; i <= h; ++i) best[1][static_cast<std::size_t>(i)] = cost(0, i);
  for (int k = 2; k <= s; ++k) {
    for (int i = k; i <= h - (s - k); ++i) {
      std::uint64_t b = kInf;
      int arg = k - 1;
      for (int j = k - 1; j < i; ++j) {
        const std::uint64_t prev = best[static_cast<std::size_t>(k) - 1]
                                       [static_cast<std::size_t>(j)];
        if (prev == kInf) continue;
        const std::uint64_t cand = prev > cost(j, i) ? prev : cost(j, i);
        if (cand < b) {  // strict: ties keep the earliest split point
          b = cand;
          arg = j;
        }
      }
      best[static_cast<std::size_t>(k)][static_cast<std::size_t>(i)] = b;
      split[static_cast<std::size_t>(k)][static_cast<std::size_t>(i)] = arg;
    }
  }
  std::vector<int> rows(static_cast<std::size_t>(s) + 1);
  rows[static_cast<std::size_t>(s)] = h;
  int at = h;
  for (int k = s; k >= 2; --k) {
    at = split[static_cast<std::size_t>(k)][static_cast<std::size_t>(at)];
    rows[static_cast<std::size_t>(k) - 1] = at;
  }
  rows[0] = 0;
  return make_shard_plan_from_rows(mesh, rows);
}

} // namespace mdw::noc
