#include "noc/worm_builder.h"

#include <atomic>
#include <cassert>

#include "noc/worm_pool.h"

namespace mdw::noc {

namespace {
std::atomic<WormId> g_next_worm_id{1};
}

bool worm_is_well_formed(const MeshShape& mesh, RoutingAlgo algo,
                         const Worm& w) {
  if (w.path.empty() || w.dests.empty()) return false;
  if (w.dests.back().node != w.path.back()) return false;
  if (!is_conformant_path(algo, mesh, {w.path.data(), w.path.size()}))
    return false;
  // Destinations must appear in path order and be unique.
  std::size_t cursor = 0;
  for (const auto& d : w.dests) {
    bool found = false;
    while (cursor < w.path.size()) {
      if (w.path[cursor] == d.node) {
        found = true;
        ++cursor;  // next dest must be strictly later in the path
        break;
      }
      ++cursor;
    }
    if (!found) return false;
  }
  for (const auto& d : w.dests) {
    const bool gather_action = d.action == DestAction::GatherPickup ||
                               d.action == DestAction::GatherDeposit;
    if (gather_action && w.kind != WormKind::Gather) return false;
    if (d.action == DestAction::ReserveOnly && d.node == w.path.back())
      return false;
    if (d.action == DestAction::GatherDeposit && d.node != w.path.back())
      return false;
  }
  return true;
}

WormPtr make_unicast(const MeshShape& mesh, RoutingAlgo algo, VNet vnet,
                     NodeId src, NodeId dst, int length_flits, TxnId txn,
                     std::shared_ptr<const Payload> payload,
                     RouteCache* routes) {
  WormPtr w = WormPool::local().acquire();
  w->id = g_next_worm_id++;
  w->kind = WormKind::Unicast;
  w->vnet = vnet;
  w->txn = txn;
  w->src = src;
  const std::vector<NodeId>* memo =
      routes != nullptr ? routes->find(algo, src, dst) : nullptr;
  if (memo != nullptr) {
    // Memoized hop sequence: validated when the entry was filled.
    w->path.assign(memo->begin(), memo->end());
    w->dests.push_back(DestSpec{dst, DestAction::Deliver, 1});
  } else {
    append_unicast_path(algo, mesh, src, dst, w->path);
    w->dests.push_back(DestSpec{dst, DestAction::Deliver, 1});
    assert(worm_is_well_formed(mesh, algo, *w));
    if (routes != nullptr) {
      routes->insert(algo, src, dst, w->path.data(), w->path.size());
    }
  }
  w->length_flits = length_flits;
  w->payload = std::move(payload);
  return w;
}

WormPtr make_adaptive_unicast(RoutingAlgo algo, VNet vnet, NodeId src,
                              NodeId dst, int length_flits, TxnId txn,
                              std::shared_ptr<const Payload> payload) {
  assert(algo == RoutingAlgo::WestFirst || algo == RoutingAlgo::EastFirst);
  WormPtr w = WormPool::local().acquire();
  w->id = g_next_worm_id++;
  w->kind = WormKind::Unicast;
  w->vnet = vnet;
  w->txn = txn;
  w->src = src;
  w->path.push_back(src);  // extended hop by hop inside the routers
  w->dests.push_back(DestSpec{dst, DestAction::Deliver, 1});
  w->length_flits = length_flits;
  w->payload = std::move(payload);
  w->adaptive = true;
  w->adaptive_algo = algo;
  return w;
}

WormPtr make_multidest(const MeshShape& mesh, RoutingAlgo algo, WormKind kind,
                       VNet vnet, std::vector<NodeId> path,
                       std::vector<DestSpec> dests, int length_flits,
                       TxnId txn, std::shared_ptr<const Payload> payload) {
  WormPtr w = WormPool::local().acquire();
  w->id = g_next_worm_id++;
  w->kind = kind;
  w->vnet = vnet;
  w->txn = txn;
  w->src = path.front();
  w->path.assign(path.begin(), path.end());
  w->dests.assign(dests.begin(), dests.end());
  w->length_flits = length_flits;
  w->payload = std::move(payload);
  assert(worm_is_well_formed(mesh, algo, *w));
  (void)mesh;
  (void)algo;
  return w;
}

WormPtr make_from_blueprint(WormKind kind, VNet vnet, const NodeId* path,
                            std::size_t path_len, const DestSpec* dests,
                            std::size_t num_dests, int length_flits, TxnId txn,
                            std::shared_ptr<const Payload> payload) {
  WormPtr w = WormPool::local().acquire();
  w->id = g_next_worm_id++;
  w->kind = kind;
  w->vnet = vnet;
  w->txn = txn;
  w->src = path[0];
  w->path.assign(path, path + path_len);
  w->dests.assign(dests, dests + num_dests);
  w->length_flits = length_flits;
  w->payload = std::move(payload);
  return w;
}

} // namespace mdw::noc
