// Helpers to assemble validated worms.
//
// All multidestination construction in src/core funnels through
// make_multidest(), which debug-asserts BRCP conformance of the path and
// consistency of the destination list, so a scheme bug cannot silently
// inject an illegal worm.
#pragma once

#include <memory>
#include <vector>

#include "noc/route_cache.h"
#include "noc/routing.h"
#include "noc/worm.h"

namespace mdw::noc {

/// Flit-length model: headers carry the route; every destination beyond the
/// first adds one header flit (bit-string destination encoding, [37,38]).
struct WormSizing {
  int control_flits = 8;   // base size of a control worm (head+route+tail)
  int data_flits = 40;     // control + one 32-byte cache block
  int per_extra_dest = 1;  // extra header flits per additional destination

  [[nodiscard]] int control_size(int num_dests) const {
    return control_flits + per_extra_dest * (num_dests - 1);
  }
};

/// `routes` (optional) memoizes the hop sequence per (algo, src, dst): a hit
/// skips base-routing path construction and conformance validation entirely.
[[nodiscard]] WormPtr make_unicast(const MeshShape& mesh, RoutingAlgo algo,
                                   VNet vnet, NodeId src, NodeId dst,
                                   int length_flits, TxnId txn,
                                   std::shared_ptr<const Payload> payload,
                                   RouteCache* routes = nullptr);

/// Dynamic adaptive unicast: the path is chosen hop by hop inside the
/// routers, among the directions `algo` permits, by downstream congestion.
/// Only valid for turn-model routings (WestFirst / EastFirst), which stay
/// deadlock-free under per-hop adaptivity without escape channels.
[[nodiscard]] WormPtr make_adaptive_unicast(RoutingAlgo algo, VNet vnet,
                                            NodeId src, NodeId dst,
                                            int length_flits, TxnId txn,
                                            std::shared_ptr<const Payload> payload);

/// Build a multidestination worm over an explicit path.  `dests` must be
/// non-empty, ordered along `path`, unique, and end at path.back().
[[nodiscard]] WormPtr make_multidest(const MeshShape& mesh, RoutingAlgo algo,
                                     WormKind kind, VNet vnet,
                                     std::vector<NodeId> path,
                                     std::vector<DestSpec> dests,
                                     int length_flits, TxnId txn,
                                     std::shared_ptr<const Payload> payload);

/// Instantiate a worm from a previously validated blueprint (the PlanCache
/// hit path): identical to make_multidest except that path/dest conformance
/// is NOT re-checked — the blueprint was validated when it was first built.
[[nodiscard]] WormPtr make_from_blueprint(WormKind kind, VNet vnet,
                                          const NodeId* path,
                                          std::size_t path_len,
                                          const DestSpec* dests,
                                          std::size_t num_dests,
                                          int length_flits, TxnId txn,
                                          std::shared_ptr<const Payload> payload);

/// Validation used by make_multidest and the scheme unit tests.
[[nodiscard]] bool worm_is_well_formed(const MeshShape& mesh, RoutingAlgo algo,
                                       const Worm& w);

} // namespace mdw::noc
