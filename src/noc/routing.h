// Base routing schemes and BRCP path-conformance validation.
//
// The BRCP model (Panda et al. [39]) lets a multidestination worm follow any
// path that a unicast message could legally take under the network's base
// routing scheme.  We support:
//   * EcubeXY    — deterministic dimension order, X then Y (request network)
//   * EcubeYX    — Y then X (reply network paired with EcubeXY)
//   * WestFirst  — turn model: all West hops first, then adaptive {E,N,S}
//   * EastFirst  — mirror of WestFirst (reply network paired with WestFirst)
#pragma once

#include <span>
#include <vector>

#include "noc/geometry.h"
#include "sim/small_vec.h"

namespace mdw::noc {

enum class RoutingAlgo : std::uint8_t { EcubeXY, EcubeYX, WestFirst, EastFirst };

[[nodiscard]] const char* routing_name(RoutingAlgo a);

/// Inline hop capacity of a worm path: covers the full diameter path of an
/// 8x8 mesh (W + H - 1 = 15 nodes).  Larger meshes spill to a heap block
/// that is recycled with the pooled worm (see WormPool).
inline constexpr std::size_t kInlinePathHops = 16;

/// Hop sequence of a worm, path[0] == source.  Small-inline so steady-state
/// unicast construction on common mesh sizes performs no allocation.
using PathVec = sim::SmallVec<NodeId, kInlinePathHops>;

/// Up-to-four permitted output directions; value type, never allocates.
/// (The seed returned std::vector<Dir>, a heap allocation per adaptive hop.)
struct DirList {
  Dir dirs[4];
  int n = 0;

  void push_back(Dir d) { dirs[n++] = d; }
  [[nodiscard]] int size() const { return n; }
  [[nodiscard]] bool empty() const { return n == 0; }
  [[nodiscard]] Dir front() const { return dirs[0]; }
  [[nodiscard]] Dir operator[](int i) const { return dirs[i]; }
  [[nodiscard]] const Dir* begin() const { return dirs; }
  [[nodiscard]] const Dir* end() const { return dirs + n; }
};

/// Directions a *minimal* unicast message at `cur` heading for `dst` may take
/// under `algo`.  Empty when cur == dst.
[[nodiscard]] DirList permitted_dirs(RoutingAlgo algo, const MeshShape& mesh,
                                     NodeId cur, NodeId dst);

/// True iff `path` (a sequence of adjacent nodes, first = source) is a legal
/// walk under `algo`, i.e. some unicast message could traverse it.  This is
/// the BRCP validity check used by every multidestination path builder.
/// Additionally rejects paths that reuse a directed channel (multidestination
/// worms must be simple paths for deadlock freedom).
[[nodiscard]] bool is_conformant_path(RoutingAlgo algo, const MeshShape& mesh,
                                      std::span<const NodeId> path);

/// Build the deterministic minimal unicast path src -> dst (inclusive of both
/// endpoints) under `algo`.  For the adaptive schemes this returns one legal
/// minimal path (dimension-order within the permitted turns).
[[nodiscard]] std::vector<NodeId> unicast_path(RoutingAlgo algo, const MeshShape& mesh,
                                               NodeId src, NodeId dst);

/// As unicast_path, but appends into `out` (which must be empty): the worm
/// builders write the path straight into the pooled worm's inline storage.
void append_unicast_path(RoutingAlgo algo, const MeshShape& mesh, NodeId src,
                         NodeId dst, PathVec& out);

/// Reply-network routing conventionally paired with a request-network scheme
/// (separate logical networks break request/reply protocol deadlock; pairing
/// XY with YX and WestFirst with EastFirst additionally gives gather worms
/// the path shapes the schemes in src/core need).
[[nodiscard]] RoutingAlgo reply_algo_for(RoutingAlgo request_algo);

} // namespace mdw::noc
