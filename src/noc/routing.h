// Base routing schemes and BRCP path-conformance validation.
//
// The BRCP model (Panda et al. [39]) lets a multidestination worm follow any
// path that a unicast message could legally take under the network's base
// routing scheme.  We support:
//   * EcubeXY    — deterministic dimension order, X then Y (request network)
//   * EcubeYX    — Y then X (reply network paired with EcubeXY)
//   * WestFirst  — turn model: all West hops first, then adaptive {E,N,S}
//   * EastFirst  — mirror of WestFirst (reply network paired with WestFirst)
#pragma once

#include <vector>

#include "noc/geometry.h"

namespace mdw::noc {

enum class RoutingAlgo : std::uint8_t { EcubeXY, EcubeYX, WestFirst, EastFirst };

[[nodiscard]] const char* routing_name(RoutingAlgo a);

/// Directions a *minimal* unicast message at `cur` heading for `dst` may take
/// under `algo`.  Empty when cur == dst.
[[nodiscard]] std::vector<Dir> permitted_dirs(RoutingAlgo algo, const MeshShape& mesh,
                                              NodeId cur, NodeId dst);

/// True iff `path` (a sequence of adjacent nodes, first = source) is a legal
/// walk under `algo`, i.e. some unicast message could traverse it.  This is
/// the BRCP validity check used by every multidestination path builder.
/// Additionally rejects paths that reuse a directed channel (multidestination
/// worms must be simple paths for deadlock freedom).
[[nodiscard]] bool is_conformant_path(RoutingAlgo algo, const MeshShape& mesh,
                                      const std::vector<NodeId>& path);

/// Build the deterministic minimal unicast path src -> dst (inclusive of both
/// endpoints) under `algo`.  For the adaptive schemes this returns one legal
/// minimal path (dimension-order within the permitted turns).
[[nodiscard]] std::vector<NodeId> unicast_path(RoutingAlgo algo, const MeshShape& mesh,
                                               NodeId src, NodeId dst);

/// Reply-network routing conventionally paired with a request-network scheme
/// (separate logical networks break request/reply protocol deadlock; pairing
/// XY with YX and WestFirst with EastFirst additionally gives gather worms
/// the path shapes the schemes in src/core need).
[[nodiscard]] RoutingAlgo reply_algo_for(RoutingAlgo request_algo);

} // namespace mdw::noc
