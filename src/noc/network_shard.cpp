// Sharded parallel cycle kernel (DESIGN.md section 14).
//
// The mesh is partitioned into row strips (noc/shard_plan.h); each strip is
// ticked by one thread of a persistent sim::ShardPool, with a
// sim::ShardBarrier between the tick phases.  The kernel is bit-identical
// to the sequential tick in network.cpp:
//
//   * Phases 1-3 (posts/drain, injection, allocation) touch only the
//     executing shard's routers and NIs, so each shard sweeps its strip in
//     the global (id - start) mod n arbitration order.  Global counters are
//     accumulated in per-shard deltas and folded at the phase barrier;
//     consumption-channel deliveries are parked in per-shard mailboxes and
//     replayed serially, merged across shards in global key order, inside
//     the phase-1 barrier's serial section.
//   * Phase 4 (switch traversal) is the only phase with cross-router
//     effects: a step writes its own router and its link neighbours, so two
//     steps interact iff their routers are within Manhattan distance 2.
//     Cells are executed along diagonal fronts f = x + 2y, a linear
//     extension of that dependency DAG restricted to ascending-id order:
//     every distance-<=2 cell pair lands on different fronts, ordered the
//     same way as their ids (cells sharing a front are >= distance 3
//     apart).  Each shard walks its fronts in order, waiting — via a
//     per-shard published front counter — for the strip(s) above it to be
//     one front ahead; the pipeline lag between adjacent strips is a single
//     front.  The rotating start splits the sweep into two stages (ids >=
//     start, then ids < start, matching key order) separated by a barrier.
//   * Phase 5 (deschedule) edits only own-strip routers; bitmap words can
//     straddle strips, so bit clears (and all sharded-tick word accesses)
//     go through std::atomic_ref.
#include <algorithm>
#include <bit>
#include <cassert>
#include <string>
#include <thread>

#include "noc/network.h"

namespace mdw::noc {

bool Network::tick_sharded(Cycle now) {
  const int n = mesh_.num_nodes();
  tick_start_ = rotate_;
  rotate_ = (rotate_ + 1) % n;
  tick_now_ = now;
  const std::uint64_t waits0 =
      shard_ctx_[0].barrier_spins + shard_ctx_[0].order_spins;
  sharded_active_ = true;
  pool_->run();  // runs shard_main(s) on every shard; this thread is shard 0
  sharded_active_ = false;
  if (barrier_wait_hist_ != nullptr) {
    barrier_wait_hist_->add(static_cast<double>(
        shard_ctx_[0].barrier_spins + shard_ctx_[0].order_spins - waits0));
  }
  return true;
}

void Network::shard_main(int s) {
  ShardCtx& ctx = shard_ctx_[static_cast<std::size_t>(s)];
  tls_shard_ = &ctx;
  const Cycle now = tick_now_;
  const int start = tick_start_;

  // The phase gates read the canonical counters, which change only inside
  // barrier serial sections (and between ticks): every shard reads the same
  // value, takes the same branch, and therefore arrives at the same barrier
  // sequence.  A skipped phase is exactly the sequential kernel's skipped
  // sweep — and costs no barrier either.
  if (cnt_.pending_posts != 0 || cnt_.cons_flits_total != 0) {
    sweep_own(s, start, [&](NodeId id) {
      if (!ifaces_[id].pending_posts.empty()) try_pending_posts(id);
      routers_[id]->drain_consumption(now);
    });
    ctx.barrier_spins += barrier_->arrive_and_wait([&] {
      fold_shard_deltas();
      replay_deliveries(now);
    });
  }
  if (cnt_.queued_worms != 0) {
    sweep_own(s, start, [&](NodeId id) { service_injection(id, now); });
    ctx.barrier_spins += barrier_->arrive_and_wait([&] { fold_shard_deltas(); });
  }
  if (cnt_.pending_heads_total != 0) {
    sweep_own(s, start, [&](NodeId id) { routers_[id]->allocate(now); });
    ctx.barrier_spins += barrier_->arrive_and_wait([&] { fold_shard_deltas(); });
  }

  // Phase 4: traversal along diagonal fronts, earlier-key stage first.
  // When start == 0 the late stage owns no ids anywhere; every shard skips
  // it (start is shared state, so the branch is uniform).
  shard_traverse_stage(s, /*early=*/true, start, now, progress_early_.get());
  if (start != 0) {
    ctx.barrier_spins += barrier_->arrive_and_wait();
    shard_traverse_stage(s, /*early=*/false, start, now, progress_late_.get());
  }
  ctx.barrier_spins += barrier_->arrive_and_wait([&] { fold_shard_deltas(); });

  // Phase 5: reset front progress for the next tick (made visible through
  // the pool's done/generation release-acquire chain) and deschedule own
  // drained routers — same candidate set the sequential kernel checks.
  progress_early_[static_cast<std::size_t>(s)].v.store(
      -1, std::memory_order_relaxed);
  progress_late_[static_cast<std::size_t>(s)].v.store(
      -1, std::memory_order_relaxed);
  for (const NodeId id : ctx.idle_checks) {
    Router& r = *routers_[id];
    if (r.scheduled_ && !node_has_work(id)) {
      r.scheduled_ = false;
      const std::atomic_ref<std::uint64_t> word(
          sched_words_[static_cast<std::size_t>(id) >> 6]);
      word.fetch_and(~(1ull << (id & 63)), std::memory_order_relaxed);
    }
  }
  ctx.idle_checks.clear();
  ++ctx.ticks;
}

template <class F>
void Network::sweep_own(int s, int start, F&& f) {
  // Own ids in global (id - start) mod n key order: the ids >= start run
  // (ascending) before the ids < start — a strip is at most two contiguous
  // runs in that order.
  const ShardPlan::Range& rg = plan_.ranges[static_cast<std::size_t>(s)];
  if (full_sweep_) {
    for (int id = std::max(rg.lo, start); id < rg.hi; ++id)
      f(static_cast<NodeId>(id));
    const int e = std::min(rg.hi, start);
    for (int id = rg.lo; id < e; ++id) f(static_cast<NodeId>(id));
    return;
  }
  const int a = std::max(rg.lo, start);
  if (a < rg.hi) shard_scan_range(a, rg.hi, f);
  const int b = std::min(rg.hi, start);
  if (rg.lo < b) shard_scan_range(rg.lo, b, f);
}

template <class F>
void Network::shard_scan_range(int lo, int hi, F&& f) {
  // for_each_scheduled over the non-wrapping id range [lo, hi), with atomic
  // word reads: bitmap words can straddle strip boundaries, and other
  // shards set their own bits concurrently (never bits inside this range —
  // phases 1-3 only wake the id being processed).  The word is re-read
  // after every callback, preserving the sequential kernel's mid-phase
  // splice semantics for self-wakes.
  const int w0 = lo >> 6;
  const int w1 = (hi - 1) >> 6;
  for (int wi = w0; wi <= w1; ++wi) {
    std::uint64_t mask = ~0ull;
    if (wi == w0) mask &= ~0ull << (lo & 63);
    if (wi == w1 && (hi & 63) != 0) mask &= ~0ull >> (64 - (hi & 63));
    while (mask != 0) {
      const std::atomic_ref<std::uint64_t> word(
          sched_words_[static_cast<std::size_t>(wi)]);
      const std::uint64_t bits = word.load(std::memory_order_relaxed) & mask;
      if (bits == 0) break;
      const int b = std::countr_zero(bits);
      mask = b == 63 ? 0 : mask & (~0ull << (b + 1));
      f(static_cast<NodeId>((wi << 6) + b));
    }
  }
}

void Network::shard_traverse_stage(int s, bool early, int start, Cycle now,
                                   PaddedAtomicInt* progress) {
  ShardCtx& ctx = shard_ctx_[static_cast<std::size_t>(s)];
  const ShardPlan::Range& rg = plan_.ranges[static_cast<std::size_t>(s)];
  const int W = plan_.width;
  const int maxf = (W - 1) + 2 * (plan_.height - 1);
  std::atomic<int>& mine = progress[s].v;
  // Own ids in this stage (contiguous: the stage split point `start` cuts a
  // strip into at most one in-stage run per stage).
  const int slo = early ? std::max(rg.lo, start) : rg.lo;
  const int shi = early ? rg.hi : std::min(rg.hi, start);
  if (slo >= shi) {
    // Nothing to execute: publish full completion for downstream waiters.
    mine.store(maxf, std::memory_order_release);
    return;
  }
  const int ylo = slo / W;
  const int yhi = (shi - 1) / W;
  // Cross-strip "before" dependencies exist only for cells in the strip's
  // top two rows, on rows y0-1 / y0-2 above — and only when those remote
  // cells are themselves in this stage (ids below rg.lo are in the early
  // stage iff start < rg.lo; they are always in the late stage, whose ids
  // run up to start > rg.lo whenever this strip has late-stage cells).
  int ndeps = 0;
  int deps[2];
  if (rg.y0 > 0 && (!early || start < rg.lo)) {
    deps[ndeps++] = plan_.shard_of[static_cast<std::size_t>((rg.y0 - 1) * W)];
    if (rg.y0 > 1) {
      const int d2 = plan_.shard_of[static_cast<std::size_t>((rg.y0 - 2) * W)];
      if (d2 != deps[0]) deps[ndeps++] = d2;
    }
  }
  const int wait_lo = 2 * rg.y0;          // fronts of rows y0 and y0+1
  const int wait_hi = 2 * rg.y0 + W + 1;
  const int kend = 2 * yhi + (W - 1);     // last front holding an own cell
  const std::uint64_t spin_budget = sim::spin_budget(plan_.shards);
  for (int k = 2 * ylo; k <= kend; ++k) {
    if (ndeps != 0 && k >= wait_lo && k <= wait_hi) {
      // A cell at front k depends on remote cells at fronts k-1..k-4 only;
      // progress >= k-1 from the strip(s) above makes them all visible
      // (release store there, acquire load here).
      for (int d = 0; d < ndeps; ++d) {
        std::atomic<int>& theirs = progress[deps[d]].v;
        std::uint64_t spins = 0;
        while (theirs.load(std::memory_order_acquire) < k - 1) {
          if (++spins < spin_budget) {
            sim::cpu_relax();
          } else {
            spins = 0;
            std::this_thread::yield();
          }
          ++ctx.order_spins;
        }
      }
    }
    const int y_min = std::max(ylo, k >= W ? (k - W + 2) / 2 : 0);
    const int y_max = std::min(yhi, k / 2);
    for (int y = y_min; y <= y_max; ++y) {
      const int x = k - 2 * y;
      const int id = y * W + x;
      if (id < slo || id >= shi) continue;  // seam row: other stage
      if (!full_sweep_ && !sched_bit_atomic(static_cast<NodeId>(id))) continue;
      routers_[static_cast<std::size_t>(id)]->traverse(now);
      ++ctx.routers_traversed;
    }
    mine.store(k, std::memory_order_release);
  }
  // Strips below may wait on fronts past our last own cell.
  mine.store(maxf, std::memory_order_release);
}

void Network::fold_shard_deltas() {
  // Serial section: fold every shard's counter delta into the canonical
  // counters (phase gates) and stats.  The counters end up exactly where a
  // sequential sweep would have left them — the deltas are sums of the same
  // increments.
  for (ShardCtx& c : shard_ctx_) {
    NetCounters& d = c.delta;
    cnt_.in_flight += d.in_flight;
    cnt_.live_flits += d.live_flits;
    cnt_.queued_worms += d.queued_worms;
    cnt_.pending_posts += d.pending_posts;
    cnt_.cons_flits_total += d.cons_flits_total;
    cnt_.pending_heads_total += d.pending_heads_total;
    stats_.link_flit_hops += static_cast<std::uint64_t>(d.link_flit_hops);
    stats_.gather_deferred += static_cast<std::uint64_t>(d.gather_deferred);
    stats_.gather_deposits += static_cast<std::uint64_t>(d.gather_deposits);
    stats_.absorb_deliveries +=
        static_cast<std::uint64_t>(d.absorb_deliveries);
    d = NetCounters{};
  }
  assert(cnt_.in_flight >= 0 && cnt_.live_flits >= 0 &&
         cnt_.queued_worms >= 0 && cnt_.pending_posts >= 0 &&
         cnt_.cons_flits_total >= 0 && cnt_.pending_heads_total >= 0);
}

void Network::replay_deliveries(Cycle now) {
  // Serial section: commit the parked deliveries in global key order.  Each
  // mailbox is already key-ordered (sweep_own order), and a router's
  // deliveries all sit in its owner's mailbox, so a k-way merge on the head
  // keys reproduces the sequential kernel's delivery sequence exactly —
  // including the relative order of one router's multiple consumption
  // channels, which stay consecutive within their shard's list.
  const int n = mesh_.num_nodes();
  const int S = plan_.shards;
  for (ShardCtx& c : shard_ctx_) c.replay_cursor = 0;
  for (;;) {
    int best = -1;
    int best_key = n;
    for (int s = 0; s < S; ++s) {
      ShardCtx& c = shard_ctx_[static_cast<std::size_t>(s)];
      if (c.replay_cursor >= c.deliveries.size()) continue;
      int key = static_cast<int>(c.deliveries[c.replay_cursor].where) -
                tick_start_;
      if (key < 0) key += n;
      if (key < best_key) {
        best_key = key;
        best = s;
      }
    }
    if (best < 0) break;
    ShardCtx& c = shard_ctx_[static_cast<std::size_t>(best)];
    DeliveryRec& rec = c.deliveries[c.replay_cursor++];
    commit_delivery(rec.where, rec.worm, rec.final_dest, now);
    // Drop the mailbox reference here, inside the serial section: if it is
    // the last one the worm is recycled without racing another shard.
    rec.worm = nullptr;
  }
  for (ShardCtx& c : shard_ctx_) c.deliveries.clear();
}

void Network::publish_shard_metrics() {
  if (plan_.shards <= 1) return;
  for (int s = 0; s < plan_.shards; ++s) {
    const ShardCtx& c = shard_ctx_[static_cast<std::size_t>(s)];
    const std::string p = "shard." + std::to_string(s) + ".";
    metrics_->counter(p + "barrier_spins").set(c.barrier_spins);
    metrics_->counter(p + "order_spins").set(c.order_spins);
    metrics_->counter(p + "ticks").set(c.ticks);
    metrics_->counter(p + "routers_traversed").set(c.routers_traversed);
  }
}

} // namespace mdw::noc
