// Sharded parallel cycle kernel (DESIGN.md sections 14 and 16).
//
// The mesh is partitioned into row strips (noc/shard_plan.h); each strip is
// ticked by one thread of a persistent sim::ShardPool.  The kernel is
// bit-identical to the sequential tick in network.cpp and runs exactly TWO
// sim::ShardBarrier rounds per tick:
//
//   * Phases 1-3 (posts/drain, injection, allocation) touch only the
//     executing shard's routers and NIs, so the three sweeps run back to
//     back with no barrier between them — each gated on the shard's OWN
//     work counters (ShardCtx::work_*), which are single-writer (the owner's
//     executor during a tick, the main thread between ticks; the one
//     cross-shard source, traverse-time head arrivals, detours through
//     per-executor transfer arrays folded at barrier B).  Skipping a sweep
//     whose strip holds no such work is exactly the sequential kernel's
//     no-op pass over those routers.  Global counters accumulate in
//     per-shard deltas; consumption-channel deliveries park in per-shard
//     mailboxes.  Both are folded/committed in barrier A's serial section —
//     deliveries merged across shards in global key order (optionally after
//     a parallel per-strip handler pass, see finish_deliveries).
//   * Phase 4 (switch traversal) is the only phase with cross-router
//     effects: a step writes its own router and its link neighbours, so two
//     steps interact iff their routers are within Manhattan distance 2.
//     Cells are executed along diagonal fronts f = x + 2y, a linear
//     extension of that dependency DAG restricted to ascending-id order;
//     each shard walks its fronts in order, waiting — via a per-shard
//     published front counter — for the strip(s) above it to be one front
//     ahead.  The rotating start splits the sweep into two stages (ids >=
//     start, then ids < start, matching key order); instead of a full
//     barrier between them, a shard entering the late stage performs a
//     targeted seam_wait: only cells within distance 2 of the seam row can
//     couple the stages, so it suffices to wait for the full early-stage
//     completion of the (at most three) strips owning rows start/W .. +2.
//     Early stages never wait on late stages and always publish full
//     completion, so the wait cannot deadlock.
//   * Phase 5 (deschedule) edits only own-strip routers; bitmap words can
//     straddle strips, so bit clears (and all sharded-tick word accesses)
//     go through std::atomic_ref.
//
// Barrier B's serial section also folds the per-shard quiescence
// fast-forward eligibility (decide_fast_forward): when no shard acted or
// blocked and every gate is in the future, the tick arms a window and
// tick_sharded reports the network idle, exactly like the sequential
// kernel's ff_epilogue.
#include <algorithm>
#include <bit>
#include <cassert>
#include <string>
#include <thread>

#include "noc/network.h"

namespace mdw::noc {

bool Network::tick_sharded(Cycle now) {
  const int n = mesh_.num_nodes();
  tick_start_ = rotate_;
  rotate_ = (rotate_ + 1) % n;
  tick_now_ = now;
  ff_idle_tick_ = false;  // set in barrier B's serial section when armed
  const std::uint64_t waits0 =
      shard_ctx_[0].barrier_spins + shard_ctx_[0].order_spins;
  sharded_active_ = true;
  pool_->run();  // runs shard_main(s) on every shard; this thread is shard 0
  sharded_active_ = false;
  if (barrier_wait_hist_ != nullptr) {
    barrier_wait_hist_->add(static_cast<double>(
        shard_ctx_[0].barrier_spins + shard_ctx_[0].order_spins - waits0));
  }
  return !ff_idle_tick_;
}

void Network::shard_main(int s) {
  ShardCtx& ctx = shard_ctx_[static_cast<std::size_t>(s)];
  tls_shard_ = &ctx;
  const Cycle now = tick_now_;
  const int start = tick_start_;
  ctx.ff_acted = false;
  ctx.ff_blocked = false;
  ctx.ff_next = kNoGate;

  // Fused phases 1-3, no barriers: each phase touches only own-strip state,
  // and the gates are this strip's own work counters, updated in place by
  // the very sweeps they gate (a phase sees work created by an earlier phase
  // this tick — e.g. a reinjection from a completed i-ack post — exactly
  // like the sequential kernel's phase-start gate reads).
  if (ctx.work_posts != 0 || ctx.work_cons != 0) {
    sweep_own(s, start, [&](NodeId id) {
      if (!ifaces_[id].pending_posts.empty()) try_pending_posts(id);
      routers_[id].drain_consumption(now);
    });
  }
  if (ctx.work_qworms != 0) {
    sweep_own(s, start, [&](NodeId id) { service_injection(id, now); });
  }
  if (ctx.work_heads != 0) {
    sweep_own(s, start, [&](NodeId id) { routers_[id].allocate(now); });
  }
  if (parallel_replay_) replay_own_deliveries(now);

  // Barrier A: every shard's phase 1-3 writes are visible; fold the counter
  // deltas and commit the delivery mailboxes in canonical order.
  ctx.barrier_spins += barrier_->arrive_and_wait([&] {
    fold_shard_deltas();
    finish_deliveries(now);
    // Drop the worm references the fused block parked (see
    // ShardCtx::deferred_free): serial, so the non-atomic refcounts are
    // safe (frees reaching the pool from a non-owner thread take its
    // side list, as with the mailbox drops below in finish_deliveries).
    for (ShardCtx& c : shard_ctx_) c.deferred_free.clear();
  });

  // Phase 4: traversal along diagonal fronts, earlier-key stage first.
  // When start == 0 the late stage owns no ids anywhere; every shard skips
  // it (start is shared state, so the branch is uniform).
  shard_traverse_stage(s, /*early=*/true, start, now, progress_early_.get());
  if (start != 0) {
    seam_wait(s, start);
    shard_traverse_stage(s, /*early=*/false, start, now, progress_late_.get());
  }

  // Barrier B: fold traverse deltas, repatriate cross-shard head arrivals,
  // and decide quiescence fast-forward for the whole tick.
  ctx.barrier_spins += barrier_->arrive_and_wait([&] {
    fold_shard_deltas();
    fold_head_transfers();
    decide_fast_forward(now);
  });

  // Phase 5: reset front progress for the next tick (made visible through
  // the pool's done/generation release-acquire chain) and deschedule own
  // drained routers — same candidate set the sequential kernel checks.
  progress_early_[static_cast<std::size_t>(s)].v.store(
      -1, std::memory_order_relaxed);
  progress_late_[static_cast<std::size_t>(s)].v.store(
      -1, std::memory_order_relaxed);
  for (const NodeId id : ctx.idle_checks) {
    NodeWords& w = arena_.words(id);
    if (w.scheduled && !node_has_work(id)) {
      w.scheduled = false;
      const std::atomic_ref<std::uint64_t> word(
          sched_words_[static_cast<std::size_t>(id) >> 6]);
      word.fetch_and(~(1ull << (id & 63)), std::memory_order_relaxed);
    }
  }
  ctx.idle_checks.clear();
  ++ctx.ticks;
}

template <class F>
void Network::sweep_own(int s, int start, F&& f) {
  // Own ids in global (id - start) mod n key order: the ids >= start run
  // (ascending) before the ids < start — a strip is at most two contiguous
  // runs in that order.
  const ShardPlan::Range& rg = plan_.ranges[static_cast<std::size_t>(s)];
  if (full_sweep_) {
    for (int id = std::max(rg.lo, start); id < rg.hi; ++id)
      f(static_cast<NodeId>(id));
    const int e = std::min(rg.hi, start);
    for (int id = rg.lo; id < e; ++id) f(static_cast<NodeId>(id));
    return;
  }
  const int a = std::max(rg.lo, start);
  if (a < rg.hi) shard_scan_range(a, rg.hi, f);
  const int b = std::min(rg.hi, start);
  if (rg.lo < b) shard_scan_range(rg.lo, b, f);
}

template <class F>
void Network::shard_scan_range(int lo, int hi, F&& f) {
  // for_each_scheduled over the non-wrapping id range [lo, hi), with atomic
  // word reads: bitmap words can straddle strip boundaries, and other
  // shards set their own bits concurrently (never bits inside this range —
  // phases 1-3 only wake the id being processed).  The word is re-read
  // after every callback, preserving the sequential kernel's mid-phase
  // splice semantics for self-wakes.
  const int w0 = lo >> 6;
  const int w1 = (hi - 1) >> 6;
  for (int wi = w0; wi <= w1; ++wi) {
    std::uint64_t mask = ~0ull;
    if (wi == w0) mask &= ~0ull << (lo & 63);
    if (wi == w1 && (hi & 63) != 0) mask &= ~0ull >> (64 - (hi & 63));
    while (mask != 0) {
      const std::atomic_ref<std::uint64_t> word(
          sched_words_[static_cast<std::size_t>(wi)]);
      const std::uint64_t bits = word.load(std::memory_order_relaxed) & mask;
      if (bits == 0) break;
      const int b = std::countr_zero(bits);
      mask = b == 63 ? 0 : mask & (~0ull << (b + 1));
      f(static_cast<NodeId>((wi << 6) + b));
    }
  }
}

void Network::shard_traverse_stage(int s, bool early, int start, Cycle now,
                                   PaddedAtomicInt* progress) {
  ShardCtx& ctx = shard_ctx_[static_cast<std::size_t>(s)];
  const ShardPlan::Range& rg = plan_.ranges[static_cast<std::size_t>(s)];
  const int W = plan_.width;
  const int maxf = (W - 1) + 2 * (plan_.height - 1);
  std::atomic<int>& mine = progress[s].v;
  // Own ids in this stage (contiguous: the stage split point `start` cuts a
  // strip into at most one in-stage run per stage).
  const int slo = early ? std::max(rg.lo, start) : rg.lo;
  const int shi = early ? rg.hi : std::min(rg.hi, start);
  if (slo >= shi) {
    // Nothing to execute: publish full completion for downstream waiters.
    mine.store(maxf, std::memory_order_release);
    return;
  }
  const int ylo = slo / W;
  const int yhi = (shi - 1) / W;
  // Cross-strip "before" dependencies exist only for cells in the strip's
  // top two rows, on rows y0-1 / y0-2 above — and only when those remote
  // cells are themselves in this stage (ids below rg.lo are in the early
  // stage iff start < rg.lo; they are always in the late stage, whose ids
  // run up to start > rg.lo whenever this strip has late-stage cells).
  int ndeps = 0;
  int deps[2];
  if (rg.y0 > 0 && (!early || start < rg.lo)) {
    deps[ndeps++] = plan_.shard_of[static_cast<std::size_t>((rg.y0 - 1) * W)];
    if (rg.y0 > 1) {
      const int d2 = plan_.shard_of[static_cast<std::size_t>((rg.y0 - 2) * W)];
      if (d2 != deps[0]) deps[ndeps++] = d2;
    }
  }
  const int wait_lo = 2 * rg.y0;          // fronts of rows y0 and y0+1
  const int wait_hi = 2 * rg.y0 + W + 1;
  const int kend = 2 * yhi + (W - 1);     // last front holding an own cell
  const std::uint64_t budget = sim::spin_budget(plan_.shards);
  for (int k = 2 * ylo; k <= kend; ++k) {
    if (ndeps != 0 && k >= wait_lo && k <= wait_hi) {
      // A cell at front k depends on remote cells at fronts k-1..k-4 only;
      // progress >= k-1 from the strip(s) above makes them all visible
      // (release store there, acquire load here).
      for (int d = 0; d < ndeps; ++d) {
        std::atomic<int>& theirs = progress[deps[d]].v;
        ctx.order_spins += sim::spin_wait(
            [&] { return theirs.load(std::memory_order_acquire) >= k - 1; },
            budget);
      }
    }
    const int y_min = std::max(ylo, k >= W ? (k - W + 2) / 2 : 0);
    const int y_max = std::min(yhi, k / 2);
    for (int y = y_min; y <= y_max; ++y) {
      const int x = k - 2 * y;
      const int id = y * W + x;
      if (id < slo || id >= shi) continue;  // seam row: other stage
      if (!full_sweep_ && !sched_bit_atomic(static_cast<NodeId>(id))) continue;
      routers_[static_cast<std::size_t>(id)].traverse(now);
      ++ctx.routers_traversed;
    }
    mine.store(k, std::memory_order_release);
  }
  // Strips below may wait on fronts past our last own cell.
  mine.store(maxf, std::memory_order_release);
}

void Network::seam_wait(int s, int start) {
  // Stage coupling exists only within Manhattan distance 2 of the rotation
  // seam: late-stage cells (ids < start) live in rows <= ys = start/W, and
  // early-stage cells (ids >= start) in rows >= ys, so an interacting pair
  // needs a late cell in rows [ys-2, ys] and an early cell in rows
  // [ys, ys+2].  The sequential order runs ALL early cells before any late
  // cell; waiting for the full early-stage completion of the strips owning
  // rows ys..ys+2 therefore covers every cross-stage true and anti
  // dependency.  Deadlock-free: early stages never wait on late stages, and
  // every shard publishes maxf at early-stage end unconditionally (even
  // with an empty stage range).
  const ShardPlan::Range& rg = plan_.ranges[static_cast<std::size_t>(s)];
  const int W = plan_.width;
  const int shi = std::min(rg.hi, start);
  if (rg.lo >= shi) return;  // no late-stage cells: nothing to order against
  const int ys = start / W;
  if ((shi - 1) / W < ys - 2) return;  // all late cells > distance 2 below
  ShardCtx& ctx = shard_ctx_[static_cast<std::size_t>(s)];
  const int maxf = (W - 1) + 2 * (plan_.height - 1);
  const int y_hi = std::min(ys + 2, plan_.height - 1);
  const std::uint64_t budget = sim::spin_budget(plan_.shards);
  for (int y = ys; y <= y_hi; ++y) {
    const int owner = plan_.shard_of[static_cast<std::size_t>(y * W)];
    if (owner == s) continue;  // own early stage already ran (program order)
    std::atomic<int>& theirs = progress_early_[owner].v;
    ctx.order_spins += sim::spin_wait(
        [&] { return theirs.load(std::memory_order_acquire) >= maxf; },
        budget);
  }
}

void Network::fold_shard_deltas() {
  // Serial section: fold every shard's counter delta into the canonical
  // counters (phase gates) and stats.  The counters end up exactly where a
  // sequential sweep would have left them — the deltas are sums of the same
  // increments.
  for (ShardCtx& c : shard_ctx_) {
    NetCounters& d = c.delta;
    cnt_.in_flight += d.in_flight;
    cnt_.live_flits += d.live_flits;
    cnt_.queued_worms += d.queued_worms;
    cnt_.pending_posts += d.pending_posts;
    cnt_.cons_flits_total += d.cons_flits_total;
    cnt_.pending_heads_total += d.pending_heads_total;
    stats_.link_flit_hops += static_cast<std::uint64_t>(d.link_flit_hops);
    stats_.gather_deferred += static_cast<std::uint64_t>(d.gather_deferred);
    stats_.gather_deposits += static_cast<std::uint64_t>(d.gather_deposits);
    stats_.absorb_deliveries +=
        static_cast<std::uint64_t>(d.absorb_deliveries);
    d = NetCounters{};
  }
  assert(cnt_.in_flight >= 0 && cnt_.live_flits >= 0 &&
         cnt_.queued_worms >= 0 && cnt_.pending_posts >= 0 &&
         cnt_.cons_flits_total >= 0 && cnt_.pending_heads_total >= 0);
}

void Network::fold_head_transfers() {
  // Serial section: repatriate heads created across strip boundaries during
  // traverse into their owners' gate counters.  heads_xfer is written only
  // by its own executor (mid-tick) and zeroed here, so it is single-writer
  // and race-free under the barrier's happens-before edges.
  for (ShardCtx& c : shard_ctx_) {
    for (std::size_t o = 0; o < c.heads_xfer.size(); ++o) {
      if (c.heads_xfer[o] != 0) {
        shard_ctx_[o].work_heads += c.heads_xfer[o];
        c.heads_xfer[o] = 0;
      }
    }
  }
}

void Network::decide_fast_forward(Cycle now) {
  // Barrier-B serial section: the sharded kernel's ff_epilogue.  The
  // per-shard marks cover the whole tick (phases 1-4 on every strip), so
  // folding them reproduces exactly the sequential kernel's eligibility
  // test.  ff_until_/ff_armed_at_ and the engine's wake request are plain
  // fields written here on a shard thread; the pool's done-chain publishes
  // them to the main thread before tick_sharded returns.
  if (!ff_on_) return;
  bool acted = false;
  bool blocked = false;
  Cycle next = kNoGate;
  for (const ShardCtx& c : shard_ctx_) {
    acted = acted || c.ff_acted;
    blocked = blocked || c.ff_blocked;
    if (c.ff_next < next) next = c.ff_next;
  }
  if (!acted && !blocked && next != kNoGate && next > now + 1) {
    arm_fast_forward(now, next);
    ff_idle_tick_ = true;  // tick_sharded reports idle: the run loop jumps
  }
}

void Network::replay_own_deliveries(Cycle now) {
  // Parallel half of the opt-in replay: every delivery parked in this
  // shard's mailbox targets an own-strip node (phases 1-3 drain only own
  // consumption channels), so running the handler here touches only
  // per-node state — plus engine scheduling, which is redirected into the
  // thread-local stage buffer and committed serially in finish_deliveries.
  // Order-sensitive global effects (latency samples, in-flight accounting)
  // stay in the serial half.
  ShardCtx& ctx = *tls_shard_;
  if (ctx.deliveries.empty()) return;
  sim::Engine::set_stage_buffer(&ctx.staged);
  for (DeliveryRec& rec : ctx.deliveries) {
    if (rec.final_dest) rec.worm->deliver_cycle = now;
    if (deliver_) deliver_(rec.where, rec.worm);
    ctx.staged_bounds.push_back(static_cast<std::uint32_t>(ctx.staged.size()));
  }
  sim::Engine::set_stage_buffer(nullptr);
}

void Network::finish_deliveries(Cycle now) {
  // Serial section: commit the parked deliveries in global key order.  Each
  // mailbox is already key-ordered (sweep_own order), and a router's
  // deliveries all sit in its owner's mailbox, so a k-way merge on the head
  // keys reproduces the sequential kernel's delivery sequence exactly —
  // including the relative order of one router's multiple consumption
  // channels, which stay consecutive within their shard's list.  With
  // parallel replay the handler already ran on the owning shard; here only
  // its order-sensitive effects are committed: the latency sample (Welford
  // accumulation is order-dependent), the delivery/in-flight counters, and
  // the staged engine events, flushed in merge order so the event queue's
  // sequence-number tie-breaking matches a sequential replay.
  const int n = mesh_.num_nodes();
  const int S = plan_.shards;
  for (ShardCtx& c : shard_ctx_) c.replay_cursor = 0;
  for (;;) {
    int best = -1;
    int best_key = n;
    for (int s = 0; s < S; ++s) {
      ShardCtx& c = shard_ctx_[static_cast<std::size_t>(s)];
      if (c.replay_cursor >= c.deliveries.size()) continue;
      int key = static_cast<int>(c.deliveries[c.replay_cursor].where) -
                tick_start_;
      if (key < 0) key += n;
      if (key < best_key) {
        best_key = key;
        best = s;
      }
    }
    if (best < 0) break;
    ShardCtx& c = shard_ctx_[static_cast<std::size_t>(best)];
    const std::size_t i = c.replay_cursor++;
    DeliveryRec& rec = c.deliveries[i];
    if (parallel_replay_) {
      if (rec.final_dest) {
        stats_.worm_latency.add(
            static_cast<double>(now - rec.worm->inject_cycle));
        ++stats_.worms_delivered;
        assert(cnt_.in_flight > 0);
        --cnt_.in_flight;
      }
      const std::uint32_t lo = i == 0 ? 0 : c.staged_bounds[i - 1];
      const std::uint32_t hi = c.staged_bounds[i];
      for (std::uint32_t k = lo; k < hi; ++k) {
        eng_.schedule_at(c.staged[k].when, std::move(c.staged[k].cb));
      }
    } else {
      commit_delivery(rec.where, rec.worm, rec.final_dest, now);
    }
    // Drop the mailbox reference here, inside the serial section: if it is
    // the last one the worm is recycled without racing another shard.
    rec.worm = nullptr;
  }
  for (ShardCtx& c : shard_ctx_) {
    c.deliveries.clear();
    c.staged.clear();
    c.staged_bounds.clear();
  }
}

void Network::rebalance_shards() {
  // Between ticks only: the main thread owns all shard state here.  Any
  // contiguous row partition is bit-identical (see shard_plan.h), so moving
  // the strip boundaries is purely a load-balancing decision.  The cost
  // model is deliberately simple and deterministic: a row costs its
  // accumulated link-heatmap traffic plus a fixed weight per currently
  // scheduled router (64, roughly a traverse sweep's cost relative to one
  // recorded hop) plus 1 so empty rows still spread evenly.
  if (plan_.shards <= 1) return;
  assert(!sharded_active_);
  const int W = plan_.width;
  const int H = plan_.height;
  std::vector<std::uint64_t> cost(static_cast<std::size_t>(H), 0);
  for (int y = 0; y < H; ++y) {
    std::uint64_t c = 1;
    for (int x = 0; x < W; ++x) {
      const NodeId id = y * W + x;
      for (int d = 0; d < kNumLinkDirs; ++d) {
        c += heatmap_.hops(id, d);
      }
      if (arena_.words(id).scheduled) c += 64;
    }
    cost[static_cast<std::size_t>(y)] = c;
  }
  plan_ = compute_shard_plan(mesh_, plan_.shards, cost);
  // The per-shard work gates are ownership-relative: recompute them from
  // ground truth under the new strip boundaries.
  for (ShardCtx& c : shard_ctx_) {
    c.work_posts = 0;
    c.work_cons = 0;
    c.work_qworms = 0;
    c.work_heads = 0;
  }
  for (NodeId id = 0; id < mesh_.num_nodes(); ++id) {
    ShardCtx& c = shard_ctx_[plan_.shard_of[static_cast<std::size_t>(id)]];
    const NodeWords& w = arena_.words(id);
    c.work_posts +=
        static_cast<std::int64_t>(ifaces_[id].pending_posts.size());
    c.work_qworms += ifaces_[id].inj_work;
    c.work_cons += w.cons_flits;
    c.work_heads += std::popcount(w.pending);
  }
}

void Network::publish_shard_metrics() {
  metrics_->counter("net.ff_cycles").set(ff_cycles_);
  metrics_->counter("net.ff_events").set(ff_events_);
  if (plan_.shards <= 1) return;
  for (int s = 0; s < plan_.shards; ++s) {
    const ShardCtx& c = shard_ctx_[static_cast<std::size_t>(s)];
    const std::string p = "shard." + std::to_string(s) + ".";
    metrics_->counter(p + "barrier_spins").set(c.barrier_spins);
    metrics_->counter(p + "order_spins").set(c.order_spins);
    metrics_->counter(p + "ticks").set(c.ticks);
    metrics_->counter(p + "routers_traversed").set(c.routers_traversed);
  }
}

} // namespace mdw::noc
