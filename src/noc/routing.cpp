#include "noc/routing.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <vector>

namespace mdw::noc {

const char* routing_name(RoutingAlgo a) {
  switch (a) {
    case RoutingAlgo::EcubeXY: return "ecube-xy";
    case RoutingAlgo::EcubeYX: return "ecube-yx";
    case RoutingAlgo::WestFirst: return "west-first";
    case RoutingAlgo::EastFirst: return "east-first";
  }
  return "?";
}

DirList permitted_dirs(RoutingAlgo algo, const MeshShape& mesh,
                       NodeId cur, NodeId dst) {
  const Coord c = mesh.coord_of(cur), d = mesh.coord_of(dst);
  const int dx = d.x - c.x, dy = d.y - c.y;
  DirList out;
  if (dx == 0 && dy == 0) return out;
  switch (algo) {
    case RoutingAlgo::EcubeXY:
      if (dx > 0) out.push_back(Dir::East);
      else if (dx < 0) out.push_back(Dir::West);
      else if (dy > 0) out.push_back(Dir::North);
      else out.push_back(Dir::South);
      break;
    case RoutingAlgo::EcubeYX:
      if (dy > 0) out.push_back(Dir::North);
      else if (dy < 0) out.push_back(Dir::South);
      else if (dx > 0) out.push_back(Dir::East);
      else out.push_back(Dir::West);
      break;
    case RoutingAlgo::WestFirst:
      // All west hops must be taken first and exclusively.
      if (dx < 0) {
        out.push_back(Dir::West);
      } else {
        if (dx > 0) out.push_back(Dir::East);
        if (dy > 0) out.push_back(Dir::North);
        if (dy < 0) out.push_back(Dir::South);
      }
      break;
    case RoutingAlgo::EastFirst:
      if (dx > 0) {
        out.push_back(Dir::East);
      } else {
        if (dx < 0) out.push_back(Dir::West);
        if (dy > 0) out.push_back(Dir::North);
        if (dy < 0) out.push_back(Dir::South);
      }
      break;
  }
  return out;
}

namespace {

// Legal-turn predicate: may a worm that last moved `from` now move `to`?
bool legal_turn(RoutingAlgo algo, Dir from, Dir to) {
  if (to == opposite(from)) return false; // 180-degree turns never allowed
  const bool to_x = (to == Dir::East || to == Dir::West);
  const bool from_x = (from == Dir::East || from == Dir::West);
  switch (algo) {
    case RoutingAlgo::EcubeXY:
      // Only X->Y turns; straight-through always fine.
      return from == to || (from_x && !to_x);
    case RoutingAlgo::EcubeYX:
      return from == to || (!from_x && to_x);
    case RoutingAlgo::WestFirst:
      // No turn may enter West.
      return to != Dir::West || from == Dir::West;
    case RoutingAlgo::EastFirst:
      return to != Dir::East || from == Dir::East;
  }
  return false;
}

} // namespace

bool is_conformant_path(RoutingAlgo algo, const MeshShape& mesh,
                        std::span<const NodeId> path) {
  if (path.size() < 2) return true;
  // Duplicate-channel detection via an epoch-stamped per-channel table
  // (index = node * 4 + direction): O(hops) with no per-call allocation.
  // This runs on every worm the planner builds (the well-formedness asserts
  // are kept in release builds), so a node-allocating set here was hot.
  static thread_local std::vector<std::uint32_t> channel_epoch;
  static thread_local std::uint32_t epoch = 0;
  const std::size_t channels =
      static_cast<std::size_t>(mesh.num_nodes()) * kNumLinkDirs;
  if (channel_epoch.size() < channels) channel_epoch.resize(channels, 0);
  if (++epoch == 0) {  // stamp wrap: invalidate everything once
    std::fill(channel_epoch.begin(), channel_epoch.end(), 0);
    epoch = 1;
  }
  Dir prev = Dir::Local;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    if (!mesh.adjacent(path[i], path[i + 1])) return false;
    const Dir d = mesh.step_dir(path[i], path[i + 1]);
    auto& stamp = channel_epoch[static_cast<std::size_t>(path[i]) *
                                    kNumLinkDirs +
                                static_cast<std::size_t>(d)];
    if (stamp == epoch) return false;  // channel already used by this path
    stamp = epoch;
    if (i > 0 && !legal_turn(algo, prev, d)) return false;
    prev = d;
  }
  return true;
}

namespace {

template <class Vec>
void build_unicast_path(RoutingAlgo algo, const MeshShape& mesh, NodeId src,
                        NodeId dst, Vec& path) {
  path.push_back(src);
  NodeId cur = src;
  while (cur != dst) {
    const auto dirs = permitted_dirs(algo, mesh, cur, dst);
    // Deterministic choice: first permitted direction (dimension order
    // within the turn-model constraints).
    cur = mesh.neighbor(cur, dirs.front());
    path.push_back(cur);
  }
}

} // namespace

std::vector<NodeId> unicast_path(RoutingAlgo algo, const MeshShape& mesh,
                                 NodeId src, NodeId dst) {
  std::vector<NodeId> path;
  build_unicast_path(algo, mesh, src, dst, path);
  return path;
}

void append_unicast_path(RoutingAlgo algo, const MeshShape& mesh, NodeId src,
                         NodeId dst, PathVec& out) {
  assert(out.empty());
  build_unicast_path(algo, mesh, src, dst, out);
}

RoutingAlgo reply_algo_for(RoutingAlgo request_algo) {
  switch (request_algo) {
    case RoutingAlgo::EcubeXY: return RoutingAlgo::EcubeYX;
    case RoutingAlgo::EcubeYX: return RoutingAlgo::EcubeXY;
    case RoutingAlgo::WestFirst: return RoutingAlgo::EastFirst;
    case RoutingAlgo::EastFirst: return RoutingAlgo::WestFirst;
  }
  return RoutingAlgo::EcubeYX;
}

} // namespace mdw::noc
