#include "obs/metrics.h"

#include <fstream>

#include "obs/heatmap.h"

namespace mdw::obs {

namespace {

/// Minimal JSON string escaping (metric names are ours, but be safe).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

void write_histogram_json(std::ostream& os, const HistogramMetric& h) {
  os << "{\"count\": " << h.count() << ", \"mean\": " << h.mean()
     << ", \"min\": " << h.min() << ", \"max\": " << h.max()
     << ", \"stddev\": " << h.stddev() << ", \"p50\": " << h.p50()
     << ", \"p90\": " << h.p90() << ", \"p99\": " << h.p99()
     << ", \"buckets\": [";
  const auto& counts = h.histogram().buckets();
  bool first = true;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    if (!first) os << ", ";
    first = false;
    os << "[" << i << ", " << counts[i] << "]";
  }
  os << "]}";
}

template <typename Map, typename Fn>
void write_section(std::ostream& os, const char* key, const Map& map, Fn fn) {
  os << "  \"" << key << "\": {";
  bool first = true;
  for (const auto& [name, metric] : map) {
    if (!first) os << ",";
    first = false;
    os << "\n    \"" << json_escape(name) << "\": ";
    fn(*metric);
  }
  os << (first ? "" : "\n  ") << "}";
}

} // namespace

Counter& MetricsRegistry::counter(const std::string& name) {
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

HistogramMetric& MetricsRegistry::histogram(const std::string& name, double lo,
                                            double bucket_width,
                                            std::size_t buckets) {
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<HistogramMetric>(lo, bucket_width, buckets);
  return *slot;
}

const Counter* MetricsRegistry::find_counter(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : it->second.get();
}

const HistogramMetric* MetricsRegistry::find_histogram(
    const std::string& name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

bool MetricsRegistry::merge_from(const MetricsRegistry& o) {
  bool ok = true;
  for (const auto& [name, c] : o.counters_) counter(name).inc(c->value());
  for (const auto& [name, g] : o.gauges_) {
    Gauge& mine = gauge(name);
    mine.set(mine.value() + g->value());
  }
  for (const auto& [name, h] : o.histograms_) {
    auto& slot = histograms_[name];
    if (!slot) {
      slot = std::make_unique<HistogramMetric>(*h);
    } else {
      ok &= slot->merge_from(*h);
    }
  }
  return ok;
}

void MetricsRegistry::write_json(std::ostream& os) const {
  os << "{\n";
  write_section(os, "counters", counters_,
                [&os](const Counter& c) { os << c.value(); });
  os << ",\n";
  write_section(os, "gauges", gauges_,
                [&os](const Gauge& g) { os << g.value(); });
  os << ",\n";
  write_section(os, "histograms", histograms_,
                [&os](const HistogramMetric& h) { write_histogram_json(os, h); });
  os << "\n}\n";
}

bool write_metrics_json_file(const std::string& path,
                             const MetricsRegistry& registry,
                             const LinkHeatmap* heatmap) {
  std::ofstream os(path);
  if (!os) return false;
  os << "{\n\"metrics\": ";
  registry.write_json(os);
  if (heatmap != nullptr) {
    os << ",\n\"links\": ";
    heatmap->write_json(os);
  }
  os << "\n}\n";
  return static_cast<bool>(os);
}

} // namespace mdw::obs
