// Windowed steady-state statistics for long streaming runs.
//
// Long workload replays have two regimes: a warmup transient (cold caches,
// empty directories, plan/route caches filling) and the steady state the
// experiments actually care about.  WindowedStats drops everything before a
// caller-declared warmup cutoff, then buckets completed accesses and
// invalidation transactions into fixed-width cycle windows, keeping one
// latency histogram per window so each window reports its own percentiles.
//
// Hot-path contract matches the rest of src/obs: record_* are a handful of
// arithmetic ops plus one histogram bucket increment; no allocation unless
// a new window opens (amortized one small vector push per window).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/stats.h"
#include "sim/types.h"

namespace mdw::obs {

class MetricsRegistry;

/// One steady-state window's summary.
struct WindowRow {
  Cycle start = 0;              // window start cycle (absolute)
  Cycle length = 0;             // window width in cycles
  std::uint64_t accesses = 0;   // processor reads+writes completed
  std::uint64_t inval_txns = 0; // invalidation transactions completed
  double lat_mean = 0;          // invalidation latency within the window
  double lat_p50 = 0;
  double lat_p90 = 0;
  double lat_p99 = 0;
};

class WindowedStats {
public:
  /// Samples at cycles < `warmup_end` are dropped; windows are
  /// `window_cycles` wide, anchored at `warmup_end`.  The latency
  /// histograms use (0, lat_bucket, lat_buckets) — defaults resolve 32k
  /// cycles at 32-cycle buckets, matching the machine's inval_latency
  /// registry layout's range at finer granularity.
  explicit WindowedStats(Cycle warmup_end = 0, Cycle window_cycles = 10'000,
                         double lat_bucket = 32.0,
                         std::size_t lat_buckets = 1024);

  /// Declare the warmup cutoff after construction (the runner learns the
  /// cutoff cycle only once the warmup access count retires).  Discards
  /// anything already recorded — call before the first steady sample.
  void set_warmup_end(Cycle c);

  [[nodiscard]] Cycle warmup_end() const { return warmup_end_; }
  [[nodiscard]] Cycle window_cycles() const { return window_; }

  void record_access(Cycle now);
  /// `home_shard` (>= 0) attributes the transaction to the cycle-kernel
  /// shard owning its home node's router (noc::Network::shard_of); pass -1
  /// when the sequential kernel is active.  Attributed counts surface as
  /// stream.steady_txns.shard.<s> counters, making a shard whose
  /// transactions stopped completing visible in a stalled run's snapshot.
  void record_txn(Cycle end, double latency, int home_shard = -1);

  /// Steady-state transaction counts per home shard (empty when no
  /// attributed transaction was recorded).
  [[nodiscard]] const std::vector<std::uint64_t>& shard_txns() const {
    return shard_txns_;
  }

  /// Windows in time order.  Rows cover [warmup_end, last sample]; the
  /// final (typically partial) window is included with its real length so
  /// throughput normalization stays honest.  `end_cycle` (>= last sample)
  /// truncates the last row's reported length.
  [[nodiscard]] std::vector<WindowRow> rows(Cycle end_cycle) const;

  /// Aggregate over every steady-state sample (not per window).
  [[nodiscard]] std::uint64_t steady_accesses() const { return accesses_; }
  [[nodiscard]] std::uint64_t steady_txns() const {
    return total_lat_.sampler().count();
  }
  [[nodiscard]] const sim::Histogram& steady_latency() const {
    return total_lat_;
  }

  /// Mirror the steady-state aggregates into a registry: counters
  /// stream.steady_accesses / stream.steady_txns, histograms
  /// stream.window_accesses (per-window access counts) and
  /// stream.steady_inval_latency (every steady-state txn latency).
  void snapshot_into(MetricsRegistry& reg, Cycle end_cycle) const;

private:
  struct Window {
    std::uint64_t accesses = 0;
    sim::Histogram lat;
    explicit Window(double bucket, std::size_t buckets)
        : lat(0.0, bucket, buckets) {}
  };

  Window& window_at(Cycle c);

  Cycle warmup_end_;
  Cycle window_;
  double lat_bucket_;
  std::size_t lat_buckets_;
  std::vector<Window> windows_;
  std::uint64_t accesses_ = 0;
  sim::Histogram total_lat_;
  std::vector<std::uint64_t> shard_txns_;  // indexed by home shard
};

} // namespace mdw::obs
