#include "obs/windowed.h"

#include <algorithm>
#include <string>

#include "obs/metrics.h"

namespace mdw::obs {

WindowedStats::WindowedStats(Cycle warmup_end, Cycle window_cycles,
                             double lat_bucket, std::size_t lat_buckets)
    : warmup_end_(warmup_end),
      window_(window_cycles > 0 ? window_cycles : 1),
      lat_bucket_(lat_bucket), lat_buckets_(lat_buckets),
      total_lat_(0.0, lat_bucket, lat_buckets) {}

void WindowedStats::set_warmup_end(Cycle c) {
  warmup_end_ = c;
  windows_.clear();
  accesses_ = 0;
  total_lat_ = sim::Histogram(0.0, lat_bucket_, lat_buckets_);
  shard_txns_.clear();
}

WindowedStats::Window& WindowedStats::window_at(Cycle c) {
  const auto idx = static_cast<std::size_t>((c - warmup_end_) / window_);
  while (windows_.size() <= idx) {
    windows_.emplace_back(Window(lat_bucket_, lat_buckets_));
  }
  return windows_[idx];
}

void WindowedStats::record_access(Cycle now) {
  if (now < warmup_end_) return;
  ++accesses_;
  ++window_at(now).accesses;
}

void WindowedStats::record_txn(Cycle end, double latency, int home_shard) {
  if (end < warmup_end_) return;
  window_at(end).lat.add(latency);
  total_lat_.add(latency);
  if (home_shard >= 0) {
    const auto s = static_cast<std::size_t>(home_shard);
    if (shard_txns_.size() <= s) shard_txns_.resize(s + 1, 0);
    ++shard_txns_[s];
  }
}

std::vector<WindowRow> WindowedStats::rows(Cycle end_cycle) const {
  std::vector<WindowRow> out;
  out.reserve(windows_.size());
  for (std::size_t i = 0; i < windows_.size(); ++i) {
    const Window& w = windows_[i];
    WindowRow row;
    row.start = warmup_end_ + static_cast<Cycle>(i) * window_;
    const Cycle natural_end = row.start + window_;
    row.length = (i + 1 == windows_.size() && end_cycle > row.start &&
                  end_cycle < natural_end)
                     ? end_cycle - row.start
                     : window_;
    row.accesses = w.accesses;
    row.inval_txns = w.lat.sampler().count();
    row.lat_mean = w.lat.sampler().mean();
    row.lat_p50 = w.lat.quantile(0.50);
    row.lat_p90 = w.lat.quantile(0.90);
    row.lat_p99 = w.lat.quantile(0.99);
    out.push_back(row);
  }
  return out;
}

void WindowedStats::snapshot_into(MetricsRegistry& reg,
                                  Cycle end_cycle) const {
  reg.counter("stream.steady_accesses").set(accesses_);
  reg.counter("stream.steady_txns").set(steady_txns());
  auto& wh = reg.histogram("stream.window_accesses", 0.0, 64.0, 1024);
  for (const WindowRow& r : rows(end_cycle)) {
    wh.add(static_cast<double>(r.accesses));
  }
  auto& lh = reg.histogram("stream.steady_inval_latency", 0.0, lat_bucket_,
                           lat_buckets_);
  (void)lh.merge_sim(total_lat_);
  for (std::size_t s = 0; s < shard_txns_.size(); ++s) {
    reg.counter("stream.steady_txns.shard." + std::to_string(s))
        .set(shard_txns_[s]);
  }
}

} // namespace mdw::obs
