#include "obs/heatmap.h"

#include <algorithm>

namespace mdw::obs {

namespace {
constexpr const char* kDirNames[LinkHeatmap::kDirs] = {"N", "S", "E", "W"};
// Outgoing-link displacement per direction, matching noc::Dir order.
constexpr int kDx[LinkHeatmap::kDirs] = {0, 0, 1, -1};
constexpr int kDy[LinkHeatmap::kDirs] = {1, -1, 0, 0};
} // namespace

const char* LinkHeatmap::dir_name(int dir) { return kDirNames[dir]; }

std::uint64_t LinkHeatmap::total_hops() const {
  std::uint64_t sum = 0;
  for (std::uint64_t v : hops_) sum += v;
  return sum;
}

std::uint64_t LinkHeatmap::total_stalls() const {
  std::uint64_t sum = 0;
  for (std::uint64_t v : stalls_) sum += v;
  return sum;
}

bool LinkHeatmap::merge_from(const LinkHeatmap& o) {
  if (w_ == 0 && h_ == 0) {
    *this = o;
    return true;
  }
  if (w_ != o.w_ || h_ != o.h_) return false;
  for (std::size_t i = 0; i < hops_.size(); ++i) {
    hops_[i] += o.hops_[i];
    stalls_[i] += o.stalls_[i];
  }
  return true;
}

bool LinkHeatmap::has_link(int node, int dir) const {
  const int x = node % w_ + kDx[dir];
  const int y = node / w_ + kDy[dir];
  return x >= 0 && x < w_ && y >= 0 && y < h_;
}

LinkHeatmap::Hottest LinkHeatmap::hottest() const {
  Hottest best;
  for (int node = 0; node < num_nodes(); ++node) {
    for (int dir = 0; dir < kDirs; ++dir) {
      if (hops(node, dir) > best.hops) {
        best = Hottest{node, dir, hops(node, dir)};
      }
    }
  }
  return best;
}

void LinkHeatmap::render_ascii(std::ostream& os) const {
  // Per-node totals over the four outgoing links.
  std::vector<std::uint64_t> node_total(static_cast<std::size_t>(num_nodes()), 0);
  std::uint64_t max_total = 0;
  for (int node = 0; node < num_nodes(); ++node) {
    for (int dir = 0; dir < kDirs; ++dir) node_total[node] += hops(node, dir);
    max_total = std::max(max_total, node_total[node]);
  }
  os << "link heatmap (" << w_ << "x" << h_
     << " mesh, per-node outgoing flit-hops; '.' = 0, '9' = " << max_total
     << ")\n";
  for (int y = h_ - 1; y >= 0; --y) {
    os << "  ";
    for (int x = 0; x < w_; ++x) {
      const std::uint64_t v = node_total[static_cast<std::size_t>(y) * w_ + x];
      if (v == 0 || max_total == 0) {
        os << ". ";
      } else {
        // Scale 1..max onto 1..9 (any traffic at all shows as >= 1).
        os << std::min<std::uint64_t>(9, 1 + (v * 9 - 1) / max_total) << " ";
      }
    }
    os << "\n";
  }
  const Hottest h = hottest();
  if (h.node >= 0) {
    os << "  hottest link: (" << h.node % w_ << "," << h.node / w_ << ") "
       << dir_name(h.dir) << " = " << h.hops << " flit-hops; total "
       << total_hops() << " hops, " << total_stalls() << " stall-cycles\n";
  }
}

void LinkHeatmap::write_csv(std::ostream& os) const {
  os << "node,x,y,dir,flit_hops,stall_cycles\n";
  for (int node = 0; node < num_nodes(); ++node) {
    for (int dir = 0; dir < kDirs; ++dir) {
      if (!has_link(node, dir)) continue;
      os << node << "," << node % w_ << "," << node / w_ << ","
         << dir_name(dir) << "," << hops(node, dir) << ","
         << stalls(node, dir) << "\n";
    }
  }
}

void LinkHeatmap::write_json(std::ostream& os) const {
  os << "[";
  bool first = true;
  for (int node = 0; node < num_nodes(); ++node) {
    for (int dir = 0; dir < kDirs; ++dir) {
      if (!has_link(node, dir)) continue;
      if (!first) os << ",";
      first = false;
      os << "\n  {\"node\": " << node << ", \"x\": " << node % w_
         << ", \"y\": " << node / w_ << ", \"dir\": \"" << dir_name(dir)
         << "\", \"flit_hops\": " << hops(node, dir)
         << ", \"stall_cycles\": " << stalls(node, dir) << "}";
    }
  }
  os << "\n]";
}

} // namespace mdw::obs
