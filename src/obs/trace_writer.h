// Chrome trace-event JSON writer (chrome://tracing / Perfetto compatible).
//
// Components hold a `TraceWriter*` that is nullptr when tracing is off; every
// emit site is guarded by that pointer, so the disabled cost is one branch.
// Timestamps are simulation cycles written as microseconds (1 cycle = 1 us in
// the viewer); tracks are (pid = 0, tid = node id).  Events are buffered and
// sorted by timestamp on write, so the output has monotonic `ts` fields.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "sim/types.h"

namespace mdw::obs {

class TraceWriter {
public:
  /// Completed span ("ph":"X"): [ts, ts+dur) on track `tid`.  `args_json`,
  /// when non-empty, must be a JSON object literal (e.g. R"({"d": 4})").
  void complete(std::string name, const char* cat, Cycle ts, Cycle dur,
                int tid, std::string args_json = {});

  /// Counter sample ("ph":"C"); rendered by the viewer as a value track.
  void counter(std::string name, Cycle ts, int tid, double value);

  /// Instant event ("ph":"i", thread scope).
  void instant(std::string name, const char* cat, Cycle ts, int tid);

  [[nodiscard]] std::size_t num_events() const { return events_.size(); }

  /// {"traceEvents": [...]} with events sorted by ts (stable, so same-cycle
  /// events keep emission order).
  void write(std::ostream& os) const;

  /// Returns false when the file cannot be opened or written.
  [[nodiscard]] bool write_file(const std::string& path) const;

private:
  struct Event {
    char ph;
    Cycle ts;
    Cycle dur;       // "X" events only
    int tid;
    double value;    // "C" events only
    std::string name;
    const char* cat;
    std::string args;
  };

  std::vector<Event> events_;
};

} // namespace mdw::obs
