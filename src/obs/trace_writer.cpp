#include "obs/trace_writer.h"

#include <algorithm>
#include <fstream>

namespace mdw::obs {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

} // namespace

void TraceWriter::complete(std::string name, const char* cat, Cycle ts,
                           Cycle dur, int tid, std::string args_json) {
  events_.push_back(Event{'X', ts, dur, tid, 0.0, std::move(name), cat,
                          std::move(args_json)});
}

void TraceWriter::counter(std::string name, Cycle ts, int tid, double value) {
  events_.push_back(Event{'C', ts, 0, tid, value, std::move(name), "", {}});
}

void TraceWriter::instant(std::string name, const char* cat, Cycle ts,
                          int tid) {
  events_.push_back(Event{'i', ts, 0, tid, 0.0, std::move(name), cat, {}});
}

void TraceWriter::write(std::ostream& os) const {
  std::vector<const Event*> sorted;
  sorted.reserve(events_.size());
  for (const Event& e : events_) sorted.push_back(&e);
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Event* a, const Event* b) { return a->ts < b->ts; });

  os << "{\"traceEvents\": [";
  bool first = true;
  for (const Event* e : sorted) {
    if (!first) os << ",";
    first = false;
    os << "\n{\"name\": \"" << json_escape(e->name) << "\", \"ph\": \""
       << e->ph << "\", \"ts\": " << e->ts << ", \"pid\": 0, \"tid\": "
       << e->tid;
    switch (e->ph) {
      case 'X':
        os << ", \"cat\": \"" << e->cat << "\", \"dur\": " << e->dur;
        if (!e->args.empty()) os << ", \"args\": " << e->args;
        break;
      case 'C':
        os << ", \"args\": {\"value\": " << e->value << "}";
        break;
      case 'i':
        os << ", \"cat\": \"" << e->cat << "\", \"s\": \"t\"";
        break;
      default: break;
    }
    os << "}";
  }
  os << "\n]}\n";
}

bool TraceWriter::write_file(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return false;
  write(os);
  return static_cast<bool>(os);
}

} // namespace mdw::obs
