// Observability: named counters, gauges, and fixed-bucket histograms with
// percentile summaries, owned by a MetricsRegistry (one per dsm::Machine).
//
// Hot-path contract: metric objects are plain memory writes.  Name lookups
// (std::map) happen once, at bind time; simulation code holds a pointer or a
// SamplerHandle and never touches the registry per event.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>

#include "sim/stats.h"

namespace mdw::obs {

class LinkHeatmap;

/// Monotonically increasing event count.
class Counter {
public:
  void inc(std::uint64_t n = 1) { v_ += n; }
  /// Snapshot-style overwrite (used when mirroring legacy stats structs).
  void set(std::uint64_t v) { v_ = v; }
  [[nodiscard]] std::uint64_t value() const { return v_; }

private:
  std::uint64_t v_ = 0;
};

/// Point-in-time value (occupancy, queue depth, cycle count).
class Gauge {
public:
  void set(double v) { v_ = v; }
  [[nodiscard]] double value() const { return v_; }

private:
  double v_ = 0.0;
};

/// Fixed-bucket histogram with streaming moments (via sim::Histogram) and
/// bucket-resolution percentiles.
class HistogramMetric {
public:
  HistogramMetric(double lo, double bucket_width, std::size_t buckets)
      : h_(lo, bucket_width, buckets) {}

  void add(double x) { h_.add(x); }

  [[nodiscard]] std::uint64_t count() const { return h_.sampler().count(); }
  [[nodiscard]] double sum() const { return h_.sampler().sum(); }
  [[nodiscard]] double mean() const { return h_.sampler().mean(); }
  [[nodiscard]] double min() const { return h_.sampler().min(); }
  [[nodiscard]] double max() const { return h_.sampler().max(); }
  [[nodiscard]] double stddev() const { return h_.sampler().stddev(); }
  [[nodiscard]] double quantile(double q) const { return h_.quantile(q); }
  [[nodiscard]] double p50() const { return h_.quantile(0.50); }
  [[nodiscard]] double p90() const { return h_.quantile(0.90); }
  [[nodiscard]] double p99() const { return h_.quantile(0.99); }

  [[nodiscard]] const sim::Histogram& histogram() const { return h_; }

  /// Fold another histogram's samples in; layouts must match (returns false
  /// and leaves *this untouched otherwise).  Scheduling-independent: the
  /// merged moments depend only on the operands (see sim::Sampler).
  bool merge_from(const HistogramMetric& o) { return h_.merge_from(o.h_); }

  /// Same, from a raw sim::Histogram (collectors like obs::WindowedStats
  /// accumulate off-registry and fold in at snapshot time).
  bool merge_sim(const sim::Histogram& o) { return h_.merge_from(o); }

private:
  sim::Histogram h_;
};

/// Named metric store.  get-or-create accessors return stable references
/// (metrics are never removed); find_* return nullptr when absent.
class MetricsRegistry {
public:
  [[nodiscard]] Counter& counter(const std::string& name);
  [[nodiscard]] Gauge& gauge(const std::string& name);
  /// The bucket layout is fixed by the first call for a given name;
  /// subsequent calls return the existing histogram unchanged.
  [[nodiscard]] HistogramMetric& histogram(const std::string& name, double lo,
                                           double bucket_width,
                                           std::size_t buckets);

  [[nodiscard]] const Counter* find_counter(const std::string& name) const;
  [[nodiscard]] const Gauge* find_gauge(const std::string& name) const;
  [[nodiscard]] const HistogramMetric* find_histogram(
      const std::string& name) const;

  /// Fold another registry in: counters and gauges add, histograms merge
  /// bucket-wise (absent names are copied).  Merging per-worker registries
  /// in a fixed (e.g. point-index) order therefore produces contents
  /// independent of how the work was scheduled.  Returns false when a
  /// histogram shared by both registries has a mismatched bucket layout
  /// (that histogram is skipped; everything else still merges).
  bool merge_from(const MetricsRegistry& o);

  /// {"counters": {...}, "gauges": {...}, "histograms": {name: {count, mean,
  /// min, max, stddev, p50, p90, p99, bucket_lo, bucket_width, buckets}}}.
  /// Only non-empty buckets are emitted, as [index, count] pairs.
  void write_json(std::ostream& os) const;

private:
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<HistogramMetric>> histograms_;
};

/// Sampler-compatible facade over a registry histogram: keeps the existing
/// `stats().inval_latency.mean()`-style call sites compiling while the data
/// lands in the registry (and gains percentiles).  Unbound handles drop
/// samples and report zeros.
class SamplerHandle {
public:
  SamplerHandle() = default;
  explicit SamplerHandle(HistogramMetric* h) : h_(h) {}

  void bind(HistogramMetric* h) { h_ = h; }
  [[nodiscard]] bool bound() const { return h_ != nullptr; }

  void add(double x) {
    if (h_) h_->add(x);
  }
  [[nodiscard]] std::uint64_t count() const { return h_ ? h_->count() : 0; }
  [[nodiscard]] double sum() const { return h_ ? h_->sum() : 0.0; }
  [[nodiscard]] double mean() const { return h_ ? h_->mean() : 0.0; }
  [[nodiscard]] double min() const { return h_ ? h_->min() : 0.0; }
  [[nodiscard]] double max() const { return h_ ? h_->max() : 0.0; }
  [[nodiscard]] double stddev() const { return h_ ? h_->stddev() : 0.0; }
  [[nodiscard]] double quantile(double q) const {
    return h_ ? h_->quantile(q) : 0.0;
  }

private:
  HistogramMetric* h_ = nullptr;
};

/// Write one combined metrics dump: the registry plus (optionally) a
/// per-link heatmap under a top-level "links" key.  Returns false when the
/// file cannot be opened.
bool write_metrics_json_file(const std::string& path,
                             const MetricsRegistry& registry,
                             const LinkHeatmap* heatmap);

} // namespace mdw::obs
