// Per-link flit-hop and stall-cycle heatmap for a W x H mesh.
//
// Indexing matches noc::Dir for the four link directions: 0 = North (+y),
// 1 = South (-y), 2 = East (+x), 3 = West (-x); a (node, dir) pair names the
// node's *outgoing* link in that direction.  obs stays below noc in the
// layering, so the convention is duplicated here rather than included.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace mdw::obs {

class LinkHeatmap {
public:
  static constexpr int kDirs = 4;

  LinkHeatmap() = default;
  LinkHeatmap(int width, int height)
      : w_(width), h_(height),
        hops_(static_cast<std::size_t>(width) * height * kDirs, 0),
        stalls_(static_cast<std::size_t>(width) * height * kDirs, 0) {}

  [[nodiscard]] int width() const { return w_; }
  [[nodiscard]] int height() const { return h_; }
  [[nodiscard]] int num_nodes() const { return w_ * h_; }

  void record_hop(int node, int dir) { ++hops_[index(node, dir)]; }
  void record_stall(int node, int dir) { ++stalls_[index(node, dir)]; }

  [[nodiscard]] std::uint64_t hops(int node, int dir) const {
    return hops_[index(node, dir)];
  }
  [[nodiscard]] std::uint64_t stalls(int node, int dir) const {
    return stalls_[index(node, dir)];
  }

  [[nodiscard]] std::uint64_t total_hops() const;
  [[nodiscard]] std::uint64_t total_stalls() const;

  /// Element-wise accumulate another heatmap.  A default-constructed (0x0)
  /// target adopts the other's dimensions; otherwise the dimensions must
  /// match (returns false and leaves *this untouched when they do not).
  bool merge_from(const LinkHeatmap& o);

  /// Whether the outgoing link (node, dir) exists (not off the mesh edge).
  [[nodiscard]] bool has_link(int node, int dir) const;

  struct Hottest {
    int node = -1;
    int dir = -1;
    std::uint64_t hops = 0;
  };
  [[nodiscard]] Hottest hottest() const;

  [[nodiscard]] static const char* dir_name(int dir);

  /// ASCII mesh rendering: one cell per node showing its total outgoing
  /// flit-hops on a 0..9 scale ('.' = zero, '9' = hottest node), plus a
  /// legend and the hottest single link.
  void render_ascii(std::ostream& os) const;

  /// CSV: node,x,y,dir,flit_hops,stall_cycles — one row per existing link.
  void write_csv(std::ostream& os) const;

  /// JSON array: [{"node", "x", "y", "dir", "flit_hops", "stall_cycles"}].
  void write_json(std::ostream& os) const;

private:
  [[nodiscard]] std::size_t index(int node, int dir) const {
    return static_cast<std::size_t>(node) * kDirs + static_cast<std::size_t>(dir);
  }

  int w_ = 0, h_ = 0;
  std::vector<std::uint64_t> hops_, stalls_;
};

} // namespace mdw::obs
