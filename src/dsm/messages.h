// Coherence protocol messages.  Invalidation requests travel as
// core::InvalDirective payloads on (possibly multidestination) i-reserve
// worms; everything else is a unicast CohMsg.
#pragma once

#include <cstdint>

#include "noc/worm.h"
#include "sim/types.h"

namespace mdw::dsm {

enum class MsgType : std::uint8_t {
  ReadReq,       // requester -> home
  WriteReq,      // requester -> home (miss or upgrade)
  ReadReply,     // home -> requester, data
  WriteReply,    // home -> requester, data + exclusive grant
  InvalAck,      // sharer -> home (UA frameworks)
  Recall,        // home -> owner: invalidate + write back (write request)
  RecallShare,   // home -> owner: downgrade to shared + write back (read)
  RecallData,    // owner -> home, data
  Writeback,     // owner -> home, eviction of a Modified line
  WritebackAck,  // home -> owner
};

[[nodiscard]] inline const char* msg_name(MsgType t) {
  static constexpr const char* names[] = {
      "ReadReq",    "WriteReq",   "ReadReply", "WriteReply", "InvalAck",
      "Recall",     "RecallShare", "RecallData", "Writeback", "WritebackAck"};
  return names[static_cast<int>(t)];
}

struct CohMsg final : noc::Payload {
  MsgType type = MsgType::ReadReq;
  BlockAddr addr = 0;
  NodeId requester = kInvalidNode;  // original requester of the transaction
  TxnId txn = 0;
  std::uint64_t value = 0;          // logical block value (data worms)

  CohMsg() = default;
  CohMsg(MsgType t, BlockAddr a, NodeId r, TxnId x, std::uint64_t v = 0)
      : type(t), addr(a), requester(r), txn(x), value(v) {}
};

[[nodiscard]] constexpr bool carries_data(MsgType t) {
  return t == MsgType::ReadReply || t == MsgType::WriteReply ||
         t == MsgType::RecallData || t == MsgType::Writeback;
}

} // namespace mdw::dsm
