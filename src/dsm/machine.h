// The whole DSM machine: engine + network + one Node per mesh position,
// plus machine-level metrics (invalidation-transaction latency, traffic).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "core/plan_cache.h"
#include "dsm/node.h"
#include "noc/network.h"
#include "obs/metrics.h"
#include "obs/trace_writer.h"
#include "sim/engine.h"

namespace mdw::dsm {

struct InvalTxnRecord {
  BlockAddr addr = 0;
  NodeId home = kInvalidNode;
  int sharers = 0;
  int request_worms = 0;
  int ack_messages = 0;     // acknowledgments arriving at the home
  int total_ack_worms = 0;  // all ack worms, incl. hierarchical deposits
  Cycle start = 0;
  Cycle end = 0;
};

struct MachineStats {
  // Sampler-style handles over registry histograms of the same names (so
  // percentiles come for free; see obs::SamplerHandle).
  obs::SamplerHandle inval_latency; // write request reaching a Shared block ->
                                    // last ack collected (cycles)
  obs::SamplerHandle inval_sharers; // d per transaction
  std::uint64_t inval_txns = 0;
  std::uint64_t inval_request_worms = 0;
  std::uint64_t inval_ack_messages = 0;     // home arrivals
  std::uint64_t inval_total_ack_worms = 0;  // all ack worms in the network
  std::vector<InvalTxnRecord> records;  // populated when record_txns is set
};

class Machine {
public:
  /// `metrics` lets a harness collect several runs into one registry; when
  /// nullptr the machine owns its own.
  explicit Machine(const SystemParams& params,
                   obs::MetricsRegistry* metrics = nullptr);
  ~Machine();

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  [[nodiscard]] const SystemParams& params() const { return p_; }
  [[nodiscard]] sim::Engine& engine() { return eng_; }
  [[nodiscard]] noc::Network& network() { return *net_; }
  [[nodiscard]] Node& node(NodeId id) { return *nodes_[id]; }
  [[nodiscard]] int num_nodes() const { return static_cast<int>(nodes_.size()); }
  [[nodiscard]] NodeId home_of(BlockAddr a) const { return p_.home_of(a); }

  [[nodiscard]] TxnId next_txn() { return next_txn_++; }
  [[nodiscard]] MachineStats& stats() { return stats_; }
  void set_record_txns(bool on) { record_txns_ = on; }
  [[nodiscard]] bool record_txns() const { return record_txns_; }

  [[nodiscard]] obs::MetricsRegistry& metrics() { return *metrics_; }
  [[nodiscard]] core::PlanCache& plan_cache() { return plan_cache_; }

  /// Attach (or detach, with nullptr) a trace writer to the whole stack:
  /// engine, network, and the machine's transaction spans.
  void set_trace_writer(obs::TraceWriter* t);
  [[nodiscard]] obs::TraceWriter* tracer() const { return tracer_; }

  /// Mirror the scalar stats counters (machine, network, router and node
  /// aggregates) into the registry.  Called by dumps, not per event, so the
  /// simulation hot paths never pay for registry upkeep.
  void snapshot_metrics();

  // Transaction bookkeeping, called from the home Node.
  void txn_started(TxnId txn, const InvalTxnRecord& rec);
  void txn_finished(TxnId txn);

  /// Per-transaction completion observer (rec.end is stamped before the
  /// call).  One subscriber at a time; pass nullptr to detach.  Workload
  /// runners use it to window invalidation latencies without recording the
  /// full per-transaction vector (set_record_txns) at millions of txns.
  void set_txn_observer(std::function<void(const InvalTxnRecord&)> fn) {
    txn_observer_ = std::move(fn);
  }

  /// True when no processor operation is pending anywhere.
  [[nodiscard]] bool all_idle() const;

  /// Aggregate occupancy / message counters over all nodes.
  [[nodiscard]] std::uint64_t total_occupancy() const;

  /// Verify directory/cache agreement (coherence invariants); returns a
  /// human-readable violation description or an empty string.  Intended for
  /// tests — call at quiescence.
  [[nodiscard]] std::string check_coherence() const;

private:
  SystemParams p_;
  sim::Engine eng_;
  std::unique_ptr<obs::MetricsRegistry> own_metrics_;  // set iff not external
  obs::MetricsRegistry* metrics_;
  obs::TraceWriter* tracer_ = nullptr;
  std::unique_ptr<noc::Network> net_;
  core::PlanCache plan_cache_;
  std::vector<std::unique_ptr<Node>> nodes_;
  TxnId next_txn_ = 1;
  MachineStats stats_;
  std::function<void(const InvalTxnRecord&)> txn_observer_;
  bool record_txns_ = false;
  std::unordered_map<TxnId, InvalTxnRecord> live_txns_;
};

} // namespace mdw::dsm
