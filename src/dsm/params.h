// System-wide parameters (paper §6.1.1).
//
// All times are in network cycles of 5 ns: 100 MHz processors (2 cycles per
// processor cycle), 200 Mbyte/s links (one byte-flit per cycle), 20 ns
// router delay (4 cycles).  Controller occupancies and memory latency are
// chosen so the derived clean-read-miss breakdown (bench_miss_latency)
// lands in the DASH / Alewife / FLASH ballpark the paper cites.
#pragma once

#include "core/scheme.h"
#include "noc/router.h"
#include "noc/worm_builder.h"
#include "sim/types.h"

namespace mdw::dsm {

/// Coherence-service-layer knobs (DESIGN.md section 15).  The defaults
/// (0, 0) reproduce the legacy home behaviour exactly: invalidation
/// transactions launch the moment the directory decides one is needed,
/// with no per-home concurrency cap and no merging.
struct SvcParams {
  /// Per-home invalidation pipeline depth: at most this many invalidation
  /// transactions in flight at one home; further writes queue FIFO in the
  /// directory controller.  0 = unbounded (legacy).  1 serializes the home
  /// (the E11s baseline); k > 1 overlaps k transactions.
  int pipeline_depth = 0;
  /// Coalescing window (cycles).  When > 0, an admitted invalidation is
  /// held up to this long; others admitted at the same home in the window
  /// merge with it — one plan over the UNION of their sharer bitmaps, one
  /// multidestination worm wave, one ack wave completing every member.
  /// Effective only with pipeline_depth != 1 (depth 1 admits one at a
  /// time, so there is never a second transaction to merge with).
  Cycle coalesce_window = 0;
};

struct SystemParams {
  int mesh_w = 16;
  int mesh_h = 16;

  core::Scheme scheme = core::Scheme::UiUa;

  /// Consistency model.  false (default): sequential consistency — the home
  /// grants exclusive access only after all invalidation acks arrive [13].
  /// true: release-consistency-style overlap [1] — the exclusive grant is
  /// sent as soon as the i-reserve worms are launched and the acks complete
  /// in the background (the block stays `Waiting` for other requesters
  /// until they do, so writes to one block still serialize).
  bool eager_exclusive_reply = false;

  /// Dynamic per-hop adaptive routing for unicast protocol messages (only
  /// effective under the turn-model schemes, where the base routing offers
  /// a per-hop choice); multidestination worms stay source-planned.
  bool adaptive_unicast = false;

  noc::NocParams noc{};
  noc::WormSizing sizing{};
  SvcParams svc{};

  /// Bound on the invalidation-plan memo table (core::PlanCache); 0 disables
  /// memoization.  Purely a simulator-speed knob: results are bit-identical
  /// at any setting (DESIGN.md section 12).
  int plan_cache_entries = 4096;

  double cycle_ns = 5.0;   // one network cycle
  int proc_cycle = 2;      // network cycles per 100 MHz processor cycle

  // Controller / memory latencies (network cycles).
  int cache_access = 4;    // tag + data access at the CC
  int dir_lookup = 6;      // directory read-modify-write at the DC
  int mem_access = 24;     // DRAM block access
  int send_occupancy = 12; // OC cost to compose + launch one message
  int recv_occupancy = 12; // IC cost to accept + decode one message

  // Cache geometry: direct-mapped, 32-byte blocks.
  int cache_lines = 1024;

  [[nodiscard]] int num_nodes() const { return mesh_w * mesh_h; }
  [[nodiscard]] NodeId home_of(BlockAddr a) const {
    return static_cast<NodeId>(a % static_cast<BlockAddr>(num_nodes()));
  }
  [[nodiscard]] noc::RoutingAlgo request_algo() const {
    return core::request_algo_of(scheme);
  }
  [[nodiscard]] noc::RoutingAlgo reply_algo() const {
    return noc::reply_algo_for(request_algo());
  }
  /// VC class for unicast reply worms (east-first traffic must stay in its
  /// own class on the turn-model reply network; see Worm::vc_class).
  [[nodiscard]] int reply_vc_class() const {
    return request_algo() == noc::RoutingAlgo::WestFirst ? 1 : -1;
  }
};

} // namespace mdw::dsm
