// One DSM node: processor interface, cache controller (CC), directory
// controller (DC), and outgoing message controller (OC), mirroring the node
// organisation of the paper's §2.1 (DASH/Alewife/FLASH-style).
//
// Controller occupancy is modelled explicitly: the DC serializes message
// receptions (recv_occupancy + dir_lookup each), the OC serializes message
// compositions (send_occupancy each).  Home-node occupancy — the metric the
// paper optimizes — is the sum of both at the home.
//
// The processor interface is MSHR-based: any number of accesses to DISTINCT
// blocks may be outstanding at once (svc::Session drives this; the legacy
// harnesses still issue one at a time), while a second access to a block
// already in flight is a caller error.  The home side carries the service
// layer's per-home machinery (DESIGN.md section 15): a bounded invalidation
// pipeline with a FIFO overflow queue, and a coalescing window that merges
// back-to-back invalidations into one union-sharer-set multidestination
// worm wave.  Both are off by default (SvcParams) and the defaults are
// event-for-event identical to the pre-service-layer node.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/inval_planner.h"
#include "dsm/cache.h"
#include "dsm/directory.h"
#include "dsm/messages.h"
#include "dsm/params.h"
#include "sim/stats.h"

namespace mdw::dsm {

class Machine;

struct NodeStats {
  std::uint64_t occupancy_cycles = 0;   // DC + OC busy cycles at this node
  std::uint64_t msgs_sent = 0;
  std::uint64_t msgs_received = 0;
  sim::Sampler read_latency;            // completed processor reads (cycles)
  sim::Sampler write_latency;

  // Service-layer home-side counters.  The queue/coalesce counters are all
  // zero under default SvcParams; svc_pipeline_peak is always tracked (it
  // measures the home's natural invalidation concurrency even when no cap
  // is configured).
  std::uint64_t svc_enqueued = 0;        // invals that waited for a pipeline slot
  std::uint64_t svc_queue_wait_cycles = 0;  // total cycles spent waiting
  std::uint64_t svc_queue_peak = 0;      // max per-home queue depth observed
  std::uint64_t svc_pipeline_peak = 0;   // max concurrent inval txns at this home
  std::uint64_t svc_groups = 0;          // merged (coalesced) launches
  std::uint64_t svc_coalesced_txns = 0;  // member txns riding merged launches
};

class Node {
public:
  Node(Machine& machine, NodeId id, const SystemParams& params);

  /// Processor interface.  One outstanding access per BLOCK; accesses to
  /// distinct blocks may overlap (multi-outstanding clients go through
  /// svc::Session, which also enforces a per-client window).
  void read(BlockAddr a, std::function<void(std::uint64_t value)> done);
  void write(BlockAddr a, std::uint64_t value, std::function<void()> done);
  [[nodiscard]] bool op_pending() const { return !ops_.empty(); }
  [[nodiscard]] int ops_in_flight() const { return static_cast<int>(ops_.size()); }
  [[nodiscard]] bool op_pending_on(BlockAddr a) const { return ops_.count(a) > 0; }

  /// Entry point for every worm delivered (or absorbed) at this node.
  void handle_delivery(const noc::WormPtr& worm);

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] Cache& cache() { return cache_; }
  [[nodiscard]] const Cache& cache() const { return cache_; }
  [[nodiscard]] Directory& directory() { return dir_; }
  [[nodiscard]] const Directory& directory() const { return dir_; }
  [[nodiscard]] NodeStats& stats() { return stats_; }
  [[nodiscard]] const NodeStats& stats() const { return stats_; }

  /// Service-layer home-side introspection (describe_stalls, metrics).
  [[nodiscard]] std::size_t svc_queue_depth() const { return home_queue_.size(); }
  [[nodiscard]] int svc_live_invals() const { return live_invals_; }

private:
  // --- outgoing controller ------------------------------------------------
  /// Serialize a send through the OC; the worm is injected when composed.
  void oc_send(noc::WormPtr worm);
  void send_coh(MsgType t, BlockAddr a, NodeId dst, NodeId requester,
                TxnId txn, std::uint64_t value);

  // --- directory controller (home side) -----------------------------------
  /// Serialize an incoming-message handler through the DC.
  void dc_schedule(Cycle extra_busy, std::function<void()> fn);
  void dc_dispatch(std::shared_ptr<const CohMsg> m);
  void dc_read(BlockAddr a, NodeId requester);
  void dc_write(BlockAddr a, NodeId requester);
  void dc_on_ack(TxnId txn, int count);
  void dc_on_data(BlockAddr a, NodeId from, std::uint64_t v, bool writeback);
  void start_invalidation(BlockAddr a, DirEntry& e);
  void complete_recall(BlockAddr a, DirEntry& e, std::uint64_t v,
                       bool owner_kept_shared_copy);
  void grant(BlockAddr a, DirEntry& e);
  void drain_queue(BlockAddr a);

  // --- service layer: per-home inval pipeline + coalescing ----------------
  /// Gate a needed invalidation through the per-home pipeline (entry is
  /// already Waiting with its sharer set pruned).  Legacy defaults fall
  /// straight through to start_invalidation.
  void enqueue_invalidation(BlockAddr a);
  /// A pipeline slot is taken: launch now, or park in the coalescing buffer.
  void admit_invalidation(BlockAddr a);
  /// Launch everything parked in the coalescing buffer (merged when > 1).
  void flush_coalesce();
  /// Plan + launch one merged transaction over the union sharer bitmap.
  void launch_merged(std::vector<BlockAddr> blocks);
  /// Complete one member entry of a finished (single or merged) transaction.
  void complete_member(BlockAddr a, DirEntry& e);
  /// Release `n` pipeline slots and admit queued invalidations.
  void release_inval_slots(int n);
  void group_on_ack(TxnId txn, int count);

  // --- cache controller (sharer side) --------------------------------------
  void cc_schedule(Cycle extra_busy, std::function<void()> fn);
  void cc_invalidation(NodeId here,
                       std::shared_ptr<const core::InvalDirective> dir);
  void cc_invalidate_block(BlockAddr a);
  void cc_recall(BlockAddr a, bool downgrade_only);
  void cc_reply(const CohMsg& m);
  void install_line(BlockAddr a, LineState st, std::uint64_t value);
  void complete_op(BlockAddr a, std::uint64_t value);

  Machine& machine_;
  NodeId id_;
  const SystemParams& p_;
  Cache cache_;
  Directory dir_;
  NodeStats stats_;

  Cycle oc_free_at_ = 0;
  Cycle dc_free_at_ = 0;
  Cycle cc_free_at_ = 0;

  /// One outstanding processor access (MSHR entry), keyed by block.
  struct OutstandingOp {
    bool is_write = false;
    std::uint64_t wvalue = 0;
    Cycle start = 0;
    std::function<void(std::uint64_t)> done_read;
    std::function<void()> done_write;
  };
  std::unordered_map<BlockAddr, OutstandingOp> ops_;

  [[nodiscard]] OutstandingOp* find_op(BlockAddr a) {
    auto it = ops_.find(a);
    return it == ops_.end() ? nullptr : &it->second;
  }

  /// Modified-line evictions awaiting WritebackAck (non-silent writebacks;
  /// Recalls for these lines are ignored — the in-flight Writeback serves
  /// as the recall response at the home).
  std::unordered_set<BlockAddr> wb_pending_;

  /// Early-recall race: a Recall/RecallShare that overtook our WriteReply
  /// (they travel on different virtual networks).  Applied right after the
  /// write completes.  Value: downgrade_only.
  std::unordered_map<BlockAddr, bool> pending_recall_;

  /// Early-invalidation race: an invalidation that overtook our ReadReply.
  /// The read still completes (it was ordered before the write at the
  /// home), but the line must not stay cached.
  std::unordered_set<BlockAddr> pending_inval_;

  /// Home-side: transaction id -> block of the in-flight invalidation.
  std::unordered_map<TxnId, BlockAddr> txn_addr_;

  // --- service-layer home-side state (idle under default SvcParams) -------
  /// In-flight invalidation transactions at this home (members of a merged
  /// group each count as one — they are distinct logical transactions).
  int live_invals_ = 0;
  /// Blocks whose invalidation waits for a pipeline slot, FIFO, with the
  /// enqueue cycle for queue-wait accounting.
  std::deque<std::pair<BlockAddr, Cycle>> home_queue_;
  /// Admitted blocks parked for merging until the window flush.
  std::vector<BlockAddr> coalesce_buf_;
  /// Bumped on every flush; a scheduled window-expiry flush only fires if
  /// its captured epoch is still current (cancels stale timers after an
  /// early pipeline-full flush).
  std::uint64_t coalesce_epoch_ = 0;

  /// One coalesced launch: member blocks + their per-member machine txn
  /// ids, completed together on the shared ack wave (wire txn is the key).
  struct MergedGroup {
    std::vector<BlockAddr> blocks;
    std::vector<TxnId> member_txns;
    int acks_needed = 0;
    int acks_got = 0;
  };
  std::unordered_map<TxnId, MergedGroup> groups_;
};

} // namespace mdw::dsm
