// One DSM node: processor interface, cache controller (CC), directory
// controller (DC), and outgoing message controller (OC), mirroring the node
// organisation of the paper's §2.1 (DASH/Alewife/FLASH-style).
//
// Controller occupancy is modelled explicitly: the DC serializes message
// receptions (recv_occupancy + dir_lookup each), the OC serializes message
// compositions (send_occupancy each).  Home-node occupancy — the metric the
// paper optimizes — is the sum of both at the home.
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "core/inval_planner.h"
#include "dsm/cache.h"
#include "dsm/directory.h"
#include "dsm/messages.h"
#include "dsm/params.h"
#include "sim/stats.h"

namespace mdw::dsm {

class Machine;

struct NodeStats {
  std::uint64_t occupancy_cycles = 0;   // DC + OC busy cycles at this node
  std::uint64_t msgs_sent = 0;
  std::uint64_t msgs_received = 0;
  sim::Sampler read_latency;            // completed processor reads (cycles)
  sim::Sampler write_latency;
};

class Node {
public:
  Node(Machine& machine, NodeId id, const SystemParams& params);

  /// Processor interface (sequential consistency: one outstanding access).
  void read(BlockAddr a, std::function<void(std::uint64_t value)> done);
  void write(BlockAddr a, std::uint64_t value, std::function<void()> done);
  [[nodiscard]] bool op_pending() const { return op_.active; }

  /// Entry point for every worm delivered (or absorbed) at this node.
  void handle_delivery(const noc::WormPtr& worm);

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] Cache& cache() { return cache_; }
  [[nodiscard]] const Cache& cache() const { return cache_; }
  [[nodiscard]] Directory& directory() { return dir_; }
  [[nodiscard]] const Directory& directory() const { return dir_; }
  [[nodiscard]] NodeStats& stats() { return stats_; }
  [[nodiscard]] const NodeStats& stats() const { return stats_; }

private:
  // --- outgoing controller ------------------------------------------------
  /// Serialize a send through the OC; the worm is injected when composed.
  void oc_send(noc::WormPtr worm);
  void send_coh(MsgType t, BlockAddr a, NodeId dst, NodeId requester,
                TxnId txn, std::uint64_t value);

  // --- directory controller (home side) -----------------------------------
  /// Serialize an incoming-message handler through the DC.
  void dc_schedule(Cycle extra_busy, std::function<void()> fn);
  void dc_dispatch(std::shared_ptr<const CohMsg> m);
  void dc_read(BlockAddr a, NodeId requester);
  void dc_write(BlockAddr a, NodeId requester);
  void dc_on_ack(TxnId txn, int count);
  void dc_on_data(BlockAddr a, NodeId from, std::uint64_t v, bool writeback);
  void start_invalidation(BlockAddr a, DirEntry& e);
  void complete_recall(BlockAddr a, DirEntry& e, std::uint64_t v,
                       bool owner_kept_shared_copy);
  void grant(BlockAddr a, DirEntry& e);
  void drain_queue(BlockAddr a);

  // --- cache controller (sharer side) --------------------------------------
  void cc_schedule(Cycle extra_busy, std::function<void()> fn);
  void cc_invalidation(NodeId here,
                       std::shared_ptr<const core::InvalDirective> dir);
  void cc_recall(BlockAddr a, bool downgrade_only);
  void cc_reply(const CohMsg& m);
  void install_line(BlockAddr a, LineState st, std::uint64_t value);
  void complete_op(std::uint64_t value);

  Machine& machine_;
  NodeId id_;
  const SystemParams& p_;
  Cache cache_;
  Directory dir_;
  NodeStats stats_;

  Cycle oc_free_at_ = 0;
  Cycle dc_free_at_ = 0;
  Cycle cc_free_at_ = 0;

  struct CurrentOp {
    bool active = false;
    bool is_write = false;
    BlockAddr addr = 0;
    std::uint64_t wvalue = 0;
    Cycle start = 0;
    std::function<void(std::uint64_t)> done_read;
    std::function<void()> done_write;
  } op_;

  /// Modified-line evictions awaiting WritebackAck (non-silent writebacks;
  /// Recalls for these lines are ignored — the in-flight Writeback serves
  /// as the recall response at the home).
  std::unordered_set<BlockAddr> wb_pending_;

  /// Early-recall race: a Recall/RecallShare that overtook our WriteReply
  /// (they travel on different virtual networks).  Applied right after the
  /// write completes.  Value: downgrade_only.
  std::unordered_map<BlockAddr, bool> pending_recall_;

  /// Early-invalidation race: an invalidation that overtook our ReadReply.
  /// The read still completes (it was ordered before the write at the
  /// home), but the line must not stay cached.
  std::unordered_set<BlockAddr> pending_inval_;

  /// Home-side: transaction id -> block of the in-flight invalidation.
  std::unordered_map<TxnId, BlockAddr> txn_addr_;
};

} // namespace mdw::dsm
