// Direct-mapped write-back cache with MSI line states and a logical
// per-line value (no byte-level data; the value is used by the coherence
// checker to detect stale reads).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/types.h"

namespace mdw::dsm {

enum class LineState : std::uint8_t { Invalid, Shared, Modified };

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t dirty_evictions = 0;
  std::uint64_t invalidations_received = 0;
};

class Cache {
public:
  explicit Cache(int lines) : lines_(static_cast<std::size_t>(lines)) {}

  struct Line {
    BlockAddr tag = 0;
    LineState state = LineState::Invalid;
    std::uint64_t value = 0;
  };

  [[nodiscard]] LineState lookup(BlockAddr a) const {
    const Line& l = line_of(a);
    return (l.state != LineState::Invalid && l.tag == a) ? l.state
                                                         : LineState::Invalid;
  }

  [[nodiscard]] std::uint64_t value_of(BlockAddr a) const {
    return line_of(a).value;
  }

  void set_value(BlockAddr a, std::uint64_t v) { line_of(a).value = v; }

  struct Eviction {
    bool valid = false;
    BlockAddr addr = 0;
    bool dirty = false;
    std::uint64_t value = 0;
  };

  /// Install `a` with `st`, returning whatever was evicted.
  Eviction install(BlockAddr a, LineState st, std::uint64_t value) {
    Line& l = line_of(a);
    Eviction ev;
    if (l.state != LineState::Invalid && l.tag != a) {
      ev = Eviction{true, l.tag, l.state == LineState::Modified, l.value};
      ++stats_.evictions;
      if (ev.dirty) ++stats_.dirty_evictions;
    }
    l.tag = a;
    l.state = st;
    l.value = value;
    return ev;
  }

  /// Invalidate `a` if present; returns true if a copy existed.
  bool invalidate(BlockAddr a) {
    Line& l = line_of(a);
    ++stats_.invalidations_received;
    if (l.state == LineState::Invalid || l.tag != a) return false;
    l.state = LineState::Invalid;
    return true;
  }

  /// Modified -> Shared; returns the line value (for the writeback).
  std::uint64_t downgrade(BlockAddr a) {
    Line& l = line_of(a);
    if (l.tag == a && l.state == LineState::Modified)
      l.state = LineState::Shared;
    return l.value;
  }

  void set_state(BlockAddr a, LineState st) {
    Line& l = line_of(a);
    if (l.tag == a) l.state = st;
  }

  void note_hit() { ++stats_.hits; }
  void note_miss() { ++stats_.misses; }
  [[nodiscard]] const CacheStats& stats() const { return stats_; }
  [[nodiscard]] int num_lines() const { return static_cast<int>(lines_.size()); }

  /// Enumerate valid lines (for the coherence checker).
  template <typename Fn>
  void for_each_valid(Fn&& fn) const {
    for (const Line& l : lines_) {
      if (l.state != LineState::Invalid) fn(l);
    }
  }

private:
  [[nodiscard]] Line& line_of(BlockAddr a) {
    return lines_[a % lines_.size()];
  }
  [[nodiscard]] const Line& line_of(BlockAddr a) const {
    return lines_[a % lines_.size()];
  }

  std::vector<Line> lines_;
  CacheStats stats_;
};

} // namespace mdw::dsm
