#include "dsm/node.h"

#include <algorithm>
#include <cassert>

#include "dsm/machine.h"
#include "noc/worm_builder.h"

namespace mdw::dsm {

using core::InvalDirective;
using core::SharerRole;

Node::Node(Machine& machine, NodeId id, const SystemParams& params)
    : machine_(machine), id_(id), p_(params), cache_(params.cache_lines) {}

// ---------------------------------------------------------------------------
// Outgoing controller
// ---------------------------------------------------------------------------

void Node::oc_send(noc::WormPtr worm) {
  const Cycle now = machine_.engine().now();
  const Cycle compose_done =
      std::max(now, oc_free_at_) + static_cast<Cycle>(p_.send_occupancy);
  oc_free_at_ = compose_done;
  stats_.occupancy_cycles += static_cast<std::uint64_t>(p_.send_occupancy);
  ++stats_.msgs_sent;
  machine_.engine().schedule_at(compose_done, [this, worm = std::move(worm)] {
    machine_.network().inject(worm);
  });
}

void Node::send_coh(MsgType t, BlockAddr a, NodeId dst, NodeId requester,
                    TxnId txn, std::uint64_t value) {
  const bool reply = t == MsgType::ReadReply || t == MsgType::WriteReply ||
                     t == MsgType::InvalAck || t == MsgType::RecallData ||
                     t == MsgType::WritebackAck;
  const auto vnet = reply ? noc::VNet::Reply : noc::VNet::Request;
  const auto algo = reply ? p_.reply_algo() : p_.request_algo();
  const int flits = carries_data(t) ? p_.sizing.data_flits
                                    : p_.sizing.control_size(1);
  auto msg = std::make_shared<CohMsg>(t, a, requester, txn, value);
  const bool turn_model = algo == noc::RoutingAlgo::WestFirst ||
                          algo == noc::RoutingAlgo::EastFirst;
  noc::WormPtr worm =
      p_.adaptive_unicast && turn_model && id_ != dst
          ? noc::make_adaptive_unicast(algo, vnet, id_, dst, flits, txn,
                                       std::move(msg))
          : noc::make_unicast(machine_.network().mesh(), algo, vnet, id_, dst,
                              flits, txn, std::move(msg),
                              &machine_.network().route_cache());
  if (reply) worm->vc_class = p_.reply_vc_class();
  oc_send(std::move(worm));
}

// ---------------------------------------------------------------------------
// Processor interface
// ---------------------------------------------------------------------------

void Node::read(BlockAddr a, std::function<void(std::uint64_t)> done) {
  assert(ops_.count(a) == 0 && "one outstanding access per block");
  OutstandingOp op;
  op.is_write = false;
  op.start = machine_.engine().now();
  op.done_read = std::move(done);
  ops_.emplace(a, std::move(op));
  machine_.engine().schedule_after(p_.cache_access, [this, a] {
    if (cache_.lookup(a) != LineState::Invalid) {
      cache_.note_hit();
      complete_op(a, cache_.value_of(a));
      return;
    }
    cache_.note_miss();
    send_coh(MsgType::ReadReq, a, machine_.home_of(a), id_, 0, 0);
  });
}

void Node::write(BlockAddr a, std::uint64_t value, std::function<void()> done) {
  assert(ops_.count(a) == 0 && "one outstanding access per block");
  OutstandingOp op;
  op.is_write = true;
  op.wvalue = value;
  op.start = machine_.engine().now();
  op.done_write = std::move(done);
  ops_.emplace(a, std::move(op));
  machine_.engine().schedule_after(p_.cache_access, [this, a, value] {
    if (cache_.lookup(a) == LineState::Modified) {
      cache_.note_hit();
      cache_.set_value(a, value);
      complete_op(a, value);
      return;
    }
    // Shared (upgrade) and Invalid (miss) both go to the home.
    cache_.note_miss();
    send_coh(MsgType::WriteReq, a, machine_.home_of(a), id_, 0, 0);
  });
}

void Node::complete_op(BlockAddr a, std::uint64_t value) {
  auto it = ops_.find(a);
  assert(it != ops_.end());
  OutstandingOp op = std::move(it->second);
  ops_.erase(it);  // before the callback: it may issue a fresh access
  const Cycle lat = machine_.engine().now() - op.start;
  if (op.is_write) {
    stats_.write_latency.add(static_cast<double>(lat));
    if (op.done_write) op.done_write();
  } else {
    stats_.read_latency.add(static_cast<double>(lat));
    if (op.done_read) op.done_read(value);
  }
}

// ---------------------------------------------------------------------------
// Delivery dispatch
// ---------------------------------------------------------------------------

void Node::handle_delivery(const noc::WormPtr& worm) {
  ++stats_.msgs_received;
  if (worm->kind == noc::WormKind::Gather) {
    // Combined acknowledgment arriving at the home.
    dc_schedule(0, [this, txn = worm->txn, n = worm->gathered] {
      dc_on_ack(txn, n);
    });
    return;
  }
  if (auto dir = std::dynamic_pointer_cast<const InvalDirective>(worm->payload)) {
    cc_invalidation(id_, std::move(dir));
    return;
  }
  auto msg = std::dynamic_pointer_cast<const CohMsg>(worm->payload);
  assert(msg != nullptr);
  switch (msg->type) {
    case MsgType::ReadReq:
    case MsgType::WriteReq:
    case MsgType::InvalAck:
    case MsgType::RecallData:
    case MsgType::Writeback:
      dc_dispatch(std::move(msg));
      break;
    case MsgType::ReadReply:
    case MsgType::WriteReply:
    case MsgType::Recall:
    case MsgType::RecallShare:
    case MsgType::WritebackAck:
      cc_schedule(p_.cache_access, [this, m = std::move(msg)] { cc_reply(*m); });
      break;
  }
}

// ---------------------------------------------------------------------------
// Directory controller
// ---------------------------------------------------------------------------

void Node::dc_schedule(Cycle extra_busy, std::function<void()> fn) {
  const Cycle now = machine_.engine().now();
  const Cycle busy =
      static_cast<Cycle>(p_.recv_occupancy + p_.dir_lookup) + extra_busy;
  const Cycle start = std::max(now, dc_free_at_);
  dc_free_at_ = start + busy;
  stats_.occupancy_cycles += busy;
  machine_.engine().schedule_at(dc_free_at_, std::move(fn));
}

void Node::dc_dispatch(std::shared_ptr<const CohMsg> m) {
  switch (m->type) {
    case MsgType::ReadReq:
      dc_schedule(0, [this, m] { dc_read(m->addr, m->requester); });
      break;
    case MsgType::WriteReq:
      dc_schedule(0, [this, m] { dc_write(m->addr, m->requester); });
      break;
    case MsgType::InvalAck:
      dc_schedule(0, [this, m] { dc_on_ack(m->txn, 1); });
      break;
    case MsgType::RecallData:
      dc_schedule(0, [this, m] {
        dc_on_data(m->addr, m->requester, m->value, /*writeback=*/false);
      });
      break;
    case MsgType::Writeback:
      dc_schedule(0, [this, m] {
        dc_on_data(m->addr, m->requester, m->value, /*writeback=*/true);
      });
      break;
    default:
      assert(false && "not a DC message");
  }
}

void Node::dc_read(BlockAddr a, NodeId requester) {
  DirEntry& e = dir_.entry(a);
  ++dir_.stats().read_reqs;
  switch (e.state) {
    case DirState::Uncached:
    case DirState::Shared: {
      e.state = DirState::Shared;
      e.sharers.insert(requester);
      // Memory access before the data reply leaves.
      machine_.engine().schedule_after(p_.mem_access, [this, a, requester,
                                                       v = e.mem_value] {
        send_coh(MsgType::ReadReply, a, requester, requester, 0, v);
      });
      drain_queue(a);  // keep servicing requests queued behind a Waiting spell
      break;
    }
    case DirState::Exclusive: {
      e.state = DirState::Waiting;
      e.active = PendingReq{requester, false};
      e.recall_outstanding = true;
      e.recall_for_write = false;
      ++dir_.stats().recalls;
      if (e.owner != requester) {
        send_coh(MsgType::RecallShare, a, e.owner, requester, 0, 0);
      }
      // owner == requester: the owner evicted the line; its Writeback is in
      // flight and will complete the recall.
      break;
    }
    case DirState::Waiting:
      e.queue.push_back(PendingReq{requester, false});
      break;
  }
}

void Node::dc_write(BlockAddr a, NodeId requester) {
  DirEntry& e = dir_.entry(a);
  ++dir_.stats().write_reqs;
  switch (e.state) {
    case DirState::Uncached:
      e.active = PendingReq{requester, true};
      grant(a, e);
      break;
    case DirState::Shared: {
      e.sharers.erase(requester);  // upgrade: the requester needs no inval
      if (e.sharers.contains(id_)) {
        // The home's own cached copy is invalidated locally (no message).
        e.sharers.erase(id_);
        if (const auto* op = find_op(a);
            op && !op->is_write && cache_.lookup(a) == LineState::Invalid) {
          // Our own ReadReply is still in flight; drop the line on arrival.
          pending_inval_.insert(a);
        }
        cache_.invalidate(a);
      }
      e.active = PendingReq{requester, true};
      if (e.sharers.empty()) {
        grant(a, e);
      } else {
        e.state = DirState::Waiting;
        enqueue_invalidation(a);
      }
      break;
    }
    case DirState::Exclusive: {
      e.state = DirState::Waiting;
      e.active = PendingReq{requester, true};
      e.recall_outstanding = true;
      e.recall_for_write = true;
      ++dir_.stats().recalls;
      if (e.owner != requester) {
        send_coh(MsgType::Recall, a, e.owner, requester, 0, 0);
      }
      break;
    }
    case DirState::Waiting:
      e.queue.push_back(PendingReq{requester, true});
      break;
  }
}

// ---------------------------------------------------------------------------
// Service layer: per-home invalidation pipeline + coalescing window
// ---------------------------------------------------------------------------
//
// Every needed invalidation passes enqueue -> admit -> launch.  Under the
// default SvcParams (depth 0 = unbounded, window 0 = off) this collapses to
// a synchronous call into start_invalidation — event-for-event identical to
// the pre-service-layer node (pinned by Determinism golden fingerprints).
// The per-block `Waiting` state provides serialization: a block whose
// invalidation is queued, parked, or in flight holds every later request to
// it in its DirEntry queue, so no block ever appears in two transactions.

void Node::enqueue_invalidation(BlockAddr a) {
  const int depth = p_.svc.pipeline_depth;
  if (depth > 0 && live_invals_ >= depth) {
    home_queue_.emplace_back(a, machine_.engine().now());
    ++stats_.svc_enqueued;
    stats_.svc_queue_peak = std::max<std::uint64_t>(stats_.svc_queue_peak,
                                                    home_queue_.size());
    return;
  }
  admit_invalidation(a);
}

void Node::admit_invalidation(BlockAddr a) {
  ++live_invals_;
  stats_.svc_pipeline_peak = std::max<std::uint64_t>(
      stats_.svc_pipeline_peak, static_cast<std::uint64_t>(live_invals_));
  if (p_.svc.coalesce_window == 0) {
    start_invalidation(a, dir_.entry(a));
    return;
  }
  if (coalesce_buf_.empty()) {
    // First entry of a fresh window: arm the window-expiry flush.
    const std::uint64_t epoch = ++coalesce_epoch_;
    machine_.engine().schedule_after(p_.svc.coalesce_window, [this, epoch] {
      if (epoch == coalesce_epoch_) flush_coalesce();
    });
  }
  coalesce_buf_.push_back(a);
  if (p_.svc.pipeline_depth > 0 && live_invals_ >= p_.svc.pipeline_depth) {
    // Pipeline full: nothing further can be admitted into this window, so
    // waiting longer cannot grow the merge.  Flush early.
    flush_coalesce();
  }
}

void Node::flush_coalesce() {
  ++coalesce_epoch_;  // cancel any pending window-expiry flush
  if (coalesce_buf_.empty()) return;
  std::vector<BlockAddr> blocks = std::move(coalesce_buf_);
  coalesce_buf_.clear();
  if (blocks.size() == 1) {
    start_invalidation(blocks.front(), dir_.entry(blocks.front()));
    return;
  }
  launch_merged(std::move(blocks));
}

void Node::launch_merged(std::vector<BlockAddr> blocks) {
  assert(blocks.size() > 1);
  const TxnId wire = machine_.next_txn();

  // One plan over the union of the members' sharer bitmaps.  Members'
  // requesters may appear in the union (as sharers of OTHER members); they
  // are invalidated like any sharer and re-install on their WriteReply.
  core::SharerBitmap uni;
  for (const BlockAddr a : blocks) {
    dir_.entry(a).sharers.for_each([&uni](NodeId n) { uni.insert(n); });
  }
  auto plan = machine_.plan_cache().get_or_build(
      p_.scheme, machine_.network().mesh(), id_, uni, wire, p_.sizing);
  auto dir = std::const_pointer_cast<InvalDirective>(plan.directive);
  dir->addr = blocks.front();
  dir->requester = dir_.entry(blocks.front()).active.requester;
  dir->merged_addrs = blocks;

  MergedGroup g;
  g.blocks = blocks;
  g.acks_needed = uni.count();
  const Cycle now = machine_.engine().now();
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    const BlockAddr a = blocks[i];
    DirEntry& e = dir_.entry(a);
    ++dir_.stats().inval_txns;
    // The leader member reuses the wire txn id and carries the plan's worm
    // counts; later members get their own ids with zero worm counts, so
    // aggregate traffic accounting stays truthful.
    const TxnId mtxn = i == 0 ? wire : machine_.next_txn();
    g.member_txns.push_back(mtxn);
    e.txn = wire;
    e.acks_needed = g.acks_needed;
    e.acks_got = 0;

    InvalTxnRecord rec;
    rec.addr = a;
    rec.home = id_;
    rec.sharers = e.sharers.count();  // the member's own pre-merge d
    rec.request_worms = i == 0 ? static_cast<int>(plan.request_worms.size()) : 0;
    rec.ack_messages = i == 0 ? plan.expected_ack_messages : 0;
    rec.total_ack_worms = i == 0 ? plan.total_ack_worms : 0;
    rec.start = now;
    machine_.txn_started(mtxn, rec);
  }
  ++stats_.svc_groups;
  stats_.svc_coalesced_txns += blocks.size();
  groups_.emplace(wire, std::move(g));

  for (auto& w : plan.request_worms) oc_send(std::move(w));

  if (p_.eager_exclusive_reply) {
    for (const BlockAddr a : blocks) {
      DirEntry& e = dir_.entry(a);
      e.eager_granted = true;
      send_coh(MsgType::WriteReply, a, e.active.requester, e.active.requester,
               0, e.mem_value);
    }
  }
}

void Node::release_inval_slots(int n) {
  live_invals_ -= n;
  assert(live_invals_ >= 0);
  const int depth = p_.svc.pipeline_depth;
  while (!home_queue_.empty() && (depth <= 0 || live_invals_ < depth)) {
    const auto [a, enq] = home_queue_.front();
    home_queue_.pop_front();
    stats_.svc_queue_wait_cycles +=
        static_cast<std::uint64_t>(machine_.engine().now() - enq);
    admit_invalidation(a);
  }
}

void Node::group_on_ack(TxnId txn, int count) {
  auto it = groups_.find(txn);
  assert(it != groups_.end());
  MergedGroup& g = it->second;
  g.acks_got += count;
  assert(g.acks_got <= g.acks_needed);
  if (g.acks_got < g.acks_needed) return;
  const MergedGroup done = std::move(it->second);
  groups_.erase(it);
  for (std::size_t i = 0; i < done.blocks.size(); ++i) {
    machine_.txn_finished(done.member_txns[i]);
    complete_member(done.blocks[i], dir_.entry(done.blocks[i]));
  }
  release_inval_slots(static_cast<int>(done.blocks.size()));
}

void Node::complete_member(BlockAddr a, DirEntry& e) {
  e.sharers.clear();
  if (e.eager_granted) {
    // The WriteReply already went out when the transaction started.
    e.eager_granted = false;
    if (e.active.requester == kInvalidNode) {
      e.state = DirState::Uncached;  // writer already wrote back (RC race)
      e.owner = kInvalidNode;
    } else {
      e.state = DirState::Exclusive;
      e.owner = e.active.requester;
    }
    drain_queue(a);
    return;
  }
  grant(a, e);
}

// ---------------------------------------------------------------------------

void Node::start_invalidation(BlockAddr a, DirEntry& e) {
  ++dir_.stats().inval_txns;
  const TxnId txn = machine_.next_txn();
  e.txn = txn;
  e.acks_needed = e.sharers.count();
  e.acks_got = 0;
  txn_addr_[txn] = a;

  auto plan = machine_.plan_cache().get_or_build(
      p_.scheme, machine_.network().mesh(), id_, e.sharers, txn, p_.sizing);
  // The directive is shared by every worm of the plan; fill in the
  // protocol-level fields.
  auto dir = std::const_pointer_cast<InvalDirective>(plan.directive);
  dir->addr = a;
  dir->requester = e.active.requester;

  InvalTxnRecord rec;
  rec.addr = a;
  rec.home = id_;
  rec.sharers = e.acks_needed;
  rec.request_worms = static_cast<int>(plan.request_worms.size());
  rec.ack_messages = plan.expected_ack_messages;
  rec.total_ack_worms = plan.total_ack_worms;
  rec.start = machine_.engine().now();
  machine_.txn_started(txn, rec);

  for (auto& w : plan.request_worms) oc_send(std::move(w));

  if (p_.eager_exclusive_reply) {
    // Release-consistency overlap: unblock the writer immediately; the
    // entry stays Waiting (other requesters queue) until the acks arrive.
    e.eager_granted = true;
    send_coh(MsgType::WriteReply, a, e.active.requester, e.active.requester,
             0, e.mem_value);
  }
}

void Node::dc_on_ack(TxnId txn, int count) {
  if (groups_.count(txn) > 0) {
    group_on_ack(txn, count);
    return;
  }
  auto it = txn_addr_.find(txn);
  assert(it != txn_addr_.end());
  const BlockAddr a = it->second;
  DirEntry& e = dir_.entry(a);
  assert(e.state == DirState::Waiting && e.txn == txn);
  e.acks_got += count;
  assert(e.acks_got <= e.acks_needed);
  if (e.acks_got < e.acks_needed) return;
  txn_addr_.erase(it);
  machine_.txn_finished(txn);
  complete_member(a, e);
  release_inval_slots(1);
}

void Node::dc_on_data(BlockAddr a, NodeId from, std::uint64_t v,
                      bool writeback) {
  DirEntry& e = dir_.entry(a);
  if (writeback) {
    ++dir_.stats().writebacks;
    send_coh(MsgType::WritebackAck, a, from, from, 0, 0);
  }
  if (e.state == DirState::Waiting && e.eager_granted &&
      from == e.active.requester) {
    // RC mode: the eagerly-granted writer already evicted the line while
    // its invalidation acks are still outstanding.  Absorb the data; the
    // entry goes Uncached when the transaction completes.
    e.mem_value = v;
    e.active.requester = kInvalidNode;
    return;
  }
  if (e.state == DirState::Waiting && e.recall_outstanding && e.owner == from) {
    // Recall response (a crossing Writeback also serves as one; the owner
    // then holds no copy, so it cannot keep a shared copy).
    complete_recall(a, e, v, /*owner_kept_shared_copy=*/!writeback &&
                                 !e.recall_for_write);
    return;
  }
  if (e.state == DirState::Exclusive && e.owner == from) {
    assert(writeback);
    e.mem_value = v;
    e.owner = kInvalidNode;
    e.state = DirState::Uncached;
    return;
  }
  // Stale data message (e.g. RecallData after a crossing Writeback already
  // satisfied the recall): the value is already superseded.
}

void Node::complete_recall(BlockAddr a, DirEntry& e, std::uint64_t v,
                           bool owner_kept_shared_copy) {
  e.mem_value = v;
  e.recall_outstanding = false;
  const NodeId old_owner = e.owner;
  e.owner = kInvalidNode;
  e.sharers.clear();
  if (owner_kept_shared_copy) e.sharers.insert(old_owner);
  grant(a, e);
}

void Node::grant(BlockAddr a, DirEntry& e) {
  const PendingReq req = e.active;
  if (req.is_write) {
    e.state = DirState::Exclusive;
    e.owner = req.requester;
    e.sharers.clear();
    send_coh(MsgType::WriteReply, a, req.requester, req.requester, 0,
             e.mem_value);
  } else {
    e.state = DirState::Shared;
    e.sharers.insert(req.requester);
    machine_.engine().schedule_after(p_.mem_access, [this, a, req,
                                                     v = e.mem_value] {
      send_coh(MsgType::ReadReply, a, req.requester, req.requester, 0, v);
    });
  }
  drain_queue(a);
}

void Node::drain_queue(BlockAddr a) {
  DirEntry& e = dir_.entry(a);
  if (e.state == DirState::Waiting || e.queue.empty()) return;
  const PendingReq next = e.queue.front();
  e.queue.pop_front();
  dc_schedule(0, [this, a, next] {
    if (next.is_write) dc_write(a, next.requester);
    else dc_read(a, next.requester);
  });
}

// ---------------------------------------------------------------------------
// Cache controller
// ---------------------------------------------------------------------------

void Node::cc_schedule(Cycle extra_busy, std::function<void()> fn) {
  const Cycle now = machine_.engine().now();
  const Cycle busy = static_cast<Cycle>(p_.recv_occupancy) + extra_busy;
  const Cycle start = std::max(now, cc_free_at_);
  cc_free_at_ = start + busy;
  stats_.occupancy_cycles += busy;
  machine_.engine().schedule_at(cc_free_at_, std::move(fn));
}

void Node::cc_invalidation(NodeId here,
                           std::shared_ptr<const InvalDirective> dir) {
  // A merged directive invalidates every member block: one reception
  // occupancy, one cache access per block.
  const Cycle access =
      static_cast<Cycle>(p_.cache_access) *
      static_cast<Cycle>(std::max<std::size_t>(1, dir->merged_addrs.size()));
  cc_schedule(access, [this, here, dir = std::move(dir)] {
    if (dir->merged_addrs.empty()) {
      cc_invalidate_block(dir->addr);
    } else {
      for (const BlockAddr a : dir->merged_addrs) cc_invalidate_block(a);
    }
    switch (dir->roles().at(here)) {
      case SharerRole::UnicastAck:
        send_coh(MsgType::InvalAck, dir->addr, dir->home(), dir->requester,
                 dir->txn, 0);
        break;
      case SharerRole::PostLocal:
        machine_.network().post_iack(here, dir->txn, 1);
        break;
      case SharerRole::LaunchGather:
        oc_send(core::build_gather_worm(dir->gather_for(here), dir->txn));
        break;
    }
  });
}

void Node::cc_invalidate_block(BlockAddr a) {
  if (const auto* op = find_op(a);
      op && !op->is_write && cache_.lookup(a) == LineState::Invalid) {
    // Our ReadReply may be in flight behind this invalidation: the read
    // still completes, but the incoming line must be dropped.
    pending_inval_.insert(a);
  }
  cache_.invalidate(a);  // acks are sent even for evicted copies
}

void Node::cc_reply(const CohMsg& m) {
  switch (m.type) {
    case MsgType::ReadReply: {
      install_line(m.addr, LineState::Shared, m.value);
      if (pending_inval_.erase(m.addr) > 0) cache_.invalidate(m.addr);
      assert([&] {
        const auto* op = find_op(m.addr);
        return op != nullptr && !op->is_write;
      }());
      complete_op(m.addr, m.value);
      break;
    }
    case MsgType::WriteReply: {
      const auto* op = find_op(m.addr);
      assert(op != nullptr && op->is_write);
      const std::uint64_t wv = op->wvalue;
      install_line(m.addr, LineState::Modified, wv);
      complete_op(m.addr, wv);
      // Service a recall that overtook this grant.
      if (auto it = pending_recall_.find(m.addr); it != pending_recall_.end()) {
        const bool downgrade_only = it->second;
        pending_recall_.erase(it);
        cc_recall(m.addr, downgrade_only);
      }
      break;
    }
    case MsgType::Recall:
      cc_recall(m.addr, /*downgrade_only=*/false);
      break;
    case MsgType::RecallShare:
      cc_recall(m.addr, /*downgrade_only=*/true);
      break;
    case MsgType::WritebackAck:
      wb_pending_.erase(m.addr);
      break;
    default:
      assert(false && "not a CC message");
  }
}

void Node::cc_recall(BlockAddr a, bool downgrade_only) {
  if (wb_pending_.count(a)) return;  // the in-flight Writeback answers it
  if (cache_.lookup(a) != LineState::Modified) {
    if (const auto* op = find_op(a); op && op->is_write) {
      // Early recall: it overtook the WriteReply that makes us the owner.
      pending_recall_[a] = downgrade_only;
      return;
    }
    // Stale recall (reply/request networks may reorder WritebackAck vs
    // Recall); the home has already been satisfied by the Writeback.
    return;
  }
  const std::uint64_t v =
      downgrade_only ? cache_.downgrade(a)
                     : (cache_.invalidate(a), cache_.value_of(a));
  send_coh(MsgType::RecallData, a, machine_.home_of(a), id_, 0, v);
}

void Node::install_line(BlockAddr a, LineState st, std::uint64_t value) {
  const auto ev = cache_.install(a, st, value);
  if (ev.valid && ev.dirty) {
    wb_pending_.insert(ev.addr);
    send_coh(MsgType::Writeback, ev.addr, machine_.home_of(ev.addr), id_, 0,
             ev.value);
  }
  // Clean (Shared) victims are dropped silently; the home's presence bit
  // goes stale, which is safe: invalidations of absent lines are acked.
}

} // namespace mdw::dsm
