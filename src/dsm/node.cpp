#include "dsm/node.h"

#include <cassert>

#include "dsm/machine.h"
#include "noc/worm_builder.h"

namespace mdw::dsm {

using core::InvalDirective;
using core::SharerRole;

Node::Node(Machine& machine, NodeId id, const SystemParams& params)
    : machine_(machine), id_(id), p_(params), cache_(params.cache_lines) {}

// ---------------------------------------------------------------------------
// Outgoing controller
// ---------------------------------------------------------------------------

void Node::oc_send(noc::WormPtr worm) {
  const Cycle now = machine_.engine().now();
  const Cycle compose_done =
      std::max(now, oc_free_at_) + static_cast<Cycle>(p_.send_occupancy);
  oc_free_at_ = compose_done;
  stats_.occupancy_cycles += static_cast<std::uint64_t>(p_.send_occupancy);
  ++stats_.msgs_sent;
  machine_.engine().schedule_at(compose_done, [this, worm = std::move(worm)] {
    machine_.network().inject(worm);
  });
}

void Node::send_coh(MsgType t, BlockAddr a, NodeId dst, NodeId requester,
                    TxnId txn, std::uint64_t value) {
  const bool reply = t == MsgType::ReadReply || t == MsgType::WriteReply ||
                     t == MsgType::InvalAck || t == MsgType::RecallData ||
                     t == MsgType::WritebackAck;
  const auto vnet = reply ? noc::VNet::Reply : noc::VNet::Request;
  const auto algo = reply ? p_.reply_algo() : p_.request_algo();
  const int flits = carries_data(t) ? p_.sizing.data_flits
                                    : p_.sizing.control_size(1);
  auto msg = std::make_shared<CohMsg>(t, a, requester, txn, value);
  const bool turn_model = algo == noc::RoutingAlgo::WestFirst ||
                          algo == noc::RoutingAlgo::EastFirst;
  noc::WormPtr worm =
      p_.adaptive_unicast && turn_model && id_ != dst
          ? noc::make_adaptive_unicast(algo, vnet, id_, dst, flits, txn,
                                       std::move(msg))
          : noc::make_unicast(machine_.network().mesh(), algo, vnet, id_, dst,
                              flits, txn, std::move(msg),
                              &machine_.network().route_cache());
  if (reply) worm->vc_class = p_.reply_vc_class();
  oc_send(std::move(worm));
}

// ---------------------------------------------------------------------------
// Processor interface
// ---------------------------------------------------------------------------

void Node::read(BlockAddr a, std::function<void(std::uint64_t)> done) {
  assert(!op_.active);
  op_ = CurrentOp{};
  op_.active = true;
  op_.is_write = false;
  op_.addr = a;
  op_.start = machine_.engine().now();
  op_.done_read = std::move(done);
  machine_.engine().schedule_after(p_.cache_access, [this, a] {
    if (cache_.lookup(a) != LineState::Invalid) {
      cache_.note_hit();
      complete_op(cache_.value_of(a));
      return;
    }
    cache_.note_miss();
    send_coh(MsgType::ReadReq, a, machine_.home_of(a), id_, 0, 0);
  });
}

void Node::write(BlockAddr a, std::uint64_t value, std::function<void()> done) {
  assert(!op_.active);
  op_ = CurrentOp{};
  op_.active = true;
  op_.is_write = true;
  op_.addr = a;
  op_.wvalue = value;
  op_.start = machine_.engine().now();
  op_.done_write = std::move(done);
  machine_.engine().schedule_after(p_.cache_access, [this, a] {
    if (cache_.lookup(a) == LineState::Modified) {
      cache_.note_hit();
      cache_.set_value(a, op_.wvalue);
      complete_op(op_.wvalue);
      return;
    }
    // Shared (upgrade) and Invalid (miss) both go to the home.
    cache_.note_miss();
    send_coh(MsgType::WriteReq, a, machine_.home_of(a), id_, 0, 0);
  });
}

void Node::complete_op(std::uint64_t value) {
  assert(op_.active);
  const Cycle lat = machine_.engine().now() - op_.start;
  op_.active = false;
  if (op_.is_write) {
    stats_.write_latency.add(static_cast<double>(lat));
    auto done = std::move(op_.done_write);
    if (done) done();
  } else {
    stats_.read_latency.add(static_cast<double>(lat));
    auto done = std::move(op_.done_read);
    if (done) done(value);
  }
}

// ---------------------------------------------------------------------------
// Delivery dispatch
// ---------------------------------------------------------------------------

void Node::handle_delivery(const noc::WormPtr& worm) {
  ++stats_.msgs_received;
  if (worm->kind == noc::WormKind::Gather) {
    // Combined acknowledgment arriving at the home.
    dc_schedule(0, [this, txn = worm->txn, n = worm->gathered] {
      dc_on_ack(txn, n);
    });
    return;
  }
  if (auto dir = std::dynamic_pointer_cast<const InvalDirective>(worm->payload)) {
    cc_invalidation(id_, std::move(dir));
    return;
  }
  auto msg = std::dynamic_pointer_cast<const CohMsg>(worm->payload);
  assert(msg != nullptr);
  switch (msg->type) {
    case MsgType::ReadReq:
    case MsgType::WriteReq:
    case MsgType::InvalAck:
    case MsgType::RecallData:
    case MsgType::Writeback:
      dc_dispatch(std::move(msg));
      break;
    case MsgType::ReadReply:
    case MsgType::WriteReply:
    case MsgType::Recall:
    case MsgType::RecallShare:
    case MsgType::WritebackAck:
      cc_schedule(p_.cache_access, [this, m = std::move(msg)] { cc_reply(*m); });
      break;
  }
}

// ---------------------------------------------------------------------------
// Directory controller
// ---------------------------------------------------------------------------

void Node::dc_schedule(Cycle extra_busy, std::function<void()> fn) {
  const Cycle now = machine_.engine().now();
  const Cycle busy =
      static_cast<Cycle>(p_.recv_occupancy + p_.dir_lookup) + extra_busy;
  const Cycle start = std::max(now, dc_free_at_);
  dc_free_at_ = start + busy;
  stats_.occupancy_cycles += busy;
  machine_.engine().schedule_at(dc_free_at_, std::move(fn));
}

void Node::dc_dispatch(std::shared_ptr<const CohMsg> m) {
  switch (m->type) {
    case MsgType::ReadReq:
      dc_schedule(0, [this, m] { dc_read(m->addr, m->requester); });
      break;
    case MsgType::WriteReq:
      dc_schedule(0, [this, m] { dc_write(m->addr, m->requester); });
      break;
    case MsgType::InvalAck:
      dc_schedule(0, [this, m] { dc_on_ack(m->txn, 1); });
      break;
    case MsgType::RecallData:
      dc_schedule(0, [this, m] {
        dc_on_data(m->addr, m->requester, m->value, /*writeback=*/false);
      });
      break;
    case MsgType::Writeback:
      dc_schedule(0, [this, m] {
        dc_on_data(m->addr, m->requester, m->value, /*writeback=*/true);
      });
      break;
    default:
      assert(false && "not a DC message");
  }
}

void Node::dc_read(BlockAddr a, NodeId requester) {
  DirEntry& e = dir_.entry(a);
  ++dir_.stats().read_reqs;
  switch (e.state) {
    case DirState::Uncached:
    case DirState::Shared: {
      e.state = DirState::Shared;
      e.sharers.insert(requester);
      // Memory access before the data reply leaves.
      machine_.engine().schedule_after(p_.mem_access, [this, a, requester,
                                                       v = e.mem_value] {
        send_coh(MsgType::ReadReply, a, requester, requester, 0, v);
      });
      drain_queue(a);  // keep servicing requests queued behind a Waiting spell
      break;
    }
    case DirState::Exclusive: {
      e.state = DirState::Waiting;
      e.active = PendingReq{requester, false};
      e.recall_outstanding = true;
      e.recall_for_write = false;
      ++dir_.stats().recalls;
      if (e.owner != requester) {
        send_coh(MsgType::RecallShare, a, e.owner, requester, 0, 0);
      }
      // owner == requester: the owner evicted the line; its Writeback is in
      // flight and will complete the recall.
      break;
    }
    case DirState::Waiting:
      e.queue.push_back(PendingReq{requester, false});
      break;
  }
}

void Node::dc_write(BlockAddr a, NodeId requester) {
  DirEntry& e = dir_.entry(a);
  ++dir_.stats().write_reqs;
  switch (e.state) {
    case DirState::Uncached:
      e.active = PendingReq{requester, true};
      grant(a, e);
      break;
    case DirState::Shared: {
      e.sharers.erase(requester);  // upgrade: the requester needs no inval
      if (e.sharers.contains(id_)) {
        // The home's own cached copy is invalidated locally (no message).
        e.sharers.erase(id_);
        if (op_.active && !op_.is_write && op_.addr == a &&
            cache_.lookup(a) == LineState::Invalid) {
          // Our own ReadReply is still in flight; drop the line on arrival.
          pending_inval_.insert(a);
        }
        cache_.invalidate(a);
      }
      e.active = PendingReq{requester, true};
      if (e.sharers.empty()) {
        grant(a, e);
      } else {
        e.state = DirState::Waiting;
        start_invalidation(a, e);
      }
      break;
    }
    case DirState::Exclusive: {
      e.state = DirState::Waiting;
      e.active = PendingReq{requester, true};
      e.recall_outstanding = true;
      e.recall_for_write = true;
      ++dir_.stats().recalls;
      if (e.owner != requester) {
        send_coh(MsgType::Recall, a, e.owner, requester, 0, 0);
      }
      break;
    }
    case DirState::Waiting:
      e.queue.push_back(PendingReq{requester, true});
      break;
  }
}

void Node::start_invalidation(BlockAddr a, DirEntry& e) {
  ++dir_.stats().inval_txns;
  const TxnId txn = machine_.next_txn();
  e.txn = txn;
  e.acks_needed = e.sharers.count();
  e.acks_got = 0;
  txn_addr_[txn] = a;

  auto plan = machine_.plan_cache().get_or_build(
      p_.scheme, machine_.network().mesh(), id_, e.sharers, txn, p_.sizing);
  // The directive is shared by every worm of the plan; fill in the
  // protocol-level fields.
  auto dir = std::const_pointer_cast<InvalDirective>(plan.directive);
  dir->addr = a;
  dir->requester = e.active.requester;

  InvalTxnRecord rec;
  rec.addr = a;
  rec.home = id_;
  rec.sharers = e.acks_needed;
  rec.request_worms = static_cast<int>(plan.request_worms.size());
  rec.ack_messages = plan.expected_ack_messages;
  rec.total_ack_worms = plan.total_ack_worms;
  rec.start = machine_.engine().now();
  machine_.txn_started(txn, rec);

  for (auto& w : plan.request_worms) oc_send(std::move(w));

  if (p_.eager_exclusive_reply) {
    // Release-consistency overlap: unblock the writer immediately; the
    // entry stays Waiting (other requesters queue) until the acks arrive.
    e.eager_granted = true;
    send_coh(MsgType::WriteReply, a, e.active.requester, e.active.requester,
             0, e.mem_value);
  }
}

void Node::dc_on_ack(TxnId txn, int count) {
  auto it = txn_addr_.find(txn);
  assert(it != txn_addr_.end());
  const BlockAddr a = it->second;
  DirEntry& e = dir_.entry(a);
  assert(e.state == DirState::Waiting && e.txn == txn);
  e.acks_got += count;
  assert(e.acks_got <= e.acks_needed);
  if (e.acks_got < e.acks_needed) return;
  txn_addr_.erase(it);
  machine_.txn_finished(txn);
  e.sharers.clear();
  if (e.eager_granted) {
    // The WriteReply already went out when the transaction started.
    e.eager_granted = false;
    if (e.active.requester == kInvalidNode) {
      e.state = DirState::Uncached;  // writer already wrote back (RC race)
      e.owner = kInvalidNode;
    } else {
      e.state = DirState::Exclusive;
      e.owner = e.active.requester;
    }
    drain_queue(a);
    return;
  }
  grant(a, e);
}

void Node::dc_on_data(BlockAddr a, NodeId from, std::uint64_t v,
                      bool writeback) {
  DirEntry& e = dir_.entry(a);
  if (writeback) {
    ++dir_.stats().writebacks;
    send_coh(MsgType::WritebackAck, a, from, from, 0, 0);
  }
  if (e.state == DirState::Waiting && e.eager_granted &&
      from == e.active.requester) {
    // RC mode: the eagerly-granted writer already evicted the line while
    // its invalidation acks are still outstanding.  Absorb the data; the
    // entry goes Uncached when the transaction completes.
    e.mem_value = v;
    e.active.requester = kInvalidNode;
    return;
  }
  if (e.state == DirState::Waiting && e.recall_outstanding && e.owner == from) {
    // Recall response (a crossing Writeback also serves as one; the owner
    // then holds no copy, so it cannot keep a shared copy).
    complete_recall(a, e, v, /*owner_kept_shared_copy=*/!writeback &&
                                 !e.recall_for_write);
    return;
  }
  if (e.state == DirState::Exclusive && e.owner == from) {
    assert(writeback);
    e.mem_value = v;
    e.owner = kInvalidNode;
    e.state = DirState::Uncached;
    return;
  }
  // Stale data message (e.g. RecallData after a crossing Writeback already
  // satisfied the recall): the value is already superseded.
}

void Node::complete_recall(BlockAddr a, DirEntry& e, std::uint64_t v,
                           bool owner_kept_shared_copy) {
  e.mem_value = v;
  e.recall_outstanding = false;
  const NodeId old_owner = e.owner;
  e.owner = kInvalidNode;
  e.sharers.clear();
  if (owner_kept_shared_copy) e.sharers.insert(old_owner);
  grant(a, e);
}

void Node::grant(BlockAddr a, DirEntry& e) {
  const PendingReq req = e.active;
  if (req.is_write) {
    e.state = DirState::Exclusive;
    e.owner = req.requester;
    e.sharers.clear();
    send_coh(MsgType::WriteReply, a, req.requester, req.requester, 0,
             e.mem_value);
  } else {
    e.state = DirState::Shared;
    e.sharers.insert(req.requester);
    machine_.engine().schedule_after(p_.mem_access, [this, a, req,
                                                     v = e.mem_value] {
      send_coh(MsgType::ReadReply, a, req.requester, req.requester, 0, v);
    });
  }
  drain_queue(a);
}

void Node::drain_queue(BlockAddr a) {
  DirEntry& e = dir_.entry(a);
  if (e.state == DirState::Waiting || e.queue.empty()) return;
  const PendingReq next = e.queue.front();
  e.queue.pop_front();
  dc_schedule(0, [this, a, next] {
    if (next.is_write) dc_write(a, next.requester);
    else dc_read(a, next.requester);
  });
}

// ---------------------------------------------------------------------------
// Cache controller
// ---------------------------------------------------------------------------

void Node::cc_schedule(Cycle extra_busy, std::function<void()> fn) {
  const Cycle now = machine_.engine().now();
  const Cycle busy = static_cast<Cycle>(p_.recv_occupancy) + extra_busy;
  const Cycle start = std::max(now, cc_free_at_);
  cc_free_at_ = start + busy;
  stats_.occupancy_cycles += busy;
  machine_.engine().schedule_at(cc_free_at_, std::move(fn));
}

void Node::cc_invalidation(NodeId here,
                           std::shared_ptr<const InvalDirective> dir) {
  cc_schedule(p_.cache_access, [this, here, dir = std::move(dir)] {
    if (op_.active && !op_.is_write && op_.addr == dir->addr &&
        cache_.lookup(dir->addr) == LineState::Invalid) {
      // Our ReadReply may be in flight behind this invalidation: the read
      // still completes, but the incoming line must be dropped.
      pending_inval_.insert(dir->addr);
    }
    cache_.invalidate(dir->addr);  // acks are sent even for evicted copies
    switch (dir->roles().at(here)) {
      case SharerRole::UnicastAck:
        send_coh(MsgType::InvalAck, dir->addr, dir->home(), dir->requester,
                 dir->txn, 0);
        break;
      case SharerRole::PostLocal:
        machine_.network().post_iack(here, dir->txn, 1);
        break;
      case SharerRole::LaunchGather:
        oc_send(core::build_gather_worm(dir->gather_for(here), dir->txn));
        break;
    }
  });
}

void Node::cc_reply(const CohMsg& m) {
  switch (m.type) {
    case MsgType::ReadReply:
      install_line(m.addr, LineState::Shared, m.value);
      if (pending_inval_.erase(m.addr) > 0) cache_.invalidate(m.addr);
      assert(op_.active && !op_.is_write && op_.addr == m.addr);
      complete_op(m.value);
      break;
    case MsgType::WriteReply: {
      install_line(m.addr, LineState::Modified, op_.wvalue);
      assert(op_.active && op_.is_write && op_.addr == m.addr);
      complete_op(op_.wvalue);
      // Service a recall that overtook this grant.
      if (auto it = pending_recall_.find(m.addr); it != pending_recall_.end()) {
        const bool downgrade_only = it->second;
        pending_recall_.erase(it);
        cc_recall(m.addr, downgrade_only);
      }
      break;
    }
    case MsgType::Recall:
      cc_recall(m.addr, /*downgrade_only=*/false);
      break;
    case MsgType::RecallShare:
      cc_recall(m.addr, /*downgrade_only=*/true);
      break;
    case MsgType::WritebackAck:
      wb_pending_.erase(m.addr);
      break;
    default:
      assert(false && "not a CC message");
  }
}

void Node::cc_recall(BlockAddr a, bool downgrade_only) {
  if (wb_pending_.count(a)) return;  // the in-flight Writeback answers it
  if (cache_.lookup(a) != LineState::Modified) {
    if (op_.active && op_.is_write && op_.addr == a) {
      // Early recall: it overtook the WriteReply that makes us the owner.
      pending_recall_[a] = downgrade_only;
      return;
    }
    // Stale recall (reply/request networks may reorder WritebackAck vs
    // Recall); the home has already been satisfied by the Writeback.
    return;
  }
  const std::uint64_t v =
      downgrade_only ? cache_.downgrade(a)
                     : (cache_.invalidate(a), cache_.value_of(a));
  send_coh(MsgType::RecallData, a, machine_.home_of(a), id_, 0, v);
}

void Node::install_line(BlockAddr a, LineState st, std::uint64_t value) {
  const auto ev = cache_.install(a, st, value);
  if (ev.valid && ev.dirty) {
    wb_pending_.insert(ev.addr);
    send_coh(MsgType::Writeback, ev.addr, machine_.home_of(ev.addr), id_, 0,
             ev.value);
  }
  // Clean (Shared) victims are dropped silently; the home's presence bit
  // goes stale, which is safe: invalidations of absent lines are acked.
}

} // namespace mdw::dsm
