#include "dsm/machine.h"

#include <sstream>

namespace mdw::dsm {

Machine::Machine(const SystemParams& params) : p_(params) {
  net_ = std::make_unique<noc::Network>(
      eng_, noc::MeshShape(p_.mesh_w, p_.mesh_h), p_.noc);
  nodes_.reserve(p_.num_nodes());
  for (NodeId id = 0; id < p_.num_nodes(); ++id) {
    nodes_.push_back(std::make_unique<Node>(*this, id, p_));
  }
  net_->set_delivery_handler([this](NodeId where, const noc::WormPtr& worm) {
    nodes_[where]->handle_delivery(worm);
  });
}

Machine::~Machine() = default;

void Machine::txn_started(TxnId txn, const InvalTxnRecord& rec) {
  ++stats_.inval_txns;
  stats_.inval_sharers.add(static_cast<double>(rec.sharers));
  stats_.inval_request_worms += static_cast<std::uint64_t>(rec.request_worms);
  stats_.inval_ack_messages += static_cast<std::uint64_t>(rec.ack_messages);
  stats_.inval_total_ack_worms +=
      static_cast<std::uint64_t>(rec.total_ack_worms);
  live_txns_[txn] = rec;
}

void Machine::txn_finished(TxnId txn) {
  auto it = live_txns_.find(txn);
  if (it == live_txns_.end()) return;
  it->second.end = eng_.now();
  stats_.inval_latency.add(static_cast<double>(it->second.end -
                                               it->second.start));
  if (record_txns_) stats_.records.push_back(it->second);
  live_txns_.erase(it);
}

bool Machine::all_idle() const {
  for (const auto& n : nodes_) {
    if (n->op_pending()) return false;
  }
  return true;
}

std::uint64_t Machine::total_occupancy() const {
  std::uint64_t sum = 0;
  for (const auto& n : nodes_) sum += n->stats().occupancy_cycles;
  return sum;
}

std::string Machine::check_coherence() const {
  std::ostringstream err;
  const int n = static_cast<int>(nodes_.size());

  // Gather every cached copy.
  struct Copy {
    NodeId node;
    LineState state;
    std::uint64_t value;
  };
  std::unordered_map<BlockAddr, std::vector<Copy>> copies;
  for (NodeId id = 0; id < n; ++id) {
    nodes_[id]->cache().for_each_valid([&](const Cache::Line& l) {
      copies[l.tag].push_back(Copy{id, l.state, l.value});
    });
  }

  // Single-writer & no-stale-sharers.
  for (const auto& [addr, cs] : copies) {
    int modified = 0;
    for (const auto& c : cs) modified += (c.state == LineState::Modified);
    if (modified > 1) {
      err << "block " << addr << ": " << modified << " Modified copies\n";
    }
    if (modified == 1 && cs.size() > 1) {
      err << "block " << addr << ": Modified copy coexists with "
          << cs.size() - 1 << " other copies\n";
    }
  }

  // Directory agreement (silent Shared evictions make the directory a
  // superset of the caches, never the reverse).
  for (NodeId home = 0; home < n; ++home) {
    nodes_[home]->directory().for_each([&](BlockAddr addr, const DirEntry& e) {
      if (e.state == DirState::Waiting) {
        err << "block " << addr << ": directory stuck in Waiting\n";
        return;
      }
      const auto it = copies.find(addr);
      if (e.state == DirState::Exclusive) {
        bool owner_holds = false;
        if (it != copies.end()) {
          for (const auto& c : it->second) {
            if (c.state == LineState::Modified && c.node == e.owner)
              owner_holds = true;
            if (c.node != e.owner)
              err << "block " << addr << ": copy at node " << c.node
                  << " while Exclusive at " << e.owner << "\n";
          }
        }
        if (!owner_holds)
          err << "block " << addr << ": Exclusive owner " << e.owner
              << " holds no Modified copy\n";
      } else {
        if (it != copies.end()) {
          for (const auto& c : it->second) {
            if (c.state == LineState::Modified)
              err << "block " << addr << ": Modified copy at node " << c.node
                  << " but directory state "
                  << dir_state_name(e.state) << "\n";
            else if (!e.sharers.count(c.node))
              err << "block " << addr << ": Shared copy at node " << c.node
                  << " without presence bit\n";
            else if (c.value != e.mem_value)
              err << "block " << addr << ": Shared copy at node " << c.node
                  << " has value " << c.value << " but memory holds "
                  << e.mem_value << "\n";
          }
        }
      }
    });
  }
  return err.str();
}

} // namespace mdw::dsm
