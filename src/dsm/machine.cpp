#include "dsm/machine.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>

namespace mdw::dsm {

namespace {

/// MDW_NO_MEMO=1 disables the plan and route caches (DESIGN.md §12)
/// without a params change — the differential escape hatch mirroring
/// MDW_FULL_SWEEP, for verifying that memoization never alters results.
bool memo_disabled() {
  const char* e = std::getenv("MDW_NO_MEMO");
  return e != nullptr && *e != '0';
}

} // namespace

Machine::Machine(const SystemParams& params, obs::MetricsRegistry* metrics)
    : p_(params), plan_cache_(memo_disabled() ? 0 : params.plan_cache_entries) {
  if (memo_disabled()) p_.noc.route_cache_entries = 0;
  if (metrics == nullptr) {
    own_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics = own_metrics_.get();
  }
  metrics_ = metrics;
  stats_.inval_latency.bind(
      &metrics_->histogram("inval_latency", 0.0, 64.0, 256));
  stats_.inval_sharers.bind(
      &metrics_->histogram("inval_sharers", 0.0, 1.0, 256));
  net_ = std::make_unique<noc::Network>(
      eng_, noc::MeshShape(p_.mesh_w, p_.mesh_h), p_.noc, metrics_);
  nodes_.reserve(p_.num_nodes());
  for (NodeId id = 0; id < p_.num_nodes(); ++id) {
    nodes_.push_back(std::make_unique<Node>(*this, id, p_));
  }
  net_->set_delivery_handler([this](NodeId where, const noc::WormPtr& worm) {
    nodes_[where]->handle_delivery(worm);
  });
  // handle_delivery mutates only node `where`'s state and schedules engine
  // events (directories, sharer sets, and txn bookkeeping are all reached
  // through home-node handlers running as scheduled events), which is
  // exactly the contract the sharded kernel's parallel mailbox replay
  // requires — results stay bit-identical at any shard count.
  net_->set_parallel_replay(true);
}

Machine::~Machine() = default;

void Machine::txn_started(TxnId txn, const InvalTxnRecord& rec) {
  ++stats_.inval_txns;
  stats_.inval_sharers.add(static_cast<double>(rec.sharers));
  stats_.inval_request_worms += static_cast<std::uint64_t>(rec.request_worms);
  stats_.inval_ack_messages += static_cast<std::uint64_t>(rec.ack_messages);
  stats_.inval_total_ack_worms +=
      static_cast<std::uint64_t>(rec.total_ack_worms);
  live_txns_[txn] = rec;
}

void Machine::txn_finished(TxnId txn) {
  auto it = live_txns_.find(txn);
  if (it == live_txns_.end()) return;
  const InvalTxnRecord& rec = it->second;
  it->second.end = eng_.now();
  stats_.inval_latency.add(static_cast<double>(it->second.end -
                                               it->second.start));
  if (tracer_) {
    tracer_->complete("inval_txn", "dsm", rec.start, rec.end - rec.start,
                      rec.home,
                      "{\"txn\": " + std::to_string(txn) +
                          ", \"addr\": " + std::to_string(rec.addr) +
                          ", \"sharers\": " + std::to_string(rec.sharers) +
                          ", \"acks\": " + std::to_string(rec.ack_messages) +
                          "}");
  }
  if (record_txns_) stats_.records.push_back(it->second);
  if (txn_observer_) txn_observer_(it->second);
  live_txns_.erase(it);
}

void Machine::set_trace_writer(obs::TraceWriter* t) {
  tracer_ = t;
  eng_.set_trace_writer(t);
  net_->set_trace_writer(t);
}

void Machine::snapshot_metrics() {
  auto& reg = *metrics_;
  reg.gauge("cycles").set(static_cast<double>(eng_.now()));
  reg.counter("inval_txns").set(stats_.inval_txns);
  reg.counter("inval_request_worms").set(stats_.inval_request_worms);
  reg.counter("inval_ack_messages").set(stats_.inval_ack_messages);
  reg.counter("inval_total_ack_worms").set(stats_.inval_total_ack_worms);

  const noc::NetworkStats& ns = net_->stats();
  reg.counter("worms_injected").set(ns.worms_injected);
  reg.counter("worms_delivered").set(ns.worms_delivered);
  reg.counter("absorb_deliveries").set(ns.absorb_deliveries);
  reg.counter("link_flit_hops").set(ns.link_flit_hops);
  reg.counter("gather_deferred").set(ns.gather_deferred);
  reg.counter("gather_deposits").set(ns.gather_deposits);

  const core::PlanCacheStats& pcs = plan_cache_.stats();
  reg.counter("plan_cache.hits").set(pcs.hits);
  reg.counter("plan_cache.misses").set(pcs.misses);
  reg.counter("plan_cache.evictions").set(pcs.evictions);
  const noc::RouteCacheStats& rcs = net_->route_cache().stats();
  reg.counter("route_cache.hits").set(rcs.hits);
  reg.counter("route_cache.misses").set(rcs.misses);
  reg.counter("route_cache.evictions").set(rcs.evictions);
  net_->publish_shard_metrics();

  std::uint64_t forwarded = 0, consumed = 0, alloc_stalls = 0, cons_blocked = 0,
                bank_blocked = 0;
  for (NodeId id = 0; id < static_cast<NodeId>(nodes_.size()); ++id) {
    const noc::RouterStats& rs = net_->router(id).stats();
    forwarded += rs.flits_forwarded;
    consumed += rs.flits_consumed;
    alloc_stalls += rs.alloc_stall_cycles;
    cons_blocked += rs.cons_blocked_cycles;
    bank_blocked += rs.bank_blocked_cycles;
  }
  reg.counter("router.flits_forwarded").set(forwarded);
  reg.counter("router.flits_consumed").set(consumed);
  reg.counter("router.alloc_stall_cycles").set(alloc_stalls);
  reg.counter("router.cons_blocked_cycles").set(cons_blocked);
  reg.counter("router.bank_blocked_cycles").set(bank_blocked);

  std::uint64_t occupancy = 0, sent = 0, received = 0, occupancy_peak = 0;
  std::uint64_t svc_enq = 0, svc_wait = 0, svc_qpeak = 0, svc_ppeak = 0,
                svc_groups = 0, svc_coalesced = 0;
  for (const auto& n : nodes_) {
    occupancy += n->stats().occupancy_cycles;
    occupancy_peak = std::max(occupancy_peak, n->stats().occupancy_cycles);
    sent += n->stats().msgs_sent;
    received += n->stats().msgs_received;
    svc_enq += n->stats().svc_enqueued;
    svc_wait += n->stats().svc_queue_wait_cycles;
    svc_qpeak = std::max(svc_qpeak, n->stats().svc_queue_peak);
    svc_ppeak = std::max(svc_ppeak, n->stats().svc_pipeline_peak);
    svc_groups += n->stats().svc_groups;
    svc_coalesced += n->stats().svc_coalesced_txns;
  }
  reg.counter("node.occupancy_cycles").set(occupancy);
  reg.gauge("node.occupancy_peak").set(static_cast<double>(occupancy_peak));
  reg.counter("node.msgs_sent").set(sent);
  reg.counter("node.msgs_received").set(received);
  reg.counter("svc.enqueued").set(svc_enq);
  reg.counter("svc.queue_wait_cycles").set(svc_wait);
  reg.gauge("svc.queue_peak").set(static_cast<double>(svc_qpeak));
  reg.gauge("svc.pipeline_peak").set(static_cast<double>(svc_ppeak));
  reg.counter("svc.groups").set(svc_groups);
  reg.counter("svc.coalesced_txns").set(svc_coalesced);
}

bool Machine::all_idle() const {
  for (const auto& n : nodes_) {
    if (n->op_pending()) return false;
  }
  return true;
}

std::uint64_t Machine::total_occupancy() const {
  std::uint64_t sum = 0;
  for (const auto& n : nodes_) sum += n->stats().occupancy_cycles;
  return sum;
}

std::string Machine::check_coherence() const {
  std::ostringstream err;
  const int n = static_cast<int>(nodes_.size());

  // Gather every cached copy.
  struct Copy {
    NodeId node;
    LineState state;
    std::uint64_t value;
  };
  std::unordered_map<BlockAddr, std::vector<Copy>> copies;
  for (NodeId id = 0; id < n; ++id) {
    nodes_[id]->cache().for_each_valid([&](const Cache::Line& l) {
      copies[l.tag].push_back(Copy{id, l.state, l.value});
    });
  }

  // Single-writer & no-stale-sharers.
  for (const auto& [addr, cs] : copies) {
    int modified = 0;
    for (const auto& c : cs) modified += (c.state == LineState::Modified);
    if (modified > 1) {
      err << "block " << addr << ": " << modified << " Modified copies\n";
    }
    if (modified == 1 && cs.size() > 1) {
      err << "block " << addr << ": Modified copy coexists with "
          << cs.size() - 1 << " other copies\n";
    }
  }

  // Directory agreement (silent Shared evictions make the directory a
  // superset of the caches, never the reverse).
  for (NodeId home = 0; home < n; ++home) {
    nodes_[home]->directory().for_each([&](BlockAddr addr, const DirEntry& e) {
      if (e.state == DirState::Waiting) {
        err << "block " << addr << ": directory stuck in Waiting\n";
        return;
      }
      const auto it = copies.find(addr);
      if (e.state == DirState::Exclusive) {
        bool owner_holds = false;
        if (it != copies.end()) {
          for (const auto& c : it->second) {
            if (c.state == LineState::Modified && c.node == e.owner)
              owner_holds = true;
            if (c.node != e.owner)
              err << "block " << addr << ": copy at node " << c.node
                  << " while Exclusive at " << e.owner << "\n";
          }
        }
        if (!owner_holds)
          err << "block " << addr << ": Exclusive owner " << e.owner
              << " holds no Modified copy\n";
      } else {
        if (it != copies.end()) {
          for (const auto& c : it->second) {
            if (c.state == LineState::Modified)
              err << "block " << addr << ": Modified copy at node " << c.node
                  << " but directory state "
                  << dir_state_name(e.state) << "\n";
            else if (!e.sharers.contains(c.node))
              err << "block " << addr << ": Shared copy at node " << c.node
                  << " without presence bit\n";
            else if (c.value != e.mem_value)
              err << "block " << addr << ": Shared copy at node " << c.node
                  << " has value " << c.value << " but memory holds "
                  << e.mem_value << "\n";
          }
        }
      }
    });
  }
  return err.str();
}

} // namespace mdw::dsm
