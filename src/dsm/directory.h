// Fully-mapped directory (one entry per cached block at its home node):
// state + presence-bit pointer array [44], plus the transient bookkeeping of
// an in-flight transaction (the `waiting` state of §2.2).
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>

#include "core/sharer_set.h"
#include "sim/types.h"

namespace mdw::dsm {

enum class DirState : std::uint8_t { Uncached, Shared, Exclusive, Waiting };

[[nodiscard]] inline const char* dir_state_name(DirState s) {
  static constexpr const char* names[] = {"Uncached", "Shared", "Exclusive",
                                          "Waiting"};
  return names[static_cast<int>(s)];
}

struct PendingReq {
  NodeId requester = kInvalidNode;
  bool is_write = false;
};

struct DirEntry {
  DirState state = DirState::Uncached;
  core::SharerBitmap sharers;   // presence bits
  NodeId owner = kInvalidNode;  // valid in Exclusive
  std::uint64_t mem_value = 0;  // logical memory image at the home

  // --- transient (state == Waiting) --------------------------------------
  PendingReq active;            // request being serviced
  TxnId txn = 0;
  int acks_needed = 0;
  int acks_got = 0;
  bool eager_granted = false;   // RC mode: WriteReply already sent
  bool recall_outstanding = false;
  bool recall_for_write = false;
  std::deque<PendingReq> queue;  // requests arriving while Waiting
};

struct DirectoryStats {
  std::uint64_t read_reqs = 0;
  std::uint64_t write_reqs = 0;
  std::uint64_t inval_txns = 0;
  std::uint64_t recalls = 0;
  std::uint64_t writebacks = 0;
};

class Directory {
public:
  [[nodiscard]] DirEntry& entry(BlockAddr a) { return map_[a]; }
  [[nodiscard]] const DirEntry* find(BlockAddr a) const {
    auto it = map_.find(a);
    return it == map_.end() ? nullptr : &it->second;
  }
  [[nodiscard]] DirectoryStats& stats() { return stats_; }
  [[nodiscard]] const DirectoryStats& stats() const { return stats_; }

  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& [addr, e] : map_) fn(addr, e);
  }

private:
  std::unordered_map<BlockAddr, DirEntry> map_;
  DirectoryStats stats_;
};

} // namespace mdw::dsm
