// Reusable shard-execution primitives for phase-barriered parallel kernels
// (DESIGN.md section 14).
//
// A sharded kernel runs the same phase function on S threads (the caller is
// shard 0, S-1 persistent workers are the rest) with a barrier between
// phases.  Both primitives spin briefly and then fall back to C++20 atomic
// waits, so back-to-back ticks never touch the kernel scheduler but an idle
// simulation parks its workers.
//
// Synchronization contract: every barrier and every run()/worker handoff is
// an acquire/release pair, so all plain writes made by a shard before a sync
// point happen-before every read after it — the sharded cycle kernel relies
// on this for its non-atomic counters, mailboxes, and flit buffers (and TSan
// sees the same edges).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

namespace mdw::sim {

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#endif
}

/// How long a shard should busy-spin before parking (barrier waits) or
/// yielding (ordered-progress waits).  When the host has fewer cores than
/// the kernel has parties, spinning burns the very core the awaited thread
/// needs — a spin there stretches into an OS scheduling quantum — so the
/// budget collapses to "check once, then get out of the way".
inline std::uint64_t spin_budget(int parties) {
  const unsigned hc = std::thread::hardware_concurrency();
  return (hc != 0 && static_cast<int>(hc) < parties) ? 1 : 4096;
}

/// Spin until `pred()` holds (the predicate supplies its own acquire loads):
/// `budget` iterations of cpu_relax, then yield on every further check.
/// Returns the number of wait iterations — callers fold it into their
/// ordered-progress congestion metrics (e.g. `shard.<s>.order_spins`).
template <class Pred>
inline std::uint64_t spin_wait(Pred&& pred, std::uint64_t budget) {
  std::uint64_t spins = 0;
  while (!pred()) {
    if (++spins < budget) {
      cpu_relax();
    } else {
      std::this_thread::yield();
    }
  }
  return spins;
}

/// Sense-reversing spin barrier.  The last arriver may run a serial section
/// (counter folds, deterministic mailbox merges) while every other party is
/// still parked, then releases them all.
class ShardBarrier {
public:
  explicit ShardBarrier(int parties)
      : parties_(parties), spin_budget_(spin_budget(parties)) {}
  ShardBarrier(const ShardBarrier&) = delete;
  ShardBarrier& operator=(const ShardBarrier&) = delete;

  std::uint64_t arrive_and_wait() {
    return arrive_and_wait([] {});
  }

  /// Returns the number of spin iterations this party waited (0 for the
  /// serial runner) — a cheap clock-free congestion metric.
  template <class Serial>
  std::uint64_t arrive_and_wait(Serial&& serial) {
    const std::uint32_t ph = phase_.load(std::memory_order_relaxed);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
      arrived_.store(0, std::memory_order_relaxed);
      serial();
      phase_.fetch_add(1, std::memory_order_acq_rel);
      phase_.notify_all();
      return 0;
    }
    std::uint64_t spins = 0;
    while (phase_.load(std::memory_order_acquire) == ph) {
      if (++spins < spin_budget_) {
        cpu_relax();
      } else {
        phase_.wait(ph, std::memory_order_acquire);
      }
    }
    return spins;
  }

  [[nodiscard]] int parties() const { return parties_; }

private:
  const int parties_;
  const std::uint64_t spin_budget_;
  std::atomic<int> arrived_{0};
  std::atomic<std::uint32_t> phase_{0};
};

/// Persistent worker pool for a fixed shard count.  run() executes
/// body(shard) on every shard, with the calling thread serving shard 0;
/// workers idle between runs on a generation counter.
class ShardPool {
public:
  ShardPool(int shards, std::function<void(int)> body)
      : shards_(shards), body_(std::move(body)) {
    workers_.reserve(static_cast<std::size_t>(shards_ > 0 ? shards_ - 1 : 0));
    for (int s = 1; s < shards_; ++s) {
      workers_.emplace_back([this, s] { worker(s); });
    }
  }

  ShardPool(const ShardPool&) = delete;
  ShardPool& operator=(const ShardPool&) = delete;

  ~ShardPool() {
    stop_.store(true, std::memory_order_relaxed);
    gen_.fetch_add(1, std::memory_order_release);
    gen_.notify_all();
    for (auto& t : workers_) t.join();
  }

  [[nodiscard]] int shards() const { return shards_; }

  /// Run body(s) once per shard; returns after every shard finished.
  void run() {
    done_.store(0, std::memory_order_relaxed);
    gen_.fetch_add(1, std::memory_order_release);
    gen_.notify_all();
    body_(0);
    const int need = shards_ - 1;
    const std::uint64_t budget = spin_budget(shards_) * 16;
    std::uint64_t spins = 0;
    while (done_.load(std::memory_order_acquire) != need) {
      if (++spins < budget) {
        cpu_relax();
      } else {
        spins = 0;
        std::this_thread::yield();
      }
    }
  }

private:
  void worker(int s) {
    // gen_ starts at 0 and run() bumps it exactly once per tick, with run()
    // blocking on done_ before the next bump — so starting from 0 can never
    // miss or double-run a generation, even if this thread starts late.
    std::uint64_t seen = 0;
    const std::uint64_t budget = spin_budget(shards_);
    while (true) {
      std::uint64_t g;
      std::uint64_t spins = 0;
      while ((g = gen_.load(std::memory_order_acquire)) == seen) {
        if (++spins < budget) {
          cpu_relax();
        } else {
          gen_.wait(seen, std::memory_order_acquire);
        }
      }
      seen = g;
      if (stop_.load(std::memory_order_relaxed)) return;
      body_(s);
      done_.fetch_add(1, std::memory_order_release);
    }
  }

  const int shards_;
  std::function<void(int)> body_;
  std::atomic<std::uint64_t> gen_{0};
  std::atomic<int> done_{0};
  std::atomic<bool> stop_{false};
  std::vector<std::thread> workers_;
};

} // namespace mdw::sim
