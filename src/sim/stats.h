// Lightweight statistics accumulators used by the metric collectors.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace mdw::sim {

/// Streaming mean / min / max / stddev (Welford).
class Sampler {
public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }

  void reset() { *this = Sampler{}; }

  /// Fold another sampler in (Chan et al. parallel combine).  The result
  /// depends only on the two operands, not on the order samples originally
  /// arrived in, so merging per-worker samplers in a fixed order yields
  /// results independent of how work was scheduled.
  void merge_from(const Sampler& o) {
    if (o.n_ == 0) return;
    if (n_ == 0) {
      *this = o;
      return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(o.n_);
    const double delta = o.mean_ - mean_;
    n_ += o.n_;
    mean_ += delta * nb / (na + nb);
    m2_ += o.m2_ + delta * delta * na * nb / (na + nb);
    sum_ += o.sum_;
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
  }

private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0, m2_ = 0.0, sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-width bucket histogram with overflow bucket.
class Histogram {
public:
  Histogram(double lo, double bucket_width, std::size_t buckets)
      : lo_(lo), width_(bucket_width), counts_(buckets + 1, 0) {}

  void add(double x) {
    sampler_.add(x);
    if (x < lo_) x = lo_;
    auto idx = static_cast<std::size_t>((x - lo_) / width_);
    counts_[std::min(idx, counts_.size() - 1)]++;
  }

  [[nodiscard]] const std::vector<std::uint64_t>& buckets() const {
    return counts_;
  }
  [[nodiscard]] const Sampler& sampler() const { return sampler_; }

  /// Value below which `q` (0..1) of the samples fall, bucket-resolution.
  [[nodiscard]] double quantile(double q) const;

  /// Element-wise bucket merge + sampler combine.  Both histograms must
  /// share a bucket layout; returns false (and leaves *this untouched)
  /// when they do not.
  bool merge_from(const Histogram& o) {
    if (lo_ != o.lo_ || width_ != o.width_ ||
        counts_.size() != o.counts_.size()) {
      return false;
    }
    for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += o.counts_[i];
    sampler_.merge_from(o.sampler_);
    return true;
  }

private:
  double lo_, width_;
  std::vector<std::uint64_t> counts_;
  Sampler sampler_;
};

} // namespace mdw::sim
