// Lightweight statistics accumulators used by the metric collectors.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace mdw::sim {

/// Streaming mean / min / max / stddev (Welford).
class Sampler {
public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }

  void reset() { *this = Sampler{}; }

private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0, m2_ = 0.0, sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-width bucket histogram with overflow bucket.
class Histogram {
public:
  Histogram(double lo, double bucket_width, std::size_t buckets)
      : lo_(lo), width_(bucket_width), counts_(buckets + 1, 0) {}

  void add(double x) {
    sampler_.add(x);
    if (x < lo_) x = lo_;
    auto idx = static_cast<std::size_t>((x - lo_) / width_);
    counts_[std::min(idx, counts_.size() - 1)]++;
  }

  [[nodiscard]] const std::vector<std::uint64_t>& buckets() const {
    return counts_;
  }
  [[nodiscard]] const Sampler& sampler() const { return sampler_; }

  /// Value below which `q` (0..1) of the samples fall, bucket-resolution.
  [[nodiscard]] double quantile(double q) const;

private:
  double lo_, width_;
  std::vector<std::uint64_t> counts_;
  Sampler sampler_;
};

} // namespace mdw::sim
