// Counting global operator new/delete (see alloc_guard.h).  Linking this
// translation unit replaces the allocator for the whole binary; it is only
// pulled out of the static library by code referencing
// alloc_guard_new_calls(), i.e. the allocation-guard tests.
#include "sim/alloc_guard.h"

#include <atomic>
#include <cstdlib>
#include <execinfo.h>
#include <new>
#include <unistd.h>

// ASan/TSan/MSan install their own operator new/delete interceptors; a
// second global replacement in the same binary either collides at link
// time or hides allocations from the sanitizer runtime.  Under those
// sanitizers the counter stays at zero and the guard tests are skipped
// (alloc_guard_active() reports the state).  UBSan does not touch the
// allocator, so the guard stays live there.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define MDW_ALLOC_GUARD_DISABLED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#define MDW_ALLOC_GUARD_DISABLED 1
#endif
#endif

namespace {

std::atomic<std::uint64_t> g_new_calls{0};
std::atomic<bool> g_trace{false};

void trace_alloc() {
  void* bt[24];
  const int n = backtrace(bt, 24);
  backtrace_symbols_fd(bt, n, 2);
  (void)!write(2, "----\n", 5);
}

void* counted_alloc(std::size_t size) {
  g_new_calls.fetch_add(1, std::memory_order_relaxed);
  if (g_trace.load(std::memory_order_relaxed)) trace_alloc();
  if (size == 0) size = 1;
  return std::malloc(size);
}

void* counted_alloc_aligned(std::size_t size, std::size_t align) {
  g_new_calls.fetch_add(1, std::memory_order_relaxed);
  if (g_trace.load(std::memory_order_relaxed)) trace_alloc();
  if (size == 0) size = 1;
  void* p = nullptr;
  if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align,
                     size) != 0) {
    return nullptr;
  }
  return p;
}

} // namespace

namespace mdw::sim {
std::uint64_t alloc_guard_new_calls() {
  return g_new_calls.load(std::memory_order_relaxed);
}
void alloc_guard_trace(bool on) {
  g_trace.store(on, std::memory_order_relaxed);
}
bool alloc_guard_active() {
#ifdef MDW_ALLOC_GUARD_DISABLED
  return false;
#else
  return true;
#endif
}
} // namespace mdw::sim

#ifndef MDW_ALLOC_GUARD_DISABLED

void* operator new(std::size_t size) {
  if (void* p = counted_alloc(size)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t size) {
  if (void* p = counted_alloc(size)) return p;
  throw std::bad_alloc{};
}
void* operator new(std::size_t size, std::align_val_t align) {
  if (void* p = counted_alloc_aligned(size, static_cast<std::size_t>(align)))
    return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t size, std::align_val_t align) {
  if (void* p = counted_alloc_aligned(size, static_cast<std::size_t>(align)))
    return p;
  throw std::bad_alloc{};
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}
void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return counted_alloc_aligned(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return counted_alloc_aligned(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

#endif  // !MDW_ALLOC_GUARD_DISABLED
