#include "sim/engine.h"

namespace mdw::sim {

bool Engine::step() {
  bool active = false;
  if (!queue_.empty() && queue_.next_time() <= now_) {
    queue_.run_due(now_);
    active = true;
  }
  for (Tickable* t : tickables_) {
    active |= t->tick(now_);
  }
  ++now_;
  return active;
}

bool Engine::run_until(const std::function<bool()>& pred, Cycle max_cycles) {
  const Cycle deadline = now_ + max_cycles;
  while (now_ < deadline) {
    if (pred()) return true;
    if (!step()) {
      // Quiescent network: jump to the next event, if any.
      if (queue_.empty()) return pred();
      if (queue_.next_time() > now_) now_ = queue_.next_time();
    }
  }
  return pred();
}

bool Engine::run_to_quiescence(Cycle max_cycles) {
  const Cycle deadline = now_ + max_cycles;
  while (now_ < deadline) {
    if (!step()) {
      if (queue_.empty()) return true;
      if (queue_.next_time() > now_) now_ = queue_.next_time();
    }
  }
  return false;
}

void Engine::run_for(Cycle n) {
  const Cycle deadline = now_ + n;
  while (now_ < deadline) {
    if (!step() && queue_.empty()) {
      now_ = deadline; // nothing can happen before the deadline
      return;
    }
  }
}

} // namespace mdw::sim
