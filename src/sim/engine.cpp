#include "sim/engine.h"

#include <algorithm>
#include <limits>

namespace mdw::sim {

thread_local Engine::StageBuffer* Engine::stage_ = nullptr;

bool Engine::step() {
  bool active = false;
  if (!queue_.empty() && queue_.next_time() <= now_) {
    queue_.run_due(now_);
    active = true;
  }
  for (Tickable* t : tickables_) {
    active |= t->tick(now_);
  }
  ++now_;
  return active;
}

Cycle Engine::next_activity() const {
  Cycle next = wake_pending_ ? wake_at_ : std::numeric_limits<Cycle>::max();
  if (!queue_.empty()) next = std::min(next, queue_.next_time());
  return next;
}

bool Engine::run_until(const std::function<bool()>& pred, Cycle max_cycles) {
  const Cycle deadline = now_ + max_cycles;
  while (now_ < deadline) {
    if (pred()) return true;
    if (!step()) {
      // Quiescent network: jump to the next event or wake request, if any.
      if (idle_drained()) return pred();
      if (const Cycle next = next_activity(); next > now_) now_ = next;
    }
  }
  return pred();
}

bool Engine::run_to_quiescence(Cycle max_cycles) {
  const Cycle deadline = now_ + max_cycles;
  while (now_ < deadline) {
    if (!step()) {
      if (idle_drained()) return true;
      if (const Cycle next = next_activity(); next > now_) now_ = next;
    }
  }
  return false;
}

void Engine::run_for(Cycle n) {
  const Cycle deadline = now_ + n;
  while (now_ < deadline) {
    if (!step()) {
      if (idle_drained()) {
        now_ = deadline; // nothing can happen before the deadline
        return;
      }
      if (const Cycle next = next_activity(); next > now_)
        now_ = std::min(next, deadline);
    }
  }
}

} // namespace mdw::sim
