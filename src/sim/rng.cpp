#include "sim/rng.h"

#include <cmath>

namespace mdw::sim {

std::uint64_t Rng::next_geometric(double mean) {
  if (mean <= 1.0) return 1;
  const double p = 1.0 / mean;
  // Inverse-CDF sampling; clamp the uniform away from 0 to avoid log(0).
  const double u = std::max(next_double(), 1e-18);
  const double g = std::log(u) / std::log(1.0 - p);
  return static_cast<std::uint64_t>(std::max(1.0, std::ceil(g)));
}

} // namespace mdw::sim
