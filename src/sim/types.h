// Common scalar types shared across the simulator.
#pragma once

#include <cstdint>

namespace mdw {

/// Simulation time, measured in network cycles (5 ns each by default; see
/// dsm::SystemParams::cycle_ns).
using Cycle = std::uint64_t;

/// Flat node identifier in a 2-D mesh, row-major: id = y * width + x.
using NodeId = std::int32_t;

/// Globally unique identifier of a coherence transaction.
using TxnId = std::uint64_t;

/// Globally unique identifier of a worm (one network message).
using WormId = std::uint64_t;

/// Cache-block address (block granularity, i.e. byte address >> log2(block)).
using BlockAddr = std::uint64_t;

inline constexpr NodeId kInvalidNode = -1;

} // namespace mdw
