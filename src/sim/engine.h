// Cycle-driven simulation engine.
//
// The network is simulated by ticking every registered component once per
// cycle (flit movement is inherently synchronous); everything else (memory
// latencies, controller occupancy, processor think time) uses the event
// queue.  A cycle with no due events and no component activity is skipped
// over by fast-forwarding to the next event, which keeps long idle phases
// cheap without sacrificing cycle accuracy.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/event_queue.h"
#include "sim/types.h"

namespace mdw::obs {
class TraceWriter;
}

namespace mdw::sim {

/// A component that must be evaluated every cycle while the network is busy.
class Tickable {
public:
  virtual ~Tickable() = default;
  /// Advance one cycle. Returns true if the component did (or could soon do)
  /// any work, false if it is completely idle.
  virtual bool tick(Cycle now) = 0;
};

class Engine {
public:
  [[nodiscard]] Cycle now() const { return now_; }

  /// Components are ticked in registration order each cycle.
  void register_tickable(Tickable* t) { tickables_.push_back(t); }

  void schedule_at(Cycle when, EventQueue::Callback cb) {
    queue_.schedule_at(when, std::move(cb));
  }
  void schedule_after(Cycle delay, EventQueue::Callback cb) {
    queue_.schedule_at(now_ + delay, std::move(cb));
  }

  /// Run until `pred` returns true, the queue drains with all components
  /// idle, or `max_cycles` elapse.  Returns true iff `pred` was satisfied.
  bool run_until(const std::function<bool()>& pred, Cycle max_cycles);

  /// Run until quiescent (no events, all components idle) or `max_cycles`.
  /// Returns true iff the simulation quiesced.
  bool run_to_quiescence(Cycle max_cycles);

  /// Advance exactly `n` cycles regardless of activity.
  void run_for(Cycle n);

  /// Opt-in event tracing: nullptr (the default) disables it.  Components
  /// pick the writer up from here at construction; the engine itself emits
  /// nothing, it is only the distribution point.
  void set_trace_writer(obs::TraceWriter* t) { tracer_ = t; }
  [[nodiscard]] obs::TraceWriter* trace_writer() const { return tracer_; }

private:
  /// Execute one cycle: due events first (they may inject traffic), then the
  /// synchronous component sweep. Returns true if anything happened.
  bool step();

  Cycle now_ = 0;
  EventQueue queue_;
  std::vector<Tickable*> tickables_;
  obs::TraceWriter* tracer_ = nullptr;
};

} // namespace mdw::sim
