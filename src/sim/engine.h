// Cycle-driven simulation engine.
//
// The network is simulated by ticking every registered component once per
// cycle (flit movement is inherently synchronous); everything else (memory
// latencies, controller occupancy, processor think time) uses the event
// queue.  A cycle with no due events and no component activity is skipped
// over by fast-forwarding to the next event, which keeps long idle phases
// cheap without sacrificing cycle accuracy.
//
// Two hooks exist for the network's quiescence fast-forward (DESIGN.md
// section 16):
//
//   * Wake requests: a component that reports itself idle but knows the
//     cycle at which it can act again registers that cycle with
//     request_wake(); the run loops treat it as an additional jump target
//     (and as pending activity, so run_to_quiescence does not conclude the
//     simulation is over).  Unlike a queued no-op event, a wake request is
//     cancellable and never perturbs event sequence numbers, so simulations
//     with and without fast-forward remain bit-identical.  At most one
//     component per engine may hold a wake request at a time (the Network).
//
//   * Staged scheduling: while a thread-local stage buffer is set,
//     schedule_at/schedule_after append to it instead of the shared queue.
//     The sharded kernel replays delivery handlers concurrently (one shard
//     per mailbox) and then commits the staged events serially in canonical
//     order, reproducing the exact queue insertion sequence — and therefore
//     the exact same-time tie-breaking — of a sequential replay.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/event_queue.h"
#include "sim/types.h"

namespace mdw::obs {
class TraceWriter;
}

namespace mdw::sim {

/// A component that must be evaluated every cycle while the network is busy.
class Tickable {
public:
  virtual ~Tickable() = default;
  /// Advance one cycle. Returns true if the component did (or could soon do)
  /// any work, false if it is completely idle.
  virtual bool tick(Cycle now) = 0;
};

class Engine {
public:
  [[nodiscard]] Cycle now() const { return now_; }

  /// Components are ticked in registration order each cycle.
  void register_tickable(Tickable* t) { tickables_.push_back(t); }

  void schedule_at(Cycle when, EventQueue::Callback cb) {
    if (stage_ != nullptr) {
      stage_->push_back(StagedEvent{when, std::move(cb)});
      return;
    }
    queue_.schedule_at(when, std::move(cb));
  }
  void schedule_after(Cycle delay, EventQueue::Callback cb) {
    schedule_at(now_ + delay, std::move(cb));
  }

  // --- wake requests (see header) -----------------------------------------
  /// Ask the run loops to advance time to at most `when` during idle jumps;
  /// keeps run_to_quiescence from finishing while the requester still holds
  /// future work.  A later request with an earlier time tightens the bound.
  void request_wake(Cycle when) {
    if (!wake_pending_ || when < wake_at_) {
      wake_pending_ = true;
      wake_at_ = when;
    }
  }
  /// Withdraw the pending wake request (the requester resumed or went truly
  /// idle).  Harmless when none is pending.
  void clear_wake() { wake_pending_ = false; }
  [[nodiscard]] bool wake_pending() const { return wake_pending_; }

  // --- staged scheduling (see header) -------------------------------------
  struct StagedEvent {
    Cycle when;
    EventQueue::Callback cb;
  };
  using StageBuffer = std::vector<StagedEvent>;
  /// Redirect this thread's schedule_at/schedule_after into `buf` (nullptr
  /// restores direct queue scheduling).  Thread-confined: no locking.
  static void set_stage_buffer(StageBuffer* buf) { stage_ = buf; }

  /// Run until `pred` returns true, the queue drains with all components
  /// idle, or `max_cycles` elapse.  Returns true iff `pred` was satisfied.
  bool run_until(const std::function<bool()>& pred, Cycle max_cycles);

  /// Run until quiescent (no events, no wake request, all components idle)
  /// or `max_cycles`.  Returns true iff the simulation quiesced.
  bool run_to_quiescence(Cycle max_cycles);

  /// Advance exactly `n` cycles regardless of activity.
  void run_for(Cycle n);

  /// Opt-in event tracing: nullptr (the default) disables it.  Components
  /// pick the writer up from here at construction; the engine itself emits
  /// nothing, it is only the distribution point.
  void set_trace_writer(obs::TraceWriter* t) { tracer_ = t; }
  [[nodiscard]] obs::TraceWriter* trace_writer() const { return tracer_; }

private:
  /// Execute one cycle: due events first (they may inject traffic), then the
  /// synchronous component sweep. Returns true if anything happened.
  bool step();
  /// Earliest idle-jump target: the queue's next event time, tightened by a
  /// pending wake request.  Only valid when !idle_drained().
  [[nodiscard]] Cycle next_activity() const;
  /// True when nothing is left to jump to: empty queue and no wake request.
  [[nodiscard]] bool idle_drained() const {
    return queue_.empty() && !wake_pending_;
  }

  Cycle now_ = 0;
  EventQueue queue_;
  std::vector<Tickable*> tickables_;
  obs::TraceWriter* tracer_ = nullptr;
  bool wake_pending_ = false;
  Cycle wake_at_ = 0;
  static thread_local StageBuffer* stage_;
};

} // namespace mdw::sim
