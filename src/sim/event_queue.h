// Time-ordered callback queue used for component-level delays (memory access
// completion, controller occupancy release, processor think time, ...).
//
// Ties are broken by insertion order so simulations are fully deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/types.h"

namespace mdw::sim {

class EventQueue {
public:
  using Callback = std::function<void()>;

  /// Schedule `cb` to fire at absolute cycle `when`.
  void schedule_at(Cycle when, Callback cb) {
    heap_.push(Entry{when, seq_++, std::move(cb)});
  }

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  /// Earliest pending event time; only valid when !empty().
  [[nodiscard]] Cycle next_time() const { return heap_.top().when; }

  /// Pop and run every event scheduled at or before `now`.  Events scheduled
  /// by a running callback for time <= now run in the same call.
  void run_due(Cycle now) {
    while (!heap_.empty() && heap_.top().when <= now) {
      // Move the callback out before popping so it can schedule new events.
      Callback cb = std::move(const_cast<Entry&>(heap_.top()).cb);
      heap_.pop();
      cb();
    }
  }

private:
  struct Entry {
    Cycle when;
    std::uint64_t seq;
    Callback cb;
    bool operator>(const Entry& o) const {
      return when != o.when ? when > o.when : seq > o.seq;
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::uint64_t seq_ = 0;
};

} // namespace mdw::sim
