// Time-ordered callback queue used for component-level delays (memory access
// completion, controller occupancy release, processor think time, ...).
//
// Ties are broken by insertion order so simulations are fully deterministic.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "sim/types.h"

namespace mdw::sim {

class EventQueue {
public:
  using Callback = std::function<void()>;

  /// Schedule `cb` to fire at absolute cycle `when`.
  void schedule_at(Cycle when, Callback cb) {
    heap_.push_back(Entry{when, seq_++, std::move(cb)});
    std::push_heap(heap_.begin(), heap_.end(), Entry::Later{});
  }

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  /// Earliest pending event time; only valid when !empty().
  [[nodiscard]] Cycle next_time() const { return heap_.front().when; }

  /// Pop and run every event scheduled at or before `now`.  Events scheduled
  /// by a running callback for time <= now run in the same call.
  void run_due(Cycle now) {
    while (!heap_.empty() && heap_.front().when <= now) {
      // A plain vector heap lets the entry be moved out before running it,
      // so the callback can freely schedule new events.
      std::pop_heap(heap_.begin(), heap_.end(), Entry::Later{});
      Entry e = std::move(heap_.back());
      heap_.pop_back();
      e.cb();
    }
  }

private:
  struct Entry {
    Cycle when;
    std::uint64_t seq;
    Callback cb;
    /// Min-heap order: the entry firing later sorts toward the heap bottom.
    struct Later {
      bool operator()(const Entry& a, const Entry& b) const {
        return a.when != b.when ? a.when > b.when : a.seq > b.seq;
      }
    };
  };
  std::vector<Entry> heap_;
  std::uint64_t seq_ = 0;
};

} // namespace mdw::sim
