// Allocation-count test hook backing the "no allocation in steady state"
// claims (DESIGN.md sections 11 and 17).
//
// alloc_guard.cpp replaces the global operator new/delete with
// malloc-forwarding versions that bump a process-wide counter.  The
// replacement is installed ONLY in binaries that link that translation unit
// (static-library semantics: the object file is pulled in because it defines
// alloc_guard_new_calls, which only test code references), so production
// binaries keep the default allocator.
//
// Usage:
//   sim::AllocGuard guard;
//   ... steady-state tick window ...
//   EXPECT_EQ(guard.delta(), 0u);
#pragma once

#include <cstdint>

namespace mdw::sim {

/// Global operator-new invocations since process start (all forms: scalar,
/// array, aligned).  Monotonic; thread-safe (relaxed atomic).
[[nodiscard]] std::uint64_t alloc_guard_new_calls();

/// Debug aid: while enabled, every counted allocation prints a backtrace to
/// stderr (signal-unsafe, test diagnostics only).
void alloc_guard_trace(bool on);

/// False when the counting allocator is compiled out (ASan/TSan/MSan builds
/// install their own interceptors); guard tests skip themselves then.
[[nodiscard]] bool alloc_guard_active();

/// Scope marker: counts operator-new calls since its construction.
class AllocGuard {
public:
  AllocGuard() : start_(alloc_guard_new_calls()) {}
  /// Allocations observed since construction.
  [[nodiscard]] std::uint64_t delta() const {
    return alloc_guard_new_calls() - start_;
  }

private:
  std::uint64_t start_;
};

} // namespace mdw::sim
