// Growable circular FIFO replacing std::deque on the simulator hot path
// (network-interface injection queues and i-ack retry queues).
//
// std::deque allocates and frees chunk nodes as elements flow through even
// when the queue stays shallow; RingQueue only allocates when the occupancy
// high-water mark grows, and the storage is retained thereafter, so the
// steady state performs no allocation.  pop_front() resets the vacated slot
// to a default-constructed T so reference-holding elements (e.g. WormPtr)
// release their target immediately.
#pragma once

#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

namespace mdw::sim {

template <class T>
class RingQueue {
public:
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t capacity() const { return buf_.size(); }

  [[nodiscard]] T& front() {
    assert(size_ > 0);
    return buf_[head_];
  }
  [[nodiscard]] const T& front() const {
    assert(size_ > 0);
    return buf_[head_];
  }

  void push_back(T v) {
    if (size_ == buf_.size()) grow();
    buf_[wrap(head_ + size_)] = std::move(v);
    ++size_;
  }
  template <class... Args>
  void emplace_back(Args&&... args) {
    push_back(T(std::forward<Args>(args)...));
  }

  void pop_front() {
    assert(size_ > 0);
    buf_[head_] = T{};  // drop held references right away
    head_ = wrap(head_ + 1);
    --size_;
  }

private:
  [[nodiscard]] std::size_t wrap(std::size_t i) const {
    return i >= buf_.size() ? i - buf_.size() : i;
  }

  void grow() {
    std::vector<T> nb(buf_.empty() ? 8 : buf_.size() * 2);
    for (std::size_t i = 0; i < size_; ++i) {
      nb[i] = std::move(buf_[wrap(head_ + i)]);
    }
    buf_ = std::move(nb);
    head_ = 0;
  }

  std::vector<T> buf_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

} // namespace mdw::sim
