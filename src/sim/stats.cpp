#include "sim/stats.h"

namespace mdw::sim {

double Histogram::quantile(double q) const {
  const std::uint64_t total = sampler_.count();
  if (total == 0) return 0.0;
  const auto target =
      static_cast<std::uint64_t>(q * static_cast<double>(total));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (seen > target) return lo_ + width_ * static_cast<double>(i + 1);
  }
  return lo_ + width_ * static_cast<double>(counts_.size());
}

} // namespace mdw::sim
