// Small-inline vector for trivially copyable elements on the simulator hot
// path (worm paths and destination lists).
//
// The first N elements live inline in the object; growing past N spills to a
// single heap block.  clear() never releases the spill block, so a container
// recycled through a pool (see noc::WormPool) reaches a steady state where
// no per-message allocation happens at all: the spill block acquired by the
// largest message a slot ever carried is reused by every later occupant.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstring>
#include <initializer_list>
#include <type_traits>

namespace mdw::sim {

template <class T, std::size_t N>
class SmallVec {
  static_assert(std::is_trivially_copyable_v<T> &&
                    std::is_trivially_destructible_v<T>,
                "SmallVec is restricted to trivially copyable payloads");
  static_assert(N > 0);

public:
  using value_type = T;

  SmallVec() = default;
  SmallVec(std::initializer_list<T> il) { assign(il.begin(), il.end()); }
  SmallVec(const SmallVec& o) { assign(o.begin(), o.end()); }
  SmallVec(SmallVec&& o) noexcept { steal(o); }
  ~SmallVec() { delete[] heap_; }

  SmallVec& operator=(const SmallVec& o) {
    if (this != &o) assign(o.begin(), o.end());
    return *this;
  }
  SmallVec& operator=(SmallVec&& o) noexcept {
    if (this != &o) {
      delete[] heap_;
      heap_ = nullptr;
      steal(o);
    }
    return *this;
  }
  SmallVec& operator=(std::initializer_list<T> il) {
    assign(il.begin(), il.end());
    return *this;
  }

  /// Replace the contents with [first, last).  Keeps any spill block.
  template <class It>
  void assign(It first, It last) {
    size_ = 0;
    for (; first != last; ++first) push_back(*first);
  }

  void push_back(const T& v) {
    if (size_ == cap_) grow(cap_ * 2);
    data()[size_++] = v;
  }
  void pop_back() {
    assert(size_ > 0);
    --size_;
  }
  /// Drop all elements; inline storage and any spill block are retained.
  void clear() { size_ = 0; }

  [[nodiscard]] T* data() { return heap_ != nullptr ? heap_ : inline_; }
  [[nodiscard]] const T* data() const {
    return heap_ != nullptr ? heap_ : inline_;
  }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t capacity() const { return cap_; }
  /// True once the container has spilled to the heap (stays true after
  /// clear(): the block is kept for reuse).
  [[nodiscard]] bool spilled() const { return heap_ != nullptr; }

  [[nodiscard]] T& operator[](std::size_t i) {
    assert(i < size_);
    return data()[i];
  }
  [[nodiscard]] const T& operator[](std::size_t i) const {
    assert(i < size_);
    return data()[i];
  }
  [[nodiscard]] T& front() { return (*this)[0]; }
  [[nodiscard]] const T& front() const { return (*this)[0]; }
  [[nodiscard]] T& back() { return (*this)[size_ - 1]; }
  [[nodiscard]] const T& back() const { return (*this)[size_ - 1]; }

  [[nodiscard]] T* begin() { return data(); }
  [[nodiscard]] T* end() { return data() + size_; }
  [[nodiscard]] const T* begin() const { return data(); }
  [[nodiscard]] const T* end() const { return data() + size_; }

private:
  void grow(std::size_t new_cap) {
    T* nd = new T[new_cap];
    std::memcpy(static_cast<void*>(nd), data(), size_ * sizeof(T));
    delete[] heap_;
    heap_ = nd;
    cap_ = new_cap;
  }

  /// Move: steal the spill block when there is one, memcpy when inline.
  void steal(SmallVec& o) {
    if (o.heap_ != nullptr) {
      heap_ = o.heap_;
      cap_ = o.cap_;
      o.heap_ = nullptr;
      o.cap_ = N;
    } else {
      std::memcpy(static_cast<void*>(inline_), o.inline_, o.size_ * sizeof(T));
    }
    size_ = o.size_;
    o.size_ = 0;
  }

  T inline_[N];
  T* heap_ = nullptr;  // spill block, nullptr while inline
  std::size_t size_ = 0;
  std::size_t cap_ = N;
};

} // namespace mdw::sim
