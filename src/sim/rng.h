// Deterministic pseudo-random number generation for reproducible experiments.
//
// xoshiro256** seeded via SplitMix64, per the reference implementations of
// Blackman & Vigna.  We avoid <random> engines in the hot path: the simulator
// draws millions of values and mt19937_64 state is needlessly large.
#pragma once

#include <cstdint>
#include <limits>

namespace mdw::sim {

/// SplitMix64 over (base_seed, index): the repo-wide sub-stream seed rule.
/// Distinct indices give uncorrelated seeds; the result depends only on the
/// two inputs, never on wall-clock time or execution order.  Used for
/// per-point seeds in sweeps (sweep::derive_point_seed) and per-processor
/// streams in the workload generators, so a sweep point and a standalone
/// run with the same seed draw identical streams.
[[nodiscard]] constexpr std::uint64_t split_seed(std::uint64_t base_seed,
                                                 std::uint64_t index) {
  std::uint64_t z = base_seed + 0x9E3779B97F4A7C15ull * (index + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

class Rng {
public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // SplitMix64 to expand the seed into the four state words.
    auto next = [&seed]() {
      seed += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      return z ^ (z >> 31);
    };
    for (auto& w : state_) w = next();
  }

  [[nodiscard]] std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  [[nodiscard]] std::uint64_t next_below(std::uint64_t bound) {
    // Lemire's nearly-divisionless method without the rejection loop is fine
    // here: bias is < 2^-32 for the bounds the simulator uses (< 2^32).
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next_u64()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with probability p.
  [[nodiscard]] bool next_bool(double p) { return next_double() < p; }

  /// Geometric inter-arrival gap with mean `mean` (>= 1).
  [[nodiscard]] std::uint64_t next_geometric(double mean);

private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4]{};
};

} // namespace mdw::sim
