#include "sweep/runner.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>

#include "dsm/machine.h"
#include "workload/generators.h"
#include "workload/stream_runner.h"

namespace mdw::sweep {

namespace {

/// Streaming point: replay a synthetic generator stream on a full machine
/// and report the steady-state window (the harness behind the e10s grid).
/// `d` is reinterpreted as the per-block accessor-group size and `pattern`
/// as the group placement geometry; `repetitions`/`rounds` are unused.
PointResult run_stream_point(const SweepPoint& pt,
                             obs::MetricsRegistry& registry) {
  PointResult out;
  out.ran = true;

  dsm::Machine m(pt.params, &registry);
  workload::GenConfig cfg;
  cfg.kind = pt.gen;
  cfg.nprocs = m.num_nodes();
  cfg.nblocks = pt.gen_blocks;
  cfg.ops_per_proc = pt.gen_ops;
  cfg.seed = pt.seed;
  cfg.pattern = pt.pattern;
  cfg.group = pt.d;
  const auto src = workload::make_generator(cfg, m.network().mesh());

  workload::StreamRunnerOptions opt;
  opt.warmup_accesses = pt.gen_warmup;
  // For streaming points the concurrency axis is the CLIENT load knob:
  // ops each processor keeps in flight through its svc::Session (0 keeps
  // the classic blocking loop).  Hot-spot semantics apply only to
  // gen == None points.
  opt.outstanding = pt.concurrent > 0 ? pt.concurrent : 1;
  workload::StreamRunner runner(m, *src, opt);
  const workload::StreamResult r = runner.run();

  out.completed = r.completed;
  out.m.inval_latency = r.lat_mean;
  out.m.inval_latency_p50 = r.lat_p50;
  out.m.inval_latency_p90 = r.lat_p90;
  out.m.inval_latency_p99 = r.lat_p99;
  out.m.occupancy = static_cast<double>(m.total_occupancy());
  out.makespan = static_cast<double>(r.cycles);
  out.accesses_per_kcycle = r.accesses_per_kcycle;
  out.txns_per_kcycle = r.txns_per_kcycle;
  out.steady_accesses = r.steady_accesses;
  for (NodeId id = 0; id < m.num_nodes(); ++id) {
    const dsm::NodeStats& ns = m.node(id).stats();
    out.home_occupancy_peak = std::max(
        out.home_occupancy_peak, static_cast<double>(ns.occupancy_cycles));
    out.svc_pipeline_peak = std::max(
        out.svc_pipeline_peak, static_cast<double>(ns.svc_pipeline_peak));
    out.svc_queue_peak = std::max(out.svc_queue_peak,
                                  static_cast<double>(ns.svc_queue_peak));
    out.svc_queue_wait += static_cast<double>(ns.svc_queue_wait_cycles);
    out.svc_coalesced_txns += static_cast<double>(ns.svc_coalesced_txns);
  }
  runner.snapshot_metrics(registry);
  m.snapshot_metrics();
  return out;
}

} // namespace

PointResult run_point(const SweepPoint& pt, obs::MetricsRegistry& registry,
                      obs::LinkHeatmap& heatmap) {
  if (pt.gen != workload::GenKind::None) {
    return run_stream_point(pt, registry);
  }
  PointResult out;
  out.ran = true;
  if (pt.concurrent == 0) {
    analysis::InvalExperimentConfig cfg;
    cfg.mesh = pt.mesh;
    cfg.scheme = pt.scheme;
    cfg.pattern = pt.pattern;
    cfg.d = pt.d;
    cfg.repetitions = pt.repetitions;
    cfg.seed = pt.seed;
    cfg.base = pt.params;
    cfg.metrics = &registry;
    cfg.heatmap = &heatmap;
    out.m = analysis::measure_invalidations(cfg);
  } else {
    analysis::HotspotConfig cfg;
    cfg.mesh = pt.mesh;
    cfg.scheme = pt.scheme;
    cfg.d = pt.d;
    cfg.concurrent = pt.concurrent;
    cfg.rounds = pt.rounds;
    cfg.seed = pt.seed;
    cfg.base = pt.params;
    cfg.metrics = &registry;
    const analysis::HotspotMeasurement h = analysis::measure_hotspot(cfg);
    out.completed = h.completed;
    out.m.inval_latency = h.inval_latency;
    out.m.inval_latency_p50 = h.inval_latency_p50;
    out.m.inval_latency_p90 = h.inval_latency_p90;
    out.m.inval_latency_p99 = h.inval_latency_p99;
    out.m.traffic_flits = h.traffic_flits;
    out.m.deferred_gathers = h.deferred_gathers;
    out.makespan = h.makespan;
    out.bank_blocked_cycles = h.bank_blocked_cycles;
    (void)heatmap.merge_from(h.heatmap);
  }
  return out;
}

int ThreadPoolRunner::effective_jobs() const {
  if (opt_.jobs > 0) return opt_.jobs;
  const unsigned hc = std::thread::hardware_concurrency();
  return hc ? static_cast<int>(hc) : 1;
}

SweepReport ThreadPoolRunner::run(const std::vector<SweepPoint>& points) const {
  return run(points, run_point);
}

SweepReport ThreadPoolRunner::run(const std::vector<SweepPoint>& points,
                                  const PointFn& fn) const {
  const auto t0 = std::chrono::steady_clock::now();
  const std::size_t n = points.size();

  SweepReport report;
  report.results.resize(n);
  // One private registry/heatmap per POINT (not per worker): merging them in
  // index order below makes the merged contents independent of which worker
  // ran what, and the point functions never share mutable state.
  std::vector<obs::MetricsRegistry> registries(n);
  std::vector<obs::LinkHeatmap> heatmaps(n);

  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::atomic<bool> cancel{false};
  std::mutex mu;  // guards report.error and the progress line

  auto progress = [&](std::size_t completed) {
    if (!opt_.progress) return;
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    const double eta =
        completed ? elapsed / static_cast<double>(completed) *
                        static_cast<double>(n - completed)
                  : 0.0;
    std::fprintf(stderr, "\rsweep: %zu/%zu points  %5.1fs elapsed  eta %5.1fs",
                 completed, n, elapsed, eta);
    if (completed == n) std::fputc('\n', stderr);
    std::fflush(stderr);
  };

  auto worker = [&] {
    while (!cancel.load(std::memory_order_relaxed)) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        report.results[i] = fn(points[i], registries[i], heatmaps[i]);
      } catch (const std::exception& e) {
        std::lock_guard<std::mutex> lock(mu);
        if (report.ok) {
          report.ok = false;
          report.error = "point " + std::to_string(i) + ": " + e.what();
        }
        cancel.store(true, std::memory_order_relaxed);
        return;
      }
      const std::size_t completed = done.fetch_add(1) + 1;
      std::lock_guard<std::mutex> lock(mu);
      progress(completed);
    }
  };

  const int jobs =
      static_cast<int>(std::min<std::size_t>(effective_jobs(), n ? n : 1));
  if (jobs <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(jobs));
    for (int j = 0; j < jobs; ++j) pool.emplace_back(worker);
    for (auto& t : pool) t.join();
  }

  // Deterministic fold: point-index order, skipping points that never ran.
  for (std::size_t i = 0; i < n; ++i) {
    if (!report.results[i].ran) continue;
    (void)report.metrics.merge_from(registries[i]);
    obs::LinkHeatmap& hm = heatmaps[i];
    if (hm.num_nodes() > 0) {
      (void)report.heatmaps[{hm.width(), hm.height()}].merge_from(hm);
    }
  }

  report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return report;
}

} // namespace mdw::sweep
