// mdw_sweep — run a named experiment grid (e3, e4, e5, e8, e10s) or an
// inline axis spec across a thread pool, printing the classic bench tables
// and (optionally) machine-readable per-point JSON.
//
//   mdw_sweep e4 --jobs=8
//   mdw_sweep e8 --points-json=e8.json --metrics-json=e8-metrics.json
//   mdw_sweep --schemes=UI-UA,EC-CM-CG --mesh=8,16 --d=4,8 --reps=4 --seed=9
//
// Per-point results are bit-identical for any --jobs value: each point owns
// its RNG (seeded from the grid, never the clock), machine, registry, and
// heatmap, and merges happen in point-index order (DESIGN.md section 10).
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "sweep/named_grids.h"

using namespace mdw;

namespace {

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s <grid> [options]\n"
      "       %s [axis options] [options]\n"
      "\n"
      "named grids: %s\n"
      "\n"
      "axis options (inline grids):\n"
      "  --schemes=A,B,...    scheme names (default: all seven)\n"
      "  --mesh=K,...         mesh sizes k (k x k meshes; default 16)\n"
      "  --d=N,...            sharers per transaction; 0 means d = k\n"
      "  --pattern=P,...      uniform | cluster | same-column | same-row\n"
      "  --gens=G,...         streaming generators (zipfian, read-mostly,\n"
      "                       write-heavy, migratory, producer-consumer,\n"
      "                       false-sharing); replaces the controlled-\n"
      "                       invalidation harness with StreamRunner, with\n"
      "                       --d as the accessor-group size\n"
      "  --gen-ops=N          stream ops per processor (default 200)\n"
      "  --gen-warmup=N       stream warmup accesses (default 2048)\n"
      "  --gen-blocks=N       stream shared-block pool size (default 512)\n"
      "  --concurrent=N,...   concurrent transactions; 0 = isolated (default)\n"
      "  --rounds=N           hot-spot rounds (default 3)\n"
      "  --reps=N             repetitions per point (default 8)\n"
      "  --seed=S             base seed for per-point SplitMix64 derivation\n"
      "\n"
      "options:\n"
      "  --jobs=N             worker threads (default: hardware concurrency)\n"
      "  --shards=N           cycle-kernel threads per point (row strips,\n"
      "                       clamped to mesh height; an explicit flag beats\n"
      "                       the MDW_SHARDS env var, default 1; results are\n"
      "                       bit-identical at any value).  Composes with\n"
      "                       --jobs: total threads ~ jobs * shards\n"
      "  --format=F           table output: plain (default) | csv | json\n"
      "  --points-json=PATH   write per-point results + merged metrics JSON\n"
      "  --metrics-json=PATH  write merged registry (+ heatmap) JSON\n"
      "  --heatmap            print the merged link heatmap(s) as ASCII\n"
      "  --no-progress        suppress the stderr progress line\n",
      argv0, argv0, sweep::named_grid_list().c_str());
}

[[noreturn]] void die(const char* argv0, const std::string& why) {
  std::fprintf(stderr, "%s: %s\n\n", argv0, why.c_str());
  usage(argv0);
  std::exit(2);
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t comma = s.find(',', start);
    out.push_back(s.substr(start, comma - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

std::vector<int> parse_int_list(const char* argv0, const std::string& flag,
                                const std::string& val) {
  std::vector<int> out;
  for (const std::string& tok : split_csv(val)) {
    char* end = nullptr;
    const long v = std::strtol(tok.c_str(), &end, 10);
    if (tok.empty() || end != tok.c_str() + tok.size()) {
      die(argv0, "bad integer '" + tok + "' in " + flag);
    }
    out.push_back(static_cast<int>(v));
  }
  return out;
}

struct CliOptions {
  sweep::NamedGrid job;  // the grid to run (named or assembled inline)
  int jobs = 0;
  int shards = 0;  // 0 = unset: MDW_SHARDS, then the sequential kernel
  std::string format = "plain";
  std::string points_json, metrics_json;
  bool heatmap = false;
  bool progress = true;
};

CliOptions parse_cli(int argc, char** argv) {
  CliOptions opt;
  sweep::SweepGrid& grid = opt.job.grid;
  opt.job.name = "inline";
  opt.job.description = "inline axis sweep";
  bool named = false, has_axes = false;

  auto flag_value = [](const std::string& a, const char* key,
                       std::string& out) {
    const std::string k = std::string(key) + "=";
    if (a.rfind(k, 0) != 0) return false;
    out = a.substr(k.size());
    return true;
  };

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    std::string v;
    if (a.rfind("--", 0) != 0) {
      const sweep::NamedGrid* g = sweep::named_grid(a);
      if (g == nullptr) {
        die(argv[0], "unknown grid '" + a + "' (have: " +
                         sweep::named_grid_list() + ")");
      }
      if (named || has_axes) {
        die(argv[0], "a named grid cannot be combined with another grid or "
                     "inline axis options");
      }
      opt.job = *g;
      named = true;
    } else if (flag_value(a, "--schemes", v)) {
      has_axes = true;
      grid.schemes.clear();
      for (const std::string& name : split_csv(v)) {
        core::Scheme s;
        if (!sweep::scheme_from_name(name, s)) {
          die(argv[0], "unknown scheme '" + name + "'");
        }
        grid.schemes.push_back(s);
      }
    } else if (flag_value(a, "--mesh", v)) {
      has_axes = true;
      grid.meshes = parse_int_list(argv[0], "--mesh", v);
    } else if (flag_value(a, "--d", v)) {
      has_axes = true;
      grid.sharers = parse_int_list(argv[0], "--d", v);
    } else if (flag_value(a, "--pattern", v)) {
      has_axes = true;
      grid.patterns.clear();
      for (const std::string& name : split_csv(v)) {
        workload::SharerPattern p;
        if (!sweep::pattern_from_name(name, p)) {
          die(argv[0], "unknown pattern '" + name + "'");
        }
        grid.patterns.push_back(p);
      }
    } else if (flag_value(a, "--gens", v)) {
      has_axes = true;
      grid.gens.clear();
      for (const std::string& name : split_csv(v)) {
        workload::GenKind g;
        if (!workload::gen_from_name(name, g)) {
          die(argv[0], "unknown generator '" + name + "'");
        }
        grid.gens.push_back(g);
      }
    } else if (flag_value(a, "--gen-ops", v)) {
      has_axes = true;
      grid.gen_ops_per_proc = std::strtoull(v.c_str(), nullptr, 10);
    } else if (flag_value(a, "--gen-warmup", v)) {
      has_axes = true;
      grid.gen_warmup_accesses = std::strtoull(v.c_str(), nullptr, 10);
    } else if (flag_value(a, "--gen-blocks", v)) {
      has_axes = true;
      grid.gen_blocks =
          static_cast<std::uint32_t>(std::strtoul(v.c_str(), nullptr, 10));
    } else if (flag_value(a, "--concurrent", v)) {
      has_axes = true;
      grid.concurrency = parse_int_list(argv[0], "--concurrent", v);
    } else if (flag_value(a, "--rounds", v)) {
      has_axes = true;
      grid.rounds = std::atoi(v.c_str());
    } else if (flag_value(a, "--reps", v)) {
      has_axes = true;
      grid.repetitions = std::atoi(v.c_str());
    } else if (flag_value(a, "--seed", v)) {
      has_axes = true;
      grid.base_seed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (flag_value(a, "--jobs", v)) {
      opt.jobs = std::atoi(v.c_str());
    } else if (flag_value(a, "--shards", v)) {
      opt.shards = std::atoi(v.c_str());
      if (opt.shards <= 0) die(argv[0], "--shards must be positive");
    } else if (flag_value(a, "--format", v)) {
      if (v != "plain" && v != "csv" && v != "json") {
        die(argv[0], "bad --format '" + v + "' (plain | csv | json)");
      }
      opt.format = v;
    } else if (flag_value(a, "--points-json", v)) {
      opt.points_json = v;
    } else if (flag_value(a, "--metrics-json", v)) {
      opt.metrics_json = v;
    } else if (a == "--heatmap") {
      opt.heatmap = true;
    } else if (a == "--no-progress") {
      opt.progress = false;
    } else if (a == "--help" || a == "-h") {
      usage(argv[0]);
      std::exit(0);
    } else {
      die(argv[0], "unknown option '" + a + "'");
    }
  }
  if (named && has_axes) {
    die(argv[0], "a named grid cannot be combined with inline axis options");
  }

  if (!named) {
    // Row axis: the axis that actually varies (gens > concurrency > mesh
    // > d).
    if (grid.gens.size() > 1) {
      opt.job.axis = sweep::RowAxis::Generator;
    } else if (grid.concurrency.size() > 1) {
      opt.job.axis = sweep::RowAxis::Concurrency;
    } else if (grid.meshes.size() > 1) {
      opt.job.axis = sweep::RowAxis::Mesh;
    } else {
      opt.job.axis = sweep::RowAxis::Sharers;
    }
    const bool stream = grid.gens.size() > 1 ||
                        grid.gens[0] != workload::GenKind::None;
    const bool hotspot = grid.concurrency.size() > 1 || grid.concurrency[0] > 0;
    if (stream && hotspot) {
      die(argv[0], "--gens and --concurrent > 0 are mutually exclusive "
                   "(stream points replay generators, not hot-spot rounds)");
    }
    if (stream) {
      opt.job.metrics = {
          {"steady inval latency (cycles)",
           +[](const sweep::PointResult& r) { return r.m.inval_latency; }, 1},
          {"steady accesses per kcycle",
           +[](const sweep::PointResult& r) { return r.accesses_per_kcycle; },
           1},
          {"steady inval txns per kcycle",
           +[](const sweep::PointResult& r) { return r.txns_per_kcycle; }, 1}};
    } else if (hotspot) {
      opt.job.metrics = {
          {"mean inval latency (cycles)",
           +[](const sweep::PointResult& r) { return r.m.inval_latency; }, 1},
          {"round makespan (cycles)",
           +[](const sweep::PointResult& r) { return r.makespan; }, 1}};
    } else {
      opt.job.metrics = {
          {"invalidation latency (cycles)",
           +[](const sweep::PointResult& r) { return r.m.inval_latency; }, 1},
          {"messages per transaction",
           +[](const sweep::PointResult& r) { return r.m.messages; }, 1},
          {"flit-hops per transaction",
           +[](const sweep::PointResult& r) { return r.m.traffic_flits; }, 1}};
    }
  }
  return opt;
}

} // namespace

int main(int argc, char** argv) {
  CliOptions opt = parse_cli(argc, argv);
  // The sharded cycle kernel is bit-identical at any shard count, so it can
  // be applied uniformly to every variant of any grid (named or inline).
  for (sweep::ParamsVariant& var : opt.job.grid.variants) {
    var.params.noc.shards = opt.shards;
  }
  const sweep::SweepGrid& grid = opt.job.grid;
  const std::vector<sweep::SweepPoint> points = grid.expand();

  sweep::RunnerOptions ro;
  ro.jobs = opt.jobs;
  ro.progress = opt.progress && isatty(fileno(stderr));
  const sweep::ThreadPoolRunner runner(ro);

  std::printf("sweep %s — %s\n%zu points, %d worker thread(s), "
              "%d repetitions per point\n\n",
              opt.job.name, opt.job.description, points.size(),
              runner.effective_jobs(), grid.repetitions);

  const sweep::SweepReport report = runner.run(points);
  if (!report.ok) {
    std::fprintf(stderr, "sweep failed: %s\n", report.error.c_str());
    return 1;
  }

  // A pivot table needs singleton non-row axes; fall back to JSON rows
  // for grids (multi-pattern, multi-variant, two varying axes) that do not
  // pivot cleanly.
  const bool pivotable =
      grid.variants.size() == 1 && grid.patterns.size() == 1 &&
      (opt.job.axis == sweep::RowAxis::Generator || grid.gens.size() == 1) &&
      (opt.job.axis == sweep::RowAxis::Concurrency ||
       grid.concurrency.size() == 1) &&
      (opt.job.axis == sweep::RowAxis::Mesh || grid.meshes.size() == 1) &&
      (opt.job.axis == sweep::RowAxis::Sharers || grid.sharers.size() == 1);
  if (pivotable) {
    for (const sweep::MetricColumn& mc : opt.job.metrics) {
      std::printf("--- %s ---\n", mc.title);
      const analysis::Table t =
          sweep::pivot_by_scheme(grid, points, report.results, opt.job.axis,
                                 mc.value, mc.precision);
      if (opt.format == "csv") {
        t.print_csv(std::cout);
      } else if (opt.format == "json") {
        t.print_json(std::cout);
      } else {
        t.print(std::cout);
      }
      std::printf("\n");
    }
  } else {
    std::printf("--- per-point results (grid does not pivot to one table) "
                "---\n");
    sweep::write_points_json(std::cout, points, report.results);
    std::printf("\n\n");
  }

  if (opt.heatmap) {
    for (const auto& [dims, hm] : report.heatmaps) {
      std::printf("--- link heatmap %dx%d ---\n", dims.first, dims.second);
      hm.render_ascii(std::cout);
    }
  }

  std::printf("wall time %.2fs (%zu points, %d thread(s))\n",
              report.wall_seconds, points.size(), runner.effective_jobs());

  if (!opt.points_json.empty()) {
    if (sweep::write_sweep_json_file(opt.points_json, points, report)) {
      std::printf("wrote per-point JSON to %s\n", opt.points_json.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s\n", opt.points_json.c_str());
      return 1;
    }
  }
  if (!opt.metrics_json.empty()) {
    if (obs::write_metrics_json_file(opt.metrics_json, report.metrics,
                                     report.sole_heatmap())) {
      std::printf("wrote metrics JSON to %s\n", opt.metrics_json.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s\n", opt.metrics_json.c_str());
      return 1;
    }
  }
  return 0;
}
