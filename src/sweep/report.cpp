#include "sweep/report.h"

#include <cassert>
#include <fstream>

namespace mdw::sweep {

analysis::Table pivot_by_scheme(
    const SweepGrid& grid, const std::vector<SweepPoint>& points,
    const std::vector<PointResult>& results, RowAxis axis,
    const std::function<double(const PointResult&)>& metric, int precision) {
  assert(points.size() == results.size());
  assert(grid.variants.size() == 1 && grid.patterns.size() == 1);
  assert(axis == RowAxis::Generator || grid.gens.size() == 1);
  assert(axis == RowAxis::Concurrency || grid.concurrency.size() == 1);
  assert(axis == RowAxis::Mesh || grid.meshes.size() == 1);
  assert(axis == RowAxis::Sharers || grid.sharers.size() == 1);

  std::vector<std::string> headers;
  switch (axis) {
    case RowAxis::Sharers: headers = {"d"}; break;
    case RowAxis::Mesh: headers = {"mesh", "d"}; break;
    case RowAxis::Concurrency: headers = {"concurrent"}; break;
    case RowAxis::Generator: headers = {"generator"}; break;
  }
  for (core::Scheme s : grid.schemes) {
    headers.emplace_back(core::scheme_name(s));
  }
  analysis::Table t(std::move(headers));

  const std::size_t rows = axis == RowAxis::Sharers ? grid.sharers.size()
                           : axis == RowAxis::Mesh  ? grid.meshes.size()
                           : axis == RowAxis::Concurrency
                               ? grid.concurrency.size()
                               : grid.gens.size();
  for (std::size_t r = 0; r < rows; ++r) {
    const std::size_t ig = axis == RowAxis::Generator ? r : 0;
    const std::size_t ic = axis == RowAxis::Concurrency ? r : 0;
    const std::size_t im = axis == RowAxis::Mesh ? r : 0;
    const std::size_t is = axis == RowAxis::Sharers ? r : 0;
    const SweepPoint& first =
        points[grid.flat_index(ig, 0, 0, ic, im, is, 0)];
    std::vector<std::string> row;
    switch (axis) {
      case RowAxis::Sharers: row = {std::to_string(first.d)}; break;
      case RowAxis::Mesh:
        row = {std::to_string(first.mesh) + "x" + std::to_string(first.mesh),
               std::to_string(first.d)};
        break;
      case RowAxis::Concurrency:
        row = {std::to_string(first.concurrent)};
        break;
      case RowAxis::Generator:
        row = {workload::gen_name(first.gen)};
        break;
    }
    for (std::size_t ix = 0; ix < grid.schemes.size(); ++ix) {
      const std::size_t i = grid.flat_index(ig, 0, 0, ic, im, is, ix);
      row.push_back(results[i].ran
                        ? analysis::Table::num(metric(results[i]), precision)
                        : "-");
    }
    t.add_row(std::move(row));
  }
  return t;
}

void write_points_json(std::ostream& os, const std::vector<SweepPoint>& points,
                       const std::vector<PointResult>& results) {
  assert(points.size() == results.size());
  os << "[";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const SweepPoint& pt = points[i];
    const PointResult& r = results[i];
    os << (i ? ",\n " : "\n ");
    os << "{\"index\": " << pt.index << ", \"scheme\": \""
       << core::scheme_name(pt.scheme) << "\", \"mesh\": " << pt.mesh
       << ", \"d\": " << pt.d << ", \"pattern\": \""
       << workload::pattern_name(pt.pattern)
       << "\", \"concurrent\": " << pt.concurrent
       << ", \"repetitions\": " << pt.repetitions << ", \"seed\": " << pt.seed;
    if (pt.gen != workload::GenKind::None) {
      os << ", \"gen\": \"" << workload::gen_name(pt.gen)
         << "\", \"gen_ops\": " << pt.gen_ops
         << ", \"gen_warmup\": " << pt.gen_warmup
         << ", \"gen_blocks\": " << pt.gen_blocks;
    }
    os << ", \"ran\": " << (r.ran ? "true" : "false");
    if (r.ran) {
      os << ", \"completed\": " << (r.completed ? "true" : "false")
         << ", \"inval_latency\": " << r.m.inval_latency
         << ", \"inval_latency_p50\": " << r.m.inval_latency_p50
         << ", \"inval_latency_p90\": " << r.m.inval_latency_p90
         << ", \"inval_latency_p99\": " << r.m.inval_latency_p99
         << ", \"write_latency\": " << r.m.write_latency
         << ", \"messages\": " << r.m.messages
         << ", \"traffic_flits\": " << r.m.traffic_flits
         << ", \"occupancy\": " << r.m.occupancy
         << ", \"request_worms\": " << r.m.request_worms
         << ", \"ack_messages\": " << r.m.ack_messages
         << ", \"deferred_gathers\": " << r.m.deferred_gathers
         << ", \"makespan\": " << r.makespan
         << ", \"bank_blocked_cycles\": " << r.bank_blocked_cycles;
      if (pt.gen != workload::GenKind::None) {
        os << ", \"accesses_per_kcycle\": " << r.accesses_per_kcycle
           << ", \"txns_per_kcycle\": " << r.txns_per_kcycle
           << ", \"steady_accesses\": " << r.steady_accesses
           << ", \"home_occupancy_peak\": " << r.home_occupancy_peak
           << ", \"svc_pipeline_peak\": " << r.svc_pipeline_peak
           << ", \"svc_queue_peak\": " << r.svc_queue_peak
           << ", \"svc_queue_wait\": " << r.svc_queue_wait
           << ", \"svc_coalesced_txns\": " << r.svc_coalesced_txns;
      }
    }
    os << "}";
  }
  os << "\n]";
}

bool write_sweep_json_file(const std::string& path,
                           const std::vector<SweepPoint>& points,
                           const SweepReport& report) {
  std::ofstream os(path);
  if (!os) return false;
  os << "{\n\"points\": ";
  write_points_json(os, points, report.results);
  os << ",\n\"metrics\": ";
  report.metrics.write_json(os);
  os << ",\n\"links\": {";
  bool first = true;
  for (const auto& [dims, hm] : report.heatmaps) {
    os << (first ? "\n" : ",\n") << "  \"" << dims.first << "x" << dims.second
       << "\": ";
    hm.write_json(os);
    first = false;
  }
  os << (first ? "" : "\n") << "}\n}\n";
  return static_cast<bool>(os);
}

} // namespace mdw::sweep
