// Declarative experiment grids for the paper's evaluation sweeps.
//
// A SweepGrid names the axes of a parameter study — grouping schemes, mesh
// sizes, sharer counts, invalidation patterns, concurrency levels, and
// whole-SystemParams variants — and expands their cross product into a flat
// list of SweepPoints.  Every point is an independent simulation: it carries
// a fully resolved dsm::SystemParams and its own seed, derived from the
// grid's base_seed and the point's index (SplitMix64), NEVER from wall-clock
// time or execution order.  Results are therefore identical whether points
// run serially, across 8 threads, or shuffled — the property the
// ThreadPoolRunner and tests/test_sweep.cpp lean on.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/scheme.h"
#include "dsm/params.h"
#include "workload/generators.h"
#include "workload/synthetic.h"

namespace mdw::sweep {

/// SplitMix64 over (base_seed, index): the default per-point seed rule.
/// Distinct indices give uncorrelated seeds; the result depends only on the
/// two inputs, so per-point streams are independent of worker count and
/// execution order.  The same rule (sim::split_seed) derives per-processor
/// streams inside the workload generators.
[[nodiscard]] constexpr std::uint64_t derive_point_seed(std::uint64_t base_seed,
                                                        std::uint64_t index) {
  return sim::split_seed(base_seed, index);
}

/// A named dsm::SystemParams override (e.g. {"adaptive", params-with-
/// adaptive_unicast}).  The variant's mesh/scheme fields are overwritten by
/// the point's own axes during expansion.
struct ParamsVariant {
  std::string name;
  dsm::SystemParams params{};
};

/// One fully resolved grid cell.  The i_* members are the point's indices
/// into the owning grid's axis vectors (scheme innermost), which is how the
/// pivot helpers find a point without searching.
struct SweepPoint {
  std::size_t index = 0;

  core::Scheme scheme = core::Scheme::UiUa;
  int mesh = 16;  // k (meshes are k x k)
  int d = 8;      // resolved sharer count (a <=0 axis entry resolves to k)
  workload::SharerPattern pattern = workload::SharerPattern::Uniform;
  int concurrent = 0;  // 0: isolated transactions; >0: hot-spot mode
  int rounds = 3;      // hot-spot rounds (ignored when concurrent == 0)
  int repetitions = 8;
  std::uint64_t seed = 0;
  dsm::SystemParams params{};  // variant base with mesh/scheme applied

  /// Streaming-workload mode (gen != None): the point replays a synthetic
  /// generator stream via StreamRunner instead of the controlled
  /// invalidation harnesses.  `d` becomes the accessor-group size and
  /// `pattern` the group placement geometry.
  workload::GenKind gen = workload::GenKind::None;
  std::uint64_t gen_ops = 0;     // ops per processor
  std::uint64_t gen_warmup = 0;  // warmup accesses before steady state
  std::uint32_t gen_blocks = 0;  // shared-block pool size

  std::size_t i_gen = 0, i_variant = 0, i_pattern = 0, i_concurrency = 0,
              i_mesh = 0, i_sharers = 0, i_scheme = 0;
};

/// Axis declaration.  expand() walks the cross product with the generator
/// axis outermost and scheme innermost:
///   gen > variant > pattern > concurrency > mesh > sharers > scheme
/// so a table row (one d or mesh value) is a contiguous run of scheme
/// columns, matching the bench table layout.  The default gens axis is the
/// singleton {None} (controlled-invalidation mode), which keeps the legacy
/// 6-axis flat_index valid for every pre-existing grid.
struct SweepGrid {
  std::vector<core::Scheme> schemes{std::begin(core::kAllSchemes),
                                    std::end(core::kAllSchemes)};
  std::vector<int> meshes{16};
  std::vector<int> sharers{8};  // entries <= 0 mean "d = k" (proportional)
  std::vector<workload::SharerPattern> patterns{
      workload::SharerPattern::Uniform};
  std::vector<int> concurrency{0};  // 0 = single-transaction mode
  std::vector<ParamsVariant> variants{ParamsVariant{}};
  std::vector<workload::GenKind> gens{workload::GenKind::None};
  int rounds = 3;  // hot-spot rounds for concurrent > 0 points
  int repetitions = 8;
  std::uint64_t base_seed = 1;
  // Streaming-point knobs (gen != None), copied onto every stream point.
  std::uint64_t gen_ops_per_proc = 200;
  std::uint64_t gen_warmup_accesses = 2048;
  std::uint32_t gen_blocks = 512;

  /// Optional seed rule override, evaluated on the otherwise-complete point
  /// (seed not yet set).  Must depend only on the point's coordinates.  The
  /// migrated benches use this to pin their pre-migration seed formulas;
  /// nullptr selects derive_point_seed(base_seed, index).
  std::uint64_t (*seed_fn)(const SweepGrid&, const SweepPoint&) = nullptr;

  [[nodiscard]] std::size_t num_points() const {
    return gens.size() * variants.size() * patterns.size() *
           concurrency.size() * meshes.size() * sharers.size() *
           schemes.size();
  }

  /// Flat index of a cell from its axis indices (expansion nest order).
  [[nodiscard]] std::size_t flat_index(std::size_t i_gen,
                                       std::size_t i_variant,
                                       std::size_t i_pattern,
                                       std::size_t i_concurrency,
                                       std::size_t i_mesh,
                                       std::size_t i_sharers,
                                       std::size_t i_scheme) const {
    return (((((i_gen * variants.size() + i_variant) * patterns.size() +
               i_pattern) *
                  concurrency.size() +
              i_concurrency) *
                 meshes.size() +
             i_mesh) *
                sharers.size() +
            i_sharers) *
               schemes.size() +
           i_scheme;
  }

  /// Legacy 6-axis form: valid whenever the gens axis is singleton (every
  /// controlled-invalidation grid), where the generator axis contributes
  /// nothing to the index because it is outermost.
  [[nodiscard]] std::size_t flat_index(std::size_t i_variant,
                                       std::size_t i_pattern,
                                       std::size_t i_concurrency,
                                       std::size_t i_mesh,
                                       std::size_t i_sharers,
                                       std::size_t i_scheme) const {
    return flat_index(0, i_variant, i_pattern, i_concurrency, i_mesh,
                      i_sharers, i_scheme);
  }

  /// Cross-product expansion; out[i].index == i.
  [[nodiscard]] std::vector<SweepPoint> expand() const;
};

/// Scheme / pattern names as accepted by the CLI axis specs (the same
/// spellings scheme_name / pattern_name print).  Return false on no match.
bool scheme_from_name(const std::string& name, core::Scheme& out);
bool pattern_from_name(const std::string& name,
                       workload::SharerPattern& out);

} // namespace mdw::sweep
