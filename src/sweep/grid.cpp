#include "sweep/grid.h"

namespace mdw::sweep {

std::vector<SweepPoint> SweepGrid::expand() const {
  std::vector<SweepPoint> out;
  out.reserve(num_points());
  for (std::size_t ig = 0; ig < gens.size(); ++ig) {
    for (std::size_t iv = 0; iv < variants.size(); ++iv) {
      for (std::size_t ip = 0; ip < patterns.size(); ++ip) {
        for (std::size_t ic = 0; ic < concurrency.size(); ++ic) {
          for (std::size_t im = 0; im < meshes.size(); ++im) {
            for (std::size_t is = 0; is < sharers.size(); ++is) {
              for (std::size_t ix = 0; ix < schemes.size(); ++ix) {
                SweepPoint pt;
                pt.index = out.size();
                pt.scheme = schemes[ix];
                pt.mesh = meshes[im];
                pt.d = sharers[is] <= 0 ? meshes[im] : sharers[is];
                pt.pattern = patterns[ip];
                pt.concurrent = concurrency[ic];
                pt.rounds = rounds;
                pt.repetitions = repetitions;
                pt.params = variants[iv].params;
                pt.params.mesh_w = pt.params.mesh_h = pt.mesh;
                pt.params.scheme = pt.scheme;
                pt.gen = gens[ig];
                if (pt.gen != workload::GenKind::None) {
                  pt.gen_ops = gen_ops_per_proc;
                  pt.gen_warmup = gen_warmup_accesses;
                  pt.gen_blocks = gen_blocks;
                }
                pt.i_gen = ig;
                pt.i_variant = iv;
                pt.i_pattern = ip;
                pt.i_concurrency = ic;
                pt.i_mesh = im;
                pt.i_sharers = is;
                pt.i_scheme = ix;
                pt.seed = seed_fn ? seed_fn(*this, pt)
                                  : derive_point_seed(base_seed, pt.index);
                out.push_back(pt);
              }
            }
          }
        }
      }
    }
  }
  return out;
}

bool scheme_from_name(const std::string& name, core::Scheme& out) {
  for (core::Scheme s : core::kAllSchemes) {
    if (name == core::scheme_name(s)) {
      out = s;
      return true;
    }
  }
  return false;
}

bool pattern_from_name(const std::string& name, workload::SharerPattern& out) {
  for (auto p : {workload::SharerPattern::Uniform,
                 workload::SharerPattern::Cluster,
                 workload::SharerPattern::SameColumn,
                 workload::SharerPattern::SameRow}) {
    if (name == workload::pattern_name(p)) {
      out = p;
      return true;
    }
  }
  return false;
}

} // namespace mdw::sweep
