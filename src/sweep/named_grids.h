// The paper's evaluation grids by name (e3, e4, e5, e8, e10s, e11s),
// shared by the mdw_sweep CLI and the migrated bench binaries.  Each
// migrated grid pins the exact axes AND the pre-migration per-point seed
// formula of its bench, so the tables it produces are bit-identical to the
// historical serial output (EXPERIMENTS.md) for any worker count.  e10s is
// the streaming-workload grid (synthetic generator x scheme, steady-state
// windowed metrics); e11s is the service-layer occupancy-vs-load grid
// (client outstanding ops x scheme over the pipelined, coalescing home).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "sweep/report.h"

namespace mdw::sweep {

/// One pivot table to print for a grid: a metric over the point results.
struct MetricColumn {
  const char* title;
  double (*value)(const PointResult&);
  int precision = 1;
};

struct NamedGrid {
  const char* name;
  const char* description;  // bench banner text
  SweepGrid grid;
  RowAxis axis;
  std::vector<MetricColumn> metrics;
};

/// Look up a named grid; nullptr when unknown.
[[nodiscard]] const NamedGrid* named_grid(std::string_view name);

/// "e3, e4, e5, e8, e10s, e11s" (for usage messages).
[[nodiscard]] std::string named_grid_list();

} // namespace mdw::sweep
