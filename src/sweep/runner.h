// Parallel sweep execution: a std::thread pool that runs independent
// SweepPoints and folds per-point observability into one report.
//
// Determinism contract (DESIGN.md section 10): a point's simulation touches
// only state created for that point — its own dsm::Machine, sim::Rng (seeded
// from the point, never the clock), MetricsRegistry, and LinkHeatmap — so
// per-point results are bit-identical for any worker count.  The merged
// registry and heatmaps are folded in point-index order at join, after all
// workers exit, so they too are scheduling-independent.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "analysis/experiment.h"
#include "obs/heatmap.h"
#include "obs/metrics.h"
#include "sweep/grid.h"

namespace mdw::sweep {

/// Outcome of one point.  Single-transaction points (concurrent == 0) fill
/// `m` from analysis::measure_invalidations; hot-spot points map the
/// HotspotMeasurement onto the shared fields and the hotspot-only extras;
/// streaming points (gen != None) replay a synthetic generator through
/// StreamRunner and fill the latency fields from the steady-state window
/// plus the stream throughput extras.
struct PointResult {
  bool ran = false;        // false: skipped (cancelled before it started)
  bool completed = true;   // false: a hot-spot round / stream ran out of budget
  analysis::InvalMeasurement m{};
  // Hot-spot extras (zero in single-transaction mode).
  double makespan = 0;
  double bank_blocked_cycles = 0;
  // Streaming extras (zero outside gen != None points).
  double accesses_per_kcycle = 0;  // steady-state accesses per 1000 cycles
  double txns_per_kcycle = 0;      // steady-state inval txns per 1000 cycles
  std::uint64_t steady_accesses = 0;
  // Service-layer extras (streaming points; the e11s occupancy-vs-load
  // columns).  All zero when the run never queued or merged anything.
  double home_occupancy_peak = 0;  // busiest node's DC+OC busy cycles
  double svc_pipeline_peak = 0;    // max concurrent inval txns at one home
  double svc_queue_peak = 0;       // deepest per-home pipeline queue
  double svc_queue_wait = 0;       // total cycles invals waited for a slot
  double svc_coalesced_txns = 0;   // member txns that rode merged worm waves
};

/// Everything a sweep produces: index-aligned per-point results plus the
/// observability merged across points (registry counters/gauges add,
/// histograms merge bucket-wise, heatmaps merge per mesh size).
struct SweepReport {
  bool ok = true;
  std::string error;  // first failure, when !ok
  std::vector<PointResult> results;  // results[i] is for points[i]
  obs::MetricsRegistry metrics;
  std::map<std::pair<int, int>, obs::LinkHeatmap> heatmaps;  // by (w, h)
  double wall_seconds = 0;

  /// The single merged heatmap when every point shared one mesh size,
  /// nullptr when the grid mixed sizes (callers that want one map per size
  /// read `heatmaps` directly).
  [[nodiscard]] const obs::LinkHeatmap* sole_heatmap() const {
    return heatmaps.size() == 1 ? &heatmaps.begin()->second : nullptr;
  }
};

struct RunnerOptions {
  int jobs = 0;          // worker threads; <= 0 selects hardware_concurrency
  bool progress = false; // "\rsweep: done/total ... eta" lines on stderr
};

/// Execute a point with the default harnesses.  `registry` and `heatmap`
/// are the point-private collectors the runner later merges.
[[nodiscard]] PointResult run_point(const SweepPoint& pt,
                                    obs::MetricsRegistry& registry,
                                    obs::LinkHeatmap& heatmap);

class ThreadPoolRunner {
public:
  using PointFn = std::function<PointResult(
      const SweepPoint&, obs::MetricsRegistry&, obs::LinkHeatmap&)>;

  explicit ThreadPoolRunner(RunnerOptions opt = {}) : opt_(opt) {}

  /// Run every point (default harnesses) and merge observability.
  [[nodiscard]] SweepReport run(const std::vector<SweepPoint>& points) const;

  /// Same, with a custom per-point function (tests inject failures here).
  /// An exception thrown by `fn` cancels the sweep: workers finish their
  /// current point, unstarted points stay `ran == false`, and the report
  /// carries ok == false plus the first error's message.
  [[nodiscard]] SweepReport run(const std::vector<SweepPoint>& points,
                                const PointFn& fn) const;

  /// The worker count `run` will use (jobs, or hardware_concurrency).
  [[nodiscard]] int effective_jobs() const;

private:
  RunnerOptions opt_;
};

} // namespace mdw::sweep
