#include "sweep/named_grids.h"

#include <vector>

namespace mdw::sweep {

namespace {

double latency(const PointResult& r) { return r.m.inval_latency; }
double messages(const PointResult& r) { return r.m.messages; }
double traffic(const PointResult& r) { return r.m.traffic_flits; }
double makespan(const PointResult& r) { return r.makespan; }
double acc_rate(const PointResult& r) { return r.accesses_per_kcycle; }
double txn_rate(const PointResult& r) { return r.txns_per_kcycle; }
double occ_peak(const PointResult& r) { return r.home_occupancy_peak; }
double pipe_peak(const PointResult& r) { return r.svc_pipeline_peak; }
double coalesced(const PointResult& r) { return r.svc_coalesced_txns; }

std::vector<NamedGrid> build_grids() {
  std::vector<NamedGrid> out;

  {
    NamedGrid g;
    g.name = "e3";
    g.description = "invalidation latency vs sharers (16x16 mesh, uniform "
                    "pattern, mean of 8 transactions)";
    g.grid.meshes = {16};
    g.grid.sharers = {2, 4, 8, 16, 32, 64};
    g.grid.repetitions = 8;
    g.grid.seed_fn = [](const SweepGrid&, const SweepPoint& pt) {
      return 1000 + static_cast<std::uint64_t>(pt.d);
    };
    g.axis = RowAxis::Sharers;
    g.metrics = {{"invalidation latency (cycles)", latency, 1}};
    out.push_back(std::move(g));
  }
  {
    NamedGrid g;
    g.name = "e4";
    g.description = "invalidation latency vs mesh size (d = k sharers, "
                    "uniform pattern, mean of 8 transactions)";
    g.grid.meshes = {4, 8, 12, 16};
    g.grid.sharers = {0};  // proportional: d = k
    g.grid.repetitions = 8;
    g.grid.seed_fn = [](const SweepGrid&, const SweepPoint& pt) {
      return 77 + static_cast<std::uint64_t>(pt.mesh);
    };
    g.axis = RowAxis::Mesh;
    g.metrics = {{"invalidation latency (cycles)", latency, 1}};
    out.push_back(std::move(g));
  }
  {
    NamedGrid g;
    g.name = "e5";
    g.description = "messages and flit-hop traffic per transaction "
                    "(16x16 mesh, uniform pattern)";
    g.grid.meshes = {16};
    g.grid.sharers = {2, 4, 8, 16, 32, 64};
    g.grid.repetitions = 8;
    g.grid.seed_fn = [](const SweepGrid&, const SweepPoint& pt) {
      return 500 + static_cast<std::uint64_t>(pt.d);
    };
    g.axis = RowAxis::Sharers;
    g.metrics = {{"messages per transaction", messages, 1},
                 {"flit-hops per transaction", traffic, 1}};
    out.push_back(std::move(g));
  }
  {
    NamedGrid g;
    g.name = "e8";
    g.description = "concurrent invalidation transactions (16x16 mesh, "
                    "d=16 per transaction, 3 rounds)";
    g.grid.schemes = {core::Scheme::UiUa, core::Scheme::EcCmUa,
                      core::Scheme::EcCmCg, core::Scheme::EcCmHg,
                      core::Scheme::WfScSg};
    g.grid.meshes = {16};
    g.grid.sharers = {16};
    g.grid.concurrency = {1, 2, 4, 8, 16};
    g.grid.rounds = 3;
    g.grid.seed_fn = [](const SweepGrid&, const SweepPoint& pt) {
      return 11 + static_cast<std::uint64_t>(pt.concurrent);
    };
    g.axis = RowAxis::Concurrency;
    g.metrics = {{"mean inval latency (cycles)", latency, 1},
                 {"round makespan (cycles)", makespan, 1}};
    out.push_back(std::move(g));
  }
  {
    NamedGrid g;
    g.name = "e10s";
    g.description = "steady-state streaming workloads: synthetic generator x "
                    "scheme (16x16 mesh, group 8, 200 ops/proc after a "
                    "2048-access warmup)";
    g.grid.schemes = {core::Scheme::UiUa, core::Scheme::EcCmUa,
                      core::Scheme::EcCmCg, core::Scheme::EcCmHg,
                      core::Scheme::WfScSg};
    g.grid.meshes = {16};
    g.grid.sharers = {8};  // accessor-group size per block
    g.grid.gens = {std::begin(workload::kAllGenKinds),
                   std::end(workload::kAllGenKinds)};
    g.grid.gen_ops_per_proc = 200;
    g.grid.gen_warmup_accesses = 2048;
    g.grid.gen_blocks = 512;
    g.axis = RowAxis::Generator;
    g.metrics = {{"steady inval latency (cycles)", latency, 1},
                 {"steady accesses per kcycle", acc_rate, 1},
                 {"steady inval txns per kcycle", txn_rate, 1}};
    out.push_back(std::move(g));
  }
  {
    NamedGrid g;
    g.name = "e11s";
    g.description = "service-layer occupancy vs offered load: client "
                    "outstanding ops x scheme (16x16 mesh, write-heavy "
                    "stream, home pipeline depth 8, 32-cycle coalescing "
                    "window, 400 ops/proc after a 2048-access warmup)";
    g.grid.schemes = {core::Scheme::UiUa, core::Scheme::EcCmUa,
                      core::Scheme::EcCmCg, core::Scheme::EcCmHg,
                      core::Scheme::WfScSg};
    g.grid.meshes = {16};
    g.grid.sharers = {8};  // accessor-group size per block
    // For streaming points the concurrency axis is the client load knob:
    // ops each processor keeps in flight through its svc::Session.
    g.grid.concurrency = {1, 2, 4, 8};
    ParamsVariant svc;
    svc.name = "svc-d8-w32";
    svc.params.svc.pipeline_depth = 8;
    svc.params.svc.coalesce_window = 32;
    g.grid.variants = {svc};
    g.grid.gens = {workload::GenKind::WriteHeavy};
    g.grid.gen_ops_per_proc = 400;
    g.grid.gen_warmup_accesses = 2048;
    g.grid.gen_blocks = 512;
    g.axis = RowAxis::Concurrency;
    g.metrics = {{"steady accesses per kcycle", acc_rate, 1},
                 {"steady inval latency (cycles)", latency, 1},
                 {"peak home occupancy (cycles)", occ_peak, 0},
                 {"peak inval pipeline depth", pipe_peak, 0},
                 {"coalesced member txns", coalesced, 0}};
    out.push_back(std::move(g));
  }
  return out;
}

const std::vector<NamedGrid>& grids() {
  static const std::vector<NamedGrid> g = build_grids();
  return g;
}

} // namespace

const NamedGrid* named_grid(std::string_view name) {
  for (const NamedGrid& g : grids()) {
    if (name == g.name) return &g;
  }
  return nullptr;
}

std::string named_grid_list() {
  std::string out;
  for (const NamedGrid& g : grids()) {
    if (!out.empty()) out += ", ";
    out += g.name;
  }
  return out;
}

} // namespace mdw::sweep
