// Turning a sweep's point results into the bench tables and machine-
// readable JSON.
#pragma once

#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "analysis/table.h"
#include "sweep/grid.h"
#include "sweep/runner.h"

namespace mdw::sweep {

/// Which grid axis supplies the table rows; schemes are always the columns.
/// Mesh rows carry the paper's extra "d" column ("16x16", "16", ...).
/// Generator rows label streaming grids (one row per GenKind).
enum class RowAxis { Sharers, Mesh, Concurrency, Generator };

/// Pivot a report into the classic bench table: one row per axis value, one
/// column per scheme, cells formatted with analysis::Table::num.  Every
/// non-row axis other than schemes must be singleton (asserted).
[[nodiscard]] analysis::Table pivot_by_scheme(
    const SweepGrid& grid, const std::vector<SweepPoint>& points,
    const std::vector<PointResult>& results, RowAxis axis,
    const std::function<double(const PointResult&)>& metric,
    int precision = 1);

/// Per-point JSON array: coordinates + every measurement field, one object
/// per executed point (skipped points are emitted with "ran": false only).
void write_points_json(std::ostream& os, const std::vector<SweepPoint>& points,
                       const std::vector<PointResult>& results);

/// One self-contained dump: {"points": [...], "metrics": {...},
/// "links": {"WxH": [...], ...}}.  Returns false when the file cannot be
/// opened or written.
bool write_sweep_json_file(const std::string& path,
                           const std::vector<SweepPoint>& points,
                           const SweepReport& report);

} // namespace mdw::sweep
