// Unit tests for the simulation kernel: event queue ordering, engine
// progress/quiescence semantics, RNG determinism, statistics accumulators.
#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.h"
#include "sim/event_queue.h"
#include "sim/rng.h"
#include "sim/stats.h"

namespace mdw::sim {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(10, [&] { order.push_back(10); });
  q.schedule_at(5, [&] { order.push_back(5); });
  q.schedule_at(7, [&] { order.push_back(7); });
  q.run_due(20);
  EXPECT_EQ(order, (std::vector<int>{5, 7, 10}));
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) q.schedule_at(3, [&, i] { order.push_back(i); });
  q.run_due(3);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, CallbackMaySchedule) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(1, [&] {
    ++fired;
    q.schedule_at(1, [&] { ++fired; });  // same-time event from a callback
    q.schedule_at(9, [&] { ++fired; });
  });
  q.run_due(5);
  EXPECT_EQ(fired, 2);
  q.run_due(9);
  EXPECT_EQ(fired, 3);
}

TEST(EventQueue, DoesNotRunFutureEvents) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(100, [&] { ++fired; });
  q.run_due(99);
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(q.next_time(), 100u);
}

TEST(Engine, SchedulesAndAdvances) {
  Engine e;
  Cycle fired_at = 0;
  e.schedule_after(25, [&] { fired_at = e.now(); });
  EXPECT_TRUE(e.run_to_quiescence(1000));
  EXPECT_EQ(fired_at, 25u);
}

TEST(Engine, FastForwardsIdleGaps) {
  Engine e;
  int count = 0;
  e.schedule_at(1'000'000, [&] { ++count; });
  // Must finish instantly despite the distant event.
  EXPECT_TRUE(e.run_to_quiescence(2'000'000));
  EXPECT_EQ(count, 1);
  EXPECT_GE(e.now(), 1'000'000u);
}

TEST(Engine, RunUntilPredicate) {
  Engine e;
  bool flag = false;
  e.schedule_at(50, [&] { flag = true; });
  EXPECT_TRUE(e.run_until([&] { return flag; }, 10'000));
  EXPECT_LE(e.now(), 60u);
}

TEST(Engine, RunUntilTimesOut) {
  Engine e;
  EXPECT_FALSE(e.run_until([] { return false; }, 100));
}

TEST(Engine, ChainedEventsKeepRelativeOrder) {
  Engine e;
  std::vector<int> seq;
  e.schedule_at(2, [&] {
    seq.push_back(1);
    e.schedule_after(3, [&] { seq.push_back(3); });
  });
  e.schedule_at(4, [&] { seq.push_back(2); });
  EXPECT_TRUE(e.run_to_quiescence(100));
  EXPECT_EQ(seq, (std::vector<int>{1, 2, 3}));
}

class CountingTicker : public Tickable {
public:
  int ticks = 0;
  int active_for = 0;
  bool tick(Cycle) override {
    ++ticks;
    return ticks <= active_for;
  }
};

TEST(Engine, TickablesRunWhileActive) {
  Engine e;
  CountingTicker t;
  t.active_for = 10;
  e.register_tickable(&t);
  EXPECT_TRUE(e.run_to_quiescence(1000));
  EXPECT_GE(t.ticks, 10);
}

TEST(Engine, EventScheduledAtCurrentCycleFiresBeforeJump) {
  // An event due at exactly now() must run in the current cycle, not be
  // skipped over by the idle fast-forward to a later event.
  Engine e;
  e.run_for(10);
  ASSERT_EQ(e.now(), 10u);
  bool flag = false;
  bool far = false;
  e.schedule_at(e.now(), [&] { flag = true; });
  e.schedule_at(1'000'000, [&] { far = true; });
  EXPECT_TRUE(e.run_until([&] { return flag; }, 50));
  EXPECT_EQ(e.now(), 11u); // fired in cycle 10; no jump toward the far event
  EXPECT_FALSE(far);
}

TEST(Engine, IdleJumpLandingExactlyOnDeadlineStopsFirst) {
  // The fast-forward may land exactly on the cycle budget's boundary; the
  // run must stop there with the event still pending, and a fresh budget
  // must then pick the event up at the cycle it was due.
  Engine e;
  bool fired = false;
  e.schedule_at(100, [&] { fired = true; });
  EXPECT_FALSE(e.run_to_quiescence(100));
  EXPECT_EQ(e.now(), 100u);
  EXPECT_FALSE(fired);
  EXPECT_TRUE(e.run_to_quiescence(10));
  EXPECT_TRUE(fired);
  EXPECT_GE(e.now(), 101u);
}

TEST(Engine, PredicateFlippedInsideSkippedGapIsSeen) {
  // run_until jumps over the idle gap, but only as far as the event that
  // flips the predicate: the flip is observed the cycle after it fires,
  // not at the run limit.
  Engine e;
  bool flag = false;
  e.schedule_at(500, [&] { flag = true; });
  EXPECT_TRUE(e.run_until([&] { return flag; }, 10'000));
  EXPECT_EQ(e.now(), 501u);
}

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, BoundedValuesInRange) {
  Rng r(7);
  for (int i = 0; i < 10'000; ++i) EXPECT_LT(r.next_below(17), 17u);
}

TEST(Rng, BoundedValuesCoverRange) {
  Rng r(7);
  std::vector<int> seen(8, 0);
  for (int i = 0; i < 8'000; ++i) ++seen[r.next_below(8)];
  for (int c : seen) EXPECT_GT(c, 800);  // roughly uniform
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(3);
  for (int i = 0; i < 10'000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, GeometricMeanApproximatelyCorrect) {
  Rng r(11);
  double sum = 0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(r.next_geometric(8.0));
  EXPECT_NEAR(sum / n, 8.0, 0.5);
}

TEST(Sampler, BasicMoments) {
  Sampler s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.sum(), 10.0);
}

TEST(Sampler, EmptyIsSafe) {
  Sampler s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(Histogram, BucketsAndQuantiles) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i));
  EXPECT_EQ(h.sampler().count(), 100u);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 10.0);
  EXPECT_NEAR(h.quantile(0.95), 100.0, 10.0);
}

TEST(Histogram, OverflowBucketCatchesLargeValues) {
  Histogram h(0.0, 1.0, 4);
  h.add(1e9);
  EXPECT_EQ(h.buckets().back(), 1u);
}

} // namespace
} // namespace mdw::sim
