// The coherence checker itself must catch broken states — otherwise the
// stress tests prove nothing.  Construct violations by hand and verify each
// is reported; also cover machine-level accessors and planner behaviour on
// tiny meshes (edge geometry).
#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "core/inval_planner.h"
#include "dsm/machine.h"
#include "sim/rng.h"

namespace mdw::dsm {
namespace {

SystemParams tiny() {
  SystemParams p;
  p.mesh_w = p.mesh_h = 4;
  p.cache_lines = 16;
  return p;
}

TEST(Checker, CleanMachinePasses) {
  Machine m(tiny());
  EXPECT_TRUE(m.check_coherence().empty());
}

TEST(Checker, DetectsDoubleModified) {
  Machine m(tiny());
  m.node(1).cache().install(5, LineState::Modified, 1);
  m.node(2).cache().install(5, LineState::Modified, 2);
  // Make the directory consistent-ish so only the duplicate shows.
  auto& e = m.node(1).directory().entry(5);
  e.state = DirState::Exclusive;
  e.owner = 1;
  const auto err = m.check_coherence();
  EXPECT_NE(err.find("Modified copies"), std::string::npos) << err;
}

TEST(Checker, DetectsModifiedPlusShared) {
  Machine m(tiny());
  m.node(1).cache().install(5, LineState::Modified, 1);
  m.node(2).cache().install(5, LineState::Shared, 0);
  auto& e = m.node(1).directory().entry(5);
  e.state = DirState::Exclusive;
  e.owner = 1;
  const auto err = m.check_coherence();
  EXPECT_NE(err.find("coexists"), std::string::npos) << err;
}

TEST(Checker, DetectsMissingPresenceBit) {
  Machine m(tiny());
  m.node(2).cache().install(5, LineState::Shared, 0);
  auto& e = m.node(1).directory().entry(5);
  e.state = DirState::Shared;  // but sharers set is empty
  const auto err = m.check_coherence();
  EXPECT_NE(err.find("without presence bit"), std::string::npos) << err;
}

TEST(Checker, DetectsStaleSharedValue) {
  Machine m(tiny());
  m.node(2).cache().install(5, LineState::Shared, 99);
  auto& e = m.node(1).directory().entry(5);
  e.state = DirState::Shared;
  e.sharers.insert(2);
  e.mem_value = 1;
  const auto err = m.check_coherence();
  EXPECT_NE(err.find("memory holds"), std::string::npos) << err;
}

TEST(Checker, DetectsAbsentOwner) {
  Machine m(tiny());
  auto& e = m.node(1).directory().entry(5);
  e.state = DirState::Exclusive;
  e.owner = 3;  // node 3 holds nothing
  const auto err = m.check_coherence();
  EXPECT_NE(err.find("holds no Modified copy"), std::string::npos) << err;
}

TEST(Checker, DetectsStuckWaiting) {
  Machine m(tiny());
  m.node(1).directory().entry(5).state = DirState::Waiting;
  const auto err = m.check_coherence();
  EXPECT_NE(err.find("stuck in Waiting"), std::string::npos) << err;
}

TEST(Checker, CatchesViolationsUnderPipelinedHome) {
  // The checker's invariants are pipeline-agnostic: a hand-broken state on a
  // machine configured with a deep home pipeline and a coalescing window is
  // still reported.  (Guards against the checker accidentally special-casing
  // service-layer state.)
  for (int depth : {2, 4, 8}) {
    auto p = tiny();
    p.svc.pipeline_depth = depth;
    p.svc.coalesce_window = 16;
    Machine m(p);
    EXPECT_TRUE(m.check_coherence().empty()) << "depth " << depth;
    m.node(1).cache().install(5, LineState::Modified, 1);
    m.node(2).cache().install(5, LineState::Modified, 2);
    auto& e = m.node(1).directory().entry(5);
    e.state = DirState::Exclusive;
    e.owner = 1;
    const auto err = m.check_coherence();
    EXPECT_NE(err.find("Modified copies"), std::string::npos)
        << "depth " << depth << "\n" << err;
  }
}

TEST(Checker, PipelinedHomeLeavesNoResidualServiceState) {
  // After a contended burst drains, every home must be back to zero queued
  // and zero live invalidations — residue would mean leaked pipeline slots.
  auto p = tiny();
  p.svc.pipeline_depth = 2;
  p.svc.coalesce_window = 16;
  Machine m(p);
  sim::Rng rng(31);
  std::vector<int> remaining(static_cast<std::size_t>(m.num_nodes()), 8);
  std::function<void(NodeId)> issue = [&](NodeId id) {
    if (remaining[static_cast<std::size_t>(id)]-- <= 0) return;
    const BlockAddr a = rng.next_below(8);
    if (rng.next_bool(0.6)) {
      m.node(id).write(a, static_cast<std::uint64_t>(id) * 100, [&, id] {
        issue(id);
      });
    } else {
      m.node(id).read(a, [&, id](std::uint64_t) { issue(id); });
    }
  };
  for (NodeId id = 0; id < m.num_nodes(); ++id) issue(id);
  ASSERT_TRUE(m.engine().run_until([&] { return m.all_idle(); }, 50'000'000));
  ASSERT_TRUE(m.engine().run_to_quiescence(5'000'000));
  for (NodeId id = 0; id < m.num_nodes(); ++id) {
    EXPECT_EQ(m.node(id).svc_queue_depth(), 0u) << "home " << id;
    EXPECT_EQ(m.node(id).svc_live_invals(), 0) << "home " << id;
  }
  const auto err = m.check_coherence();
  EXPECT_TRUE(err.empty()) << err;
}

TEST(Machine, HomeMappingIsModular) {
  Machine m(tiny());
  EXPECT_EQ(m.home_of(0), 0);
  EXPECT_EQ(m.home_of(15), 15);
  EXPECT_EQ(m.home_of(16), 0);
  EXPECT_EQ(m.home_of(37), 5);
}

TEST(Machine, TxnIdsAreUnique) {
  Machine m(tiny());
  const TxnId a = m.next_txn();
  const TxnId b = m.next_txn();
  EXPECT_NE(a, b);
}

// --- planner on tiny meshes: edge geometry --------------------------------

TEST(TinyMesh, AllSchemesCoverAllPatternsOn3x3) {
  const noc::MeshShape mesh(3, 3);
  const noc::WormSizing sizing;
  // Exhaustive: every home, every non-empty sharer subset of the other 8
  // nodes would be 9*255 plans per scheme; sample the full-broadcast and
  // all singleton/pair subsets exhaustively instead.
  for (NodeId home = 0; home < 9; ++home) {
    std::vector<NodeId> others;
    for (NodeId n = 0; n < 9; ++n) {
      if (n != home) others.push_back(n);
    }
    for (core::Scheme s : core::kAllSchemes) {
      // singletons and pairs
      for (std::size_t i = 0; i < others.size(); ++i) {
        const auto p1 = core::plan_invalidation(s, mesh, home, {others[i]}, 1,
                                                sizing);
        EXPECT_EQ(p1.expected_ack_messages, 1);
        for (std::size_t j = i + 1; j < others.size(); ++j) {
          const auto p2 = core::plan_invalidation(
              s, mesh, home, {others[i], others[j]}, 1, sizing);
          EXPECT_GE(p2.expected_ack_messages, 1);
          EXPECT_LE(p2.expected_ack_messages, 2);
        }
      }
      // full broadcast
      const auto pb = core::plan_invalidation(s, mesh, home, others, 1, sizing);
      int covered = 0;
      for (const auto& w : pb.request_worms) {
        for (const auto& dst : w->dests) {
          covered += (dst.action == noc::DestAction::Deliver ||
                      dst.action == noc::DestAction::DeliverAndReserve);
        }
      }
      EXPECT_EQ(covered, 8) << core::scheme_name(s) << " home " << home;
    }
  }
}

TEST(TinyMesh, ProtocolWorksOn2x2) {
  SystemParams p;
  p.mesh_w = p.mesh_h = 2;
  p.cache_lines = 8;
  for (core::Scheme s : core::kAllSchemes) {
    p.scheme = s;
    Machine m(p);
    // All nodes share, one writes.
    for (NodeId r = 0; r < 4; ++r) {
      bool done = false;
      m.node(r).read(1, [&](std::uint64_t) { done = true; });
      ASSERT_TRUE(m.engine().run_until([&] { return done; }, 1'000'000));
    }
    bool done = false;
    m.node(2).write(1, 9, [&] { done = true; });
    ASSERT_TRUE(m.engine().run_until([&] { return done; }, 1'000'000))
        << core::scheme_name(s);
    ASSERT_TRUE(m.engine().run_to_quiescence(1'000'000));
    const auto err = m.check_coherence();
    EXPECT_TRUE(err.empty()) << core::scheme_name(s) << "\n" << err;
  }
}

TEST(TinyMesh, NonSquareMeshWorks) {
  SystemParams p;
  p.mesh_w = 8;
  p.mesh_h = 2;
  p.cache_lines = 16;
  for (core::Scheme s : {core::Scheme::EcCmHg, core::Scheme::WfP2Sg}) {
    p.scheme = s;
    Machine m(p);
    for (NodeId r = 0; r < 16; r += 2) {
      bool done = false;
      m.node(r).read(3, [&](std::uint64_t) { done = true; });
      ASSERT_TRUE(m.engine().run_until([&] { return done; }, 1'000'000));
    }
    bool done = false;
    m.node(5).write(3, 1, [&] { done = true; });
    ASSERT_TRUE(m.engine().run_until([&] { return done; }, 1'000'000))
        << core::scheme_name(s);
    ASSERT_TRUE(m.engine().run_to_quiescence(1'000'000));
    EXPECT_TRUE(m.check_coherence().empty());
  }
}

} // namespace
} // namespace mdw::dsm
