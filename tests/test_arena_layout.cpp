// RouterArena layout pins (ISSUE 10 satellite; DESIGN.md section 17).
//
// The sharded kernel's no-false-sharing guarantee rests on one invariant:
// every arena section has a per-node stride that is a multiple of 64 bytes
// and a section base offset that is a multiple of 64 bytes, so ANY
// contiguous node range [lo, hi) — i.e. any whole-row strip of any shard
// plan, equal-split or rebalanced — maps to cache-line-aligned byte ranges
// in every section.  These tests recompute layouts and shard plans for the
// mesh shapes the benchmarks exercise (square, non-square, 64x64) and check
// the boundary arithmetic directly, with no Network construction.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <vector>

#include "noc/arena.h"
#include "noc/geometry.h"
#include "noc/router.h"
#include "noc/shard_plan.h"

namespace mdw::noc {
namespace {

struct Section {
  const char* name;
  std::size_t off;
  std::size_t stride;
};

std::vector<Section> sections(const RouterArena::Layout& l) {
  return {
      {"words", l.words_off, l.words_stride},
      {"vc_hot", l.vc_hot_off, l.vc_hot_stride},
      {"vc_flit", l.vc_flit_off, l.vc_flit_stride},
      {"cons_hot", l.cons_hot_off, l.cons_hot_stride},
      {"cons_flit", l.cons_flit_off, l.cons_flit_stride},
  };
}

RouterArena::Layout layout_for(const MeshShape& mesh, const NocParams& p) {
  return RouterArena::compute_layout(mesh.num_nodes(), p.vcs_total(),
                                     p.inj_vcs_total(), p.vc_buffer_flits,
                                     p.consumption_channels,
                                     p.cons_buffer_flits);
}

/// Every strip boundary of `plan` must land on a 64-byte-aligned offset in
/// every arena section.
void expect_strips_aligned(const RouterArena::Layout& l, const ShardPlan& plan,
                           const char* what) {
  for (const Section& s : sections(l)) {
    EXPECT_EQ(s.off % 64, 0u) << what << ": section " << s.name;
    EXPECT_EQ(s.stride % 64, 0u) << what << ": section " << s.name;
    for (const ShardPlan::Range& r : plan.ranges) {
      const std::size_t lo_off =
          s.off + static_cast<std::size_t>(r.lo) * s.stride;
      const std::size_t hi_off =
          s.off + static_cast<std::size_t>(r.hi) * s.stride;
      EXPECT_EQ(lo_off % 64, 0u)
          << what << ": section " << s.name << " strip lo=" << r.lo;
      EXPECT_EQ(hi_off % 64, 0u)
          << what << ": section " << s.name << " strip hi=" << r.hi;
    }
  }
}

TEST(ArenaLayout, NodeWordsIsOneCacheLine) {
  EXPECT_EQ(sizeof(NodeWords), 64u);
  EXPECT_EQ(alignof(NodeWords), 64u);
}

TEST(ArenaLayout, SectionsCoverArenaWithoutOverlap) {
  const NocParams p;
  const MeshShape mesh(16, 16);
  const RouterArena::Layout l = layout_for(mesh, p);
  const auto n = static_cast<std::size_t>(mesh.num_nodes());
  const auto secs = sections(l);
  // Ascending, end-to-end: each section starts where the previous one ends.
  std::size_t expect_off = 0;
  for (const Section& s : secs) {
    EXPECT_EQ(s.off, expect_off) << "section " << s.name;
    expect_off = s.off + n * s.stride;
  }
  EXPECT_EQ(l.total_bytes, expect_off);
  // Strides hold the natural per-node payload.
  EXPECT_GE(l.vc_hot_stride, static_cast<std::size_t>(l.slots) * sizeof(VcHot));
  EXPECT_GE(l.vc_flit_stride, static_cast<std::size_t>(l.slots) *
                                  static_cast<std::size_t>(l.vc_cap) *
                                  sizeof(Flit));
  EXPECT_GE(l.cons_hot_stride,
            static_cast<std::size_t>(l.cons_n) * sizeof(ConsHot));
  EXPECT_GE(l.cons_flit_stride, static_cast<std::size_t>(l.cons_n) *
                                    static_cast<std::size_t>(l.cons_cap) *
                                    sizeof(Flit));
}

TEST(ArenaLayout, StripBoundariesCacheLineAlignedAcrossMeshesAndShards) {
  const NocParams params;
  const struct {
    int w, h;
  } meshes[] = {{16, 16}, {33, 17}, {64, 64}};
  for (const auto& m : meshes) {
    const MeshShape mesh(m.w, m.h);
    const RouterArena::Layout l = layout_for(mesh, params);
    for (int shards : {1, 2, 3, 4, 8}) {
      const ShardPlan plan = compute_shard_plan(mesh, shards);
      ASSERT_EQ(plan.ranges.back().hi, mesh.num_nodes());
      expect_strips_aligned(l, plan, "equal-split");
    }
  }
}

TEST(ArenaLayout, RebalancedStripBoundariesStayAligned) {
  // Skewed row costs push the DP balancer's boundaries off the equal-split
  // rows; alignment must hold for those plans too — it depends only on the
  // stride arithmetic, never on where the rows land.
  const NocParams params;
  const struct {
    int w, h;
  } meshes[] = {{16, 16}, {33, 17}, {64, 64}};
  for (const auto& m : meshes) {
    const MeshShape mesh(m.w, m.h);
    const RouterArena::Layout l = layout_for(mesh, params);
    std::vector<std::uint64_t> cost(static_cast<std::size_t>(m.h));
    for (int y = 0; y < m.h; ++y) {
      // Quadratic skew: the top rows are ~h^2 times hotter than the bottom.
      cost[static_cast<std::size_t>(y)] =
          static_cast<std::uint64_t>(y + 1) * static_cast<std::uint64_t>(y + 1);
    }
    for (int shards : {2, 3, 4, 8}) {
      const ShardPlan plan = compute_shard_plan(mesh, shards, cost);
      ASSERT_EQ(plan.ranges.back().hi, mesh.num_nodes());
      expect_strips_aligned(l, plan, "rebalanced");
    }
  }
}

TEST(ArenaLayout, WiderBufferConfigsKeepAlignment) {
  // Bigger rings and more consumption channels change every stride; the
  // round-to-64 rule keeps the invariant independent of the configuration.
  NocParams p;
  p.vc_buffer_flits = 7;       // odd ring depth: worst case for padding
  p.consumption_channels = 3;
  p.cons_buffer_flits = 11;
  const MeshShape mesh(33, 17);
  const RouterArena::Layout l = layout_for(mesh, p);
  for (int shards : {2, 3, 8}) {
    expect_strips_aligned(l, compute_shard_plan(mesh, shards), "wide-config");
  }
}

} // namespace
} // namespace mdw::noc
