// Unit tests for mesh geometry: id/coordinate mapping, adjacency, step
// directions, and edge behaviour.
#include <gtest/gtest.h>

#include "noc/geometry.h"

namespace mdw::noc {
namespace {

TEST(Geometry, IdCoordRoundTrip) {
  const MeshShape m(7, 5);
  for (NodeId id = 0; id < m.num_nodes(); ++id) {
    EXPECT_EQ(m.id_of(m.coord_of(id)), id);
  }
}

TEST(Geometry, RowMajorLayout) {
  const MeshShape m(4, 4);
  EXPECT_EQ(m.id_of({0, 0}), 0);
  EXPECT_EQ(m.id_of({3, 0}), 3);
  EXPECT_EQ(m.id_of({0, 1}), 4);
  EXPECT_EQ(m.id_of({3, 3}), 15);
}

TEST(Geometry, NeighborsInterior) {
  const MeshShape m(4, 4);
  const NodeId c = m.id_of({1, 1});
  EXPECT_EQ(m.neighbor(c, Dir::East), m.id_of({2, 1}));
  EXPECT_EQ(m.neighbor(c, Dir::West), m.id_of({0, 1}));
  EXPECT_EQ(m.neighbor(c, Dir::North), m.id_of({1, 2}));
  EXPECT_EQ(m.neighbor(c, Dir::South), m.id_of({1, 0}));
}

TEST(Geometry, NeighborsAtEdgesAreInvalid) {
  const MeshShape m(4, 4);
  EXPECT_EQ(m.neighbor(m.id_of({0, 0}), Dir::West), kInvalidNode);
  EXPECT_EQ(m.neighbor(m.id_of({0, 0}), Dir::South), kInvalidNode);
  EXPECT_EQ(m.neighbor(m.id_of({3, 3}), Dir::East), kInvalidNode);
  EXPECT_EQ(m.neighbor(m.id_of({3, 3}), Dir::North), kInvalidNode);
}

TEST(Geometry, StepDirMatchesNeighbor) {
  const MeshShape m(5, 5);
  const NodeId c = m.id_of({2, 2});
  for (int d = 0; d < kNumLinkDirs; ++d) {
    const Dir dir = static_cast<Dir>(d);
    const NodeId n = m.neighbor(c, dir);
    ASSERT_NE(n, kInvalidNode);
    EXPECT_EQ(m.step_dir(c, n), dir);
    EXPECT_EQ(m.step_dir(n, c), opposite(dir));
  }
}

TEST(Geometry, AdjacencyIsSymmetricAndCorrect) {
  const MeshShape m(6, 3);
  for (NodeId a = 0; a < m.num_nodes(); ++a) {
    for (NodeId b = 0; b < m.num_nodes(); ++b) {
      EXPECT_EQ(m.adjacent(a, b), m.adjacent(b, a));
      EXPECT_EQ(m.adjacent(a, b), m.manhattan(a, b) == 1);
    }
  }
}

TEST(Geometry, ManhattanDistance) {
  const MeshShape m(8, 8);
  EXPECT_EQ(m.manhattan(m.id_of({0, 0}), m.id_of({7, 7})), 14);
  EXPECT_EQ(m.manhattan(m.id_of({3, 4}), m.id_of({3, 4})), 0);
}

TEST(Geometry, OppositeDirections) {
  EXPECT_EQ(opposite(Dir::North), Dir::South);
  EXPECT_EQ(opposite(Dir::South), Dir::North);
  EXPECT_EQ(opposite(Dir::East), Dir::West);
  EXPECT_EQ(opposite(Dir::West), Dir::East);
}

TEST(Geometry, NonSquareMesh) {
  const MeshShape m(2, 9);
  EXPECT_EQ(m.num_nodes(), 18);
  EXPECT_EQ(m.coord_of(17).x, 1);
  EXPECT_EQ(m.coord_of(17).y, 8);
}

} // namespace
} // namespace mdw::noc
