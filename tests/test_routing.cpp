// Tests for base routing schemes and BRCP path conformance — including
// property-style sweeps over all source/destination pairs.
#include <gtest/gtest.h>

#include "noc/routing.h"
#include "sim/rng.h"

namespace mdw::noc {
namespace {

class AllPairsRouting : public ::testing::TestWithParam<RoutingAlgo> {};

TEST_P(AllPairsRouting, UnicastPathsAreMinimalAndConformant) {
  const MeshShape m(6, 6);
  const RoutingAlgo algo = GetParam();
  for (NodeId s = 0; s < m.num_nodes(); ++s) {
    for (NodeId d = 0; d < m.num_nodes(); ++d) {
      const auto path = unicast_path(algo, m, s, d);
      ASSERT_GE(path.size(), 1u);
      EXPECT_EQ(path.front(), s);
      EXPECT_EQ(path.back(), d);
      EXPECT_EQ(static_cast<int>(path.size()) - 1, m.manhattan(s, d))
          << routing_name(algo);
      EXPECT_TRUE(is_conformant_path(algo, m, path)) << routing_name(algo);
    }
  }
}

TEST_P(AllPairsRouting, PermittedDirsAlwaysMakeProgress) {
  const MeshShape m(5, 7);
  const RoutingAlgo algo = GetParam();
  for (NodeId s = 0; s < m.num_nodes(); ++s) {
    for (NodeId d = 0; d < m.num_nodes(); ++d) {
      if (s == d) {
        EXPECT_TRUE(permitted_dirs(algo, m, s, d).empty());
        continue;
      }
      const auto dirs = permitted_dirs(algo, m, s, d);
      ASSERT_FALSE(dirs.empty());
      for (Dir dir : dirs) {
        const NodeId n = m.neighbor(s, dir);
        ASSERT_NE(n, kInvalidNode);
        EXPECT_EQ(m.manhattan(n, d), m.manhattan(s, d) - 1);
      }
    }
  }
}

TEST_P(AllPairsRouting, RandomWalksFollowingPermittedDirsReachDest) {
  const MeshShape m(8, 8);
  const RoutingAlgo algo = GetParam();
  sim::Rng rng(2024);
  for (int trial = 0; trial < 500; ++trial) {
    const NodeId s = static_cast<NodeId>(rng.next_below(64));
    const NodeId d = static_cast<NodeId>(rng.next_below(64));
    NodeId cur = s;
    std::vector<NodeId> walk{cur};
    while (cur != d) {
      const auto dirs = permitted_dirs(algo, m, cur, d);
      ASSERT_FALSE(dirs.empty());
      cur = m.neighbor(cur, dirs[rng.next_below(dirs.size())]);
      walk.push_back(cur);
    }
    // Any walk assembled from permitted directions must itself be a legal
    // (BRCP-conformant) path: this is the key property the multidestination
    // worms rely on.
    EXPECT_TRUE(is_conformant_path(algo, m, walk)) << routing_name(algo);
  }
}

INSTANTIATE_TEST_SUITE_P(AllAlgos, AllPairsRouting,
                         ::testing::Values(RoutingAlgo::EcubeXY,
                                           RoutingAlgo::EcubeYX,
                                           RoutingAlgo::WestFirst,
                                           RoutingAlgo::EastFirst),
                         [](const auto& info) {
                           return std::string(routing_name(info.param)) ==
                                          "ecube-xy"
                                      ? "EcubeXY"
                                  : routing_name(info.param) ==
                                          std::string("ecube-yx")
                                      ? "EcubeYX"
                                  : routing_name(info.param) ==
                                          std::string("west-first")
                                      ? "WestFirst"
                                      : "EastFirst";
                         });

TEST(Conformance, EcubeXYAcceptsRowThenColumn) {
  const MeshShape m(8, 8);
  // (1,1) -> E -> E -> N -> N
  std::vector<NodeId> path{m.id_of({1, 1}), m.id_of({2, 1}), m.id_of({3, 1}),
                           m.id_of({3, 2}), m.id_of({3, 3})};
  EXPECT_TRUE(is_conformant_path(RoutingAlgo::EcubeXY, m, path));
}

TEST(Conformance, EcubeXYRejectsColumnThenRow) {
  const MeshShape m(8, 8);
  std::vector<NodeId> path{m.id_of({1, 1}), m.id_of({1, 2}), m.id_of({2, 2})};
  EXPECT_FALSE(is_conformant_path(RoutingAlgo::EcubeXY, m, path));
  EXPECT_TRUE(is_conformant_path(RoutingAlgo::EcubeYX, m, path));
}

TEST(Conformance, EcubeXYRejectsDirectionReversal) {
  const MeshShape m(8, 8);
  std::vector<NodeId> path{m.id_of({1, 1}), m.id_of({2, 1}), m.id_of({1, 1})};
  EXPECT_FALSE(is_conformant_path(RoutingAlgo::EcubeXY, m, path));
}

TEST(Conformance, WestFirstAcceptsSerpentine) {
  const MeshShape m(8, 8);
  // W, W, then serpentine {N, E, S, S, E, N}: legal under west-first.
  std::vector<NodeId> path{m.id_of({4, 3}), m.id_of({3, 3}), m.id_of({2, 3}),
                           m.id_of({2, 4}), m.id_of({3, 4}), m.id_of({3, 3}),
                           m.id_of({3, 2}), m.id_of({4, 2}), m.id_of({4, 3})};
  EXPECT_TRUE(is_conformant_path(RoutingAlgo::WestFirst, m, path));
  EXPECT_FALSE(is_conformant_path(RoutingAlgo::EcubeXY, m, path));
}

TEST(Conformance, WestFirstRejectsLateWestTurn) {
  const MeshShape m(8, 8);
  // N then W: a turn into West after a non-west hop.
  std::vector<NodeId> path{m.id_of({3, 3}), m.id_of({3, 4}), m.id_of({2, 4})};
  EXPECT_FALSE(is_conformant_path(RoutingAlgo::WestFirst, m, path));
  EXPECT_TRUE(is_conformant_path(RoutingAlgo::EastFirst, m, path));
}

TEST(Conformance, EastFirstRejectsLateEastTurn) {
  const MeshShape m(8, 8);
  std::vector<NodeId> path{m.id_of({3, 3}), m.id_of({3, 4}), m.id_of({4, 4})};
  EXPECT_FALSE(is_conformant_path(RoutingAlgo::EastFirst, m, path));
}

TEST(Conformance, RejectsChannelReuse) {
  const MeshShape m(8, 8);
  // Legal turns but traverses channel (2,3)->(3,3) twice: W-first serpentine
  // that comes back through the same horizontal channel.
  std::vector<NodeId> path{m.id_of({2, 3}), m.id_of({3, 3}), m.id_of({3, 4}),
                           m.id_of({3, 3}), m.id_of({3, 2})};
  // (3,4)->(3,3) then (3,3)->(3,2) is S,S — fine; but (3,3) appears with
  // N then S which is a reversal at (3,4).
  EXPECT_FALSE(is_conformant_path(RoutingAlgo::WestFirst, m, path));
}

TEST(Conformance, RejectsNonAdjacentHops) {
  const MeshShape m(8, 8);
  std::vector<NodeId> path{m.id_of({0, 0}), m.id_of({2, 0})};
  EXPECT_FALSE(is_conformant_path(RoutingAlgo::EcubeXY, m, path));
}

TEST(Conformance, TrivialPathsAreConformant) {
  const MeshShape m(8, 8);
  const NodeId self[] = {m.id_of({3, 3})};
  EXPECT_TRUE(is_conformant_path(RoutingAlgo::EcubeXY, m, self));
  EXPECT_TRUE(is_conformant_path(RoutingAlgo::EcubeXY, m, {}));
}

TEST(Routing, ReplyAlgoPairing) {
  EXPECT_EQ(reply_algo_for(RoutingAlgo::EcubeXY), RoutingAlgo::EcubeYX);
  EXPECT_EQ(reply_algo_for(RoutingAlgo::WestFirst), RoutingAlgo::EastFirst);
}

} // namespace
} // namespace mdw::noc
