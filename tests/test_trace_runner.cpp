// Trace replay on the cycle-level machine: completion, barrier semantics,
// and end-state coherence, including miniature versions of the real apps
// under every grouping scheme.
#include <gtest/gtest.h>

#include "workload/apps.h"
#include "workload/synthetic.h"
#include "workload/trace_runner.h"

namespace mdw::workload {
namespace {

dsm::SystemParams small_params(core::Scheme s) {
  dsm::SystemParams p;
  p.mesh_w = 4;
  p.mesh_h = 4;
  p.scheme = s;
  p.cache_lines = 128;
  return p;
}

TEST(TraceRunner, EmptyTraceCompletesImmediately) {
  dsm::Machine m(small_params(core::Scheme::UiUa));
  TraceBuilder tb(16);
  const Trace t = tb.take();
  TraceRunner runner(m, t);
  const auto r = runner.run();
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.accesses, 0u);
}

TEST(TraceRunner, SimpleReadWriteCompletes) {
  dsm::Machine m(small_params(core::Scheme::UiUa));
  TraceBuilder tb(16);
  for (int p = 0; p < 16; ++p) {
    tb.read(p, 7);
    tb.write(p, static_cast<BlockAddr>(100 + p));
    tb.read(p, 7);
  }
  const Trace t = tb.take();
  dsm::Machine m2(small_params(core::Scheme::UiUa));
  TraceRunner runner(m2, t);
  const auto r = runner.run();
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.accesses, 48u);
  EXPECT_TRUE(m2.check_coherence().empty());
}

TEST(TraceRunner, BarrierOrdersPhases) {
  // Writer updates block 3 before the barrier; every reader after the
  // barrier must find the directory serving the written value.
  dsm::Machine m(small_params(core::Scheme::EcCmCg));
  TraceBuilder tb(16);
  tb.write(0, 3);
  tb.barrier();
  for (int p = 0; p < 16; ++p) tb.read(p, 3);
  const Trace t = tb.take();
  TraceRunner runner(m, t);
  const auto r = runner.run();
  EXPECT_TRUE(r.completed);
  // All 15 other nodes + writer hold shared copies now.
  const auto* e = m.node(3).directory().find(3);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->state, dsm::DirState::Shared);
  EXPECT_GE(e->sharers.count(), 15);
  EXPECT_TRUE(m.check_coherence().empty());
}

TEST(TraceRunner, WriteAfterWideSharingTriggersInvalidations) {
  dsm::Machine m(small_params(core::Scheme::EcCmHg));
  TraceBuilder tb(16);
  for (int p = 0; p < 16; ++p) tb.read(p, 5);
  tb.barrier();
  tb.write(2, 5);
  const Trace t = tb.take();
  TraceRunner runner(m, t);
  EXPECT_TRUE(runner.run().completed);
  EXPECT_GE(m.stats().inval_txns, 1u);
  EXPECT_GE(m.stats().inval_sharers.max(), 10.0);
  EXPECT_TRUE(m.check_coherence().empty());
}

class MiniApps : public ::testing::TestWithParam<core::Scheme> {};

TEST_P(MiniApps, BarnesHutReplayStaysCoherent) {
  dsm::Machine m(small_params(GetParam()));
  const Trace t = barnes_hut_trace(16, 32, 1, 5);
  TraceRunner runner(m, t);
  const auto r = runner.run();
  ASSERT_TRUE(r.completed) << core::scheme_name(GetParam());
  EXPECT_EQ(r.accesses, t.total_accesses());
  const auto err = m.check_coherence();
  EXPECT_TRUE(err.empty()) << err;
  EXPECT_GT(m.stats().inval_txns, 0u);  // tree rebuild invalidates readers
}

TEST_P(MiniApps, LuReplayStaysCoherent) {
  dsm::Machine m(small_params(GetParam()));
  const Trace t = lu_trace(16, 32, 8, 6);
  TraceRunner runner(m, t);
  const auto r = runner.run();
  ASSERT_TRUE(r.completed) << core::scheme_name(GetParam());
  const auto err = m.check_coherence();
  EXPECT_TRUE(err.empty()) << err;
}

TEST_P(MiniApps, ApspReplayStaysCoherent) {
  dsm::Machine m(small_params(GetParam()));
  const Trace t = apsp_trace(16, 24, 6);
  TraceRunner runner(m, t);
  const auto r = runner.run();
  ASSERT_TRUE(r.completed) << core::scheme_name(GetParam());
  const auto err = m.check_coherence();
  EXPECT_TRUE(err.empty()) << err;
  EXPECT_GT(m.stats().inval_txns, 0u);  // pivot-row writes invalidate all
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, MiniApps,
                         ::testing::ValuesIn(core::kAllSchemes),
                         [](const auto& info) {
                           std::string n(core::scheme_name(info.param));
                           for (auto& c : n)
                             if (c == '-') c = '_';
                           return n;
                         });

TEST(TraceRunner, SchemesAgreeOnWorkDisagreeOnCost) {
  // The same trace replayed under UI-UA and MI-MA must do the same protocol
  // work (same txns, same sharers) but different message counts.
  const Trace t = apsp_trace(16, 24, 9);
  dsm::Machine ui(small_params(core::Scheme::UiUa));
  dsm::Machine ma(small_params(core::Scheme::EcCmHg));
  EXPECT_TRUE(TraceRunner(ui, t).run().completed);
  EXPECT_TRUE(TraceRunner(ma, t).run().completed);
  EXPECT_EQ(ui.stats().inval_txns, ma.stats().inval_txns);
  EXPECT_DOUBLE_EQ(ui.stats().inval_sharers.mean(),
                   ma.stats().inval_sharers.mean());
  // UI-UA sends one worm per sharer; the multidestination scheme fewer.
  EXPECT_LT(ma.stats().inval_request_worms, ui.stats().inval_request_worms);
  EXPECT_LT(ma.stats().inval_ack_messages, ui.stats().inval_ack_messages);
}

} // namespace
} // namespace mdw::workload
