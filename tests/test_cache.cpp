// Unit tests for the direct-mapped MSI cache model.
#include <gtest/gtest.h>

#include "dsm/cache.h"

namespace mdw::dsm {
namespace {

TEST(Cache, MissOnEmpty) {
  Cache c(16);
  EXPECT_EQ(c.lookup(5), LineState::Invalid);
}

TEST(Cache, InstallThenHit) {
  Cache c(16);
  const auto ev = c.install(5, LineState::Shared, 42);
  EXPECT_FALSE(ev.valid);
  EXPECT_EQ(c.lookup(5), LineState::Shared);
  EXPECT_EQ(c.value_of(5), 42u);
}

TEST(Cache, ConflictEviction) {
  Cache c(16);
  c.install(3, LineState::Modified, 7);
  const auto ev = c.install(3 + 16, LineState::Shared, 9);  // same set
  ASSERT_TRUE(ev.valid);
  EXPECT_EQ(ev.addr, 3u);
  EXPECT_TRUE(ev.dirty);
  EXPECT_EQ(ev.value, 7u);
  EXPECT_EQ(c.lookup(3), LineState::Invalid);
  EXPECT_EQ(c.lookup(19), LineState::Shared);
  EXPECT_EQ(c.stats().evictions, 1u);
  EXPECT_EQ(c.stats().dirty_evictions, 1u);
}

TEST(Cache, CleanEvictionNotDirty) {
  Cache c(8);
  c.install(1, LineState::Shared, 1);
  const auto ev = c.install(9, LineState::Shared, 2);
  ASSERT_TRUE(ev.valid);
  EXPECT_FALSE(ev.dirty);
}

TEST(Cache, ReinstallSameBlockIsNotEviction) {
  Cache c(8);
  c.install(1, LineState::Shared, 1);
  const auto ev = c.install(1, LineState::Modified, 2);
  EXPECT_FALSE(ev.valid);
  EXPECT_EQ(c.lookup(1), LineState::Modified);
}

TEST(Cache, InvalidatePresentAndAbsent) {
  Cache c(8);
  c.install(1, LineState::Shared, 1);
  EXPECT_TRUE(c.invalidate(1));
  EXPECT_EQ(c.lookup(1), LineState::Invalid);
  EXPECT_FALSE(c.invalidate(1));
  EXPECT_FALSE(c.invalidate(99));
  EXPECT_EQ(c.stats().invalidations_received, 3u);
}

TEST(Cache, DowngradeKeepsValue) {
  Cache c(8);
  c.install(2, LineState::Modified, 77);
  EXPECT_EQ(c.downgrade(2), 77u);
  EXPECT_EQ(c.lookup(2), LineState::Shared);
  EXPECT_EQ(c.value_of(2), 77u);
}

TEST(Cache, DowngradeAbsentIsNoop) {
  Cache c(8);
  c.downgrade(4);
  EXPECT_EQ(c.lookup(4), LineState::Invalid);
}

TEST(Cache, ForEachValidEnumeratesLines) {
  Cache c(8);
  c.install(1, LineState::Shared, 1);
  c.install(2, LineState::Modified, 2);
  int count = 0;
  c.for_each_valid([&](const Cache::Line& l) {
    ++count;
    EXPECT_NE(l.state, LineState::Invalid);
  });
  EXPECT_EQ(count, 2);
}

TEST(Cache, TagDisambiguation) {
  Cache c(8);
  c.install(3, LineState::Shared, 1);
  EXPECT_EQ(c.lookup(11), LineState::Invalid);  // same set, different tag
}

} // namespace
} // namespace mdw::dsm
