// Synthetic workload primitives: make_sharers geometry invariants across
// every pattern, and the SplitMix64 per-processor seed discipline of
// random_trace (shared with the stream generators and the sweep grid).
#include <gtest/gtest.h>

#include <set>

#include "noc/geometry.h"
#include "sim/rng.h"
#include "workload/synthetic.h"

namespace mdw::workload {
namespace {

constexpr SharerPattern kAllPatterns[] = {
    SharerPattern::Uniform, SharerPattern::Cluster, SharerPattern::SameColumn,
    SharerPattern::SameRow};

TEST(MakeSharers, DistinctInBoundsAndNeverHomeOrWriter) {
  const noc::MeshShape mesh(6, 6);
  sim::Rng rng(3);
  for (SharerPattern pattern : kAllPatterns) {
    const int max_d = (pattern == SharerPattern::SameColumn ||
                       pattern == SharerPattern::SameRow)
                          ? 4
                          : 12;
    for (int d = 1; d <= max_d; ++d) {
      const NodeId home = 14;   // (2, 2)
      const NodeId writer = 9;  // (3, 1)
      const auto sharers = make_sharers(rng, mesh, home, writer, d, pattern);
      ASSERT_EQ(static_cast<int>(sharers.size()), d)
          << pattern_name(pattern) << " d=" << d;
      std::set<NodeId> seen;
      for (NodeId s : sharers) {
        EXPECT_GE(s, 0);
        EXPECT_LT(s, mesh.num_nodes());
        EXPECT_NE(s, home);
        EXPECT_NE(s, writer);
        EXPECT_TRUE(seen.insert(s).second) << "duplicate sharer " << s;
      }
    }
  }
}

TEST(MakeSharers, LinePatternsStayOnHomeLine) {
  const noc::MeshShape mesh(6, 6);
  sim::Rng rng(5);
  const NodeId home = mesh.id_of({4, 2});
  const auto col = make_sharers(rng, mesh, home, home, 5,
                                SharerPattern::SameColumn);
  for (NodeId s : col) EXPECT_EQ(mesh.coord_of(s).x, 4);
  const auto row =
      make_sharers(rng, mesh, home, home, 5, SharerPattern::SameRow);
  for (NodeId s : row) EXPECT_EQ(mesh.coord_of(s).y, 2);
}

TEST(MakeSharers, ClusterIsSpatiallyCompact) {
  // A cluster of d nodes fits inside the smallest square holding d + 2,
  // so its bounding box never exceeds that side length (8x8 mesh, d = 7:
  // side 3).
  const noc::MeshShape mesh(8, 8);
  sim::Rng rng(7);
  const auto sharers =
      make_sharers(rng, mesh, 0, 1, 7, SharerPattern::Cluster);
  int min_x = 8, max_x = -1, min_y = 8, max_y = -1;
  for (NodeId s : sharers) {
    const auto c = mesh.coord_of(s);
    min_x = std::min(min_x, c.x);
    max_x = std::max(max_x, c.x);
    min_y = std::min(min_y, c.y);
    max_y = std::max(max_y, c.y);
  }
  EXPECT_LE(max_x - min_x, 2);
  EXPECT_LE(max_y - min_y, 2);
}

TEST(RandomTrace, SameSeedIdenticalDifferentSeedNot) {
  const Trace a = random_trace(4, 50, 8, 0.3, 11);
  const Trace b = random_trace(4, 50, 8, 0.3, 11);
  ASSERT_EQ(a.per_proc.size(), b.per_proc.size());
  for (std::size_t p = 0; p < a.per_proc.size(); ++p) {
    ASSERT_EQ(a.per_proc[p].size(), b.per_proc[p].size());
    for (std::size_t i = 0; i < a.per_proc[p].size(); ++i) {
      EXPECT_EQ(a.per_proc[p][i].kind, b.per_proc[p][i].kind);
      EXPECT_EQ(a.per_proc[p][i].addr, b.per_proc[p][i].addr);
    }
  }

  const Trace c = random_trace(4, 50, 8, 0.3, 12);
  bool differs = false;
  for (std::size_t p = 0; p < a.per_proc.size() && !differs; ++p) {
    for (std::size_t i = 0; i < a.per_proc[p].size() && !differs; ++i) {
      differs = a.per_proc[p][i].kind != c.per_proc[p][i].kind ||
                a.per_proc[p][i].addr != c.per_proc[p][i].addr;
    }
  }
  EXPECT_TRUE(differs);
}

TEST(RandomTrace, PerProcSubStreamsMatchSplitSeedRule) {
  // Processor p's stream depends only on split_seed(seed, p): growing the
  // trace (more procs) must not perturb the earlier processors' streams.
  const Trace small = random_trace(2, 40, 8, 0.3, 21);
  const Trace big = random_trace(6, 40, 8, 0.3, 21);
  for (int p = 0; p < 2; ++p) {
    ASSERT_EQ(small.per_proc[p].size(), big.per_proc[p].size());
    for (std::size_t i = 0; i < small.per_proc[p].size(); ++i) {
      EXPECT_EQ(small.per_proc[p][i].kind, big.per_proc[p][i].kind);
      EXPECT_EQ(small.per_proc[p][i].addr, big.per_proc[p][i].addr);
    }
  }
  // And the sub-streams are actually distinct across processors.
  bool p0_ne_p1 = false;
  for (std::size_t i = 0; i < big.per_proc[0].size(); ++i) {
    if (big.per_proc[0][i].addr != big.per_proc[1][i].addr ||
        big.per_proc[0][i].kind != big.per_proc[1][i].kind) {
      p0_ne_p1 = true;
      break;
    }
  }
  EXPECT_TRUE(p0_ne_p1);
}

TEST(SplitSeed, DistinctAndConstexpr) {
  static_assert(sim::split_seed(1, 0) != sim::split_seed(1, 1));
  static_assert(sim::split_seed(1, 0) != sim::split_seed(2, 0));
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 4096; ++i) seen.insert(sim::split_seed(9, i));
  EXPECT_EQ(seen.size(), 4096u);
}

} // namespace
} // namespace mdw::workload
