// Unit tests for the allocation-free hot-path containers added in DESIGN.md
// section 11: the WormPool freelist, SmallVec spill behaviour, FlitRing
// wraparound, and RingQueue growth.
#include <gtest/gtest.h>

#include "noc/flit_ring.h"
#include "noc/worm_pool.h"
#include "sim/ring_queue.h"
#include "sim/small_vec.h"

namespace mdw::noc {
namespace {

TEST(WormPool, AcquireReleaseReusesSameObject) {
  WormPool pool;
  Worm* raw = nullptr;
  {
    WormPtr w = pool.acquire();
    raw = w.get();
    w->txn = 77;
    w->kind = WormKind::Gather;
    EXPECT_EQ(pool.outstanding(), 1);
  }
  EXPECT_EQ(pool.outstanding(), 0);
  EXPECT_EQ(pool.free_count(), 1u);

  WormPtr again = pool.acquire();
  EXPECT_EQ(again.get(), raw);  // freelist handed back the same object
  EXPECT_EQ(pool.reused(), 1u);
  // ...and it came back pristine.
  EXPECT_EQ(again->txn, 0u);
  EXPECT_EQ(again->kind, WormKind::Unicast);
  EXPECT_TRUE(again->path.empty());
  EXPECT_TRUE(again->dests.empty());
}

TEST(WormPool, RefcountKeepsWormAliveAcrossCopies) {
  WormPool pool;
  WormPtr a = pool.acquire();
  EXPECT_EQ(a.use_count(), 1u);
  WormPtr b = a;
  EXPECT_EQ(a.use_count(), 2u);
  a = nullptr;
  EXPECT_EQ(pool.outstanding(), 1);  // b still holds it
  b = nullptr;
  EXPECT_EQ(pool.outstanding(), 0);
  EXPECT_EQ(pool.free_count(), 1u);
}

TEST(WormPool, MoveDoesNotTouchRefcount) {
  WormPool pool;
  WormPtr a = pool.acquire();
  Worm* raw = a.get();
  WormPtr b = std::move(a);
  EXPECT_EQ(b.get(), raw);
  EXPECT_EQ(a.get(), nullptr);
  EXPECT_EQ(b.use_count(), 1u);
}

TEST(WormPool, HeapSpillRetainedAcrossRecycle) {
  WormPool pool;
  {
    WormPtr w = pool.acquire();
    // Push past the inline path capacity: a 20-hop path on a big mesh.
    for (NodeId n = 0; n < static_cast<NodeId>(kInlinePathHops + 4); ++n) {
      w->path.push_back(n);
    }
    ASSERT_TRUE(w->path.spilled());
    EXPECT_GE(w->path.capacity(), static_cast<std::size_t>(kInlinePathHops + 4));
  }
  // The recycled worm keeps the spill block: the next occupant of this slot
  // can carry a long path without reallocating.
  WormPtr w2 = pool.acquire();
  EXPECT_TRUE(w2->path.empty());
  EXPECT_TRUE(w2->path.spilled());
  EXPECT_GE(w2->path.capacity(), static_cast<std::size_t>(kInlinePathHops + 4));
}

TEST(WormPool, UnpooledWormsDeleteCleanly) {
  // Worms constructed outside any pool (pool == nullptr) are plain
  // heap objects; the last WormPtr must delete rather than recycle.
  WormPtr w(new Worm);
  w->txn = 5;
  w = nullptr;  // must not crash or leak (ASan stage verifies)
}

TEST(SmallVec, InlineThenSpill) {
  sim::SmallVec<int, 4> v;
  for (int i = 0; i < 4; ++i) v.push_back(i);
  EXPECT_FALSE(v.spilled());
  v.push_back(4);
  EXPECT_TRUE(v.spilled());
  ASSERT_EQ(v.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(v[static_cast<std::size_t>(i)], i);
  v.clear();
  EXPECT_TRUE(v.empty());
  EXPECT_TRUE(v.spilled());  // clear keeps the block
}

TEST(SmallVec, CopyAndMoveSemantics) {
  sim::SmallVec<int, 2> a{1, 2, 3, 4};
  sim::SmallVec<int, 2> b = a;  // copy
  ASSERT_EQ(b.size(), 4u);
  EXPECT_EQ(b[3], 4);
  sim::SmallVec<int, 2> c = std::move(a);  // steals the spill block
  ASSERT_EQ(c.size(), 4u);
  EXPECT_EQ(c[0], 1);
  EXPECT_TRUE(a.empty());
}

TEST(RingView, WrapAroundPreservesFifoOrder) {
  Flit slab[3];
  RingIdx idx;
  RingView r(slab, &idx, 3);
  // Cycle enough flits through a 3-deep ring to wrap several times.
  Cycle next_in = 0, next_out = 0;
  for (int step = 0; step < 20; ++step) {
    while (!r.full()) r.push_back(Flit{false, false, next_in++});
    while (!r.empty()) {
      EXPECT_EQ(r.front().arrival(), next_out++);
      r.pop_front();
    }
  }
  EXPECT_EQ(next_out, next_in);
}

TEST(RingView, FullAndEmptyBoundaries) {
  Flit slab[2];
  RingIdx idx;
  RingView r(slab, &idx, 2);
  EXPECT_TRUE(r.empty());
  EXPECT_FALSE(r.full());
  r.push_back(Flit{true, false, 1});
  EXPECT_FALSE(r.empty());
  EXPECT_FALSE(r.full());
  r.push_back(Flit{false, true, 2});
  EXPECT_TRUE(r.full());
  EXPECT_EQ(r.size(), 2);
  EXPECT_TRUE(r.front().head());
  r.pop_front();
  EXPECT_TRUE(r.front().tail());
  r.pop_front();
  EXPECT_TRUE(r.empty());
}

TEST(RingView, OccupancySharedThroughExternalIndices) {
  // Two views over the same slab/indices see one ring: the arena constructs
  // views on demand, so the state must live entirely in (slab, RingIdx).
  Flit slab[4];
  RingIdx idx;
  {
    RingView w(slab, &idx, 4);
    for (int i = 0; i < 3; ++i) {
      w.push_back(Flit{false, false, static_cast<Cycle>(i)});
    }
  }
  RingView r(slab, &idx, 4);
  EXPECT_EQ(r.size(), 3);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(r.front().arrival(), static_cast<Cycle>(i));
    r.pop_front();
  }
  EXPECT_TRUE(r.empty());
}

TEST(RingQueue, GrowsAcrossWrapBoundary) {
  sim::RingQueue<int> q;
  // Stagger pushes and pops so head_ is mid-buffer when growth happens:
  // the grow() must relocate the wrapped run in FIFO order.
  int in = 0, out = 0;
  for (int i = 0; i < 6; ++i) q.push_back(in++);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(q.front(), out++);
    q.pop_front();
  }
  for (int i = 0; i < 40; ++i) q.push_back(in++);  // forces two grows
  while (!q.empty()) {
    EXPECT_EQ(q.front(), out++);
    q.pop_front();
  }
  EXPECT_EQ(out, in);
}

TEST(RingQueue, PopReleasesHeldReferences) {
  WormPool pool;
  sim::RingQueue<WormPtr> q;
  q.push_back(pool.acquire());
  EXPECT_EQ(pool.outstanding(), 1);
  q.pop_front();
  // The vacated slot was reset, so the worm went back to the pool even
  // though the queue's storage still exists.
  EXPECT_EQ(pool.outstanding(), 0);
  EXPECT_EQ(pool.free_count(), 1u);
}

} // namespace
} // namespace mdw::noc
