// Determinism pins for the simulator core.
//
// Two guarantees are locked down here:
//   1. Reproducibility: the same seed produces an identical stats
//      fingerprint (worms injected/delivered, link flit-hops, invalidation
//      latency sums) across back-to-back runs.
//   2. Scheduling equivalence: the active-region router worklist
//      (Network's default) and the exhaustive full sweep (the
//      NocParams::full_sweep / MDW_FULL_SWEEP escape hatch) are
//      bit-identical — same latencies, flit-hops, and occupancy for every
//      scheme, both for isolated transactions and under concurrency.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "analysis/experiment.h"
#include "svc/service.h"

namespace mdw {
namespace {

/// Exact-count fingerprint of one small protocol workload.
struct Fingerprint {
  std::uint64_t worms_injected = 0;
  std::uint64_t worms_delivered = 0;
  std::uint64_t absorb_deliveries = 0;
  std::uint64_t link_flit_hops = 0;
  std::uint64_t gather_deferred = 0;
  std::uint64_t gather_deposits = 0;
  std::uint64_t inval_txns = 0;
  double inval_latency_sum = 0;
  std::uint64_t occupancy = 0;
  Cycle end_cycle = 0;

  bool operator==(const Fingerprint&) const = default;
};

Fingerprint run_workload(core::Scheme scheme, bool full_sweep,
                         std::uint64_t seed, int shards = 1,
                         bool fast_forward = true, bool rebalance = false) {
  dsm::SystemParams p;
  p.mesh_w = p.mesh_h = 8;
  p.scheme = scheme;
  p.noc.full_sweep = full_sweep;
  p.noc.shards = shards;
  p.noc.fast_forward = fast_forward;
  dsm::Machine m(p);
  sim::Rng rng(seed);
  const int n = m.num_nodes();

  for (int rep = 0; rep < 4; ++rep) {
    if (rebalance && rep == 1) {
      // Recompute the shard strips from the traffic rep 0 left in the link
      // heatmap: the remaining reps run under a cost-model (load-balanced)
      // plan instead of the equal-split one.  Quiescence above means we are
      // between ticks, which is the window rebalance_shards requires.
      m.network().rebalance_shards();
    }
    const auto home = static_cast<NodeId>(rng.next_below(n));
    NodeId writer = home;
    while (writer == home) writer = static_cast<NodeId>(rng.next_below(n));
    const BlockAddr a =
        static_cast<BlockAddr>(rep + 1) * static_cast<BlockAddr>(n) + home;
    const auto sharers = workload::make_sharers(
        rng, m.network().mesh(), home, writer, 6,
        workload::SharerPattern::Uniform);
    for (NodeId s : sharers) {
      bool done = false;
      m.node(s).read(a, [&](std::uint64_t) { done = true; });
      EXPECT_TRUE(m.engine().run_until([&] { return done; }, 10'000'000));
    }
    bool done = false;
    m.node(writer).write(a, 1, [&] { done = true; });
    EXPECT_TRUE(m.engine().run_until([&] { return done; }, 10'000'000));
    EXPECT_TRUE(m.engine().run_to_quiescence(1'000'000));
  }

  Fingerprint fp;
  const noc::NetworkStats& ns = m.network().stats();
  fp.worms_injected = ns.worms_injected;
  fp.worms_delivered = ns.worms_delivered;
  fp.absorb_deliveries = ns.absorb_deliveries;
  fp.link_flit_hops = ns.link_flit_hops;
  fp.gather_deferred = ns.gather_deferred;
  fp.gather_deposits = ns.gather_deposits;
  fp.inval_txns = m.stats().inval_txns;
  fp.inval_latency_sum = m.stats().inval_latency.sum();
  fp.occupancy = m.total_occupancy();
  fp.end_cycle = m.engine().now();
  EXPECT_EQ(m.check_coherence(), "");
  return fp;
}

/// The same workload as run_workload, but driven through the coherence
/// service layer: one svc::Session per issuing node, window 1, home pipeline
/// depth 1, coalescing off.  This sequential workload never presents two
/// concurrent invalidations to one home, so the depth-1 pipeline never
/// queues and the schedule must be event-for-event the classic path's.
Fingerprint run_svc_workload(core::Scheme scheme, std::uint64_t seed) {
  dsm::SystemParams p;
  p.mesh_w = p.mesh_h = 8;
  p.scheme = scheme;
  p.svc.pipeline_depth = 1;
  p.svc.coalesce_window = 0;
  dsm::Machine m(p);
  std::vector<std::unique_ptr<svc::Session>> sess;
  for (NodeId id = 0; id < m.num_nodes(); ++id) {
    sess.push_back(std::make_unique<svc::Session>(
        m, id, svc::SessionOptions{.max_outstanding = 1}));
  }
  sim::Rng rng(seed);
  const int n = m.num_nodes();

  for (int rep = 0; rep < 4; ++rep) {
    const auto home = static_cast<NodeId>(rng.next_below(n));
    NodeId writer = home;
    while (writer == home) writer = static_cast<NodeId>(rng.next_below(n));
    const BlockAddr a =
        static_cast<BlockAddr>(rep + 1) * static_cast<BlockAddr>(n) + home;
    const auto sharers = workload::make_sharers(
        rng, m.network().mesh(), home, writer, 6,
        workload::SharerPattern::Uniform);
    for (NodeId s : sharers) {
      const svc::Ticket t = sess[static_cast<std::size_t>(s)]->read(a);
      EXPECT_TRUE(m.engine().run_until(
          [&] { return sess[static_cast<std::size_t>(s)]->poll(t); },
          10'000'000));
      svc::OpResult r;
      EXPECT_TRUE(sess[static_cast<std::size_t>(s)]->poll(t, r));
    }
    const svc::Ticket t = sess[static_cast<std::size_t>(writer)]->write(a, 1);
    EXPECT_TRUE(m.engine().run_until(
        [&] { return sess[static_cast<std::size_t>(writer)]->poll(t); },
        10'000'000));
    svc::OpResult r;
    EXPECT_TRUE(sess[static_cast<std::size_t>(writer)]->poll(t, r));
    EXPECT_TRUE(m.engine().run_to_quiescence(1'000'000));
  }

  Fingerprint fp;
  const noc::NetworkStats& ns = m.network().stats();
  fp.worms_injected = ns.worms_injected;
  fp.worms_delivered = ns.worms_delivered;
  fp.absorb_deliveries = ns.absorb_deliveries;
  fp.link_flit_hops = ns.link_flit_hops;
  fp.gather_deferred = ns.gather_deferred;
  fp.gather_deposits = ns.gather_deposits;
  fp.inval_txns = m.stats().inval_txns;
  fp.inval_latency_sum = m.stats().inval_latency.sum();
  fp.occupancy = m.total_occupancy();
  fp.end_cycle = m.engine().now();
  EXPECT_EQ(m.check_coherence(), "");
  return fp;
}

constexpr core::Scheme kSchemes[] = {
    core::Scheme::UiUa,    // UI-UA baseline
    core::Scheme::EcCmHg,  // MI-MA, e-cube hierarchical gathers
    core::Scheme::WfScSg,  // MI-MA, west-first serpentine gathers
};

TEST(Determinism, SameSeedSameFingerprint) {
  for (core::Scheme s : kSchemes) {
    const Fingerprint a = run_workload(s, /*full_sweep=*/false, 42);
    const Fingerprint b = run_workload(s, /*full_sweep=*/false, 42);
    EXPECT_EQ(a, b) << "scheme " << core::scheme_name(s);
    EXPECT_GT(a.inval_txns, 0u);
  }
}

TEST(Determinism, PooledHotPathMatchesPrePoolGoldens) {
  // Exact fingerprints captured from the pre-pooling implementation
  // (std::shared_ptr worms, std::deque flit buffers, std::vector paths),
  // full-sweep scheduling, seed 42.  The worm pool, intrusive WormPtr,
  // SmallVec paths, and FlitRing buffers are pure memory-layout changes:
  // any drift here means the refactor altered simulated behaviour.
  const struct {
    core::Scheme scheme;
    Fingerprint golden;
  } pins[] = {
      {core::Scheme::UiUa, {104, 104, 0, 9600, 0, 0, 4, 880, 3016, 6040}},
      {core::Scheme::EcCmHg, {90, 80, 7, 9140, 1, 10, 4, 764, 2542, 5924}},
      {core::Scheme::WfScSg, {66, 66, 20, 9559, 0, 0, 4, 883, 2236, 6043}},
  };
  for (const auto& pin : pins) {
    const Fingerprint got = run_workload(pin.scheme, /*full_sweep=*/true, 42);
    EXPECT_EQ(got, pin.golden) << "scheme " << core::scheme_name(pin.scheme);
  }
}

TEST(Determinism, ServiceLayerDepthOneMatchesClassicPath) {
  // The ISSUE's determinism pin: with pipeline depth 1 and coalescing off,
  // driving the workload through svc::Session tickets is fingerprint-
  // identical to the classic blocking read/write path.  The session adds
  // zero cycles (issue is synchronous, completion lands in the same event)
  // and depth 1 degenerates to the legacy one-at-a-time home.
  for (core::Scheme s : kSchemes) {
    const Fingerprint classic = run_workload(s, /*full_sweep=*/false, 42);
    const Fingerprint service = run_svc_workload(s, 42);
    EXPECT_EQ(service, classic) << "scheme " << core::scheme_name(s);
    EXPECT_GT(service.inval_txns, 0u);
  }
}

TEST(Determinism, ActiveRegionMatchesFullSweep) {
  for (core::Scheme s : kSchemes) {
    const Fingerprint active = run_workload(s, /*full_sweep=*/false, 7);
    const Fingerprint sweep = run_workload(s, /*full_sweep=*/true, 7);
    EXPECT_EQ(active, sweep) << "scheme " << core::scheme_name(s);
  }
}

TEST(Determinism, ShardCountInvariance) {
  // The sharded parallel cycle kernel (DESIGN.md sections 14 and 16) must be
  // bit-identical to the sequential kernel: same latencies, flit-hops,
  // occupancy, and end cycle at every shard count, under both scheduling
  // modes.  shards=8 on the 8x8 mesh is the one-row-per-shard extreme, and
  // the rebalanced variant swaps in a cost-model (load-balanced) strip plan
  // mid-run — any contiguous row partition must give the same answer.
  for (core::Scheme s : kSchemes) {
    const Fingerprint seq_active = run_workload(s, /*full_sweep=*/false, 42);
    const Fingerprint seq_sweep = run_workload(s, /*full_sweep=*/true, 42);
    for (int shards : {1, 2, 4, 8}) {
      EXPECT_EQ(run_workload(s, false, 42, shards), seq_active)
          << "scheme " << core::scheme_name(s) << " shards=" << shards;
      EXPECT_EQ(run_workload(s, true, 42, shards), seq_sweep)
          << "scheme " << core::scheme_name(s) << " shards=" << shards
          << " (full sweep)";
      EXPECT_EQ(run_workload(s, false, 42, shards, true, /*rebalance=*/true),
                seq_active)
          << "scheme " << core::scheme_name(s) << " shards=" << shards
          << " (rebalanced)";
    }
  }
}

TEST(Determinism, SoAArenaGoldensAcrossKernelConfigs) {
  // ISSUE 10: the SoA hot-state arena relocated every router's VC/ring/
  // consumption state into one flat allocation and rewrote the allocate/
  // traverse scans as bitmap-word walks.  The move is pure layout: each
  // kernel configuration — every shard count, rebalanced strip plans,
  // fast-forward on and off — must still land EXACTLY on the pre-arena
  // golden fingerprints, not merely agree with a same-binary sequential run
  // (which would also pass if the port broke all configs identically).
  const struct {
    core::Scheme scheme;
    Fingerprint golden;
  } pins[] = {
      {core::Scheme::UiUa, {104, 104, 0, 9600, 0, 0, 4, 880, 3016, 6040}},
      {core::Scheme::EcCmHg, {90, 80, 7, 9140, 1, 10, 4, 764, 2542, 5924}},
      {core::Scheme::WfScSg, {66, 66, 20, 9559, 0, 0, 4, 883, 2236, 6043}},
  };
  for (const auto& pin : pins) {
    for (int shards : {1, 2, 4, 8}) {
      EXPECT_EQ(run_workload(pin.scheme, /*full_sweep=*/true, 42, shards,
                             /*fast_forward=*/true, /*rebalance=*/true),
                pin.golden)
          << "scheme " << core::scheme_name(pin.scheme) << " shards=" << shards
          << " (rebalanced)";
    }
    for (int shards : {1, 4}) {
      EXPECT_EQ(run_workload(pin.scheme, /*full_sweep=*/true, 42, shards,
                             /*fast_forward=*/false),
                pin.golden)
          << "scheme " << core::scheme_name(pin.scheme) << " shards=" << shards
          << " (no fast-forward)";
    }
  }
}

TEST(Determinism, FastForwardInvariance) {
  // Quiescence fast-forward (jumping simulated time across gap cycles where
  // no router can act) is a pure scheduling optimization: with it disabled
  // every fingerprint field — including end cycle and the round-robin
  // dependent latencies — must match the default fast-forwarding run, for
  // both the sequential and the sharded kernel.
  for (core::Scheme s : kSchemes) {
    const Fingerprint ff_on = run_workload(s, /*full_sweep=*/false, 42);
    const Fingerprint ff_off =
        run_workload(s, false, 42, /*shards=*/1, /*fast_forward=*/false);
    EXPECT_EQ(ff_off, ff_on) << "scheme " << core::scheme_name(s);
    for (int shards : {2, 4}) {
      EXPECT_EQ(run_workload(s, false, 42, shards, /*fast_forward=*/false),
                ff_on)
          << "scheme " << core::scheme_name(s) << " shards=" << shards;
    }
    EXPECT_GT(ff_on.inval_txns, 0u);
  }
}

/// Like run_workload, but each block is invalidated twice with the same
/// sharer set (prime, write, re-prime, write): the second invalidation of a
/// block replays its memoized plan when the caches are on.  Unicast ack /
/// data traffic re-uses (src, dst) pairs throughout, exercising the route
/// cache on the same run.
Fingerprint run_repeat_workload(core::Scheme scheme, bool caches,
                                std::uint64_t seed) {
  dsm::SystemParams p;
  p.mesh_w = p.mesh_h = 8;
  p.scheme = scheme;
  if (!caches) {
    p.plan_cache_entries = 0;
    p.noc.route_cache_entries = 0;
  }
  dsm::Machine m(p);
  sim::Rng rng(seed);
  const int n = m.num_nodes();

  for (int rep = 0; rep < 3; ++rep) {
    const auto home = static_cast<NodeId>(rng.next_below(n));
    NodeId writer = home;
    while (writer == home) writer = static_cast<NodeId>(rng.next_below(n));
    const BlockAddr a =
        static_cast<BlockAddr>(rep + 1) * static_cast<BlockAddr>(n) + home;
    const auto sharers = workload::make_sharers(
        rng, m.network().mesh(), home, writer, 6,
        workload::SharerPattern::Uniform);
    for (int round = 0; round < 2; ++round) {
      for (NodeId s : sharers) {
        bool done = false;
        m.node(s).read(a, [&](std::uint64_t) { done = true; });
        EXPECT_TRUE(m.engine().run_until([&] { return done; }, 10'000'000));
      }
      bool done = false;
      m.node(writer).write(a, 1, [&] { done = true; });
      EXPECT_TRUE(m.engine().run_until([&] { return done; }, 10'000'000));
      EXPECT_TRUE(m.engine().run_to_quiescence(1'000'000));
    }
  }
  if (caches) {
    // The repeat rounds must actually exercise the memoized path, or this
    // test would compare two cache-cold runs.
    EXPECT_GT(m.plan_cache().stats().hits, 0u)
        << "scheme " << core::scheme_name(scheme);
    EXPECT_GT(m.network().route_cache().stats().hits, 0u)
        << "scheme " << core::scheme_name(scheme);
  } else {
    EXPECT_FALSE(m.plan_cache().enabled());
    EXPECT_EQ(m.network().route_cache().stats().hits, 0u);
  }

  Fingerprint fp;
  const noc::NetworkStats& ns = m.network().stats();
  fp.worms_injected = ns.worms_injected;
  fp.worms_delivered = ns.worms_delivered;
  fp.absorb_deliveries = ns.absorb_deliveries;
  fp.link_flit_hops = ns.link_flit_hops;
  fp.gather_deferred = ns.gather_deferred;
  fp.gather_deposits = ns.gather_deposits;
  fp.inval_txns = m.stats().inval_txns;
  fp.inval_latency_sum = m.stats().inval_latency.sum();
  fp.occupancy = m.total_occupancy();
  fp.end_cycle = m.engine().now();
  EXPECT_EQ(m.check_coherence(), "");
  return fp;
}

TEST(Determinism, MemoizationCachesDoNotChangeBehaviour) {
  // Plan-cache hits draw worm ids from the same counters in the same order
  // as fresh planning and the route cache memoizes a pure function, so every
  // statistic — latencies, flit-hops, occupancy, end cycle — must be
  // bit-identical with the caches on or off.
  for (core::Scheme s : kSchemes) {
    const Fingerprint cached = run_repeat_workload(s, /*caches=*/true, 23);
    const Fingerprint uncached = run_repeat_workload(s, /*caches=*/false, 23);
    EXPECT_EQ(cached, uncached) << "scheme " << core::scheme_name(s);
    EXPECT_GT(cached.inval_txns, 0u);
  }
}

TEST(Determinism, MeasureInvalidationsInvariantUnderScheduler) {
  for (core::Scheme s : kSchemes) {
    analysis::InvalExperimentConfig cfg;
    cfg.mesh = 8;
    cfg.scheme = s;
    cfg.d = 6;
    cfg.repetitions = 3;
    cfg.seed = 5;
    const analysis::InvalMeasurement active = measure_invalidations(cfg);
    cfg.base.noc.full_sweep = true;
    const analysis::InvalMeasurement sweep = measure_invalidations(cfg);
    EXPECT_EQ(active.inval_latency, sweep.inval_latency);
    EXPECT_EQ(active.write_latency, sweep.write_latency);
    EXPECT_EQ(active.traffic_flits, sweep.traffic_flits);
    EXPECT_EQ(active.occupancy, sweep.occupancy);
    EXPECT_EQ(active.messages, sweep.messages);
    EXPECT_EQ(active.deferred_gathers, sweep.deferred_gathers);
  }
}

TEST(Determinism, MeasureHotspotInvariantUnderScheduler) {
  // Concurrency exercises mid-tick wakes: flits forwarded into routers the
  // sweep has already passed, and deferred-gather reinjection.
  analysis::HotspotConfig cfg;
  cfg.mesh = 8;
  cfg.scheme = core::Scheme::EcCmHg;
  cfg.d = 8;
  cfg.concurrent = 4;
  cfg.rounds = 2;
  cfg.seed = 3;
  const analysis::HotspotMeasurement active = measure_hotspot(cfg);
  cfg.base.noc.full_sweep = true;
  const analysis::HotspotMeasurement sweep = measure_hotspot(cfg);
  ASSERT_TRUE(active.completed);
  ASSERT_TRUE(sweep.completed);
  EXPECT_EQ(active.inval_latency, sweep.inval_latency);
  EXPECT_EQ(active.makespan, sweep.makespan);
  EXPECT_EQ(active.traffic_flits, sweep.traffic_flits);
  EXPECT_EQ(active.deferred_gathers, sweep.deferred_gathers);
  EXPECT_EQ(active.bank_blocked_cycles, sweep.bank_blocked_cycles);
}

} // namespace
} // namespace mdw
