// Sweep subsystem: deterministic seed derivation, grid expansion, the
// observability merge operations (sampler / histogram / registry /
// heatmap), and the headline guarantee — a grid run with 1, 2, and 8
// workers produces bit-identical per-point measurements and identical
// merged registry/heatmap contents (one Rng per point, seeds from point
// coordinates, merges folded in point-index order).
#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/heatmap.h"
#include "obs/metrics.h"
#include "sim/stats.h"
#include "sweep/named_grids.h"
#include "sweep/report.h"
#include "sweep/runner.h"

using namespace mdw;

namespace {

std::string registry_json(const obs::MetricsRegistry& r) {
  std::ostringstream os;
  r.write_json(os);
  return os.str();
}

std::string heatmap_json(const obs::LinkHeatmap& h) {
  std::ostringstream os;
  h.write_json(os);
  return os.str();
}

/// Exact (bitwise) equality of every measurement field.
void expect_identical(const sweep::PointResult& a, const sweep::PointResult& b,
                      std::size_t i) {
  EXPECT_EQ(a.ran, b.ran) << "point " << i;
  EXPECT_EQ(a.completed, b.completed) << "point " << i;
  EXPECT_EQ(a.m.inval_latency, b.m.inval_latency) << "point " << i;
  EXPECT_EQ(a.m.inval_latency_p50, b.m.inval_latency_p50) << "point " << i;
  EXPECT_EQ(a.m.inval_latency_p90, b.m.inval_latency_p90) << "point " << i;
  EXPECT_EQ(a.m.inval_latency_p99, b.m.inval_latency_p99) << "point " << i;
  EXPECT_EQ(a.m.write_latency, b.m.write_latency) << "point " << i;
  EXPECT_EQ(a.m.messages, b.m.messages) << "point " << i;
  EXPECT_EQ(a.m.traffic_flits, b.m.traffic_flits) << "point " << i;
  EXPECT_EQ(a.m.occupancy, b.m.occupancy) << "point " << i;
  EXPECT_EQ(a.m.request_worms, b.m.request_worms) << "point " << i;
  EXPECT_EQ(a.m.ack_messages, b.m.ack_messages) << "point " << i;
  EXPECT_EQ(a.m.deferred_gathers, b.m.deferred_gathers) << "point " << i;
  EXPECT_EQ(a.makespan, b.makespan) << "point " << i;
  EXPECT_EQ(a.bank_blocked_cycles, b.bank_blocked_cycles) << "point " << i;
  EXPECT_EQ(a.accesses_per_kcycle, b.accesses_per_kcycle) << "point " << i;
  EXPECT_EQ(a.txns_per_kcycle, b.txns_per_kcycle) << "point " << i;
  EXPECT_EQ(a.steady_accesses, b.steady_accesses) << "point " << i;
}

} // namespace

TEST(SeedDerivation, DeterministicDistinctAndBaseDependent) {
  EXPECT_EQ(sweep::derive_point_seed(1, 0), sweep::derive_point_seed(1, 0));
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    seen.insert(sweep::derive_point_seed(42, i));
  }
  EXPECT_EQ(seen.size(), 1000u);  // no collisions across indices
  EXPECT_NE(sweep::derive_point_seed(1, 7), sweep::derive_point_seed(2, 7));
}

TEST(SweepGrid, ExpansionOrderSeedsAndProportionalSharers) {
  sweep::SweepGrid g;
  g.schemes = {core::Scheme::UiUa, core::Scheme::EcCmCg};
  g.meshes = {4, 8};
  g.sharers = {0, 2};  // 0 resolves to d = k
  g.repetitions = 3;
  g.base_seed = 99;
  const auto points = g.expand();
  ASSERT_EQ(points.size(), g.num_points());
  ASSERT_EQ(points.size(), 8u);

  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(points[i].index, i);
    EXPECT_EQ(points[i].seed, sweep::derive_point_seed(99, i));
    EXPECT_EQ(points[i].params.mesh_w, points[i].mesh);
    EXPECT_EQ(points[i].params.scheme, points[i].scheme);
    EXPECT_EQ(i, g.flat_index(points[i].i_variant, points[i].i_pattern,
                              points[i].i_concurrency, points[i].i_mesh,
                              points[i].i_sharers, points[i].i_scheme));
  }
  // Scheme innermost, then sharers, then mesh.
  EXPECT_EQ(points[0].scheme, core::Scheme::UiUa);
  EXPECT_EQ(points[1].scheme, core::Scheme::EcCmCg);
  EXPECT_EQ(points[0].d, 4);  // proportional on the 4x4 mesh
  EXPECT_EQ(points[2].d, 2);
  EXPECT_EQ(points[4].mesh, 8);
  EXPECT_EQ(points[4].d, 8);  // proportional on the 8x8 mesh

  // A custom seed rule sees the point's coordinates.
  g.seed_fn = [](const sweep::SweepGrid&, const sweep::SweepPoint& pt) {
    return 1000 + static_cast<std::uint64_t>(pt.d);
  };
  const auto custom = g.expand();
  EXPECT_EQ(custom[0].seed, 1004u);
  EXPECT_EQ(custom[2].seed, 1002u);
}

TEST(SamplerMerge, MatchesCombinedMoments) {
  sim::Sampler a, b, all;
  for (double v : {1.0, 2.0, 3.0}) {
    a.add(v);
    all.add(v);
  }
  for (double v : {10.0, 20.0}) {
    b.add(v);
    all.add(v);
  }
  a.merge_from(b);
  EXPECT_EQ(a.count(), 5u);
  EXPECT_DOUBLE_EQ(a.sum(), all.sum());
  EXPECT_DOUBLE_EQ(a.mean(), all.mean());
  EXPECT_DOUBLE_EQ(a.min(), 1.0);
  EXPECT_DOUBLE_EQ(a.max(), 20.0);
  EXPECT_NEAR(a.stddev(), all.stddev(), 1e-12);

  // Merging into an empty sampler adopts the other wholesale.
  sim::Sampler empty;
  empty.merge_from(b);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 15.0);
  b.merge_from(sim::Sampler{});  // merging an empty one is a no-op
  EXPECT_EQ(b.count(), 2u);
}

TEST(HistogramMergeTest, BucketsAddAndLayoutMismatchRejected) {
  obs::HistogramMetric a(0.0, 1.0, 16), b(0.0, 1.0, 16);
  a.add(1.5);
  a.add(3.5);
  b.add(1.5);
  b.add(7.5);
  ASSERT_TRUE(a.merge_from(b));
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.histogram().buckets()[1], 2u);
  EXPECT_EQ(a.histogram().buckets()[3], 1u);
  EXPECT_EQ(a.histogram().buckets()[7], 1u);
  EXPECT_DOUBLE_EQ(a.mean(), (1.5 + 3.5 + 1.5 + 7.5) / 4.0);
  EXPECT_DOUBLE_EQ(a.p99(), 8.0);

  obs::HistogramMetric other(0.0, 2.0, 16);  // different bucket width
  other.add(1.0);
  EXPECT_FALSE(a.merge_from(other));
  EXPECT_EQ(a.count(), 4u);  // untouched
}

TEST(RegistryMerge, CountersAddGaugesAddHistogramsFold) {
  obs::MetricsRegistry a, b;
  a.counter("hops").inc(3);
  b.counter("hops").inc(4);
  b.counter("only_b").inc(1);
  a.gauge("cycles").set(10.0);
  b.gauge("cycles").set(32.0);
  a.histogram("lat", 0.0, 1.0, 8).add(2.5);
  b.histogram("lat", 0.0, 1.0, 8).add(4.5);
  b.histogram("only_b_h", 0.0, 1.0, 4).add(0.5);

  ASSERT_TRUE(a.merge_from(b));
  EXPECT_EQ(a.counter("hops").value(), 7u);
  EXPECT_EQ(a.counter("only_b").value(), 1u);
  EXPECT_DOUBLE_EQ(a.gauge("cycles").value(), 42.0);
  EXPECT_EQ(a.find_histogram("lat")->count(), 2u);
  EXPECT_EQ(a.find_histogram("only_b_h")->count(), 1u);

  // A layout clash merges everything else and reports false.
  obs::MetricsRegistry c;
  c.histogram("lat", 0.0, 2.0, 8).add(1.0);
  c.counter("hops").inc(1);
  EXPECT_FALSE(a.merge_from(c));
  EXPECT_EQ(a.counter("hops").value(), 8u);
  EXPECT_EQ(a.find_histogram("lat")->count(), 2u);  // untouched
}

TEST(HeatmapMerge, AddsAndAdoptsAndRejects) {
  obs::LinkHeatmap a(3, 2), b(3, 2);
  a.record_hop(0, 2);
  b.record_hop(0, 2);
  b.record_stall(4, 0);
  ASSERT_TRUE(a.merge_from(b));
  EXPECT_EQ(a.hops(0, 2), 2u);
  EXPECT_EQ(a.stalls(4, 0), 1u);

  obs::LinkHeatmap empty;
  ASSERT_TRUE(empty.merge_from(a));  // adopts dimensions
  EXPECT_EQ(empty.width(), 3);
  EXPECT_EQ(empty.total_hops(), 2u);

  obs::LinkHeatmap wrong(2, 2);
  EXPECT_FALSE(a.merge_from(wrong));
}

TEST(ThreadPoolRunner, WorkerCountInvariance) {
  // A small E4-style grid: proportional sharing over two mesh sizes, three
  // schemes spanning all three frameworks.
  sweep::SweepGrid g;
  g.schemes = {core::Scheme::UiUa, core::Scheme::EcCmCg,
               core::Scheme::WfScSg};
  g.meshes = {4, 6};
  g.sharers = {0};  // d = k
  g.repetitions = 2;
  g.base_seed = 42;
  const auto points = g.expand();
  ASSERT_EQ(points.size(), 6u);

  std::vector<sweep::SweepReport> reports;
  for (int jobs : {1, 2, 8}) {
    sweep::RunnerOptions ro;
    ro.jobs = jobs;
    reports.push_back(sweep::ThreadPoolRunner(ro).run(points));
    ASSERT_TRUE(reports.back().ok);
  }

  for (std::size_t r = 1; r < reports.size(); ++r) {
    for (std::size_t i = 0; i < points.size(); ++i) {
      expect_identical(reports[0].results[i], reports[r].results[i], i);
    }
    // Merged observability folds in point-index order, so the merged
    // registry and heatmaps are identical too — byte for byte.
    EXPECT_EQ(registry_json(reports[0].metrics),
              registry_json(reports[r].metrics));
    ASSERT_EQ(reports[r].heatmaps.size(), 2u);  // one per mesh size
    for (const auto& [dims, hm] : reports[0].heatmaps) {
      ASSERT_TRUE(reports[r].heatmaps.count(dims));
      EXPECT_EQ(heatmap_json(hm), heatmap_json(reports[r].heatmaps.at(dims)));
    }
  }
  EXPECT_GT(reports[0].metrics.counter("inval_txns").value(), 0u);
}

TEST(ThreadPoolRunner, HotspotModeInvariance) {
  sweep::SweepGrid g;
  g.schemes = {core::Scheme::UiUa};
  g.meshes = {4};
  g.sharers = {4};
  g.concurrency = {2};
  g.rounds = 1;
  g.base_seed = 7;
  const auto points = g.expand();
  ASSERT_EQ(points.size(), 1u);

  sweep::RunnerOptions one, four;
  one.jobs = 1;
  four.jobs = 4;
  const auto a = sweep::ThreadPoolRunner(one).run(points);
  const auto b = sweep::ThreadPoolRunner(four).run(points);
  ASSERT_TRUE(a.ok);
  ASSERT_TRUE(b.ok);
  ASSERT_TRUE(a.results[0].ran);
  EXPECT_TRUE(a.results[0].completed);
  EXPECT_GT(a.results[0].m.inval_latency, 0.0);
  EXPECT_GT(a.results[0].makespan, 0.0);
  expect_identical(a.results[0], b.results[0], 0);
  EXPECT_EQ(registry_json(a.metrics), registry_json(b.metrics));
}

TEST(ThreadPoolRunner, CancelsOnFirstFailure) {
  sweep::SweepGrid g;
  g.schemes = {core::Scheme::UiUa};
  g.sharers = {1, 2, 3, 4};
  const auto points = g.expand();
  ASSERT_EQ(points.size(), 4u);

  sweep::RunnerOptions ro;
  ro.jobs = 1;  // serial: the failure at index 1 must skip indices 2 and 3
  const auto rep = sweep::ThreadPoolRunner(ro).run(
      points, [](const sweep::SweepPoint& pt, obs::MetricsRegistry&,
                 obs::LinkHeatmap&) -> sweep::PointResult {
        if (pt.index == 1) throw std::runtime_error("boom");
        sweep::PointResult r;
        r.ran = true;
        return r;
      });
  EXPECT_FALSE(rep.ok);
  EXPECT_NE(rep.error.find("boom"), std::string::npos);
  EXPECT_NE(rep.error.find("point 1"), std::string::npos);
  EXPECT_TRUE(rep.results[0].ran);
  EXPECT_FALSE(rep.results[1].ran);
  EXPECT_FALSE(rep.results[2].ran);
  EXPECT_FALSE(rep.results[3].ran);
}

TEST(SweepGrid, GeneratorAxisExpansion) {
  sweep::SweepGrid g;
  g.schemes = {core::Scheme::UiUa, core::Scheme::EcCmHg};
  g.meshes = {4};
  g.sharers = {4};
  g.gens = {workload::GenKind::Zipfian, workload::GenKind::Migratory};
  g.gen_ops_per_proc = 30;
  g.gen_warmup_accesses = 64;
  g.gen_blocks = 32;
  g.base_seed = 5;
  const auto points = g.expand();
  ASSERT_EQ(points.size(), g.num_points());
  ASSERT_EQ(points.size(), 4u);

  // Generators are the outermost axis; scheme stays innermost.
  EXPECT_EQ(points[0].gen, workload::GenKind::Zipfian);
  EXPECT_EQ(points[1].gen, workload::GenKind::Zipfian);
  EXPECT_EQ(points[2].gen, workload::GenKind::Migratory);
  EXPECT_EQ(points[1].scheme, core::Scheme::EcCmHg);
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& pt = points[i];
    EXPECT_EQ(pt.gen_ops, 30u);
    EXPECT_EQ(pt.gen_warmup, 64u);
    EXPECT_EQ(pt.gen_blocks, 32u);
    EXPECT_EQ(i, g.flat_index(pt.i_gen, pt.i_variant, pt.i_pattern,
                              pt.i_concurrency, pt.i_mesh, pt.i_sharers,
                              pt.i_scheme));
  }

  // The legacy 6-arg flat_index stays valid while gens is the {None}
  // singleton (every pre-streaming caller).
  sweep::SweepGrid legacy;
  legacy.schemes = {core::Scheme::UiUa, core::Scheme::EcCmCg};
  legacy.sharers = {2, 4};
  const auto lp = legacy.expand();
  for (std::size_t i = 0; i < lp.size(); ++i) {
    EXPECT_EQ(lp[i].gen, workload::GenKind::None);
    EXPECT_EQ(i, legacy.flat_index(lp[i].i_variant, lp[i].i_pattern,
                                   lp[i].i_concurrency, lp[i].i_mesh,
                                   lp[i].i_sharers, lp[i].i_scheme));
  }
}

TEST(ThreadPoolRunner, StreamModeInvariance) {
  // Streaming points (gen != None) must honour the same worker-count
  // invariance as trace points: bit-identical per-point results and merged
  // registries at any job count.
  sweep::SweepGrid g;
  g.schemes = {core::Scheme::UiUa, core::Scheme::EcCmHg};
  g.meshes = {4};
  g.sharers = {4};
  g.gens = {workload::GenKind::Zipfian, workload::GenKind::ProducerConsumer};
  g.gen_ops_per_proc = 30;
  g.gen_warmup_accesses = 64;
  g.gen_blocks = 32;
  g.base_seed = 11;
  const auto points = g.expand();
  ASSERT_EQ(points.size(), 4u);

  sweep::RunnerOptions one, four;
  one.jobs = 1;
  four.jobs = 4;
  const auto a = sweep::ThreadPoolRunner(one).run(points);
  const auto b = sweep::ThreadPoolRunner(four).run(points);
  ASSERT_TRUE(a.ok);
  ASSERT_TRUE(b.ok);
  for (std::size_t i = 0; i < points.size(); ++i) {
    ASSERT_TRUE(a.results[i].ran);
    EXPECT_TRUE(a.results[i].completed);
    EXPECT_GT(a.results[i].steady_accesses, 0u);
    EXPECT_GT(a.results[i].accesses_per_kcycle, 0.0);
    expect_identical(a.results[i], b.results[i], i);
  }
  EXPECT_EQ(registry_json(a.metrics), registry_json(b.metrics));
  ASSERT_NE(a.metrics.find_counter("stream.steady_accesses"), nullptr);
  EXPECT_GT(a.metrics.find_counter("stream.steady_accesses")->value(), 0u);

  // e10s is registered and pivots on the generator axis.
  const sweep::NamedGrid* e10s = sweep::named_grid("e10s");
  ASSERT_NE(e10s, nullptr);
  EXPECT_EQ(e10s->axis, sweep::RowAxis::Generator);
  EXPECT_EQ(e10s->grid.gens.size(), 6u);

  // Generator-axis pivot: one row per generator, labelled by name.
  const analysis::Table t = sweep::pivot_by_scheme(
      g, points, a.results, sweep::RowAxis::Generator,
      [](const sweep::PointResult& r) { return r.accesses_per_kcycle; });
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("zipfian"), std::string::npos);
  EXPECT_NE(os.str().find("producer-consumer"), std::string::npos);
  EXPECT_NE(os.str().find("generator"), std::string::npos);
}

TEST(SweepReportOut, PivotAndJson) {
  const sweep::NamedGrid* e3 = sweep::named_grid("e3");
  ASSERT_NE(e3, nullptr);
  EXPECT_EQ(e3->grid.num_points(), 42u);  // 6 d-values x 7 schemes
  EXPECT_EQ(sweep::named_grid("nope"), nullptr);

  sweep::SweepGrid g;
  g.schemes = {core::Scheme::UiUa, core::Scheme::EcCmCg};
  g.sharers = {2, 4};
  g.meshes = {4};
  g.repetitions = 1;
  const auto points = g.expand();
  std::vector<sweep::PointResult> results(points.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    results[i].ran = true;
    results[i].m.inval_latency = 100.0 + static_cast<double>(i);
  }
  const analysis::Table t = sweep::pivot_by_scheme(
      g, points, results, sweep::RowAxis::Sharers,
      [](const sweep::PointResult& r) { return r.m.inval_latency; });
  std::ostringstream plain, json;
  t.print(plain);
  t.print_json(json);
  EXPECT_NE(plain.str().find("UI-UA"), std::string::npos);
  EXPECT_NE(plain.str().find("100.0"), std::string::npos);
  // print_json: numeric cells bare, row objects keyed by header.
  EXPECT_NE(json.str().find("\"UI-UA\": 100.0"), std::string::npos);
  EXPECT_NE(json.str().find("\"d\": 2"), std::string::npos);

  std::ostringstream pj;
  sweep::write_points_json(pj, points, results);
  EXPECT_NE(pj.str().find("\"scheme\": \"EC-CM-CG\""), std::string::npos);
  EXPECT_NE(pj.str().find("\"inval_latency\": 103"), std::string::npos);
  long depth = 0;
  for (char c : pj.str()) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}
