// The streaming workload engine: generator determinism, binary trace
// round-trips (byte-identical, and replay-equivalent for a recorded app
// trace), and StreamRunner's warmup / windowed steady-state statistics.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "dsm/machine.h"
#include "obs/metrics.h"
#include "workload/apps.h"
#include "workload/binary_trace.h"
#include "workload/generators.h"
#include "workload/stream_runner.h"

namespace mdw::workload {
namespace {

dsm::SystemParams small_params(core::Scheme s) {
  dsm::SystemParams p;
  p.mesh_w = 4;
  p.mesh_h = 4;
  p.scheme = s;
  p.cache_lines = 128;
  return p;
}

GenConfig small_config(GenKind kind, std::uint64_t seed = 9) {
  GenConfig cfg;
  cfg.kind = kind;
  cfg.nprocs = 16;
  cfg.nblocks = 32;
  cfg.ops_per_proc = 60;
  cfg.seed = seed;
  cfg.group = 4;
  return cfg;
}

// --- alias table -----------------------------------------------------------

TEST(AliasTable, DegenerateWeightAlwaysWins) {
  AliasTable t({0.0, 0.0, 5.0, 0.0});
  sim::Rng rng(1);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(t.sample(rng), 2u);
}

TEST(AliasTable, SkewedWeightsMatchFrequencies) {
  // 8:2:1 weights; 20k draws keep each empirical share within ~2% absolute.
  AliasTable t({8.0, 2.0, 1.0});
  sim::Rng rng(2);
  int counts[3] = {0, 0, 0};
  const int draws = 20000;
  for (int i = 0; i < draws; ++i) ++counts[t.sample(rng)];
  EXPECT_NEAR(counts[0] / static_cast<double>(draws), 8.0 / 11.0, 0.02);
  EXPECT_NEAR(counts[1] / static_cast<double>(draws), 2.0 / 11.0, 0.02);
  EXPECT_NEAR(counts[2] / static_cast<double>(draws), 1.0 / 11.0, 0.02);
}

// --- generators ------------------------------------------------------------

TEST(Generators, DeterministicAcrossInstancesAndReset) {
  const noc::MeshShape mesh(4, 4);
  for (GenKind kind : kAllGenKinds) {
    const GenConfig cfg = small_config(kind);
    const auto a = make_generator(cfg, mesh);
    const auto b = make_generator(cfg, mesh);
    const auto bytes_a = encode_trace(materialize(*a, 1000));
    const auto bytes_b = encode_trace(materialize(*b, 1000));
    EXPECT_EQ(bytes_a, bytes_b) << gen_name(kind);

    a->reset();
    EXPECT_EQ(encode_trace(materialize(*a, 1000)), bytes_a)
        << gen_name(kind) << " after reset";

    GenConfig other = cfg;
    other.seed = cfg.seed + 1;
    const auto c = make_generator(other, mesh);
    if (kind != GenKind::ProducerConsumer && kind != GenKind::FalseSharing &&
        kind != GenKind::Migratory) {
      // Seeds drive the op mix for the sampled kinds; the rotation kinds
      // only shift their start cursor, which a tiny config may not expose.
      EXPECT_NE(encode_trace(materialize(*c, 1000)), bytes_a)
          << gen_name(kind);
    }
  }
}

TEST(Generators, EveryProcStreamsExactlyOpsPerProc) {
  const noc::MeshShape mesh(4, 4);
  for (GenKind kind : kAllGenKinds) {
    const auto src = make_generator(small_config(kind), mesh);
    ASSERT_EQ(src->nprocs(), 16);
    const Trace t = materialize(*src, 1000);
    for (int p = 0; p < 16; ++p) {
      EXPECT_EQ(t.per_proc[p].size(), 60u)
          << gen_name(kind) << " proc " << p;
    }
    // Exhausted after materialize.
    TraceOp op;
    EXPECT_FALSE(src->next(0, op));
  }
}

TEST(Generators, KindShapesTheOpMix) {
  const noc::MeshShape mesh(4, 4);

  const Trace rm =
      materialize(*make_generator(small_config(GenKind::ReadMostly), mesh),
                  1000);
  const Trace wh =
      materialize(*make_generator(small_config(GenKind::WriteHeavy), mesh),
                  1000);
  auto writes = [](const Trace& t) {
    std::size_t w = 0;
    for (const auto& v : t.per_proc) {
      for (const auto& op : v) w += (op.kind == OpKind::Write);
    }
    return w;
  };
  // 960 ops total: ~5% vs ~60% writes.
  EXPECT_LT(writes(rm), 100u);
  EXPECT_GT(writes(wh), 450u);

  // False sharing: every op is a write carrying a word index.
  const Trace fs = materialize(
      *make_generator(small_config(GenKind::FalseSharing), mesh), 1000);
  EXPECT_EQ(writes(fs), fs.total_ops());

  // Migratory: reads and writes strictly alternate per proc (RMW pairs).
  const Trace mig = materialize(
      *make_generator(small_config(GenKind::Migratory), mesh), 1000);
  for (const auto& stream : mig.per_proc) {
    for (std::size_t i = 0; i < stream.size(); ++i) {
      EXPECT_EQ(stream[i].kind, i % 2 ? OpKind::Write : OpKind::Read);
      if (i % 2) {
        EXPECT_EQ(stream[i].addr, stream[i - 1].addr);
      }
    }
  }
}

TEST(Generators, ProducerConsumerHasOneWriterPerBlock) {
  const noc::MeshShape mesh(4, 4);
  const Trace t = materialize(
      *make_generator(small_config(GenKind::ProducerConsumer), mesh), 1000);
  std::map<BlockAddr, std::vector<int>> writers;
  for (int p = 0; p < t.nprocs; ++p) {
    for (const auto& op : t.per_proc[p]) {
      if (op.kind == OpKind::Write) {
        auto& w = writers[op.addr];
        if (w.empty() || w.back() != p) w.push_back(p);
      }
    }
  }
  for (const auto& [addr, procs] : writers) {
    EXPECT_EQ(procs.size(), 1u) << "block " << addr << " has >1 producer";
  }
}

// --- binary trace format ---------------------------------------------------

void expect_traces_equal(const Trace& a, const Trace& b) {
  ASSERT_EQ(a.nprocs, b.nprocs);
  ASSERT_EQ(a.num_barriers, b.num_barriers);
  ASSERT_EQ(a.per_proc.size(), b.per_proc.size());
  for (std::size_t p = 0; p < a.per_proc.size(); ++p) {
    ASSERT_EQ(a.per_proc[p].size(), b.per_proc[p].size()) << "proc " << p;
    for (std::size_t i = 0; i < a.per_proc[p].size(); ++i) {
      EXPECT_EQ(a.per_proc[p][i].kind, b.per_proc[p][i].kind);
      EXPECT_EQ(a.per_proc[p][i].addr, b.per_proc[p][i].addr);
      EXPECT_EQ(a.per_proc[p][i].arg, b.per_proc[p][i].arg);
    }
  }
}

TEST(BinaryTrace, RoundTripIsByteIdentical) {
  const Trace t = barnes_hut_trace(16, 32, 1, 5);
  const auto bytes = encode_trace(t);
  Trace back;
  std::string err;
  ASSERT_TRUE(decode_trace(bytes.data(), bytes.size(), back, &err)) << err;
  expect_traces_equal(t, back);
  EXPECT_EQ(encode_trace(back), bytes);  // canonical form
}

TEST(BinaryTrace, HeaderAndTruncationRejected) {
  const Trace t = random_trace(4, 10, 8, 0.5, 3);
  auto bytes = encode_trace(t);
  Trace out;
  std::string err;

  // Truncation at every prefix length must fail cleanly, never crash.
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    EXPECT_FALSE(decode_trace(bytes.data(), cut, out, nullptr)) << cut;
  }
  // Trailing garbage is rejected too.
  auto extra = bytes;
  extra.push_back(0);
  EXPECT_FALSE(decode_trace(extra.data(), extra.size(), out, &err));

  auto bad_magic = bytes;
  bad_magic[0] = 'X';
  EXPECT_FALSE(decode_trace(bad_magic.data(), bad_magic.size(), out, &err));
  EXPECT_NE(err.find("magic"), std::string::npos);

  auto bad_version = bytes;
  bad_version[4] = 0x7F;
  EXPECT_FALSE(
      decode_trace(bad_version.data(), bad_version.size(), out, &err));
  EXPECT_NE(err.find("version"), std::string::npos);
}

TEST(BinaryTrace, CorruptPayloadsRejectedWithClearErrors) {
  // Hand-built malformed payloads: each must fail with a message naming the
  // problem, and none may crash or attempt an absurd allocation.
  auto header = [] {
    std::vector<std::uint8_t> b{'M', 'D', 'W', 'T'};
    for (int i = 0; i < 4; ++i) {
      b.push_back(
          static_cast<std::uint8_t>((kBinaryTraceVersion >> (8 * i)) & 0xFF));
    }
    return b;
  };
  auto varint = [](std::vector<std::uint8_t>& b, std::uint64_t v) {
    while (v >= 0x80) {
      b.push_back(static_cast<std::uint8_t>(v) | 0x80u);
      v >>= 7;
    }
    b.push_back(static_cast<std::uint8_t>(v));
  };
  Trace out;
  std::string err;

  // An op count far beyond the remaining payload (here 2^60) must be
  // rejected before the decoder tries to reserve space for it.
  {
    auto b = header();
    varint(b, 1);                      // nprocs
    varint(b, 0);                      // barriers
    varint(b, 1ull << 60);             // op count, but no ops follow
    EXPECT_FALSE(decode_trace(b.data(), b.size(), out, &err));
    EXPECT_NE(err.find("op count exceeds"), std::string::npos) << err;
  }
  // A Think/Barrier arg wider than 32 bits would silently truncate.
  {
    auto b = header();
    varint(b, 1);
    varint(b, 0);
    varint(b, 1);                      // one op
    b.push_back(static_cast<std::uint8_t>(OpKind::Think) | 0x4u);
    varint(b, 1ull << 40);             // oversized arg
    EXPECT_FALSE(decode_trace(b.data(), b.size(), out, &err));
    EXPECT_NE(err.find("32 bits"), std::string::npos) << err;
  }
  // A delta stepping below address zero wraps to a bogus huge block.
  {
    auto b = header();
    varint(b, 1);
    varint(b, 0);
    varint(b, 1);
    b.push_back(static_cast<std::uint8_t>(OpKind::Read));
    varint(b, 9);                      // zigzag(-5) from prev=0
    EXPECT_FALSE(decode_trace(b.data(), b.size(), out, &err));
    EXPECT_NE(err.find("underflow"), std::string::npos) << err;
  }
  // Reserved tag bits must be rejected.
  {
    auto b = header();
    varint(b, 1);
    varint(b, 0);
    varint(b, 1);
    b.push_back(0xF0);
    EXPECT_FALSE(decode_trace(b.data(), b.size(), out, &err));
    EXPECT_NE(err.find("tag"), std::string::npos) << err;
  }
  // A corrupt file on disk surfaces the decode error through load_trace.
  {
    const std::string path = ::testing::TempDir() + "/mdw_test_corrupt.mdwt";
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    const char junk[] = "this is not a trace";
    std::fwrite(junk, 1, sizeof junk, f);
    std::fclose(f);
    EXPECT_FALSE(load_trace(path, out, &err));
    EXPECT_NE(err.find("magic"), std::string::npos) << err;
  }
}

TEST(BinaryTrace, FileRoundTripAndLoadedReplayFingerprint) {
  // A recorded app trace saved to disk and loaded back must replay to the
  // same machine-stats fingerprint as the in-memory original.
  const Trace t = barnes_hut_trace(16, 32, 1, 7);
  const std::string path =
      ::testing::TempDir() + "/mdw_test_barnes.mdwt";
  std::string err;
  ASSERT_TRUE(save_trace(t, path, &err)) << err;
  Trace loaded;
  ASSERT_TRUE(load_trace(path, loaded, &err)) << err;
  expect_traces_equal(t, loaded);

  dsm::Machine orig(small_params(core::Scheme::EcCmHg));
  dsm::Machine replay(small_params(core::Scheme::EcCmHg));
  const auto r1 = TraceRunner(orig, t).run();
  const auto r2 = TraceRunner(replay, loaded).run();
  ASSERT_TRUE(r1.completed);
  ASSERT_TRUE(r2.completed);
  EXPECT_EQ(r1.cycles, r2.cycles);
  EXPECT_EQ(r1.accesses, r2.accesses);
  EXPECT_EQ(orig.stats().inval_txns, replay.stats().inval_txns);
  EXPECT_EQ(orig.stats().inval_latency.sum(),
            replay.stats().inval_latency.sum());
  EXPECT_EQ(orig.network().stats().link_flit_hops,
            replay.network().stats().link_flit_hops);
  EXPECT_EQ(orig.engine().now(), replay.engine().now());
}

TEST(BinaryTrace, MissingFileReportsError) {
  Trace out;
  std::string err;
  EXPECT_FALSE(load_trace("/nonexistent/dir/trace.mdwt", out, &err));
  EXPECT_FALSE(err.empty());
}

// --- stream runner ---------------------------------------------------------

struct Fingerprint {
  Cycle cycles = 0;
  std::size_t accesses = 0;
  std::uint64_t steady_accesses = 0;
  std::uint64_t steady_txns = 0;
  double lat_mean = 0;
  std::uint64_t inval_txns = 0;
  std::uint64_t link_flit_hops = 0;
  Cycle end = 0;

  bool operator==(const Fingerprint&) const = default;
};

Fingerprint run_stream(GenKind kind, std::uint64_t seed) {
  dsm::Machine m(small_params(core::Scheme::EcCmHg));
  const auto src =
      make_generator(small_config(kind, seed), m.network().mesh());
  StreamRunnerOptions opt;
  opt.warmup_accesses = 64;
  opt.window_cycles = 2000;
  StreamRunner runner(m, *src, opt);
  const StreamResult r = runner.run();
  EXPECT_TRUE(r.completed) << gen_name(kind);
  EXPECT_EQ(m.check_coherence(), "") << gen_name(kind);
  Fingerprint fp;
  fp.cycles = r.cycles;
  fp.accesses = r.accesses;
  fp.steady_accesses = r.steady_accesses;
  fp.steady_txns = r.steady_txns;
  fp.lat_mean = r.lat_mean;
  fp.inval_txns = m.stats().inval_txns;
  fp.link_flit_hops = m.network().stats().link_flit_hops;
  fp.end = m.engine().now();
  return fp;
}

TEST(StreamRunner, EveryGeneratorCompletesCoherently) {
  for (GenKind kind : kAllGenKinds) {
    const Fingerprint fp = run_stream(kind, 9);
    EXPECT_EQ(fp.accesses, 16u * 60u) << gen_name(kind);
    EXPECT_GT(fp.link_flit_hops, 0u) << gen_name(kind);
    if (kind != GenKind::FalseSharing) {
      // Pure-write streams bounce ownership without ever building a sharer
      // set, so they complete with zero multi-sharer invalidations.
      EXPECT_GT(fp.inval_txns, 0u) << gen_name(kind);
    }
  }
}

TEST(StreamRunner, SameSeedSameFingerprint) {
  EXPECT_EQ(run_stream(GenKind::Zipfian, 9), run_stream(GenKind::Zipfian, 9));
  EXPECT_NE(run_stream(GenKind::Zipfian, 9).link_flit_hops,
            run_stream(GenKind::Zipfian, 10).link_flit_hops);
}

TEST(StreamRunner, WarmupAndWindowsPartitionTheSteadyState) {
  dsm::Machine m(small_params(core::Scheme::UiUa));
  const auto src =
      make_generator(small_config(GenKind::ProducerConsumer, 4),
                     m.network().mesh());
  StreamRunnerOptions opt;
  opt.warmup_accesses = 100;
  opt.window_cycles = 1000;
  StreamRunner runner(m, *src, opt);
  const StreamResult r = runner.run();
  ASSERT_TRUE(r.completed);
  EXPECT_GT(r.warmup_end, 0u);
  EXPECT_LT(r.steady_accesses, r.accesses);

  // Window rows tile [warmup_end, end) and sum to the steady aggregates.
  ASSERT_FALSE(r.windows.empty());
  std::uint64_t acc = 0, txns = 0;
  Cycle expect_start = r.warmup_end;
  for (const auto& w : r.windows) {
    EXPECT_EQ(w.start, expect_start);
    EXPECT_GT(w.length, 0u);
    expect_start = w.start + opt.window_cycles;
    acc += w.accesses;
    txns += w.inval_txns;
  }
  EXPECT_EQ(acc, r.steady_accesses);
  EXPECT_EQ(txns, r.steady_txns);
  EXPECT_GT(r.accesses_per_kcycle, 0.0);

  // snapshot_metrics mirrors the aggregates into a registry.
  obs::MetricsRegistry reg;
  runner.snapshot_metrics(reg);
  EXPECT_EQ(reg.counter("stream.steady_accesses").value(),
            r.steady_accesses);
  EXPECT_EQ(reg.counter("stream.steady_txns").value(), r.steady_txns);
  EXPECT_EQ(reg.find_histogram("stream.steady_inval_latency")->count(),
            r.steady_txns);
}

TEST(StreamRunner, ZeroWarmupCountsEverything) {
  dsm::Machine m(small_params(core::Scheme::UiUa));
  const auto src =
      make_generator(small_config(GenKind::Zipfian, 6), m.network().mesh());
  StreamRunnerOptions opt;
  opt.warmup_accesses = 0;
  StreamRunner runner(m, *src, opt);
  const StreamResult r = runner.run();
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.warmup_end, 0u);
  EXPECT_EQ(r.steady_accesses, static_cast<std::uint64_t>(r.accesses));
}

TEST(StreamRunner, TraceSourceReplayMatchesTraceRunner) {
  // The TraceRunner wrapper and a hand-built StreamRunner over the same
  // trace must produce identical replays.
  const Trace t = lu_trace(16, 32, 8, 6);
  dsm::Machine a(small_params(core::Scheme::EcCmCg));
  dsm::Machine b(small_params(core::Scheme::EcCmCg));
  const auto ra = TraceRunner(a, t).run();
  TraceSource src(t);
  StreamRunnerOptions opt;
  opt.windowed = false;
  StreamRunner runner(b, src, opt);
  const auto rb = runner.run();
  ASSERT_TRUE(ra.completed);
  ASSERT_TRUE(rb.completed);
  EXPECT_EQ(ra.cycles, rb.cycles);
  EXPECT_EQ(ra.accesses, rb.accesses);
  EXPECT_EQ(a.stats().inval_txns, b.stats().inval_txns);
  EXPECT_EQ(a.network().stats().link_flit_hops,
            b.network().stats().link_flit_hops);
}

TEST(RunResultProgress, ReportsPerProcRetirementAndStalls) {
  // Complete run: every proc retired its whole stream.
  dsm::Machine m(small_params(core::Scheme::UiUa));
  const Trace t = random_trace(16, 20, 8, 0.3, 2);
  const auto r = TraceRunner(m, t).run();
  ASSERT_TRUE(r.completed);
  ASSERT_EQ(r.procs.size(), 16u);
  for (const auto& pp : r.procs) {
    EXPECT_TRUE(pp.done);
    EXPECT_EQ(pp.ops_retired, 20u);
    EXPECT_FALSE(pp.at_barrier);
  }
  EXPECT_EQ(r.describe_stalls(), "");

  // Lopsided barrier: proc 0 waits forever, the budget expires, and the
  // stall report names the parked processor and barrier id.
  Trace stuck;
  stuck.nprocs = 4;
  stuck.num_barriers = 1;
  stuck.per_proc.resize(4);
  stuck.per_proc[0].push_back({OpKind::Barrier, 0, 0});
  dsm::Machine m2(small_params(core::Scheme::UiUa));
  const auto rs = TraceRunner(m2, stuck).run(20'000);
  EXPECT_FALSE(rs.completed);
  ASSERT_EQ(rs.procs.size(), 4u);
  EXPECT_TRUE(rs.procs[0].at_barrier);
  EXPECT_EQ(rs.procs[0].barrier_id, 0u);
  EXPECT_FALSE(rs.procs[0].done);
  EXPECT_TRUE(rs.procs[1].done);
  const std::string stalls = rs.describe_stalls();
  EXPECT_NE(stalls.find("proc 0"), std::string::npos);
  EXPECT_NE(stalls.find("at barrier 0"), std::string::npos);
}

TEST(RunResultProgress, DescribeStallsOutputIsPinned) {
  // The exact report format, pinned: tooling (and humans reading CI logs)
  // depend on it.  describe_stalls is a pure function of RunResult, so the
  // pin constructs the result by hand.
  RunResult r;
  r.completed = false;
  r.procs.resize(4);
  r.procs[0].ops_retired = 17;
  r.procs[0].at_barrier = true;
  r.procs[0].barrier_id = 2;
  r.procs[1].done = true;       // finished procs are omitted
  r.procs[1].ops_retired = 40;
  r.procs[2].ops_retired = 23;  // stuck mid-access
  r.procs[2].home_shard = 1;
  r.procs[3].done = true;
  r.home_queue_depths = {0, 0, 0, 0, 0, 3, 0, 0, 0, 1};
  EXPECT_EQ(r.describe_stalls(),
            "proc 0: 17 ops, at barrier 2; proc 2: 23 ops, in flight "
            "(home shard 1); home queues: node 5=3, node 9=1");

  // A completed run reports nothing, whatever the fields hold.
  r.completed = true;
  EXPECT_EQ(r.describe_stalls(), "");

  // Queue depths alone (every proc mid-access but none parked) still print.
  RunResult q;
  q.completed = false;
  q.home_queue_depths = {0, 2};
  EXPECT_EQ(q.describe_stalls(), "home queues: node 1=2");
}

TEST(RunResultProgress, TimeoutSamplesHomeQueueDepths) {
  // A run that exhausts its budget under heavy same-home write contention
  // with a serialized (depth 1) home records the queue it was stuck behind.
  auto p = small_params(core::Scheme::UiUa);
  p.svc.pipeline_depth = 1;
  dsm::Machine m(p);
  // Every proc hammers blocks homed at node 5.
  Trace t;
  t.nprocs = 16;
  t.per_proc.resize(16);
  for (int proc = 0; proc < 16; ++proc) {
    for (int k = 0; k < 30; ++k) {
      t.per_proc[static_cast<std::size_t>(proc)].push_back(
          {OpKind::Write,
           static_cast<BlockAddr>(16 * ((proc + k) % 8 + 1) + 5), 0});
    }
  }
  const auto r = TraceRunner(m, t).run(2'000);  // far too small a budget
  ASSERT_FALSE(r.completed);
  // The snapshot reflects the timeout instant, NOT the post-drain state:
  // some procs must still be mid-access, so the report is never empty, and
  // the per-home queue vector is populated (depth values are load-timing
  // dependent; nonzero depths are pinned deterministically in test_svc).
  ASSERT_EQ(r.home_queue_depths.size(), 16u);
  bool any_in_flight = false;
  for (const auto& pp : r.procs) any_in_flight |= !pp.done;
  EXPECT_TRUE(any_in_flight);
  EXPECT_NE(r.describe_stalls(), "");
}

} // namespace
} // namespace mdw::workload
