// Deterministic protocol scenario tests on a small machine, parameterized
// over every grouping scheme: misses, upgrades, recalls, writebacks, and the
// invalidation transaction itself.
#include <gtest/gtest.h>

#include "dsm/machine.h"

namespace mdw::dsm {
namespace {

SystemParams small_params(core::Scheme s) {
  SystemParams p;
  p.mesh_w = 4;
  p.mesh_h = 4;
  p.scheme = s;
  p.cache_lines = 64;
  return p;
}

constexpr Cycle kBudget = 2'000'000;

class ProtocolScenarios : public ::testing::TestWithParam<core::Scheme> {
protected:
  void SetUp() override {
    m = std::make_unique<Machine>(small_params(GetParam()));
  }

  std::uint64_t do_read(NodeId n, BlockAddr a) {
    std::uint64_t got = ~0ull;
    bool done = false;
    m->node(n).read(a, [&](std::uint64_t v) {
      got = v;
      done = true;
    });
    EXPECT_TRUE(m->engine().run_until([&] { return done; }, kBudget));
    return got;
  }

  void do_write(NodeId n, BlockAddr a, std::uint64_t v) {
    bool done = false;
    m->node(n).write(a, v, [&] { done = true; });
    EXPECT_TRUE(m->engine().run_until([&] { return done; }, kBudget));
  }

  void settle() {
    EXPECT_TRUE(m->engine().run_to_quiescence(kBudget));
    const std::string err = m->check_coherence();
    EXPECT_TRUE(err.empty()) << err;
  }

  std::unique_ptr<Machine> m;
};

TEST_P(ProtocolScenarios, CleanReadMiss) {
  const BlockAddr a = 5;  // home = node 5
  EXPECT_EQ(do_read(0, a), 0u);
  EXPECT_EQ(m->node(0).cache().lookup(a), LineState::Shared);
  const auto* e = m->node(5).directory().find(a);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->state, DirState::Shared);
  EXPECT_TRUE(e->sharers.contains(0));
  settle();
}

TEST_P(ProtocolScenarios, ReadHitAfterMiss) {
  const BlockAddr a = 5;
  do_read(0, a);
  const auto before = m->node(0).cache().stats().hits;
  do_read(0, a);
  EXPECT_EQ(m->node(0).cache().stats().hits, before + 1);
  settle();
}

TEST_P(ProtocolScenarios, WriteMissGrantsExclusive) {
  const BlockAddr a = 7;
  do_write(2, a, 123);
  EXPECT_EQ(m->node(2).cache().lookup(a), LineState::Modified);
  const auto* e = m->node(7).directory().find(a);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->state, DirState::Exclusive);
  EXPECT_EQ(e->owner, 2);
  settle();
}

TEST_P(ProtocolScenarios, ReadAfterRemoteWriteRecallsData) {
  const BlockAddr a = 7;
  do_write(2, a, 123);
  EXPECT_EQ(do_read(9, a), 123u);
  // The writer keeps a Shared copy after the downgrade.
  EXPECT_EQ(m->node(2).cache().lookup(a), LineState::Shared);
  const auto* e = m->node(7).directory().find(a);
  EXPECT_EQ(e->state, DirState::Shared);
  EXPECT_TRUE(e->sharers.contains(2));
  EXPECT_TRUE(e->sharers.contains(9));
  settle();
}

TEST_P(ProtocolScenarios, WriteToSharedBlockInvalidatesAllSharers) {
  const BlockAddr a = 3;
  // Build up 7 sharers.
  std::vector<NodeId> readers{0, 1, 2, 5, 9, 12, 15};
  for (NodeId r : readers) EXPECT_EQ(do_read(r, a), 0u);
  do_write(6, a, 999);
  for (NodeId r : readers) {
    EXPECT_EQ(m->node(r).cache().lookup(a), LineState::Invalid)
        << "sharer " << r;
  }
  const auto* e = m->node(3).directory().find(a);
  EXPECT_EQ(e->state, DirState::Exclusive);
  EXPECT_EQ(e->owner, 6);
  EXPECT_EQ(m->stats().inval_txns, 1u);
  EXPECT_EQ(do_read(1, a), 999u);
  settle();
}

TEST_P(ProtocolScenarios, UpgradeFromSharedExcludesRequester) {
  const BlockAddr a = 3;
  do_read(6, a);   // requester becomes a sharer first
  do_read(1, a);
  do_read(2, a);
  do_write(6, a, 50);  // upgrade: only nodes 1 and 2 need invalidation
  EXPECT_EQ(m->stats().inval_txns, 1u);
  EXPECT_DOUBLE_EQ(m->stats().inval_sharers.mean(), 2.0);
  EXPECT_EQ(m->node(6).cache().lookup(a), LineState::Modified);
  settle();
}

TEST_P(ProtocolScenarios, WriteAfterWriteRecalls) {
  const BlockAddr a = 11;
  do_write(0, a, 1);
  do_write(15, a, 2);
  EXPECT_EQ(m->node(0).cache().lookup(a), LineState::Invalid);
  EXPECT_EQ(m->node(15).cache().lookup(a), LineState::Modified);
  EXPECT_EQ(do_read(4, a), 2u);
  settle();
}

TEST_P(ProtocolScenarios, HomeOwnCopyInvalidatedLocally) {
  const BlockAddr a = 3;  // home = 3
  do_read(3, a);          // the home caches its own block
  do_read(1, a);
  do_write(9, a, 77);
  EXPECT_EQ(m->node(3).cache().lookup(a), LineState::Invalid);
  // Only node 1 needed a network invalidation.
  EXPECT_DOUBLE_EQ(m->stats().inval_sharers.mean(), 1.0);
  settle();
}

TEST_P(ProtocolScenarios, DirtyEvictionWritesBack) {
  auto p = small_params(GetParam());
  p.cache_lines = 2;  // force conflict evictions
  m = std::make_unique<Machine>(p);
  do_write(0, 1, 10);
  do_write(0, 3, 30);  // maps to the same set as 1 (2 lines)
  do_write(0, 5, 50);
  settle();
  // The evicted blocks' homes must have absorbed the writebacks.
  const auto* e1 = m->node(1).directory().find(1);
  ASSERT_NE(e1, nullptr);
  EXPECT_EQ(e1->state, DirState::Uncached);
  EXPECT_EQ(e1->mem_value, 10u);
  EXPECT_EQ(do_read(2, 1), 10u);
  settle();
}

TEST_P(ProtocolScenarios, WriteMissAfterOwnDirtyEviction) {
  // Writer owns a block, evicts it (writeback in flight), then writes it
  // again: the home must wait for the writeback and re-grant.
  auto p = small_params(GetParam());
  p.cache_lines = 2;
  m = std::make_unique<Machine>(p);
  do_write(0, 1, 10);
  do_write(0, 3, 30);  // evicts block 1
  do_write(0, 1, 11);  // re-acquire
  EXPECT_EQ(do_read(5, 1), 11u);
  settle();
}

TEST_P(ProtocolScenarios, SequentialValuesVisibleInOrder) {
  const BlockAddr a = 2;
  for (std::uint64_t v = 1; v <= 5; ++v) {
    do_write(static_cast<NodeId>(v), a, v);
    EXPECT_EQ(do_read(static_cast<NodeId>(v + 5), a), v);
  }
  settle();
}

TEST_P(ProtocolScenarios, BroadcastInvalidation) {
  const BlockAddr a = 0;
  for (NodeId r = 1; r < 16; ++r) do_read(r, a);
  do_write(0, a, 42);  // home itself writes; 15 remote sharers
  for (NodeId r = 1; r < 16; ++r) {
    EXPECT_EQ(m->node(r).cache().lookup(a), LineState::Invalid);
  }
  EXPECT_EQ(m->node(0).cache().lookup(a), LineState::Modified);
  settle();
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, ProtocolScenarios,
                         ::testing::ValuesIn(core::kAllSchemes),
                         [](const auto& info) {
                           std::string n(core::scheme_name(info.param));
                           for (auto& c : n)
                             if (c == '-') c = '_';
                           return n;
                         });

} // namespace
} // namespace mdw::dsm
