// Tests for the measurement harnesses and the table printer, including the
// headline cross-scheme orderings on a small mesh (fast versions of the
// bench experiments).
#include <gtest/gtest.h>

#include <sstream>

#include "analysis/experiment.h"
#include "analysis/table.h"

namespace mdw::analysis {
namespace {

InvalExperimentConfig quick(core::Scheme s, int d) {
  InvalExperimentConfig cfg;
  cfg.mesh = 8;
  cfg.scheme = s;
  cfg.d = d;
  cfg.repetitions = 6;
  cfg.seed = 99;
  return cfg;
}

TEST(Experiment, MeasuresSaneValues) {
  const auto m = measure_invalidations(quick(core::Scheme::UiUa, 8));
  EXPECT_GT(m.inval_latency, 0);
  EXPECT_GT(m.write_latency, m.inval_latency);  // write includes req + grant
  EXPECT_DOUBLE_EQ(m.request_worms, 8.0);       // UI-UA: one per sharer
  EXPECT_DOUBLE_EQ(m.ack_messages, 8.0);
  EXPECT_GT(m.traffic_flits, 0);
  EXPECT_GT(m.occupancy, 0);
}

TEST(Experiment, MultidestinationBeatsUnicastAtHighSharing) {
  const int d = 20;
  const auto ui = measure_invalidations(quick(core::Scheme::UiUa, d));
  const auto mi = measure_invalidations(quick(core::Scheme::EcCmUa, d));
  const auto ma = measure_invalidations(quick(core::Scheme::EcCmHg, d));
  // The paper's headline orderings.
  EXPECT_LT(mi.request_worms, ui.request_worms);
  EXPECT_LT(ma.messages, mi.messages);
  EXPECT_LT(mi.inval_latency, ui.inval_latency);
  EXPECT_LT(ma.inval_latency, ui.inval_latency);
  EXPECT_LT(ma.occupancy, ui.occupancy);
  EXPECT_LT(mi.traffic_flits, ui.traffic_flits);
}

TEST(Experiment, GatherSchemesCutAckMessages) {
  const int d = 16;
  const auto cg = measure_invalidations(quick(core::Scheme::EcCmCg, d));
  const auto hg = measure_invalidations(quick(core::Scheme::EcCmHg, d));
  const auto ua = measure_invalidations(quick(core::Scheme::EcCmUa, d));
  EXPECT_LT(cg.ack_messages, ua.ack_messages);
  EXPECT_LE(hg.ack_messages, cg.ack_messages);
  EXPECT_LE(hg.ack_messages, 4.0);
}

TEST(Experiment, WfSerpentineUsesFewestRequestWorms) {
  const int d = 20;
  const auto ec = measure_invalidations(quick(core::Scheme::EcCmUa, d));
  const auto wf = measure_invalidations(quick(core::Scheme::WfScUa, d));
  EXPECT_LT(wf.request_worms, ec.request_worms);
  EXPECT_LE(wf.request_worms, 2.0);
}

TEST(Experiment, ColumnPatternFavoursColumnScheme) {
  auto cfg = quick(core::Scheme::EcCmCg, 6);
  cfg.pattern = workload::SharerPattern::SameColumn;
  const auto col = measure_invalidations(cfg);
  // A whole column folds into at most 2 worms + 2 combined acks.
  EXPECT_LE(col.request_worms, 2.0);
  EXPECT_LE(col.ack_messages, 2.0);
}

TEST(Experiment, SingleTxnHarnessIsDeterministic) {
  dsm::SystemParams p;
  p.mesh_w = p.mesh_h = 8;
  p.scheme = core::Scheme::EcCmCg;
  const noc::MeshShape mesh(8, 8);
  const NodeId home = mesh.id_of({3, 3});
  const NodeId writer = mesh.id_of({6, 6});
  std::vector<NodeId> sharers{mesh.id_of({3, 0}), mesh.id_of({3, 6}),
                              mesh.id_of({5, 3}), mesh.id_of({1, 1})};
  const auto a = measure_single_txn(p, home, writer, sharers);
  const auto b = measure_single_txn(p, home, writer, sharers);
  EXPECT_DOUBLE_EQ(a.inval_latency, b.inval_latency);
  EXPECT_DOUBLE_EQ(a.traffic_flits, b.traffic_flits);
  EXPECT_GT(a.inval_latency, 0);
}

TEST(Experiment, HotspotCompletesAndReportsLoad) {
  HotspotConfig cfg;
  cfg.mesh = 8;
  cfg.scheme = core::Scheme::UiUa;
  cfg.d = 8;
  cfg.concurrent = 4;
  cfg.rounds = 2;
  const auto m = measure_hotspot(cfg);
  EXPECT_GT(m.inval_latency, 0);
  EXPECT_GT(m.makespan, m.inval_latency);
  EXPECT_GT(m.traffic_flits, 0);
}

TEST(Experiment, HotSpotLinkLoadRelievedByMultidestination) {
  // The paper's hot-spot anatomy: UI-UA concentrates flits on the links
  // around the home; MI-MA flattens the profile.
  const noc::MeshShape mesh(8, 8);
  const NodeId home = mesh.id_of({4, 4});
  const auto ui =
      measure_link_load(core::Scheme::UiUa, 8, home, 16, 3, 7);
  const auto ma =
      measure_link_load(core::Scheme::EcCmHg, 8, home, 16, 3, 7);
  // Hot-spot exists under UI-UA: home-adjacent links far above average.
  EXPECT_GT(ui.home_adjacent_mean, 5 * ui.elsewhere_mean);
  // ... and is substantially relieved by the MI-MA scheme.
  EXPECT_LT(ma.home_adjacent_mean, ui.home_adjacent_mean);
  EXPECT_LT(ma.home_row_mean, ui.home_row_mean);
  EXPECT_LT(ma.max_link, ui.max_link + 1);
}

TEST(Table, AlignedOutput) {
  Table t({"scheme", "latency", "msgs"});
  t.add_row({"UI-UA", Table::num(123.45), Table::integer(16)});
  t.add_row({"EC-CM-HG", Table::num(67.8), Table::integer(5)});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("scheme"), std::string::npos);
  EXPECT_NE(s.find("123.5"), std::string::npos);
  EXPECT_NE(s.find("EC-CM-HG"), std::string::npos);
  // All lines equal length (alignment).
  std::istringstream is(s);
  std::string line;
  std::getline(is, line);
  const auto w = line.size();
  std::getline(is, line);
  EXPECT_EQ(line.size(), w);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

} // namespace
} // namespace mdw::analysis
