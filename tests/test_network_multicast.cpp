// Integration tests for multidestination worms: forward-and-absorb
// multicast, i-reserve reservations, i-gather pickup, and deferred delivery.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "noc/network.h"
#include "noc/worm_builder.h"
#include "sim/engine.h"

namespace mdw::noc {
namespace {

struct Fixture {
  sim::Engine eng;
  MeshShape mesh;
  NocParams params;
  Network net;
  std::vector<std::pair<NodeId, WormPtr>> delivered;

  explicit Fixture(NocParams p = {}, int w = 8, int h = 8)
      : mesh(w, h), params(p), net(eng, mesh, params) {
    net.set_delivery_handler(
        [this](NodeId n, const WormPtr& worm) { delivered.emplace_back(n, worm); });
  }

  // A column multicast: (0,0) -> E..E -> (3,0) -> N..N -> (3,5), absorbing at
  // (3,1), (3,3) and terminating at (3,5).
  WormPtr column_multicast(DestAction mid_action, TxnId txn = 1) {
    std::vector<NodeId> path;
    for (int x = 0; x <= 3; ++x) path.push_back(mesh.id_of({x, 0}));
    for (int y = 1; y <= 5; ++y) path.push_back(mesh.id_of({3, y}));
    std::vector<DestSpec> dests{
        DestSpec{mesh.id_of({3, 1}), mid_action, 1},
        DestSpec{mesh.id_of({3, 3}), mid_action, 1},
        DestSpec{mesh.id_of({3, 5}),
                 mid_action == DestAction::DeliverAndReserve
                     ? DestAction::DeliverAndReserve
                     : DestAction::Deliver,
                 1},
    };
    return make_multidest(mesh, RoutingAlgo::EcubeXY, WormKind::Multicast,
                          VNet::Request, std::move(path), std::move(dests), 10,
                          txn, nullptr);
  }
};

TEST(NetworkMulticast, ForwardAndAbsorbDeliversAtEveryDestination) {
  Fixture f;
  auto w = f.column_multicast(DestAction::Deliver);
  f.net.inject(w);
  ASSERT_TRUE(f.eng.run_to_quiescence(100'000));
  ASSERT_EQ(f.delivered.size(), 3u);
  std::set<NodeId> got;
  for (auto& [n, worm] : f.delivered) {
    EXPECT_EQ(worm.get(), w.get());
    got.insert(n);
  }
  EXPECT_EQ(got, (std::set<NodeId>{f.mesh.id_of({3, 1}), f.mesh.id_of({3, 3}),
                                   f.mesh.id_of({3, 5})}));
  // One worm, one final delivery, two intermediate absorptions.
  EXPECT_EQ(f.net.stats().worms_delivered, 1u);
  EXPECT_EQ(f.net.stats().absorb_deliveries, 2u);
}

TEST(NetworkMulticast, IntermediateDeliveryPrecedesFinal) {
  Fixture f;
  auto w = f.column_multicast(DestAction::Deliver);
  f.net.inject(w);
  ASSERT_TRUE(f.eng.run_to_quiescence(100'000));
  ASSERT_EQ(f.delivered.size(), 3u);
  // Deliveries arrive in path order: (3,1), (3,3), (3,5).
  EXPECT_EQ(f.delivered[0].first, f.mesh.id_of({3, 1}));
  EXPECT_EQ(f.delivered[1].first, f.mesh.id_of({3, 3}));
  EXPECT_EQ(f.delivered[2].first, f.mesh.id_of({3, 5}));
}

TEST(NetworkMulticast, MulticastCheaperThanUnicastsInFlitHops) {
  // The headline traffic claim: one multidestination worm covering a column
  // produces fewer link flit-hops than per-destination unicasts.
  Fixture f;
  auto w = f.column_multicast(DestAction::Deliver);
  f.net.inject(w);
  ASSERT_TRUE(f.eng.run_to_quiescence(100'000));
  const auto multi_hops = f.net.stats().link_flit_hops;

  Fixture g;
  const NodeId src = g.mesh.id_of({0, 0});
  for (Coord c : {Coord{3, 1}, Coord{3, 3}, Coord{3, 5}}) {
    g.net.inject(make_unicast(g.mesh, RoutingAlgo::EcubeXY, VNet::Request, src,
                              g.mesh.id_of(c), 8, 1, nullptr));
  }
  ASSERT_TRUE(g.eng.run_to_quiescence(100'000));
  EXPECT_LT(multi_hops, g.net.stats().link_flit_hops);
}

TEST(NetworkMulticast, ReserveCreatesBankEntries) {
  Fixture f;
  auto w = f.column_multicast(DestAction::DeliverAndReserve, 77);
  f.net.inject(w);
  ASSERT_TRUE(f.eng.run_to_quiescence(100'000));
  for (Coord c : {Coord{3, 1}, Coord{3, 3}, Coord{3, 5}}) {
    EXPECT_EQ(f.net.router(f.mesh.id_of(c)).bank().entries_in_use(), 1)
        << "(" << c.x << "," << c.y << ")";
  }
  // Non-destination routers on the path hold no entries.
  EXPECT_EQ(f.net.router(f.mesh.id_of({3, 2})).bank().entries_in_use(), 0);
}

TEST(NetworkMulticast, GatherPicksUpPostedAcks) {
  Fixture f;
  // Reserve entries along the column first.
  f.net.inject(f.column_multicast(DestAction::DeliverAndReserve, 5));
  ASSERT_TRUE(f.eng.run_to_quiescence(100'000));
  // Nodes post their i-acks.
  f.net.post_iack(f.mesh.id_of({3, 1}), 5, 1);
  f.net.post_iack(f.mesh.id_of({3, 3}), 5, 1);
  f.net.post_iack(f.mesh.id_of({3, 5}), 5, 1);
  ASSERT_TRUE(f.eng.run_to_quiescence(1'000));
  // Gather worm from (3,6) sweeps south to (3,0)... stays conformant with
  // the reply network (YX): column segment then row segment to home (0,0).
  std::vector<NodeId> path;
  for (int y = 5; y >= 0; --y) path.push_back(f.mesh.id_of({3, y}));
  for (int x = 2; x >= 0; --x) path.push_back(f.mesh.id_of({x, 0}));
  std::vector<DestSpec> dests{
      DestSpec{f.mesh.id_of({3, 3}), DestAction::GatherPickup, 1},
      DestSpec{f.mesh.id_of({3, 1}), DestAction::GatherPickup, 1},
      DestSpec{f.mesh.id_of({0, 0}), DestAction::Deliver, 1},
  };
  auto gw = make_multidest(f.mesh, RoutingAlgo::EcubeYX, WormKind::Gather,
                           VNet::Reply, std::move(path), std::move(dests), 8,
                           5, nullptr);
  gw->gathered = 1;  // the initiating sharer's own ack, (3,5)
  // (3,5) already posted; free that entry to model the initiator carrying
  // its ack directly: pick it up through the worm's starting router is not
  // modelled, so gather starts beyond it.
  f.delivered.clear();
  f.net.inject(gw);
  ASSERT_TRUE(f.eng.run_to_quiescence(100'000));
  ASSERT_EQ(f.delivered.size(), 1u);
  EXPECT_EQ(f.delivered[0].first, f.mesh.id_of({0, 0}));
  EXPECT_EQ(gw->gathered, 3);  // initiator + two pickups
  EXPECT_EQ(f.net.router(f.mesh.id_of({3, 3})).bank().entries_in_use(), 0);
  EXPECT_EQ(f.net.router(f.mesh.id_of({3, 1})).bank().entries_in_use(), 0);
}

TEST(NetworkMulticast, GatherDefersUntilAckPosted) {
  Fixture f;
  f.net.inject(f.column_multicast(DestAction::DeliverAndReserve, 9));
  ASSERT_TRUE(f.eng.run_to_quiescence(100'000));
  // Only (3,1) posts now; (3,3)'s ack is late.
  f.net.post_iack(f.mesh.id_of({3, 1}), 9, 1);

  std::vector<NodeId> path;
  for (int y = 5; y >= 0; --y) path.push_back(f.mesh.id_of({3, y}));
  for (int x = 2; x >= 0; --x) path.push_back(f.mesh.id_of({x, 0}));
  auto gw = make_multidest(
      f.mesh, RoutingAlgo::EcubeYX, WormKind::Gather, VNet::Reply,
      std::move(path),
      {DestSpec{f.mesh.id_of({3, 3}), DestAction::GatherPickup, 1},
       DestSpec{f.mesh.id_of({3, 1}), DestAction::GatherPickup, 1},
       DestSpec{f.mesh.id_of({0, 0}), DestAction::Deliver, 1}},
      8, 9, nullptr);
  gw->gathered = 1;
  f.delivered.clear();
  f.net.inject(gw);
  // The gather worm parks at (3,3): no delivery possible yet.
  ASSERT_FALSE(f.eng.run_until([&] { return !f.delivered.empty(); }, 5'000));
  EXPECT_GE(f.net.stats().gather_deferred, 1u);
  // The late ack releases it.
  f.net.post_iack(f.mesh.id_of({3, 3}), 9, 1);
  ASSERT_TRUE(f.eng.run_until([&] { return !f.delivered.empty(); }, 100'000));
  EXPECT_EQ(f.delivered[0].first, f.mesh.id_of({0, 0}));
  EXPECT_EQ(gw->gathered, 3);
}

TEST(NetworkMulticast, ReserveOnlyLeavesEntryWithoutDelivering) {
  Fixture f;
  // Worm along a row that reserves at (2,0) without delivering, then
  // terminates at (5,0).
  std::vector<NodeId> path;
  for (int x = 0; x <= 5; ++x) path.push_back(f.mesh.id_of({x, 0}));
  auto w = make_multidest(
      f.mesh, RoutingAlgo::EcubeXY, WormKind::Multicast, VNet::Request,
      std::move(path),
      {DestSpec{f.mesh.id_of({2, 0}), DestAction::ReserveOnly, 2},
       DestSpec{f.mesh.id_of({5, 0}), DestAction::Deliver, 1}},
      8, 4, nullptr);
  f.net.inject(w);
  ASSERT_TRUE(f.eng.run_to_quiescence(100'000));
  ASSERT_EQ(f.delivered.size(), 1u);  // only the final destination
  EXPECT_EQ(f.delivered[0].first, f.mesh.id_of({5, 0}));
  EXPECT_EQ(f.net.router(f.mesh.id_of({2, 0})).bank().entries_in_use(), 1);
}

TEST(NetworkMulticast, ConsumptionChannelExhaustionBlocksButRecovers) {
  // With a single consumption channel, overlapping multicasts through the
  // same absorbing node serialize but all deliver.
  NocParams p;
  p.consumption_channels = 1;
  Fixture f(p);
  for (TxnId t = 0; t < 4; ++t) {
    f.net.inject(f.column_multicast(DestAction::Deliver, t));
  }
  ASSERT_TRUE(f.eng.run_to_quiescence(500'000));
  EXPECT_EQ(f.delivered.size(), 12u);  // 4 worms x 3 destinations
}

TEST(NetworkMulticast, WestFirstSerpentineWormDelivers) {
  Fixture f;
  // home (4,3): W to (2,3), then serpentine: N to (2,5), E to (3,5), S to
  // (3,1), E to (5,1), N to (5,4). Destinations scattered along the way.
  auto at = [&](int x, int y) { return f.mesh.id_of({x, y}); };
  std::vector<NodeId> path{at(4, 3), at(3, 3), at(2, 3), at(2, 4), at(2, 5),
                           at(3, 5), at(3, 4), at(3, 3), at(3, 2), at(3, 1),
                           at(4, 1), at(5, 1), at(5, 2), at(5, 3), at(5, 4)};
  std::vector<DestSpec> dests{
      DestSpec{at(2, 3), DestAction::Deliver, 1},
      DestSpec{at(2, 5), DestAction::Deliver, 1},
      DestSpec{at(3, 1), DestAction::Deliver, 1},
      DestSpec{at(5, 4), DestAction::Deliver, 1},
  };
  auto w = make_multidest(f.mesh, RoutingAlgo::WestFirst, WormKind::Multicast,
                          VNet::Request, std::move(path), std::move(dests), 12,
                          1, nullptr);
  f.net.inject(w);
  ASSERT_TRUE(f.eng.run_to_quiescence(100'000));
  EXPECT_EQ(f.delivered.size(), 4u);
}

TEST(NetworkMulticast, ConcurrentMulticastsToDisjointColumnsProgress) {
  Fixture f;
  // Several homes invalidate different columns concurrently.
  for (int c = 1; c <= 6; ++c) {
    std::vector<NodeId> path;
    for (int x = 0; x <= c; ++x) path.push_back(f.mesh.id_of({x, 0}));
    for (int y = 1; y <= 6; ++y) path.push_back(f.mesh.id_of({c, y}));
    auto w = make_multidest(
        f.mesh, RoutingAlgo::EcubeXY, WormKind::Multicast, VNet::Request,
        std::move(path),
        {DestSpec{f.mesh.id_of({c, 2}), DestAction::Deliver, 1},
         DestSpec{f.mesh.id_of({c, 6}), DestAction::Deliver, 1}},
        10, static_cast<TxnId>(c), nullptr);
    f.net.inject(w);
  }
  ASSERT_TRUE(f.eng.run_to_quiescence(500'000));
  EXPECT_EQ(f.delivered.size(), 12u);
}

} // namespace
} // namespace mdw::noc
