// Release-consistency mode (eager exclusive reply): the writer unblocks as
// soon as the i-reserve worms launch, acks complete in the background.
// Verifies the latency benefit, eventual invalidation of all sharers, and
// end-state coherence under stress — for every grouping scheme.
#include <gtest/gtest.h>

#include <functional>

#include "dsm/machine.h"
#include "sim/rng.h"

namespace mdw::dsm {
namespace {

SystemParams params(core::Scheme s, bool eager) {
  SystemParams p;
  p.mesh_w = p.mesh_h = 4;
  p.scheme = s;
  p.cache_lines = 64;
  p.eager_exclusive_reply = eager;
  return p;
}

Cycle timed_write(Machine& m, NodeId w, BlockAddr a, std::uint64_t v) {
  bool done = false;
  Cycle lat = 0;
  const Cycle t0 = m.engine().now();
  m.node(w).write(a, v, [&] {
    lat = m.engine().now() - t0;
    done = true;
  });
  EXPECT_TRUE(m.engine().run_until([&] { return done; }, 5'000'000));
  return lat;
}

void share_block(Machine& m, BlockAddr a, const std::vector<NodeId>& readers) {
  for (NodeId r : readers) {
    bool done = false;
    m.node(r).read(a, [&](std::uint64_t) { done = true; });
    EXPECT_TRUE(m.engine().run_until([&] { return done; }, 5'000'000));
  }
  EXPECT_TRUE(m.engine().run_to_quiescence(1'000'000));
}

class Consistency : public ::testing::TestWithParam<core::Scheme> {};

TEST_P(Consistency, EagerGrantCutsWriteLatency) {
  const std::vector<NodeId> readers{0, 1, 2, 5, 9, 10, 12, 14, 15};
  Machine sc(params(GetParam(), false));
  share_block(sc, 3, readers);
  const Cycle sc_lat = timed_write(sc, 7, 3, 1);
  EXPECT_TRUE(sc.engine().run_to_quiescence(5'000'000));

  Machine rc(params(GetParam(), true));
  share_block(rc, 3, readers);
  const Cycle rc_lat = timed_write(rc, 7, 3, 1);
  EXPECT_TRUE(rc.engine().run_to_quiescence(5'000'000));

  // RC hides the whole invalidation round trip.
  EXPECT_LT(rc_lat, sc_lat) << core::scheme_name(GetParam());
  EXPECT_LT(rc_lat, sc_lat / 2 + 60);
  // Same protocol work happened.
  EXPECT_EQ(rc.stats().inval_txns, 1u);
  EXPECT_EQ(sc.stats().inval_txns, 1u);
}

TEST_P(Consistency, SharersStillInvalidatedEventually) {
  Machine m(params(GetParam(), true));
  const std::vector<NodeId> readers{0, 1, 2, 5, 9, 10, 12, 14, 15};
  share_block(m, 3, readers);
  (void)timed_write(m, 7, 3, 42);
  EXPECT_TRUE(m.engine().run_to_quiescence(5'000'000));
  for (NodeId r : readers) {
    EXPECT_EQ(m.node(r).cache().lookup(3), LineState::Invalid)
        << "sharer " << r;
  }
  const auto* e = m.node(3).directory().find(3);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->state, DirState::Exclusive);
  EXPECT_EQ(e->owner, 7);
  const std::string err = m.check_coherence();
  EXPECT_TRUE(err.empty()) << err;
}

TEST_P(Consistency, BackToBackWritesSerializePerBlock) {
  // A second writer's request queued during the eager window must still be
  // serviced only after the first transaction's acks complete.
  Machine m(params(GetParam(), true));
  share_block(m, 3, {0, 1, 2, 5, 9, 10});
  bool w1 = false, w2 = false;
  m.node(7).write(3, 1, [&] { w1 = true; });
  m.node(8).write(3, 2, [&] { w2 = true; });
  ASSERT_TRUE(m.engine().run_until([&] { return w1 && w2; }, 10'000'000));
  EXPECT_TRUE(m.engine().run_to_quiescence(5'000'000));
  const auto* e = m.node(3).directory().find(3);
  EXPECT_EQ(e->state, DirState::Exclusive);
  EXPECT_EQ(e->owner, 8);  // last writer wins ownership
  EXPECT_EQ(m.node(7).cache().lookup(3), LineState::Invalid);
  const std::string err = m.check_coherence();
  EXPECT_TRUE(err.empty()) << err;
}

TEST_P(Consistency, WriterEvictionDuringOutstandingTxn) {
  // Tiny cache: the eagerly-granted writer evicts the block while its
  // invalidation acks are still in flight.
  auto p = params(GetParam(), true);
  p.cache_lines = 2;
  Machine m(p);
  share_block(m, 3, {0, 1, 2, 5, 9, 10, 12});
  // Write block 3, then immediately touch two conflicting blocks to force
  // the eviction.
  bool done = false;
  m.node(7).write(3, 7, [&] {
    m.node(7).write(5, 8, [&] {
      m.node(7).write(7, 9, [&] { done = true; });
    });
  });
  ASSERT_TRUE(m.engine().run_until([&] { return done; }, 10'000'000));
  EXPECT_TRUE(m.engine().run_to_quiescence(5'000'000));
  const std::string err = m.check_coherence();
  EXPECT_TRUE(err.empty()) << err;
  // The written value survived the eviction.
  Machine* mp = &m;
  std::uint64_t got = 0;
  done = false;
  mp->node(4).read(3, [&](std::uint64_t v) {
    got = v;
    done = true;
  });
  ASSERT_TRUE(m.engine().run_until([&] { return done; }, 5'000'000));
  EXPECT_EQ(got, 7u);
}

TEST_P(Consistency, BackToBackWritesSerializeUnderPipelinedHome) {
  // The same per-block serialization guarantee must hold when the home
  // pipelines invalidations: the Waiting state, not the one-at-a-time home,
  // is what orders same-block writes (DESIGN.md section 15).
  for (int depth : {2, 4, 8}) {
    auto p = params(GetParam(), true);
    p.svc.pipeline_depth = depth;
    Machine m(p);
    share_block(m, 3, {0, 1, 2, 5, 9, 10});
    bool w1 = false, w2 = false;
    m.node(7).write(3, 1, [&] { w1 = true; });
    m.node(8).write(3, 2, [&] { w2 = true; });
    ASSERT_TRUE(m.engine().run_until([&] { return w1 && w2; }, 10'000'000));
    EXPECT_TRUE(m.engine().run_to_quiescence(5'000'000));
    const auto* e = m.node(3).directory().find(3);
    EXPECT_EQ(e->state, DirState::Exclusive) << "depth " << depth;
    EXPECT_EQ(e->owner, 8) << "depth " << depth;
    EXPECT_EQ(m.node(7).cache().lookup(3), LineState::Invalid);
    const std::string err = m.check_coherence();
    EXPECT_TRUE(err.empty()) << "depth " << depth << "\n" << err;
  }
}

TEST_P(Consistency, RandomStressStaysCoherentAtQuiescence) {
  Machine m(params(GetParam(), true));
  sim::Rng rng(555 + static_cast<int>(GetParam()));
  const int n = m.num_nodes();
  std::vector<int> remaining(n, 40);
  std::uint64_t next_value = 1;
  std::function<void(NodeId)> issue = [&](NodeId id) {
    if (remaining[id]-- <= 0) return;
    const BlockAddr a = rng.next_below(16);
    if (rng.next_bool(0.4)) {
      m.node(id).write(a, next_value++, [&, id] { issue(id); });
    } else {
      m.node(id).read(a, [&, id](std::uint64_t) { issue(id); });
    }
  };
  for (NodeId id = 0; id < n; ++id) issue(id);
  ASSERT_TRUE(m.engine().run_until([&] { return m.all_idle(); }, 100'000'000))
      << core::scheme_name(GetParam());
  ASSERT_TRUE(m.engine().run_to_quiescence(5'000'000));
  const std::string err = m.check_coherence();
  EXPECT_TRUE(err.empty()) << err;
}

TEST_P(Consistency, RandomStressCoherentAtEveryPipelineDepth) {
  // The pipelined + coalescing home must uphold the same end-state
  // invariants as the legacy one-at-a-time home under random contention.
  for (int depth : {2, 4, 8}) {
    auto p = params(GetParam(), true);
    p.svc.pipeline_depth = depth;
    p.svc.coalesce_window = 16;
    Machine m(p);
    sim::Rng rng(900 + static_cast<int>(GetParam()) * 10 + depth);
    const int n = m.num_nodes();
    std::vector<int> remaining(n, 30);
    std::uint64_t next_value = 1;
    std::function<void(NodeId)> issue = [&](NodeId id) {
      if (remaining[id]-- <= 0) return;
      const BlockAddr a = rng.next_below(16);
      if (rng.next_bool(0.5)) {
        m.node(id).write(a, next_value++, [&, id] { issue(id); });
      } else {
        m.node(id).read(a, [&, id](std::uint64_t) { issue(id); });
      }
    };
    for (NodeId id = 0; id < n; ++id) issue(id);
    ASSERT_TRUE(
        m.engine().run_until([&] { return m.all_idle(); }, 100'000'000))
        << core::scheme_name(GetParam()) << " depth " << depth;
    ASSERT_TRUE(m.engine().run_to_quiescence(5'000'000));
    const std::string err = m.check_coherence();
    EXPECT_TRUE(err.empty())
        << core::scheme_name(GetParam()) << " depth " << depth << "\n" << err;
  }
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, Consistency,
                         ::testing::ValuesIn(core::kAllSchemes),
                         [](const auto& info) {
                           std::string n(core::scheme_name(info.param));
                           for (auto& c : n)
                             if (c == '-') c = '_';
                           return n;
                         });

} // namespace
} // namespace mdw::dsm
