// Unit tests for the transaction-setup memoization layer:
//   * core::SharerBitmap — the directory presence bits / plan-cache key,
//   * core::PlanCache   — memoized invalidation plans (hit/miss/eviction/
//                         disabled, and value-identity with fresh planning),
//   * noc::RouteCache   — memoized unicast hop sequences.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/plan_cache.h"
#include "core/sharer_set.h"
#include "noc/route_cache.h"

namespace mdw {
namespace {

using core::PlanCache;
using core::Scheme;
using core::SharerBitmap;
using noc::MeshShape;
using noc::RouteCache;
using noc::RoutingAlgo;

// ---------------------------------------------------------------------------
// SharerBitmap
// ---------------------------------------------------------------------------

SharerBitmap bitmap_of(const std::vector<NodeId>& ids) {
  SharerBitmap b;
  for (NodeId id : ids) b.insert(id);
  return b;
}

TEST(SharerBitmap, InsertEraseContainsCount) {
  SharerBitmap b;
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.count(), 0);
  b.insert(0);
  b.insert(63);
  b.insert(64);
  b.insert(200);
  EXPECT_EQ(b.count(), 4);
  EXPECT_TRUE(b.contains(63));
  EXPECT_TRUE(b.contains(64));
  EXPECT_FALSE(b.contains(1));
  b.insert(64);  // idempotent
  EXPECT_EQ(b.count(), 4);
  b.erase(64);
  EXPECT_FALSE(b.contains(64));
  EXPECT_EQ(b.count(), 3);
  b.erase(64);  // erasing an absent id is a no-op
  EXPECT_EQ(b.count(), 3);
  b.clear();
  EXPECT_TRUE(b.empty());
  EXPECT_FALSE(b.contains(0));
}

TEST(SharerBitmap, IterationIsAscending) {
  const std::vector<NodeId> ids = {200, 3, 64, 63, 127, 0};
  const SharerBitmap b = bitmap_of(ids);
  std::vector<NodeId> sorted = ids;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(b.to_vector(), sorted);
  std::vector<NodeId> visited;
  b.for_each([&](NodeId id) { visited.push_back(id); });
  EXPECT_EQ(visited, sorted);
}

TEST(SharerBitmap, SpillsBeyondInlineWindow) {
  // Ids past 64 * kInlineWords exercise the heap spill block.
  SharerBitmap b;
  const NodeId big = 64 * SharerBitmap::kInlineWords + 37;
  b.insert(big);
  b.insert(5);
  EXPECT_TRUE(b.contains(big));
  EXPECT_EQ(b.count(), 2);
  EXPECT_EQ(b.to_vector(), (std::vector<NodeId>{5, big}));
}

TEST(SharerBitmap, EqualityAndHashAreCanonical) {
  // Two bitmaps with the same contents must compare equal and hash equal
  // regardless of erase history or high-water capacity.
  SharerBitmap a = bitmap_of({1, 2, 300});
  a.erase(300);  // leaves a zero spill word behind
  const SharerBitmap b = bitmap_of({1, 2});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hash(), b.hash());
  const SharerBitmap c = bitmap_of({1, 2, 3});
  EXPECT_FALSE(a == c);
  EXPECT_NE(a.hash(), c.hash());
}

// ---------------------------------------------------------------------------
// PlanCache
// ---------------------------------------------------------------------------

/// Field-by-field value identity of two plans.  Worm ids are intentionally
/// not compared: they are drawn from a global monotonic counter, so a cached
/// replay and a fresh plan agree on ids only when run in the same sequence
/// position (the determinism suite pins that end to end).
void expect_plans_identical(const core::InvalPlan& a, const core::InvalPlan& b) {
  ASSERT_EQ(a.request_worms.size(), b.request_worms.size());
  for (std::size_t i = 0; i < a.request_worms.size(); ++i) {
    const noc::Worm& wa = *a.request_worms[i];
    const noc::Worm& wb = *b.request_worms[i];
    EXPECT_EQ(wa.kind, wb.kind);
    EXPECT_EQ(wa.vnet, wb.vnet);
    EXPECT_EQ(wa.src, wb.src);
    EXPECT_EQ(wa.txn, wb.txn);
    EXPECT_EQ(wa.length_flits, wb.length_flits);
    ASSERT_EQ(wa.path.size(), wb.path.size());
    EXPECT_TRUE(std::equal(wa.path.begin(), wa.path.end(), wb.path.begin()));
    ASSERT_EQ(wa.dests.size(), wb.dests.size());
    for (std::size_t d = 0; d < wa.dests.size(); ++d) {
      EXPECT_EQ(wa.dests[d].node, wb.dests[d].node);
      EXPECT_EQ(wa.dests[d].action, wb.dests[d].action);
      EXPECT_EQ(wa.dests[d].expected_posts, wb.dests[d].expected_posts);
    }
  }
  ASSERT_NE(a.directive, nullptr);
  ASSERT_NE(b.directive, nullptr);
  EXPECT_EQ(a.directive->txn, b.directive->txn);
  const core::InvalPattern& pa = *a.directive->pattern;
  const core::InvalPattern& pb = *b.directive->pattern;
  EXPECT_EQ(pa.home, pb.home);
  EXPECT_EQ(pa.total_sharers, pb.total_sharers);
  EXPECT_EQ(pa.roles, pb.roles);
  EXPECT_EQ(pa.gather_of, pb.gather_of);
  ASSERT_EQ(pa.gathers.size(), pb.gathers.size());
  for (std::size_t g = 0; g < pa.gathers.size(); ++g) {
    EXPECT_EQ(pa.gathers[g].initiator, pb.gathers[g].initiator);
    EXPECT_EQ(pa.gathers[g].path, pb.gathers[g].path);
    EXPECT_EQ(pa.gathers[g].length_flits, pb.gathers[g].length_flits);
    EXPECT_EQ(pa.gathers[g].vc_class, pb.gathers[g].vc_class);
    EXPECT_EQ(pa.gathers[g].covers, pb.gathers[g].covers);
  }
  EXPECT_EQ(a.expected_ack_messages, b.expected_ack_messages);
  EXPECT_EQ(a.total_ack_worms, b.total_ack_worms);
}

TEST(PlanCache, MissThenHitIsValueIdentical) {
  const MeshShape mesh(8, 8);
  const noc::WormSizing sizing;
  const SharerBitmap sharers = bitmap_of({3, 9, 17, 26, 33, 49});
  const NodeId home = 0;
  PlanCache cache(64);
  ASSERT_TRUE(cache.enabled());

  const auto first =
      cache.get_or_build(Scheme::EcCmHg, mesh, home, sharers, 100, sizing);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 0u);

  // A reference plan for the hit's transaction id, built without the cache.
  const auto fresh = core::plan_invalidation(Scheme::EcCmHg, mesh, home,
                                             sharers.to_vector(), 101, sizing);
  const auto replayed =
      cache.get_or_build(Scheme::EcCmHg, mesh, home, sharers, 101, sizing);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  expect_plans_identical(replayed, fresh);

  // The hit shares the immutable pattern with the first (miss) plan but
  // stamps a fresh directive carrying the new transaction id.
  EXPECT_EQ(replayed.directive->pattern.get(), first.directive->pattern.get());
  EXPECT_NE(replayed.directive.get(), first.directive.get());
  EXPECT_EQ(replayed.directive->txn, 101u);
  for (const auto& w : replayed.request_worms) {
    EXPECT_EQ(w->payload.get(), replayed.directive.get());
  }
}

TEST(PlanCache, KeyCoversSchemeHomeAndSharerSet) {
  const MeshShape mesh(8, 8);
  const noc::WormSizing sizing;
  const SharerBitmap sharers = bitmap_of({5, 12, 23});
  PlanCache cache(64);
  (void)cache.get_or_build(Scheme::EcCmHg, mesh, 0, sharers, 1, sizing);
  // Different scheme, different home, different sharer set: all misses.
  (void)cache.get_or_build(Scheme::WfScSg, mesh, 0, sharers, 2, sizing);
  (void)cache.get_or_build(Scheme::EcCmHg, mesh, 9, sharers, 3, sizing);
  (void)cache.get_or_build(Scheme::EcCmHg, mesh, 0, bitmap_of({5, 12}), 4,
                           sizing);
  EXPECT_EQ(cache.stats().misses, 4u);
  EXPECT_EQ(cache.stats().hits, 0u);
  // The original key still resides in the table.
  (void)cache.get_or_build(Scheme::EcCmHg, mesh, 0, sharers, 5, sizing);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(PlanCache, DisabledCacheAlwaysPlansFresh) {
  const MeshShape mesh(8, 8);
  const noc::WormSizing sizing;
  const SharerBitmap sharers = bitmap_of({2, 11, 40});
  PlanCache cache(0);
  EXPECT_FALSE(cache.enabled());
  const auto a = cache.get_or_build(Scheme::EcCmHg, mesh, 0, sharers, 7, sizing);
  const auto b = cache.get_or_build(Scheme::EcCmHg, mesh, 0, sharers, 8, sizing);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 0u);
  const auto fresh = core::plan_invalidation(Scheme::EcCmHg, mesh, 0,
                                             sharers.to_vector(), 8, sizing);
  expect_plans_identical(b, fresh);
  EXPECT_NE(a.directive->pattern.get(), b.directive->pattern.get());
}

TEST(PlanCache, EvictsWhenBoundedAndRefills) {
  const MeshShape mesh(8, 8);
  const noc::WormSizing sizing;
  PlanCache cache(4);  // tiny table: colliding keys must evict
  TxnId txn = 1;
  for (NodeId home = 0; home < 32; ++home) {
    const SharerBitmap sharers =
        bitmap_of({static_cast<NodeId>((home + 7) % 64),
                   static_cast<NodeId>((home + 19) % 64)});
    (void)cache.get_or_build(Scheme::EcCmHg, mesh, home, sharers, txn++, sizing);
  }
  EXPECT_EQ(cache.stats().misses, 32u);
  EXPECT_GT(cache.stats().evictions, 0u);
  // An evicted key misses again, is re-memoized, and then hits: the cached
  // replay must still be value-identical to a fresh plan.
  const SharerBitmap sharers = bitmap_of({7, 19});
  const auto miss = cache.get_or_build(Scheme::EcCmHg, mesh, 0, sharers,
                                       txn++, sizing);
  const auto fresh = core::plan_invalidation(Scheme::EcCmHg, mesh, 0,
                                             sharers.to_vector(), txn, sizing);
  const auto hit =
      cache.get_or_build(Scheme::EcCmHg, mesh, 0, sharers, txn, sizing);
  EXPECT_GT(cache.stats().hits, 0u);
  expect_plans_identical(hit, fresh);
  expect_plans_identical(miss, core::plan_invalidation(
                                   Scheme::EcCmHg, mesh, 0,
                                   sharers.to_vector(), hit.directive->txn - 1,
                                   sizing));
}

// ---------------------------------------------------------------------------
// RouteCache
// ---------------------------------------------------------------------------

TEST(RouteCache, MissInsertHitRoundTrip) {
  RouteCache cache(16);
  ASSERT_TRUE(cache.enabled());
  EXPECT_EQ(cache.find(RoutingAlgo::EcubeXY, 0, 5), nullptr);
  EXPECT_EQ(cache.stats().misses, 1u);
  const std::vector<NodeId> hops = {0, 1, 2, 5};
  cache.insert(RoutingAlgo::EcubeXY, 0, 5, hops.data(), hops.size());
  const auto* memo = cache.find(RoutingAlgo::EcubeXY, 0, 5);
  ASSERT_NE(memo, nullptr);
  EXPECT_EQ(*memo, hops);
  EXPECT_EQ(cache.stats().hits, 1u);
  // The key includes the routing algorithm, not just the endpoints.
  EXPECT_EQ(cache.find(RoutingAlgo::EcubeYX, 0, 5), nullptr);
}

TEST(RouteCache, DisabledIsInert) {
  RouteCache cache(0);
  EXPECT_FALSE(cache.enabled());
  const std::vector<NodeId> hops = {0, 1};
  cache.insert(RoutingAlgo::EcubeXY, 0, 1, hops.data(), hops.size());
  EXPECT_EQ(cache.find(RoutingAlgo::EcubeXY, 0, 1), nullptr);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 0u);
}

TEST(RouteCache, BoundedTableEvicts) {
  RouteCache cache(4);
  std::vector<NodeId> hops = {0, 1};
  for (NodeId dst = 1; dst < 64; ++dst) {
    hops[1] = dst;
    cache.insert(RoutingAlgo::EcubeXY, 0, dst, hops.data(), hops.size());
    // What was just inserted is immediately retrievable.
    const auto* memo = cache.find(RoutingAlgo::EcubeXY, 0, dst);
    ASSERT_NE(memo, nullptr);
    EXPECT_EQ(memo->back(), dst);
  }
  EXPECT_GT(cache.stats().evictions, 0u);
}

} // namespace
} // namespace mdw
