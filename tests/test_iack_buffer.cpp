// Unit tests for the i-ack buffer bank: reservation, posting, gather pickup,
// deferred delivery, and capacity behaviour.
#include <gtest/gtest.h>

#include "noc/iack_buffer.h"
#include "noc/worm_pool.h"

namespace mdw::noc {
namespace {

WormPtr make_worm(TxnId txn) {
  WormPtr w = WormPool::local().acquire();
  w->txn = txn;
  w->kind = WormKind::Gather;
  return w;
}

TEST(IAckBuffer, ReserveThenPostThenPickup) {
  IAckBufferBank bank(4);
  ASSERT_TRUE(bank.reserve(7, 1));
  bool accepted = false;
  EXPECT_FALSE(bank.post(7, 1, &accepted).has_value());
  EXPECT_TRUE(accepted);
  bool blocked = false;
  const auto got = bank.pickup(7, 1, make_worm(7), &blocked);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 1);
  EXPECT_FALSE(blocked);
  EXPECT_EQ(bank.entries_in_use(), 0);  // pickup frees the entry
}

TEST(IAckBuffer, PickupBeforePostDefers) {
  IAckBufferBank bank(2);
  ASSERT_TRUE(bank.reserve(3, 1));
  auto w = make_worm(3);
  bool blocked = false;
  EXPECT_FALSE(bank.pickup(3, 1, w, &blocked).has_value());
  EXPECT_FALSE(blocked);
  EXPECT_EQ(bank.deferred_count(), 1u);
  // The post releases the parked worm with the count accumulated.
  bool accepted = false;
  auto released = bank.post(3, 1, &accepted);
  ASSERT_TRUE(accepted);
  ASSERT_TRUE(released.has_value());
  EXPECT_EQ((*released).get(), w.get());
  EXPECT_EQ(w->gathered, 1);
  EXPECT_EQ(bank.entries_in_use(), 0);
}

TEST(IAckBuffer, MultiplePostsAccumulate) {
  IAckBufferBank bank(4);
  ASSERT_TRUE(bank.reserve(9, 3));
  bool accepted = false;
  EXPECT_FALSE(bank.post(9, 2, &accepted).has_value());
  EXPECT_FALSE(bank.post(9, 5, &accepted).has_value());
  EXPECT_FALSE(bank.post(9, 1, &accepted).has_value());
  bool blocked = false;
  const auto got = bank.pickup(9, 3, make_worm(9), &blocked);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 8);
}

TEST(IAckBuffer, IncompleteEntryDefersUntilAllPostsArrive) {
  IAckBufferBank bank(4);
  ASSERT_TRUE(bank.reserve(5, 2));
  bool accepted = false;
  EXPECT_FALSE(bank.post(5, 4, &accepted).has_value());
  auto w = make_worm(5);
  bool blocked = false;
  EXPECT_FALSE(bank.pickup(5, 2, w, &blocked).has_value());  // 1 of 2 posts
  EXPECT_FALSE(blocked);
  auto released = bank.post(5, 6, &accepted);
  ASSERT_TRUE(released.has_value());
  EXPECT_EQ(w->gathered, 10);
}

TEST(IAckBuffer, ReservationIsIdempotentAndRaisesExpected) {
  IAckBufferBank bank(4);
  // An early post demand-allocates with expected = 1; a late reservation
  // raises the requirement to 2 without duplicating the entry.
  bool accepted = false;
  EXPECT_FALSE(bank.post(1, 1, &accepted).has_value());
  ASSERT_TRUE(bank.reserve(1, 2));
  ASSERT_TRUE(bank.reserve(1, 2));  // re-reservation is a no-op
  EXPECT_EQ(bank.entries_in_use(), 1);
  auto w = make_worm(1);
  bool blocked = false;
  EXPECT_FALSE(bank.pickup(1, 2, w, &blocked).has_value());  // 1 of 2 posts
  auto released = bank.post(1, 1, &accepted);
  ASSERT_TRUE(released.has_value());
  EXPECT_EQ(w->gathered, 2);
}

TEST(IAckBuffer, ReserveFailsWhenFull) {
  IAckBufferBank bank(2);
  ASSERT_TRUE(bank.reserve(1, 1));
  ASSERT_TRUE(bank.reserve(2, 1));
  EXPECT_FALSE(bank.reserve(3, 1));
  EXPECT_FALSE(bank.has_free());
}

TEST(IAckBuffer, PostDemandAllocatesWithoutReservation) {
  IAckBufferBank bank(2);
  bool accepted = false;
  EXPECT_FALSE(bank.post(42, 1, &accepted).has_value());
  EXPECT_TRUE(accepted);
  EXPECT_EQ(bank.entries_in_use(), 1);
}

TEST(IAckBuffer, PostRejectedWhenFull) {
  IAckBufferBank bank(1);
  ASSERT_TRUE(bank.reserve(1, 1));
  bool accepted = true;
  EXPECT_FALSE(bank.post(2, 1, &accepted).has_value());
  EXPECT_FALSE(accepted);
}

TEST(IAckBuffer, PickupBlocksWhenFullAndNoEntry) {
  IAckBufferBank bank(1);
  ASSERT_TRUE(bank.reserve(1, 1));
  bool blocked = false;
  EXPECT_FALSE(bank.pickup(2, 1, make_worm(2), &blocked).has_value());
  EXPECT_TRUE(blocked);
}

TEST(IAckBuffer, SecondGatherOfSameTxnBlocks) {
  IAckBufferBank bank(2);
  ASSERT_TRUE(bank.reserve(1, 2));
  bool blocked = false;
  EXPECT_FALSE(bank.pickup(1, 2, make_worm(1), &blocked).has_value());
  EXPECT_FALSE(blocked);
  EXPECT_FALSE(bank.pickup(1, 2, make_worm(1), &blocked).has_value());
  EXPECT_TRUE(blocked);
}

TEST(IAckBuffer, IndependentTransactionsCoexist) {
  IAckBufferBank bank(4);
  bool accepted = false;
  EXPECT_FALSE(bank.post(10, 1, &accepted).has_value());
  EXPECT_FALSE(bank.post(11, 1, &accepted).has_value());
  bool blocked = false;
  EXPECT_EQ(bank.pickup(10, 1, make_worm(10), &blocked).value(), 1);
  EXPECT_EQ(bank.pickup(11, 1, make_worm(11), &blocked).value(), 1);
}

} // namespace
} // namespace mdw::noc
