// End-to-end invalidation transactions over the cycle-level network, for
// every scheme: the home injects the planned i-reserve worms, each sharer
// reacts per its role (unicast ack / local i-ack post / i-gather launch),
// and the home must collect exactly d acknowledgments.  This exercises
// forward-and-absorb, reservation, deferred gather delivery, deposits, and
// the VC-class segregation, under randomized sharer patterns.
#include <gtest/gtest.h>

#include <set>

#include "core/inval_planner.h"
#include "noc/network.h"
#include "noc/worm_builder.h"
#include "sim/engine.h"
#include "sim/rng.h"

namespace mdw::core {
namespace {

using noc::MeshShape;
using noc::NocParams;
using noc::VNet;
using noc::WormKind;
using noc::WormPtr;

struct AckPayload final : noc::Payload {};

/// Protocol-less harness: runs one invalidation transaction end to end.
struct TxnHarness {
  sim::Engine eng;
  MeshShape mesh;
  noc::Network net;
  NodeId home;
  InvalPlan plan;
  int acks = 0;
  int invalidated = 0;
  int cache_inval_delay;

  TxnHarness(int w, int h, NodeId home_node, NocParams p = {},
             int inval_delay = 8)
      : mesh(w, h), net(eng, mesh, p), home(home_node),
        cache_inval_delay(inval_delay) {
    net.set_delivery_handler([this](NodeId where, const WormPtr& worm) {
      on_delivery(where, worm);
    });
  }

  void run(Scheme scheme, const std::vector<NodeId>& sharers, TxnId txn = 1) {
    plan = plan_invalidation(scheme, mesh, home, sharers, txn,
                             noc::WormSizing{});
    for (const auto& w : plan.request_worms) net.inject(w);
  }

  void on_delivery(NodeId where, const WormPtr& worm) {
    if (worm->kind == WormKind::Gather) {
      ASSERT_EQ(where, home);
      acks += worm->gathered;
      return;
    }
    if (std::dynamic_pointer_cast<const AckPayload>(worm->payload)) {
      ASSERT_EQ(where, home);
      acks += 1;
      return;
    }
    // Invalidation delivery at a sharer: invalidate the local copy, then
    // act per the directive role.
    auto dir = std::dynamic_pointer_cast<const InvalDirective>(worm->payload);
    ASSERT_NE(dir, nullptr);
    ++invalidated;
    eng.schedule_after(cache_inval_delay, [this, where, dir] {
      switch (dir->roles().at(where)) {
        case SharerRole::UnicastAck: {
          const bool wf = dir->gathers().empty() &&
                          false;  // routing chosen below by scheme family
          (void)wf;
          // Reply routing: YX for e-cube schemes; east-first (class 1) for
          // the turn-model schemes.  Either is safe here; use YX unless the
          // home lies on a path requiring east-first.  The harness uses YX
          // for all unicast acks (deterministic, deadlock-free).
          auto ack = noc::make_unicast(mesh, noc::RoutingAlgo::EcubeYX,
                                       VNet::Reply, where, dir->home(), 8,
                                       dir->txn, std::make_shared<AckPayload>());
          net.inject(ack);
          break;
        }
        case SharerRole::PostLocal:
          net.post_iack(where, dir->txn, 1);
          break;
        case SharerRole::LaunchGather: {
          const auto& g = dir->gathers()[dir->gather_of().at(where)];
          net.inject(build_gather_worm(g, dir->txn));
          break;
        }
      }
    });
  }
};

std::vector<NodeId> random_sharers(sim::Rng& rng, const MeshShape& mesh,
                                   NodeId home, int d) {
  std::set<NodeId> s;
  while (static_cast<int>(s.size()) < d) {
    const auto n = static_cast<NodeId>(rng.next_below(mesh.num_nodes()));
    if (n != home) s.insert(n);
  }
  return {s.begin(), s.end()};
}

class TxnAllSchemes : public ::testing::TestWithParam<Scheme> {};

TEST_P(TxnAllSchemes, CollectsExactlyDAcksRandomPatterns) {
  const Scheme scheme = GetParam();
  sim::Rng rng(99 + static_cast<int>(scheme));
  for (int d : {1, 2, 4, 9, 20, 40}) {
    for (int trial = 0; trial < 6; ++trial) {
      const auto home = static_cast<NodeId>(rng.next_below(64));
      TxnHarness hx(8, 8, home);
      const auto sharers = random_sharers(rng, hx.mesh, home, d);
      hx.run(scheme, sharers);
      const bool done = hx.eng.run_until(
          [&] { return hx.acks >= d; }, 500'000);
      ASSERT_TRUE(done) << scheme_name(scheme) << " d=" << d << " trial "
                        << trial << " acks=" << hx.acks << "/" << d;
      EXPECT_EQ(hx.acks, d);
      EXPECT_EQ(hx.invalidated, d);
      // Nothing must remain in flight after quiescence.
      ASSERT_TRUE(hx.eng.run_to_quiescence(100'000));
      EXPECT_EQ(hx.acks, d);
      EXPECT_EQ(hx.net.worms_in_flight(), 0u);
    }
  }
}

TEST_P(TxnAllSchemes, CornerHomePositions) {
  const Scheme scheme = GetParam();
  sim::Rng rng(7);
  const MeshShape mesh(8, 8);
  for (NodeId home : {mesh.id_of({0, 0}), mesh.id_of({7, 7}),
                      mesh.id_of({0, 7}), mesh.id_of({7, 0}),
                      mesh.id_of({0, 3}), mesh.id_of({4, 0})}) {
    TxnHarness hx(8, 8, home);
    const auto sharers = random_sharers(rng, hx.mesh, home, 12);
    hx.run(scheme, sharers);
    ASSERT_TRUE(hx.eng.run_until([&] { return hx.acks >= 12; }, 500'000))
        << scheme_name(scheme) << " home=" << mesh.to_string(home)
        << " acks=" << hx.acks;
    EXPECT_EQ(hx.acks, 12);
  }
}

TEST_P(TxnAllSchemes, StructuredPatterns) {
  const Scheme scheme = GetParam();
  const MeshShape mesh(8, 8);
  const NodeId home = mesh.id_of({3, 3});
  std::vector<std::vector<NodeId>> patterns;
  // Full column.
  std::vector<NodeId> col;
  for (int y = 0; y < 8; ++y)
    if (mesh.id_of({6, y}) != home) col.push_back(mesh.id_of({6, y}));
  patterns.push_back(col);
  // Full home row except the home.
  std::vector<NodeId> row;
  for (int x = 0; x < 8; ++x)
    if (x != 3) row.push_back(mesh.id_of({x, 3}));
  patterns.push_back(row);
  // Home column.
  std::vector<NodeId> hcol;
  for (int y = 0; y < 8; ++y)
    if (y != 3) hcol.push_back(mesh.id_of({3, y}));
  patterns.push_back(hcol);
  // 2x2 cluster far from the home.
  patterns.push_back({mesh.id_of({6, 6}), mesh.id_of({7, 6}),
                      mesh.id_of({6, 7}), mesh.id_of({7, 7})});
  // Everything (broadcast invalidation).
  std::vector<NodeId> all;
  for (NodeId n = 0; n < 64; ++n)
    if (n != home) all.push_back(n);
  patterns.push_back(all);

  for (const auto& sharers : patterns) {
    const int d = static_cast<int>(sharers.size());
    TxnHarness hx(8, 8, home);
    hx.run(scheme, sharers);
    ASSERT_TRUE(hx.eng.run_until([&] { return hx.acks >= d; }, 1'000'000))
        << scheme_name(scheme) << " d=" << d << " acks=" << hx.acks;
    EXPECT_EQ(hx.acks, d);
  }
}

TEST_P(TxnAllSchemes, TinyIAckBanksStillComplete) {
  // With the minimum bank size the paper considers (2 entries) everything
  // must still complete (reserve worms may stall transiently).
  const Scheme scheme = GetParam();
  NocParams p;
  p.iack_entries = 2;
  sim::Rng rng(5);
  const NodeId home = 27;
  TxnHarness hx(8, 8, home, p);
  const auto sharers = random_sharers(rng, hx.mesh, home, 24);
  hx.run(scheme, sharers);
  ASSERT_TRUE(hx.eng.run_until([&] { return hx.acks >= 24; }, 1'000'000))
      << scheme_name(scheme) << " acks=" << hx.acks;
  EXPECT_EQ(hx.acks, 24);
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, TxnAllSchemes,
                         ::testing::ValuesIn(kAllSchemes),
                         [](const auto& info) {
                           std::string n(scheme_name(info.param));
                           for (auto& c : n)
                             if (c == '-') c = '_';
                           return n;
                         });

TEST(TxnConcurrent, ManyOverlappingTransactionsAllComplete) {
  // Several homes run MI-MA transactions concurrently: i-ack banks are
  // shared across transactions, deferred gathers interleave.
  const MeshShape mesh(8, 8);
  sim::Rng rng(17);
  sim::Engine eng;
  noc::Network net(eng, mesh, NocParams{});
  struct Txn {
    NodeId home;
    int d;
    int acks = 0;
    std::shared_ptr<InvalDirective> dir;
  };
  std::vector<Txn> txns;
  auto find_txn = [&](TxnId id) -> Txn& { return txns[id]; };
  net.set_delivery_handler([&](NodeId where, const WormPtr& worm) {
    if (worm->kind == WormKind::Gather) {
      find_txn(worm->txn).acks += worm->gathered;
      return;
    }
    auto dir = std::dynamic_pointer_cast<const InvalDirective>(worm->payload);
    ASSERT_NE(dir, nullptr);
    eng.schedule_after(8, [&, where, dir] {
      switch (dir->roles().at(where)) {
        case SharerRole::PostLocal:
          net.post_iack(where, dir->txn, 1);
          break;
        case SharerRole::LaunchGather:
          net.inject(build_gather_worm(dir->gathers()[dir->gather_of().at(where)],
                                       dir->txn));
          break;
        default:
          FAIL() << "unexpected role";
      }
    });
  });

  const Scheme schemes[] = {Scheme::EcCmCg, Scheme::EcCmHg, Scheme::WfScSg};
  for (TxnId t = 0; t < 12; ++t) {
    Txn txn;
    txn.home = static_cast<NodeId>(rng.next_below(64));
    txn.d = 5 + static_cast<int>(rng.next_below(12));
    std::set<NodeId> sh;
    while (static_cast<int>(sh.size()) < txn.d) {
      const auto n = static_cast<NodeId>(rng.next_below(64));
      if (n != txn.home) sh.insert(n);
    }
    auto plan = plan_invalidation(schemes[t % 3], mesh, txn.home,
                                  {sh.begin(), sh.end()}, t,
                                  noc::WormSizing{});
    txn.dir = plan.directive;
    txns.push_back(txn);
    for (const auto& w : plan.request_worms) net.inject(w);
  }
  const bool done = eng.run_until(
      [&] {
        for (const auto& t : txns)
          if (t.acks < t.d) return false;
        return true;
      },
      3'000'000);
  for (const auto& t : txns) EXPECT_EQ(t.acks, t.d);
  ASSERT_TRUE(done);
}

} // namespace
} // namespace mdw::core
