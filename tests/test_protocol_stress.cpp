// Randomized protocol stress: every node issues a stream of random reads
// and writes over a small, heavily-shared block pool.  After quiescence the
// coherence invariants must hold (single writer, no stale sharers,
// directory/cache agreement), and with one designated writer per block,
// every reader must observe monotonically non-decreasing values.
#include <gtest/gtest.h>

#include <map>

#include "dsm/machine.h"
#include "sim/rng.h"

namespace mdw::dsm {
namespace {

SystemParams stress_params(core::Scheme s, int mesh = 4) {
  SystemParams p;
  p.mesh_w = mesh;
  p.mesh_h = mesh;
  p.scheme = s;
  p.cache_lines = 32;  // small: exercises evictions and writebacks
  return p;
}

class Stress : public ::testing::TestWithParam<core::Scheme> {};

TEST_P(Stress, RandomMixedTrafficStaysCoherent) {
  Machine m(stress_params(GetParam()));
  sim::Rng rng(2718 + static_cast<int>(GetParam()));
  const int n = m.num_nodes();
  const int kBlocks = 24;  // heavy sharing
  const int kOpsPerNode = 60;

  std::vector<int> remaining(n, kOpsPerNode);
  std::uint64_t next_value = 1;

  // Issue-next-op driver per node.
  std::function<void(NodeId)> issue = [&](NodeId id) {
    if (remaining[id]-- <= 0) return;
    const BlockAddr a = rng.next_below(kBlocks);
    if (rng.next_bool(0.4)) {
      m.node(id).write(a, next_value++, [&, id] { issue(id); });
    } else {
      m.node(id).read(a, [&, id](std::uint64_t) { issue(id); });
    }
  };
  for (NodeId id = 0; id < n; ++id) issue(id);

  ASSERT_TRUE(m.engine().run_until(
      [&] {
        return m.all_idle();
      },
      50'000'000))
      << core::scheme_name(GetParam());
  ASSERT_TRUE(m.engine().run_to_quiescence(5'000'000));
  const std::string err = m.check_coherence();
  EXPECT_TRUE(err.empty()) << err;
  EXPECT_GT(m.stats().inval_txns, 0u);
}

TEST_P(Stress, SingleWriterReadersSeeMonotonicValues) {
  Machine m(stress_params(GetParam()));
  sim::Rng rng(137 + static_cast<int>(GetParam()));
  const int n = m.num_nodes();
  const int kBlocks = 8;
  const int kOpsPerNode = 50;

  // Block b is written only by node (b % n); value increments per write.
  std::vector<std::uint64_t> write_seq(kBlocks, 0);
  // last value observed per (reader, block): must never decrease.
  std::map<std::pair<NodeId, BlockAddr>, std::uint64_t> observed;
  bool violation = false;

  std::vector<int> remaining(n, kOpsPerNode);
  std::function<void(NodeId)> issue = [&](NodeId id) {
    if (remaining[id]-- <= 0) return;
    const BlockAddr a = rng.next_below(kBlocks);
    const NodeId writer = static_cast<NodeId>(a % n);
    if (id == writer && rng.next_bool(0.5)) {
      m.node(id).write(a, ++write_seq[a], [&, id] { issue(id); });
    } else {
      m.node(id).read(a, [&, id, a](std::uint64_t v) {
        auto& last = observed[{id, a}];
        if (v < last) violation = true;
        last = v;
        issue(id);
      });
    }
  };
  for (NodeId id = 0; id < n; ++id) issue(id);

  ASSERT_TRUE(m.engine().run_until([&] { return m.all_idle(); }, 50'000'000));
  EXPECT_FALSE(violation) << "a reader observed a value going backwards";
  ASSERT_TRUE(m.engine().run_to_quiescence(5'000'000));
  const std::string err = m.check_coherence();
  EXPECT_TRUE(err.empty()) << err;
}

TEST_P(Stress, HotBlockWriterStorm) {
  // Every node repeatedly writes the same block: maximal invalidation and
  // recall pressure on one home.
  Machine m(stress_params(GetParam()));
  const int n = m.num_nodes();
  const BlockAddr a = 5;
  std::vector<int> remaining(n, 12);
  std::uint64_t next_value = 1;
  std::function<void(NodeId)> issue = [&](NodeId id) {
    if (remaining[id]-- <= 0) return;
    // Read first (become a sharer), then write: maximizes sharer counts.
    m.node(id).read(a, [&, id](std::uint64_t) {
      m.node(id).write(a, next_value++, [&, id] { issue(id); });
    });
  };
  for (NodeId id = 0; id < n; ++id) issue(id);
  ASSERT_TRUE(m.engine().run_until([&] { return m.all_idle(); }, 100'000'000))
      << core::scheme_name(GetParam());
  ASSERT_TRUE(m.engine().run_to_quiescence(5'000'000));
  const std::string err = m.check_coherence();
  EXPECT_TRUE(err.empty()) << err;
}

TEST_P(Stress, AdaptiveUnicastStaysCoherent) {
  // Dynamic per-hop adaptive routing for the protocol's unicast messages
  // (only changes behaviour under the turn-model schemes).
  auto p = stress_params(GetParam());
  p.adaptive_unicast = true;
  Machine m(p);
  sim::Rng rng(404 + static_cast<int>(GetParam()));
  const int n = m.num_nodes();
  std::vector<int> remaining(n, 40);
  std::uint64_t next_value = 1;
  std::function<void(NodeId)> issue = [&](NodeId id) {
    if (remaining[id]-- <= 0) return;
    const BlockAddr a = rng.next_below(20);
    if (rng.next_bool(0.4)) {
      m.node(id).write(a, next_value++, [&, id] { issue(id); });
    } else {
      m.node(id).read(a, [&, id](std::uint64_t) { issue(id); });
    }
  };
  for (NodeId id = 0; id < n; ++id) issue(id);
  ASSERT_TRUE(m.engine().run_until([&] { return m.all_idle(); }, 50'000'000))
      << core::scheme_name(GetParam());
  ASSERT_TRUE(m.engine().run_to_quiescence(5'000'000));
  const std::string err = m.check_coherence();
  EXPECT_TRUE(err.empty()) << err;
}

TEST_P(Stress, LargerMeshSmoke) {
  Machine m(stress_params(GetParam(), /*mesh=*/6));
  sim::Rng rng(99);
  const int n = m.num_nodes();
  std::vector<int> remaining(n, 20);
  std::uint64_t next_value = 1;
  std::function<void(NodeId)> issue = [&](NodeId id) {
    if (remaining[id]-- <= 0) return;
    const BlockAddr a = rng.next_below(16);
    if (rng.next_bool(0.3)) {
      m.node(id).write(a, next_value++, [&, id] { issue(id); });
    } else {
      m.node(id).read(a, [&, id](std::uint64_t) { issue(id); });
    }
  };
  for (NodeId id = 0; id < n; ++id) issue(id);
  ASSERT_TRUE(m.engine().run_until([&] { return m.all_idle(); }, 100'000'000));
  ASSERT_TRUE(m.engine().run_to_quiescence(5'000'000));
  const std::string err = m.check_coherence();
  EXPECT_TRUE(err.empty()) << err;
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, Stress,
                         ::testing::ValuesIn(core::kAllSchemes),
                         [](const auto& info) {
                           std::string n(core::scheme_name(info.param));
                           for (auto& c : n)
                             if (c == '-') c = '_';
                           return n;
                         });

} // namespace
} // namespace mdw::dsm
