// Observability subsystem: histogram bucket boundaries and percentiles,
// registry get-or-create semantics, SamplerHandle null-safety, link heatmap
// accounting, and Chrome-trace JSON structure (monotonic ts).
#include <gtest/gtest.h>

#include <cctype>
#include <sstream>
#include <string>
#include <vector>

#include "dsm/machine.h"
#include "obs/heatmap.h"
#include "obs/metrics.h"
#include "obs/trace_writer.h"

using namespace mdw;

namespace {

/// Extract every numeric "ts" field from a trace-event JSON dump, in order.
std::vector<long long> extract_ts(const std::string& json) {
  std::vector<long long> out;
  const std::string key = "\"ts\": ";
  for (std::size_t pos = json.find(key); pos != std::string::npos;
       pos = json.find(key, pos + 1)) {
    out.push_back(std::stoll(json.substr(pos + key.size())));
  }
  return out;
}

} // namespace

TEST(HistogramMetric, BucketBoundaries) {
  obs::HistogramMetric h(0.0, 10.0, 5);
  h.add(9.999);   // just under the first boundary -> bucket 0
  h.add(10.0);    // exactly on the boundary -> bucket 1
  h.add(49.999);  // last regular bucket
  h.add(50.0);    // past the top -> overflow bucket
  h.add(1e9);     // far past the top -> overflow bucket
  h.add(-3.0);    // below lo clamps to bucket 0

  const auto& b = h.histogram().buckets();
  ASSERT_EQ(b.size(), 6u);  // 5 regular + 1 overflow
  EXPECT_EQ(b[0], 2u);
  EXPECT_EQ(b[1], 1u);
  EXPECT_EQ(b[4], 1u);
  EXPECT_EQ(b[5], 2u);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_DOUBLE_EQ(h.min(), -3.0);
  EXPECT_DOUBLE_EQ(h.max(), 1e9);
}

TEST(HistogramMetric, PercentilesOnKnownDistribution) {
  // Values 1..100 with unit buckets: quantile() reports the upper edge of
  // the first bucket whose cumulative count exceeds q * total.
  obs::HistogramMetric h(0.0, 1.0, 128);
  for (int i = 1; i <= 100; ++i) h.add(static_cast<double>(i));

  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.mean(), 50.5);
  EXPECT_DOUBLE_EQ(h.p50(), 52.0);
  EXPECT_DOUBLE_EQ(h.p90(), 92.0);
  EXPECT_DOUBLE_EQ(h.p99(), 101.0);
  // Degenerate distribution: every percentile lands in the same bucket.
  obs::HistogramMetric one(0.0, 1.0, 8);
  for (int i = 0; i < 50; ++i) one.add(3.5);
  EXPECT_DOUBLE_EQ(one.p50(), 4.0);
  EXPECT_DOUBLE_EQ(one.p99(), 4.0);
}

TEST(MetricsRegistry, GetOrCreateReturnsStableObjects) {
  obs::MetricsRegistry r;
  obs::Counter& c1 = r.counter("worms");
  c1.inc(3);
  obs::Counter& c2 = r.counter("worms");
  EXPECT_EQ(&c1, &c2);
  EXPECT_EQ(c2.value(), 3u);

  obs::Gauge& g = r.gauge("cycles");
  g.set(42.0);
  EXPECT_DOUBLE_EQ(r.gauge("cycles").value(), 42.0);

  obs::HistogramMetric& h1 = r.histogram("lat", 0.0, 16.0, 8);
  h1.add(20.0);
  // Repeated calls ignore the (different) layout and return the original.
  obs::HistogramMetric& h2 = r.histogram("lat", 0.0, 1.0, 4);
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.count(), 1u);

  EXPECT_NE(r.find_counter("worms"), nullptr);
  EXPECT_EQ(r.find_counter("nope"), nullptr);
  EXPECT_EQ(r.find_gauge("nope"), nullptr);
  EXPECT_EQ(r.find_histogram("nope"), nullptr);
}

TEST(MetricsRegistry, JsonDumpContainsAllSections) {
  obs::MetricsRegistry r;
  r.counter("hops").inc(7);
  r.gauge("depth").set(2.5);
  r.histogram("lat", 0.0, 1.0, 4).add(1.5);
  std::ostringstream os;
  r.write_json(os);
  const std::string j = os.str();
  EXPECT_NE(j.find("\"counters\""), std::string::npos);
  EXPECT_NE(j.find("\"hops\": 7"), std::string::npos);
  EXPECT_NE(j.find("\"gauges\""), std::string::npos);
  EXPECT_NE(j.find("\"histograms\""), std::string::npos);
  EXPECT_NE(j.find("\"p99\""), std::string::npos);
  // Braces balance (cheap structural validity check).
  long depth = 0;
  for (char c : j) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(SamplerHandle, UnboundIsSafeBoundForwards) {
  obs::SamplerHandle s;
  EXPECT_FALSE(s.bound());
  s.add(5.0);  // dropped, no crash
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 0.0);

  obs::HistogramMetric h(0.0, 1.0, 16);
  s.bind(&h);
  EXPECT_TRUE(s.bound());
  s.add(2.0);
  s.add(4.0);
  EXPECT_EQ(s.count(), 2u);
  EXPECT_DOUBLE_EQ(s.sum(), 6.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_EQ(h.count(), 2u);
}

TEST(LinkHeatmap, RecordsAndAggregates) {
  obs::LinkHeatmap hm(3, 2);  // nodes 0..5, node = y*3 + x
  hm.record_hop(0, 2);        // (0,0) East
  hm.record_hop(0, 2);
  hm.record_hop(4, 0);        // (1,1) North
  hm.record_stall(0, 2);

  EXPECT_EQ(hm.hops(0, 2), 2u);
  EXPECT_EQ(hm.hops(4, 0), 1u);
  EXPECT_EQ(hm.total_hops(), 3u);
  EXPECT_EQ(hm.total_stalls(), 1u);

  const auto hot = hm.hottest();
  EXPECT_EQ(hot.node, 0);
  EXPECT_EQ(hot.dir, 2);
  EXPECT_EQ(hot.hops, 2u);

  // Edge links do not exist: West from x=0, East from x=2, South from y=0.
  EXPECT_FALSE(hm.has_link(0, 3));
  EXPECT_FALSE(hm.has_link(2, 2));
  EXPECT_FALSE(hm.has_link(1, 1));
  EXPECT_TRUE(hm.has_link(0, 2));
  EXPECT_TRUE(hm.has_link(0, 0));

  std::ostringstream csv;
  hm.write_csv(csv);
  EXPECT_NE(csv.str().find("node,x,y,dir,flit_hops,stall_cycles"),
            std::string::npos);
  EXPECT_NE(csv.str().find("0,0,0,E,2,1"), std::string::npos);
}

TEST(TraceWriter, OutputIsSortedAndWellFormed) {
  obs::TraceWriter tw;
  tw.complete("late", "noc", 500, 10, 1);
  tw.instant("first", "dsm", 5, 0);
  tw.counter("bank", 250, 3, 2.0);
  tw.complete("early", "noc", 100, 50, 2, R"({"d": 4})");
  ASSERT_EQ(tw.num_events(), 4u);

  std::ostringstream os;
  tw.write(os);
  const std::string j = os.str();

  const auto ts = extract_ts(j);
  ASSERT_EQ(ts.size(), 4u);
  for (std::size_t i = 1; i < ts.size(); ++i) EXPECT_LE(ts[i - 1], ts[i]);

  EXPECT_EQ(j.rfind("{\"traceEvents\": [", 0), 0u);  // prefix
  EXPECT_NE(j.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(j.find("\"ph\": \"C\""), std::string::npos);
  EXPECT_NE(j.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(j.find("\"args\": {\"d\": 4}"), std::string::npos);
  long depth = 0;
  for (char c : j) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(Observability, MachineEndToEnd) {
  // One invalidation transaction on a 4x4 machine with registry + tracer
  // attached: the histogram fills, the heatmap sees flits, the trace has
  // monotonically increasing timestamps and worm/txn spans.
  obs::MetricsRegistry registry;
  obs::TraceWriter trace;
  dsm::SystemParams p;
  p.mesh_w = p.mesh_h = 4;
  p.scheme = core::Scheme::UiUa;
  dsm::Machine m(p, &registry);
  m.set_trace_writer(&trace);

  const BlockAddr a = static_cast<BlockAddr>(m.num_nodes()) + 5;  // home = 5
  for (NodeId s : {NodeId{0}, NodeId{3}, NodeId{12}}) {
    bool done = false;
    m.node(s).read(a, [&](std::uint64_t) { done = true; });
    ASSERT_TRUE(m.engine().run_until([&] { return done; }, 1'000'000));
  }
  m.engine().run_to_quiescence(100'000);
  bool done = false;
  m.node(5).write(a, 1, [&] { done = true; });
  ASSERT_TRUE(m.engine().run_until([&] { return done; }, 1'000'000));
  m.engine().run_to_quiescence(100'000);
  m.snapshot_metrics();

  // The registry histogram and the stats facade are the same object.
  const auto* lat = registry.find_histogram("inval_latency");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->count(), m.stats().inval_latency.count());
  EXPECT_GE(lat->count(), 1u);
  EXPECT_GT(lat->p50(), 0.0);

  const auto* hops = registry.find_counter("link_flit_hops");
  ASSERT_NE(hops, nullptr);
  EXPECT_GT(hops->value(), 0u);
  EXPECT_EQ(hops->value(), m.network().heatmap().total_hops());

  ASSERT_GT(trace.num_events(), 0u);
  std::ostringstream os;
  trace.write(os);
  const std::string j = os.str();
  const auto ts = extract_ts(j);
  ASSERT_EQ(ts.size(), trace.num_events());
  for (std::size_t i = 1; i < ts.size(); ++i) EXPECT_LE(ts[i - 1], ts[i]);
  EXPECT_NE(j.find("\"name\": \"inval_txn\""), std::string::npos);
  EXPECT_NE(j.find("\"name\": \"worm.unicast\""), std::string::npos);
}
