// Integration tests of the cycle-level network with unicast worms: delivery,
// latency model, wormhole pipelining, contention, and flit conservation.
#include <gtest/gtest.h>

#include <map>

#include "noc/network.h"
#include "noc/worm_builder.h"
#include "noc/worm_pool.h"
#include "sim/engine.h"
#include "sim/rng.h"

namespace mdw::noc {
namespace {

struct Fixture {
  sim::Engine eng;
  MeshShape mesh;
  NocParams params;
  Network net;
  std::vector<std::pair<NodeId, WormPtr>> delivered;

  explicit Fixture(int w = 8, int h = 8, NocParams p = {})
      : mesh(w, h), params(p), net(eng, mesh, params) {
    net.set_delivery_handler(
        [this](NodeId n, const WormPtr& worm) { delivered.emplace_back(n, worm); });
  }
};

TEST(NetworkUnicast, DeliversSingleWorm) {
  Fixture f;
  auto w = make_unicast(f.mesh, RoutingAlgo::EcubeXY, VNet::Request,
                        f.mesh.id_of({0, 0}), f.mesh.id_of({5, 3}), 10, 1,
                        nullptr);
  f.net.inject(w);
  ASSERT_TRUE(f.eng.run_until([&] { return f.delivered.size() == 1; }, 10'000));
  EXPECT_EQ(f.delivered[0].first, f.mesh.id_of({5, 3}));
  EXPECT_EQ(f.delivered[0].second.get(), w.get());
  EXPECT_EQ(f.net.stats().worms_delivered, 1u);
  EXPECT_EQ(f.net.worms_in_flight(), 0u);
}

TEST(NetworkUnicast, LatencyMatchesWormholeModel) {
  // Wormhole latency ~ hops * (router_delay + 1 link cycle) + body flits.
  Fixture f;
  const int hops = 7;  // (0,0) -> (7,0)
  const int len = 12;
  auto w = make_unicast(f.mesh, RoutingAlgo::EcubeXY, VNet::Request,
                        f.mesh.id_of({0, 0}), f.mesh.id_of({7, 0}), len, 1,
                        nullptr);
  f.net.inject(w);
  ASSERT_TRUE(f.eng.run_until([&] { return f.delivered.size() == 1; }, 10'000));
  const auto lat = static_cast<int>(w->deliver_cycle - w->inject_cycle);
  const int expected = hops * (f.params.router_delay + 1) + len;
  EXPECT_NEAR(lat, expected, expected / 2 + 4);
  EXPECT_GE(lat, hops + len);  // physical lower bound
}

TEST(NetworkUnicast, SelfDeliveryBypassesNetwork) {
  Fixture f;
  WormPtr w = WormPool::local().acquire();
  w->src = 3;
  w->path = {3};
  w->dests = {DestSpec{3, DestAction::Deliver, 1}};
  w->length_flits = 8;
  f.net.inject(w);
  ASSERT_TRUE(f.eng.run_until([&] { return f.delivered.size() == 1; }, 100));
  EXPECT_EQ(f.delivered[0].first, 3);
  EXPECT_EQ(f.net.stats().link_flit_hops, 0u);
}

TEST(NetworkUnicast, FlitHopAccountingMatchesPathLength) {
  Fixture f;
  const int len = 10;
  auto w = make_unicast(f.mesh, RoutingAlgo::EcubeXY, VNet::Request,
                        f.mesh.id_of({2, 2}), f.mesh.id_of({6, 5}), len, 1,
                        nullptr);
  const auto hops = static_cast<std::uint64_t>(w->path.size() - 1);
  f.net.inject(w);
  ASSERT_TRUE(f.eng.run_to_quiescence(10'000));
  EXPECT_EQ(f.net.stats().link_flit_hops, hops * len);
}

TEST(NetworkUnicast, ManyRandomWormsAllDelivered) {
  Fixture f;
  sim::Rng rng(99);
  const int n_worms = 200;
  std::map<const Worm*, NodeId> expect;
  for (int i = 0; i < n_worms; ++i) {
    const auto s = static_cast<NodeId>(rng.next_below(64));
    auto d = static_cast<NodeId>(rng.next_below(64));
    const auto vnet = rng.next_bool(0.5) ? VNet::Request : VNet::Reply;
    const auto algo =
        vnet == VNet::Request ? RoutingAlgo::EcubeXY : RoutingAlgo::EcubeYX;
    auto w = make_unicast(f.mesh, algo, vnet, s, d,
                          8 + static_cast<int>(rng.next_below(32)),
                          static_cast<TxnId>(i), nullptr);
    expect[w.get()] = d;
    f.net.inject(w);
  }
  ASSERT_TRUE(f.eng.run_to_quiescence(2'000'000));
  EXPECT_EQ(f.delivered.size(), static_cast<std::size_t>(n_worms));
  for (const auto& [node, worm] : f.delivered) {
    EXPECT_EQ(expect.at(worm.get()), node);
  }
  EXPECT_EQ(f.net.worms_in_flight(), 0u);
}

TEST(NetworkUnicast, HotSpotContentionSerializesAtLink) {
  // Many worms into one destination: all must still arrive (no starvation),
  // and aggregate time reflects link serialization.
  Fixture f;
  const NodeId sink = f.mesh.id_of({4, 4});
  const int len = 16;
  int n = 0;
  for (int x = 0; x < 8; ++x) {
    for (int y = 0; y < 8; ++y) {
      if (f.mesh.id_of({x, y}) == sink) continue;
      if ((x + y) % 2) continue;  // 32 senders
      f.net.inject(make_unicast(f.mesh, RoutingAlgo::EcubeXY, VNet::Request,
                                f.mesh.id_of({x, y}), sink, len,
                                static_cast<TxnId>(n++), nullptr));
    }
  }
  ASSERT_TRUE(f.eng.run_to_quiescence(1'000'000));
  EXPECT_EQ(static_cast<int>(f.delivered.size()), n);
}

TEST(NetworkUnicast, WestFirstAdaptivePathsDeliver) {
  Fixture f;
  sim::Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    const auto s = static_cast<NodeId>(rng.next_below(64));
    const auto d = static_cast<NodeId>(rng.next_below(64));
    f.net.inject(make_unicast(f.mesh, RoutingAlgo::WestFirst, VNet::Request, s,
                              d, 8, static_cast<TxnId>(i), nullptr));
  }
  ASSERT_TRUE(f.eng.run_to_quiescence(2'000'000));
  EXPECT_EQ(f.delivered.size(), 100u);
}

TEST(NetworkUnicast, VnetsAreSegregated) {
  // A worm on the reply vnet must not be blocked forever by request-vnet
  // congestion: saturate request vnet on a link, then send a reply worm.
  Fixture f;
  const NodeId a = f.mesh.id_of({0, 0}), b = f.mesh.id_of({7, 0});
  for (int i = 0; i < 10; ++i) {
    f.net.inject(make_unicast(f.mesh, RoutingAlgo::EcubeXY, VNet::Request, a,
                              b, 64, static_cast<TxnId>(i), nullptr));
  }
  auto reply = make_unicast(f.mesh, RoutingAlgo::EcubeYX, VNet::Reply, a, b, 8,
                            999, nullptr);
  f.net.inject(reply);
  ASSERT_TRUE(f.eng.run_until([&] { return reply->deliver_cycle != 0; }, 3'000));
}

TEST(NetworkUnicast, ThroughputBoundedByLinkBandwidth) {
  // Two nodes exchanging long worms across one link chain: total time must
  // be at least total flits (1 flit/cycle/link).
  Fixture f;
  const NodeId a = f.mesh.id_of({0, 0}), b = f.mesh.id_of({1, 0});
  const int n = 20, len = 32;
  for (int i = 0; i < n; ++i) {
    f.net.inject(make_unicast(f.mesh, RoutingAlgo::EcubeXY, VNet::Request, a,
                              b, len, static_cast<TxnId>(i), nullptr));
  }
  ASSERT_TRUE(f.eng.run_to_quiescence(1'000'000));
  EXPECT_GE(f.eng.now(), static_cast<Cycle>(n * len));
  EXPECT_EQ(f.delivered.size(), static_cast<std::size_t>(n));
}

TEST(NetworkAdaptive, AdaptiveUnicastsDeliverEverywhere) {
  Fixture f;
  sim::Rng rng(31);
  int n = 0;
  for (int i = 0; i < 150; ++i) {
    const auto s = static_cast<NodeId>(rng.next_below(64));
    const auto d = static_cast<NodeId>(rng.next_below(64));
    if (s == d) continue;
    const auto algo =
        rng.next_bool(0.5) ? RoutingAlgo::WestFirst : RoutingAlgo::EastFirst;
    f.net.inject(make_adaptive_unicast(algo, VNet::Request, s, d, 10,
                                       static_cast<TxnId>(i), nullptr));
    ++n;
  }
  ASSERT_TRUE(f.eng.run_to_quiescence(2'000'000));
  EXPECT_EQ(static_cast<int>(f.delivered.size()), n);
  EXPECT_EQ(f.net.worms_in_flight(), 0u);
}

TEST(NetworkAdaptive, PathsStayMinimalAndConformant) {
  Fixture f;
  sim::Rng rng(33);
  std::vector<WormPtr> worms;
  for (int i = 0; i < 80; ++i) {
    const auto s = static_cast<NodeId>(rng.next_below(64));
    const auto d = static_cast<NodeId>(rng.next_below(64));
    if (s == d) continue;
    auto w = make_adaptive_unicast(RoutingAlgo::WestFirst, VNet::Request, s,
                                   d, 8, static_cast<TxnId>(i), nullptr);
    worms.push_back(w);
    f.net.inject(w);
  }
  ASSERT_TRUE(f.eng.run_to_quiescence(2'000'000));
  for (const auto& w : worms) {
    // The dynamically-built path must be a minimal, west-first-legal walk.
    EXPECT_EQ(static_cast<int>(w->path.size()) - 1,
              f.mesh.manhattan(w->src, w->dests.back().node));
    EXPECT_TRUE(is_conformant_path(RoutingAlgo::WestFirst, f.mesh, w->path));
    EXPECT_EQ(w->path.back(), w->dests.back().node);
  }
}

TEST(NetworkAdaptive, RoutesAroundCongestion) {
  // Saturate the straight-line row with long worms; an adaptive worm with a
  // diagonal destination should finish far sooner than a deterministic one
  // that must share the congested first leg.
  auto run = [](bool adaptive) {
    Fixture f;
    const NodeId src = f.mesh.id_of({0, 0});
    // Background: a different node hogs the (1,0)..(4,0) row links with
    // bulky traffic; the probe's deterministic first leg runs right into it.
    for (int i = 0; i < 8; ++i) {
      f.net.inject(make_unicast(f.mesh, RoutingAlgo::WestFirst, VNet::Request,
                                f.mesh.id_of({1, 0}), f.mesh.id_of({4, 0}), 64,
                                static_cast<TxnId>(100 + i), nullptr));
    }
    f.eng.run_for(30);  // let the bulk traffic occupy the row
    WormPtr probe =
        adaptive ? make_adaptive_unicast(RoutingAlgo::WestFirst,
                                         VNet::Request, src,
                                         f.mesh.id_of({4, 4}), 8, 1, nullptr)
                 : make_unicast(f.mesh, RoutingAlgo::WestFirst, VNet::Request,
                                src, f.mesh.id_of({4, 4}), 8, 1, nullptr);
    f.net.inject(probe);
    f.eng.run_until([&] { return probe->deliver_cycle != 0; }, 100'000);
    return probe->deliver_cycle - probe->inject_cycle;
  };
  const auto det = run(false);
  const auto ada = run(true);
  EXPECT_LT(ada, det);
}

} // namespace
} // namespace mdw::noc
