// Application-kernel tests: numerical correctness of the real computations
// and structural sanity of the emitted traces.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <queue>
#include <set>

#include "workload/apps.h"
#include "workload/synthetic.h"

namespace mdw::workload {
namespace {

// --- trace structure helpers -------------------------------------------------

void expect_valid_structure(const Trace& t) {
  ASSERT_GT(t.nprocs, 0);
  // Barriers appear in the same order in every stream and match the count.
  for (int p = 0; p < t.nprocs; ++p) {
    int barriers = 0;
    std::uint32_t last = 0;
    for (const auto& op : t.per_proc[p]) {
      if (op.kind == OpKind::Barrier) {
        EXPECT_EQ(op.arg, last);
        ++last;
        ++barriers;
      }
    }
    EXPECT_EQ(barriers, t.num_barriers) << "proc " << p;
  }
}

// --- Barnes-Hut ---------------------------------------------------------------

TEST(BarnesHut, RunsAndIsDeterministic) {
  BarnesHutResult r1, r2;
  const Trace t1 = barnes_hut_trace(8, 64, 2, 42, &r1);
  const Trace t2 = barnes_hut_trace(8, 64, 2, 42, &r2);
  EXPECT_EQ(r1.x, r2.x);
  EXPECT_EQ(t1.total_ops(), t2.total_ops());
  expect_valid_structure(t1);
  EXPECT_EQ(t1.num_barriers, 6);  // 3 phases x 2 steps
}

TEST(BarnesHut, BodiesActuallyMove) {
  BarnesHutResult r;
  (void)barnes_hut_trace(4, 32, 3, 7, &r);
  ASSERT_EQ(r.x.size(), 32u);
  // Gravity must have moved things; positions stay finite.
  int moved = 0;
  for (double v : r.x) {
    EXPECT_TRUE(std::isfinite(v));
    moved += (std::abs(v) > 1e-12);
  }
  EXPECT_GT(moved, 16);
  EXPECT_GT(r.tree_nodes_built, 32u * 3 / 2);  // more nodes than bodies
}

TEST(BarnesHut, TreeBlocksAreReadShared) {
  // Every processor's force phase must read tree blocks written by proc 0 —
  // the access pattern the invalidation study feeds on.
  const Trace t = barnes_hut_trace(8, 64, 1, 3);
  int tree_writes_p0 = 0;
  std::vector<int> tree_reads(8, 0);
  for (int p = 0; p < 8; ++p) {
    for (const auto& op : t.per_proc[p]) {
      const bool tree = op.addr >= kTreeBase && op.addr < kTreeBase + 0x1000;
      if (tree && op.kind == OpKind::Write && p == 0) ++tree_writes_p0;
      if (tree && op.kind == OpKind::Read) ++tree_reads[p];
    }
  }
  EXPECT_GT(tree_writes_p0, 0);
  for (int p = 0; p < 8; ++p) EXPECT_GT(tree_reads[p], 0) << "proc " << p;
}

// --- LU -----------------------------------------------------------------------

TEST(Lu, FactorizationResidualIsSmall) {
  LuResult r;
  const Trace t = lu_trace(16, 64, 8, 5, &r);
  expect_valid_structure(t);
  EXPECT_LT(r.residual, 1e-8);
  EXPECT_EQ(t.num_barriers, 3 * (64 / 8));
}

TEST(Lu, PaperSizeFactorizes) {
  LuResult r;
  (void)lu_trace(16, 128, 8, 11, &r);  // the paper's 128x128, 8x8 blocks
  EXPECT_LT(r.residual, 1e-8);
}

TEST(Lu, DiagonalBlockIsWrittenByOneOwnerPerStep) {
  const Trace t = lu_trace(4, 32, 8, 9);
  // Block (k,k) written exactly twice per elimination of a later stage...
  // Simply check each LU block address is only ever written by one proc
  // within any barrier-delimited phase.
  const int nb = 32 / 8;
  std::map<std::pair<int, BlockAddr>, std::set<int>> phase_writers;
  for (int p = 0; p < 4; ++p) {
    int phase = 0;
    for (const auto& op : t.per_proc[p]) {
      if (op.kind == OpKind::Barrier) ++phase;
      if (op.kind == OpKind::Write) {
        phase_writers[{phase, op.addr}].insert(p);
      }
    }
  }
  for (const auto& [key, writers] : phase_writers) {
    EXPECT_EQ(writers.size(), 1u)
        << "block " << key.second << " written by several procs in phase "
        << key.first;
  }
  (void)nb;
}

// --- APSP ----------------------------------------------------------------------

TEST(Apsp, MatchesDijkstraReference) {
  ApspResult r;
  (void)apsp_trace(8, 32, 21, &r);
  const int n = r.n;
  constexpr std::uint32_t kInf = 1u << 29;

  // Reconstruct the input graph is not possible after FW, so verify with a
  // second property: the result must satisfy the triangle inequality and be
  // idempotent under one more relaxation sweep.
  for (int k = 0; k < n; ++k) {
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        const auto dik = r.dist[static_cast<std::size_t>(i) * n + k];
        const auto dkj = r.dist[static_cast<std::size_t>(k) * n + j];
        const auto dij = r.dist[static_cast<std::size_t>(i) * n + j];
        if (dik < kInf && dkj < kInf) {
          EXPECT_LE(dij, dik + dkj) << i << "->" << j << " via " << k;
        }
      }
    }
  }
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(r.dist[static_cast<std::size_t>(i) * n + i], 0u);
  }
}

TEST(Apsp, PivotRowIsReadByEveryProcessor) {
  const Trace t = apsp_trace(8, 32, 4);
  expect_valid_structure(t);
  // In the first iteration (before barrier 0), every proc reads row 0.
  for (int p = 0; p < 8; ++p) {
    bool read_pivot = false;
    for (const auto& op : t.per_proc[p]) {
      if (op.kind == OpKind::Barrier) break;
      if (op.kind == OpKind::Read && op.addr == kApsBase) read_pivot = true;
    }
    EXPECT_TRUE(read_pivot) << "proc " << p;
  }
}

// --- synthetic -----------------------------------------------------------------

TEST(Synthetic, SharerPatternsRespectConstraints) {
  const noc::MeshShape mesh(8, 8);
  sim::Rng rng(3);
  for (auto pat : {SharerPattern::Uniform, SharerPattern::Cluster,
                   SharerPattern::SameColumn, SharerPattern::SameRow}) {
    for (int d : {1, 3, 6}) {
      const NodeId home = 27, writer = 12;
      const auto s = make_sharers(rng, mesh, home, writer, d, pat);
      EXPECT_EQ(static_cast<int>(s.size()), d) << pattern_name(pat);
      for (NodeId x : s) {
        EXPECT_NE(x, home);
        EXPECT_NE(x, writer);
      }
      if (pat == SharerPattern::SameColumn) {
        for (NodeId x : s)
          EXPECT_EQ(mesh.coord_of(x).x, mesh.coord_of(home).x);
      }
      if (pat == SharerPattern::SameRow) {
        for (NodeId x : s)
          EXPECT_EQ(mesh.coord_of(x).y, mesh.coord_of(home).y);
      }
    }
  }
}

TEST(Synthetic, RandomTraceShapes) {
  const Trace t = random_trace(4, 100, 16, 0.3, 77);
  EXPECT_EQ(t.nprocs, 4);
  EXPECT_EQ(t.total_accesses(), 400u);
  int writes = 0;
  for (const auto& s : t.per_proc) {
    for (const auto& op : s) writes += (op.kind == OpKind::Write);
  }
  EXPECT_NEAR(writes, 120, 40);
}

} // namespace
} // namespace mdw::workload
