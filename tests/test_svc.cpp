// The asynchronous coherence service layer (svc::Session + the per-home
// invalidation pipeline and coalescing window behind it, DESIGN.md §15).
//
// Covered here:
//   * Session API semantics: batches, tickets, polling, callback mode,
//     per-block serialization with overtaking, window enforcement.
//   * The per-home pipeline: depth caps concurrent invalidation
//     transactions, overflow queues FIFO and drains, waits are accounted.
//   * The coalescing window: back-to-back writes hitting one home merge
//     into a single multidestination worm wave that completes every member
//     transaction, with correct values and a coherent end state.
//   * Coherence invariants under multi-outstanding random stress at
//     pipeline depths {2,4,8}, with and without coalescing and eager
//     (release-consistency) grants, for every grouping scheme.
//   * StreamRunner service mode: outstanding=1 reproduces the classic
//     blocking loop cycle-for-cycle.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "dsm/machine.h"
#include "sim/rng.h"
#include "svc/service.h"
#include "workload/generators.h"
#include "workload/stream_runner.h"

namespace mdw {
namespace {

dsm::SystemParams tiny(core::Scheme s = core::Scheme::UiUa) {
  dsm::SystemParams p;
  p.mesh_w = p.mesh_h = 4;
  p.scheme = s;
  p.cache_lines = 64;
  return p;
}

/// Prime a block into the Shared state at the given readers (classic path).
void share_block(dsm::Machine& m, BlockAddr a,
                 const std::vector<NodeId>& readers) {
  for (NodeId r : readers) {
    bool done = false;
    m.node(r).read(a, [&](std::uint64_t) { done = true; });
    ASSERT_TRUE(m.engine().run_until([&] { return done; }, 5'000'000));
  }
  ASSERT_TRUE(m.engine().run_to_quiescence(1'000'000));
}

TEST(Session, BatchTicketsCompleteAndPollConsumes) {
  dsm::Machine m(tiny());
  svc::Session s(m, 0, {.max_outstanding = 4});

  // Writes to distinct blocks (distinct homes) proceed concurrently.
  const auto wt = s.write_batch({{5, 50}, {6, 60}, {7, 70}});
  ASSERT_EQ(wt.size(), 3u);
  ASSERT_TRUE(m.engine().run_until([&] { return s.drained(); }, 5'000'000));
  for (const svc::Ticket t : wt) {
    svc::OpResult r;
    EXPECT_TRUE(s.poll(t));
    ASSERT_TRUE(s.poll(t, r));
    EXPECT_TRUE(r.is_write);
    EXPECT_FALSE(s.poll(t)) << "consumed ticket must not poll again";
  }

  // read_batch observes the written values.
  const auto rt = s.read_batch({5, 6, 7});
  ASSERT_TRUE(m.engine().run_until([&] { return s.drained(); }, 5'000'000));
  const std::uint64_t want[] = {50, 60, 70};
  for (std::size_t i = 0; i < rt.size(); ++i) {
    svc::OpResult r;
    ASSERT_TRUE(s.poll(rt[i], r));
    EXPECT_FALSE(r.is_write);
    EXPECT_EQ(r.value, want[i]);
    EXPECT_EQ(r.addr, static_cast<BlockAddr>(5 + i));
  }
  EXPECT_EQ(s.stats().issued_writes, 3u);
  EXPECT_EQ(s.stats().issued_reads, 3u);
  EXPECT_EQ(s.stats().completed, 6u);
}

TEST(Session, PerBlockSerializationWithOvertaking) {
  dsm::Machine m(tiny());
  svc::Session s(m, 0, {.max_outstanding = 4});

  std::vector<svc::OpResult> done;
  s.set_on_complete([&](const svc::OpResult& r) { done.push_back(r); });

  // Two ops to block 9 must stay in program order; the op to block 10 may
  // overtake the held second write.
  const svc::Ticket w1 = s.write(9, 1);
  const svc::Ticket w2 = s.write(9, 2);
  const svc::Ticket r3 = s.read(10);
  EXPECT_EQ(s.in_flight(), 2);   // w1 + r3; w2 held for its block
  EXPECT_EQ(s.queued(), 1u);
  ASSERT_TRUE(m.engine().run_until([&] { return s.drained(); }, 5'000'000));
  ASSERT_EQ(done.size(), 3u);
  // w1 strictly precedes w2; value 2 is the final one.
  std::size_t i1 = 99, i2 = 99;
  for (std::size_t i = 0; i < done.size(); ++i) {
    if (done[i].ticket == w1) i1 = i;
    if (done[i].ticket == w2) i2 = i;
  }
  EXPECT_LT(i1, i2);
  EXPECT_GT(s.stats().held_for_block, 0u);
  EXPECT_LE(s.stats().max_in_flight, 4);
  (void)r3;

  bool read_done = false;
  std::uint64_t got = 0;
  s.set_on_complete(nullptr);
  const svc::Ticket rt = s.read(9);
  ASSERT_TRUE(m.engine().run_until([&] { return s.poll(rt); }, 5'000'000));
  svc::OpResult r;
  ASSERT_TRUE(s.poll(rt, r));
  got = r.value;
  read_done = true;
  EXPECT_TRUE(read_done);
  EXPECT_EQ(got, 2u);
  EXPECT_TRUE(m.check_coherence().empty());
}

TEST(Session, WindowCapsInFlightOps) {
  dsm::Machine m(tiny());
  svc::Session s(m, 3, {.max_outstanding = 2});
  std::vector<BlockAddr> addrs;
  for (BlockAddr a = 20; a < 30; ++a) addrs.push_back(a);
  (void)s.read_batch(addrs);
  EXPECT_EQ(s.in_flight(), 2);
  EXPECT_EQ(s.queued(), 8u);
  ASSERT_TRUE(m.engine().run_until([&] { return s.drained(); }, 5'000'000));
  EXPECT_EQ(s.stats().completed, 10u);
  EXPECT_LE(s.stats().max_in_flight, 2);
}

TEST(HomePipeline, DepthOneSerializesAndQueues) {
  // Six blocks, one home (node 5), six concurrent writers: with depth 1
  // the home runs exactly one invalidation transaction at a time and the
  // other five wait in its queue.
  auto p = tiny();
  p.svc.pipeline_depth = 1;
  dsm::Machine m(p);
  const std::vector<NodeId> writers{1, 2, 4, 6, 8, 12};
  std::vector<BlockAddr> blocks;
  for (std::size_t i = 0; i < writers.size(); ++i) {
    const auto a = static_cast<BlockAddr>((i + 1) * 16 + 5);
    blocks.push_back(a);
    share_block(m, a, {3, 7, 9, 10});
  }
  int done = 0;
  for (std::size_t i = 0; i < writers.size(); ++i) {
    m.node(writers[i]).write(blocks[i], 100 + i, [&] { ++done; });
  }
  ASSERT_TRUE(m.engine().run_until(
      [&] { return done == static_cast<int>(writers.size()); }, 10'000'000));
  ASSERT_TRUE(m.engine().run_to_quiescence(5'000'000));

  const dsm::NodeStats& hs = m.node(5).stats();
  EXPECT_EQ(hs.svc_pipeline_peak, 1u);
  EXPECT_GE(hs.svc_enqueued, 1u);
  EXPECT_GT(hs.svc_queue_wait_cycles, 0u);
  EXPECT_EQ(m.node(5).svc_queue_depth(), 0u) << "queue must drain";
  EXPECT_EQ(m.node(5).svc_live_invals(), 0);
  const std::string err = m.check_coherence();
  EXPECT_TRUE(err.empty()) << err;
}

TEST(HomePipeline, DeeperPipelineOverlapsTransactions) {
  // Same workload at depth 4: the home overlaps transactions (peak > 1)
  // and finishes the batch in fewer cycles than fully serialized.
  Cycle cycles[2] = {0, 0};
  std::uint64_t peaks[2] = {0, 0};
  const int depths[2] = {1, 4};
  for (int k = 0; k < 2; ++k) {
    auto p = tiny();
    p.svc.pipeline_depth = depths[k];
    dsm::Machine m(p);
    const std::vector<NodeId> writers{1, 2, 4, 6, 8, 12};
    std::vector<BlockAddr> blocks;
    for (std::size_t i = 0; i < writers.size(); ++i) {
      const auto a = static_cast<BlockAddr>((i + 1) * 16 + 5);
      blocks.push_back(a);
      share_block(m, a, {3, 7, 9, 10});
    }
    const Cycle t0 = m.engine().now();
    int done = 0;
    for (std::size_t i = 0; i < writers.size(); ++i) {
      m.node(writers[i]).write(blocks[i], 100 + i, [&] { ++done; });
    }
    ASSERT_TRUE(m.engine().run_until(
        [&] { return done == static_cast<int>(writers.size()); }, 10'000'000));
    cycles[k] = m.engine().now() - t0;
    ASSERT_TRUE(m.engine().run_to_quiescence(5'000'000));
    peaks[k] = m.node(5).stats().svc_pipeline_peak;
    EXPECT_TRUE(m.check_coherence().empty());
  }
  EXPECT_GT(peaks[1], 1u);
  EXPECT_LE(peaks[1], 4u) << "depth cap violated";
  EXPECT_LT(cycles[1], cycles[0]) << "pipelining should beat serialization";
}

TEST(Coalescing, BackToBackWritesMergeIntoOneWave) {
  // Blocks 21 and 37 both live at home 5.  Two writers hit them back to
  // back; a generous window merges the two invalidations into one worm
  // wave that still completes BOTH member transactions correctly.
  for (core::Scheme s : core::kAllSchemes) {
    auto p = tiny(s);
    p.svc.coalesce_window = 2000;  // depth 0: merge on the window timer
    dsm::Machine m(p);
    const std::vector<NodeId> sharers_a{3, 6, 7};
    const std::vector<NodeId> sharers_b{8, 9, 10};
    share_block(m, 21, sharers_a);
    share_block(m, 37, sharers_b);

    svc::Session w1(m, 1, {.max_outstanding = 1});
    svc::Session w2(m, 2, {.max_outstanding = 1});
    const svc::Ticket t1 = w1.write(21, 0xA1);
    const svc::Ticket t2 = w2.write(37, 0xB2);
    ASSERT_TRUE(m.engine().run_until(
        [&] { return w1.poll(t1) && w2.poll(t2); }, 10'000'000));
    ASSERT_TRUE(m.engine().run_to_quiescence(5'000'000));

    const dsm::NodeStats& hs = m.node(5).stats();
    EXPECT_EQ(hs.svc_groups, 1u) << core::scheme_name(s);
    EXPECT_EQ(hs.svc_coalesced_txns, 2u) << core::scheme_name(s);
    EXPECT_EQ(m.stats().inval_txns, 2u) << "both member txns must complete";

    // Every sharer of either block is invalidated.
    for (NodeId r : sharers_a) {
      EXPECT_EQ(m.node(r).cache().lookup(21), dsm::LineState::Invalid);
    }
    for (NodeId r : sharers_b) {
      EXPECT_EQ(m.node(r).cache().lookup(37), dsm::LineState::Invalid);
    }
    const std::string err = m.check_coherence();
    EXPECT_TRUE(err.empty()) << core::scheme_name(s) << "\n" << err;

    // Fresh readers observe the written values.
    std::uint64_t va = 0, vb = 0;
    bool ra = false, rb = false;
    m.node(15).read(21, [&](std::uint64_t v) { va = v; ra = true; });
    m.node(14).read(37, [&](std::uint64_t v) { vb = v; rb = true; });
    ASSERT_TRUE(m.engine().run_until([&] { return ra && rb; }, 5'000'000));
    EXPECT_EQ(va, 0xA1u) << core::scheme_name(s);
    EXPECT_EQ(vb, 0xB2u) << core::scheme_name(s);
  }
}

TEST(Coalescing, SharedSharerAcksOnceForBothBlocks) {
  // Node 3 shares BOTH merged blocks: it must invalidate both copies but
  // contribute exactly one ack, and the home must still complete both
  // transactions (the union bitmap counts it once).
  auto p = tiny();
  p.svc.coalesce_window = 2000;
  dsm::Machine m(p);
  share_block(m, 21, {3, 6});
  share_block(m, 37, {3, 9});

  svc::Session w1(m, 1, {.max_outstanding = 1});
  svc::Session w2(m, 2, {.max_outstanding = 1});
  const svc::Ticket t1 = w1.write(21, 7);
  const svc::Ticket t2 = w2.write(37, 8);
  ASSERT_TRUE(m.engine().run_until(
      [&] { return w1.poll(t1) && w2.poll(t2); }, 10'000'000));
  ASSERT_TRUE(m.engine().run_to_quiescence(5'000'000));

  EXPECT_EQ(m.node(5).stats().svc_groups, 1u);
  EXPECT_EQ(m.node(3).cache().lookup(21), dsm::LineState::Invalid);
  EXPECT_EQ(m.node(3).cache().lookup(37), dsm::LineState::Invalid);
  const std::string err = m.check_coherence();
  EXPECT_TRUE(err.empty()) << err;
}

TEST(ServiceStress, CoherentAtDepths248WithCoalescingAndEagerGrants) {
  // Multi-outstanding sessions on every node, random ops over a small hot
  // block set: every (scheme, depth, window, eager) combination must drain
  // completely and end coherent.
  for (core::Scheme s : core::kAllSchemes) {
    for (int depth : {2, 4, 8}) {
      for (Cycle window : {Cycle{0}, Cycle{16}}) {
        for (bool eager : {false, true}) {
          auto p = tiny(s);
          p.svc.pipeline_depth = depth;
          p.svc.coalesce_window = window;
          p.eager_exclusive_reply = eager;
          dsm::Machine m(p);
          sim::Rng rng(1000 + static_cast<int>(s) * 100 + depth +
                       static_cast<int>(window) + (eager ? 7 : 0));
          std::vector<std::unique_ptr<svc::Session>> sess;
          for (NodeId id = 0; id < m.num_nodes(); ++id) {
            sess.push_back(std::make_unique<svc::Session>(
                m, id, svc::SessionOptions{.max_outstanding = 4}));
            for (int k = 0; k < 40; ++k) {
              const auto a = static_cast<BlockAddr>(rng.next_below(16));
              if (rng.next_bool(0.5)) {
                (void)sess.back()->write(a, rng.next_u64());
              } else {
                (void)sess.back()->read(a);
              }
            }
          }
          ASSERT_TRUE(m.engine().run_until(
              [&] {
                for (const auto& sp : sess) {
                  if (!sp->drained()) return false;
                }
                return true;
              },
              200'000'000))
              << core::scheme_name(s) << " depth=" << depth
              << " window=" << window << " eager=" << eager;
          ASSERT_TRUE(m.engine().run_to_quiescence(5'000'000));
          for (NodeId id = 0; id < m.num_nodes(); ++id) {
            EXPECT_EQ(m.node(id).svc_queue_depth(), 0u);
            EXPECT_EQ(m.node(id).svc_live_invals(), 0);
          }
          const std::string err = m.check_coherence();
          EXPECT_TRUE(err.empty())
              << core::scheme_name(s) << " depth=" << depth
              << " window=" << window << " eager=" << eager << "\n"
              << err;
        }
      }
    }
  }
}

TEST(StreamService, OutstandingOneMatchesClassicLoop) {
  // StreamRunner's service mode at outstanding=1 must reproduce the classic
  // blocking step/think loop cycle-for-cycle (same end cycle, accesses, and
  // invalidation count) when the home pipeline is unconstrained.
  workload::GenConfig g;
  g.kind = workload::GenKind::Zipfian;
  g.nprocs = 16;
  g.ops_per_proc = 200;
  g.nblocks = 64;
  g.seed = 77;
  const noc::MeshShape mesh(4, 4);

  struct Out {
    Cycle cycles = 0;
    std::size_t accesses = 0;
    std::uint64_t invals = 0;
    std::uint64_t occupancy = 0;
  } out[2];
  for (int k = 0; k < 2; ++k) {
    auto src = workload::make_generator(g, mesh);
    dsm::Machine m(tiny());
    workload::StreamRunnerOptions opt;
    opt.warmup_accesses = 0;
    opt.use_service = k == 1;
    opt.outstanding = 1;
    workload::StreamRunner runner(m, *src, opt);
    const auto r = runner.run();
    ASSERT_TRUE(r.completed);
    out[k].cycles = r.cycles;
    out[k].accesses = r.accesses;
    out[k].invals = m.stats().inval_txns;
    out[k].occupancy = m.total_occupancy();
    EXPECT_TRUE(m.check_coherence().empty());
  }
  EXPECT_EQ(out[0].cycles, out[1].cycles);
  EXPECT_EQ(out[0].accesses, out[1].accesses);
  EXPECT_EQ(out[0].invals, out[1].invals);
  EXPECT_EQ(out[0].occupancy, out[1].occupancy);
}

TEST(StreamService, MultiOutstandingRaisesThroughput) {
  // The point of the service layer: more outstanding ops per client sustain
  // more accesses per kcycle on the same machine and workload.
  workload::GenConfig g;
  g.kind = workload::GenKind::WriteHeavy;
  g.nprocs = 16;
  g.ops_per_proc = 400;
  g.nblocks = 256;
  g.seed = 9;
  const noc::MeshShape mesh(4, 4);

  double rate[2] = {0, 0};
  const int outst[2] = {1, 8};
  for (int k = 0; k < 2; ++k) {
    auto src = workload::make_generator(g, mesh);
    auto p = tiny();
    p.svc.pipeline_depth = 8;
    dsm::Machine m(p);
    workload::StreamRunnerOptions opt;
    opt.warmup_accesses = 0;
    opt.use_service = true;
    opt.outstanding = outst[k];
    workload::StreamRunner runner(m, *src, opt);
    const auto r = runner.run();
    ASSERT_TRUE(r.completed);
    ASSERT_GT(r.cycles, 0u);
    rate[k] = static_cast<double>(r.accesses) /
              (static_cast<double>(r.cycles) / 1000.0);
    EXPECT_TRUE(m.check_coherence().empty());
  }
  // A 4x4 write-heavy stream saturates the mesh quickly, so the win here is
  // modest; the large-mesh speedups are benchmarked in EXPERIMENTS.md E11s.
  EXPECT_GT(rate[1], rate[0] * 1.05)
      << "8 outstanding ops should measurably beat 1";
}

} // namespace
} // namespace mdw
