// Sharded cycle-kernel pins (DESIGN.md section 14).
//
// Three things are locked down here:
//   1. The shard plan itself: whole-row strips covering every node exactly
//      once, clamping when more shards are requested than the mesh has rows,
//      and band checkpoints that name exactly the cross-shard routers within
//      Manhattan distance 2 — including on non-square meshes, where the
//      row-major id arithmetic is easiest to get wrong.
//   2. Bit-identity of the parallel kernel on raw network traffic: the same
//      unicast burst replayed at several shard counts must produce the same
//      cycle count, the same flit-hop total, and the same delivery sequence
//      — (cycle, node, txn) for every delivery, in order.  The delivery
//      sequence is the observable the phase-1 mailbox merge exists to
//      protect, so any merge-order bug shows up here directly.
//   3. The Network-level clamp: NocParams::shards beyond the mesh height
//      silently degrades to one shard per row, never more threads than rows.
//
// (Protocol-level shard invariance — full DSM workloads at shards 1/2/4/8 —
// is pinned in test_determinism.cpp next to the other fingerprint tests.)
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <tuple>
#include <utility>
#include <vector>

#include "noc/network.h"
#include "noc/shard_plan.h"
#include "noc/worm_builder.h"
#include "sim/rng.h"

namespace mdw::noc {
namespace {

int manhattan(const MeshShape& mesh, NodeId a, NodeId b) {
  const Coord ca = mesh.coord_of(a), cb = mesh.coord_of(b);
  return std::abs(ca.x - cb.x) + std::abs(ca.y - cb.y);
}

TEST(ShardPlan, StripsCoverEveryNodeOnce) {
  const struct {
    int w, h, requested;
  } cases[] = {
      {8, 8, 4},  {8, 4, 2},  {4, 8, 3},  {5, 3, 2},
      {12, 6, 6}, {1, 1, 4},  {16, 2, 8}, {7, 5, 5},
  };
  for (const auto& c : cases) {
    const MeshShape mesh(c.w, c.h);
    const ShardPlan p = compute_shard_plan(mesh, c.requested);
    EXPECT_GE(p.shards, 1);
    EXPECT_LE(p.shards, c.h) << c.w << "x" << c.h;
    EXPECT_EQ(p.shards, static_cast<int>(p.ranges.size()));

    // Strips are contiguous whole-row runs covering [0, n) in order, each
    // owning at least one row and differing by at most one row in height.
    int expect_lo = 0, expect_y0 = 0, min_rows = c.h, max_rows = 0;
    for (const ShardPlan::Range& r : p.ranges) {
      EXPECT_EQ(r.lo, expect_lo);
      EXPECT_EQ(r.y0, expect_y0);
      EXPECT_EQ(r.lo, r.y0 * c.w);
      EXPECT_EQ(r.hi, r.y1 * c.w);
      EXPECT_GT(r.y1, r.y0);
      min_rows = std::min(min_rows, r.y1 - r.y0);
      max_rows = std::max(max_rows, r.y1 - r.y0);
      expect_lo = r.hi;
      expect_y0 = r.y1;
    }
    EXPECT_EQ(expect_lo, mesh.num_nodes());
    EXPECT_EQ(expect_y0, c.h);
    EXPECT_LE(max_rows - min_rows, 1);

    for (NodeId id = 0; id < mesh.num_nodes(); ++id) {
      const int s = p.shard_of[static_cast<std::size_t>(id)];
      EXPECT_GE(id, p.ranges[static_cast<std::size_t>(s)].lo);
      EXPECT_LT(id, p.ranges[static_cast<std::size_t>(s)].hi);
    }
  }
}

TEST(ShardPlan, BandRemotesAreExactlyCrossShardWithinDistance2) {
  for (const auto& [w, h, req] : {std::tuple{8, 8, 4}, std::tuple{6, 12, 5},
                                  std::tuple{9, 4, 4}}) {
    const MeshShape mesh(w, h);
    const ShardPlan p = compute_shard_plan(mesh, req);
    // Collect the plan's (id, remote) pairs.
    std::vector<std::pair<NodeId, NodeId>> recorded;
    for (int s = 0; s < p.shards; ++s) {
      NodeId prev = -1;
      for (const ShardPlan::Checkpoint& cp : p.band[s]) {
        EXPECT_GT(cp.id, prev) << "band not ascending";  // ascending id
        prev = cp.id;
        EXPECT_EQ(p.shard_of[static_cast<std::size_t>(cp.id)], s);
        for (NodeId r : cp.remotes) recorded.emplace_back(cp.id, r);
      }
    }
    // Ground truth by brute force: every ordered cross-shard pair within
    // Manhattan distance 2 (same-row pairs never cross a row-strip cut).
    std::vector<std::pair<NodeId, NodeId>> expected;
    for (NodeId a = 0; a < mesh.num_nodes(); ++a) {
      for (NodeId b = 0; b < mesh.num_nodes(); ++b) {
        if (a == b || manhattan(mesh, a, b) > 2) continue;
        if (p.shard_of[static_cast<std::size_t>(a)] !=
            p.shard_of[static_cast<std::size_t>(b)]) {
          expected.emplace_back(a, b);
        }
      }
    }
    std::sort(recorded.begin(), recorded.end());
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(recorded, expected) << w << "x" << h << " shards=" << req;
  }
}

TEST(ShardPlan, CostModelIsolatesHotRows) {
  // The load-balanced overload on a synthetic hot-spot map: rows 3 and 4 of
  // an 8-row mesh carry 100x the traffic of the rest.  The unique min-max
  // partition into 4 strips isolates each hot row in its own strip —
  // {0-2}, {3}, {4}, {5-7}, max strip cost 100.  Any plan that merges a hot
  // row with anything else costs >= 101; merging the two hot rows costs 200.
  const MeshShape mesh(8, 8);
  const std::vector<std::uint64_t> cost = {1, 1, 1, 100, 100, 1, 1, 1};
  const ShardPlan p = compute_shard_plan(mesh, 4, cost);
  ASSERT_EQ(p.shards, 4);
  ASSERT_EQ(p.ranges.size(), 4u);
  const int expect_y0[] = {0, 3, 4, 5};
  const int expect_y1[] = {3, 4, 5, 8};
  for (int s = 0; s < 4; ++s) {
    EXPECT_EQ(p.ranges[static_cast<std::size_t>(s)].y0, expect_y0[s])
        << "strip " << s;
    EXPECT_EQ(p.ranges[static_cast<std::size_t>(s)].y1, expect_y1[s])
        << "strip " << s;
    EXPECT_EQ(p.ranges[static_cast<std::size_t>(s)].lo, expect_y0[s] * 8);
    EXPECT_EQ(p.ranges[static_cast<std::size_t>(s)].hi, expect_y1[s] * 8);
  }
  // shard_of agrees with the strips, covering every node exactly once.
  for (NodeId id = 0; id < mesh.num_nodes(); ++id) {
    const int s = p.shard_of[static_cast<std::size_t>(id)];
    EXPECT_GE(id, p.ranges[static_cast<std::size_t>(s)].lo);
    EXPECT_LT(id, p.ranges[static_cast<std::size_t>(s)].hi);
  }
}

TEST(ShardPlan, CostModelTieBreaksTowardEarliestSplit) {
  // All-zero costs make every contiguous partition optimal (max cost 0); the
  // DP's strict `<` over ascending split points must then pick the earliest
  // feasible boundary at every level: one-row strips first, remainder last.
  const MeshShape mesh(4, 4);
  const ShardPlan p =
      compute_shard_plan(mesh, 2, std::vector<std::uint64_t>{0, 0, 0, 0});
  ASSERT_EQ(p.shards, 2);
  EXPECT_EQ(p.ranges[0].y0, 0);
  EXPECT_EQ(p.ranges[0].y1, 1);
  EXPECT_EQ(p.ranges[1].y0, 1);
  EXPECT_EQ(p.ranges[1].y1, 4);
}

TEST(ShardPlan, CostModelClampsAndPadsLikeEqualSplit) {
  // Requests beyond the mesh height clamp to one strip per row, and a cost
  // vector shorter than the height treats missing rows as zero cost — both
  // without violating coverage.
  const MeshShape mesh(6, 4);
  const ShardPlan p =
      compute_shard_plan(mesh, 16, std::vector<std::uint64_t>{5, 7});
  ASSERT_EQ(p.shards, 4);
  int expect_lo = 0;
  for (const ShardPlan::Range& r : p.ranges) {
    EXPECT_EQ(r.lo, expect_lo);
    EXPECT_EQ(r.y1, r.y0 + 1);
    expect_lo = r.hi;
  }
  EXPECT_EQ(expect_lo, mesh.num_nodes());
}

TEST(ShardKernel, ShardCountClampsToMeshHeight) {
  sim::Engine eng;
  NocParams p;
  p.shards = 64;
  Network net(eng, MeshShape(4, 4), p);
  EXPECT_EQ(net.shards(), 4);
  for (NodeId id = 0; id < 16; ++id) {
    EXPECT_EQ(net.shard_of(id), id / 4);  // one row per shard
  }
}

/// One delivery observation: everything the protocol layer above could see.
struct Delivery {
  Cycle cycle = 0;
  NodeId where = 0;
  TxnId txn = 0;

  bool operator==(const Delivery&) const = default;
};

struct BurstResult {
  Cycle end_cycle = 0;
  std::uint64_t delivered = 0;
  std::uint64_t hops = 0;
  std::vector<Delivery> deliveries;

  bool operator==(const BurstResult&) const = default;
};

/// Replay a deterministic random-unicast burst (seeded by `seed`) on a
/// `w` x `h` mesh with the given shard count and record every delivery in
/// handler-invocation order.
BurstResult run_burst(int w, int h, int shards, std::uint64_t seed) {
  sim::Engine eng;
  const MeshShape mesh(w, h);
  NocParams params;
  params.shards = shards;
  Network net(eng, mesh, params);
  BurstResult res;
  net.set_delivery_handler([&](NodeId where, const WormPtr& worm) {
    res.deliveries.push_back({eng.now(), where, worm->txn});
  });
  sim::Rng rng(seed);
  const int n = mesh.num_nodes();
  TxnId txn = 0;
  for (int wave = 0; wave < 3; ++wave) {
    for (int i = 0; i < 2 * n; ++i) {
      const auto s = static_cast<NodeId>(rng.next_below(n));
      auto dst = static_cast<NodeId>(rng.next_below(n));
      if (dst == s) dst = (dst + 1) % n;
      net.inject(make_unicast(mesh, RoutingAlgo::EcubeXY, VNet::Request, s,
                              dst, 16, ++txn, nullptr));
    }
    EXPECT_TRUE(eng.run_to_quiescence(1'000'000));
  }
  res.end_cycle = eng.now();
  res.delivered = net.stats().worms_delivered;
  res.hops = net.stats().link_flit_hops;
  EXPECT_EQ(net.worms_in_flight(), 0u);
  return res;
}

TEST(ShardKernel, BurstBitIdenticalAcrossShardCounts) {
  // Non-square both ways round, plus a shard request the 6-row mesh clamps.
  const struct {
    int w, h;
  } meshes[] = {{12, 6}, {6, 12}, {8, 8}};
  for (const auto& m : meshes) {
    const BurstResult seq = run_burst(m.w, m.h, 1, 99);
    EXPECT_GT(seq.delivered, 0u);
    for (int shards : {2, 3, 8}) {
      const BurstResult par = run_burst(m.w, m.h, shards, 99);
      EXPECT_EQ(par, seq) << m.w << "x" << m.h << " shards=" << shards;
    }
  }
}

TEST(ShardKernel, FullSweepBurstBitIdenticalAcrossShardCounts) {
  // Same pin under exhaustive-sweep scheduling: the sharded sweep then runs
  // whole strips instead of bitmap runs, a separate code path.
  const int w = 10, h = 4;
  auto run = [&](int shards) {
    sim::Engine eng;
    const MeshShape mesh(w, h);
    NocParams params;
    params.shards = shards;
    params.full_sweep = true;
    Network net(eng, mesh, params);
    BurstResult res;
    net.set_delivery_handler([&](NodeId where, const WormPtr& worm) {
      res.deliveries.push_back({eng.now(), where, worm->txn});
    });
    sim::Rng rng(31);
    const int n = mesh.num_nodes();
    TxnId txn = 0;
    for (int i = 0; i < 3 * n; ++i) {
      const auto s = static_cast<NodeId>(rng.next_below(n));
      auto dst = static_cast<NodeId>(rng.next_below(n));
      if (dst == s) dst = (dst + 1) % n;
      net.inject(make_unicast(mesh, RoutingAlgo::EcubeXY, VNet::Request, s,
                              dst, 16, ++txn, nullptr));
    }
    EXPECT_TRUE(eng.run_to_quiescence(1'000'000));
    res.end_cycle = eng.now();
    res.delivered = net.stats().worms_delivered;
    res.hops = net.stats().link_flit_hops;
    return res;
  };
  const BurstResult seq = run(1);
  EXPECT_GT(seq.delivered, 0u);
  for (int shards : {2, 4}) {
    EXPECT_EQ(run(shards), seq) << "shards=" << shards;
  }
}

} // namespace
} // namespace mdw::noc
