// Steady-state allocation pins (ISSUE 10 satellite; DESIGN.md sections 11
// and 17).
//
// Linking this binary pulls in sim/alloc_guard.cpp, which replaces the global
// operator new/delete with counting versions.  The tests drive a raw Network
// through repeated identical unicast rounds: the first rounds are warmup
// (worm pool fills, ring queues and spill blocks reach their high-water
// capacity), then an AllocGuard brackets further rounds and must observe ZERO
// operator-new calls — the arena/pool/ring design means the hot loop never
// touches the heap once warm.  Both the sequential kernel and the sharded
// kernel (worker threads already running) are pinned.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <vector>

#include "noc/network.h"
#include "noc/worm_builder.h"
#include "sim/alloc_guard.h"
#include "sim/engine.h"
#include "sim/rng.h"

namespace mdw::noc {
namespace {

/// Run `rounds` identical unicast bursts on one persistent Network, starting
/// the allocation guard after `warmup` rounds.  Returns the operator-new
/// count observed across the guarded rounds.
std::uint64_t guarded_new_calls(int shards, int warmup, int rounds) {
  sim::Engine eng;
  const MeshShape mesh(8, 8);
  NocParams params;
  params.shards = shards;
  Network net(eng, mesh, params);

  std::uint64_t delivered = 0;
  net.set_delivery_handler(
      [&delivered](NodeId, const WormPtr&) { ++delivered; });

  // Pre-plan one round's injections so every round is byte-identical work.
  const int n = mesh.num_nodes();
  struct Plan {
    NodeId src;
    NodeId dst;
  };
  std::vector<Plan> plan;
  sim::Rng rng(2024);
  for (int i = 0; i < 2 * n; ++i) {
    const auto s = static_cast<NodeId>(rng.next_below(n));
    auto d = static_cast<NodeId>(rng.next_below(n));
    if (d == s) d = (d + 1) % n;
    plan.push_back({s, d});
  }

  TxnId txn = 0;
  std::uint64_t guarded = 0;
  for (int round = 0; round < rounds; ++round) {
    const bool guard_this = round >= warmup;
    if (guard_this && std::getenv("MDW_ALLOC_TRACE")) sim::alloc_guard_trace(true);
    sim::AllocGuard guard;
    for (const Plan& p : plan) {
      net.inject(make_unicast(mesh, RoutingAlgo::EcubeXY, VNet::Request, p.src,
                              p.dst, 16, ++txn, nullptr));
    }
    EXPECT_TRUE(eng.run_to_quiescence(1'000'000));
    if (guard_this) guarded += guard.delta();
  }
  EXPECT_EQ(delivered, static_cast<std::uint64_t>(rounds) * plan.size());
  EXPECT_EQ(net.worms_in_flight(), 0u);
  return guarded;
}

TEST(AllocGuard, CounterAdvancesOnHeapAllocation) {
  if (!sim::alloc_guard_active())
    GTEST_SKIP() << "counting allocator compiled out under this sanitizer";
  sim::AllocGuard guard;
  // Volatile pointer defeats heap-elision of the unused new-expression.
  int* volatile p = new int(7);
  delete p;
  EXPECT_GE(guard.delta(), 1u);
}

TEST(AllocGuard, SequentialKernelSteadyStateAllocFree) {
  if (!sim::alloc_guard_active())
    GTEST_SKIP() << "counting allocator compiled out under this sanitizer";
  EXPECT_EQ(guarded_new_calls(/*shards=*/1, /*warmup=*/3, /*rounds=*/6), 0u);
}

TEST(AllocGuard, ShardedKernelSteadyStateAllocFree) {
  if (!sim::alloc_guard_active())
    GTEST_SKIP() << "counting allocator compiled out under this sanitizer";
  EXPECT_EQ(guarded_new_calls(/*shards=*/2, /*warmup=*/3, /*rounds=*/6), 0u);
}

} // namespace
} // namespace mdw::noc
