// Validation tests for worm construction: the well-formedness rules that
// protect the router from malformed multidestination worms.
#include <gtest/gtest.h>

#include "noc/worm_builder.h"

namespace mdw::noc {
namespace {

const MeshShape mesh(8, 8);

Worm base_worm() {
  Worm w;
  w.kind = WormKind::Multicast;
  w.path = {mesh.id_of({0, 0}), mesh.id_of({1, 0}), mesh.id_of({2, 0})};
  w.dests = {DestSpec{mesh.id_of({1, 0}), DestAction::Deliver, 1},
             DestSpec{mesh.id_of({2, 0}), DestAction::Deliver, 1}};
  return w;
}

TEST(WormBuilder, AcceptsWellFormedMulticast) {
  EXPECT_TRUE(worm_is_well_formed(mesh, RoutingAlgo::EcubeXY, base_worm()));
}

TEST(WormBuilder, RejectsEmptyPathOrDests) {
  Worm w = base_worm();
  w.path.clear();
  EXPECT_FALSE(worm_is_well_formed(mesh, RoutingAlgo::EcubeXY, w));
  w = base_worm();
  w.dests.clear();
  EXPECT_FALSE(worm_is_well_formed(mesh, RoutingAlgo::EcubeXY, w));
}

TEST(WormBuilder, RejectsFinalDestMismatch) {
  Worm w = base_worm();
  w.dests.back().node = mesh.id_of({1, 0});  // not path.back()
  w.dests.pop_back();
  w.dests.push_back(DestSpec{mesh.id_of({5, 5}), DestAction::Deliver, 1});
  EXPECT_FALSE(worm_is_well_formed(mesh, RoutingAlgo::EcubeXY, w));
}

TEST(WormBuilder, RejectsOutOfOrderDests) {
  Worm w = base_worm();
  std::swap(w.dests[0], w.dests[1]);
  EXPECT_FALSE(worm_is_well_formed(mesh, RoutingAlgo::EcubeXY, w));
}

TEST(WormBuilder, RejectsDestOffPath) {
  Worm w = base_worm();
  w.dests[0].node = mesh.id_of({5, 5});
  EXPECT_FALSE(worm_is_well_formed(mesh, RoutingAlgo::EcubeXY, w));
}

TEST(WormBuilder, RejectsNonConformantPath) {
  Worm w = base_worm();
  // Y then X: illegal under XY, legal under YX.
  w.path = {mesh.id_of({0, 0}), mesh.id_of({0, 1}), mesh.id_of({1, 1})};
  w.dests = {DestSpec{mesh.id_of({1, 1}), DestAction::Deliver, 1}};
  EXPECT_FALSE(worm_is_well_formed(mesh, RoutingAlgo::EcubeXY, w));
  EXPECT_TRUE(worm_is_well_formed(mesh, RoutingAlgo::EcubeYX, w));
}

TEST(WormBuilder, RejectsGatherActionsOnMulticast) {
  Worm w = base_worm();
  w.dests[0].action = DestAction::GatherPickup;
  EXPECT_FALSE(worm_is_well_formed(mesh, RoutingAlgo::EcubeXY, w));
  w = base_worm();
  w.kind = WormKind::Gather;
  w.dests[0].action = DestAction::GatherPickup;
  EXPECT_TRUE(worm_is_well_formed(mesh, RoutingAlgo::EcubeXY, w));
}

TEST(WormBuilder, RejectsReserveOnlyAtFinal) {
  Worm w = base_worm();
  w.dests.back().action = DestAction::ReserveOnly;
  EXPECT_FALSE(worm_is_well_formed(mesh, RoutingAlgo::EcubeXY, w));
}

TEST(WormBuilder, RejectsDepositAtIntermediate) {
  Worm w = base_worm();
  w.kind = WormKind::Gather;
  w.dests[0].action = DestAction::GatherDeposit;
  EXPECT_FALSE(worm_is_well_formed(mesh, RoutingAlgo::EcubeXY, w));
  w = base_worm();
  w.kind = WormKind::Gather;
  w.dests.back().action = DestAction::GatherDeposit;
  EXPECT_TRUE(worm_is_well_formed(mesh, RoutingAlgo::EcubeXY, w));
}

TEST(WormBuilder, MakeUnicastProducesMinimalPath) {
  auto w = make_unicast(mesh, RoutingAlgo::WestFirst, VNet::Reply,
                        mesh.id_of({6, 2}), mesh.id_of({1, 5}), 8, 7, nullptr);
  EXPECT_EQ(static_cast<int>(w->path.size()) - 1,
            mesh.manhattan(w->src, w->final_dest()));
  EXPECT_EQ(w->kind, WormKind::Unicast);
  EXPECT_EQ(w->txn, 7u);
  EXPECT_EQ(w->dests.size(), 1u);
}

TEST(WormBuilder, UniqueWormIds) {
  auto a = make_unicast(mesh, RoutingAlgo::EcubeXY, VNet::Request, 0, 5, 8, 1,
                        nullptr);
  auto b = make_unicast(mesh, RoutingAlgo::EcubeXY, VNet::Request, 0, 5, 8, 1,
                        nullptr);
  EXPECT_NE(a->id, b->id);
}

TEST(WormBuilder, SizingModel) {
  WormSizing sz;
  EXPECT_EQ(sz.control_size(1), sz.control_flits);
  EXPECT_EQ(sz.control_size(5), sz.control_flits + 4 * sz.per_extra_dest);
  EXPECT_GT(sz.data_flits, sz.control_flits);
}

} // namespace
} // namespace mdw::noc
