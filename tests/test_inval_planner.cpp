// Static property tests for the invalidation planner: BRCP conformance of
// every generated worm, exact single coverage of the sharer set, role
// completeness, and the message-count relationships the paper argues.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "core/analytic.h"
#include "core/inval_planner.h"
#include "sim/rng.h"

namespace mdw::core {
namespace {

using noc::DestAction;
using noc::MeshShape;

std::vector<NodeId> random_sharers(sim::Rng& rng, const MeshShape& mesh,
                                   NodeId home, int d) {
  std::set<NodeId> s;
  while (static_cast<int>(s.size()) < d) {
    const auto n = static_cast<NodeId>(rng.next_below(mesh.num_nodes()));
    if (n != home) s.insert(n);
  }
  return {s.begin(), s.end()};
}

class PlannerProperties
    : public ::testing::TestWithParam<std::tuple<Scheme, int>> {};

TEST_P(PlannerProperties, WormsAreConformantAndCoverSharersExactlyOnce) {
  const auto [scheme, d] = GetParam();
  const MeshShape mesh(8, 8);
  const noc::WormSizing sizing;
  sim::Rng rng(1234 + d);
  for (int trial = 0; trial < 40; ++trial) {
    const auto home = static_cast<NodeId>(rng.next_below(64));
    const auto sharers = random_sharers(rng, mesh, home, d);
    const auto plan = plan_invalidation(scheme, mesh, home, sharers, 1, sizing);

    // Every request worm conforms to the scheme's base routing.
    for (const auto& w : plan.request_worms) {
      EXPECT_TRUE(noc::worm_is_well_formed(mesh, request_algo_of(scheme), *w))
          << scheme_name(scheme);
    }

    // Exact single coverage: each sharer appears as a delivering
    // destination on exactly one request worm; no non-sharer is delivered.
    std::map<NodeId, int> delivered;
    for (const auto& w : plan.request_worms) {
      for (const auto& dst : w->dests) {
        if (dst.action == DestAction::Deliver ||
            dst.action == DestAction::DeliverAndReserve) {
          delivered[dst.node] += 1;
        }
      }
    }
    EXPECT_EQ(delivered.size(), sharers.size());
    for (NodeId s : sharers) {
      EXPECT_EQ(delivered[s], 1) << "sharer " << s << " under "
                                 << scheme_name(scheme);
    }

    // Role completeness.
    ASSERT_EQ(plan.directive->roles().size(), sharers.size());
    int initiators = 0;
    for (NodeId s : sharers) {
      ASSERT_TRUE(plan.directive->roles().count(s));
      if (plan.directive->roles().at(s) == SharerRole::LaunchGather) {
        ++initiators;
        ASSERT_TRUE(plan.directive->gather_of().count(s));
      }
    }
    EXPECT_EQ(initiators,
              static_cast<int>(plan.directive->gathers().size()));

    // Gather blueprints start at their initiator.
    for (const auto& g : plan.directive->gathers()) {
      EXPECT_EQ(g.path.front(), g.initiator);
      EXPECT_FALSE(g.dests.empty());
    }

    // Framework sanity.
    switch (framework_of(scheme)) {
      case Framework::UiUa:
        EXPECT_EQ(plan.request_worms.size(), sharers.size());
        EXPECT_EQ(plan.expected_ack_messages, d);
        break;
      case Framework::MiUa:
        EXPECT_LE(plan.request_worms.size(), sharers.size());
        EXPECT_EQ(plan.expected_ack_messages, d);
        EXPECT_TRUE(plan.directive->gathers().empty());
        break;
      case Framework::MiMa:
        EXPECT_LE(plan.request_worms.size(), sharers.size());
        EXPECT_GE(plan.expected_ack_messages, 1);
        EXPECT_LE(plan.expected_ack_messages, d);
        break;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, PlannerProperties,
    ::testing::Combine(::testing::ValuesIn(kAllSchemes),
                       ::testing::Values(1, 2, 5, 12, 30)),
    [](const auto& info) {
      std::string n(scheme_name(std::get<0>(info.param)));
      for (auto& c : n)
        if (c == '-') c = '_';
      return n + "_d" + std::to_string(std::get<1>(info.param));
    });

TEST(Planner, WestFirstUsesFewerRequestWormsThanEcube) {
  const MeshShape mesh(16, 16);
  const noc::WormSizing sizing;
  sim::Rng rng(7);
  int wf_fewer = 0, total = 0;
  for (int trial = 0; trial < 30; ++trial) {
    const auto home = static_cast<NodeId>(rng.next_below(256));
    const auto sharers = random_sharers(rng, mesh, home, 24);
    const auto ec =
        plan_invalidation(Scheme::EcCmUa, mesh, home, sharers, 1, sizing);
    const auto wf =
        plan_invalidation(Scheme::WfScUa, mesh, home, sharers, 1, sizing);
    total++;
    if (wf.request_worms.size() < ec.request_worms.size()) wf_fewer++;
    EXPECT_LE(wf.request_worms.size(), 2u);
  }
  // The serpentine should essentially always use fewer worms at d=24.
  EXPECT_GT(wf_fewer, total * 9 / 10);
}

TEST(Planner, HierarchicalGatherBoundsHomeAckMessages) {
  const MeshShape mesh(16, 16);
  const noc::WormSizing sizing;
  sim::Rng rng(11);
  for (int trial = 0; trial < 30; ++trial) {
    const auto home = static_cast<NodeId>(rng.next_below(256));
    const auto sharers = random_sharers(rng, mesh, home, 32);
    const auto hg =
        plan_invalidation(Scheme::EcCmHg, mesh, home, sharers, 1, sizing);
    const auto cg =
        plan_invalidation(Scheme::EcCmCg, mesh, home, sharers, 1, sizing);
    // HG: <= 2 trunks + <= 2 home-column gathers.
    EXPECT_LE(hg.expected_ack_messages, 4);
    EXPECT_LE(hg.expected_ack_messages, cg.expected_ack_messages);
  }
}

TEST(Planner, WfGatherAckMessageBounds) {
  const MeshShape mesh(16, 16);
  const noc::WormSizing sizing;
  sim::Rng rng(13);
  for (int trial = 0; trial < 30; ++trial) {
    const auto home = static_cast<NodeId>(rng.next_below(256));
    const auto sharers = random_sharers(rng, mesh, home, 20);
    // The single serpentine collapses acknowledgment to <= 2 messages.
    const auto sc = plan_invalidation(Scheme::WfScSg, mesh, home, sharers, 1,
                                      sizing);
    EXPECT_LE(sc.expected_ack_messages, 2);
    // Banded serpentines: <= 2 gathers per band, <= ceil(16/4) bands.
    const auto pb = plan_invalidation(Scheme::WfP2Sg, mesh, home, sharers, 1,
                                      sizing);
    EXPECT_LE(pb.expected_ack_messages, 8);
    EXPECT_GE(pb.expected_ack_messages, sc.expected_ack_messages);
  }
}

TEST(Planner, GatherWormBuilderInstantiatesBlueprint) {
  const MeshShape mesh(8, 8);
  const noc::WormSizing sizing;
  sim::Rng rng(3);
  const NodeId home = mesh.id_of({4, 4});
  const auto sharers = random_sharers(rng, mesh, home, 10);
  const auto plan =
      plan_invalidation(Scheme::EcCmCg, mesh, home, sharers, 42, sizing);
  ASSERT_FALSE(plan.directive->gathers().empty());
  const auto& bp = plan.directive->gathers().front();
  const auto worm = build_gather_worm(bp, 42);
  EXPECT_EQ(worm->kind, noc::WormKind::Gather);
  EXPECT_EQ(worm->vnet, noc::VNet::Reply);
  EXPECT_EQ(worm->txn, 42u);
  EXPECT_EQ(worm->src, bp.initiator);
  EXPECT_EQ(worm->gathered, 1);
  ASSERT_EQ(worm->path.size(), bp.path.size());
  EXPECT_TRUE(std::equal(worm->path.begin(), worm->path.end(), bp.path.begin()));
}

TEST(Planner, SingleSharerDegeneratesGracefully) {
  const MeshShape mesh(8, 8);
  const noc::WormSizing sizing;
  const NodeId home = mesh.id_of({3, 3});
  for (Scheme s : kAllSchemes) {
    for (NodeId sharer : {mesh.id_of({3, 6}), mesh.id_of({0, 3}),
                          mesh.id_of({6, 1}), mesh.id_of({2, 2})}) {
      const auto plan = plan_invalidation(s, mesh, home, {sharer}, 1, sizing);
      EXPECT_EQ(plan.request_worms.size(), 1u) << scheme_name(s);
      EXPECT_EQ(plan.expected_ack_messages, 1) << scheme_name(s);
    }
  }
}

TEST(Planner, AnalyticModelTracksPlanShape) {
  const MeshShape mesh(16, 16);
  AnalyticParams p;
  p.k = 16;
  sim::Rng rng(21);
  for (int d : {4, 16, 48}) {
    p.d = d;
    const auto ui = estimate(Scheme::UiUa, p);
    const auto mi = estimate(Scheme::EcCmUa, p);
    const auto ma = estimate(Scheme::EcCmHg, p);
    // At tiny d the grouping degenerates to unicasts (ties allowed); the
    // separation must open up as d grows.
    EXPECT_GE(ui.messages, mi.messages);
    EXPECT_GE(mi.messages, ma.messages);
    EXPECT_GT(ui.home_occupancy, ma.home_occupancy);
    if (d >= 16) {
      EXPECT_GT(ui.messages, mi.messages);
      EXPECT_GT(mi.messages, ma.messages);
      EXPECT_GT(ui.latency, ma.latency);
    }
  }
}

} // namespace
} // namespace mdw::core
