#!/usr/bin/env bash
# Full verification: clean build + tier-1 tests, then rebuild the
# observability tests under ASan/UBSan and run them instrumented.
#
#   $ scripts/verify.sh [build-dir]
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
SAN_BUILD="${BUILD}-asan"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

echo "=== tier-1: configure + build + ctest (${BUILD}) ==="
cmake -B "$BUILD" -S . >/dev/null
cmake --build "$BUILD" -j "$JOBS"
ctest --test-dir "$BUILD" --output-on-failure -j "$JOBS"

echo
echo "=== sanitizers: ASan/UBSan build, obs tests (${SAN_BUILD}) ==="
cmake -B "$SAN_BUILD" -S . -DMDW_SANITIZE=address,undefined >/dev/null
cmake --build "$SAN_BUILD" -j "$JOBS" --target test_obs_metrics
ctest --test-dir "$SAN_BUILD" -R obs --output-on-failure

echo
echo "verify: OK"
