#!/usr/bin/env bash
# Full verification: clean build + tier-1 tests, a Release build with
# bench_simspeed + mdw_workload + mdw_service smokes (catches perf-path
# code that only breaks under -O2; the service smoke asserts coalescing
# actually fires), a rebuild of the observability + service tests under
# ASan/UBSan, a UBSan-only build running the complete tier-1 test list
# (UB in the protocol/planner hot paths shows up here without ASan's
# run-time cost), and a TSan build of the sweep, sharded-kernel, and
# service tests (catches data races in the thread-pool grid runner and in
# the parallel cycle kernel's strip threads).
#
#   $ scripts/verify.sh [build-dir]
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
REL_BUILD="${BUILD}-release"
SAN_BUILD="${BUILD}-asan"
UBSAN_BUILD="${BUILD}-ubsan"
TSAN_BUILD="${BUILD}-tsan"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

echo "=== tier-1: configure + build + ctest (${BUILD}) ==="
cmake -B "$BUILD" -S . >/dev/null
cmake --build "$BUILD" -j "$JOBS"
ctest --test-dir "$BUILD" --output-on-failure -j "$JOBS"

echo
echo "=== release: -O3 build + bench_simspeed + mdw_workload + mdw_service smoke (${REL_BUILD}) ==="
cmake -B "$REL_BUILD" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$REL_BUILD" -j "$JOBS" \
    --target bench_simspeed test_determinism mdw_workload_cli mdw_service_cli
"$REL_BUILD"/tests/test_determinism
"$REL_BUILD"/src/workload/mdw_workload --gen=zipfian --mesh=8x8 \
    --ops=20000 --blocks=256 --warmup=1024
# Service layer: pipelined + coalescing home on a write-heavy stream; the
# run must complete AND actually merge transactions (--require-coalesce).
"$REL_BUILD"/src/svc/mdw_service --mesh=16x16 --gen=write-heavy \
    --ops=50000 --blocks=512 --outstanding=4 --depth=8 --coalesce=32 \
    --require-coalesce
"$REL_BUILD"/bench/bench_simspeed --benchmark_min_time=0.05 \
    --benchmark_filter='SingleTxn/16x16/UI-UA|Burst/8x8|Stream/16x16'
# Same smoke on the sharded kernel: catches -O3-only breaks in the
# parallel tick paths (results are bit-identical; only wall time differs).
"$REL_BUILD"/bench/bench_simspeed --shards=2 --benchmark_min_time=0.05 \
    --benchmark_filter='Burst/8x8|Stream/16x16'
# Oversubscription smoke: far more shard threads than hardware cores (the
# 16x16 mesh allows all 16).  Exercises the spin-budget fallback and the
# fused-barrier hand-off under heavy preemption; correctness is still the
# bit-identity pinned in the tests, this just has to complete.
"$REL_BUILD"/bench/bench_simspeed --shards=16 --benchmark_min_time=0.02 \
    --benchmark_filter='Burst/16x16'
# Fast-forward disabled smoke: MDW_NO_FF=1 walks every idle cycle through
# the full scheduler instead of jumping gaps, so the non-fast-forward tick
# path gets an -O3 run too (it is bit-identical by test, but only this
# exercises its codegen at Release optimization levels).
MDW_NO_FF=1 "$REL_BUILD"/bench/bench_simspeed --benchmark_min_time=0.02 \
    --benchmark_filter='Burst/8x8|Stream/16x16'
# Cache-behaviour snapshot of the SoA router arena (EXPERIMENTS.md has the
# methodology and reference numbers).  perf needs both the binary and the
# kernel's permission (perf_event_paranoid), so probe with a real counter
# read and skip quietly when either is missing — CI boxes and containers
# often have no perf.
if command -v perf >/dev/null 2>&1 && \
   perf stat -e cache-misses true >/dev/null 2>&1; then
  echo "--- perf stat: cache misses, Burst/32x32 ---"
  perf stat -e cache-references,cache-misses \
      "$REL_BUILD"/bench/bench_simspeed --benchmark_min_time=0.05 \
      --benchmark_filter='Burst/32x32' 2>&1 | tail -8
else
  echo "perf unavailable (not installed or not permitted): cache-miss snapshot skipped"
fi
# Throughput regression gate plus the parallel-efficiency floor.  0.30 is
# deliberately conservative (the ISSUE targets 0.65 on a real multi-core
# box); on single-CPU hosts check_simspeed skips the gate with a note.
python3 scripts/check_simspeed.py --efficiency-min=0.30

echo
echo "=== sanitizers: ASan/UBSan build, obs + worm-pool + stream tests (${SAN_BUILD}) ==="
cmake -B "$SAN_BUILD" -S . -DMDW_SANITIZE=address,undefined >/dev/null
cmake --build "$SAN_BUILD" -j "$JOBS" \
    --target test_obs_metrics test_worm_pool test_stream test_synthetic \
    test_svc
ctest --test-dir "$SAN_BUILD" -R 'obs|worm_pool|stream|synthetic|svc' \
    --output-on-failure

echo
echo "=== sanitizers: UBSan build, full tier-1 test list (${UBSAN_BUILD}) ==="
cmake -B "$UBSAN_BUILD" -S . -DMDW_SANITIZE=undefined >/dev/null
cmake --build "$UBSAN_BUILD" -j "$JOBS"
ctest --test-dir "$UBSAN_BUILD" --output-on-failure -j "$JOBS"

echo
echo "=== sanitizers: TSan build, sweep + worm-pool + sharded-kernel tests (${TSAN_BUILD}) ==="
cmake -B "$TSAN_BUILD" -S . -DMDW_SANITIZE=thread >/dev/null
cmake --build "$TSAN_BUILD" -j "$JOBS" \
    --target test_sweep test_worm_pool test_shard_kernel test_determinism \
    test_svc
ctest --test-dir "$TSAN_BUILD" -R 'sweep|worm_pool|shard_kernel|svc' \
    --output-on-failure
# The shard-invariance and fast-forward fingerprints exercise the parallel
# kernel on full protocol traffic — including the rebalanced (load-balanced
# plan) variants and the sharded fast-forward fold; run just those under
# TSan (the rest of the determinism suite is single-threaded and slow under
# instrumentation).
"$TSAN_BUILD"/tests/test_determinism \
    --gtest_filter='Determinism.ShardCountInvariance:Determinism.FastForwardInvariance'

echo
echo "verify: OK"
