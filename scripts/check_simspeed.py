#!/usr/bin/env python3
"""Guard against simulator-throughput regressions; report parallel efficiency.

Regression gate: compares the newest point of the BENCH_simspeed.json
trajectory against a baseline point on the scenarios they share: if any
scenario's sim_cycles_per_sec dropped by more than the tolerance (default
10%), exit non-zero.  The baseline is the newest earlier point with the SAME
shard count (points written before the sharded kernel carry an implicit
"shards": 1), or the newest such point carrying --baseline=<label> when
given.  Comparing only like-for-like shard counts keeps the gate meaningful:
a shards=4 point on a single-CPU box is slower than shards=1 by design, not
by regression.  Scenarios present in only one of the two compared points get
a warning on stderr; new scenarios cannot regress, but scenarios dropped
from the newest point fail the check (a silently deleted benchmark would
otherwise hide a regression).

Parallel-efficiency check: whenever the newest point's label also appears on
a point with a different shard count, the newest shards=1 and shards=N
points under that label are paired per scenario and the speedup
(parallel/sequential) and efficiency (speedup / effective workers, where
effective workers = min(shards, cpus)) are printed.  Scenarios on 32x32 or
larger meshes with efficiency below 50% draw a warning on stderr.  On hosts
whose recorded "cpus" is below 2 there is no hardware parallelism to
measure, so the efficiency check is skipped with a note instead of emitting
meaningless warnings.

Hard efficiency gate: --efficiency-min=P (off by default) turns the
efficiency check into a pass/fail gate — any 32x32+ scenario whose parallel
efficiency falls below P fails the run.  The cpus<2 skip path applies to the
gate too: a host with no hardware parallelism cannot measure efficiency, so
the gate is skipped there with a note rather than failing spuriously.

Duplicate detection: a (label, scenario, shards) triple appearing on more
than one trajectory point draws a warning on stderr — re-running a benchmark
under an already-used label silently shadows the older numbers, which makes
"newest earlier point" baselines ambiguous.  The right fix is either a new
label for the new measurement or --latest-only.

--latest-only: before any gate runs, thin the trajectory to the NEWEST point
per (label, shards) pair, preserving file order.  This makes re-measured
labels well-defined (the latest measurement wins) and silences the duplicate
warnings for points the thinning removed.

Usage:
    scripts/check_simspeed.py [--trajectory BENCH_simspeed.json]
                              [--tolerance 0.10] [--baseline LABEL]
                              [--min-efficiency 0.50]
                              [--efficiency-min P]
                              [--latest-only]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys


def load_points(path: pathlib.Path) -> list[dict]:
    data = json.loads(path.read_text())
    points = data.get("points", [])
    if len(points) < 2:
        sys.exit(f"{path}: need at least 2 trajectory points, got {len(points)}")
    return points


def rates(point: dict) -> dict[str, float]:
    return {
        r["name"]: float(r["sim_cycles_per_sec"]) for r in point.get("results", [])
    }


def shards_of(point: dict) -> int:
    return int(point.get("shards", 1))


def label_of(point: dict) -> str:
    """A point's label, tolerating hand-edited files with the key missing.

    Every accessor goes through here so a malformed trajectory produces a
    readable comparison (against '<unlabelled>') rather than a KeyError
    traceback.
    """
    return str(point.get("label", "<unlabelled>"))


def mesh_of(name: str) -> int:
    """Mesh edge length from a scenario name like 'Burst/32x32' (0 if none)."""
    for part in name.split("/"):
        edge, x, _ = part.partition("x")
        if x and edge.isdigit():
            return int(edge)
    return 0


def warn_duplicates(points: list[dict]) -> int:
    """Warn (stderr) about (label, scenario, shards) triples measured twice.

    Returns the number of duplicated triples.  Duplicates are legal — the
    trajectory is append-only history — but they make label-based baselines
    ambiguous, so they deserve a loud note.
    """
    seen: dict[tuple[str, str, int], list[int]] = {}
    for i, p in enumerate(points):
        for r in p.get("results", []):
            key = (label_of(p), str(r["name"]), shards_of(p))
            seen.setdefault(key, []).append(i)
    dups = sorted(k for k, v in seen.items() if len(v) > 1)
    for label, name, shards in dups:
        idxs = seen[(label, name, shards)]
        print(f"check_simspeed: warning: duplicate trajectory point for "
              f"label '{label}' scenario '{name}' shards={shards} "
              f"(points {', '.join(str(i) for i in idxs)}); label-based "
              f"baselines use the newest — consider --latest-only or a "
              f"fresh label", file=sys.stderr)
    return len(dups)


def thin_to_latest(points: list[dict]) -> list[dict]:
    """Keep only the newest point per (label, shards), preserving order."""
    newest: dict[tuple[str, int], int] = {}
    for i, p in enumerate(points):
        newest[(label_of(p), shards_of(p))] = i
    keep = set(newest.values())
    kept = [p for i, p in enumerate(points) if i in keep]
    if len(kept) < len(points):
        print(f"check_simspeed: --latest-only kept {len(kept)} of "
              f"{len(points)} trajectory points (newest per label+shards)")
    return kept


def check_regression(points: list[dict], baseline_label: str | None,
                     tolerance: float) -> int:
    new = points[-1]
    want_shards = shards_of(new)
    candidates = [p for p in points[:-1] if shards_of(p) == want_shards]
    if baseline_label is not None:
        candidates = [p for p in candidates if label_of(p) == baseline_label]
        if not candidates:
            known = sorted({
                f"{label_of(p)}(shards={shards_of(p)})" for p in points[:-1]})
            sys.exit(f"check_simspeed: no baseline point labelled "
                     f"'{baseline_label}' with shards={want_shards}; known "
                     f"points: {', '.join(known)}")
    if not candidates:
        print(f"check_simspeed: no earlier shards={want_shards} point to "
              f"compare '{label_of(new)}' against; skipping "
              f"regression gate")
        return 0
    prev = candidates[-1]
    prev_rates, new_rates = rates(prev), rates(new)

    for name in sorted(set(prev_rates) - set(new_rates)):
        print(f"check_simspeed: warning: scenario '{name}' present only in "
              f"baseline '{label_of(prev)}'", file=sys.stderr)
    for name in sorted(set(new_rates) - set(prev_rates)):
        print(f"check_simspeed: warning: scenario '{name}' present only in "
              f"newest point '{label_of(new)}'", file=sys.stderr)

    print(f"check_simspeed: '{label_of(prev)}' -> '{label_of(new)}' "
          f"(shards={want_shards}, tolerance {tolerance:.0%})")

    failures = []
    for name in sorted(prev_rates):
        if name not in new_rates:
            failures.append(f"  {name}: present in '{label_of(prev)}' but "
                            f"missing from '{label_of(new)}'")
            continue
        old_v, new_v = prev_rates[name], new_rates[name]
        ratio = new_v / old_v if old_v > 0 else float("inf")
        marker = "OK "
        if ratio < 1.0 - tolerance:
            marker = "FAIL"
            failures.append(
                f"  {name}: {old_v:.6g} -> {new_v:.6g} cyc/s "
                f"({(ratio - 1.0) * 100:+.1f}%)")
        print(f"  [{marker}] {name}: {old_v:.6g} -> {new_v:.6g} cyc/s "
              f"({(ratio - 1.0) * 100:+.1f}%)")
    for name in sorted(set(new_rates) - set(prev_rates)):
        print(f"  [NEW ] {name}: {new_rates[name]:.6g} cyc/s")

    if failures:
        print(f"check_simspeed: FAILED — {len(failures)} regression(s) "
              f"beyond {tolerance:.0%}:")
        for f in failures:
            print(f)
        return 1
    print("check_simspeed: OK")
    return 0


def check_efficiency(points: list[dict], min_efficiency: float,
                     efficiency_min: float | None) -> int:
    """Report parallel efficiency; return the number of hard-gate failures.

    `min_efficiency` only warns (stderr); `efficiency_min`, when not None,
    is a pass/fail floor — 32x32+ scenarios below it count as failures.
    """
    label = label_of(points[-1])
    same = [p for p in points if label_of(p) == label]
    seq = [p for p in same if shards_of(p) == 1]
    par = [p for p in same if shards_of(p) > 1]
    if not seq or not par:
        if efficiency_min is not None:
            print(f"check_simspeed: --efficiency-min set but label '{label}' "
                  f"has no shards=1 + shards=N point pair; gate skipped")
        return 0
    base, sharded = seq[-1], par[-1]
    shards = shards_of(sharded)
    cpus = int(sharded.get("cpus", 0))
    print(f"check_simspeed: parallel efficiency for label '{label}' "
          f"(shards={shards}, cpus={cpus})")
    if cpus < 2:
        print(f"  single-CPU host (cpus={cpus}): no hardware parallelism "
              f"available, efficiency check skipped — shards={shards} "
              f"numbers above record thread-coordination overhead only")
        if efficiency_min is not None:
            print(f"  --efficiency-min={efficiency_min} gate skipped for the "
                  f"same reason")
        return 0
    workers = min(shards, cpus)
    base_rates, par_rates = rates(base), rates(sharded)
    failures = 0
    for name in sorted(set(base_rates) & set(par_rates)):
        b, p = base_rates[name], par_rates[name]
        if b <= 0:
            continue
        speedup = p / b
        eff = speedup / workers
        big = mesh_of(name) >= 32
        hard_fail = (big and efficiency_min is not None
                     and eff < efficiency_min)
        slow = big and eff < min_efficiency
        marker = "FAIL" if hard_fail else ("WARN" if slow else "ok  ")
        print(f"  [{marker}] {name}: {speedup:.2f}x over shards=1 "
              f"({eff:.0%} efficiency on {workers} workers)")
        if hard_fail:
            failures += 1
            print(f"check_simspeed: FAIL: '{name}' parallel efficiency "
                  f"{eff:.0%} below the --efficiency-min={efficiency_min} "
                  f"gate at shards={shards}", file=sys.stderr)
        elif slow:
            print(f"check_simspeed: warning: '{name}' parallel efficiency "
                  f"{eff:.0%} below {min_efficiency:.0%} at shards={shards}",
                  file=sys.stderr)
    return failures


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "--trajectory",
        type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parent.parent
        / "BENCH_simspeed.json",
    )
    ap.add_argument("--tolerance", type=float, default=0.10,
                    help="max fractional sim_cycles_per_sec drop (default 0.10)")
    ap.add_argument("--baseline", metavar="LABEL", default=None,
                    help="compare against the newest same-shards point with "
                         "this label instead of the newest same-shards point")
    ap.add_argument("--min-efficiency", type=float, default=0.50,
                    help="warn when a 32x32+ scenario's parallel efficiency "
                         "falls below this fraction (default 0.50)")
    ap.add_argument("--efficiency-min", type=float, default=None, metavar="P",
                    help="hard gate: fail when a 32x32+ scenario's parallel "
                         "efficiency falls below P (default: off; skipped "
                         "on hosts with cpus < 2)")
    ap.add_argument("--latest-only", action="store_true",
                    help="thin the trajectory to the newest point per "
                         "(label, shards) pair before running the gates")
    args = ap.parse_args()

    points = load_points(args.trajectory)
    if args.latest_only:
        points = thin_to_latest(points)
        if len(points) < 2:
            sys.exit("check_simspeed: --latest-only left fewer than 2 points")
    else:
        warn_duplicates(points)
    rc = check_regression(points, args.baseline, args.tolerance)
    eff_failures = check_efficiency(points, args.min_efficiency,
                                    args.efficiency_min)
    if eff_failures:
        print(f"check_simspeed: FAILED — {eff_failures} scenario(s) below "
              f"the --efficiency-min={args.efficiency_min} gate")
        return 1
    return rc


if __name__ == "__main__":
    sys.exit(main())
