#!/usr/bin/env python3
"""Guard against simulator-throughput regressions.

Compares the two newest points of the BENCH_simspeed.json trajectory on the
scenarios they share: if any scenario's sim_cycles_per_sec dropped by more
than the tolerance (default 10%), exit non-zero.  New scenarios that exist
only in the newest point are reported but cannot regress; scenarios dropped
from the newest point fail the check (a silently deleted benchmark would
otherwise hide a regression).

Usage:
    scripts/check_simspeed.py [--trajectory BENCH_simspeed.json]
                              [--tolerance 0.10]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys


def load_points(path: pathlib.Path) -> list[dict]:
    data = json.loads(path.read_text())
    points = data.get("points", [])
    if len(points) < 2:
        sys.exit(f"{path}: need at least 2 trajectory points, got {len(points)}")
    return points


def rates(point: dict) -> dict[str, float]:
    return {
        r["name"]: float(r["sim_cycles_per_sec"]) for r in point.get("results", [])
    }


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "--trajectory",
        type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parent.parent
        / "BENCH_simspeed.json",
    )
    ap.add_argument("--tolerance", type=float, default=0.10,
                    help="max fractional sim_cycles_per_sec drop (default 0.10)")
    args = ap.parse_args()

    points = load_points(args.trajectory)
    prev, new = points[-2], points[-1]
    prev_rates, new_rates = rates(prev), rates(new)

    print(f"check_simspeed: '{prev['label']}' -> '{new['label']}' "
          f"(tolerance {args.tolerance:.0%})")

    failures = []
    for name in sorted(prev_rates):
        if name not in new_rates:
            failures.append(f"  {name}: present in '{prev['label']}' but "
                            f"missing from '{new['label']}'")
            continue
        old_v, new_v = prev_rates[name], new_rates[name]
        ratio = new_v / old_v if old_v > 0 else float("inf")
        marker = "OK "
        if ratio < 1.0 - args.tolerance:
            marker = "FAIL"
            failures.append(
                f"  {name}: {old_v:.6g} -> {new_v:.6g} cyc/s "
                f"({(ratio - 1.0) * 100:+.1f}%)")
        print(f"  [{marker}] {name}: {old_v:.6g} -> {new_v:.6g} cyc/s "
              f"({(ratio - 1.0) * 100:+.1f}%)")
    for name in sorted(set(new_rates) - set(prev_rates)):
        print(f"  [NEW ] {name}: {new_rates[name]:.6g} cyc/s")

    if failures:
        print(f"check_simspeed: FAILED — {len(failures)} regression(s) "
              f"beyond {args.tolerance:.0%}:")
        for f in failures:
            print(f)
        return 1
    print("check_simspeed: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
