#!/usr/bin/env python3
"""Guard against simulator-throughput regressions.

Compares the newest point of the BENCH_simspeed.json trajectory against a
baseline point on the scenarios they share: if any scenario's
sim_cycles_per_sec dropped by more than the tolerance (default 10%), exit
non-zero.  The baseline is the second-newest point by default, or the newest
point carrying --baseline=<label> when given.  Scenarios present in only one
of the two compared points get a warning on stderr; new scenarios cannot
regress, but scenarios dropped from the newest point fail the check (a
silently deleted benchmark would otherwise hide a regression).

Usage:
    scripts/check_simspeed.py [--trajectory BENCH_simspeed.json]
                              [--tolerance 0.10] [--baseline LABEL]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys


def load_points(path: pathlib.Path) -> list[dict]:
    data = json.loads(path.read_text())
    points = data.get("points", [])
    if len(points) < 2:
        sys.exit(f"{path}: need at least 2 trajectory points, got {len(points)}")
    return points


def rates(point: dict) -> dict[str, float]:
    return {
        r["name"]: float(r["sim_cycles_per_sec"]) for r in point.get("results", [])
    }


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "--trajectory",
        type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parent.parent
        / "BENCH_simspeed.json",
    )
    ap.add_argument("--tolerance", type=float, default=0.10,
                    help="max fractional sim_cycles_per_sec drop (default 0.10)")
    ap.add_argument("--baseline", metavar="LABEL", default=None,
                    help="compare against the newest point with this label "
                         "instead of the second-newest point")
    args = ap.parse_args()

    points = load_points(args.trajectory)
    new = points[-1]
    if args.baseline is not None:
        matches = [p for p in points[:-1] if p.get("label") == args.baseline]
        if not matches:
            known = ", ".join(p.get("label", "?") for p in points[:-1])
            sys.exit(f"{args.trajectory}: no baseline point labelled "
                     f"'{args.baseline}' (known: {known})")
        prev = matches[-1]
    else:
        prev = points[-2]
    prev_rates, new_rates = rates(prev), rates(new)

    for name in sorted(set(prev_rates) - set(new_rates)):
        print(f"check_simspeed: warning: scenario '{name}' present only in "
              f"baseline '{prev['label']}'", file=sys.stderr)
    for name in sorted(set(new_rates) - set(prev_rates)):
        print(f"check_simspeed: warning: scenario '{name}' present only in "
              f"newest point '{new['label']}'", file=sys.stderr)

    print(f"check_simspeed: '{prev['label']}' -> '{new['label']}' "
          f"(tolerance {args.tolerance:.0%})")

    failures = []
    for name in sorted(prev_rates):
        if name not in new_rates:
            failures.append(f"  {name}: present in '{prev['label']}' but "
                            f"missing from '{new['label']}'")
            continue
        old_v, new_v = prev_rates[name], new_rates[name]
        ratio = new_v / old_v if old_v > 0 else float("inf")
        marker = "OK "
        if ratio < 1.0 - args.tolerance:
            marker = "FAIL"
            failures.append(
                f"  {name}: {old_v:.6g} -> {new_v:.6g} cyc/s "
                f"({(ratio - 1.0) * 100:+.1f}%)")
        print(f"  [{marker}] {name}: {old_v:.6g} -> {new_v:.6g} cyc/s "
              f"({(ratio - 1.0) * 100:+.1f}%)")
    for name in sorted(set(new_rates) - set(prev_rates)):
        print(f"  [NEW ] {name}: {new_rates[name]:.6g} cyc/s")

    if failures:
        print(f"check_simspeed: FAILED — {len(failures)} regression(s) "
              f"beyond {args.tolerance:.0%}:")
        for f in failures:
            print(f)
        return 1
    print("check_simspeed: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
